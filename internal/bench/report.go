package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"regpromo/internal/analysis/certify"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/obs"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it when the
// report shape changes incompatibly. regpromo-bench/2 added the
// per-stage compile wall-time breakdown (ConfigReport.StageNS: wall
// time by frontend / interprocedural analysis / per-function passes);
// regpromo-bench/3 added the process-wide metrics snapshot
// (Report.Metrics) captured after the measurement matrix ran;
// regpromo-bench/4 added the scale-tier cell (Report.Scale: cold vs
// warm incremental-analysis cost on a ~1000-function module);
// regpromo-bench/5 added per-engine execution cells
// (ConfigReport.Execs: one timed run per requested engine — flat,
// switch, native — with Exec kept as the first engine's event for
// older readers); regpromo-bench/6 added the static register-pressure
// reports (ConfigReport.Pressure: per promotion site, how many
// promoted values are simultaneously live against the K budget).
const SchemaVersion = "regpromo-bench/6"

// BaselineGlob matches versioned benchmark reports in the repo root.
const BaselineGlob = "BENCH_*.json"

// Report is the machine-readable benchmark trajectory: the paper's
// full figure matrix plus per-pass compile telemetry for every
// program under all four measurement configurations.
type Report struct {
	Schema string `json:"schema"`
	// Timestamp is when the run happened (RFC 3339); the caller
	// stamps it so report generation itself stays deterministic.
	Timestamp string `json:"timestamp,omitempty"`
	// MemLatency is the WeightedCycles memory-op weight in effect.
	MemLatency int             `json:"mem_latency"`
	Programs   []ProgramReport `json:"programs"`
	Figures    []FigureReport  `json:"figures"`
	// Metrics is the process-wide metrics snapshot taken right after
	// the matrix ran, when metrics were enabled for the run (schema 3+).
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
	// Scale is the scale-tier cell, present when the run included
	// `-tier scale` (schema 4+).
	Scale *ScaleReport `json:"scale,omitempty"`
}

// ProgramReport is one suite member's results across configurations.
type ProgramReport struct {
	Name    string         `json:"name"`
	Lines   int            `json:"lines"`
	Configs []ConfigReport `json:"configs"`
}

// ConfigReport is one (program, configuration) cell of the matrix.
type ConfigReport struct {
	// Analysis is "modref" or "pointer"; Promote marks the paper's
	// "with promotion" column.
	Analysis string `json:"analysis"`
	Promote  bool   `json:"promote"`
	// Counts are the dynamic execution counters (Figures 5, 6, and 7
	// feed off these).
	Counts interp.Counts `json:"counts"`
	// Promotions and Spilled are the compile-side diagnostics.
	Promotions int `json:"promotions"`
	Spilled    int `json:"spilled"`
	// CompileNS is total pipeline wall time; StageNS breaks it down
	// by coarse compile stage (driver.PassStage: "frontend",
	// "analysis", "passes"); Passes itemizes it with per-pass IR
	// deltas and statistics.
	CompileNS int64            `json:"compile_ns"`
	StageNS   map[string]int64 `json:"stage_ns,omitempty"`
	Passes    []*obs.PassEvent `json:"passes"`
	// Exec records the execution side: engine, compile-once reuse,
	// and run wall time. In a multi-engine run it duplicates Execs[0]
	// so readers of older schemas keep working.
	Exec obs.ExecEvent `json:"exec,omitempty"`
	// Execs is the per-engine execution record (schema 5+), one event
	// per engine in the order the run requested. Counts are identical
	// across engines by the parity contract; only the wall times
	// differ, which is exactly what the native-speedup ratio reads.
	Execs []obs.ExecEvent `json:"execs,omitempty"`
	// Pressure is the static register-pressure report per promotion
	// site (schema 6+): present only in promoting configurations, and
	// fully deterministic — it survives StripTimings. An over-budget
	// site is the static signature of the paper's water anecdote.
	Pressure []certify.Pressure `json:"pressure,omitempty"`
}

// FigureReport is one rendered figure of the paper's matrix.
type FigureReport struct {
	Figure int         `json:"figure"`
	Metric string      `json:"metric"`
	Rows   []ReportRow `json:"rows"`
}

// ReportRow is a figure row with the derived columns made explicit.
type ReportRow struct {
	Program        string  `json:"program"`
	Analysis       string  `json:"analysis"`
	Without        int64   `json:"without"`
	With           int64   `json:"with"`
	Difference     int64   `json:"difference"`
	PercentRemoved float64 `json:"percent_removed"`
}

// figureNumbers maps each metric to its figure number (8 is this
// reproduction's weighted-cycles extension).
var figureNumbers = map[Metric]int{TotalOps: 5, Stores: 6, Loads: 7, WeightedCycles: 8}

// CollectReport runs the full observed measurement matrix: every
// selected program is compiled with pass-manager telemetry and
// executed under all four paper configurations. Outputs are
// cross-checked across configurations, as in RunFigures, and
// Options.Parallel fans the programs out the same way; everything in
// the report except wall-clock pass timings is identical between
// serial and parallel runs.
func CollectReport(opts Options) (*Report, error) {
	programs := opts.selected()
	reports, err := ParallelMap(len(programs), opts.workers(), func(i int) (ProgramReport, error) {
		return collectProgram(programs[i], opts)
	})
	if err != nil {
		return nil, err
	}
	r := &Report{Schema: SchemaVersion, MemLatency: MemLatency, Programs: reports}
	r.Figures = r.buildFigures()
	if reg := obs.Metrics(); reg != nil {
		r.Metrics = reg.Snapshot()
	}
	return r, nil
}

// collectProgram measures one suite member under all four paper
// configurations with telemetry attached. The front end runs once per
// program; each configuration's pipeline is forked from the shared
// artifact and its observer records the "frontend.reuse" stage in
// place of a repeated parse.
func collectProgram(p Program, opts Options) (ProgramReport, error) {
	pr := ProgramReport{Name: p.Name, Lines: Lines(p)}
	fe, err := frontend(p)
	if err != nil {
		return pr, err
	}
	var outputs []string
	for _, analysis := range []driver.Analysis{driver.ModRef, driver.PointsTo} {
		for _, promote := range []bool{false, true} {
			cfg := driver.Config{Analysis: analysis, Promote: promote, K: opts.K, Certify: opts.Certify}
			if promote {
				cfg.PointerPromote = opts.PointerPromotion
			}
			m, err := measureSharedEngines(p, fe, cfg, opts.engineList(), &obs.Pipeline{})
			if err != nil {
				return pr, err
			}
			outputs = append(outputs, m.Output)
			var compileNS int64
			stageNS := make(map[string]int64)
			for _, e := range m.Passes {
				compileNS += e.DurationNS
				stageNS[driver.PassStage(e.Name)] += e.DurationNS
			}
			pr.Configs = append(pr.Configs, ConfigReport{
				Analysis:   analysis.String(),
				Promote:    promote,
				Counts:     m.Counts,
				Promotions: m.Promote,
				Spilled:    m.Spilled,
				CompileNS:  compileNS,
				StageNS:    stageNS,
				Passes:     m.Passes,
				Exec:       m.Exec,
				Execs:      m.Execs,
				Pressure:   m.Pressure,
			})
		}
	}
	for _, o := range outputs[1:] {
		if o != outputs[0] {
			return pr, fmt.Errorf("%s: configurations disagree on program output", p.Name)
		}
	}
	return pr, nil
}

// buildFigures derives the rows of Figures 5, 6, and 7 — plus the
// Figure 8 weighted-cycles extension — from the per-config counts.
func (r *Report) buildFigures() []FigureReport {
	var figs []FigureReport
	for _, metric := range []Metric{TotalOps, Stores, Loads, WeightedCycles} {
		fr := FigureReport{Figure: figureNumbers[metric], Metric: metric.String()}
		for _, p := range r.Programs {
			for _, analysis := range []string{"modref", "pointer"} {
				without, okW := p.Config(analysis, false)
				with, okP := p.Config(analysis, true)
				if !okW || !okP {
					continue
				}
				row := ReportRow{
					Program:  p.Name,
					Analysis: analysis,
					Without:  metric.pick(without.Counts),
					With:     metric.pick(with.Counts),
				}
				row.Difference = row.Without - row.With
				if row.Without != 0 {
					row.PercentRemoved = 100 * float64(row.Difference) / float64(row.Without)
				}
				fr.Rows = append(fr.Rows, row)
			}
		}
		figs = append(figs, fr)
	}
	return figs
}

// ExecFor returns the cell's execution event for the named engine,
// if the cell recorded one. Schema-5 cells are searched by engine;
// older reports carry a single legacy Exec event, which matches by
// its engine name (reports predating the engine label count as flat).
func (c *ConfigReport) ExecFor(engine string) (*obs.ExecEvent, bool) {
	for i := range c.Execs {
		if c.Execs[i].Engine == engine {
			return &c.Execs[i], true
		}
	}
	if len(c.Execs) == 0 && c.Exec != (obs.ExecEvent{}) {
		if c.Exec.Engine == engine || (c.Exec.Engine == "" && engine == "flat") {
			return &c.Exec, true
		}
	}
	return nil, false
}

// Config returns the cell for (analysis, promote), if present.
func (p *ProgramReport) Config(analysis string, promote bool) (*ConfigReport, bool) {
	for i := range p.Configs {
		c := &p.Configs[i]
		if c.Analysis == analysis && c.Promote == promote {
			return c, true
		}
	}
	return nil, false
}

// Program returns the named program's report, if present.
func (r *Report) Program(name string) (*ProgramReport, bool) {
	for i := range r.Programs {
		if r.Programs[i].Name == name {
			return &r.Programs[i], true
		}
	}
	return nil, false
}

// StripTimings zeroes every wall-clock field — the report timestamp,
// per-config compile times, and per-pass durations. What remains is
// fully deterministic (counts, figure rows, IR snapshots), so two
// stripped reports from the same code are byte-identical however they
// were scheduled; the determinism tests compare serial and parallel
// runs this way.
func (r *Report) StripTimings() {
	r.Timestamp = ""
	// The metrics snapshot is process-wide — it accumulates across every
	// compilation the process ran, not just this report's matrix — so it
	// cannot survive a determinism comparison.
	r.Metrics = nil
	for i := range r.Programs {
		for j := range r.Programs[i].Configs {
			c := &r.Programs[i].Configs[j]
			c.CompileNS = 0
			c.StageNS = nil
			c.Exec.DurationNS = 0
			for k := range c.Execs {
				c.Execs[k].DurationNS = 0
			}
			for _, e := range c.Passes {
				e.DurationNS = 0
			}
		}
	}
	if r.Scale != nil {
		r.Scale.Cold.AnalysisNS, r.Scale.Cold.CompileNS = 0, 0
		r.Scale.Warm.AnalysisNS, r.Scale.Warm.CompileNS = 0, 0
		r.Scale.Speedup = 0
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport reads one BENCH_*.json file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(r.Schema, "regpromo-bench/") {
		return nil, fmt.Errorf("%s: unrecognized schema %q", path, r.Schema)
	}
	return &r, nil
}

// LatestBaseline loads the newest BENCH_*.json in dir (timestamped
// names sort chronologically). It returns os.ErrNotExist when no
// baseline has been recorded yet.
func LatestBaseline(dir string) (*Report, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, BaselineGlob))
	if err != nil {
		return nil, "", err
	}
	if len(matches) == 0 {
		return nil, "", os.ErrNotExist
	}
	sort.Strings(matches)
	path := matches[len(matches)-1]
	r, err := LoadReport(path)
	if err != nil {
		return nil, "", err
	}
	return r, path, nil
}
