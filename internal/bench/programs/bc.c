/*
 * bc — calculator stand-in (paper: GNU bc, 7,331 lines).
 *
 * A bytecode expression evaluator whose global machine state (stack
 * pointer, accumulator, flags) is hot in the dispatch loop. The
 * evaluator also stores results through an int* out-parameter; with
 * MOD/REF alone those stores may modify any addressed global —
 * including the machine state, whose addresses escape to the reset
 * routine — so promotion is blocked. Points-to analysis proves the
 * out-pointer only reaches the result buffer, unlocking the dispatch
 * state (the paper's bc row is the one where points-to clearly beats
 * MOD/REF: 8.8% vs 27.5% of stores removed).
 */

int sp;
int acc;
int errflag;
int opcount;

int stack[64];
int code[256];
int results[32];
int ncode;

void reset_machine(int *psp, int *pacc, int *perr) {
	*psp = 0;
	*pacc = 0;
	*perr = 0;
}

void emit(int op, int arg) {
	code[ncode & 255] = op * 256 + (arg & 255);
	ncode++;
}

/* One expression program: computes ((a+b)*c - d) / e style chains. */
void build_program(int seedv) {
	int i;
	ncode = 0;
	for (i = 0; i < 40; i++) {
		int op;
		op = (seedv + i * 7) % 5;
		emit(op, (seedv * 3 + i) & 63);
	}
	emit(5, 0); /* halt */
}

void eval(int *out) {
	int pc;
	int running;
	pc = 0;
	running = 1;
	while (running) {
		int insn;
		int op;
		int arg;
		insn = code[pc & 255];
		pc++;
		op = insn / 256;
		arg = insn & 255;
		opcount++;
		if (op == 0) {            /* push immediate */
			stack[sp & 63] = arg;
			sp++;
		} else if (op == 1) {     /* add */
			if (sp >= 2) {
				sp--;
				stack[(sp - 1) & 63] += stack[sp & 63];
			} else {
				errflag++;
			}
		} else if (op == 2) {     /* mul (bounded) */
			if (sp >= 2) {
				sp--;
				stack[(sp - 1) & 63] = (stack[(sp - 1) & 63] * stack[sp & 63]) & 65535;
			} else {
				errflag++;
			}
		} else if (op == 3) {     /* acc += top */
			if (sp >= 1) {
				acc = (acc + stack[(sp - 1) & 63]) & 1048575;
			} else {
				errflag++;
			}
		} else if (op == 4) {     /* dup */
			if (sp >= 1 && sp < 63) {
				stack[sp & 63] = stack[(sp - 1) & 63];
				sp++;
			}
		} else {                  /* halt: deliver result */
			*out = acc;
			running = 0;
		}
	}
}

int main(void) {
	int round;
	int check;
	reset_machine(&sp, &acc, &errflag);
	for (round = 0; round < 25; round++) {
		build_program(round * 11 + 5);
		eval(&results[round & 31]);
	}
	check = 0;
	for (round = 0; round < 25; round++) {
		check = (check * 31 + results[round]) & 1048575;
	}
	print_int(check);
	print_int(opcount);
	print_int(errflag);
	return 0;
}
