/*
 * indent — C-prettyprinter stand-in (paper: indent, 5,955 lines).
 *
 * A character-at-a-time scanner over a global buffer driving a global
 * state machine (paren depth, brace depth, in-comment flag, output
 * column). The state globals are read and written on every character
 * and nothing in the loop can alias them, so promotion removes a few
 * per cent of the program's stores (paper: 3.98%).
 */

int paren_depth;
int brace_depth;
int in_comment;
int column;
int lines_out;
int stars;

char src[2048];
int srclen;

void emit_char(int c) {
	if (c == 10) lines_out++;
}

void fill_source(void) {
	int i;
	int sd;
	sd = 31;
	srclen = 2048;
	for (i = 0; i < srclen; i++) {
		int r;
		sd = (sd * 1103515245 + 12345) & 1073741823;
		r = sd % 16;
		if (r == 0) src[i] = '(';
		else if (r == 1) src[i] = ')';
		else if (r == 2) src[i] = '{';
		else if (r == 3) src[i] = '}';
		else if (r == 4) src[i] = '/';
		else if (r == 5) src[i] = '*';
		else if (r == 6) src[i] = 10;
		else src[i] = 'a' + r;
	}
}

void scan(void) {
	int i;
	for (i = 0; i < srclen; i++) {
		int c;
		c = src[i];
		if (in_comment) {
			if (c == '*') stars++;
			if (c == '/' && i > 0 && src[i - 1] == '*') in_comment = 0;
		} else {
			if (c == '(') paren_depth++;
			if (c == ')' && paren_depth > 0) paren_depth--;
			if (c == '{') brace_depth++;
			if (c == '}' && brace_depth > 0) brace_depth--;
			if (c == '/' && i + 1 < srclen && src[i + 1] == '*') in_comment = 1;
		}
		if (c == 10) {
			column = brace_depth * 8;
		} else {
			column++;
		}
		emit_char(c);
	}
}

int main(void) {
	int pass;
	fill_source();
	for (pass = 0; pass < 6; pass++) scan();
	print_int(paren_depth);
	print_int(brace_depth);
	print_int(column);
	print_int(lines_out);
	print_int(stars);
	return 0;
}
