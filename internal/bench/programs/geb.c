/*
 * geb — graphics-compression stand-in (paper: geb, SPEC graphics
 * compression code).
 *
 * Run-length + delta encoding of a synthetic image with a global bit
 * buffer (bit position, byte count, checksum) updated per emitted
 * symbol. The bit-buffer scalars promote in the encode loops (paper
 * shows mid-range improvements for geb: ~15% of stores).
 */

int bitbuf;
int bitcount;
int bytes_out;
int checksum;

char image[4096];
char out[8192];

/* Bit emission is open-coded inside the encode loop (as in the
 * original's macro-expanded inner loop), so the bit-buffer globals
 * stay explicit in the hot loop rather than hiding behind a call. */

void build_image(void) {
	int i;
	int sd;
	sd = 1234;
	for (i = 0; i < 4096; i++) {
		sd = (sd * 1103515245 + 12345) & 1073741823;
		/* Smooth gradients with occasional noise, so runs exist. */
		if (sd % 8 == 0) {
			image[i] = sd % 256;
		} else {
			image[i] = (i / 16) % 256;
		}
	}
}

void encode(void) {
	int i;
	int prev;
	int run;
	int sym;
	int width;
	prev = -1;
	run = 0;
	for (i = 0; i < 4096; i++) {
		int px;
		px = image[i] & 255;
		if (px == prev && run < 63) {
			run++;
		} else {
			if (run > 0) {
				sym = (1 << 6) | run;
				width = 8;
				bitbuf = (bitbuf << width) | (sym & 255);
				bitcount += width;
				while (bitcount >= 8) {
					int b;
					bitcount -= 8;
					b = (bitbuf >> bitcount) & 255;
					out[bytes_out & 8191] = b;
					bytes_out++;
					checksum = (checksum * 31 + b) & 1048575;
				}
			}
			run = 0;
			/* delta-encode against previous pixel */
			if (prev >= 0 && px - prev < 8 && prev - px < 8) {
				sym = (2 << 4) | (px - prev + 8);
				width = 6;
			} else {
				sym = (3 << 8) | px;
				width = 10;
			}
			bitbuf = (bitbuf << width) | sym;
			bitcount += width;
			while (bitcount >= 8) {
				int b;
				bitcount -= 8;
				b = (bitbuf >> bitcount) & 255;
				out[bytes_out & 8191] = b;
				bytes_out++;
				checksum = (checksum * 31 + b) & 1048575;
			}
			prev = px;
		}
	}
	if (run > 0) {
		bitbuf = (bitbuf << 8) | ((1 << 6) | run);
		bitcount += 8;
		while (bitcount >= 8) {
			int b;
			bitcount -= 8;
			b = (bitbuf >> bitcount) & 255;
			out[bytes_out & 8191] = b;
			bytes_out++;
			checksum = (checksum * 31 + b) & 1048575;
		}
	}
}

int main(void) {
	int round;
	build_image();
	for (round = 0; round < 8; round++) {
		bitbuf = 0;
		bitcount = 0;
		bytes_out = 0;
		encode();
	}
	print_int(bytes_out);
	print_int(checksum);
	return 0;
}
