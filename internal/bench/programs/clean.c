/*
 * clean — dead-code/worklist stand-in (paper: clean, a compiler pass
 * of the authors' own infrastructure).
 *
 * A mark-and-sweep over a synthetic flow graph: a worklist loop with
 * global bookkeeping counters (marks, passes, worklist head) that are
 * explicit in every iteration. Promotion removes a modest slice of
 * stores (paper: 3.28%).
 */

int marks;
int passes;
int work_head;
int work_tail;

int succ1[128];
int succ2[128];
int marked[128];
int worklist[256];

void push(int n) {
	worklist[work_tail & 255] = n;
	work_tail++;
}

int pop(void) {
	int n;
	n = worklist[work_head & 255];
	work_head++;
	return n;
}

void build_graph(void) {
	int i;
	int sd;
	sd = 17;
	for (i = 0; i < 128; i++) {
		sd = (sd * 1103515245 + 12345) & 1073741823;
		succ1[i] = sd % 128;
		succ2[i] = (sd / 128) % 128;
	}
}

void mark_reachable(void) {
	int i;
	for (i = 0; i < 128; i++) marked[i] = 0;
	work_head = 0;
	work_tail = 0;
	push(0);
	marked[0] = 1;
	marks = 1;
	while (work_head != work_tail) {
		int n;
		int s;
		n = pop();
		passes++;
		s = succ1[n & 127];
		if (!marked[s & 127]) {
			marked[s & 127] = 1;
			marks++;
			push(s);
		}
		s = succ2[n & 127];
		if (!marked[s & 127]) {
			marked[s & 127] = 1;
			marks++;
			push(s);
		}
	}
}

int main(void) {
	int round;
	int total;
	build_graph();
	total = 0;
	for (round = 0; round < 30; round++) {
		mark_reachable();
		total = (total + marks) & 1048575;
	}
	print_int(total);
	print_int(passes);
	return 0;
}
