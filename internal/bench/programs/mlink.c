/*
 * mlink — genetic-linkage stand-in (paper: 28,553-line MLINK from
 * FASTLINK).
 *
 * The paper's biggest promotion win: hot global accumulators updated
 * inside deeply nested likelihood loops that also call routines whose
 * MOD/REF summaries show they leave the accumulators alone. Promotion
 * turns the per-iteration store traffic into register updates with a
 * single store at each loop exit (57% of stores, 29% of loads in the
 * paper).
 */

int like_num;
int like_den;
int recomb_sum;
int theta_steps;
int scale_events;

int genotab[64];
int penetrance[64];

int seed = 99;

int nextrand(void) {
	seed = (seed * 1103515245 + 12345) & 1073741823;
	return seed;
}

/* Touches only its own state; MOD/REF proves it leaves the
 * accumulators alone. */
int pen_lookup(int g) {
	return penetrance[g & 63];
}

int geno_prob(int g, int theta) {
	int p;
	p = genotab[g & 63] * theta + pen_lookup(g);
	return p & 65535;
}

void scale_check(int v) {
	if (v > 60000) scale_events++;
}

void peel_family(int fam, int theta) {
	int child;
	int g1;
	int g2;
	for (child = 0; child < 6; child++) {
		for (g1 = 0; g1 < 8; g1++) {
			for (g2 = 0; g2 < 8; g2++) {
				int p;
				p = geno_prob(fam * 8 + g1 * 8 + g2, theta);
				/* The hot accumulators: explicit global refs in the
				 * innermost loop. */
				like_num += p;
				like_num &= 1048575;
				like_den += (p >> 3) + 1;
				like_den &= 1048575;
				if (g1 != g2) {
					recomb_sum += theta;
					recomb_sum &= 1048575;
				}
				scale_check(like_num);
			}
		}
	}
}

int main(void) {
	int i;
	int fam;
	int theta;
	for (i = 0; i < 64; i++) {
		genotab[i] = nextrand() % 97;
		penetrance[i] = nextrand() % 13;
	}
	like_num = 1;
	like_den = 1;
	for (theta = 1; theta <= 10; theta++) {
		theta_steps++;
		for (fam = 0; fam < 12; fam++) {
			peel_family(fam, theta);
		}
	}
	print_int(like_num);
	print_int(like_den);
	print_int(recomb_sum);
	print_int(theta_steps);
	print_int(scale_events);
	return 0;
}
