/*
 * gzip(enc) — LZ77-compressor stand-in (paper: gzip compressing,
 * 1.75–2.15% of operations removed).
 *
 * Hash-chain match finding over a synthetic input window. The
 * literal/match/offset counters are global scalars that are hot in
 * the deflate loop, while the hash table and window are arrays; the
 * match-length scan is pure local work, so promotion wins a small
 * but visible slice of operations.
 */

int literals;
int match_bits;
int longest;
int positions;

char window[8192];
int head[256];
int prev[8192];

void build_input(void) {
	int i;
	int sd;
	sd = 777;
	for (i = 0; i < 8192; i++) {
		sd = (sd * 1103515245 + 12345) & 1073741823;
		/* Biased alphabet so matches occur. */
		if (sd % 3 == 0) {
			window[i] = 'a' + sd % 4;
		} else {
			window[i] = 'a' + sd % 16;
		}
	}
}

int hash3(int pos) {
	int h;
	h = window[pos] * 33 + window[pos + 1];
	h = h * 33 + window[pos + 2];
	return h & 255;
}

int match_len(int a, int b, int limit) {
	int n;
	n = 0;
	while (n < limit && window[a + n] == window[b + n]) n++;
	return n;
}

void deflate(void) {
	int i;
	for (i = 0; i < 256; i++) head[i] = -1;
	for (i = 0; i < 8000; i++) {
		int h;
		int cand;
		int best;
		int chain;
		positions++;
		h = hash3(i);
		cand = head[h];
		best = 0;
		chain = 0;
		while (cand >= 0 && chain < 8) {
			int len;
			len = match_len(cand, i, 32);
			if (len > best) best = len;
			cand = prev[cand & 8191];
			chain++;
		}
		if (best >= 3) {
			match_bits += 12;
			match_bits &= 1048575;
			if (best > longest) longest = best;
		} else {
			literals++;
		}
		prev[i & 8191] = head[h];
		head[h] = i;
	}
}

int main(void) {
	int round;
	build_input();
	for (round = 0; round < 3; round++) {
		literals = 0;
		deflate();
	}
	print_int(literals);
	print_int(match_bits);
	print_int(longest);
	print_int(positions);
	return 0;
}
