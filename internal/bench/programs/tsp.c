/*
 * tsp — traveling-salesman stand-in (paper: 760-line TSP solver).
 *
 * Nearest-neighbour tour construction plus 2-opt improvement over a
 * synthetic distance matrix. Working state lives in locals and
 * arrays, so scalar promotion finds essentially nothing to do here;
 * the paper reports exactly zero effect on tsp.
 */

int dist[40][40];
int tour[41];
int visited[40];
int seed = 12345;

int nextrand(void) {
	seed = (seed * 1103515245 + 12345) & 1073741823;
	return seed;
}

void build_distances(void) {
	int i;
	int j;
	int x[40];
	int y[40];
	for (i = 0; i < 40; i++) {
		x[i] = nextrand() % 1000;
		y[i] = nextrand() % 1000;
	}
	for (i = 0; i < 40; i++) {
		for (j = 0; j < 40; j++) {
			int dx;
			int dy;
			dx = x[i] - x[j];
			dy = y[i] - y[j];
			if (dx < 0) dx = -dx;
			if (dy < 0) dy = -dy;
			dist[i][j] = dx + dy;
		}
	}
}

int nearest_unvisited(int from) {
	int best;
	int bestd;
	int j;
	best = -1;
	bestd = 1000000;
	for (j = 0; j < 40; j++) {
		if (!visited[j] && dist[from][j] < bestd) {
			bestd = dist[from][j];
			best = j;
		}
	}
	return best;
}

int tour_length(void) {
	int i;
	int len;
	len = 0;
	for (i = 0; i < 40; i++) len += dist[tour[i]][tour[i + 1]];
	return len;
}

void two_opt(void) {
	int improved;
	int i;
	int j;
	improved = 1;
	while (improved) {
		improved = 0;
		for (i = 1; i < 38; i++) {
			for (j = i + 1; j < 39; j++) {
				int before;
				int after;
				before = dist[tour[i - 1]][tour[i]] + dist[tour[j]][tour[j + 1]];
				after = dist[tour[i - 1]][tour[j]] + dist[tour[i]][tour[j + 1]];
				if (after < before) {
					int lo;
					int hi;
					lo = i;
					hi = j;
					while (lo < hi) {
						int t;
						t = tour[lo];
						tour[lo] = tour[hi];
						tour[hi] = t;
						lo++;
						hi--;
					}
					improved = 1;
				}
			}
		}
	}
}

int main(void) {
	int i;
	int cur;
	build_distances();
	for (i = 0; i < 40; i++) visited[i] = 0;
	cur = 0;
	visited[0] = 1;
	tour[0] = 0;
	for (i = 1; i < 40; i++) {
		cur = nearest_unvisited(cur);
		visited[cur] = 1;
		tour[i] = cur;
	}
	tour[40] = 0;
	print_int(tour_length());
	two_opt();
	print_int(tour_length());
	return 0;
}
