/*
 * allroots — polynomial-root-finder stand-in (paper: allroots, 215
 * lines, 11 stores total).
 *
 * A tiny fixed computation: bisection on a cubic with all state in
 * locals. The paper reports promotion finds nothing at all here; the
 * whole run executes only a handful of memory operations.
 */

double coeff3;
double coeff2;
double coeff1;
double coeff0;

double poly(double x) {
	return ((coeff3 * x + coeff2) * x + coeff1) * x + coeff0;
}

double bisect(double lo, double hi) {
	int it;
	double mid;
	mid = lo;
	for (it = 0; it < 40; it++) {
		double fm;
		mid = (lo + hi) / 2.0;
		fm = poly(mid);
		if (fm == 0.0) return mid;
		if ((fm < 0.0) == (poly(lo) < 0.0)) {
			lo = mid;
		} else {
			hi = mid;
		}
	}
	return mid;
}

int main(void) {
	double r;
	coeff3 = 1.0;
	coeff2 = -6.0;
	coeff1 = 11.0;
	coeff0 = -6.0;
	r = bisect(0.5, 1.5);
	print_double(r);
	r = bisect(1.5, 2.5);
	print_double(r);
	r = bisect(2.5, 3.5);
	print_double(r);
	return 0;
}
