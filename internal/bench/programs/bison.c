/*
 * bison — LR-parser stand-in (paper: bison, 10,179 lines).
 *
 * A table-driven parser loop whose global error counters are touched
 * only on a rare error path. Promotion still lifts them around the
 * loop — a landing-pad load plus an exit store per parse — so the
 * paper's bison row shows a tiny total-operation INCREASE (-750 ops,
 * -0.01%) with promotion enabled.
 */

int err_count;
int err_state;
int tokens_seen;
int reductions;

int action[16][8];
int input[512];
int ninput;

void build_tables(void) {
	int s;
	int t;
	for (s = 0; s < 16; s++) {
		for (t = 0; t < 8; t++) {
			/* shift to (s*3+t)%16, or reduce when negative-ish */
			int a;
			a = (s * 3 + t * 5) % 20;
			if (a >= 16) a = -(a - 15);
			action[s][t] = a;
		}
	}
}

void build_input(void) {
	int i;
	int sd;
	sd = 7;
	for (i = 0; i < 512; i++) {
		sd = (sd * 1103515245 + 12345) & 1073741823;
		input[i] = sd % 8;
	}
	ninput = 512;
}

void parse(void) {
	int state;
	int i;
	int toks;
	int reds;
	state = 0;
	toks = 0;
	reds = 0;
	for (i = 0; i < ninput; i++) {
		int tok;
		int a;
		tok = input[i];
		toks++;
		a = action[state & 15][tok & 7];
		if (a >= 0) {
			state = a;
		} else {
			reds++;
			state = (-a) & 15;
			/* The rare error path: taken only when a reduction lands
			 * in the dead state with the closing token. The error
			 * globals are the only promotable values in this loop,
			 * and lifting them costs more than the path ever uses. */
			if (state == 15 && tok == 7) {
				err_count++;
				err_state = state;
			}
		}
	}
	tokens_seen += toks;
	reductions += reds;
}

int main(void) {
	int round;
	build_tables();
	build_input();
	for (round = 0; round < 20; round++) parse();
	print_int(tokens_seen);
	print_int(reductions);
	print_int(err_count);
	print_int(err_state);
	return 0;
}
