/*
 * caches — cache-simulator stand-in (paper: "caches", a simulator
 * from the authors' suite).
 *
 * A direct-mapped cache simulation over a synthetic address trace.
 * Hit/miss/writeback counters are global scalars referenced every
 * access; the tag store is an array. The counters promote inside the
 * per-access loop.
 */

int hits;
int misses;
int writebacks;
int accesses;

int tags_[1024];
int dirty[1024];
int trace[4096];

void build_trace(void) {
	int i;
	int sd;
	sd = 4242;
	for (i = 0; i < 4096; i++) {
		sd = (sd * 1103515245 + 12345) & 1073741823;
		/* Mix a hot working set with cold far addresses. */
		if (sd % 4 != 0) {
			trace[i] = sd % 8192;
		} else {
			trace[i] = sd % 1048576;
		}
	}
}

void simulate(void) {
	int i;
	for (i = 0; i < 4096; i++) {
		int addr;
		int line;
		int tag;
		int write;
		addr = trace[i];
		line = (addr / 16) % 1024;
		tag = addr / 16384;
		write = (addr & 3) == 1;
		accesses++;
		if (tags_[line] == tag) {
			hits++;
			if (write) dirty[line] = 1;
		} else {
			misses++;
			if (dirty[line]) {
				writebacks++;
				dirty[line] = 0;
			}
			tags_[line] = tag;
			if (write) dirty[line] = 1;
		}
	}
}

int main(void) {
	int round;
	build_trace();
	for (round = 0; round < 12; round++) simulate();
	print_int(accesses);
	print_int(hits);
	print_int(misses);
	print_int(writebacks);
	return 0;
}
