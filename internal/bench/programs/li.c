/*
 * li — lisp-interpreter stand-in (paper: SPEC li / xlisp).
 *
 * A miniature list machine: heap-allocated cons cells built with
 * malloc, recursive list operations, and a small amount of global
 * bookkeeping. Heap-heavy pointer code gives promotion very little
 * purchase; the paper reports near-zero change for li.
 */

struct cell {
	int val;
	struct cell *next;
};

int conses;
int gcs;

struct cell *freelist;

struct cell *cons(int v, struct cell *rest) {
	struct cell *c;
	if (freelist != 0) {
		c = freelist;
		freelist = freelist->next;
	} else {
		c = (struct cell *) malloc(sizeof(struct cell));
	}
	c->val = v;
	c->next = rest;
	conses++;
	return c;
}

void release(struct cell *l) {
	while (l != 0) {
		struct cell *n;
		n = l->next;
		l->next = freelist;
		freelist = l;
		l = n;
		gcs++;
	}
}

struct cell *build_list(int n, int sd) {
	struct cell *l;
	int i;
	l = 0;
	for (i = 0; i < n; i++) {
		sd = (sd * 1103515245 + 12345) & 1073741823;
		l = cons(sd % 1000, l);
	}
	return l;
}

int sum_list(struct cell *l) {
	int s;
	s = 0;
	while (l != 0) {
		s = (s + l->val) & 1048575;
		l = l->next;
	}
	return s;
}

struct cell *map_double(struct cell *l) {
	struct cell *out;
	out = 0;
	while (l != 0) {
		out = cons((l->val * 2) & 65535, out);
		l = l->next;
	}
	return out;
}

int length(struct cell *l) {
	if (l == 0) return 0;
	return 1 + length(l->next);
}

int main(void) {
	int round;
	int check;
	check = 0;
	for (round = 0; round < 30; round++) {
		struct cell *l;
		struct cell *m;
		l = build_list(40, round * 13 + 1);
		m = map_double(l);
		check = (check * 31 + sum_list(l) + sum_list(m) + length(m)) & 1048575;
		release(l);
		release(m);
	}
	print_int(check);
	print_int(conses);
	print_int(gcs);
	return 0;
}
