/*
 * fft — fast-Fourier-transform stand-in (paper: fft, 7,583 lines).
 *
 * Two patterns from the paper live here.
 *
 * 1. The §5 code fragment where only points-to analysis enables
 *    promotion: T1 is an address-taken scalar (its address escapes in
 *    setup) and the inner loop stores through pointer parameters.
 *    MOD/REF must assume those stores may modify T1; points-to proves
 *    the pointers only reach the X arrays, so T1 promotes.
 *
 * 2. §3.3 pointer-based promotion: the twiddle accumulator is
 *    accessed through a loop-invariant base pointer in the innermost
 *    loop.
 */

int X1[256];
int X2[256];
int X3[256];

int T1;
int stage_count;

void seed_t1(int *p) {
	*p = 7;
}

/* x2/x1/x3 are pointer parameters: with MOD/REF alone the stores
 * through x2 may modify T1; points-to proves they cannot. */
void butterfly_pass(int *x2, int *x1, int *x3, int n1, int kt) {
	int i;
	int j;
	int k;
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j++) {
			for (k = 0; k < n1; k++) {
				int index1;
				index1 = (i * 4 + j) * n1 + k;
				T1 = (x3[index1 & 255] * kt + T1) & 65535;
				x2[index1 & 255] = (T1 * x1[index1 & 255]) & 65535;
				x2[(index1 + n1) & 255] = (T1 * x1[(index1 + n1) & 255]) & 65535;
			}
		}
	}
}

/* Figure-3 style accumulation: B[i] is invariant in the inner loop,
 * so pointer-based promotion keeps it in a register. */
void accumulate_rows(void) {
	int i;
	int j;
	for (i = 0; i < 16; i++) {
		for (j = 0; j < 16; j++) {
			X3[i] += X1[(i * 16 + j) & 255];
			X3[i] &= 1048575;
		}
	}
}

int main(void) {
	int i;
	int pass;
	int check;
	for (i = 0; i < 256; i++) {
		X1[i] = (i * 7 + 3) & 4095;
		X2[i] = 0;
		X3[i] = (i * 13 + 1) & 4095;
	}
	seed_t1(&T1);
	for (pass = 1; pass <= 8; pass++) {
		butterfly_pass(X2, X1, X3, 8, pass);
		stage_count++;
	}
	accumulate_rows();
	check = T1 ^ stage_count;
	for (i = 0; i < 256; i++) check = (check * 31 + X2[i] + X3[i]) & 1048575;
	print_int(check);
	return 0;
}
