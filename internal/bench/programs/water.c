/*
 * water — molecular-dynamics stand-in (paper: SPEC water).
 *
 * Reproduces the paper's register-pressure anecdote: one loop nest
 * references twenty-eight distinct promotable global scalars every
 * iteration, while the loop already keeps a large set of local
 * running values (positions, velocities, partial forces) in
 * registers. Promotion moves all twenty-eight globals into registers
 * too; the combined demand far exceeds the 32-register supply and the
 * allocator must spill values that are touched every iteration —
 * "promoting twenty-eight values ... caused the register allocator to
 * spill values which resulted in a performance loss" (§5).
 */

int v00; int v01; int v02; int v03; int v04; int v05; int v06;
int v07; int v08; int v09; int v10; int v11; int v12; int v13;
int v14; int v15; int v16; int v17; int v18; int v19; int v20;
int v21; int v22; int v23; int v24; int v25; int v26; int v27;

int forces[128];

int main(void) {
	int step;
	int mol;
	/* Thirty-two loop-carried locals: the baseline register working
	 * set already matches the machine's register supply. */
	int x0; int x1; int x2; int x3; int x4; int x5; int x6; int x7;
	int y0; int y1; int y2; int y3; int y4; int y5; int y6; int y7;
	int z0; int z1; int z2; int z3; int z4; int z5; int z6; int z7;
	int w0; int w1; int w2; int w3; int w4; int w5; int w6; int w7;
	x0 = 1; x1 = 2; x2 = 3; x3 = 4; x4 = 5; x5 = 6; x6 = 7; x7 = 8;
	y0 = 1; y1 = 1; y2 = 2; y3 = 3; y4 = 5; y5 = 8; y6 = 13; y7 = 21;
	z0 = 2; z1 = 4; z2 = 8; z3 = 16; z4 = 32; z5 = 64; z6 = 128; z7 = 256;
	w0 = 3; w1 = 9; w2 = 27; w3 = 81; w4 = 5; w5 = 25; w6 = 125; w7 = 625;
	for (step = 0; step < 40; step++) {
		for (mol = 0; mol < 64; mol++) {
			int f;
			f = forces[(mol * 2 + step) & 127];
			/* Local dynamics: every x/y is read and written each
			 * iteration, keeping all sixteen live across the loop. */
			x0 = (x0 + f) & 65535;      y0 = (y0 ^ x0) & 65535;
			x1 = (x1 + y0) & 65535;     y1 = (y1 ^ x1) & 65535;
			x2 = (x2 + y1) & 65535;     y2 = (y2 ^ x2) & 65535;
			x3 = (x3 + y2) & 65535;     y3 = (y3 ^ x3) & 65535;
			x4 = (x4 + y3) & 65535;     y4 = (y4 ^ x4) & 65535;
			x5 = (x5 + y4) & 65535;     y5 = (y5 ^ x5) & 65535;
			x6 = (x6 + y5) & 65535;     y6 = (y6 ^ x6) & 65535;
			x7 = (x7 + y6) & 65535;     y7 = (y7 ^ x7) & 65535;
			z0 = (z0 + y7) & 65535;     z1 = (z1 ^ z0) & 65535;
			z2 = (z2 + z1) & 65535;     z3 = (z3 ^ z2) & 65535;
			z4 = (z4 + z3) & 65535;     z5 = (z5 ^ z4) & 65535;
			z6 = (z6 + z5) & 65535;     z7 = (z7 ^ z6) & 65535;
			w0 = (w0 + z7) & 65535;     w1 = (w1 ^ w0) & 65535;
			w2 = (w2 + w1) & 65535;     w3 = (w3 ^ w2) & 65535;
			w4 = (w4 + w3) & 65535;     w5 = (w5 ^ w4) & 65535;
			w6 = (w6 + w5) & 65535;     w7 = (w7 ^ w6) & 65535;
			/* Global virial/potential accumulators: all twenty-eight
			 * are promotable in this loop nest. */
			v00 += f;       v00 &= 262143;
			v01 += v00 ^ f; v01 &= 262143;
			v02 += v01 + 3; v02 &= 262143;
			v03 += v02 ^ f; v03 &= 262143;
			v04 += v03 + 5; v04 &= 262143;
			v05 += v04 ^ f; v05 &= 262143;
			v06 += v05 + 7; v06 &= 262143;
			v07 += v06 ^ f; v07 &= 262143;
			v08 += v07 + 9; v08 &= 262143;
			v09 += v08 ^ f; v09 &= 262143;
			v10 += v09 + 2; v10 &= 262143;
			v11 += v10 ^ f; v11 &= 262143;
			v12 += v11 + 4; v12 &= 262143;
			v13 += v12 ^ f; v13 &= 262143;
			v14 += v13 + 6; v14 &= 262143;
			v15 += v14 ^ f; v15 &= 262143;
			v16 += v15 + 8; v16 &= 262143;
			v17 += v16 ^ f; v17 &= 262143;
			v18 += v17 + 1; v18 &= 262143;
			v19 += v18 ^ f; v19 &= 262143;
			v20 += v19 + 3; v20 &= 262143;
			v21 += v20 ^ f; v21 &= 262143;
			v22 += v21 + 5; v22 &= 262143;
			v23 += v22 ^ f; v23 &= 262143;
			v24 += v23 + 7; v24 &= 262143;
			v25 += v24 ^ f; v25 &= 262143;
			v26 += v25 + 9; v26 &= 262143;
			v27 += v26 ^ f; v27 &= 262143;
			forces[mol & 127] = (v27 ^ x7 ^ y7 ^ z7 ^ w7) & 4095;
		}
	}
	print_int(x0 ^ x3 ^ x7 ^ y2 ^ y5 ^ y7 ^ z1 ^ z6 ^ w1 ^ w5 ^ w7);
	print_int(v00 ^ v05 ^ v10 ^ v15 ^ v20 ^ v27);
	print_int(v13);
	return 0;
}
