/*
 * gzip(dec) — decompressor stand-in (paper: gzip decompressing, where
 * promotion changed essentially nothing and occasionally cost a few
 * operations: -0.01/-0.02%).
 *
 * Decoding is dominated by array-to-array copy loops with almost no
 * global scalar traffic inside them; the few globals that do appear
 * are written once per decoded token, so the lifted loads and exit
 * stores roughly cancel the savings.
 */

int tokens;
int out_len;
int crc;

char inbuf[4096];
char outbuf[16384];

void build_compressed(void) {
	int i;
	int sd;
	sd = 555;
	for (i = 0; i < 4096; i++) {
		sd = (sd * 1103515245 + 12345) & 1073741823;
		inbuf[i] = sd % 256;
	}
}

void inflate(void) {
	int ip;
	int olen;
	int c;
	olen = 0;
	ip = 0;
	while (ip < 4090) {
		int ctrl;
		ctrl = inbuf[ip] & 255;
		ip++;
		tokens++;
		if (ctrl < 128) {
			/* literal run of 1-4 bytes */
			int n;
			int k;
			n = (ctrl & 3) + 1;
			for (k = 0; k < n && ip < 4096; k++) {
				outbuf[olen & 16383] = inbuf[ip];
				olen++;
				ip++;
			}
		} else {
			/* back-reference: copy from earlier output */
			int dist;
			int len;
			int k;
			int src;
			dist = ((ctrl & 63) + 1) * 2;
			len = (inbuf[ip] & 7) + 3;
			ip++;
			src = olen - dist;
			if (src < 0) src = 0;
			for (k = 0; k < len; k++) {
				outbuf[olen & 16383] = outbuf[(src + k) & 16383];
				olen++;
			}
		}
	}
	out_len = olen;
	c = 0;
	for (ip = 0; ip < olen && ip < 16384; ip++) {
		c = (c * 31 + (outbuf[ip] & 255)) & 1048575;
	}
	crc = c;
}

int main(void) {
	int round;
	build_compressed();
	for (round = 0; round < 4; round++) inflate();
	print_int(tokens);
	print_int(out_len);
	print_int(crc);
	return 0;
}
