/*
 * dhrystone — synthetic-benchmark stand-in (paper: dhrystone, 1,000ish
 * lines).
 *
 * The paper reports a slight LOSS from promotion here: "values were
 * promoted in a loop that always executed once". The measurement loop
 * below runs its outer body exactly once per call, so each promoted
 * global costs a landing-pad load and an exit store that buy only one
 * saved reference.
 */

int Int_Glob;
int Bool_Glob;
int Ch_1_Glob;
int Ch_2_Glob;
int Err_Glob;
int Ovfl_Glob;

int Arr_1_Glob[50];

int Func_1(int ch1, int ch2) {
	int ch_local;
	ch_local = ch1;
	if (ch_local != ch2) return 0;
	Ch_1_Glob = ch_local;
	return 1;
}

void Proc_7(int a, int b, int *out) {
	*out = a + b + 2;
}

void Proc_4(void) {
	int run;
	/* A "loop" that always executes exactly once: each promoted
	 * global pays a landing-pad load and an exit store for a single
	 * iteration of benefit, so promotion nets a small loss here. */
	run = 1;
	while (run) {
		Bool_Glob = (Bool_Glob + Ch_1_Glob + Int_Glob) & 65535;
		Ch_2_Glob = (Ch_2_Glob ^ Bool_Glob) & 127;
		Int_Glob = (Int_Glob * 3 + 1) & 65535;
		Ch_1_Glob = (Ch_1_Glob + Ch_2_Glob) & 127;
		/* Error accounting that never fires: promotion still lifts
		 * both globals around the loop, paying a load and a store per
		 * call for references that never execute. */
		if (Int_Glob > 100000) {
			Err_Glob++;
		}
		run = 0;
	}
}

int main(void) {
	int i;
	int result;
	Int_Glob = 5;
	for (i = 0; i < 50; i++) Arr_1_Glob[i] = i;
	for (i = 0; i < 2000; i++) {
		if ((i & 3) == 0) Proc_4();
		if (Func_1(i & 127, (i >> 1) & 127)) {
			Ovfl_Glob = i;
			Proc_7(i, Int_Glob, &result);
			Arr_1_Glob[i % 50] = result & 4095;
		}
	}
	print_int(Int_Glob);
	print_int(Bool_Glob);
	print_int(Ch_1_Glob + Ch_2_Glob);
	print_int(Err_Glob + Ovfl_Glob);
	print_int(Arr_1_Glob[17]);
	return 0;
}
