// Package bench packages the 14-program workload suite standing in
// for the paper's benchmarks (Figure 4) and the measurement harness
// that regenerates the evaluation tables: total operations executed
// (Figure 5), stores executed (Figure 6), and loads executed
// (Figure 7), each measured without and with register promotion under
// MOD/REF analysis and under points-to analysis.
package bench

import (
	"embed"
	"fmt"
	"strings"
	"time"

	"regpromo/internal/analysis/certify"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/obs"
)

//go:embed programs/*.c
var sources embed.FS

// Program describes one suite member.
type Program struct {
	// Name is the paper's program name.
	Name string
	// File is the embedded source path.
	File string
	// Desc matches the Figure 4 description column.
	Desc string
}

// Suite lists the benchmark programs in the paper's Figure 4 order
// (gzip appears once per direction, as in the result tables).
func Suite() []Program {
	return []Program{
		{"tsp", "programs/tsp.c", "a traveling salesman problem"},
		{"mlink", "programs/mlink.c", "genetic linkage analysis (FASTLINK)"},
		{"fft", "programs/fft.c", "fast Fourier transform"},
		{"clean", "programs/clean.c", "dead-code elimination pass"},
		{"caches", "programs/caches.c", "cache simulator"},
		{"li", "programs/li.c", "lisp interpreter from SPEC"},
		{"dhrystone", "programs/dhrystone.c", "synthetic integer benchmark"},
		{"water", "programs/water.c", "molecular dynamics simulation"},
		{"indent", "programs/indent.c", "prettyprinter for C programs"},
		{"allroots", "programs/allroots.c", "polynomial root-finder"},
		{"bc", "programs/bc.c", "calculator language from GNU"},
		{"bison", "programs/bison.c", "LR(1) parser generator"},
		{"geb", "programs/geb.c", "graphics compression code from SPEC"},
		{"gzip(enc)", "programs/gzip_enc.c", "file compression (compressing)"},
		{"gzip(dec)", "programs/gzip_dec.c", "file compression (decompressing)"},
	}
}

// Source returns a program's C text.
func Source(p Program) string {
	data, err := sources.ReadFile(p.File)
	if err != nil {
		panic("bench: missing embedded source " + p.File)
	}
	return string(data)
}

// Lines counts source lines, for the Figure 4 listing.
func Lines(p Program) int {
	return strings.Count(Source(p), "\n")
}

// Measurement is one compile-and-run data point.
type Measurement struct {
	Counts  interp.Counts
	Output  string
	Promote int // scalar + pointer promotions performed
	Spilled int

	// Pressure is the static register-pressure report per promotion
	// site (empty when nothing was promoted); see certify.Pressure.
	Pressure []certify.Pressure

	// Exec records how the run happened: which execution engine, a
	// shared or from-scratch front end, and the execution wall time.
	// In a multi-engine measurement it is the first engine's event;
	// Execs carries the full list.
	Exec obs.ExecEvent

	// Execs is the per-engine execution record, one event per engine
	// in the order requested. Single-engine measurements have exactly
	// one entry (aliased by Exec).
	Execs []obs.ExecEvent

	// Passes is the per-pass telemetry (wall time, IR deltas, pass
	// stats) recorded when the measurement was observed; nil for
	// plain Measure calls.
	Passes []*obs.PassEvent
}

// Measure compiles p under cfg from source and executes it on the
// default (flat) engine. The measurement matrix (RunFigures,
// CollectReport) does not go through here: it parses each program once
// and forks the per-configuration pipelines from the shared artifact.
func Measure(p Program, cfg driver.Config) (*Measurement, error) {
	return measureWith(p, cfg, nil)
}

// MeasureObserved is Measure with pass-manager telemetry: the
// returned measurement carries the full per-pass event stream.
func MeasureObserved(p Program, cfg driver.Config) (*Measurement, error) {
	return measureWith(p, cfg, &obs.Pipeline{})
}

func measureWith(p Program, cfg driver.Config, pipe *obs.Pipeline) (*Measurement, error) {
	c, err := driver.Compile(p.Name+".c", Source(p), cfg, pipe)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return execute(p, c, []interp.Engine{interp.EngineFlat}, false, pipe)
}

// measureShared forks cfg's pipeline from the program's parsed
// artifact and executes the result under engine. pipe may be nil.
func measureShared(p Program, fe *driver.Frontend, cfg driver.Config, engine interp.Engine, pipe *obs.Pipeline) (*Measurement, error) {
	return measureSharedEngines(p, fe, cfg, []interp.Engine{engine}, pipe)
}

// measureSharedEngines is measureShared over an engine list: one
// compilation, executed once per engine, with the engines held to
// identical counts, output, and exit status (a disagreement fails the
// measurement — it would mean the parity contract the differential
// tests enforce has been broken on a real workload).
func measureSharedEngines(p Program, fe *driver.Frontend, cfg driver.Config, engines []interp.Engine, pipe *obs.Pipeline) (*Measurement, error) {
	c, err := fe.Compile(cfg, pipe)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return execute(p, c, engines, true, pipe)
}

// frontend parses a suite member once for compile-once sharing.
func frontend(p Program) (*driver.Frontend, error) {
	fe, err := driver.ParseSource(p.Name+".c", Source(p))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return fe, nil
}

// execute runs a compiled program on each requested engine and
// packages the measurement. Engine setup cost — flat-code lowering,
// the native toolchain build — happens before the run timer starts,
// so the per-engine wall times compare pure execution. The first
// engine's counts and output define the measurement; every further
// engine must reproduce them exactly.
func execute(p Program, c *driver.Compilation, engines []interp.Engine, reused bool, pipe *obs.Pipeline) (*Measurement, error) {
	m := &Measurement{
		Promote:  c.Promote.ScalarPromotions + c.Promote.PointerPromotions,
		Spilled:  c.Alloc.Spilled,
		Pressure: c.Pressure(),
	}
	for i, engine := range engines {
		opts := interp.Options{MaxSteps: 1 << 33, Engine: engine}
		if err := c.PrepareEngine(opts); err != nil {
			return nil, fmt.Errorf("%s: %s engine: %w", p.Name, engine, err)
		}
		// One untimed warmup run per engine, so the timed run measures
		// steady-state execution for every engine alike — a freshly
		// loaded native plugin otherwise pays its page-in and first-touch
		// costs inside the timed window, which swamps short programs.
		if _, err := c.Execute(opts); err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		sp := pipe.StartSpan("execute", "interp", 0).
			Label("program", p.Name).Label("engine", engine.String())
		start := time.Now()
		res, err := c.Execute(opts)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		sp.Arg("ops", res.Counts.Ops).
			Arg("loads", res.Counts.Loads).
			Arg("stores", res.Counts.Stores).
			End()
		if i == 0 {
			m.Counts = res.Counts
			m.Output = res.Output
		} else if res.Counts != m.Counts || res.Output != m.Output {
			return nil, fmt.Errorf("%s: engine parity broken: %s counts=%+v output %d bytes, %s counts=%+v output %d bytes",
				p.Name, engines[0], m.Counts, len(m.Output), engine, res.Counts, len(res.Output))
		}
		m.Execs = append(m.Execs, obs.ExecEvent{
			Engine:         engine.String(),
			FrontendReused: reused,
			DurationNS:     time.Since(start).Nanoseconds(),
		})
	}
	m.Exec = m.Execs[0]
	if pipe != nil {
		m.Passes = pipe.Events
	}
	return m, nil
}

// Metric selects which dynamic count a figure reports.
type Metric int

const (
	// TotalOps is Figure 5.
	TotalOps Metric = iota
	// Stores is Figure 6.
	Stores
	// Loads is Figure 7.
	Loads
	// WeightedCycles prices each memory operation at MemLatency
	// cycles and everything else at one, quantifying the paper's
	// remark that "if memory operations take more cycles than other
	// operations, as in many modern machines, the positive impact
	// of promotion will be greater" (§5).
	WeightedCycles
)

// MemLatency is the cycle weight of a load or store in the
// WeightedCycles metric.
const MemLatency = 3

func (m Metric) String() string {
	switch m {
	case TotalOps:
		return "Total Operations"
	case Stores:
		return "Stores"
	case Loads:
		return "Loads"
	case WeightedCycles:
		return fmt.Sprintf("Weighted Cycles (memory op = %d)", MemLatency)
	}
	return "?"
}

func (m Metric) pick(c interp.Counts) int64 {
	switch m {
	case TotalOps:
		return c.Ops
	case Stores:
		return c.Stores
	case Loads:
		return c.Loads
	default:
		return c.Ops + (MemLatency-1)*(c.Loads+c.Stores)
	}
}

// Row is one (program, analysis) line of a results table.
type Row struct {
	Program  string
	Analysis string
	Without  int64
	With     int64
}

// Difference is Without-With (positive means promotion removed
// operations).
func (r Row) Difference() int64 { return r.Without - r.With }

// PercentRemoved matches the paper's "% removed" column.
func (r Row) PercentRemoved() float64 {
	if r.Without == 0 {
		return 0
	}
	return 100 * float64(r.Difference()) / float64(r.Without)
}

// Options tweak the measurement matrix.
type Options struct {
	// PointerPromotion enables §3.3 promotion in the "with" columns
	// (off for the paper's main tables; on for the §3.3 study).
	PointerPromotion bool
	// Programs restricts the suite (nil = all).
	Programs []string
	// K overrides the register supply (0 = default).
	K int
	// Certify re-proves every promotion certificate with the
	// independent region-soundness verifier during each measurement's
	// compile; a refuted certificate fails the measurement.
	Certify bool
	// Engine selects the execution engine for the measurement runs
	// (zero value = the flat engine). Counts are engine-independent —
	// the engines differential test holds them to byte equality — so
	// this only changes measurement wall time.
	Engine interp.Engine
	// Engines, when non-empty, runs every measurement on each listed
	// engine (overriding Engine): one report cell records a timed
	// execution per engine, all held to identical counts and output,
	// so throughput ratios (e.g. native over flat) land in one report.
	Engines []interp.Engine
	// Parallel bounds how many programs are measured concurrently:
	// 1 (or less) measures serially, 0 is treated as 1, and larger
	// values fan the suite out over a worker pool. Results are
	// assembled in suite order either way, so the tables and reports
	// a parallel run produces are identical to a serial run's.
	Parallel int
}

// engineList resolves the effective engine list: Engines verbatim
// when set, else the single Engine.
func (o Options) engineList() []interp.Engine {
	if len(o.Engines) > 0 {
		return o.Engines
	}
	return []interp.Engine{o.Engine}
}

// workers normalizes Options.Parallel for ParallelMap: the harness
// keeps "unset" meaning serial so existing callers measure exactly as
// before.
func (o Options) workers() int {
	if o.Parallel <= 1 {
		return 1
	}
	return o.Parallel
}

// selected returns the suite members the options ask for, in suite
// order.
func (o Options) selected() []Program {
	want := map[string]bool{}
	for _, n := range o.Programs {
		want[n] = true
	}
	var ps []Program
	for _, p := range Suite() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		ps = append(ps, p)
	}
	return ps
}

// FigureResult holds every row of one figure for all three metrics
// (the three figures share the same measurement runs).
type FigureResult struct {
	Rows map[Metric][]Row
	// Promotions and Spills index diagnostics by "program/analysis".
	Promotions map[string]int
	Spills     map[string]int
}

// programFigures is one program's slice of the measurement matrix.
type programFigures struct {
	rows       map[Metric][]Row
	promotions map[string]int
	spills     map[string]int
}

// measureProgram runs one suite member under the four-configuration
// matrix and cross-checks the outputs: a configuration that changes a
// program's observable output indicates a miscompilation and fails
// the measurement. The front end runs once; every configuration forks
// its pipeline from the shared artifact.
func measureProgram(p Program, opts Options) (*programFigures, error) {
	pf := &programFigures{
		rows:       map[Metric][]Row{},
		promotions: map[string]int{},
		spills:     map[string]int{},
	}
	fe, err := frontend(p)
	if err != nil {
		return nil, err
	}
	var outputs []string
	for _, analysis := range []driver.Analysis{driver.ModRef, driver.PointsTo} {
		base := driver.Config{Analysis: analysis, K: opts.K}
		with := base
		with.Promote = true
		with.PointerPromote = opts.PointerPromotion

		m0, err := measureShared(p, fe, base, opts.engineList()[0], nil)
		if err != nil {
			return nil, err
		}
		m1, err := measureShared(p, fe, with, opts.engineList()[0], nil)
		if err != nil {
			return nil, err
		}
		outputs = append(outputs, m0.Output, m1.Output)
		key := p.Name + "/" + analysis.String()
		pf.promotions[key] = m1.Promote
		pf.spills[key] = m1.Spilled
		for _, metric := range []Metric{TotalOps, Stores, Loads, WeightedCycles} {
			pf.rows[metric] = append(pf.rows[metric], Row{
				Program:  p.Name,
				Analysis: analysis.String(),
				Without:  metric.pick(m0.Counts),
				With:     metric.pick(m1.Counts),
			})
		}
	}
	for _, o := range outputs[1:] {
		if o != outputs[0] {
			return nil, fmt.Errorf("%s: configurations disagree on program output", p.Name)
		}
	}
	return pf, nil
}

// RunFigures executes the full measurement matrix: each program is
// compiled and run four times ({modref, pointer} × {without, with
// promotion}), and rows for Figures 5, 6, and 7 (plus the Figure 8
// weighted-cycles extension) are assembled from the same runs.
// Options.Parallel spreads the programs over a worker pool; rows are
// merged back in suite order, so parallel and serial runs produce
// identical results.
func RunFigures(opts Options) (*FigureResult, error) {
	programs := opts.selected()
	parts, err := ParallelMap(len(programs), opts.workers(), func(i int) (*programFigures, error) {
		return measureProgram(programs[i], opts)
	})
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		Rows:       map[Metric][]Row{},
		Promotions: map[string]int{},
		Spills:     map[string]int{},
	}
	for _, pf := range parts {
		for metric, rows := range pf.rows {
			fr.Rows[metric] = append(fr.Rows[metric], rows...)
		}
		for k, v := range pf.promotions {
			fr.Promotions[k] = v
		}
		for k, v := range pf.spills {
			fr.Spills[k] = v
		}
	}
	return fr, nil
}

// FormatTable renders one figure in the paper's layout.
func FormatTable(metric Metric, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", metric)
	fmt.Fprintf(&sb, "%-11s %-8s %12s %12s %12s %10s\n",
		"Program", "analysis", "without", "with", "difference", "% removed")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %-8s %12d %12d %12d %10.2f\n",
			r.Program, r.Analysis, r.Without, r.With, r.Difference(), r.PercentRemoved())
	}
	return sb.String()
}

// FormatFigure4 renders the program-description table.
func FormatFigure4() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-11s %6s  %s\n", "Program", "Lines", "Description")
	for _, p := range Suite() {
		fmt.Fprintf(&sb, "%-11s %6d  %s\n", p.Name, Lines(p), p.Desc)
	}
	return sb.String()
}
