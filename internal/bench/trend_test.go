package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name string) *Report {
	t.Helper()
	r, err := LoadReport(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCompareDetectsRegression checks the gate on the committed
// fixture pair: the regressed report grew dynamic ops by 3.75% and
// lost two promotions, both past the default 1% threshold.
func TestCompareDetectsRegression(t *testing.T) {
	old := loadFixture(t, "trend_old.json")
	cur := loadFixture(t, "trend_regressed.json")
	cr := Compare(old, cur, 1.0)
	if cr.OK() {
		t.Fatal("regressed report passed the gate")
	}
	regs := cr.Regressions()
	byMetric := map[string]Delta{}
	for _, d := range regs {
		byMetric[d.Metric] = d
	}
	ops, ok := byMetric["ops"]
	if !ok {
		t.Fatalf("ops regression not flagged; got %v", regs)
	}
	if ops.Old != 80000 || ops.New != 83000 || ops.Percent != 3.75 || !ops.Gated || !ops.Worse {
		t.Errorf("ops delta = %+v", ops)
	}
	if _, ok := byMetric["promotions"]; !ok {
		t.Errorf("promotions drop not flagged; got %v", regs)
	}
	// compile_ns grew too, but wall time must never gate.
	if _, ok := byMetric["compile_ns"]; ok {
		t.Error("compile_ns delta gated the comparison")
	}
	out := cr.Format()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "matmul/modref+promote ops") {
		t.Errorf("format missing regression row:\n%s", out)
	}
}

// TestCompareImprovementDirection swaps the fixture pair: the same
// deltas read as improvements, and the gate passes.
func TestCompareImprovementDirection(t *testing.T) {
	old := loadFixture(t, "trend_regressed.json")
	cur := loadFixture(t, "trend_old.json")
	cr := Compare(old, cur, 1.0)
	if !cr.OK() {
		t.Fatalf("improving report failed the gate: %v", cr.Regressions())
	}
	imps := cr.Improvements()
	var sawOps, sawPromos bool
	for _, d := range imps {
		switch d.Metric {
		case "ops":
			sawOps = true
		case "promotions":
			sawPromos = true
			if d.Worse {
				t.Error("more promotions marked worse")
			}
		}
	}
	if !sawOps || !sawPromos {
		t.Errorf("improvements missing ops/promotions: %v", imps)
	}
}

// TestCompareIdenticalReports: a self-compare finds deltas (every
// metric is reported) but no change past the threshold.
func TestCompareIdenticalReports(t *testing.T) {
	r := loadFixture(t, "trend_old.json")
	cr := Compare(r, r, 1.0)
	if !cr.OK() {
		t.Fatalf("self-compare regressed: %v", cr.Regressions())
	}
	if len(cr.Deltas) == 0 {
		t.Fatal("self-compare produced no deltas")
	}
	if len(cr.Improvements()) != 0 {
		t.Errorf("self-compare improved: %v", cr.Improvements())
	}
	if out := cr.Format(); !strings.Contains(out, "no change past threshold") {
		t.Errorf("format:\n%s", out)
	}
}

// TestCompareThreshold checks that raising the threshold releases the
// gate: every fixture regression is under 200%.
func TestCompareThreshold(t *testing.T) {
	old := loadFixture(t, "trend_old.json")
	cur := loadFixture(t, "trend_regressed.json")
	if cr := Compare(old, cur, 200); !cr.OK() {
		t.Errorf("threshold 200%% still gated: %v", cr.Regressions())
	}
}

// TestCompareSkippedCells: cells present in only one report are
// counted, not silently dropped.
func TestCompareSkippedCells(t *testing.T) {
	old := loadFixture(t, "trend_old.json")
	cur := loadFixture(t, "trend_regressed.json")
	cur.Programs = append(cur.Programs, ProgramReport{
		Name:    "extra",
		Configs: []ConfigReport{{Analysis: "modref"}},
	})
	cr := Compare(old, cur, 1.0)
	if cr.SkippedCells != 1 {
		t.Errorf("SkippedCells = %d, want 1", cr.SkippedCells)
	}
	if out := cr.Format(); !strings.Contains(out, "skipped") {
		t.Errorf("format does not mention skipped cells:\n%s", out)
	}
}

// TestCompareMetricDeltas: process-wide counters are diffed but never
// gate.
func TestCompareMetricDeltas(t *testing.T) {
	old := loadFixture(t, "trend_old.json")
	cur := loadFixture(t, "trend_regressed.json")
	cr := Compare(old, cur, 1.0)
	var found bool
	for _, d := range cr.Deltas {
		if d.Metric == "metric/interp.ops" {
			found = true
			if d.Gated {
				t.Error("process metric delta is gated")
			}
			if d.Old != 180000 || d.New != 183000 {
				t.Errorf("metric delta = %+v", d)
			}
		}
	}
	if !found {
		t.Error("metric/interp.ops delta missing")
	}
}

// TestCompareEngineExecCells covers the per-engine wall-time cells
// across the schema-5 bump. The old fixture predates engine labels (a
// single legacy Exec with no engine name); the new one carries flat
// and native Execs. The legacy event must line up with the flat
// series, the native cell — absent from the baseline — must be
// skipped rather than failing the comparison, and no wall time may
// gate.
func TestCompareEngineExecCells(t *testing.T) {
	old := loadFixture(t, "trend_engines_old.json")
	cur := loadFixture(t, "trend_engines_new.json")
	cr := Compare(old, cur, 1.0)
	if !cr.OK() {
		t.Fatalf("engine-cell compare regressed: %v", cr.Regressions())
	}
	byMetric := map[string]Delta{}
	for _, d := range cr.Deltas {
		byMetric[d.Metric] = d
	}
	flat, ok := byMetric["exec_ns/flat"]
	if !ok {
		t.Fatal("exec_ns/flat delta missing (legacy Exec did not map to flat)")
	}
	if flat.Old != 900000 || flat.New != 450000 || flat.Gated {
		t.Errorf("exec_ns/flat delta = %+v", flat)
	}
	if d, ok := byMetric["exec_ns/native"]; ok {
		t.Errorf("native engine compared against a baseline that never measured it: %+v", d)
	}

	// Both reports carrying engine cells: each engine gets its own
	// informational delta.
	cr = Compare(cur, cur, 1.0)
	for _, engine := range []string{"flat", "native"} {
		var found bool
		for _, d := range cr.Deltas {
			if d.Metric == "exec_ns/"+engine {
				found = true
				if d.Gated {
					t.Errorf("exec_ns/%s is gated", engine)
				}
			}
		}
		if !found {
			t.Errorf("exec_ns/%s delta missing from self-compare", engine)
		}
	}

	// And the other direction of the schema bump — a multi-engine
	// baseline against a flat-only run — skips the vanished engine
	// without failing.
	cr = Compare(cur, old, 1.0)
	if !cr.OK() {
		t.Fatalf("reverse compare regressed: %v", cr.Regressions())
	}
	for _, d := range cr.Deltas {
		if d.Metric == "exec_ns/native" {
			t.Errorf("native engine compared against a run that never measured it: %+v", d)
		}
	}
}

// copyFixture installs a fixture under a BENCH_*.json name in dir.
func copyFixture(t *testing.T, dir, fixture, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadTrend checks history loading: filename order, the
// newest-pair gate, and the per-report trend table.
func TestLoadTrend(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadTrend(dir); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("empty dir: err = %v, want ErrNotExist", err)
	}
	copyFixture(t, dir, "trend_old.json", "BENCH_20260801T000000.json")
	copyFixture(t, dir, "trend_regressed.json", "BENCH_20260802T000000.json")
	tr, err := LoadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(tr.Points))
	}
	if filepath.Base(tr.Points[0].Path) != "BENCH_20260801T000000.json" {
		t.Errorf("history out of order: %s first", tr.Points[0].Path)
	}
	cr := tr.Compare(1.0)
	if cr == nil || cr.OK() {
		t.Fatalf("newest-pair compare = %+v, want a gated regression", cr)
	}
	out := tr.Format()
	if !strings.Contains(out, "BENCH_20260801T000000.json") || !strings.Contains(out, "+1.67%") {
		t.Errorf("trend table:\n%s", out)
	}
	// A single report is a valid history but yields no comparison.
	solo := t.TempDir()
	copyFixture(t, solo, "trend_old.json", "BENCH_1.json")
	st, err := LoadTrend(solo)
	if err != nil {
		t.Fatal(err)
	}
	if st.Compare(1.0) != nil {
		t.Error("single-point history produced a comparison")
	}
}

// TestBaselineBefore: the newest report other than the excluded one.
func TestBaselineBefore(t *testing.T) {
	dir := t.TempDir()
	copyFixture(t, dir, "trend_old.json", "BENCH_20260801T000000.json")
	newest := copyFixture(t, dir, "trend_regressed.json", "BENCH_20260802T000000.json")
	r, path, err := BaselineBefore(dir, newest)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_20260801T000000.json" {
		t.Errorf("baseline = %s", path)
	}
	if r.Timestamp != "2026-08-01T00:00:00Z" {
		t.Errorf("loaded wrong report: %s", r.Timestamp)
	}
	// Excluding the only other file leaves nothing.
	if _, _, err := BaselineBefore(t.TempDir(), "x.json"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("empty dir: err = %v, want ErrNotExist", err)
	}
}

// TestPct pins the relative-change corner cases.
func TestPct(t *testing.T) {
	cases := []struct {
		old, cur int64
		want     float64
	}{
		{0, 0, 0},
		{0, 5, 100},
		{100, 150, 50},
		{200, 100, -50},
	}
	for _, c := range cases {
		if got := pct(c.old, c.cur); got != c.want {
			t.Errorf("pct(%d, %d) = %v, want %v", c.old, c.cur, got, c.want)
		}
	}
}
