package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"regpromo/internal/driver"
)

// TestCollectReport runs the observed matrix on a small subset and
// checks the report carries everything the acceptance criteria name:
// all four configurations per program, dynamic counts, per-pass wall
// time, and IR-delta records.
func TestCollectReport(t *testing.T) {
	r, err := CollectReport(Options{Programs: []string{"tsp", "dhrystone"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != SchemaVersion {
		t.Fatalf("schema = %q", r.Schema)
	}
	if len(r.Programs) != 2 {
		t.Fatalf("got %d programs", len(r.Programs))
	}
	for _, p := range r.Programs {
		if len(p.Configs) != 4 {
			t.Fatalf("%s: got %d configs, want the paper's 4", p.Name, len(p.Configs))
		}
		if p.Lines <= 0 {
			t.Fatalf("%s: missing line count", p.Name)
		}
		for _, c := range p.Configs {
			if c.Counts.Ops <= 0 {
				t.Fatalf("%s/%s: no dynamic counts", p.Name, c.Analysis)
			}
			if len(c.Passes) == 0 {
				t.Fatalf("%s/%s: no per-pass records", p.Name, c.Analysis)
			}
			if c.CompileNS <= 0 {
				t.Fatalf("%s/%s: no compile wall time", p.Name, c.Analysis)
			}
			names := map[string]bool{}
			for _, e := range c.Passes {
				names[e.Name] = true
			}
			// Compile-once sharing: each configuration's stream opens
			// with the fork-from-artifact stage, not a repeated parse.
			if !names[driver.PassFrontendReuse] || !names[driver.PassRegalloc] {
				t.Fatalf("%s/%s: pass stream incomplete: %v", p.Name, c.Analysis, names)
			}
			if names[driver.PassFrontend] {
				t.Fatalf("%s/%s: front end re-ran despite the shared artifact", p.Name, c.Analysis)
			}
			if c.Promote != names[driver.PassPromote] {
				t.Fatalf("%s/%s: promote pass presence disagrees with config", p.Name, c.Analysis)
			}
			if c.Exec.Engine != "flat" || !c.Exec.FrontendReused || c.Exec.DurationNS <= 0 {
				t.Fatalf("%s/%s: execution telemetry incomplete: %+v", p.Name, c.Analysis, c.Exec)
			}
		}
	}
	// Figures: 4 figures × (2 programs × 2 analyses) rows, agreeing
	// with an unobserved RunFigures over the same subset.
	if len(r.Figures) != 4 {
		t.Fatalf("got %d figures", len(r.Figures))
	}
	fr, err := RunFigures(Options{Programs: []string{"tsp", "dhrystone"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range r.Figures {
		if len(fig.Rows) != 4 {
			t.Fatalf("figure %d: got %d rows", fig.Figure, len(fig.Rows))
		}
	}
	wantOps := fr.Rows[TotalOps]
	gotOps := r.Figures[0].Rows
	for i := range wantOps {
		if gotOps[i].Program != wantOps[i].Program ||
			gotOps[i].Without != wantOps[i].Without ||
			gotOps[i].With != wantOps[i].With {
			t.Fatalf("figure 5 row %d disagrees with RunFigures: %+v vs %+v",
				i, gotOps[i], wantOps[i])
		}
	}
}

// TestReportJSONRoundTripAndBaseline writes a report to a BENCH_*.json
// file, reloads it through the baseline loader, and checks nothing is
// lost.
func TestReportJSONRoundTripAndBaseline(t *testing.T) {
	r, err := CollectReport(Options{Programs: []string{"tsp"}})
	if err != nil {
		t.Fatal(err)
	}
	r.Timestamp = "2026-08-06T00:00:00Z"

	dir := t.TempDir()
	if _, _, err := LatestBaseline(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty dir should report ErrNotExist, got %v", err)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Two baselines: the loader must pick the newer one.
	old := filepath.Join(dir, "BENCH_20250101T000000.json")
	if err := os.WriteFile(old, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	newer := filepath.Join(dir, "BENCH_20260806T120000.json")
	if err := os.WriteFile(newer, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	back, path, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != newer {
		t.Fatalf("loaded %s, want %s", path, newer)
	}
	if !reflect.DeepEqual(back, r) {
		t.Fatal("report does not round-trip through BENCH_*.json")
	}
	p, ok := back.Program("tsp")
	if !ok {
		t.Fatal("tsp missing after reload")
	}
	if c, ok := p.Config("modref", true); !ok || c.Counts.Ops <= 0 {
		t.Fatal("config lookup broken after reload")
	}
}

// TestLoadReportRejectsGarbage: schema and syntax failures are
// reported, not silently accepted.
func TestLoadReportRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if err := os.WriteFile(bad, []byte(`{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("syntax error accepted")
	}
	var r Report
	data, _ := json.Marshal(map[string]string{"schema": SchemaVersion})
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
}
