package bench

import "regpromo/internal/par"

// The shared bounded worker pool lives in internal/par so the driver
// can use it without importing this package (bench imports driver);
// these wrappers keep the original call sites — the benchmark matrix
// here and the seed fan-out in internal/difftest — unchanged.

// DefaultWorkers is the worker count used when a caller passes a
// non-positive parallelism: one worker per available CPU.
func DefaultWorkers() int { return par.DefaultWorkers() }

// ParallelMap runs fn over the work items 0..n-1 on at most workers
// goroutines and returns the results in item order; see par.ParallelMap
// for the full contract (bounded concurrency, input-order results,
// fail-fast with the lowest-index error).
func ParallelMap[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return par.ParallelMap(n, workers, fn)
}
