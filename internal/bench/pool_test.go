package bench

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestParallelMapOrdersResults(t *testing.T) {
	n := 200
	got, err := ParallelMap(n, 8, func(i int) (int, error) {
		// Uneven work so completion order scrambles.
		v := 0
		for j := 0; j < (i%7)*1000; j++ {
			v += j
		}
		_ = v
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelMapEmptyAndSerial(t *testing.T) {
	if got, err := ParallelMap(0, 4, func(int) (int, error) { return 0, nil }); err != nil || got != nil {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
	got, err := ParallelMap(3, 1, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"0", "1", "2"}) {
		t.Fatalf("serial map: got %v", got)
	}
}

func TestParallelMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := ParallelMap(50, workers, func(i int) (int, error) {
			if i == 17 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
	}
}

// poolPrograms is a small, cheap subset used by the determinism tests.
var poolPrograms = []string{"allroots", "dhrystone", "tsp"}

// TestRunFiguresParallelDeterminism: the parallel measurement matrix
// must render byte-identical tables to the serial one.
func TestRunFiguresParallelDeterminism(t *testing.T) {
	serial, err := RunFigures(Options{Programs: poolPrograms})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigures(Options{Programs: poolPrograms, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{TotalOps, Stores, Loads, WeightedCycles} {
		s, p := FormatTable(m, serial.Rows[m]), FormatTable(m, par.Rows[m])
		if s != p {
			t.Errorf("%s: parallel table differs from serial\nserial:\n%s\nparallel:\n%s", m, s, p)
		}
	}
	if !reflect.DeepEqual(serial.Promotions, par.Promotions) || !reflect.DeepEqual(serial.Spills, par.Spills) {
		t.Error("diagnostic maps differ between serial and parallel runs")
	}
}

// TestCollectReportParallelDeterminism: with wall-clock fields
// stripped, the JSON report must be byte-identical however the
// programs were scheduled.
func TestCollectReportParallelDeterminism(t *testing.T) {
	render := func(parallel int) []byte {
		r, err := CollectReport(Options{Programs: poolPrograms, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		r.StripTimings()
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if s, p := render(1), render(4); !bytes.Equal(s, p) {
		t.Error("stripped parallel report differs from serial report")
	}
}
