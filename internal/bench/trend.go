package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"regpromo/internal/analysis/certify"
	"regpromo/internal/obs"
)

// This file is the regression-detection half of the benchmark
// harness: it loads the accumulated BENCH_*.json history (Trend),
// diffs two reports cell by cell (Compare), and classifies the deltas
// into regressions and improvements against a percentage threshold.
//
// Only deterministic quantities gate the verdict — dynamic operation
// counts, loads, stores, promotions, spills. Wall-clock stage times
// and the process-wide metrics snapshot are diffed too, but
// informationally: they vary run to run on shared hardware, and a
// regression gate that flakes on scheduling noise trains people to
// ignore it.

// Delta is one compared quantity between two reports.
type Delta struct {
	// Program and Config locate the cell ("" for whole-report
	// quantities like process metrics).
	Program string `json:"program,omitempty"`
	Config  string `json:"config,omitempty"`
	// Metric names the compared quantity ("ops", "loads", "stores",
	// "promotions", "spilled", "compile_ns", "stage_ns/<stage>",
	// "metric/<name>").
	Metric string `json:"metric"`
	Old    int64  `json:"old"`
	New    int64  `json:"new"`
	// Percent is the signed relative change, 100*(new-old)/old.
	Percent float64 `json:"percent"`
	// Worse is the direction-adjusted verdict: true when the change
	// moves the metric the bad way (more ops, fewer promotions).
	Worse bool `json:"worse"`
	// Gated marks deterministic quantities that participate in the
	// nonzero-exit threshold; ungated deltas are informational.
	Gated bool `json:"gated"`
}

// CompareReport is the full diff of two benchmark reports.
type CompareReport struct {
	OldPath string `json:"old_path,omitempty"`
	NewPath string `json:"new_path,omitempty"`
	// Threshold is the gating percentage: a gated delta whose
	// magnitude reaches it is a regression (or improvement).
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// SkippedCells counts (program, config) cells present in only one
	// of the two reports and therefore not compared.
	SkippedCells int `json:"skipped_cells,omitempty"`
}

// configKey labels a configuration cell for display and matching.
func configKey(c *ConfigReport) string {
	if c.Promote {
		return c.Analysis + "+promote"
	}
	return c.Analysis
}

// pct computes the signed relative change; a move away from zero
// counts as 100%.
func pct(old, cur int64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return 100 * float64(cur-old) / float64(old)
}

// delta assembles one Delta; higherIsBetter flips the Worse verdict
// for quantities (promotions) where growth is the good direction.
func delta(program, config, metric string, old, cur int64, higherIsBetter, gated bool) Delta {
	worse := cur > old
	if higherIsBetter {
		worse = cur < old
	}
	return Delta{
		Program: program,
		Config:  config,
		Metric:  metric,
		Old:     old,
		New:     cur,
		Percent: pct(old, cur),
		Worse:   old != cur && worse,
		Gated:   gated,
	}
}

// Compare diffs two benchmark reports cell by cell. Every quantity is
// reported as a Delta; only the deterministic ones are gated (see the
// file comment). Cells present in only one report are skipped and
// counted.
func Compare(old, cur *Report, threshold float64) *CompareReport {
	cr := &CompareReport{Threshold: threshold}
	for i := range cur.Programs {
		np := &cur.Programs[i]
		op, ok := old.Program(np.Name)
		if !ok {
			cr.SkippedCells += len(np.Configs)
			continue
		}
		for j := range np.Configs {
			nc := &np.Configs[j]
			oc, ok := op.Config(nc.Analysis, nc.Promote)
			if !ok {
				cr.SkippedCells++
				continue
			}
			key := configKey(nc)
			cr.Deltas = append(cr.Deltas,
				delta(np.Name, key, "ops", oc.Counts.Ops, nc.Counts.Ops, false, true),
				delta(np.Name, key, "loads", oc.Counts.Loads, nc.Counts.Loads, false, true),
				delta(np.Name, key, "stores", oc.Counts.Stores, nc.Counts.Stores, false, true),
				delta(np.Name, key, "promotions", int64(oc.Promotions), int64(nc.Promotions), true, true),
				delta(np.Name, key, "spilled", int64(oc.Spilled), int64(nc.Spilled), false, true),
				delta(np.Name, key, "compile_ns", oc.CompileNS, nc.CompileNS, false, false),
			)
			// Static pressure (schema 6+) is deterministic, so it gates:
			// a promotion change that pushes a site over the register
			// budget — or deepens the worst boundary — is a regression
			// even when the dynamic counts improve (the spilling shows
			// up at allocation, not in the interpreter's counters).
			if len(oc.Pressure) > 0 || len(nc.Pressure) > 0 {
				cr.Deltas = append(cr.Deltas,
					delta(np.Name, key, "pressure/over_budget", overBudgetSites(oc.Pressure), overBudgetSites(nc.Pressure), false, true),
					delta(np.Name, key, "pressure/max_live", worstMaxLive(oc.Pressure), worstMaxLive(nc.Pressure), false, true),
				)
			}
			for _, stage := range sortedStageNames(oc.StageNS, nc.StageNS) {
				cr.Deltas = append(cr.Deltas,
					delta(np.Name, key, "stage_ns/"+stage, oc.StageNS[stage], nc.StageNS[stage], false, false))
			}
			// Per-engine execution wall times (schema 5+). An engine
			// is compared only when both reports carry a cell for it:
			// a pre-native baseline diffed against a multi-engine run
			// simply skips the engines it never measured instead of
			// failing the comparison. ExecFor's legacy fallback maps
			// an old single-Exec report onto its engine name, so the
			// flat series stays continuous across the schema bump.
			// Wall times are informational, like every other timing.
			for _, engine := range execEngines(oc, nc) {
				oe, okOld := oc.ExecFor(engine)
				ne, okNew := nc.ExecFor(engine)
				if !okOld || !okNew {
					continue
				}
				cr.Deltas = append(cr.Deltas,
					delta(np.Name, key, "exec_ns/"+engine, oe.DurationNS, ne.DurationNS, false, false))
			}
		}
	}
	// Scale-tier cell: the deterministic work counts gate (an
	// incremental-analysis regression shows up as warm sccs_solved
	// growing or sccs_cached shrinking); wall-clock times and the
	// derived speedup stay informational. Identical is gated with a
	// zero-tolerance reading: any flip from 1 to 0 is a 100% move.
	if old.Scale != nil && cur.Scale != nil &&
		old.Scale.Seed == cur.Scale.Seed && old.Scale.Functions == cur.Scale.Functions {
		os, cs := old.Scale, cur.Scale
		cr.Deltas = append(cr.Deltas,
			delta("scale", "", "sccs", int64(os.SCCs), int64(cs.SCCs), false, false),
			delta("scale", "", "cold/sccs_solved", int64(os.Cold.SCCsSolved), int64(cs.Cold.SCCsSolved), false, true),
			delta("scale", "", "warm/sccs_solved", int64(os.Warm.SCCsSolved), int64(cs.Warm.SCCsSolved), false, true),
			delta("scale", "", "warm/sccs_cached", int64(os.Warm.SCCsCached), int64(cs.Warm.SCCsCached), true, true),
			delta("scale", "", "identical", boolInt(os.Identical), boolInt(cs.Identical), true, true),
			delta("scale", "", "cold/analysis_ns", os.Cold.AnalysisNS, cs.Cold.AnalysisNS, false, false),
			delta("scale", "", "warm/analysis_ns", os.Warm.AnalysisNS, cs.Warm.AnalysisNS, false, false),
		)
	}
	// Process-wide metrics: counters only, informational — they fold
	// in everything the process did, not just the matrix.
	if old.Metrics != nil && cur.Metrics != nil {
		for _, nc := range cur.Metrics.Counters {
			if ov, ok := old.Metrics.Counter(nc.Name); ok {
				cr.Deltas = append(cr.Deltas,
					delta("", "", "metric/"+nc.Name, ov, nc.Value, false, false))
			}
		}
	}
	return cr
}

// overBudgetSites counts a cell's promotion sites flagged over the
// register budget.
func overBudgetSites(ps []certify.Pressure) int64 {
	var n int64
	for i := range ps {
		if ps[i].OverBudget {
			n++
		}
	}
	return n
}

// worstMaxLive returns the largest simultaneously-live promoted-value
// count across a cell's promotion sites.
func worstMaxLive(ps []certify.Pressure) int64 {
	var max int64
	for i := range ps {
		if v := int64(ps[i].MaxLive); v > max {
			max = v
		}
	}
	return max
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// execEngines merges the engine names recorded by both cells'
// execution events, in stable order: the new cell's order first (it
// reflects the run's -engine list), then any engine only the old cell
// measured. A legacy cell (single Exec, no Execs) contributes its one
// engine name, with the pre-label era counting as flat.
func execEngines(old, cur *ConfigReport) []string {
	var names []string
	seen := map[string]bool{}
	add := func(events []obs.ExecEvent, legacy obs.ExecEvent) {
		for _, e := range events {
			if e.Engine != "" && !seen[e.Engine] {
				seen[e.Engine] = true
				names = append(names, e.Engine)
			}
		}
		if len(events) == 0 && legacy != (obs.ExecEvent{}) {
			name := legacy.Engine
			if name == "" {
				name = "flat"
			}
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	add(cur.Execs, cur.Exec)
	add(old.Execs, old.Exec)
	return names
}

// sortedStageNames merges the stage keys of both cells, sorted.
func sortedStageNames(a, b map[string]int64) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// overThreshold reports whether d's magnitude reaches the gate.
func (cr *CompareReport) overThreshold(d Delta) bool {
	mag := d.Percent
	if mag < 0 {
		mag = -mag
	}
	return mag >= cr.Threshold
}

// Regressions returns the gated deltas that moved the bad direction
// past the threshold — the set that makes OK() false.
func (cr *CompareReport) Regressions() []Delta {
	var out []Delta
	for _, d := range cr.Deltas {
		if d.Gated && d.Worse && cr.overThreshold(d) {
			out = append(out, d)
		}
	}
	return out
}

// Improvements returns the gated deltas that moved the good direction
// past the threshold.
func (cr *CompareReport) Improvements() []Delta {
	var out []Delta
	for _, d := range cr.Deltas {
		if d.Gated && !d.Worse && d.Old != d.New && cr.overThreshold(d) {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the comparison found no gated regression.
func (cr *CompareReport) OK() bool { return len(cr.Regressions()) == 0 }

// Format renders the comparison as a table: regressions first, then
// improvements, then any informational delta past the threshold, then
// a one-line summary.
func (cr *CompareReport) Format() string {
	var sb strings.Builder
	row := func(verdict string, d Delta) {
		loc := d.Metric
		if d.Program != "" {
			loc = fmt.Sprintf("%s/%s %s", d.Program, d.Config, d.Metric)
		}
		fmt.Fprintf(&sb, "%-12s %-42s %14d -> %-14d %+7.2f%%\n", verdict, loc, d.Old, d.New, d.Percent)
	}
	regs := cr.Regressions()
	imps := cr.Improvements()
	for _, d := range regs {
		row("REGRESSION", d)
	}
	for _, d := range imps {
		row("improvement", d)
	}
	info := 0
	for _, d := range cr.Deltas {
		if !d.Gated && d.Old != d.New && cr.overThreshold(d) {
			row("info", d)
			info++
		}
	}
	if len(regs) == 0 && len(imps) == 0 && info == 0 {
		sb.WriteString("no change past threshold\n")
	}
	fmt.Fprintf(&sb, "compared %d deltas (threshold %.2f%%): %d regression(s), %d improvement(s)",
		len(cr.Deltas), cr.Threshold, len(regs), len(imps))
	if cr.SkippedCells > 0 {
		fmt.Fprintf(&sb, ", %d cell(s) skipped (present in only one report)", cr.SkippedCells)
	}
	sb.WriteString("\n")
	return sb.String()
}

// TrendPoint is one loaded report of the history.
type TrendPoint struct {
	Path   string
	Report *Report
}

// Trend is the accumulated BENCH_*.json history, oldest first
// (timestamped filenames sort chronologically).
type Trend struct {
	Points []TrendPoint
}

// LoadTrend loads every BENCH_*.json in dir, in filename order. It
// returns os.ErrNotExist when the directory holds no reports.
func LoadTrend(dir string) (*Trend, error) {
	matches, err := filepath.Glob(filepath.Join(dir, BaselineGlob))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, os.ErrNotExist
	}
	sort.Strings(matches)
	t := &Trend{}
	for _, path := range matches {
		r, err := LoadReport(path)
		if err != nil {
			return nil, err
		}
		t.Points = append(t.Points, TrendPoint{Path: path, Report: r})
	}
	return t, nil
}

// totals sums a report's deterministic headline quantities across all
// cells.
func totals(r *Report) (ops, promotions, compileNS int64) {
	for i := range r.Programs {
		for j := range r.Programs[i].Configs {
			c := &r.Programs[i].Configs[j]
			ops += c.Counts.Ops
			promotions += int64(c.Promotions)
			compileNS += c.CompileNS
		}
	}
	return
}

// Compare diffs the two newest reports of the history against the
// threshold, or returns nil when fewer than two reports exist.
func (t *Trend) Compare(threshold float64) *CompareReport {
	if len(t.Points) < 2 {
		return nil
	}
	prev := t.Points[len(t.Points)-2]
	last := t.Points[len(t.Points)-1]
	cr := Compare(prev.Report, last.Report, threshold)
	cr.OldPath, cr.NewPath = prev.Path, last.Path
	return cr
}

// Format renders the history as one line per report: headline totals
// plus the dynamic-ops change against the previous point.
func (t *Trend) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %-22s %16s %12s %14s %9s\n",
		"report", "timestamp", "total ops", "promotions", "compile_ns", "Δops")
	var prevOps int64
	for i, p := range t.Points {
		ops, promos, compileNS := totals(p.Report)
		change := "-"
		if i > 0 {
			change = fmt.Sprintf("%+.2f%%", pct(prevOps, ops))
		}
		fmt.Fprintf(&sb, "%-36s %-22s %16d %12d %14d %9s\n",
			filepath.Base(p.Path), p.Report.Timestamp, ops, promos, compileNS, change)
		prevOps = ops
	}
	return sb.String()
}

// BaselineBefore loads the newest BENCH_*.json in dir other than
// exclude (compared by cleaned path), for comparing a fresh report
// against the previous baseline. It returns os.ErrNotExist when no
// other baseline exists.
func BaselineBefore(dir, exclude string) (*Report, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, BaselineGlob))
	if err != nil {
		return nil, "", err
	}
	sort.Strings(matches)
	ex := filepath.Clean(exclude)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Clean(matches[i]) == ex {
			continue
		}
		r, err := LoadReport(matches[i])
		if err != nil {
			return nil, "", err
		}
		return r, matches[i], nil
	}
	return nil, "", os.ErrNotExist
}
