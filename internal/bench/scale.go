package bench

import (
	"fmt"

	"regpromo/internal/analysis/cache"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/testgen"
)

// This file is the scale tier: where the paper-suite tiers measure
// the quality of the generated code on small programs, the scale tier
// measures the compiler itself on a ~1000-function module — cold
// interprocedural analysis, then warm re-analysis of the same module
// with one function edited, sharing one analysis cache. Its headline
// quantities are the warm/cold analysis wall-time ratio and the
// solved-vs-cached SCC counts; its soundness gate is that the warm
// compile's IL is byte-identical to an uncached compile of the same
// edited source.

// ScaleOptions selects the scale-tier run.
type ScaleOptions struct {
	// Seed drives module generation (default 1).
	Seed int64
	// Funcs is the helper-function count (default 1000; CI smoke runs
	// use a smaller value).
	Funcs int
	// Edit is the helper index edited between the cold and warm
	// compiles; out-of-range (including the default 0 via Normalize
	// semantics: negative) picks the middle helper.
	Edit int
	// Execute additionally runs both compiled modules and checks the
	// edited module's checksum agrees between the warm and scratch
	// compiles.
	Execute bool
}

// ScalePhase is one compile's analysis cost.
type ScalePhase struct {
	// AnalysisNS is wall time summed over the interprocedural analysis
	// passes (driver.PassStage "analysis"); CompileNS is the whole
	// pipeline including the front end. Wall-clock, so informational.
	AnalysisNS int64 `json:"analysis_ns"`
	CompileNS  int64 `json:"compile_ns"`
	// SCCsSolved and SCCsCached count component fixpoints computed
	// versus replayed from the cache, summed over the pipeline's
	// analysis passes. Deterministic.
	SCCsSolved int `json:"sccs_solved"`
	SCCsCached int `json:"sccs_cached"`
}

// ScaleReport is the scale tier's cell in the bench report
// (regpromo-bench/4).
type ScaleReport struct {
	Seed      int64 `json:"seed"`
	Functions int   `json:"functions"`
	Lines     int   `json:"lines"`
	// SCCs is the callgraph component count at first analysis.
	SCCs int `json:"sccs"`
	// EditedFunc names the helper edited between cold and warm.
	EditedFunc string     `json:"edited_func"`
	Cold       ScalePhase `json:"cold"`
	Warm       ScalePhase `json:"warm"`
	// Speedup is Cold.AnalysisNS / Warm.AnalysisNS (wall-clock,
	// informational; the deterministic warm-work gate is
	// Warm.SCCsSolved ≪ SCCs).
	Speedup float64 `json:"analysis_speedup"`
	// Identical certifies the incremental result: the warm compile's
	// final IL is byte-identical to compiling the edited source with
	// no cache.
	Identical bool `json:"identical"`
}

// RunScale generates the scale module, compiles it cold with a fresh
// analysis cache, recompiles the one-function-edited variant warm
// against the same cache, and compiles the edited variant once more
// with no cache as the bit-identity reference.
func RunScale(o ScaleOptions) (*ScaleReport, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Funcs <= 0 {
		o.Funcs = 1000
	}
	if o.Edit < 0 || o.Edit >= o.Funcs {
		o.Edit = o.Funcs / 2
	}
	base := testgen.Scale(testgen.ScaleOptions{Seed: o.Seed, Funcs: o.Funcs, Edit: -1})
	edited := testgen.Scale(testgen.ScaleOptions{Seed: o.Seed, Funcs: o.Funcs, Edit: o.Edit})

	store := cache.NewStore()
	cfg := driver.Config{Analysis: driver.PointsTo, Promote: true, AnalysisCache: store}

	coldC, cold, sccs, err := compileScale("scale-cold.c", base, cfg)
	if err != nil {
		return nil, fmt.Errorf("cold compile: %w", err)
	}
	warmC, warm, _, err := compileScale("scale-warm.c", edited, cfg)
	if err != nil {
		return nil, fmt.Errorf("warm compile: %w", err)
	}
	scratchCfg := cfg
	scratchCfg.AnalysisCache = nil
	scratchC, _, _, err := compileScale("scale-scratch.c", edited, scratchCfg)
	if err != nil {
		return nil, fmt.Errorf("scratch compile: %w", err)
	}

	r := &ScaleReport{
		Seed:       o.Seed,
		Functions:  o.Funcs,
		Lines:      countLines(base),
		SCCs:       sccs,
		EditedFunc: testgen.ScaleFuncName(o.Edit),
		Cold:       cold,
		Warm:       warm,
		Identical:  ir.FormatModule(warmC.Module) == ir.FormatModule(scratchC.Module),
	}
	if warm.AnalysisNS > 0 {
		r.Speedup = float64(cold.AnalysisNS) / float64(warm.AnalysisNS)
	}
	if o.Execute {
		if err := scaleExecute(coldC, warmC, scratchC); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// compileScale compiles one source under an observer and folds the
// pass events into a ScalePhase. sccs is the component count the
// pipeline's first MOD/REF pass reported.
func compileScale(name, src string, cfg driver.Config) (*driver.Compilation, ScalePhase, int, error) {
	pipe := &obs.Pipeline{}
	c, err := driver.Compile(name, src, cfg, pipe)
	if err != nil {
		return nil, ScalePhase{}, 0, err
	}
	ph := ScalePhase{SCCsSolved: c.Analysis.SCCsSolved, SCCsCached: c.Analysis.SCCsCached}
	sccs := 0
	for _, e := range pipe.Events {
		ph.CompileNS += e.DurationNS
		if driver.PassStage(e.Name) == "analysis" {
			ph.AnalysisNS += e.DurationNS
		}
		if sccs == 0 && e.Name == driver.PassModRef {
			sccs = int(e.Extra["sccs_solved"] + e.Extra["sccs_cached"])
		}
	}
	return c, ph, sccs, nil
}

// scaleExecute runs the three compilations and checks the two edited
// compiles agree (the cold compile ran different source, so only its
// successful termination is checked).
func scaleExecute(cold, warm, scratch *driver.Compilation) error {
	outs := make([]string, 3)
	for i, c := range []*driver.Compilation{cold, warm, scratch} {
		res, err := c.Execute(interp.Options{MaxSteps: 1 << 33})
		if err != nil {
			return fmt.Errorf("scale execute: %w", err)
		}
		outs[i] = res.Output
	}
	if outs[1] != outs[2] {
		return fmt.Errorf("scale tier: warm and scratch compiles of the edited module disagree: %q vs %q", outs[1], outs[2])
	}
	return nil
}

func countLines(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
		}
	}
	return n
}
