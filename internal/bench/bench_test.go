package bench

import (
	"strings"
	"testing"

	"regpromo/internal/driver"
)

func measure(t *testing.T, name string, cfg driver.Config) *Measurement {
	t.Helper()
	for _, p := range Suite() {
		if p.Name == name {
			m, err := Measure(p, cfg)
			if err != nil {
				t.Fatalf("measure %s: %v", name, err)
			}
			return m
		}
	}
	t.Fatalf("no program named %s", name)
	return nil
}

// TestSuiteCompilesAndAgrees runs every program under all four paper
// configurations and checks that outputs agree (the built-in
// miscompilation tripwire) and that counters are sane.
func TestSuiteCompilesAndAgrees(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			var out string
			for i, cfg := range driver.Configurations() {
				m, err := Measure(p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if m.Output == "" {
					t.Fatal("program produced no output")
				}
				if i == 0 {
					out = m.Output
				} else if m.Output != out {
					t.Fatalf("config %+v changed output:\n%q\nvs\n%q", cfg, m.Output, out)
				}
				if m.Counts.Ops <= 0 {
					t.Fatalf("no operations counted: %+v", m.Counts)
				}
			}
		})
	}
}

// TestShapeMatchesPaper checks the qualitative structure of the
// paper's results on the stand-in suite: which programs win, which
// lose, and where analysis precision matters.
func TestShapeMatchesPaper(t *testing.T) {
	row := func(name string, a driver.Analysis) (without, with Measurement) {
		t.Helper()
		w := measure(t, name, driver.Config{Analysis: a})
		p := measure(t, name, driver.Config{Analysis: a, Promote: true})
		return *w, *p
	}

	t.Run("tsp-and-allroots-see-nothing", func(t *testing.T) {
		for _, name := range []string{"tsp", "allroots"} {
			w, p := row(name, driver.ModRef)
			if p.Counts.Stores != w.Counts.Stores || p.Counts.Loads != w.Counts.Loads {
				t.Errorf("%s: promotion should be a no-op: %+v vs %+v", name, w.Counts, p.Counts)
			}
		}
	})

	t.Run("mlink-is-the-big-winner", func(t *testing.T) {
		w, p := row("mlink", driver.ModRef)
		storeCut := float64(w.Counts.Stores-p.Counts.Stores) / float64(w.Counts.Stores)
		if storeCut < 0.40 {
			t.Errorf("mlink store reduction = %.1f%%, want the paper's large cut (>40%%)", 100*storeCut)
		}
		opCut := float64(w.Counts.Ops-p.Counts.Ops) / float64(w.Counts.Ops)
		if opCut <= 0 {
			t.Errorf("mlink total ops should improve, got %.2f%%", 100*opCut)
		}
	})

	t.Run("fft-needs-points-to", func(t *testing.T) {
		wm, pm := row("fft", driver.ModRef)
		wp, pp := row("fft", driver.PointsTo)
		cutModref := wm.Counts.Stores - pm.Counts.Stores
		cutPointer := wp.Counts.Stores - pp.Counts.Stores
		if cutPointer <= cutModref {
			t.Errorf("points-to must unlock fft: modref cut %d, pointer cut %d", cutModref, cutPointer)
		}
	})

	t.Run("bc-rewards-precision", func(t *testing.T) {
		wm, pm := row("bc", driver.ModRef)
		wp, pp := row("bc", driver.PointsTo)
		cutModref := float64(wm.Counts.Stores-pm.Counts.Stores) / float64(wm.Counts.Stores)
		cutPointer := float64(wp.Counts.Stores-pp.Counts.Stores) / float64(wp.Counts.Stores)
		if cutPointer <= cutModref {
			t.Errorf("bc: pointer analysis should remove more stores (modref %.1f%%, pointer %.1f%%)",
				100*cutModref, 100*cutPointer)
		}
	})

	t.Run("dhrystone-once-loop-regresses", func(t *testing.T) {
		w, p := row("dhrystone", driver.ModRef)
		if p.Counts.Ops <= w.Counts.Ops {
			t.Errorf("dhrystone should regress slightly: %d -> %d ops", w.Counts.Ops, p.Counts.Ops)
		}
	})

	t.Run("water-register-pressure-cancels-promotion", func(t *testing.T) {
		w, p := row("water", driver.ModRef)
		if p.Promote < 28 {
			t.Errorf("water should promote (at least) its 28 accumulators, got %d", p.Promote)
		}
		if p.Spilled == 0 {
			t.Error("water's promotion must force spills")
		}
		// The spill traffic eats most of the benefit: loads go UP,
		// and the total-operation gain is a fraction of what the
		// promotion count alone would predict (mlink-class programs
		// gain 15%+ from a handful of promotions; water's 28 buy
		// almost nothing).
		if p.Counts.Loads <= w.Counts.Loads {
			t.Errorf("water's spills should increase loads: %d -> %d", w.Counts.Loads, p.Counts.Loads)
		}
		delta := float64(w.Counts.Ops-p.Counts.Ops) / float64(w.Counts.Ops)
		if delta > 0.06 {
			t.Errorf("water should show almost no win (got %.2f%% improvement)", 100*delta)
		}
	})

	t.Run("insensitivity-to-analysis-precision", func(t *testing.T) {
		// §5: "the improved information derived from pointer analysis
		// does not greatly improve the results of register promotion"
		// — outside the fft/bc-style cases the two analyses agree.
		same := 0
		diff := 0
		for _, name := range []string{"tsp", "mlink", "clean", "caches", "li", "dhrystone", "indent", "allroots", "bison", "geb"} {
			_, pm := row(name, driver.ModRef)
			_, pp := row(name, driver.PointsTo)
			if pm.Counts.Stores == pp.Counts.Stores {
				same++
			} else {
				diff++
			}
		}
		if same < diff {
			t.Errorf("most programs should be insensitive to analysis precision: same=%d diff=%d", same, diff)
		}
	})
}

// TestPointerPromotionStudy reproduces §3.3's findings: fft is the
// only significant success.
func TestPointerPromotionStudy(t *testing.T) {
	scalarCfg := driver.Config{Analysis: driver.PointsTo, Promote: true}
	ptrCfg := scalarCfg
	ptrCfg.PointerPromote = true

	fftScalar := measure(t, "fft", scalarCfg)
	fftPtr := measure(t, "fft", ptrCfg)
	if fftPtr.Counts.Loads >= fftScalar.Counts.Loads {
		t.Errorf("pointer promotion must remove extra fft loads: %d -> %d",
			fftScalar.Counts.Loads, fftPtr.Counts.Loads)
	}
	if fftPtr.Output != fftScalar.Output {
		t.Error("pointer promotion changed fft output")
	}

	// Most other programs see no change.
	unchanged := 0
	others := []string{"tsp", "mlink", "clean", "li", "dhrystone", "allroots", "bison"}
	for _, name := range others {
		s := measure(t, name, scalarCfg)
		p := measure(t, name, ptrCfg)
		if p.Output != s.Output {
			t.Fatalf("%s: pointer promotion changed output", name)
		}
		if p.Counts.Ops == s.Counts.Ops {
			unchanged++
		}
	}
	if unchanged < len(others)-1 {
		t.Errorf("pointer promotion should be a no-op on most programs; unchanged=%d/%d",
			unchanged, len(others))
	}
}

// TestRunFiguresEndToEnd exercises the figure harness on a subset.
func TestRunFiguresEndToEnd(t *testing.T) {
	fr, err := RunFigures(Options{Programs: []string{"mlink", "tsp"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{TotalOps, Stores, Loads} {
		rows := fr.Rows[m]
		if len(rows) != 4 { // 2 programs × 2 analyses
			t.Fatalf("%s: got %d rows", m, len(rows))
		}
		table := FormatTable(m, rows)
		if !strings.Contains(table, "mlink") || !strings.Contains(table, "% removed") {
			t.Fatalf("bad table:\n%s", table)
		}
	}
}

func TestFigure4Table(t *testing.T) {
	table := FormatFigure4()
	for _, p := range Suite() {
		if !strings.Contains(table, p.Name) {
			t.Fatalf("figure 4 table missing %s:\n%s", p.Name, table)
		}
	}
	if len(Suite()) != 15 {
		t.Fatalf("suite should list 15 rows (14 programs, gzip in both directions), got %d", len(Suite()))
	}
}

// TestAblationSkipUnwrittenStores checks the demotion-store refinement
// never increases stores and preserves behaviour.
func TestAblationSkipUnwrittenStores(t *testing.T) {
	for _, name := range []string{"mlink", "bison", "dhrystone", "geb"} {
		base := measure(t, name, driver.Config{Analysis: driver.ModRef, Promote: true})
		skip := measure(t, name, driver.Config{Analysis: driver.ModRef, Promote: true, SkipUnwrittenStores: true})
		if skip.Output != base.Output {
			t.Fatalf("%s: ablation changed output", name)
		}
		if skip.Counts.Stores > base.Counts.Stores {
			t.Fatalf("%s: skipping unwritten stores must not add stores: %d -> %d",
				name, base.Counts.Stores, skip.Counts.Stores)
		}
	}
}

// TestWeightedCyclesAmplifiesPromotion quantifies §5's latency remark:
// pricing memory operations above arithmetic must increase promotion's
// measured benefit on memory-bound winners and deepen the spill losses.
func TestWeightedCyclesAmplifiesPromotion(t *testing.T) {
	w := measure(t, "mlink", driver.Config{Analysis: driver.ModRef})
	p := measure(t, "mlink", driver.Config{Analysis: driver.ModRef, Promote: true})
	plainCut := float64(w.Counts.Ops-p.Counts.Ops) / float64(w.Counts.Ops)
	weight := func(m *Measurement) float64 {
		return float64(m.Counts.Ops + (MemLatency-1)*(m.Counts.Loads+m.Counts.Stores))
	}
	weightedCut := (weight(w) - weight(p)) / weight(w)
	if weightedCut <= plainCut {
		t.Fatalf("weighted improvement (%.1f%%) must exceed flat improvement (%.1f%%)",
			100*weightedCut, 100*plainCut)
	}
}
