package bench

import (
	"encoding/json"
	"testing"
)

// TestRunScaleSmall runs the scale tier at a reduced size and gates on
// its deterministic quantities: the warm recompile must replay most
// components from the cache, re-solve strictly fewer than cold, and
// produce IL byte-identical to an uncached compile of the same edited
// source. Wall-clock speedup is intentionally not asserted here — the
// full-size tier reports it, but a loaded CI machine must not flake
// this test.
func TestRunScaleSmall(t *testing.T) {
	r, err := RunScale(ScaleOptions{Seed: 5, Funcs: 80, Edit: 33, Execute: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("warm compile IL differs from uncached compile of the same source")
	}
	if r.SCCs == 0 {
		t.Fatal("scale report recorded no callgraph components")
	}
	// A cold compile may still hit within itself — the second MOD/REF
	// pass re-keys every component, and one the narrowing left
	// untouched replays its own first-pass summary — but the bulk of
	// cold work must be genuine solves, while warm flips the ratio.
	if r.Cold.SCCsSolved <= r.Cold.SCCsCached {
		t.Fatalf("cold run mostly hit a fresh cache (%d solved, %d cached)",
			r.Cold.SCCsSolved, r.Cold.SCCsCached)
	}
	if r.Warm.SCCsCached <= r.Cold.SCCsCached {
		t.Fatalf("warm run cached no more than cold (%d vs %d); the cache is not keying stably",
			r.Warm.SCCsCached, r.Cold.SCCsCached)
	}
	if r.Warm.SCCsSolved >= r.Cold.SCCsSolved {
		t.Fatalf("warm run solved %d components, cold solved %d; edit did not localize",
			r.Warm.SCCsSolved, r.Cold.SCCsSolved)
	}
	// The one-function edit should dirty a path through the
	// condensation, not a constant fraction of the module: at 80
	// helpers the warm solve must touch well under half of cold's
	// work.
	if r.Warm.SCCsSolved*2 >= r.Cold.SCCsSolved {
		t.Fatalf("warm run re-solved %d of %d components — dirty set is not narrow",
			r.Warm.SCCsSolved, r.Cold.SCCsSolved)
	}
}

// TestScaleReportRoundTrip: the scale cell survives the report's JSON
// encoding and the trend comparison sees its gated quantities.
func TestScaleReportRoundTrip(t *testing.T) {
	r, err := RunScale(ScaleOptions{Seed: 2, Funcs: 40})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Schema: SchemaVersion, Scale: r}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scale == nil || back.Scale.Functions != r.Functions || back.Scale.SCCs != r.SCCs {
		t.Fatalf("scale cell did not round-trip: %+v", back.Scale)
	}

	// Same-code comparison: no gated regression.
	cr := Compare(rep, &back, 1.0)
	if !cr.OK() {
		t.Fatalf("identical reports compare as regressed: %s", cr.Format())
	}
	// An incremental-analysis regression — warm path solving more —
	// must gate.
	worse := *r
	worse.Warm.SCCsSolved = r.Warm.SCCsSolved * 3
	worseRep := &Report{Schema: SchemaVersion, Scale: &worse}
	if cr := Compare(rep, worseRep, 1.0); cr.OK() {
		t.Fatal("tripled warm sccs_solved did not register as a regression")
	}
	// Losing bit-identity must gate.
	broken := *r
	broken.Identical = false
	brokenRep := &Report{Schema: SchemaVersion, Scale: &broken}
	if cr := Compare(rep, brokenRep, 1.0); cr.OK() {
		t.Fatal("identical=false did not register as a regression")
	}
}
