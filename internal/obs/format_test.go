package obs

import (
	"strings"
	"testing"
)

// TestFormatTableEmpty checks the degenerate observers: a nil
// pipeline and a pipeline that observed nothing both render as the
// empty string (rpcc -trace prints nothing rather than a bare
// header).
func TestFormatTableEmpty(t *testing.T) {
	var nilPipe *Pipeline
	if got := nilPipe.FormatTable(); got != "" {
		t.Errorf("nil pipeline renders %q", got)
	}
	if got := (&Pipeline{}).FormatTable(); got != "" {
		t.Errorf("empty pipeline renders %q", got)
	}
}

// TestFormatTableZeroDuration checks that instantaneous passes (the
// merged parallel middle end can record 0ns for a pass that did no
// work) render with an explicit 0µs, not garbage.
func TestFormatTableZeroDuration(t *testing.T) {
	p := &Pipeline{}
	snap := Snapshot{Funcs: 1, Blocks: 1, Instrs: 3}
	p.Append(&PassEvent{Name: "noop", DurationNS: 0, Before: snap, After: snap})
	out := p.FormatTable()
	if !strings.Contains(out, "0µs") {
		t.Errorf("zero-duration pass missing 0µs:\n%s", out)
	}
	if !strings.Contains(out, "total 0µs") {
		t.Errorf("total line missing 0µs:\n%s", out)
	}
}

// TestFormatTableMergedSnapshots drives FormatTable with an event
// assembled the way the parallel middle end does it: per-function
// snapshots folded together with Add, appended rather than observed.
// The table's delta and final-state lines must reflect the merged
// sums.
func TestFormatTableMergedSnapshots(t *testing.T) {
	fnA := Snapshot{Funcs: 1, Blocks: 2, Instrs: 10, Mem: MemOps{ScalarLoads: 4, ScalarStores: 2}}
	fnB := Snapshot{Funcs: 1, Blocks: 3, Instrs: 20, Mem: MemOps{ScalarLoads: 6, PtrStores: 1}}
	before := fnA.Add(fnB)
	// Promotion removes 5 scalar loads from A and 2 from B.
	afterA, afterB := fnA, fnB
	afterA.Mem.ScalarLoads -= 3
	afterA.Instrs -= 3
	afterB.Mem.ScalarLoads -= 4
	afterB.Instrs -= 4
	p := &Pipeline{}
	p.Append(&PassEvent{
		Name:       "promote",
		DurationNS: 1500,
		Before:     before,
		After:      afterA.Add(afterB),
		Extra:      map[string]int64{"promotions": 2},
	})
	out := p.FormatTable()
	// Δinstr −7, ΔsLoad −7 from the merged snapshots.
	if !strings.Contains(out, "-7") {
		t.Errorf("merged delta missing:\n%s", out)
	}
	if !strings.Contains(out, "funcs=2 blocks=5 instrs=23") {
		t.Errorf("final merged totals wrong:\n%s", out)
	}
	if !strings.Contains(out, "sLoad=3") {
		t.Errorf("final merged scalar loads wrong:\n%s", out)
	}
	if !strings.Contains(out, "promotions=2") {
		t.Errorf("extra line missing:\n%s", out)
	}
}
