package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock advancing stepNS per reading, starting at
// stepNS. With newTracerClock the first reading becomes the epoch, so
// span times are deterministic.
func fakeClock(stepNS int64) func() time.Time {
	var t int64
	return func() time.Time {
		t += stepNS
		return time.Unix(0, t)
	}
}

// TestChromeTraceGolden pins the Chrome trace_event encoding: metadata
// thread_name events first (sorted by tid), then complete "X" events
// with microsecond ts/dur, pid 1, and the span's args and labels
// merged into the event args.
func TestChromeTraceGolden(t *testing.T) {
	tr := newTracerClock(fakeClock(1000)) // epoch = 1µs
	tr.NameThread(0, "main")
	tr.NameThread(1, "worker 0")
	outer := tr.Start("compile", "compile", 0)                                      // start 2µs → ts 1
	inner := tr.Start("promote", "pass", 1).Arg("promotions", 3).Label("f", "main") // start 3µs → ts 2
	inner.End()                                                                     // end 4µs → dur 1
	outer.End()                                                                     // end 5µs → dur 3

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, buf.Bytes()); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	want := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"main"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"worker 0"}},` +
		`{"name":"compile","cat":"compile","ph":"X","ts":1,"dur":3,"pid":1,"tid":0},` +
		`{"name":"promote","cat":"pass","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"f":"main","promotions":3}}` +
		`],"displayTimeUnit":"ms"}`
	if got := compact.String(); got != want {
		t.Errorf("Chrome trace mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestChromeTraceZeroDuration checks that a zero-length span still
// carries an explicit "dur":0 — trace viewers drop events without a
// dur field entirely.
func TestChromeTraceZeroDuration(t *testing.T) {
	tr := newTracerClock(func() time.Time { return time.Unix(0, 0) })
	tr.Start("instant", "pass", 0).End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[{"name":"instant","cat":"pass","ph":"X","ts":0,"dur":0,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`
	if got := compact.String(); got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

// TestSpanJSONRoundTrip checks that the plain span-list encoding
// decodes back to the exact spans the tracer recorded.
func TestSpanJSONRoundTrip(t *testing.T) {
	tr := newTracerClock(fakeClock(1000))
	tr.Start("a", "pass", 0).Arg("n", 7).End()
	tr.Start("b", "analysis", 2).Label("engine", "flat").AddArgs(map[string]int64{"x": 1, "y": 2}).End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []SpanEvent
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if want := tr.Spans(); !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed spans:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSpansSorted checks the deterministic ordering contract: spans
// come back sorted by start time, ties broken by TID then name,
// whatever order they were completed in.
func TestSpansSorted(t *testing.T) {
	// A frozen clock makes every span start at 0, so ordering falls
	// entirely to the TID/name tie-breaks.
	tr := newTracerClock(func() time.Time { return time.Unix(0, 0) })
	tr.Start("z", "", 2).End()
	tr.Start("a", "", 2).End()
	tr.Start("m", "", 1).End()
	var got []string
	for _, sp := range tr.Spans() {
		got = append(got, sp.Name)
	}
	want := []string{"m", "a", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("span order = %v, want %v", got, want)
	}
}

// TestNilTracerNoOps checks the zero-cost-when-disabled contract: a
// nil tracer hands out inert spans and ignores every call.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("compile", "compile", 0)
	sp = sp.Arg("n", 1).AddArgs(map[string]int64{"m": 2}).Label("k", "v")
	sp.End()
	tr.NameThread(0, "main")
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer recorded spans: %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestTracerConcurrent checks that spans can start and end on many
// goroutines at once (the parallel middle end's usage) without losing
// any.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr.NameThread(w, "worker")
			for i := 0; i < per; i++ {
				tr.Start("fn", "middleend", w).Arg("i", int64(i)).End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != workers*per {
		t.Errorf("recorded %d spans, want %d", got, workers*per)
	}
}
