package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatTable renders the event stream as the per-pass trace table
// rpcc -trace prints: one row per pass with wall time, the
// instruction-count delta, and the static memory-operation deltas by
// Table-1 class (negative numbers mean the pass removed operations).
func (p *Pipeline) FormatTable() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-3s %-11s %10s %8s %8s %8s %8s %8s %9s %9s\n",
		"#", "pass", "time", "Δinstr", "ΔsLoad", "ΔsStore", "ΔpLoad", "ΔpStore", "ΔsLd@loop", "ΔsSt@loop")
	for _, e := range p.Events {
		d := e.Delta()
		fmt.Fprintf(&sb, "%-3d %-11s %10s %8d %8d %8d %8d %8d %9d %9d\n",
			e.Index, e.Name, fmtDuration(e.Duration()),
			d.Instrs, d.Mem.ScalarLoads, d.Mem.ScalarStores,
			d.Mem.PtrLoads, d.Mem.PtrStores, d.Loop.ScalarLoads, d.Loop.ScalarStores)
		if len(e.Extra) > 0 {
			fmt.Fprintf(&sb, "    %s\n", FormatExtra(e.Extra))
		}
	}
	last := p.Events[len(p.Events)-1].After
	fmt.Fprintf(&sb, "total %s  final: funcs=%d blocks=%d instrs=%d sLoad=%d sStore=%d pLoad=%d pStore=%d in-loop: loads=%d stores=%d\n",
		fmtDuration(p.Total()), last.Funcs, last.Blocks, last.Instrs,
		last.Mem.ScalarLoads, last.Mem.ScalarStores, last.Mem.PtrLoads, last.Mem.PtrStores,
		last.Loop.Loads(), last.Loop.Stores())
	return sb.String()
}

// FormatExtra renders an extra-statistics map deterministically
// (sorted by key) as "k=v" pairs.
func FormatExtra(extra map[string]int64) string {
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, extra[k])
	}
	return strings.Join(parts, " ")
}

// fmtDuration renders a duration compactly with µs precision at most.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
