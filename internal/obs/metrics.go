package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a
// process-wide registry of named counters, gauges and histograms that
// the driver, dataflow kernel, both interpreter engines, the IL
// checker and the differential tester report into. The registry is
// off by default; instrumentation sites call Metrics(), get nil, and
// every method on a nil Counter/Gauge/Histogram is a no-op — so the
// disabled cost is one atomic pointer load per report site, far off
// any per-instruction hot path. All mutation is atomic, so parallel
// middle-end workers and fuzz workers report without locks.

// Counter is a monotonically increasing sum. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-writer-wins level with a monotonic-max helper.
// Nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger. Max is commutative, so
// parallel workers folding their own maxima produce the same value in
// any order.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: bounds[i] is the
// inclusive upper edge of bucket i, with one extra overflow bucket.
// Nil-safe.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	n      atomic.Int64
	sum    atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Fixed bucket layouts shared by instrumentation sites. Treat as
// read-only.
var (
	// DurationBucketsNS spans 1µs to 10s in decades — wide enough for
	// a single pass and a whole compile.
	DurationBucketsNS = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	// SizeBuckets is powers of two for set sizes and iteration counts.
	SizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}
)

// Registry holds named metrics. A nil *Registry hands out nil
// instruments, so call sites never branch. Construct with
// NewRegistry, or use the process-wide one via EnableMetrics.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket layout on first use; later calls reuse the existing layout.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// MetricValue is one named counter or gauge reading.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram reading: Counts[i] samples fell at
// or below Bounds[i]; the final entry of Counts is the overflow
// bucket.
type HistogramValue struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// MetricsSnapshot is a point-in-time, name-sorted copy of a registry,
// the form metrics take in the rpbench JSON report.
type MetricsSnapshot struct {
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the registry. The result is deterministic for a
// deterministic workload: counters are commutative sums and gauges
// are maxima at their fold sites, so worker scheduling cannot change
// the values.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &MetricsSnapshot{}
	for name, c := range r.counts {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Count:  h.n.Load(),
			Sum:    h.sum.Load(),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter looks up a counter reading by name.
func (s *MetricsSnapshot) Counter(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge looks up a gauge reading by name.
func (s *MetricsSnapshot) Gauge(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Format renders the snapshot as an aligned text table, one metric
// per line, histograms summarized as count/sum.
func (s *MetricsSnapshot) Format() string {
	if s == nil || (len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0) {
		return ""
	}
	var b strings.Builder
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-*s  %d\n", width, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%-*s  %d (gauge)\n", width, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-*s  n=%d sum=%d\n", width, h.Name, h.Count, h.Sum)
	}
	return b.String()
}

// WriteJSON emits the snapshot as indented JSON.
func (s *MetricsSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// globalMetrics is the process-wide registry; nil means disabled.
var globalMetrics atomic.Pointer[Registry]

// EnableMetrics switches the process-wide registry on (idempotent)
// and returns it.
func EnableMetrics() *Registry {
	if r := globalMetrics.Load(); r != nil {
		return r
	}
	r := NewRegistry()
	if globalMetrics.CompareAndSwap(nil, r) {
		return r
	}
	return globalMetrics.Load()
}

// DisableMetrics switches the process-wide registry off, discarding
// its contents.
func DisableMetrics() { globalMetrics.Store(nil) }

// Metrics returns the process-wide registry, or nil when disabled.
// Instrumentation sites use it directly:
//
//	obs.Metrics().Counter("dataflow.steps").Add(n)
//
// which costs one atomic load when disabled.
func Metrics() *Registry { return globalMetrics.Load() }
