package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.SetMax(7) // lower: ignored
	g.SetMax(12)
	if got := g.Value(); got != 12 {
		t.Errorf("gauge = %d, want 12", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if hv.Count != 5 || hv.Sum != 1122 {
		t.Errorf("count/sum = %d/%d, want 5/1122", hv.Count, hv.Sum)
	}
	// Bounds are inclusive upper edges; the final bucket is overflow.
	if want := []int64{2, 2, 1}; !reflect.DeepEqual(hv.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", hv.Counts, want)
	}
}

// TestNilInstruments checks the disabled path: a nil registry hands
// out nil instruments whose methods all no-op.
func TestNilInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.SetMax(2)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	r.Histogram("x", SizeBuckets).Observe(5)
	if r.Snapshot() != nil {
		t.Error("nil registry produced a snapshot")
	}
}

// TestSnapshotSorted checks that snapshots come back name-sorted
// regardless of registration order, so their JSON is deterministic.
func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
		r.Gauge("g." + name).Set(1)
		r.Histogram("h."+name, SizeBuckets).Observe(1)
	}
	s := r.Snapshot()
	var counters []string
	for _, c := range s.Counters {
		counters = append(counters, c.Name)
	}
	if want := []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(counters, want) {
		t.Errorf("counters = %v, want %v", counters, want)
	}
	for i := 1; i < len(s.Gauges); i++ {
		if s.Gauges[i-1].Name > s.Gauges[i].Name {
			t.Errorf("gauges unsorted: %s before %s", s.Gauges[i-1].Name, s.Gauges[i].Name)
		}
	}
	for i := 1; i < len(s.Histograms); i++ {
		if s.Histograms[i-1].Name > s.Histograms[i].Name {
			t.Errorf("histograms unsorted: %s before %s", s.Histograms[i-1].Name, s.Histograms[i].Name)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("interp.ops").Add(42)
	r.Gauge("regalloc.max_live").SetMax(7)
	r.Histogram("compile.pass_ns", DurationBucketsNS).Observe(5000)
	s := r.Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, s) {
		t.Errorf("round trip changed snapshot:\ngot  %+v\nwant %+v", got, s)
	}
	if v, ok := got.Counter("interp.ops"); !ok || v != 42 {
		t.Errorf("Counter lookup = %d,%v, want 42,true", v, ok)
	}
	if v, ok := got.Gauge("regalloc.max_live"); !ok || v != 7 {
		t.Errorf("Gauge lookup = %d,%v, want 7,true", v, ok)
	}
}

func TestSnapshotFormat(t *testing.T) {
	var nilSnap *MetricsSnapshot
	if got := nilSnap.Format(); got != "" {
		t.Errorf("nil snapshot formats as %q", got)
	}
	if got := (&MetricsSnapshot{}).Format(); got != "" {
		t.Errorf("empty snapshot formats as %q", got)
	}
	r := NewRegistry()
	r.Counter("interp.ops").Add(9)
	r.Gauge("max").Set(3)
	out := r.Snapshot().Format()
	if !strings.Contains(out, "interp.ops  9") || !strings.Contains(out, "(gauge)") {
		t.Errorf("unexpected format output:\n%s", out)
	}
}

// TestGlobalEnableDisable checks the process-wide switch: off by
// default, idempotent enable, discard on disable.
func TestGlobalEnableDisable(t *testing.T) {
	DisableMetrics()
	defer DisableMetrics()
	if Metrics() != nil {
		t.Fatal("metrics enabled before EnableMetrics")
	}
	// The disabled fast path must tolerate call chains.
	Metrics().Counter("x").Inc()
	r := EnableMetrics()
	if r == nil || Metrics() != r {
		t.Fatal("EnableMetrics did not install the registry")
	}
	if again := EnableMetrics(); again != r {
		t.Error("EnableMetrics is not idempotent")
	}
	Metrics().Counter("x").Inc()
	if v, _ := r.Snapshot().Counter("x"); v != 1 {
		t.Errorf("counter = %d, want 1", v)
	}
	DisableMetrics()
	if Metrics() != nil {
		t.Error("metrics still enabled after DisableMetrics")
	}
}

// TestMetricsConcurrent hammers one registry from many goroutines:
// counters must sum exactly, gauges must fold to the true max.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(w*per + i))
				r.Histogram("h", SizeBuckets).Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per-1 {
		t.Errorf("gauge max = %d, want %d", got, workers*per-1)
	}
	s := r.Snapshot()
	if s.Histograms[0].Count != workers*per {
		t.Errorf("histogram count = %d, want %d", s.Histograms[0].Count, workers*per)
	}
}
