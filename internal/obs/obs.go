// Package obs is the compiler's observability layer. A Pipeline
// observes the pass manager (internal/driver): for every pass it
// records wall-clock duration, static IR snapshots taken before and
// after (function/block/instruction counts plus the Table-1 memory-op
// census: immediate and constant loads, scalar ("tagged") loads and
// stores, and general pointer-based loads and stores), pass-specific
// statistics folded into a flat key/value map, and — on request — a
// full IL dump. The event stream serializes to JSON so benchmark
// trajectories (BENCH_*.json) and CLI traces share one schema.
//
// The paper's evaluation (§5) is measurement end to end; this package
// makes the pipeline itself measurable, pass by pass.
package obs

import (
	"encoding/json"
	"io"
	"time"

	"regpromo/internal/ir"
)

// MemOps is a static census of memory operations by Table-1 class.
type MemOps struct {
	// ImmLoads counts loadI/loadF immediate loads.
	ImmLoads int `json:"imm_loads"`
	// ConstLoads counts cLoad constant (invariant-value) loads.
	ConstLoads int `json:"const_loads"`
	// ScalarLoads and ScalarStores count the direct, single-tag
	// sLoad/sStore operations ("tagged" memory traffic — the class
	// promotion rewrites into register copies).
	ScalarLoads  int `json:"scalar_loads"`
	ScalarStores int `json:"scalar_stores"`
	// PtrLoads and PtrStores count the general pointer-based
	// pLoad/pStore operations with computed addresses.
	PtrLoads  int `json:"ptr_loads"`
	PtrStores int `json:"ptr_stores"`
}

// Loads is the total static load count across classes (immediate
// loads excluded: they touch no memory).
func (m MemOps) Loads() int { return m.ConstLoads + m.ScalarLoads + m.PtrLoads }

// Stores is the total static store count across classes.
func (m MemOps) Stores() int { return m.ScalarStores + m.PtrStores }

func (m MemOps) add(o MemOps) MemOps {
	return MemOps{
		ImmLoads:     m.ImmLoads + o.ImmLoads,
		ConstLoads:   m.ConstLoads + o.ConstLoads,
		ScalarLoads:  m.ScalarLoads + o.ScalarLoads,
		ScalarStores: m.ScalarStores + o.ScalarStores,
		PtrLoads:     m.PtrLoads + o.PtrLoads,
		PtrStores:    m.PtrStores + o.PtrStores,
	}
}

func (m MemOps) sub(o MemOps) MemOps {
	return MemOps{
		ImmLoads:     m.ImmLoads - o.ImmLoads,
		ConstLoads:   m.ConstLoads - o.ConstLoads,
		ScalarLoads:  m.ScalarLoads - o.ScalarLoads,
		ScalarStores: m.ScalarStores - o.ScalarStores,
		PtrLoads:     m.PtrLoads - o.PtrLoads,
		PtrStores:    m.PtrStores - o.PtrStores,
	}
}

// Snapshot is a static picture of a module at one pipeline point.
type Snapshot struct {
	Funcs  int `json:"funcs"`
	Blocks int `json:"blocks"`
	Instrs int `json:"instrs"`
	// Mem is the whole-module memory-op census.
	Mem MemOps `json:"mem"`
	// Loop restricts the census to blocks that lie on a CFG cycle.
	// Promotion's effect shows up here: it moves scalar references
	// out of loops, so in-loop tagged traffic drops even when the
	// lifted load/store pair keeps the module-wide totals flat.
	Loop MemOps `json:"loop"`
}

// Add returns the fieldwise sum s + o. Module snapshots decompose
// over functions: summing MeasureFunc over a module's functions gives
// exactly Measure of the module, which is what lets the parallel
// middle end assemble whole-module telemetry from per-function pieces.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Funcs:  s.Funcs + o.Funcs,
		Blocks: s.Blocks + o.Blocks,
		Instrs: s.Instrs + o.Instrs,
		Mem:    s.Mem.add(o.Mem),
		Loop:   s.Loop.add(o.Loop),
	}
}

// Sub returns the fieldwise difference s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Funcs:  s.Funcs - o.Funcs,
		Blocks: s.Blocks - o.Blocks,
		Instrs: s.Instrs - o.Instrs,
		Mem:    s.Mem.sub(o.Mem),
		Loop:   s.Loop.sub(o.Loop),
	}
}

// Measure walks the module and produces its snapshot.
func Measure(m *ir.Module) Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	for _, fn := range m.FuncsInOrder() {
		s = s.Add(MeasureFunc(fn))
	}
	return s
}

// MeasureFunc produces the snapshot of a single function (Funcs is 1).
// Measure is the sum of MeasureFunc over FuncsInOrder, exactly.
func MeasureFunc(fn *ir.Func) Snapshot {
	s := Snapshot{Funcs: 1}
	inLoop := cyclicBlocks(fn)
	for _, b := range fn.Blocks {
		s.Blocks++
		s.Instrs += len(b.Instrs)
		census(b.Instrs, &s.Mem)
		if inLoop[b] {
			census(b.Instrs, &s.Loop)
		}
	}
	return s
}

// census tallies instrs into ops by Table-1 class.
func census(instrs []ir.Instr, ops *MemOps) {
	for i := range instrs {
		switch instrs[i].Op {
		case ir.OpLoadI, ir.OpLoadF:
			ops.ImmLoads++
		case ir.OpCLoad:
			ops.ConstLoads++
		case ir.OpSLoad:
			ops.ScalarLoads++
		case ir.OpSStore:
			ops.ScalarStores++
		case ir.OpPLoad:
			ops.PtrLoads++
		case ir.OpPStore:
			ops.PtrStores++
		}
	}
}

// cyclicBlocks returns the blocks of fn that belong to some CFG cycle
// (a strongly connected component of size > 1, or a self-loop) —
// a conservative, analysis-free notion of "inside a loop".
func cyclicBlocks(fn *ir.Func) map[*ir.Block]bool {
	// Iterative Tarjan SCC over the block graph.
	index := make(map[*ir.Block]int, len(fn.Blocks))
	low := make(map[*ir.Block]int, len(fn.Blocks))
	onStack := make(map[*ir.Block]bool, len(fn.Blocks))
	var stack []*ir.Block
	next := 0
	out := make(map[*ir.Block]bool)

	type frame struct {
		b *ir.Block
		i int // next successor to visit
	}
	for _, root := range fn.Blocks {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{b: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.b.Succs) {
				s := f.b.Succs[f.i]
				f.i++
				if _, seen := index[s]; !seen {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, frame{b: s})
				} else if onStack[s] && index[s] < low[f.b] {
					low[f.b] = index[s]
				}
				continue
			}
			// f.b is finished; pop its SCC if it is a root.
			if low[f.b] == index[f.b] {
				var scc []*ir.Block
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == f.b {
						break
					}
				}
				cyclic := len(scc) > 1
				if !cyclic {
					for _, s := range scc[0].Succs {
						if s == scc[0] {
							cyclic = true
						}
					}
				}
				if cyclic {
					for _, b := range scc {
						out[b] = true
					}
				}
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].b
				if low[f.b] < low[parent] {
					low[parent] = low[f.b]
				}
			}
		}
	}
	return out
}

// ExecEvent records one interpreter execution: which engine ran the
// program, whether its compile was forked from a shared front-end
// artifact (compile-once sharing) rather than parsed from scratch, and
// the execution wall time. Benchmark reports embed it so a trajectory
// shows which engine produced each number.
type ExecEvent struct {
	// Engine names the interpreter engine ("flat" or "switch").
	Engine string `json:"engine,omitempty"`
	// FrontendReused is true when the compile reused a parsed artifact
	// instead of re-running the front end.
	FrontendReused bool `json:"frontend_reused,omitempty"`
	// DurationNS is the execution's wall-clock time in nanoseconds.
	DurationNS int64 `json:"duration_ns,omitempty"`
}

// PassEvent is one pass's record in the event stream.
type PassEvent struct {
	// Index is the pass's position in the pipeline, from 0.
	Index int `json:"index"`
	// Name identifies the pass ("promote", "regalloc", …).
	Name string `json:"name"`
	// DurationNS is the pass's wall-clock time in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Before and After are the static IR snapshots bracketing the
	// pass.
	Before Snapshot `json:"before"`
	After  Snapshot `json:"after"`
	// Extra carries pass-specific statistics (promotion and
	// allocation counters, fold into the same stream here).
	Extra map[string]int64 `json:"extra,omitempty"`
	// IRDump is the post-pass IL listing when dumping was requested.
	IRDump string `json:"ir_dump,omitempty"`
}

// Delta returns After - Before.
func (e *PassEvent) Delta() Snapshot { return e.After.Sub(e.Before) }

// Duration returns the recorded wall-clock time.
func (e *PassEvent) Duration() time.Duration { return time.Duration(e.DurationNS) }

// DumpAll requests an IR dump after every pass.
const DumpAll = "all"

// Pipeline collects pass events for one compilation. A nil *Pipeline
// is a valid no-op observer, so unobserved compiles pay nothing.
type Pipeline struct {
	// DumpPass names the pass whose output IL should be captured
	// into its event ("all" captures every pass).
	DumpPass string

	// Tracer, when non-nil, receives a hierarchical span for each
	// observed pass (and whatever the driver nests inside them);
	// nil keeps the pipeline span-free at zero cost.
	Tracer *Tracer

	// Events accumulate in pipeline order.
	Events []*PassEvent
}

// StartSpan opens a span on the pipeline's tracer; with a nil
// pipeline or nil tracer it returns a no-op zero Span.
func (p *Pipeline) StartSpan(name, cat string, tid int) Span {
	if p == nil {
		return Span{}
	}
	return p.Tracer.Start(name, cat, tid)
}

// Observe runs one pass under observation: it snapshots m, times run,
// snapshots again, and appends the event. run returns the pass's
// extra statistics (may be nil). A nil receiver just runs the pass.
func (p *Pipeline) Observe(name string, m *ir.Module, run func() (map[string]int64, error)) error {
	if p == nil {
		_, err := run()
		return err
	}
	ev := &PassEvent{
		Index:  len(p.Events),
		Name:   name,
		Before: Measure(m),
	}
	sp := p.Tracer.Start(name, "pass", 0)
	start := time.Now()
	extra, err := run()
	ev.DurationNS = time.Since(start).Nanoseconds()
	sp.AddArgs(extra).End()
	if err != nil {
		return err
	}
	ev.After = Measure(m)
	ev.Extra = extra
	recordPassMetrics(ev.DurationNS)
	if m != nil && (p.DumpPass == DumpAll || p.DumpPass == name) {
		ev.IRDump = ir.FormatModule(m)
	}
	p.Events = append(p.Events, ev)
	return nil
}

// recordPassMetrics reports one pass completion to the process-wide
// registry (no-op while metrics are disabled).
func recordPassMetrics(durNS int64) {
	r := Metrics()
	if r == nil {
		return
	}
	r.Counter("compile.passes").Inc()
	r.Histogram("compile.pass_ns", DurationBucketsNS).Observe(durNS)
}

// Append adds a pre-assembled event to the stream, assigning its
// Index. The driver's parallel middle end builds events by merging
// per-function measurements in function order and emits them here,
// through the same stream Observe feeds. A nil receiver discards the
// event.
func (p *Pipeline) Append(ev *PassEvent) {
	if p == nil || ev == nil {
		return
	}
	ev.Index = len(p.Events)
	p.Events = append(p.Events, ev)
	recordPassMetrics(ev.DurationNS)
}

// Event returns the first event with the given pass name, or nil.
func (p *Pipeline) Event(name string) *PassEvent {
	if p == nil {
		return nil
	}
	for _, e := range p.Events {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// PassNames lists the recorded passes in order.
func (p *Pipeline) PassNames() []string {
	if p == nil {
		return nil
	}
	names := make([]string, len(p.Events))
	for i, e := range p.Events {
		names[i] = e.Name
	}
	return names
}

// Total sums the recorded pass durations.
func (p *Pipeline) Total() time.Duration {
	if p == nil {
		return 0
	}
	var ns int64
	for _, e := range p.Events {
		ns += e.DurationNS
	}
	return time.Duration(ns)
}

// WriteJSON emits the event stream as indented JSON.
func (p *Pipeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Events)
}
