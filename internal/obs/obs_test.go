package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"regpromo/internal/ir"
)

// testModule builds a one-function module with a known instruction
// census: 2 immediate loads, 1 scalar load, 1 scalar store, 1 pointer
// load, 1 pointer store, 1 constant load, and a return.
func testModule() *ir.Module {
	m := ir.NewModule()
	g := m.Tags.NewTag("g", ir.TagGlobal, "", 8, 8)
	fn := &ir.Func{Name: "main", NumRegs: 4}
	b := fn.NewBlock("B0")
	fn.Entry = b
	b.Instrs = []ir.Instr{
		{Op: ir.OpLoadI, Dst: 0, Imm: 1},
		{Op: ir.OpLoadF, Dst: 1, FImm: 2.5},
		{Op: ir.OpSLoad, Dst: 2, Tag: g.ID, Size: 8},
		{Op: ir.OpSStore, A: 2, Tag: g.ID, Size: 8},
		{Op: ir.OpCLoad, Dst: 3, Tag: g.ID, Size: 8},
		{Op: ir.OpPLoad, Dst: 2, A: 0, Size: 8, Tags: ir.NewTagSet(g.ID)},
		{Op: ir.OpPStore, A: 0, B: 2, Size: 8, Tags: ir.NewTagSet(g.ID)},
		{Op: ir.OpRet},
	}
	m.AddFunc(fn)
	return m
}

func TestMeasureCensus(t *testing.T) {
	s := Measure(testModule())
	want := Snapshot{
		Funcs:  1,
		Blocks: 1,
		Instrs: 8,
		Mem: MemOps{
			ImmLoads:     2,
			ConstLoads:   1,
			ScalarLoads:  1,
			ScalarStores: 1,
			PtrLoads:     1,
			PtrStores:    1,
		},
	}
	if s != want {
		t.Fatalf("Measure = %+v, want %+v", s, want)
	}
	if got := s.Mem.Loads(); got != 3 {
		t.Errorf("Loads() = %d, want 3", got)
	}
	if got := s.Mem.Stores(); got != 2 {
		t.Errorf("Stores() = %d, want 2", got)
	}
}

// TestLoopCensus checks that memory ops in blocks on a CFG cycle are
// tallied into Snapshot.Loop, and straight-line ops are not.
func TestLoopCensus(t *testing.T) {
	m := ir.NewModule()
	g := m.Tags.NewTag("g", ir.TagGlobal, "", 8, 8)
	fn := &ir.Func{Name: "f", NumRegs: 2}
	entry := fn.NewBlock("entry")
	head := fn.NewBlock("head")
	body := fn.NewBlock("body")
	exit := fn.NewBlock("exit")
	fn.Entry = entry
	entry.Instrs = []ir.Instr{
		{Op: ir.OpSLoad, Dst: 0, Tag: g.ID, Size: 8}, // outside the loop
		{Op: ir.OpBr},
	}
	head.Instrs = []ir.Instr{{Op: ir.OpCBr, A: 0}}
	body.Instrs = []ir.Instr{
		{Op: ir.OpSLoad, Dst: 1, Tag: g.ID, Size: 8}, // in the loop
		{Op: ir.OpSStore, A: 1, Tag: g.ID, Size: 8},  // in the loop
		{Op: ir.OpBr},
	}
	exit.Instrs = []ir.Instr{{Op: ir.OpRet}}
	ir.AddEdge(entry, head)
	ir.AddEdge(head, body)
	ir.AddEdge(head, exit)
	ir.AddEdge(body, head)
	m.AddFunc(fn)

	s := Measure(m)
	if s.Mem.ScalarLoads != 2 || s.Mem.ScalarStores != 1 {
		t.Fatalf("module census wrong: %+v", s.Mem)
	}
	if s.Loop.ScalarLoads != 1 || s.Loop.ScalarStores != 1 {
		t.Fatalf("loop census wrong: %+v", s.Loop)
	}
}

func TestObserveRecordsDeltaAndExtra(t *testing.T) {
	m := testModule()
	p := &Pipeline{}
	err := p.Observe("strip-stores", m, func() (map[string]int64, error) {
		// Delete the scalar store, as promotion would.
		b := m.Funcs["main"].Entry
		var kept []ir.Instr
		for _, in := range b.Instrs {
			if in.Op != ir.OpSStore {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
		return map[string]int64{"removed": 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(p.Events))
	}
	e := p.Events[0]
	d := e.Delta()
	if d.Instrs != -1 || d.Mem.ScalarStores != -1 {
		t.Fatalf("delta = %+v, want Δinstrs=-1 ΔsStore=-1", d)
	}
	if d.Mem.ScalarLoads != 0 || d.Mem.PtrStores != 0 {
		t.Fatalf("unrelated classes moved: %+v", d)
	}
	if e.Extra["removed"] != 1 {
		t.Fatalf("extra = %v", e.Extra)
	}
	if e.DurationNS < 0 {
		t.Fatalf("negative duration %d", e.DurationNS)
	}
	if p.Event("strip-stores") != e || p.Event("nope") != nil {
		t.Fatal("Event lookup broken")
	}
}

func TestObserveNilPipelineAndErrors(t *testing.T) {
	var p *Pipeline
	ran := false
	if err := p.Observe("x", nil, func() (map[string]int64, error) { ran = true; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("nil pipeline must still run the pass")
	}
	if p.FormatTable() != "" || p.Total() != 0 || p.PassNames() != nil || p.Event("x") != nil {
		t.Fatal("nil pipeline accessors must be no-ops")
	}

	q := &Pipeline{}
	wantErr := errors.New("pass failed")
	if err := q.Observe("bad", testModule(), func() (map[string]int64, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if len(q.Events) != 0 {
		t.Fatal("failed pass must not record an event")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	m := testModule()
	p := &Pipeline{DumpPass: DumpAll}
	for _, name := range []string{"constprop", "promote"} {
		if err := p.Observe(name, m, func() (map[string]int64, error) {
			return map[string]int64{"scalar_promotions": 2}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []*PassEvent
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p.Events) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", back[0], p.Events[0])
	}
	if back[1].IRDump == "" || !strings.Contains(back[1].IRDump, "func main") {
		t.Fatal("IR dump lost in round trip")
	}
	if got := p.PassNames(); !reflect.DeepEqual(got, []string{"constprop", "promote"}) {
		t.Fatalf("PassNames = %v", got)
	}
}

func TestFormatTable(t *testing.T) {
	m := testModule()
	p := &Pipeline{}
	if err := p.Observe("promote", m, func() (map[string]int64, error) {
		return map[string]int64{"scalar_promotions": 1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	table := p.FormatTable()
	for _, want := range []string{"pass", "promote", "ΔsStore", "scalar_promotions=1", "total"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
