package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// This file is the span half of the observability layer: hierarchical
// wall-clock spans (compile → per-function middle-end work items →
// per-pass → per-analysis fixpoints, plus interpreter execute spans)
// with numeric attributes and string labels, collected by a Tracer and
// exportable both as a plain JSON span list and as Chrome trace_event
// JSON viewable in about:tracing or Perfetto.
//
// Everything is nil-safe: a nil *Tracer hands out zero Spans whose
// methods do nothing, so instrumented code pays one pointer test when
// tracing is off.

// SpanEvent is one completed span. Times are nanoseconds relative to
// the tracer's epoch (its construction time), so a span list is
// self-contained and deterministic under a fake clock.
type SpanEvent struct {
	// Name identifies the span ("compile", a pass name, a function
	// name for middle-end work items, "execute").
	Name string `json:"name"`
	// Cat is the span's category ("compile", "pass", "middleend",
	// "analysis", "interp"); Chrome's trace viewer filters on it.
	Cat string `json:"cat,omitempty"`
	// TID is the logical thread the span ran on: 0 is the coordinating
	// goroutine, worker w of the parallel middle end is w+1. Spans on
	// one TID nest by time containment in trace viewers.
	TID int `json:"tid"`
	// StartNS and DurNS position the span relative to the tracer
	// epoch.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Args carries numeric attributes (dataflow iterations, worklist
	// pushes, tagset sizes, promotion and spill counts, register
	// pressure, dynamic counts, …).
	Args map[string]int64 `json:"args,omitempty"`
	// Labels carries string attributes (function name, engine, …).
	Labels map[string]string `json:"labels,omitempty"`
}

// Tracer collects spans from any number of goroutines. The zero value
// is not usable; construct with NewTracer. A nil *Tracer is a valid
// no-op tracer.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	now     func() time.Time // test hook; time.Now outside tests
	spans   []SpanEvent
	threads map[int]string
}

// NewTracer returns a tracer whose epoch is the current time.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now, threads: make(map[int]string)}
	t.epoch = t.now()
	return t
}

// newTracerClock is the deterministic constructor tests use: now is
// called once at construction (the epoch) and once per span start and
// end.
func newTracerClock(now func() time.Time) *Tracer {
	t := &Tracer{now: now, threads: make(map[int]string)}
	t.epoch = t.now()
	return t
}

// Span is an open span handle. The zero Span (from a nil tracer)
// discards everything.
type Span struct {
	t     *Tracer
	ev    *SpanEvent
	start time.Time
}

// Start opens a span on logical thread tid. End completes it.
func (t *Tracer) Start(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	now := t.now()
	return Span{
		t:     t,
		start: now,
		ev: &SpanEvent{
			Name:    name,
			Cat:     cat,
			TID:     tid,
			StartNS: now.Sub(t.epoch).Nanoseconds(),
		},
	}
}

// Arg attaches one numeric attribute and returns the span for
// chaining.
func (s Span) Arg(k string, v int64) Span {
	if s.t == nil {
		return s
	}
	if s.ev.Args == nil {
		s.ev.Args = make(map[string]int64)
	}
	s.ev.Args[k] = v
	return s
}

// AddArgs merges a numeric attribute map (pass extras fold in here).
func (s Span) AddArgs(m map[string]int64) Span {
	for k, v := range m {
		s = s.Arg(k, v)
	}
	return s
}

// Label attaches one string attribute and returns the span for
// chaining.
func (s Span) Label(k, v string) Span {
	if s.t == nil {
		return s
	}
	if s.ev.Labels == nil {
		s.ev.Labels = make(map[string]string)
	}
	s.ev.Labels[k] = v
	return s
}

// End completes the span and records it on the tracer. Safe from any
// goroutine; a zero Span does nothing.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.ev.DurNS = s.t.now().Sub(s.start).Nanoseconds()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, *s.ev)
	s.t.mu.Unlock()
}

// NameThread assigns a display name to a logical thread id, emitted
// as thread_name metadata in the Chrome export.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// Spans returns the completed spans sorted by start time (ties broken
// by TID, then name): workers complete spans in scheduling order, so
// the raw append order is nondeterministic while the sorted view is
// stable for identical timings.
func (t *Tracer) Spans() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanEvent, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	return out
}

// WriteJSON emits the sorted span list as indented JSON (the plain
// span-list encoding; WriteChromeTrace is the trace-viewer encoding).
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Spans())
}

// chromeEvent is one Chrome trace_event record. "X" complete events
// carry microsecond ts/dur; "M" metadata events name threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format trace viewers
// accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the span stream as Chrome trace_event JSON:
// open the file in about:tracing or https://ui.perfetto.dev. Spans on
// one tid nest by time containment, so the compile span contains the
// pass spans, which contain per-function and fixpoint spans. Output
// is deterministic given deterministic timings (spans sorted, map
// keys sorted by encoding/json).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	t.mu.Lock()
	threads := make(map[int]string, len(t.threads))
	for tid, name := range t.threads {
		threads[tid] = name
	}
	t.mu.Unlock()
	var tids []int
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tid,
			Args: map[string]any{"name": threads[tid]},
		})
	}
	for _, sp := range t.Spans() {
		args := make(map[string]any, len(sp.Args)+len(sp.Labels))
		for k, v := range sp.Args {
			args[k] = v
		}
		for k, v := range sp.Labels {
			args[k] = v
		}
		if len(args) == 0 {
			args = nil
		}
		dur := float64(sp.DurNS) / 1e3
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   float64(sp.StartNS) / 1e3,
			Dur:  &dur,
			PID:  1,
			TID:  sp.TID,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
