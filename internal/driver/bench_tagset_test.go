package driver_test

import (
	"testing"

	"regpromo/internal/ir"
)

// BenchmarkTagSetOps measures the dense bit-vector TagSet on the
// operation mix the dataflow analyses lean on: in-place union into an
// accumulator (the MOD/REF and points-to inner loop), allocating
// union, intersection, membership, and equality (the fixpoint
// convergence check). Sets hold every third tag out of 512, a density
// typical of per-function visible-set summaries.
func BenchmarkTagSetOps(b *testing.B) {
	const n = 512
	var ids, odds []ir.TagID
	for i := 0; i < n; i += 3 {
		ids = append(ids, ir.TagID(i))
	}
	for i := 1; i < n; i += 2 {
		odds = append(odds, ir.TagID(i))
	}
	x := ir.NewTagSet(ids...)
	y := ir.NewTagSet(odds...)

	b.Run("UnionInto", func(b *testing.B) {
		var acc ir.TagSet
		for i := 0; i < b.N; i++ {
			x.UnionInto(&acc)
			y.UnionInto(&acc)
		}
	})
	b.Run("Union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Union(y)
		}
	})
	b.Run("Intersect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Intersect(y)
		}
	})
	b.Run("Has", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Has(ir.TagID(i % n))
		}
	})
	b.Run("Equal", func(b *testing.B) {
		z := x.Clone()
		for i := 0; i < b.N; i++ {
			_ = x.Equal(z)
		}
	})
}
