package driver

import (
	"strings"

	"regpromo/internal/interp"
	"regpromo/internal/ir"
)

// ParseEngines resolves an engine-list specification from a CLI flag
// into an ordered, deduplicated engine list. Accepted forms:
//
//   - "" or "flat": the flat engine alone
//   - a single engine name ("flat", "switch", "native")
//   - a comma list, e.g. "flat,native"
//   - "both": flat + switch (the historical two-engine matrix)
//   - "all": flat + switch + native
//
// The result names exactly the engines the specification asks for, in
// first-mention order; consumers that need the flat engine as a
// comparison reference (the differential tester) add it themselves.
// Unknown names are rejected with the canonical diagnostic format
// (ir.Diag, check "engine") so every CLI entry point prints the same
// line for the same typo.
func ParseEngines(spec string) ([]interp.Engine, error) {
	if spec == "" {
		return []interp.Engine{interp.EngineFlat}, nil
	}
	var engines []interp.Engine
	seen := map[interp.Engine]bool{}
	add := func(e interp.Engine) {
		if !seen[e] {
			seen[e] = true
			engines = append(engines, e)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		switch name := strings.TrimSpace(part); name {
		case "both":
			add(interp.EngineFlat)
			add(interp.EngineSwitch)
		case "all":
			add(interp.EngineFlat)
			add(interp.EngineSwitch)
			add(interp.EngineNative)
		default:
			e, err := interp.ParseEngine(name)
			if err != nil {
				return nil, engineDiag(name, "flat, switch, native, both, or all")
			}
			add(e)
		}
	}
	return engines, nil
}

// ParseEngine resolves a single engine name ("flat", "switch", or
// "native"; empty means flat) with the same canonical diagnostic as
// ParseEngines. The list forms ("both", "all", comma lists) are
// rejected — this is the parser for flags that select exactly one
// engine (rpexec -engine).
func ParseEngine(spec string) (interp.Engine, error) {
	if spec == "" {
		return interp.EngineFlat, nil
	}
	e, err := interp.ParseEngine(spec)
	if err != nil {
		return interp.EngineFlat, engineDiag(spec, "flat, switch, or native")
	}
	return e, nil
}

// engineDiag renders the canonical unknown-engine diagnostic.
func engineDiag(name, want string) error {
	return ir.DiagError([]ir.Diag{{
		Check: "engine",
		Index: -1,
		Msg:   `unknown engine "` + name + `" (want ` + want + `)`,
	}})
}
