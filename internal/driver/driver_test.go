package driver

import (
	"fmt"
	"testing"
	"testing/quick"

	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/testgen"
)

// runConfig compiles src under cfg and executes it.
func runConfig(t *testing.T, src string, cfg Config) *interp.Result {
	t.Helper()
	c, err := CompileSource("test.c", src, cfg)
	if err != nil {
		t.Fatalf("compile (%+v): %v", cfg, err)
	}
	res, err := c.Execute(interp.Options{})
	if err != nil {
		t.Fatalf("execute (%+v): %v\nsource:\n%s", cfg, err, src)
	}
	return res
}

// allConfigs is the behavioural-equivalence matrix: the paper's four
// configurations plus pointer promotion, the store ablation, varying
// register pressure, and a no-allocation build.
func allConfigs() []Config {
	var out []Config
	out = append(out, Configurations()...)
	out = append(out,
		Config{Analysis: ModRef, Promote: true, PointerPromote: true},
		Config{Analysis: PointsTo, Promote: true, PointerPromote: true},
		Config{Analysis: PointsTo, Promote: true, SkipUnwrittenStores: true},
		Config{Analysis: ModRef, Promote: true, K: 8},
		Config{Analysis: ModRef, Promote: true, K: 6},
		Config{Analysis: PointsTo, Promote: true, PointerPromote: true, NoAlloc: true},
		Config{Analysis: ModRef, Promote: true, DisableOpt: true},
		Config{Analysis: ModRef, Promote: true, Throttle: 32},
		Config{Analysis: ModRef, Promote: true, Throttle: 12, K: 12},
		Config{Analysis: PointsTo, Promote: true, DSE: true},
		Config{Analysis: ModRef, Promote: true, PointerPromote: true, DSE: true, Throttle: 16, K: 16},
	)
	return out
}

// checkEquivalence compiles src under every configuration and demands
// identical observable behaviour (output and exit code).
func checkEquivalence(t *testing.T, src string) {
	t.Helper()
	base := runConfig(t, src, Config{Analysis: ModRef, Promote: false, DisableOpt: true, NoAlloc: true})
	for _, cfg := range allConfigs() {
		res := runConfig(t, src, cfg)
		if res.Output != base.Output || res.Exit != base.Exit {
			t.Fatalf("behaviour diverged under %+v:\nbase: exit=%d out=%q\ngot:  exit=%d out=%q\nsource:\n%s",
				cfg, base.Exit, base.Output, res.Exit, res.Output, src)
		}
	}
}

func TestEquivalenceHandWritten(t *testing.T) {
	sources := map[string]string{
		"global-accumulator": `
int total;
int hits;
void record(int v) { hits++; }
int main(void) {
	int i;
	for (i = 0; i < 100; i++) {
		total += i;
		if (i % 10 == 0) record(i);
	}
	print_int(total);
	print_int(hits);
	return 0;
}`,
		"aliased-global": `
int g;
void bump(int *p) { *p += 5; }
int main(void) {
	int i;
	for (i = 0; i < 10; i++) {
		g++;
		bump(&g);
	}
	print_int(g);
	return 0;
}`,
		"matrix-sum": `
int A[8][8];
int B[8];
int main(void) {
	int i;
	int j;
	for (i = 0; i < 8; i++) {
		B[i] = 0;
		for (j = 0; j < 8; j++) {
			A[i][j] = i * j + 1;
			B[i] += A[i][j];
		}
	}
	print_int(B[7]);
	return 0;
}`,
		"conditional-store": `
int errcount;
int process(int v) {
	if (v < 0) { errcount++; return 0; }
	return v * 2;
}
int main(void) {
	int i;
	int sum;
	sum = 0;
	for (i = -3; i < 20; i++) sum += process(i);
	print_int(sum);
	print_int(errcount);
	return 0;
}`,
		"heap-list": `
struct node { int val; struct node *next; };
int total;
int main(void) {
	struct node *head;
	struct node *p;
	int i;
	head = 0;
	for (i = 0; i < 20; i++) {
		p = (struct node *) malloc(sizeof(struct node));
		p->val = i * i;
		p->next = head;
		head = p;
	}
	for (p = head; p != 0; p = p->next) total += p->val;
	print_int(total);
	return 0;
}`,
		"doubles": `
double acc;
int main(void) {
	int i;
	for (i = 1; i <= 10; i++) acc += 1.0 / i;
	print_double(acc);
	return 0;
}`,
		"function-pointer": `
int a;
int b;
void fa(void) { a += 1; }
void fb(void) { b += 2; }
int main(void) {
	void (*f)(void);
	int i;
	for (i = 0; i < 6; i++) {
		if (i % 2) f = fa; else f = fb;
		f();
	}
	print_int(a);
	print_int(b);
	return 0;
}`,
		"zero-trip-loop": `
int g;
int main(void) {
	int i;
	int n;
	n = 0;
	for (i = 0; i < n; i++) g += 1;
	g += 7;
	print_int(g);
	return 0;
}`,
		"recursive-addressed-local": `
int use(int *p) { return *p + 1; }
int walk(int n) {
	int local;
	local = n;
	if (n <= 0) return use(&local);
	return walk(n - 1) + use(&local);
}
int main(void) {
	print_int(walk(10));
	return 0;
}`,
	}
	for name, src := range sources {
		src := src
		t.Run(name, func(t *testing.T) { checkEquivalence(t, src) })
	}
}

// TestEquivalenceRandomPrograms is the headline soundness property:
// random programs behave identically under every configuration of
// analysis, promotion, optimization, and register pressure.
func TestEquivalenceRandomPrograms(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	cfgQuick := &quick.Config{MaxCount: count}
	seedCounter := int64(0)
	check := func(raw int64) bool {
		seedCounter++
		src := testgen.Program(seedCounter*1000003 + raw%1000)
		base := runConfig(t, src, Config{Analysis: ModRef, Promote: false, DisableOpt: true, NoAlloc: true})
		for _, cfg := range allConfigs() {
			res := runConfig(t, src, cfg)
			if res.Output != base.Output || res.Exit != base.Exit {
				t.Logf("diverged under %+v\nsource:\n%s", cfg, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, cfgQuick); err != nil {
		t.Fatal(err)
	}
}

// TestPromotionReducesMemoryTraffic checks the paper's headline
// direction on the canonical pattern: a global accumulator in a loop.
func TestPromotionReducesMemoryTraffic(t *testing.T) {
	src := `
int total;
int main(void) {
	int i;
	for (i = 0; i < 1000; i++) total += i;
	print_int(total);
	return 0;
}`
	off := runConfig(t, src, Config{Analysis: ModRef, Promote: false})
	on := runConfig(t, src, Config{Analysis: ModRef, Promote: true})
	if on.Output != off.Output {
		t.Fatal("outputs differ")
	}
	if on.Counts.Stores >= off.Counts.Stores {
		t.Fatalf("promotion should remove stores: off=%d on=%d", off.Counts.Stores, on.Counts.Stores)
	}
	if on.Counts.Loads >= off.Counts.Loads {
		t.Fatalf("promotion should remove loads: off=%d on=%d", off.Counts.Loads, on.Counts.Loads)
	}
	// ~1000 stores collapse to ~1.
	if on.Counts.Stores > off.Counts.Stores/100 {
		t.Fatalf("expected two orders of magnitude fewer stores, off=%d on=%d",
			off.Counts.Stores, on.Counts.Stores)
	}
}

// TestPromotionStatsReported sanity-checks the statistics plumbing.
func TestPromotionStatsReported(t *testing.T) {
	src := `
int a;
int b;
int main(void) {
	int i;
	for (i = 0; i < 10; i++) { a += i; b ^= i; }
	print_int(a + b);
	return 0;
}`
	c, err := CompileSource("test.c", src, Config{Analysis: ModRef, Promote: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Promote.ScalarPromotions < 2 {
		t.Fatalf("expected both globals promoted, stats=%+v", c.Promote)
	}
}

func ExampleCompileSource() {
	src := `
int counter;
int main(void) {
	int i;
	for (i = 0; i < 5; i++) counter += i;
	print_int(counter);
	return 0;
}`
	c, err := CompileSource("example.c", src, Config{Analysis: ModRef, Promote: true})
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	res, err := c.Execute(interp.Options{})
	if err != nil {
		fmt.Println("runtime error:", err)
		return
	}
	fmt.Print(res.Output)
	// Output: 10
}

// TestCompilationDeterminism: the whole pipeline is deterministic —
// compiling the same source twice yields byte-identical IL. The
// figure tables depend on this.
func TestCompilationDeterminism(t *testing.T) {
	src := testgen.Program(4242)
	for _, cfg := range []Config{
		{Analysis: ModRef, Promote: true},
		{Analysis: PointsTo, Promote: true, PointerPromote: true},
		{Analysis: PointsTo, Promote: true, DSE: true, Throttle: 16, K: 16},
	} {
		a, err := CompileSource("t.c", src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CompileSource("t.c", src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		da, db := ir.FormatModule(a.Module), ir.FormatModule(b.Module)
		if da != db {
			t.Fatalf("nondeterministic compilation under %+v", cfg)
		}
		ra, err := a.Execute(interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Execute(interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ra.Counts != rb.Counts {
			t.Fatalf("nondeterministic counts under %+v: %+v vs %+v", cfg, ra.Counts, rb.Counts)
		}
	}
}

// TestPipelineStageCounts sanity-checks that each optimization level
// only improves (or preserves) the dynamic operation count on a
// well-behaved program.
func TestPipelineStageCounts(t *testing.T) {
	src := `
int g;
int h;
int main(void) {
	int i;
	for (i = 0; i < 500; i++) {
		g += i;
		h ^= g;
	}
	print_int(g);
	print_int(h);
	return 0;
}
`
	raw := runConfig(t, src, Config{Analysis: ModRef, DisableOpt: true, NoAlloc: true})
	opt := runConfig(t, src, Config{Analysis: ModRef})
	promoted := runConfig(t, src, Config{Analysis: ModRef, Promote: true})
	if opt.Counts.Ops > raw.Counts.Ops {
		t.Fatalf("classical optimization made things worse: %d -> %d", raw.Counts.Ops, opt.Counts.Ops)
	}
	if promoted.Counts.Ops >= opt.Counts.Ops {
		t.Fatalf("promotion should win on this kernel: %d -> %d", opt.Counts.Ops, promoted.Counts.Ops)
	}
	if promoted.Counts.Stores >= opt.Counts.Stores/10 {
		t.Fatalf("promotion should collapse stores: %d -> %d", opt.Counts.Stores, promoted.Counts.Stores)
	}
}
