package driver

import (
	"reflect"
	"testing"

	"regpromo/internal/interp"
)

// TestParseEngines is the table over every engine-list spelling the
// CLI accepts. Both list-valued flags (`rpbench -engine` and
// `rpfuzz -engines`) route through ParseEngines, so one table covers
// both entry points: names resolve in first-mention order, the "both"
// and "all" shorthands expand, duplicates collapse, and an unknown
// name is rejected with the canonical [engine] diagnostic instead of
// failing deep in execution.
func TestParseEngines(t *testing.T) {
	flat, sw, nat := interp.EngineFlat, interp.EngineSwitch, interp.EngineNative
	cases := []struct {
		spec    string
		want    []interp.Engine
		wantErr string
	}{
		{spec: "", want: []interp.Engine{flat}},
		{spec: "flat", want: []interp.Engine{flat}},
		{spec: "switch", want: []interp.Engine{sw}},
		{spec: "native", want: []interp.Engine{nat}},
		{spec: "both", want: []interp.Engine{flat, sw}},
		{spec: "all", want: []interp.Engine{flat, sw, nat}},
		{spec: "flat,native", want: []interp.Engine{flat, nat}},
		// First-mention order is preserved, not canonicalized.
		{spec: "native,flat", want: []interp.Engine{nat, flat}},
		// Spaces around commas are tolerated (shell quoting habits).
		{spec: " flat , native ", want: []interp.Engine{flat, nat}},
		// Duplicates and overlapping shorthands collapse.
		{spec: "flat,flat,both", want: []interp.Engine{flat, sw}},
		{spec: "all,native", want: []interp.Engine{flat, sw, nat}},
		{spec: "native,both", want: []interp.Engine{nat, flat, sw}},
		// Unknown names fail with the canonical diagnostic — same
		// line for the same typo from every binary.
		{spec: "bogus", wantErr: `[engine] unknown engine "bogus" (want flat, switch, native, both, or all)`},
		{spec: "flat,bogus", wantErr: `[engine] unknown engine "bogus" (want flat, switch, native, both, or all)`},
		// Case matters: engine names are exact.
		{spec: "Flat", wantErr: `[engine] unknown engine "Flat" (want flat, switch, native, both, or all)`},
		{spec: "flat native", wantErr: `[engine] unknown engine "flat native" (want flat, switch, native, both, or all)`},
	}
	for _, c := range cases {
		got, err := ParseEngines(c.spec)
		if c.wantErr != "" {
			if err == nil {
				t.Errorf("ParseEngines(%q) = %v, want error", c.spec, got)
			} else if err.Error() != c.wantErr {
				t.Errorf("ParseEngines(%q) error = %q, want %q", c.spec, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEngines(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseEngines(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

// TestParseEngine covers the single-engine flag (`rpexec -engine`):
// the three engine names and the empty default resolve, while the
// list spellings ParseEngines accepts are rejected here — a flag that
// selects exactly one engine must not silently take the first of a
// list.
func TestParseEngine(t *testing.T) {
	cases := []struct {
		spec    string
		want    interp.Engine
		wantErr string
	}{
		{spec: "", want: interp.EngineFlat},
		{spec: "flat", want: interp.EngineFlat},
		{spec: "switch", want: interp.EngineSwitch},
		{spec: "native", want: interp.EngineNative},
		{spec: "bogus", wantErr: `[engine] unknown engine "bogus" (want flat, switch, or native)`},
		{spec: "both", wantErr: `[engine] unknown engine "both" (want flat, switch, or native)`},
		{spec: "all", wantErr: `[engine] unknown engine "all" (want flat, switch, or native)`},
		{spec: "flat,native", wantErr: `[engine] unknown engine "flat,native" (want flat, switch, or native)`},
	}
	for _, c := range cases {
		got, err := ParseEngine(c.spec)
		if c.wantErr != "" {
			if err == nil {
				t.Errorf("ParseEngine(%q) = %v, want error", c.spec, got)
			} else if err.Error() != c.wantErr {
				t.Errorf("ParseEngine(%q) error = %q, want %q", c.spec, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}
