package driver

import (
	"sync/atomic"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
)

// Frontend is a reusable front-end artifact: one source file parsed,
// type-checked, and lowered to IL exactly once. Every measurement
// matrix in this repository compiles the same program under several
// configurations; forking each pipeline from a module clone instead of
// re-running the front end per configuration removes the redundant
// parse+sema+irgen work from the measurement loop entirely
// (compile-once sharing).
//
// A Frontend is immutable after construction: Compile hands every
// configuration its own deep copy of the module, so concurrent and
// sequential forks can never disturb each other.
type Frontend struct {
	// Filename is the name the source was parsed under.
	Filename string

	module *ir.Module
	clones atomic.Int64
}

// PassFrontendReuse is the observer's name for the fork-from-artifact
// stage that replaces a repeated front-end run under compile-once
// sharing. Its event carries Extra{"reused": 1, "clones": n}.
const PassFrontendReuse = "frontend.reuse"

// ParseSource runs the front end once and returns the reusable
// artifact.
func ParseSource(filename, src string) (*Frontend, error) {
	return ParseSourceObserved(filename, src, nil)
}

// ParseSourceObserved is ParseSource under an observer: the front end
// is timed and reported as the "frontend" pass, exactly as a full
// Compile would report it. pipe may be nil.
func ParseSourceObserved(filename, src string, pipe *obs.Pipeline) (*Frontend, error) {
	fe := &Frontend{Filename: filename}
	err := pipe.Observe(PassFrontend, nil, func() (map[string]int64, error) {
		file, err := parser.Parse(filename, src)
		if err != nil {
			return nil, err
		}
		prog, err := sema.Check(file)
		if err != nil {
			return nil, err
		}
		m, err := irgen.Generate(prog)
		if err != nil {
			return nil, err
		}
		fe.module = m
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	patchEvent(pipe, PassFrontend, fe.module)
	return fe, nil
}

// NewModule forks a fresh deep copy of the artifact's module for one
// pipeline to own and mutate.
func (fe *Frontend) NewModule() *ir.Module {
	fe.clones.Add(1)
	return fe.module.Clone()
}

// Clones reports how many pipelines have been forked from this
// artifact so far.
func (fe *Frontend) Clones() int64 { return fe.clones.Load() }

// Compile forks a pipeline from the artifact: the module is cloned
// (reported to the observer as "frontend.reuse" — the stage that
// replaces a repeated front-end run) and the configuration's pass list
// runs over the clone. Safe to call concurrently.
func (fe *Frontend) Compile(cfg Config, pipe *obs.Pipeline) (*Compilation, error) {
	sp := pipe.StartSpan("compile", "compile", 0)
	defer sp.End()
	c := &Compilation{}
	err := pipe.Observe(PassFrontendReuse, nil, func() (map[string]int64, error) {
		c.Module = fe.NewModule()
		return map[string]int64{"reused": 1, "clones": fe.Clones()}, nil
	})
	if err != nil {
		return nil, err
	}
	patchEvent(pipe, PassFrontendReuse, c.Module)
	return compilePasses(c, cfg, pipe)
}

// patchEvent fixes up an event observed against a nil module (the
// module did not exist before the stage ran): the after-side snapshot
// and, when requested, the IL dump are taken against the result.
func patchEvent(pipe *obs.Pipeline, name string, m *ir.Module) {
	if ev := pipe.Event(name); ev != nil {
		ev.After = obs.Measure(m)
		if pipe.DumpPass == obs.DumpAll || pipe.DumpPass == name {
			ev.IRDump = ir.FormatModule(m)
		}
	}
}
