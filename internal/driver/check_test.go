package driver_test

import (
	"testing"

	"regpromo/internal/driver"
)

func TestParseCheckLevel(t *testing.T) {
	cases := []struct {
		in   string
		want driver.CheckLevel
		err  bool
	}{
		{"off", driver.CheckOff, false},
		{"", driver.CheckOff, false},
		{"module", driver.CheckModule, false},
		{"pass", driver.CheckEveryPass, false},
		{"after-every-pass", driver.CheckEveryPass, false},
		{"bogus", driver.CheckOff, true},
	}
	for _, c := range cases {
		got, err := driver.ParseCheckLevel(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseCheckLevel(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, l := range []driver.CheckLevel{driver.CheckOff, driver.CheckModule, driver.CheckEveryPass} {
		back, err := driver.ParseCheckLevel(l.String())
		if err != nil || back != l {
			t.Errorf("CheckLevel %v does not round-trip through String: %v, %v", l, back, err)
		}
	}
}

// TestCheckModuleLevelClean: a module-level check on a normal
// compilation must pass and must not change the compiled output.
func TestCheckModuleLevelClean(t *testing.T) {
	const src = `
int g;
int f(int x) { g = g + x; return g; }
int main(void) { return f(3) + f(4); }
`
	cfg := driver.Config{Analysis: driver.PointsTo, Promote: true, Check: driver.CheckModule}
	if _, err := driver.CompileSource("check_clean.c", src, cfg); err != nil {
		t.Fatalf("clean compilation failed the module check: %v", err)
	}
}
