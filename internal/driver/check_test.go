package driver_test

import (
	"reflect"
	"strings"
	"testing"

	"regpromo/internal/driver"
)

func TestParseCheckLevel(t *testing.T) {
	cases := []struct {
		in   string
		want driver.CheckLevel
		err  bool
	}{
		{"off", driver.CheckOff, false},
		{"", driver.CheckOff, false},
		{"module", driver.CheckModule, false},
		{"pass", driver.CheckEveryPass, false},
		{"after-every-pass", driver.CheckEveryPass, false},
		{"bogus", driver.CheckOff, true},
	}
	for _, c := range cases {
		got, err := driver.ParseCheckLevel(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseCheckLevel(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, l := range []driver.CheckLevel{driver.CheckOff, driver.CheckModule, driver.CheckEveryPass} {
		back, err := driver.ParseCheckLevel(l.String())
		if err != nil || back != l {
			t.Errorf("CheckLevel %v does not round-trip through String: %v, %v", l, back, err)
		}
	}
}

// TestParseCheck covers the extended -check grammar: the three level
// keywords still parse as levels with no pass selection, while any
// other spelling is a comma list of lint-pass names — validated
// against the registry, deduplicated in first-mention order, and
// rejected with the canonical [check] diagnostic otherwise.
func TestParseCheck(t *testing.T) {
	cases := []struct {
		in        string
		wantLevel driver.CheckLevel
		wantPass  []string
		wantErr   string
	}{
		{"", driver.CheckOff, nil, ""},
		{"off", driver.CheckOff, nil, ""},
		{"module", driver.CheckModule, nil, ""},
		{"pass", driver.CheckEveryPass, nil, ""},
		{"after-every-pass", driver.CheckEveryPass, nil, ""},
		{"verify", driver.CheckModule, []string{"verify"}, ""},
		{"certify", driver.CheckModule, []string{"certify"}, ""},
		{"pressure", driver.CheckModule, []string{"pressure"}, ""},
		{"tags,certify", driver.CheckModule, []string{"tags", "certify"}, ""},
		{" verify , verify ,cfg", driver.CheckModule, []string{"verify", "cfg"}, ""},
		{"bogus", driver.CheckOff, nil, `unknown check pass "bogus"`},
		{"verify,bogus", driver.CheckOff, nil, `unknown check pass "bogus"`},
	}
	for _, c := range cases {
		level, passes, err := driver.ParseCheck(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseCheck(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			} else if !strings.Contains(err.Error(), "[check]") {
				t.Errorf("ParseCheck(%q) err = %v, want canonical [check] diagnostic", c.in, err)
			}
			continue
		}
		if err != nil || level != c.wantLevel || !reflect.DeepEqual(passes, c.wantPass) {
			t.Errorf("ParseCheck(%q) = %v, %v, %v; want %v, %v", c.in, level, passes, err, c.wantLevel, c.wantPass)
		}
	}
}

// TestCheckModuleLevelClean: a module-level check on a normal
// compilation must pass and must not change the compiled output.
func TestCheckModuleLevelClean(t *testing.T) {
	const src = `
int g;
int f(int x) { g = g + x; return g; }
int main(void) { return f(3) + f(4); }
`
	cfg := driver.Config{Analysis: driver.PointsTo, Promote: true, Check: driver.CheckModule}
	if _, err := driver.CompileSource("check_clean.c", src, cfg); err != nil {
		t.Fatalf("clean compilation failed the module check: %v", err)
	}
}
