package driver_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/obs"
)

// TestTracedParallelCompile compiles with the parallel middle end
// under a tracer and checks the structure of the Chrome export: valid
// JSON, a root compile span on tid 0, and middle-end function spans
// attributed to worker threads (tid >= 1) carrying their worker id.
func TestTracedParallelCompile(t *testing.T) {
	p := bench.Suite()[0]
	fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
	if err != nil {
		t.Fatal(err)
	}
	pipe := &obs.Pipeline{Tracer: obs.NewTracer()}
	cfg := driver.Config{Analysis: driver.PointsTo, Promote: true, Workers: 4}
	if _, err := fe.Compile(cfg, pipe); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := pipe.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}

	var sawCompile, sawWorkerSpan, sawThreadName bool
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				sawThreadName = true
			}
		case "X":
			if ev.PID != 1 {
				t.Errorf("span %q: pid = %d, want 1", ev.Name, ev.PID)
			}
			if ev.Dur == nil {
				t.Errorf("span %q: missing dur", ev.Name)
			}
			if ev.Name == "compile" && ev.TID == 0 {
				sawCompile = true
			}
			if ev.Cat == "middleend" {
				if ev.TID < 1 {
					t.Errorf("middle-end span %q on tid %d, want >= 1", ev.Name, ev.TID)
				}
				if _, ok := ev.Args["worker"]; !ok {
					t.Errorf("middle-end span %q: no worker attribute", ev.Name)
				}
				sawWorkerSpan = true
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if !sawCompile {
		t.Error("no root compile span on tid 0")
	}
	if !sawWorkerSpan {
		t.Error("no worker-attributed middle-end span")
	}
	if !sawThreadName {
		t.Error("no thread_name metadata")
	}

	// The span stream must include the analysis fixpoints the driver
	// wraps.
	var sawFixpoint bool
	for _, sp := range pipe.Tracer.Spans() {
		if sp.Cat == "analysis" {
			sawFixpoint = true
		}
	}
	if !sawFixpoint {
		t.Error("no analysis fixpoint span recorded")
	}
}

// benchCompileExecute is one compile+execute of the first suite
// program, the unit BenchmarkObsOverhead compares with observability
// off and on.
func benchCompileExecute(b *testing.B, fe *driver.Frontend, pipe *obs.Pipeline) {
	cfg := driver.Config{Analysis: driver.ModRef, Promote: true}
	c, err := fe.Compile(cfg, pipe)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Execute(interp.Options{}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkObsOverhead quantifies the observability tax. The "off"
// variant is the default state — no pipeline, tracer, or metrics; the
// acceptance bar is that it stays within noise (≤1%) of what the
// compiler did before the span/metrics layer existed, which this
// benchmark makes checkable against the committed BenchmarkCompileMatrix
// history. The "spans+metrics" variant pays for full tracing.
func BenchmarkObsOverhead(b *testing.B) {
	p := bench.Suite()[0]
	fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		obs.DisableMetrics()
		for i := 0; i < b.N; i++ {
			benchCompileExecute(b, fe, nil)
		}
	})
	b.Run("spans+metrics", func(b *testing.B) {
		obs.EnableMetrics()
		defer obs.DisableMetrics()
		for i := 0; i < b.N; i++ {
			benchCompileExecute(b, fe, &obs.Pipeline{Tracer: obs.NewTracer()})
		}
	})
}
