package driver

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"regpromo/internal/obs"
)

const passTestSrc = `
int total;
int hits;
void record(int v) { hits += v; }
int main(void) {
	int i;
	for (i = 0; i < 100; i++) {
		total += i;
		if (i % 10 == 0) record(i);
	}
	print_int(total);
	print_int(hits);
	return 0;
}`

// TestEveryPassFiresOncePerConfig compiles under each paper
// configuration with an observer attached and checks the recorded
// event stream is exactly the configuration's pass list (front end
// first), with no pass repeated or skipped.
func TestEveryPassFiresOncePerConfig(t *testing.T) {
	for _, cfg := range Configurations() {
		pipe := &obs.Pipeline{}
		if _, err := Compile("t.c", passTestSrc, cfg, pipe); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		want := append([]string{PassFrontend}, cfg.Passes()...)
		got := pipe.PassNames()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%+v: pass stream = %v, want %v", cfg, got, want)
		}
		// The pointer pipeline runs MOD/REF twice by design (§4: the
		// analysis is repeated over the refined module), so multiplicity
		// is checked against the configuration's own pass list rather
		// than a flat once-each rule.
		wantCount := map[string]int{}
		for _, n := range want {
			wantCount[n]++
		}
		seen := map[string]int{}
		for _, n := range got {
			seen[n]++
		}
		for n, c := range seen {
			if c != wantCount[n] {
				t.Errorf("%+v: pass %s fired %d times, want %d", cfg, n, c, wantCount[n])
			}
		}
		for i, e := range pipe.Events {
			if e.Index != i {
				t.Errorf("%+v: event %s has index %d, want %d", cfg, e.Name, e.Index, i)
			}
		}
	}
}

// TestPassDeltasChain checks internal consistency of the recorded IR
// snapshots: pass N's after-state is pass N+1's before-state, and the
// final state matches a fresh measurement of the compiled module.
func TestPassDeltasChain(t *testing.T) {
	for _, cfg := range Configurations() {
		pipe := &obs.Pipeline{}
		c, err := Compile("t.c", passTestSrc, cfg, pipe)
		if err != nil {
			t.Fatal(err)
		}
		evs := pipe.Events
		for i := 1; i < len(evs); i++ {
			if evs[i].Before != evs[i-1].After {
				t.Errorf("%+v: %s.Before = %+v, want previous pass %s.After = %+v",
					cfg, evs[i].Name, evs[i].Before, evs[i-1].Name, evs[i-1].After)
			}
		}
		final := evs[len(evs)-1].After
		if got := obs.Measure(c.Module); got != final {
			t.Errorf("%+v: final snapshot %+v != measured module %+v", cfg, final, got)
		}
	}
}

// TestPromotionPassVisibleInTrace is the acceptance check: with
// promotion on, the promote pass's delta must show a nonzero
// reduction in in-loop tagged (scalar) loads and stores — the lifted
// load/store pair keeps module totals flat, but the loop census must
// drop — and its extra stats must carry the promotion counters.
func TestPromotionPassVisibleInTrace(t *testing.T) {
	pipe := &obs.Pipeline{}
	if _, err := Compile("t.c", passTestSrc, modRefPromote(), pipe); err != nil {
		t.Fatal(err)
	}
	ev := pipe.Event(PassPromote)
	if ev == nil {
		t.Fatal("no promote event recorded")
	}
	d := ev.Delta()
	if d.Loop.ScalarLoads >= 0 || d.Loop.ScalarStores >= 0 {
		t.Fatalf("promotion should reduce in-loop tagged loads and stores, delta = %+v", d.Loop)
	}
	if ev.Extra["scalar_promotions"] <= 0 {
		t.Fatalf("promote extras missing scalar_promotions: %v", ev.Extra)
	}
}

// TestObservedCompileMatchesUnobserved: attaching the observer must
// not change what the compiler produces.
func TestObservedCompileMatchesUnobserved(t *testing.T) {
	for _, cfg := range Configurations() {
		plain, err := CompileSource("t.c", passTestSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		observed, err := Compile("t.c", passTestSrc, cfg, &obs.Pipeline{DumpPass: obs.DumpAll})
		if err != nil {
			t.Fatal(err)
		}
		if obs.Measure(plain.Module) != obs.Measure(observed.Module) {
			t.Fatalf("%+v: observer changed compilation", cfg)
		}
		if plain.Promote.Counters() != observed.Promote.Counters() || plain.Alloc != observed.Alloc {
			t.Fatalf("%+v: observer changed statistics", cfg)
		}
	}
}

// TestDriverEventsRoundTripJSON serializes a real compilation's event
// stream and checks it survives a JSON round trip intact.
func TestDriverEventsRoundTripJSON(t *testing.T) {
	pipe := &obs.Pipeline{DumpPass: PassPromote}
	if _, err := Compile("t.c", passTestSrc, modRefPromote(), pipe); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []*obs.PassEvent
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, pipe.Events) {
		t.Fatal("driver event stream does not round-trip through JSON")
	}
	if pipe.Event(PassPromote).IRDump == "" {
		t.Fatal("requested promote IR dump missing")
	}
}

// modRefPromote is the paper's principal configuration, shared by the
// observability tests.
func modRefPromote() Config {
	return Config{Analysis: ModRef, Promote: true}
}
