package driver_test

import (
	"testing"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
)

// compileMatrix runs the paper's four measurement configurations over
// every suite program, forking each pipeline from a pre-parsed
// front-end artifact so the benchmark isolates the middle end (analysis
// + optimization + allocation) the way the rpbench matrix pays for it.
func compileMatrix(b *testing.B, workers int) {
	b.Helper()
	type job struct {
		name string
		fe   *driver.Frontend
	}
	var jobs []job
	for _, p := range bench.Suite() {
		fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, job{p.Name, fe})
	}
	configs := driver.Configurations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			for _, cfg := range configs {
				cfg.Workers = workers
				if _, err := j.fe.Compile(cfg, nil); err != nil {
					b.Fatalf("%s: %v", j.name, err)
				}
			}
		}
	}
}

// BenchmarkCompileMatrix measures the full rpbench compile matrix:
// every suite program under all four paper configurations.
func BenchmarkCompileMatrix(b *testing.B) {
	b.Run("serial", func(b *testing.B) { compileMatrix(b, 1) })
	b.Run("parallel", func(b *testing.B) { compileMatrix(b, 0) })
}
