// Package driver assembles the compilation pipeline the paper
// evaluates (§5): front end → interprocedural analysis (MOD/REF alone,
// or points-to followed by a MOD/REF re-run) → value numbering,
// constant propagation, loop-invariant code motion → register
// promotion → partial redundancy elimination, dead-code elimination,
// basic-block cleaning → graph-coloring register allocation. The four
// experimental configurations are the cross product of
// {MOD/REF, points-to} × {promotion off, promotion on}.
//
// The pipeline is an explicit pass manager: each configuration expands
// to a named pass list (see Config.Passes), and an optional
// obs.Pipeline observer records per-pass wall time, static IR deltas,
// and pass statistics for every stage it runs.
package driver

import (
	"fmt"

	"regpromo/internal/analysis/modref"
	"regpromo/internal/analysis/pointsto"
	"regpromo/internal/callgraph"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/opt/clean"
	"regpromo/internal/opt/constprop"
	"regpromo/internal/opt/copyprop"
	"regpromo/internal/opt/dce"
	"regpromo/internal/opt/dse"
	"regpromo/internal/opt/licm"
	"regpromo/internal/opt/pre"
	"regpromo/internal/opt/promote"
	"regpromo/internal/opt/valnum"
	"regpromo/internal/regalloc"
)

// Analysis selects the interprocedural analysis (§4).
type Analysis int

const (
	// ModRef is interprocedural MOD/REF analysis alone.
	ModRef Analysis = iota
	// PointsTo runs the Ruf-style points-to analysis, refines the
	// memory operations, and repeats MOD/REF with the sharper sets.
	PointsTo
)

func (a Analysis) String() string {
	if a == PointsTo {
		return "pointer"
	}
	return "modref"
}

// Config selects one compilation configuration.
type Config struct {
	Analysis Analysis

	// Promote enables scalar register promotion (§3.1).
	Promote bool
	// PointerPromote additionally enables §3.3 pointer-based
	// promotion (requires Promote).
	PointerPromote bool
	// SkipUnwrittenStores is the demotion-store refinement ablation
	// (see promote.Options).
	SkipUnwrittenStores bool

	// Throttle, when positive, bounds promotion per loop with the
	// Carr-style bin-packing discipline (§3.4); pass the machine's
	// register count. Zero reproduces the paper's unthrottled
	// promoter.
	Throttle int

	// DSE enables the tag-based dead-store-elimination extension
	// (§3.4's "stores" direction). Off in the paper's pipeline.
	DSE bool

	// DisableOpt skips the classical optimization passes, leaving
	// only analysis and (optionally) promotion. Used by tests.
	DisableOpt bool

	// NoAlloc skips register allocation (virtual registers remain).
	NoAlloc bool
	// K is the physical register count for allocation (default 32).
	K int
}

// Compilation is a compiled program plus pass statistics.
type Compilation struct {
	Module  *ir.Module
	Promote promote.Stats
	Alloc   regalloc.Stats

	// progs caches the module's flat-code lowering ([0] without
	// profiling markers, [1] with) so repeated executions of one
	// compilation — a benchmark matrix, a fuzz seed under several
	// engines — pay for lowering once. The cache is never invalidated:
	// a Compilation's module is not mutated after the pipeline
	// finishes. Not safe for concurrent Execute calls on one
	// Compilation; concurrent callers hold distinct Compilations.
	progs [2]*interp.Program
}

// pass is one named stage of the pipeline. run returns the pass's
// extra statistics for the observer (may be nil).
type pass struct {
	name string
	run  func(s *pipeState) (map[string]int64, error)
}

// pipeState is the mutable state threaded through the pass list.
type pipeState struct {
	cfg Config
	c   *Compilation
	cg  *callgraph.Graph
}

// Canonical pass names, in the order the full pipeline runs them.
// PassValnumLate is the post-PRE value-numbering rerun.
const (
	PassModRef     = "modref"
	PassPointsTo   = "pointsto"
	PassConstProp  = "constprop"
	PassValnum     = "valnum"
	PassLICM       = "licm"
	PassPromote    = "promote"
	PassDSE        = "dse"
	PassPRE        = "pre"
	PassValnumLate = "valnum.post"
	PassCopyProp   = "copyprop"
	PassDCE        = "dce"
	PassClean      = "clean"
	PassRegalloc   = "regalloc"
	PassVerify     = "verify"
)

// passes expands the configuration into its pass list.
func (cfg Config) passes() []pass {
	var ps []pass
	ps = append(ps, pass{PassModRef, func(s *pipeState) (map[string]int64, error) {
		s.cg = callgraph.Build(s.c.Module)
		modref.Run(s.c.Module, s.cg)
		return nil, nil
	}})
	if cfg.Analysis == PointsTo {
		ps = append(ps, pass{PassPointsTo, func(s *pipeState) (map[string]int64, error) {
			m := s.c.Module
			pointsto.Run(m, s.cg)
			modref.RefineMemOps(m)
			// Indirect-call targets may have been pinned; rebuild
			// the call graph so the repeated MOD/REF run sees the
			// refined edges (§4: "MOD/REF analysis is then
			// repeated").
			s.cg = callgraph.Build(m)
			modref.Run(m, s.cg)
			return nil, nil
		}})
	}
	// The classical passes report how many rewrites they performed;
	// surface that as the pass's "changed" statistic.
	simple := func(name string, run func(*ir.Module) int) pass {
		return pass{name, func(s *pipeState) (map[string]int64, error) {
			n := run(s.c.Module)
			return map[string]int64{"changed": int64(n)}, nil
		}}
	}
	if !cfg.DisableOpt {
		ps = append(ps,
			simple(PassConstProp, constprop.Run),
			simple(PassValnum, valnum.Run),
			simple(PassLICM, licm.Run),
		)
	}
	if cfg.Promote {
		ps = append(ps, pass{PassPromote, func(s *pipeState) (map[string]int64, error) {
			st := promote.Run(s.c.Module, promote.Options{
				Pointer:             s.cfg.PointerPromote,
				SkipUnwrittenStores: s.cfg.SkipUnwrittenStores,
				PressureLimit:       s.cfg.Throttle,
			})
			s.c.Promote = st
			return map[string]int64{
				"scalar_promotions":  int64(st.ScalarPromotions),
				"pointer_promotions": int64(st.PointerPromotions),
				"refs_rewritten":     int64(st.RefsRewritten),
				"loads_inserted":     int64(st.LoadsInserted),
				"stores_inserted":    int64(st.StoresInserted),
			}, nil
		}})
	}
	if cfg.DSE {
		ps = append(ps, simple(PassDSE, dse.Run))
	}
	if !cfg.DisableOpt {
		ps = append(ps,
			simple(PassPRE, pre.Run),
			simple(PassValnumLate, valnum.Run),
			simple(PassCopyProp, copyprop.Run),
			simple(PassDCE, dce.Run),
			simple(PassClean, clean.Run),
		)
	}
	if !cfg.NoAlloc {
		ps = append(ps, pass{PassRegalloc, func(s *pipeState) (map[string]int64, error) {
			st, err := regalloc.Run(s.c.Module, regalloc.Options{K: s.cfg.K})
			if err != nil {
				return nil, err
			}
			s.c.Alloc = st
			return map[string]int64{
				"spilled":      int64(st.Spilled),
				"spill_loads":  int64(st.SpillLoads),
				"spill_stores": int64(st.SpillStores),
				"coalesced":    int64(st.Coalesced),
				"rounds":       int64(st.Rounds),
			}, nil
		}})
	}
	ps = append(ps, pass{PassVerify, func(s *pipeState) (map[string]int64, error) {
		if err := ir.VerifyModule(s.c.Module); err != nil {
			return nil, fmt.Errorf("pipeline produced invalid IL: %w", err)
		}
		return nil, nil
	}})
	return ps
}

// Passes returns the configuration's pass names in execution order
// (the front end, which runs before the module exists, is reported by
// the observer as "frontend" ahead of these).
func (cfg Config) Passes() []string {
	ps := cfg.passes()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.name
	}
	return names
}

// PassFrontend is the observer's name for the parse+sema+irgen stage.
const PassFrontend = "frontend"

// CompileSource runs the full pipeline over one C source file.
func CompileSource(filename, src string, cfg Config) (*Compilation, error) {
	return Compile(filename, src, cfg, nil)
}

// Compile runs the full pipeline under an observer. pipe may be nil,
// in which case no telemetry is recorded (identical to CompileSource).
// Every pass — including the front end, reported as "frontend" — is
// timed and bracketed with static IR snapshots on the observer.
//
// To compile one source under several configurations, run the front
// end once with ParseSource and fork each pipeline with
// Frontend.Compile instead.
func Compile(filename, src string, cfg Config, pipe *obs.Pipeline) (*Compilation, error) {
	fe, err := ParseSourceObserved(filename, src, pipe)
	if err != nil {
		return nil, err
	}
	// Single-use compile: the pipeline owns the module outright, so no
	// clone is forked.
	c := &Compilation{Module: fe.module}
	return compilePasses(c, cfg, pipe)
}

// compilePasses runs cfg's pass list over c.Module under the observer.
func compilePasses(c *Compilation, cfg Config, pipe *obs.Pipeline) (*Compilation, error) {
	s := &pipeState{cfg: cfg, c: c}
	for _, p := range cfg.passes() {
		run := p.run
		if err := pipe.Observe(p.name, c.Module, func() (map[string]int64, error) {
			return run(s)
		}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Execute runs a compiled program in the instrumented interpreter.
// Flat-engine runs lower the module to flat code on first use and
// reuse the lowering afterwards.
func (c *Compilation) Execute(opts interp.Options) (*interp.Result, error) {
	if opts.Engine == interp.EngineSwitch {
		return interp.Run(c.Module, opts)
	}
	idx := 0
	if opts.Profile {
		idx = 1
	}
	if c.progs[idx] == nil {
		c.progs[idx] = interp.Flatten(c.Module, opts.Profile)
	}
	return c.progs[idx].Run(opts)
}

// Configurations returns the paper's four measurement configurations
// in presentation order: without/with promotion under MOD/REF, then
// without/with promotion under points-to.
func Configurations() []Config {
	return []Config{
		{Analysis: ModRef, Promote: false},
		{Analysis: ModRef, Promote: true},
		{Analysis: PointsTo, Promote: false},
		{Analysis: PointsTo, Promote: true},
	}
}

// NamedConfig pairs a configuration with a stable display name, for
// matrices (differential testing, reports) that must label their
// columns.
type NamedConfig struct {
	Name   string
	Config Config
}

// DifferentialConfigurations enumerates the pipeline configurations
// the differential tester (internal/difftest) compares. The first
// entry is the reference: classical optimizations disabled and
// virtual registers kept, i.e. the straightest lowering of the source
// semantics. Every other configuration must produce the same
// observable behaviour; any disagreement is a miscompilation by
// construction. short trims the matrix to the reference plus the
// paper's three measured pipelines, for quick CI smoke runs.
func DifferentialConfigurations(short bool) []NamedConfig {
	ncs := []NamedConfig{
		{"ref-noopt", Config{Analysis: ModRef, DisableOpt: true, NoAlloc: true}},
		{"baseline", Config{Analysis: ModRef}},
		{"promote-modref", Config{Analysis: ModRef, Promote: true}},
		{"promote-pointer", Config{Analysis: PointsTo, Promote: true, PointerPromote: true}},
	}
	if short {
		return ncs
	}
	return append(ncs,
		// §3.3 promotion with the demotion-store ablation.
		NamedConfig{"promote-skipunwritten", Config{Analysis: PointsTo, Promote: true, PointerPromote: true, SkipUnwrittenStores: true}},
		// Promotion plus the tag-based dead-store-elimination
		// extension (off in the paper's pipeline, so it only ever
		// runs against the others here).
		NamedConfig{"promote-dse", Config{Analysis: PointsTo, Promote: true, PointerPromote: true, DSE: true}},
		// Throttled promotion under a scarce register supply forces
		// the allocator's spill paths into the comparison.
		NamedConfig{"promote-throttle-k8", Config{Analysis: ModRef, Promote: true, Throttle: 8, K: 8}},
	)
}
