// Package driver assembles the compilation pipeline the paper
// evaluates (§5): front end → interprocedural analysis (MOD/REF alone,
// or points-to followed by a MOD/REF re-run) → value numbering,
// constant propagation, loop-invariant code motion → register
// promotion → partial redundancy elimination, dead-code elimination,
// basic-block cleaning → graph-coloring register allocation. The four
// experimental configurations are the cross product of
// {MOD/REF, points-to} × {promotion off, promotion on}.
//
// The pipeline is an explicit pass manager: each configuration expands
// to a named pass list (see Config.Passes), and an optional
// obs.Pipeline observer records per-pass wall time, static IR deltas,
// and pass statistics for every stage it runs.
package driver

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"regpromo/internal/analysis/cache"
	"regpromo/internal/analysis/certify"
	"regpromo/internal/analysis/modref"
	"regpromo/internal/analysis/pointsto"
	"regpromo/internal/callgraph"
	"regpromo/internal/check"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/native"
	"regpromo/internal/obs"
	"regpromo/internal/opt/clean"
	"regpromo/internal/opt/constprop"
	"regpromo/internal/opt/copyprop"
	"regpromo/internal/opt/dce"
	"regpromo/internal/opt/dse"
	"regpromo/internal/opt/licm"
	"regpromo/internal/opt/pre"
	"regpromo/internal/opt/promote"
	"regpromo/internal/opt/valnum"
	"regpromo/internal/par"
	"regpromo/internal/regalloc"
)

// Analysis selects the interprocedural analysis (§4).
type Analysis int

const (
	// ModRef is interprocedural MOD/REF analysis alone.
	ModRef Analysis = iota
	// PointsTo runs the Ruf-style points-to analysis, refines the
	// memory operations, and repeats MOD/REF with the sharper sets.
	PointsTo
)

func (a Analysis) String() string {
	if a == PointsTo {
		return "pointer"
	}
	return "modref"
}

// CheckLevel selects how much of the internal/check lint registry
// Compile runs over its own output.
type CheckLevel int

const (
	// CheckOff runs no lint passes (the PassVerify structural check
	// still always runs).
	CheckOff CheckLevel = iota
	// CheckModule runs the full lint registry once, after the
	// pipeline finishes.
	CheckModule
	// CheckEveryPass runs the registry after the front end and again
	// after every pass, pinpointing the first pass that breaks an
	// invariant. Forces the serial pass walk: the pipelined middle
	// end never materializes whole-module pass boundaries.
	CheckEveryPass
)

func (l CheckLevel) String() string {
	switch l {
	case CheckModule:
		return "module"
	case CheckEveryPass:
		return "pass"
	}
	return "off"
}

// ParseCheckLevel maps the CLI spellings onto a CheckLevel.
func ParseCheckLevel(s string) (CheckLevel, error) {
	switch s {
	case "off", "":
		return CheckOff, nil
	case "module":
		return CheckModule, nil
	case "pass", "after-every-pass":
		return CheckEveryPass, nil
	}
	return CheckOff, fmt.Errorf("unknown check level %q (want off, module, or pass)", s)
}

// ParseCheck resolves the -check CLI flag: either a level — "off",
// "module", "pass" — or a comma list of individual lint-pass names
// from the check registry (e.g. "uninit,promoted" or "pressure"),
// which runs exactly those passes at the module boundary. Mirrors
// ParseEngines: the list is deduplicated in first-mention order and
// unknown names are rejected with the canonical diagnostic format
// (ir.Diag, check "check") so every CLI entry point prints the same
// line for the same typo.
func ParseCheck(spec string) (CheckLevel, []string, error) {
	switch spec {
	case "off", "":
		return CheckOff, nil, nil
	case "module":
		return CheckModule, nil, nil
	case "pass", "after-every-pass":
		return CheckEveryPass, nil, nil
	}
	var names []string
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if _, ok := check.Named(name); !ok {
			return CheckOff, nil, checkDiag(name)
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return CheckModule, names, nil
}

// checkDiag renders the canonical unknown-check-pass diagnostic.
func checkDiag(name string) error {
	return ir.DiagError([]ir.Diag{{
		Check: "check",
		Index: -1,
		Msg: `unknown check pass "` + name +
			`" (want off, module, pass, or a comma list of: ` + strings.Join(check.Names(), ", ") + `)`,
	}})
}

// CheckError reports lint violations found at a CheckLevel boundary,
// naming the stage after which the module first failed.
type CheckError struct {
	// Pass is the stage whose output is broken: a pass name,
	// PassFrontend, or "module" for the post-pipeline check.
	Pass string
	// Diags are all violations, in lint-registry order.
	Diags []ir.Diag
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("check failed after %s: %s", e.Pass, ir.DiagError(e.Diags))
}

// Config selects one compilation configuration.
type Config struct {
	Analysis Analysis

	// Promote enables scalar register promotion (§3.1).
	Promote bool
	// PointerPromote additionally enables §3.3 pointer-based
	// promotion (requires Promote).
	PointerPromote bool
	// SkipUnwrittenStores is the demotion-store refinement ablation
	// (see promote.Options).
	SkipUnwrittenStores bool

	// Throttle, when positive, bounds promotion per loop with the
	// Carr-style bin-packing discipline (§3.4); pass the machine's
	// register count. Zero reproduces the paper's unthrottled
	// promoter.
	Throttle int

	// DSE enables the tag-based dead-store-elimination extension
	// (§3.4's "stores" direction). Off in the paper's pipeline.
	DSE bool

	// DisableOpt skips the classical optimization passes, leaving
	// only analysis and (optionally) promotion. Used by tests.
	DisableOpt bool

	// NoAlloc skips register allocation (virtual registers remain).
	NoAlloc bool
	// K is the physical register count for allocation (default 32).
	K int

	// Workers bounds how many functions the per-function middle-end
	// passes process concurrently: 0 picks one worker per CPU, 1
	// compiles serially, larger values set the pool size directly.
	// The produced IL is identical at any setting.
	Workers int

	// Check selects how much of the internal/check lint registry to
	// run over the pipeline's own output; violations surface as a
	// *CheckError from Compile.
	Check CheckLevel

	// CheckPasses, when non-empty, restricts the lint registry runs to
	// the named passes (names from check.Names, validated by
	// ParseCheck). Empty runs the full core registry.
	CheckPasses []string

	// Certify re-proves every promotion certificate with the
	// independent region-soundness verifier (internal/analysis/certify)
	// at a pipeline barrier right after promotion. Refuted certificates
	// surface as a *CheckError naming PassCertify. No-op without
	// Promote.
	Certify bool

	// AnalysisCache, when non-nil, memoizes interprocedural analysis
	// across compilations: MOD/REF summaries per callgraph SCC and the
	// points-to narrowing per live-pointer projection. Share one store
	// across Frontends compiling successive versions of a module and a
	// one-function edit re-solves only the dirty components. Nil (the
	// default) analyzes from scratch every time.
	AnalysisCache *cache.Store
}

// AnalysisStats summarizes the incremental-analysis work a pipeline
// performed, summed over its analysis passes (MOD/REF runs once or —
// under PointsTo — twice, plus the points-to solve, which counts the
// whole module's components as cached when its projection hit).
type AnalysisStats struct {
	// SCCsSolved counts component fixpoints actually computed;
	// SCCsCached counts components replayed from Config.AnalysisCache.
	SCCsSolved, SCCsCached int
}

// Compilation is a compiled program plus pass statistics.
type Compilation struct {
	Module   *ir.Module
	Promote  promote.Stats
	Alloc    regalloc.Stats
	Analysis AnalysisStats

	// progs caches the module's flat-code lowering ([0] without
	// profiling markers, [1] with) so repeated executions of one
	// compilation — a benchmark matrix, a fuzz seed under several
	// engines — pay for lowering once. The cache is never invalidated:
	// a Compilation's module is not mutated after the pipeline
	// finishes. Not safe for concurrent Execute calls on one
	// Compilation; concurrent callers hold distinct Compilations.
	progs [2]*interp.Program

	// natives caches the module's built native artifacts ([0]
	// instrumented, [1] uninstrumented) the same way progs caches the
	// flat lowerings: the native build is content-addressed by
	// (generated source, toolchain), so within one Compilation the
	// artifact only depends on the instrumentation mode.
	natives [2]*native.Artifact

	// pressureByFunc holds the static register-pressure reports
	// measured right after promotion, keyed by function (only functions
	// with promotions appear). Read through Pressure.
	pressureByFunc map[string][]certify.Pressure
}

// Pressure returns the static register-pressure reports for every
// promotion site in the module, in function order (empty unless the
// configuration promoted something). Each report covers one landing
// pad; see certify.Pressure.
func (c *Compilation) Pressure() []certify.Pressure {
	if len(c.pressureByFunc) == 0 {
		return nil
	}
	var out []certify.Pressure
	for _, name := range c.Module.FuncOrder {
		out = append(out, c.pressureByFunc[name]...)
	}
	return out
}

// pass is one named stage of the pipeline. run is the whole-module
// form, used for interprocedural barriers and for serial execution;
// it returns the pass's extra statistics for the observer (may be
// nil). fn, when non-nil, is the per-function form of the same
// transformation: a maximal run of consecutive fn-capable passes
// forms a group that the parallel middle end executes function by
// function (each function walks the whole group before the next
// barrier). tags is the function's spill-slot allocator — the shared
// TagTable when running serially, a private ir.StagedTags when
// running concurrently. finish, when non-nil, rebuilds the pass's
// observer statistics from pipeState after a parallel group (used
// where the serial extras are not a plain per-function sum).
type pass struct {
	name   string
	run    func(s *pipeState) (map[string]int64, error)
	fn     func(s *pipeState, f *ir.Func, tags ir.TagAlloc) (map[string]int64, error)
	finish func(s *pipeState) map[string]int64
}

// pipeState is the mutable state threaded through the pass list. The
// mutex guards the Stats fields of c during parallel groups; both
// folds are commutative, so the accumulation order cannot show.
type pipeState struct {
	cfg  Config
	c    *Compilation
	cg   *callgraph.Graph
	pipe *obs.Pipeline // observer, for nested analysis spans; may be nil
	mu   sync.Mutex
}

// Canonical pass names, in the order the full pipeline runs them.
// PassValnumLate is the post-PRE value-numbering rerun.
const (
	PassModRef     = "modref"
	PassPointsTo   = "pointsto"
	PassRefine     = "refine"
	PassConstProp  = "constprop"
	PassValnum     = "valnum"
	PassLICM       = "licm"
	PassPromote    = "promote"
	PassCertify    = "certify"
	PassDSE        = "dse"
	PassPRE        = "pre"
	PassValnumLate = "valnum.post"
	PassCopyProp   = "copyprop"
	PassDCE        = "dce"
	PassClean      = "clean"
	PassRegalloc   = "regalloc"
	PassVerify     = "verify"
)

// passes expands the configuration into its pass list.
func (cfg Config) passes() []pass {
	var ps []pass
	ps = append(ps, pass{name: PassModRef, run: func(s *pipeState) (map[string]int64, error) {
		s.cg = callgraph.Build(s.c.Module)
		sp := s.pipe.StartSpan("modref.fixpoint", "analysis", 0)
		res := modref.Analyze(s.c.Module, s.cg, cfg.AnalysisCache)
		s.c.Analysis.SCCsSolved += res.SCCsSolved
		s.c.Analysis.SCCsCached += res.SCCsCached
		sp.Arg("funcs", int64(s.cg.NumFuncs())).
			Arg("sccs_solved", int64(res.SCCsSolved)).
			Arg("sccs_cached", int64(res.SCCsCached)).End()
		return map[string]int64{
			"funcs":       int64(s.cg.NumFuncs()),
			"tags":        int64(s.c.Module.Tags.Len()),
			"sccs_solved": int64(res.SCCsSolved),
			"sccs_cached": int64(res.SCCsCached),
		}, nil
	}})
	if cfg.Analysis == PointsTo {
		ps = append(ps, pass{name: PassPointsTo, run: func(s *pipeState) (map[string]int64, error) {
			m := s.c.Module
			sp := s.pipe.StartSpan("pointsto.fixpoint", "analysis", 0)
			res := pointsto.Solve(m, s.cg, cfg.AnalysisCache, pointsto.Options{})
			s.c.Analysis.SCCsSolved += res.SCCsSolved
			s.c.Analysis.SCCsCached += res.SCCsCached
			sp.Arg("steps", int64(res.Steps)).
				Arg("sccs_cached", int64(res.SCCsCached)).End()
			return map[string]int64{
				"steps":       int64(res.Steps),
				"tags":        int64(m.Tags.Len()),
				"sccs_solved": int64(res.SCCsSolved),
				"sccs_cached": int64(res.SCCsCached),
			}, nil
		}})
		ps = append(ps, pass{name: PassRefine, run: func(s *pipeState) (map[string]int64, error) {
			m := s.c.Module
			changed := modref.RefineMemOps(m)
			// Indirect-call targets may have been pinned; rebuild
			// the call graph so the repeated MOD/REF run sees the
			// refined edges (§4: "MOD/REF analysis is then
			// repeated").
			s.cg = callgraph.Build(m)
			return map[string]int64{"changed": int64(changed)}, nil
		}})
		ps = append(ps, pass{name: PassModRef, run: func(s *pipeState) (map[string]int64, error) {
			sp := s.pipe.StartSpan("modref.fixpoint", "analysis", 0)
			res := modref.Analyze(s.c.Module, s.cg, cfg.AnalysisCache)
			s.c.Analysis.SCCsSolved += res.SCCsSolved
			s.c.Analysis.SCCsCached += res.SCCsCached
			sp.Arg("funcs", int64(s.cg.NumFuncs())).
				Arg("sccs_solved", int64(res.SCCsSolved)).
				Arg("sccs_cached", int64(res.SCCsCached)).End()
			return map[string]int64{
				"funcs":       int64(s.cg.NumFuncs()),
				"tags":        int64(s.c.Module.Tags.Len()),
				"sccs_solved": int64(res.SCCsSolved),
				"sccs_cached": int64(res.SCCsCached),
			}, nil
		}})
	}
	// The classical passes report how many rewrites they performed;
	// surface that as the pass's "changed" statistic. Each carries
	// both forms: the module loop for serial runs and the
	// per-function body the parallel middle end distributes.
	simple := func(name string, run func(*ir.Module) int, fn func(*ir.Func) int) pass {
		return pass{
			name: name,
			run: func(s *pipeState) (map[string]int64, error) {
				return map[string]int64{"changed": int64(run(s.c.Module))}, nil
			},
			fn: func(_ *pipeState, f *ir.Func, _ ir.TagAlloc) (map[string]int64, error) {
				return map[string]int64{"changed": int64(fn(f))}, nil
			},
		}
	}
	if !cfg.DisableOpt {
		ps = append(ps,
			simple(PassConstProp, constprop.Run, constprop.Func),
			simple(PassValnum, valnum.Run, valnum.Func),
			simple(PassLICM, licm.Run, licm.Func),
		)
	}
	promoteExtras := func(st promote.Stats) map[string]int64 {
		return map[string]int64{
			"scalar_promotions":  int64(st.ScalarPromotions),
			"pointer_promotions": int64(st.PointerPromotions),
			"refs_rewritten":     int64(st.RefsRewritten),
			"loads_inserted":     int64(st.LoadsInserted),
			"stores_inserted":    int64(st.StoresInserted),
		}
	}
	promoteOpts := promote.Options{
		Pointer:             cfg.PointerPromote,
		SkipUnwrittenStores: cfg.SkipUnwrittenStores,
		PressureLimit:       cfg.Throttle,
	}
	if cfg.Promote {
		// Static register pressure is measured right after each
		// function is promoted: the regions' PromotedReg names are
		// still virtual and the promoted copies have not yet been
		// coalesced away, so the count reflects the promoter's own
		// demand (the quantity the paper's water anecdote is about).
		recordPressure := func(s *pipeState, f *ir.Func, regions []promote.Region) {
			reports := certify.MeasurePressure(f, regions, cfg.K)
			if len(reports) == 0 {
				return
			}
			s.mu.Lock()
			if s.c.pressureByFunc == nil {
				s.c.pressureByFunc = make(map[string][]certify.Pressure)
			}
			s.c.pressureByFunc[f.Name] = reports
			s.mu.Unlock()
		}
		ps = append(ps, pass{
			name: PassPromote,
			run: func(s *pipeState) (map[string]int64, error) {
				st := promote.Run(s.c.Module, promoteOpts)
				s.c.Promote = st
				for _, f := range s.c.Module.FuncsInOrder() {
					recordPressure(s, f, st.Regions)
				}
				return promoteExtras(st), nil
			},
			fn: func(s *pipeState, f *ir.Func, _ ir.TagAlloc) (map[string]int64, error) {
				st := promote.Func(s.c.Module, f, promoteOpts)
				s.mu.Lock()
				s.c.Promote.Add(st)
				s.mu.Unlock()
				recordPressure(s, f, st.Regions)
				return nil, nil
			},
			finish: func(s *pipeState) map[string]int64 { return promoteExtras(s.c.Promote) },
		})
		if cfg.Certify {
			// A run-only barrier: the verifier needs every function's
			// certificates and the whole module's call structure, so
			// the parallel middle end parks here between its groups.
			ps = append(ps, pass{name: PassCertify, run: func(s *pipeState) (map[string]int64, error) {
				sp := s.pipe.StartSpan("certify.verify", "analysis", 0)
				sum := certify.Verify(s.c.Module, s.c.Promote.Regions)
				sp.Arg("regions", int64(sum.Regions)).
					Arg("violations", int64(sum.Violations)).End()
				extras := map[string]int64{
					"regions":    int64(sum.Regions),
					"proved":     int64(sum.Proved),
					"unproven":   int64(sum.Unproven),
					"violations": int64(sum.Violations),
				}
				if len(sum.Diags) > 0 {
					return extras, &CheckError{Pass: PassCertify, Diags: sum.Diags}
				}
				return extras, nil
			}})
		}
	}
	if cfg.DSE {
		ps = append(ps, pass{
			name: PassDSE,
			run: func(s *pipeState) (map[string]int64, error) {
				return map[string]int64{"changed": int64(dse.Run(s.c.Module))}, nil
			},
			fn: func(s *pipeState, f *ir.Func, _ ir.TagAlloc) (map[string]int64, error) {
				return map[string]int64{"changed": int64(dse.Func(s.c.Module, f))}, nil
			},
		})
	}
	if !cfg.DisableOpt {
		ps = append(ps,
			simple(PassPRE, pre.Run, pre.Func),
			simple(PassValnumLate, valnum.Run, valnum.Func),
			simple(PassCopyProp, copyprop.Run, copyprop.Func),
			simple(PassDCE, dce.Run, dce.Func),
			simple(PassClean, clean.Run, clean.Func),
		)
	}
	allocExtras := func(st regalloc.Stats) map[string]int64 {
		return map[string]int64{
			"spilled":      int64(st.Spilled),
			"spill_loads":  int64(st.SpillLoads),
			"spill_stores": int64(st.SpillStores),
			"coalesced":    int64(st.Coalesced),
			"rounds":       int64(st.Rounds),
			"max_live":     int64(st.MaxLive),
		}
	}
	if !cfg.NoAlloc {
		ps = append(ps, pass{
			name: PassRegalloc,
			run: func(s *pipeState) (map[string]int64, error) {
				st, err := regalloc.Run(s.c.Module, regalloc.Options{K: s.cfg.K})
				if err != nil {
					return nil, err
				}
				s.c.Alloc = st
				return allocExtras(st), nil
			},
			fn: func(s *pipeState, f *ir.Func, tags ir.TagAlloc) (map[string]int64, error) {
				st, err := regalloc.Func(f, regalloc.Options{K: s.cfg.K}, tags)
				if err != nil {
					return nil, err
				}
				s.mu.Lock()
				s.c.Alloc.Add(st)
				s.mu.Unlock()
				return nil, nil
			},
			finish: func(s *pipeState) map[string]int64 { return allocExtras(s.c.Alloc) },
		})
	}
	ps = append(ps, pass{name: PassVerify, run: func(s *pipeState) (map[string]int64, error) {
		if err := ir.VerifyModule(s.c.Module); err != nil {
			return nil, fmt.Errorf("pipeline produced invalid IL: %w", err)
		}
		return nil, nil
	}})
	return ps
}

// Passes returns the configuration's pass names in execution order
// (the front end, which runs before the module exists, is reported by
// the observer as "frontend" ahead of these).
func (cfg Config) Passes() []string {
	ps := cfg.passes()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.name
	}
	return names
}

// PassFrontend is the observer's name for the parse+sema+irgen stage.
const PassFrontend = "frontend"

// PassStage classifies a pass name into one of the three coarse
// compile stages benchmark reports break wall time down by:
// "frontend" (parse+sema+irgen, including the "frontend.reuse" clone
// stage of a forked pipeline), "analysis" (the interprocedural
// barriers — MOD/REF and points-to), and "passes" (the per-function
// middle end, including the memory-op refinement rewrite and
// verification).
func PassStage(name string) string {
	switch {
	case strings.HasPrefix(name, PassFrontend):
		return "frontend"
	case name == PassModRef || name == PassPointsTo:
		return "analysis"
	}
	return "passes"
}

// CompileSource runs the full pipeline over one C source file.
func CompileSource(filename, src string, cfg Config) (*Compilation, error) {
	return Compile(filename, src, cfg, nil)
}

// Compile runs the full pipeline under an observer. pipe may be nil,
// in which case no telemetry is recorded (identical to CompileSource).
// Every pass — including the front end, reported as "frontend" — is
// timed and bracketed with static IR snapshots on the observer.
//
// To compile one source under several configurations, run the front
// end once with ParseSource and fork each pipeline with
// Frontend.Compile instead.
func Compile(filename, src string, cfg Config, pipe *obs.Pipeline) (*Compilation, error) {
	sp := pipe.StartSpan("compile", "compile", 0)
	defer sp.End()
	fe, err := ParseSourceObserved(filename, src, pipe)
	if err != nil {
		return nil, err
	}
	// Single-use compile: the pipeline owns the module outright, so no
	// clone is forked.
	c := &Compilation{Module: fe.module}
	return compilePasses(c, cfg, pipe)
}

// compilePasses runs cfg's pass list over c.Module under the observer.
//
// Passes with a per-function form are batched into maximal groups and
// distributed across functions by the parallel middle end; the
// interprocedural analyses and the verifier stay whole-module
// barriers between groups. Two situations force the classic serial
// pass-by-pass walk instead: Workers == 1 (the caller asked for it),
// and an observer that wants IL dumps — a per-pass module dump needs
// the whole module parked at that pass boundary, a state pipelined
// execution never materializes.
func compilePasses(c *Compilation, cfg Config, pipe *obs.Pipeline) (*Compilation, error) {
	s := &pipeState{cfg: cfg, c: c, pipe: pipe}
	if r := obs.Metrics(); r != nil {
		r.Counter("compile.compiles").Inc()
	}
	if pipe != nil {
		pipe.Tracer.NameThread(0, "main")
	}
	ps := cfg.passes()
	serial := cfg.Workers == 1 || cfg.Check == CheckEveryPass ||
		(pipe != nil && pipe.DumpPass != "")
	analysisDone := false
	if cfg.Check == CheckEveryPass {
		// Lint the front end's output before any pass touches it.
		if err := s.runChecks(PassFrontend, false); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(ps); {
		if !serial && ps[i].fn != nil {
			j := i
			for j < len(ps) && ps[j].fn != nil {
				j++
			}
			if err := runGroup(s, ps[i:j], pipe); err != nil {
				return nil, err
			}
			i = j
			continue
		}
		run := ps[i].run
		if err := pipe.Observe(ps[i].name, c.Module, func() (map[string]int64, error) {
			return run(s)
		}); err != nil {
			return nil, err
		}
		if ps[i].name == PassModRef {
			analysisDone = true
		}
		if cfg.Check == CheckEveryPass {
			if err := s.runChecks(ps[i].name, analysisDone); err != nil {
				return nil, err
			}
		}
		i++
	}
	if cfg.Check == CheckModule {
		if err := s.runChecks("module", true); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// runChecks runs the internal/check lint registry over the module's
// current state, reporting violations as a *CheckError that names the
// stage whose output is broken.
func (s *pipeState) runChecks(stage string, analysisDone bool) error {
	ctx := &check.Context{
		Module:       s.c.Module,
		AnalysisDone: analysisDone,
		Regions:      s.c.Promote.Regions,
		Pressure:     s.c.Pressure(),
	}
	var ds []ir.Diag
	if len(s.cfg.CheckPasses) > 0 {
		ds = check.Selected(ctx, s.cfg.CheckPasses)
	} else {
		ds = check.Module(ctx)
	}
	if len(ds) > 0 {
		return &CheckError{Pass: stage, Diags: ds}
	}
	return nil
}

// funcStage is one (function, pass) telemetry record from a parallel
// group.
type funcStage struct {
	before, after obs.Snapshot
	durNS         int64
	extra         map[string]int64
}

// runGroup executes a maximal run of per-function passes across the
// module's functions on the worker pool. Each function walks the
// whole group — function A can be in regalloc while function B is
// still in constprop — so the group's wall time is bounded by the
// slowest function, not by the slowest pass.
//
// Determinism: the passes in a group only read shared state (the tag
// table, call-graph summaries baked into instructions) and mutate
// their own function, so the produced IL is bit-identical to a serial
// run. The two exceptions are handled explicitly. Spill-slot tags
// would be allocated from the shared table in racy order; instead
// each function stages its tags privately (ir.StagedTags) and the
// stagings are committed in function order afterwards, reproducing
// the serial numbering. Observer events would interleave; instead
// each worker measures its own function around every stage and the
// per-function records are merged in function order — Measure
// decomposes over functions, so the merged Before/After equal the
// whole-module snapshots a serial run would have taken.
func runGroup(s *pipeState, group []pass, pipe *obs.Pipeline) error {
	m := s.c.Module
	fns := m.FuncsInOrder()
	recs := make([][]funcStage, len(fns))
	staged := make([]*ir.StagedTags, len(fns))
	var tr *obs.Tracer
	if pipe != nil {
		tr = pipe.Tracer
	}
	if r := obs.Metrics(); r != nil {
		r.Counter("compile.functions").Add(int64(len(fns)))
	}
	if _, err := par.ParallelMapWorker(len(fns), s.cfg.Workers, func(worker, i int) (struct{}, error) {
		fn := fns[i]
		st := &ir.StagedTags{}
		staged[i] = st
		rs := make([]funcStage, len(group))
		// Middle-end work items are attributed to logical thread
		// worker+1 (tid 0 is the coordinating goroutine).
		tid := worker + 1
		if tr != nil {
			tr.NameThread(tid, fmt.Sprintf("worker %d", worker))
		}
		fsp := tr.Start(fn.Name, "middleend", tid).Arg("worker", int64(worker))
		for j := range group {
			if pipe == nil {
				if _, err := group[j].fn(s, fn, st); err != nil {
					return struct{}{}, err
				}
				continue
			}
			psp := tr.Start(group[j].name, "pass", tid).Label("func", fn.Name)
			rs[j].before = obs.MeasureFunc(fn)
			start := time.Now()
			extra, err := group[j].fn(s, fn, st)
			rs[j].durNS = time.Since(start).Nanoseconds()
			psp.AddArgs(extra).End()
			if err != nil {
				return struct{}{}, err
			}
			rs[j].after = obs.MeasureFunc(fn)
			rs[j].extra = extra
		}
		fsp.End()
		recs[i] = rs
		return struct{}{}, nil
	}); err != nil {
		return err
	}

	// Commit staged spill tags in function order: the replay hands out
	// exactly the ids a serial compile would have, then the function's
	// provisional references are rewritten to them.
	for i, fn := range fns {
		if staged[i].Empty() {
			continue
		}
		commitStagedTags(fn, staged[i], &m.Tags)
	}

	if pipe != nil {
		for j := range group {
			ev := &obs.PassEvent{Name: group[j].name}
			var extra map[string]int64
			for i := range fns {
				r := &recs[i][j]
				ev.Before = ev.Before.Add(r.before)
				ev.After = ev.After.Add(r.after)
				ev.DurationNS += r.durNS
				for k, v := range r.extra {
					if extra == nil {
						extra = make(map[string]int64)
					}
					extra[k] += v
				}
			}
			if group[j].finish != nil {
				extra = group[j].finish(s)
			}
			ev.Extra = extra
			pipe.Append(ev)
		}
	}
	return nil
}

// commitStagedTags replays fn's staged tag creations into the shared
// table and rewrites the function's provisional tag ids (spill-slot
// references and frame-local entries) to the real ones.
func commitStagedTags(fn *ir.Func, staged *ir.StagedTags, tags *ir.TagTable) {
	remap := staged.Commit(tags)
	for i, t := range fn.Locals {
		if id, ok := remap[t]; ok {
			fn.Locals[i] = id
		}
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if id, ok := remap[b.Instrs[i].Tag]; ok {
				b.Instrs[i].Tag = id
			}
		}
	}
}

// Execute runs a compiled program under the engine named in opts.
// Flat-engine runs lower the module to flat code on first use and
// reuse the lowering afterwards; native runs additionally build (or
// reuse, via the content-addressed cache) a machine-code artifact.
func (c *Compilation) Execute(opts interp.Options) (*interp.Result, error) {
	switch opts.Engine {
	case interp.EngineSwitch:
		return interp.Run(c.Module, opts)
	case interp.EngineNative:
		a, err := c.nativeArtifact(opts)
		if err != nil {
			return nil, err
		}
		return a.Run(opts)
	}
	return c.flatProgram(opts.Profile).Run(opts)
}

// PrepareEngine performs the engine's one-time setup — flat-code
// lowering, native artifact build — without running the program, so
// callers that time executions (the benchmark harness) can keep build
// cost out of the measurement window. Preparing the switch engine is
// a no-op.
func (c *Compilation) PrepareEngine(opts interp.Options) error {
	switch opts.Engine {
	case interp.EngineSwitch:
		return nil
	case interp.EngineNative:
		_, err := c.nativeArtifact(opts)
		return err
	}
	c.flatProgram(opts.Profile)
	return nil
}

// flatProgram returns the cached flat lowering for the profiling
// mode, lowering on first use.
func (c *Compilation) flatProgram(profile bool) *interp.Program {
	idx := 0
	if profile {
		idx = 1
	}
	if c.progs[idx] == nil {
		c.progs[idx] = interp.Flatten(c.Module, profile)
	}
	return c.progs[idx]
}

// nativeArtifact returns the cached native build for the
// instrumentation mode opts selects, building on first use. The
// source is always generated from the unprofiled flat program — the
// native engine rejects profiling in Run, so the profiled lowering
// never feeds codegen.
func (c *Compilation) nativeArtifact(opts interp.Options) (*native.Artifact, error) {
	instrument := !opts.NoCounts
	idx := 0
	if !instrument {
		idx = 1
	}
	if c.natives[idx] == nil {
		a, err := native.Build(c.flatProgram(false), instrument, native.Options{})
		if err != nil {
			return nil, err
		}
		c.natives[idx] = a
	}
	return c.natives[idx], nil
}

// Configurations returns the paper's four measurement configurations
// in presentation order: without/with promotion under MOD/REF, then
// without/with promotion under points-to.
func Configurations() []Config {
	return []Config{
		{Analysis: ModRef, Promote: false},
		{Analysis: ModRef, Promote: true},
		{Analysis: PointsTo, Promote: false},
		{Analysis: PointsTo, Promote: true},
	}
}

// NamedConfig pairs a configuration with a stable display name, for
// matrices (differential testing, reports) that must label their
// columns.
type NamedConfig struct {
	Name   string
	Config Config
}

// DifferentialConfigurations enumerates the pipeline configurations
// the differential tester (internal/difftest) compares. The first
// entry is the reference: classical optimizations disabled and
// virtual registers kept, i.e. the straightest lowering of the source
// semantics. Every other configuration must produce the same
// observable behaviour; any disagreement is a miscompilation by
// construction. short trims the matrix to the reference plus the
// paper's three measured pipelines, for quick CI smoke runs.
func DifferentialConfigurations(short bool) []NamedConfig {
	ncs := []NamedConfig{
		{"ref-noopt", Config{Analysis: ModRef, DisableOpt: true, NoAlloc: true}},
		{"baseline", Config{Analysis: ModRef}},
		{"promote-modref", Config{Analysis: ModRef, Promote: true}},
		{"promote-pointer", Config{Analysis: PointsTo, Promote: true, PointerPromote: true}},
	}
	if short {
		return ncs
	}
	return append(ncs,
		// §3.3 promotion with the demotion-store ablation.
		NamedConfig{"promote-skipunwritten", Config{Analysis: PointsTo, Promote: true, PointerPromote: true, SkipUnwrittenStores: true}},
		// Promotion plus the tag-based dead-store-elimination
		// extension (off in the paper's pipeline, so it only ever
		// runs against the others here).
		NamedConfig{"promote-dse", Config{Analysis: PointsTo, Promote: true, PointerPromote: true, DSE: true}},
		// Throttled promotion under a scarce register supply forces
		// the allocator's spill paths into the comparison.
		NamedConfig{"promote-throttle-k8", Config{Analysis: ModRef, Promote: true, Throttle: 8, K: 8}},
	)
}
