// Package driver assembles the compilation pipeline the paper
// evaluates (§5): front end → interprocedural analysis (MOD/REF alone,
// or points-to followed by a MOD/REF re-run) → value numbering,
// constant propagation, loop-invariant code motion → register
// promotion → partial redundancy elimination, dead-code elimination,
// basic-block cleaning → graph-coloring register allocation. The four
// experimental configurations are the cross product of
// {MOD/REF, points-to} × {promotion off, promotion on}.
package driver

import (
	"fmt"

	"regpromo/internal/analysis/modref"
	"regpromo/internal/analysis/pointsto"
	"regpromo/internal/callgraph"
	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/opt/clean"
	"regpromo/internal/opt/constprop"
	"regpromo/internal/opt/copyprop"
	"regpromo/internal/opt/dce"
	"regpromo/internal/opt/dse"
	"regpromo/internal/opt/licm"
	"regpromo/internal/opt/pre"
	"regpromo/internal/opt/promote"
	"regpromo/internal/opt/valnum"
	"regpromo/internal/regalloc"
)

// Analysis selects the interprocedural analysis (§4).
type Analysis int

const (
	// ModRef is interprocedural MOD/REF analysis alone.
	ModRef Analysis = iota
	// PointsTo runs the Ruf-style points-to analysis, refines the
	// memory operations, and repeats MOD/REF with the sharper sets.
	PointsTo
)

func (a Analysis) String() string {
	if a == PointsTo {
		return "pointer"
	}
	return "modref"
}

// Config selects one compilation configuration.
type Config struct {
	Analysis Analysis

	// Promote enables scalar register promotion (§3.1).
	Promote bool
	// PointerPromote additionally enables §3.3 pointer-based
	// promotion (requires Promote).
	PointerPromote bool
	// SkipUnwrittenStores is the demotion-store refinement ablation
	// (see promote.Options).
	SkipUnwrittenStores bool

	// Throttle, when positive, bounds promotion per loop with the
	// Carr-style bin-packing discipline (§3.4); pass the machine's
	// register count. Zero reproduces the paper's unthrottled
	// promoter.
	Throttle int

	// DSE enables the tag-based dead-store-elimination extension
	// (§3.4's "stores" direction). Off in the paper's pipeline.
	DSE bool

	// DisableOpt skips the classical optimization passes, leaving
	// only analysis and (optionally) promotion. Used by tests.
	DisableOpt bool

	// NoAlloc skips register allocation (virtual registers remain).
	NoAlloc bool
	// K is the physical register count for allocation (default 32).
	K int
}

// Compilation is a compiled program plus pass statistics.
type Compilation struct {
	Module  *ir.Module
	Promote promote.Stats
	Alloc   regalloc.Stats
}

// CompileSource runs the full pipeline over one C source file.
func CompileSource(filename, src string, cfg Config) (*Compilation, error) {
	file, err := parser.Parse(filename, src)
	if err != nil {
		return nil, err
	}
	prog, err := sema.Check(file)
	if err != nil {
		return nil, err
	}
	m, err := irgen.Generate(prog)
	if err != nil {
		return nil, err
	}
	c := &Compilation{Module: m}

	// Interprocedural analysis.
	cg := callgraph.Build(m)
	modref.Run(m, cg)
	if cfg.Analysis == PointsTo {
		pointsto.Run(m, cg)
		modref.RefineMemOps(m)
		// Indirect-call targets may have been pinned; rebuild the
		// call graph so the repeated MOD/REF run sees the refined
		// edges (§4: "MOD/REF analysis is then repeated").
		cg = callgraph.Build(m)
		modref.Run(m, cg)
	}

	if !cfg.DisableOpt {
		constprop.Run(m)
		valnum.Run(m)
		licm.Run(m)
	}

	if cfg.Promote {
		c.Promote = promote.Run(m, promote.Options{
			Pointer:             cfg.PointerPromote,
			SkipUnwrittenStores: cfg.SkipUnwrittenStores,
			PressureLimit:       cfg.Throttle,
		})
	}

	if cfg.DSE {
		dse.Run(m)
	}

	if !cfg.DisableOpt {
		pre.Run(m)
		valnum.Run(m)
		copyprop.Run(m)
		dce.Run(m)
		clean.Run(m)
	}

	if !cfg.NoAlloc {
		st, err := regalloc.Run(m, regalloc.Options{K: cfg.K})
		if err != nil {
			return nil, err
		}
		c.Alloc = st
	}

	if err := ir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("pipeline produced invalid IL: %w", err)
	}
	return c, nil
}

// Execute runs a compiled program in the instrumented interpreter.
func (c *Compilation) Execute(opts interp.Options) (*interp.Result, error) {
	return interp.Run(c.Module, opts)
}

// Configurations returns the paper's four measurement configurations
// in presentation order: without/with promotion under MOD/REF, then
// without/with promotion under points-to.
func Configurations() []Config {
	return []Config{
		{Analysis: ModRef, Promote: false},
		{Analysis: ModRef, Promote: true},
		{Analysis: PointsTo, Promote: false},
		{Analysis: PointsTo, Promote: true},
	}
}
