package driver

import (
	"testing"

	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
)

const frontendSrc = `
int g;
int acc[4];
int bump(int x) { g = g + x; return g; }
int main(void) {
	int i;
	for (i = 0; i < 10; i++) acc[i % 4] += bump(i);
	print_int(acc[0] + acc[1] + acc[2] + acc[3]);
	return g;
}`

// TestFrontendSharingMatchesRecompilation forks every differential
// configuration from one shared frontend artifact and checks the
// results are identical — counts, output, exit — to compiling each
// configuration from source.
func TestFrontendSharingMatchesRecompilation(t *testing.T) {
	fe, err := ParseSource("shared.c", frontendSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, nc := range DifferentialConfigurations(false) {
		full, err := CompileSource("shared.c", frontendSrc, nc.Config)
		if err != nil {
			t.Fatalf("%s: recompile: %v", nc.Name, err)
		}
		shared, err := fe.Compile(nc.Config, nil)
		if err != nil {
			t.Fatalf("%s: shared compile: %v", nc.Name, err)
		}
		if got, want := ir.FormatModule(shared.Module), ir.FormatModule(full.Module); got != want {
			t.Fatalf("%s: shared pipeline produced different IL\n--- recompiled\n%s\n--- shared\n%s", nc.Name, want, got)
		}
		r1, err := full.Execute(interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := shared.Execute(interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Counts != r2.Counts || r1.Exit != r2.Exit || r1.Output != r2.Output {
			t.Fatalf("%s: shared execution diverged: %+v exit=%d vs %+v exit=%d",
				nc.Name, r1.Counts, r1.Exit, r2.Counts, r2.Exit)
		}
	}
	if fe.Clones() != int64(len(DifferentialConfigurations(false))) {
		t.Fatalf("clone count = %d, want %d", fe.Clones(), len(DifferentialConfigurations(false)))
	}
}

// TestFrontendReuseTelemetry checks the observer sees a
// "frontend.reuse" stage, carrying the reuse counters, in place of a
// repeated front-end run.
func TestFrontendReuseTelemetry(t *testing.T) {
	fe, err := ParseSource("shared.c", frontendSrc)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &obs.Pipeline{}
	if _, err := fe.Compile(Config{Analysis: ModRef, Promote: true}, pipe); err != nil {
		t.Fatal(err)
	}
	ev := pipe.Event(PassFrontendReuse)
	if ev == nil {
		t.Fatalf("no %s event; passes: %v", PassFrontendReuse, pipe.PassNames())
	}
	if ev.Extra["reused"] != 1 || ev.Extra["clones"] != 1 {
		t.Fatalf("reuse telemetry = %v, want reused=1 clones=1", ev.Extra)
	}
	if ev.After.Instrs == 0 {
		t.Fatal("reuse event's after-snapshot is empty; the cloned module was not measured")
	}
	if pipe.Event(PassFrontend) != nil {
		t.Fatal("shared compile must not re-run the frontend")
	}
}

// TestFrontendForksAreIndependent mutates one fork and checks a
// sibling fork compiled later is unaffected.
func TestFrontendForksAreIndependent(t *testing.T) {
	fe, err := ParseSource("shared.c", frontendSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The promote-pointer pipeline rewrites memory ops and grows the
	// register count; a pristine baseline fork afterwards must still
	// match a from-source baseline compile.
	if _, err := fe.Compile(Config{Analysis: PointsTo, Promote: true, PointerPromote: true}, nil); err != nil {
		t.Fatal(err)
	}
	shared, err := fe.Compile(Config{Analysis: ModRef}, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CompileSource("shared.c", frontendSrc, Config{Analysis: ModRef})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ir.FormatModule(shared.Module), ir.FormatModule(full.Module); got != want {
		t.Fatalf("baseline fork polluted by sibling pipeline:\n--- from source\n%s\n--- fork\n%s", want, got)
	}
}
