package driver_test

import (
	"fmt"
	"strings"
	"testing"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
)

// TestParallelMatchesSerial checks the parallel middle end's core
// contract: for every suite program under every differential
// configuration, the IL produced with Workers=0 (one worker per CPU)
// is byte-identical to the IL produced with Workers=1 (the classic
// serial pass-by-pass walk), and the merged observer telemetry agrees
// with the serial observer on everything except wall time.
func TestParallelMatchesSerial(t *testing.T) {
	for _, p := range bench.Suite() {
		fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		for _, nc := range driver.DifferentialConfigurations(false) {
			t.Run(p.Name+"/"+nc.Name, func(t *testing.T) {
				serialCfg, parallelCfg := nc.Config, nc.Config
				serialCfg.Workers = 1
				// An explicit worker count forces the multi-worker
				// pool even on single-CPU hosts, where the default
				// (0, one worker per CPU) would degenerate to the
				// serial loop and test nothing.
				parallelCfg.Workers = 4

				// Both observers carry live tracers: span collection
				// must never perturb the compile (in particular it
				// must not force the parallel middle end onto its
				// serial fallback).
				serialPipe := obs.Pipeline{Tracer: obs.NewTracer()}
				parallelPipe := obs.Pipeline{Tracer: obs.NewTracer()}
				sc, err := fe.Compile(serialCfg, &serialPipe)
				if err != nil {
					t.Fatalf("serial compile: %v", err)
				}
				pc, err := fe.Compile(parallelCfg, &parallelPipe)
				if err != nil {
					t.Fatalf("parallel compile: %v", err)
				}

				sIL, pIL := ir.FormatModule(sc.Module), ir.FormatModule(pc.Module)
				if sIL != pIL {
					t.Fatalf("IL differs between serial and parallel compiles:\n--- serial ---\n%s\n--- parallel ---\n%s", sIL, pIL)
				}
				if sc.Promote.Counters() != pc.Promote.Counters() {
					t.Errorf("promote stats differ: serial %+v, parallel %+v", sc.Promote, pc.Promote)
				}
				if sc.Alloc != pc.Alloc {
					t.Errorf("alloc stats differ: serial %+v, parallel %+v", sc.Alloc, pc.Alloc)
				}

				if len(serialPipe.Events) != len(parallelPipe.Events) {
					t.Fatalf("event counts differ: serial %v, parallel %v",
						serialPipe.PassNames(), parallelPipe.PassNames())
				}
				for i, se := range serialPipe.Events {
					pe := parallelPipe.Events[i]
					if se.Name != pe.Name || se.Index != pe.Index {
						t.Errorf("event %d: serial %s/%d, parallel %s/%d", i, se.Name, se.Index, pe.Name, pe.Index)
					}
					if se.Before != pe.Before {
						t.Errorf("%s: before snapshots differ: serial %+v, parallel %+v", se.Name, se.Before, pe.Before)
					}
					if se.After != pe.After {
						t.Errorf("%s: after snapshots differ: serial %+v, parallel %+v", se.Name, se.After, pe.After)
					}
					// The front-end events count cumulative clone
					// reuse on the shared Frontend, which moves
					// between the two compiles by construction;
					// only the middle-end extras must agree.
					if strings.HasPrefix(se.Name, driver.PassFrontend) {
						continue
					}
					if fmt.Sprint(se.Extra) != fmt.Sprint(pe.Extra) {
						t.Errorf("%s: extras differ: serial %v, parallel %v", se.Name, se.Extra, pe.Extra)
					}
				}
				if len(serialPipe.Tracer.Spans()) == 0 || len(parallelPipe.Tracer.Spans()) == 0 {
					t.Error("a tracer recorded no spans")
				}
			})
		}
	}
}

// TestDumpPassFallsBackToSerial checks that an observer requesting IL
// dumps still gets one dump per pass with the parallel middle end
// enabled (the driver falls back to the serial walk, which is the
// only execution that materializes the module at each pass boundary).
func TestDumpPassFallsBackToSerial(t *testing.T) {
	p := bench.Suite()[0]
	fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
	if err != nil {
		t.Fatal(err)
	}
	pipe := obs.Pipeline{DumpPass: obs.DumpAll}
	cfg := driver.Config{Analysis: driver.PointsTo, Promote: true, Workers: 0}
	if _, err := fe.Compile(cfg, &pipe); err != nil {
		t.Fatal(err)
	}
	if len(pipe.Events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, ev := range pipe.Events {
		if ev.IRDump == "" {
			t.Errorf("pass %s: missing IL dump", ev.Name)
		}
	}
}
