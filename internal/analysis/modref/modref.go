// Package modref implements the paper's interprocedural MOD/REF
// analysis (§4). It limits the tag sets of pointer-based memory
// operations to the address-taken tags visible in each function, then
// computes, for every function, the set of tags it (or any function it
// can call) may modify and may reference, processing call-graph SCCs
// in reverse topological order. The summaries are installed on every
// call instruction's Mods/Refs lists.
//
// The visibility rule for locals follows the paper exactly: the tag of
// a local variable appears only in the tag sets of memory operations
// in descendants of the function that creates it — a local of f can
// only be live while f is on the call stack, so only functions f can
// reach could possibly touch it through a pointer.
//
// MOD/REF is bottom-up compositional — a component's summary is a
// function of its members' bodies, their visible sets, and its callee
// components' summaries — so Analyze memoizes it per SCC in a
// content-addressed cache: each component's key chains those three
// inputs, a hit installs the cached summary without touching the
// component's bodies, and the per-component direct-effect scan runs
// only on misses. After a one-function edit, only the components
// callgraph.DirtySCCs describes miss; everything else replays.
package modref

import (
	"time"

	"regpromo/internal/analysis/cache"
	"regpromo/internal/callgraph"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/par"
)

// Result holds the per-function analysis summaries. The tables are
// dense slices indexed by the call graph's interned function ids; the
// name-keyed accessors exist for tests and diagnostics.
type Result struct {
	cg *callgraph.Graph

	// mod and ref are the interprocedural summary sets: everything
	// the function or its callees may write / read.
	mod []ir.TagSet
	ref []ir.TagSet

	// visible is the set of tags a pointer-based memory operation
	// appearing in the function may touch: every address-taken
	// global, every heap site tag, and the address-taken locals of
	// the function's call-graph ancestors (itself included).
	visible []ir.TagSet

	// SCCsSolved and SCCsCached count callgraph components whose
	// summary fixpoint this run computed versus replayed from the
	// analysis cache (always solved/0 without a cache).
	SCCsSolved, SCCsCached int
}

// Mod returns the MOD summary of the named (defined) function.
func (r *Result) Mod(fn string) ir.TagSet { return r.mod[r.cg.ID(fn)] }

// Ref returns the REF summary of the named (defined) function.
func (r *Result) Ref(fn string) ir.TagSet { return r.ref[r.cg.ID(fn)] }

// Visible returns the visible-tag set of the named (defined) function.
func (r *Result) Visible(fn string) ir.TagSet { return r.visible[r.cg.ID(fn)] }

// Run performs the analysis on mod, rewriting the tag sets of
// pointer-based operations and the Mods/Refs of calls in place. It is
// idempotent and monotone: a second run (e.g. after points-to
// analysis has shrunk pointer tag sets) only tightens information.
func Run(m *ir.Module, cg *callgraph.Graph) *Result {
	return Analyze(m, cg, nil)
}

// Analyze is Run with SCC-grained memoization: when store is non-nil,
// each callgraph component's summary is keyed by its member bodies
// (post visibility-limiting), member visible sets, and the value
// hashes of its callee components' summaries, and an unchanged key
// installs the cached summary without re-walking the component. The
// visibility pre-passes and the final call-site installation always
// run — they rewrite the module in place and are linear.
func Analyze(m *ir.Module, cg *callgraph.Graph, store *cache.Store) *Result {
	n := cg.NumFuncs()
	r := &Result{
		cg:      cg,
		mod:     make([]ir.TagSet, n),
		ref:     make([]ir.TagSet, n),
		visible: make([]ir.TagSet, n),
	}

	r.computeVisible(m, cg)
	limitPointerOps(m, r)
	demoteRecursiveLocals(m, cg)

	// The salt folds the tag table in its analysis-time state, so it
	// is computed after demoteRecursiveLocals flips Strong bits.
	var salt cache.Key
	var bodyHash []cache.Key
	funcs := m.FuncsInOrder()
	if store != nil {
		salt = cache.ModuleSalt(m)
		// Per-function body hashes are independent; hashing is the bulk
		// of a fully-warm run's cost, so fan it out.
		bodyHash, _ = par.ParallelMap(n, 0, func(i int) (cache.Key, error) {
			return cache.FuncBodyHash(funcs[i]), nil
		})
	}

	// directEffects scans one function's intraprocedural effects,
	// excluding calls. It runs per cache miss only.
	directEffects := func(fn *ir.Func, dm, dr *ir.TagSet) {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpSStore:
					dm.Add(in.Tag)
				case ir.OpPStore:
					in.Tags.UnionInto(dm)
				case ir.OpSLoad, ir.OpCLoad:
					dr.Add(in.Tag)
				case ir.OpPLoad:
					in.Tags.UnionInto(dr)
				}
			}
		}
	}

	// SCC summaries, callees first. Within an SCC all functions get
	// the identical set (§4). compValue chains each component's
	// summary hash into its callers' keys, so a single hit certifies
	// the entire callee subtree unchanged.
	compValue := make([]cache.Key, len(cg.SCCs))
	metrics := obs.Metrics()
	for ci, comp := range cg.SCCMemberIDs {
		var key cache.Key
		if store != nil {
			h := cache.NewHasher().Key(salt)
			for _, id := range comp {
				h.Key(bodyHash[id]).TagSet(r.visible[id])
			}
			for _, j := range cg.SCCSuccs(ci) {
				h.Key(compValue[j])
			}
			key = h.Sum()
			if e, ok := store.ModRef(key); ok {
				for _, id := range comp {
					r.mod[id] = e.Mod
					r.ref[id] = e.Ref
				}
				compValue[ci] = e.Value
				r.SCCsCached++
				if metrics != nil {
					metrics.Counter("analysis.scc.hit").Inc()
				}
				continue
			}
			if metrics != nil {
				metrics.Counter("analysis.scc.miss").Inc()
			}
		}

		start := time.Now()
		var cm, cr ir.TagSet
		for _, id := range comp {
			fn := funcs[id]
			directEffects(fn, &cm, &cr)
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op != ir.OpJsr {
						continue
					}
					r.addCalleeEffects(m, cg, fn.Name, in, ci, &cm, &cr)
				}
			}
		}
		for _, id := range comp {
			r.mod[id] = cm
			r.ref[id] = cr
		}
		r.SCCsSolved++
		value := cache.SummaryValue(cm, cr)
		compValue[ci] = value
		store.PutModRef(key, cm, cr, value)
		if metrics != nil {
			metrics.Histogram("analysis.scc.solve_ns", obs.DurationBucketsNS).Observe(time.Since(start).Nanoseconds())
		}
	}

	// Install summaries on call sites.
	for _, fn := range m.FuncsInOrder() {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpJsr {
					continue
				}
				mods, refs := r.callSiteEffects(m, cg, fn.Name, in)
				in.Mods = mods
				in.Refs = refs
			}
		}
	}
	return r
}

// computeVisible builds the visible sets per the paper's two rules:
// only address-taken tags enter pointer tag sets, and a local is
// visible only in descendants of its creator.
func (r *Result) computeVisible(m *ir.Module, cg *callgraph.Graph) {
	// Base: address-taken globals and all heap site tags.
	var base ir.TagSet
	ownLocals := make([]ir.TagSet, cg.NumFuncs())
	for _, tag := range m.Tags.All() {
		if !tag.AddrTaken {
			continue
		}
		switch tag.Kind {
		case ir.TagGlobal, ir.TagHeap:
			base.Add(tag.ID)
		case ir.TagLocal:
			ownLocals[cg.ID(tag.Func)].Add(tag.ID)
		}
	}

	// anc[s] = address-taken locals of every function in SCC s or in
	// any SCC that can call into s. Tarjan's order is callees-first,
	// so walking components from the end (callers) toward the start
	// (callees) sees every caller before its callees.
	anc := make([]ir.TagSet, len(cg.SCCs))
	own := make([]ir.TagSet, len(cg.SCCs))
	for i, comp := range cg.SCCs {
		for _, name := range comp {
			ownLocals[cg.ID(name)].UnionInto(&own[i])
		}
	}
	for i := len(cg.SCCs) - 1; i >= 0; i-- {
		own[i].UnionInto(&anc[i])
		for _, name := range cg.SCCs[i] {
			for _, callee := range cg.Callees[name] {
				j := cg.SCCOf(callee)
				if j != i {
					anc[i].UnionInto(&anc[j])
				}
			}
		}
	}
	for _, fn := range m.FuncsInOrder() {
		r.visible[cg.ID(fn.Name)] = base.Union(anc[cg.SCCOf(fn.Name)])
	}
}

// limitPointerOps replaces ⊤ pointer tag sets with the function's
// visible set and intersects already-refined sets with it.
func limitPointerOps(m *ir.Module, r *Result) {
	for _, fn := range m.FuncsInOrder() {
		vis := r.visible[r.cg.ID(fn.Name)]
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpPLoad && in.Op != ir.OpPStore {
					continue
				}
				if in.Tags.IsTop() {
					in.Tags = vis
				} else {
					in.Tags = in.Tags.Intersect(vis)
				}
			}
		}
	}
}

// demoteRecursiveLocals clears the Strong bit on address-taken locals
// of functions that can recurse: one tag then stands for many
// activations, so strong updates are impossible (§4).
func demoteRecursiveLocals(m *ir.Module, cg *callgraph.Graph) {
	for _, tag := range m.Tags.All() {
		if tag.Kind == ir.TagLocal && tag.Strong && cg.InCycle(tag.Func) {
			tag.Strong = false
		}
	}
}

// addCalleeEffects accumulates the contribution of one call
// instruction into its caller's in-progress SCC summary. Members of
// the same SCC (component index compIdx) contribute nothing here
// (their direct effects are already in the union being built).
func (r *Result) addCalleeEffects(m *ir.Module, cg *callgraph.Graph, caller string, in *ir.Instr, compIdx int, cm, cr *ir.TagSet) {
	add := func(name string) {
		if id := cg.ID(name); id != callgraph.FuncInvalid && cg.SCCOfID(id) == compIdx {
			return
		}
		if em, er, ok := r.resolved(m, cg, caller, name); ok {
			em.UnionInto(cm)
			er.UnionInto(cr)
		} else {
			ir.TopSet().UnionInto(cm)
			ir.TopSet().UnionInto(cr)
		}
	}
	if in.Callee != "" {
		add(in.Callee)
		return
	}
	for _, t := range indirectTargets(m, in) {
		add(t)
	}
}

// indirectTargets returns the possible callees of an indirect call:
// the points-to-refined set when available, else every addressed
// function.
func indirectTargets(m *ir.Module, in *ir.Instr) []string {
	if in.Targets != nil {
		return in.Targets
	}
	return m.AddressedFuncs
}

// callSiteEffects computes the final Mods/Refs for a call site once
// all summaries exist.
func (r *Result) callSiteEffects(m *ir.Module, cg *callgraph.Graph, caller string, in *ir.Instr) (ir.TagSet, ir.TagSet) {
	if in.Callee != "" {
		mods, refs, ok := r.resolved(m, cg, caller, in.Callee)
		if !ok {
			return ir.TopSet(), ir.TopSet()
		}
		return mods, refs
	}
	var mods, refs ir.TagSet
	for _, t := range indirectTargets(m, in) {
		em, er, ok := r.resolved(m, cg, caller, t)
		if !ok {
			return ir.TopSet(), ir.TopSet()
		}
		mods = mods.Union(em)
		refs = refs.Union(er)
	}
	return mods, refs
}

// IntrinsicSignature describes the call interface of a runtime
// intrinsic: its argument count and whether it produces a value.
// ok is false for names that are not intrinsics. The table mirrors
// sema.Builtins and the interpreter's dispatch; internal/check lints
// call sites against it.
func IntrinsicSignature(name string) (arity int, returns bool, ok bool) {
	switch name {
	case "print_int", "print_char", "print_double", "print_str", "free":
		return 1, false, true
	case "malloc":
		return 1, true, true
	}
	return 0, false, false
}

// resolved returns the effect sets of a named callee: a computed
// summary for defined functions, the built-in model for intrinsics,
// and ok=false for unknown externals.
func (r *Result) resolved(m *ir.Module, cg *callgraph.Graph, caller, name string) (ir.TagSet, ir.TagSet, bool) {
	if id := cg.ID(name); id != callgraph.FuncInvalid {
		return r.mod[id], r.ref[id], true
	}
	switch name {
	case "print_int", "print_char", "print_double", "malloc", "free":
		// Pure I/O or allocation: touches no program-visible tags.
		return ir.TagSet{}, ir.TagSet{}, true
	case "print_str":
		// Reads through its pointer argument: may reference anything
		// a pointer in the caller may reach.
		return ir.TagSet{}, r.visible[cg.ID(caller)], true
	}
	return ir.TagSet{}, ir.TagSet{}, false
}
