package modref

import "regpromo/internal/ir"

// RefineMemOps rewrites pointer-based memory operations whose tag set
// has been narrowed to a single strong scalar location into explicit
// scalar operations. This is how sharper analysis feeds register
// promotion: a pLoad that provably touches only tag T becomes an
// sLoad of T, making T's references explicit (paper §5: "pointer
// analysis can discover that the stores through p2 cannot modify T1,
// and thus T1 can be promoted").
//
// The rewrite requires the tag to be strong (one run-time location per
// activation) and the access width to match the tag's scalar size;
// otherwise the operation keeps its pointer form. It returns the
// number of operations rewritten.
func RefineMemOps(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpPLoad:
					if tag, ok := refinable(m, fn, in); ok {
						*in = ir.Instr{Op: ir.OpSLoad, Dst: in.Dst, Tag: tag, Size: in.Size}
						n++
					}
				case ir.OpPStore:
					if tag, ok := refinable(m, fn, in); ok {
						*in = ir.Instr{Op: ir.OpSStore, A: in.B, Tag: tag, Size: in.Size}
						n++
					}
				}
			}
		}
	}
	return n
}

func refinable(m *ir.Module, fn *ir.Func, in *ir.Instr) (ir.TagID, bool) {
	tag, ok := in.Tags.Singleton()
	if !ok {
		return ir.TagInvalid, false
	}
	t := m.Tags.Get(tag)
	if !t.Strong || t.Elem != in.Size || t.Size != in.Size {
		return ir.TagInvalid, false
	}
	// Scalar operations resolve locals in the executing function's
	// own frame; a pointer to another function's (live ancestor's)
	// local must stay in pointer form.
	if t.Kind == ir.TagLocal && t.Func != fn.Name {
		return ir.TagInvalid, false
	}
	return tag, true
}
