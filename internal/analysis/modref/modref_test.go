package modref

import (
	"testing"

	"regpromo/internal/callgraph"
	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	file, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	m, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return m
}

func analyze(t *testing.T, src string) (*ir.Module, *Result) {
	t.Helper()
	m := compile(t, src)
	cg := callgraph.Build(m)
	return m, Run(m, cg)
}

func tagByName(t *testing.T, m *ir.Module, name string) *ir.Tag {
	t.Helper()
	for _, tag := range m.Tags.All() {
		if tag.Name == name {
			return tag
		}
	}
	t.Fatalf("no tag named %s", name)
	return nil
}

func TestCallSummaryTracksGlobalWrites(t *testing.T) {
	m, r := analyze(t, `
int g;
int h;
void writer(void) { g = 1; }
int reader(void) { return h; }
void caller(void) { writer(); }
`)
	gTag := tagByName(t, m, "g").ID
	hTag := tagByName(t, m, "h").ID
	if !r.Mod("writer").Has(gTag) {
		t.Fatal("writer must mod g")
	}
	if r.Mod("writer").Has(hTag) {
		t.Fatal("writer must not mod h")
	}
	if !r.Mod("caller").Has(gTag) {
		t.Fatal("caller must inherit writer's mods")
	}
	if !r.Ref("reader").Has(hTag) {
		t.Fatal("reader must ref h")
	}
	// The call instruction in caller carries writer's summary.
	caller := m.Funcs["caller"]
	for _, b := range caller.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpJsr {
				if !in.Mods.Has(gTag) {
					t.Fatal("jsr must carry mod g")
				}
				if in.Mods.Has(hTag) {
					t.Fatal("jsr must not carry mod h")
				}
			}
		}
	}
}

func TestPointerOpsLimitedToAddressTaken(t *testing.T) {
	m, _ := analyze(t, `
int exposed;
int hidden;
int probe(int *p) { return *p; }
int main(void) { return probe(&exposed) + hidden; }
`)
	exposedTag := tagByName(t, m, "exposed").ID
	hiddenTag := tagByName(t, m, "hidden").ID
	probe := m.Funcs["probe"]
	for _, b := range probe.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpPLoad {
				if in.Tags.IsTop() {
					t.Fatal("tag set should have been limited")
				}
				if !in.Tags.Has(exposedTag) {
					t.Fatal("must include the addressed global")
				}
				if in.Tags.Has(hiddenTag) {
					t.Fatal("must exclude the unaddressed global")
				}
			}
		}
	}
}

func TestLocalVisibleOnlyInDescendants(t *testing.T) {
	m, _ := analyze(t, `
int sink(int *p) { return *p; }
int unrelated(int *p) { return *p; }
int owner(void) {
	int x;
	x = 5;
	return sink(&x);
}
int main(void) { int y; y = 1; return owner() + unrelated(&y); }
`)
	var xTag ir.TagID = ir.TagInvalid
	for _, tag := range m.Tags.All() {
		if tag.Kind == ir.TagLocal && tag.Func == "owner" {
			xTag = tag.ID
		}
	}
	if xTag == ir.TagInvalid {
		t.Fatal("no local tag for owner.x")
	}
	// sink is a descendant of owner: x visible there.
	seen := false
	for _, b := range m.Funcs["sink"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPLoad {
				seen = true
				if !b.Instrs[i].Tags.Has(xTag) {
					t.Fatal("x must be visible in sink")
				}
			}
		}
	}
	if !seen {
		t.Fatal("no pLoad in sink")
	}
	// unrelated is not called from owner: x invisible there.
	for _, b := range m.Funcs["unrelated"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPLoad && b.Instrs[i].Tags.Has(xTag) {
				t.Fatal("x must not be visible in unrelated")
			}
		}
	}
}

func TestRecursiveLocalsDemotedToWeak(t *testing.T) {
	m, _ := analyze(t, `
int use(int *p) { return *p; }
int fib(int n) {
	int memo;
	memo = n;
	if (n < 2) return use(&memo);
	return fib(n-1) + fib(n-2);
}
`)
	for _, tag := range m.Tags.All() {
		if tag.Kind == ir.TagLocal && tag.Func == "fib" {
			if tag.Strong {
				t.Fatalf("recursive local %s must be weak", tag.Name)
			}
		}
	}
}

func TestIndirectCallsUseAddressedFunctions(t *testing.T) {
	m, r := analyze(t, `
int a;
int b;
void seta(void) { a = 1; }
void setb(void) { b = 1; }
void run(void (*f)(void)) { f(); }
int main(void) { run(seta); return a + b; }
`)
	aTag := tagByName(t, m, "a").ID
	bTag := tagByName(t, m, "b").ID
	// seta is addressed; setb is not... but setb's address is never
	// taken, so only seta is a possible target.
	if !r.Mod("run").Has(aTag) {
		t.Fatal("run may call seta, must mod a")
	}
	if r.Mod("run").Has(bTag) {
		t.Fatal("setb is not addressed; run must not mod b")
	}
}

func TestIntrinsicsHavePreciseEffects(t *testing.T) {
	m, _ := analyze(t, `
int g;
void f(void) {
	g = 1;
	print_int(g);
}
`)
	gTag := tagByName(t, m, "g").ID
	for _, b := range m.Funcs["f"].Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpJsr && in.Callee == "print_int" {
				if in.Mods.Has(gTag) || in.Refs.Has(gTag) {
					t.Fatal("print_int must not touch g")
				}
				if in.Mods.IsTop() || in.Refs.IsTop() {
					t.Fatal("print_int must have precise effects")
				}
			}
		}
	}
}

func TestMutualRecursionSharesSummary(t *testing.T) {
	m, r := analyze(t, `
int x;
int y;
int even(int n);
int odd(int n) { y = n; if (n == 0) return 0; return even(n-1); }
int even(int n) { x = n; if (n == 0) return 1; return odd(n-1); }
`)
	xTag := tagByName(t, m, "x").ID
	yTag := tagByName(t, m, "y").ID
	_ = m
	if !r.Mod("odd").Equal(r.Mod("even")) {
		t.Fatal("SCC members must share summaries")
	}
	if !r.Mod("odd").Has(xTag) || !r.Mod("odd").Has(yTag) {
		t.Fatal("summary must include both globals")
	}
}

func TestRefineMemOpsSingletonStrong(t *testing.T) {
	// probe dereferences a pointer that can only be &exposed, so after
	// MOD/REF limiting (exposed is the only addressed tag) the pLoad
	// has a singleton strong tag set and must become an sLoad.
	m, _ := analyze(t, `
int exposed;
int probe(int *p) { return *p; }
int main(void) { return probe(&exposed); }
`)
	n := RefineMemOps(m)
	if n == 0 {
		t.Fatal("expected at least one refinement")
	}
	for _, b := range m.Funcs["probe"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPLoad {
				t.Fatal("pLoad should have been refined to sLoad")
			}
		}
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestRefineSkipsWeakAndMismatched(t *testing.T) {
	// The only addressed tag is an array (weak): no refinement.
	m, _ := analyze(t, `
int arr[8];
int probe(int *p) { return *p; }
int main(void) { return probe(&arr[3]); }
`)
	if n := RefineMemOps(m); n != 0 {
		t.Fatalf("array tag must not refine, got %d rewrites", n)
	}
}
