package modref

import (
	"testing"

	"regpromo/internal/analysis/cache"
	"regpromo/internal/callgraph"
	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
	"regpromo/internal/testgen"
)

func buildModule(t *testing.T, src string) (*ir.Module, *callgraph.Graph) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := irgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return m, callgraph.Build(m)
}

// TestIncrementalMatchesScratch is the dirty-set property on a real
// generated module: analyze a base program into a fresh store, analyze
// a one-function-edited variant warm against it, and the warm result
// must equal a from-scratch analysis of the edited module on every
// function — while re-solving no more components than
// callgraph.DirtySCCs(edited) licenses.
func TestIncrementalMatchesScratch(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		const funcs = 40
		edit := int(seed) * 7 % funcs
		base := testgen.Scale(testgen.ScaleOptions{Seed: seed, Funcs: funcs, Edit: -1})
		edited := testgen.Scale(testgen.ScaleOptions{Seed: seed, Funcs: funcs, Edit: edit})

		store := cache.NewStore()
		m0, cg0 := buildModule(t, base)
		Analyze(m0, cg0, store)

		mWarm, cgWarm := buildModule(t, edited)
		warm := Analyze(mWarm, cgWarm, store)
		mCold, cgCold := buildModule(t, edited)
		scratch := Analyze(mCold, cgCold, nil)

		for _, name := range mCold.FuncOrder {
			if !warm.Mod(name).Equal(scratch.Mod(name)) || !warm.Ref(name).Equal(scratch.Ref(name)) {
				t.Fatalf("seed %d: warm summary of %s differs from scratch", seed, name)
			}
			if !warm.Visible(name).Equal(scratch.Visible(name)) {
				t.Fatalf("seed %d: warm visible set of %s differs from scratch", seed, name)
			}
		}

		dirty := cgWarm.DirtySCCs([]string{testgen.ScaleFuncName(edit)})
		if warm.SCCsSolved == 0 {
			t.Fatalf("seed %d: the edited component must re-solve", seed)
		}
		if warm.SCCsSolved > len(dirty) {
			t.Fatalf("seed %d: warm run solved %d components, but only %d are dirty",
				seed, warm.SCCsSolved, len(dirty))
		}
		if warm.SCCsCached == 0 || warm.SCCsSolved+warm.SCCsCached != len(cgWarm.SCCs) {
			t.Fatalf("seed %d: solved %d + cached %d must cover all %d components with reuse",
				seed, warm.SCCsSolved, warm.SCCsCached, len(cgWarm.SCCs))
		}
	}
}

// TestIncrementalCallEdgeChange: adding or removing a call edge is a
// structural edit; the warm result must still match scratch exactly in
// both directions.
func TestIncrementalCallEdgeChange(t *testing.T) {
	withCall := `
int g;
int h;
void touch(void) { g = g + 1; }
void spine(void) { h = h + 1; touch(); }
int main(void) { spine(); print_int(g + h); return 0; }
`
	withoutCall := `
int g;
int h;
void touch(void) { g = g + 1; }
void spine(void) { h = h + 1; }
int main(void) { spine(); print_int(g + h); return 0; }
`
	for _, dir := range []struct{ name, cold, warm string }{
		{"remove", withCall, withoutCall},
		{"add", withoutCall, withCall},
	} {
		store := cache.NewStore()
		m0, cg0 := buildModule(t, dir.cold)
		Analyze(m0, cg0, store)

		mWarm, cgWarm := buildModule(t, dir.warm)
		warm := Analyze(mWarm, cgWarm, store)
		mCold, cgCold := buildModule(t, dir.warm)
		scratch := Analyze(mCold, cgCold, nil)

		for _, name := range mCold.FuncOrder {
			if !warm.Mod(name).Equal(scratch.Mod(name)) || !warm.Ref(name).Equal(scratch.Ref(name)) {
				t.Fatalf("%s: warm summary of %s differs from scratch", dir.name, name)
			}
		}
		// spine's summary changes, so spine and its caller must re-solve;
		// touch is a clean leaf either way.
		if warm.SCCsSolved < 2 {
			t.Fatalf("%s: expected spine and main to re-solve, solved %d", dir.name, warm.SCCsSolved)
		}
	}
}
