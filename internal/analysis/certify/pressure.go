package certify

import (
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/opt/promote"
	"regpromo/internal/regalloc"
)

// Pressure is the static register-pressure report for one promotion
// site (all regions sharing a landing pad — typically one loop).
// MaxLive counts how many promoted values are simultaneously live at
// some block boundary inside the site's body; MaxLiveAll counts all
// live virtual registers at the worst such boundary, promoted or not.
// A site is over budget when the worst boundary demands more values
// than the K physical registers can hold — the allocator must then
// spill, and since the promoted values are precisely the ones live
// across the whole loop, they are prime spill candidates: promotion
// degenerates into the paper's water scenario (§5).
type Pressure struct {
	Func       string `json:"func"`
	Pad        string `json:"pad"`
	Values     int    `json:"values"`
	MaxLive    int    `json:"max_live"`
	MaxLiveAll int    `json:"max_live_all"`
	Limit      int    `json:"limit"`
	OverBudget bool   `json:"over_budget"`
}

// MeasurePressure reports the promoted-value pressure of each
// promotion site in fn. It must run after promotion but before
// register allocation: the regions' PromotedReg names are virtual
// registers, which allocation renames. k is the physical register
// budget (regalloc.DefaultK when 0).
func MeasurePressure(fn *ir.Func, regions []promote.Region, k int) []Pressure {
	if k <= 0 {
		k = regalloc.DefaultK
	}
	var mine []int
	for i := range regions {
		if regions[i].Func == fn.Name {
			mine = append(mine, i)
		}
	}
	if len(mine) == 0 {
		return nil
	}
	current := make(map[*ir.Block]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		current[b] = true
	}
	// All promoted values of the function, not just one site's: an
	// inner loop's boundary also carries every enclosing loop's
	// promoted values, and sites in disjoint loops simply aren't live
	// into each other, so counting the full set is exact.
	promoted := make(map[ir.Reg]bool, len(mine))
	for _, i := range mine {
		promoted[regions[i].PromotedReg] = true
	}
	lv := regalloc.ComputeLiveness(fn)

	// Group regions by landing pad, preserving first-seen (promotion)
	// order.
	type site struct {
		pad    *ir.Block
		values int
		body   []*ir.Block
	}
	var sites []*site
	byPad := make(map[*ir.Block]*site)
	for _, i := range mine {
		r := &regions[i]
		s := byPad[r.Pad]
		if s == nil {
			s = &site{pad: r.Pad, body: currentBlocks(current, r.Body)}
			byPad[r.Pad] = s
			sites = append(sites, s)
		}
		s.values++
	}

	countPromoted := func(b ir.BlockID, out bool) int {
		n := 0
		for r := range promoted {
			if out && lv.LiveOutHas(b, r) || !out && lv.LiveInHas(b, r) {
				n++
			}
		}
		return n
	}

	reports := make([]Pressure, 0, len(sites))
	for _, s := range sites {
		p := Pressure{Func: fn.Name, Values: s.values, Limit: k}
		if s.pad != nil {
			p.Pad = s.pad.Label
		}
		for _, b := range s.body {
			for _, out := range []bool{false, true} {
				live := countPromoted(b.ID, out)
				all := lv.LiveInCount(b.ID)
				if out {
					all = lv.LiveOutCount(b.ID)
				}
				if live > p.MaxLive {
					p.MaxLive = live
				}
				if all > p.MaxLiveAll {
					p.MaxLiveAll = all
				}
			}
		}
		// Over budget when the site's worst boundary exceeds the
		// machine (the allocator must spill somewhere in the loop) AND
		// the promoted values themselves occupy more than half the
		// budget — then they are both the cause of the overflow and,
		// being live across the whole region, the prime spill
		// candidates: promotion degenerates into store/reload traffic.
		// A hot loop that merely runs rich in temporaries (MaxLiveAll
		// high, few promoted values) spills those temporaries locally
		// and keeps the promotion win, so it does not flag.
		p.OverBudget = p.MaxLiveAll > k && 2*p.MaxLive > k
		reports = append(reports, p)
	}
	if r := obs.Metrics(); r != nil {
		r.Counter("certify.pressure.sites").Add(int64(len(reports)))
		for i := range reports {
			if reports[i].OverBudget {
				r.Counter("certify.pressure.over_budget").Inc()
			}
			r.Gauge("certify.pressure.max_live").SetMax(int64(reports[i].MaxLive))
		}
	}
	return reports
}
