package certify

import (
	"fmt"

	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/opt/promote"
)

// Verdict classifies one certificate's re-proof.
type Verdict int

const (
	// Proved: every obligation was independently re-established.
	Proved Verdict = iota
	// Unproven: no obligation was refuted, but at least one could not
	// be re-established by the oracle's coarser reasoning (e.g. a
	// call whose independent upper bound may overlap the region, or a
	// certificate whose blocks later passes merged away). Not an
	// error — the certificate may well be justified by the sharper
	// interprocedural analyses.
	Unproven
	// Violation: an obligation is provably false — the promotion (or
	// the summary it relied on) is unsound.
	Violation
)

func (v Verdict) String() string {
	switch v {
	case Proved:
		return "proved"
	case Unproven:
		return "unproven"
	default:
		return "violation"
	}
}

// RegionResult is one certificate's verification outcome.
type RegionResult struct {
	Region  *promote.Region
	Verdict Verdict
	// Diags carry the violations, in canonical [certify] form.
	Diags []ir.Diag
	// Notes name the obligations that could not be re-proved.
	Notes []string
}

// Summary aggregates a module's certificate verification.
type Summary struct {
	Regions, Proved, Unproven, Violations int
	// Diags are all violations, position-sorted.
	Diags []ir.Diag
}

// Verify re-proves every promotion certificate in regions against the
// module's current IL and reports the verdict counts plus all
// violation diagnostics. The proof never consults analysis/pointsto
// or analysis/modref: the obligations are discharged with CFG
// dataflow (availability of the landing pad, anticipated reads past
// dropped demotions) and the package's own syntactic alias oracle.
func Verify(m *ir.Module, regions []promote.Region) Summary {
	var sum Summary
	for _, rr := range VerifyRegions(m, regions) {
		sum.Regions++
		switch rr.Verdict {
		case Proved:
			sum.Proved++
		case Unproven:
			sum.Unproven++
		default:
			sum.Violations++
		}
		sum.Diags = append(sum.Diags, rr.Diags...)
	}
	ir.SortDiags(sum.Diags)
	if r := obs.Metrics(); r != nil {
		r.Counter("certify.regions").Add(int64(sum.Regions))
		r.Counter("certify.proved").Add(int64(sum.Proved))
		r.Counter("certify.unproven").Add(int64(sum.Unproven))
		r.Counter("certify.violations").Add(int64(sum.Violations))
	}
	return sum
}

// VerifyRegions verifies each certificate individually, in function
// order (region order within a function is the promoter's recording
// order, which is deterministic per function).
func VerifyRegions(m *ir.Module, regions []promote.Region) []RegionResult {
	if len(regions) == 0 {
		return nil
	}
	byFunc := make(map[string][]int)
	for i := range regions {
		byFunc[regions[i].Func] = append(byFunc[regions[i].Func], i)
	}
	oracle := NewOracle(m)
	var out []RegionResult
	for _, fn := range m.FuncsInOrder() {
		idx := byFunc[fn.Name]
		if len(idx) == 0 {
			continue
		}
		v := &verifier{m: m, fn: fn, oracle: oracle, tracer: newTracer(fn)}
		v.current = make(map[*ir.Block]bool, len(fn.Blocks))
		for _, b := range fn.Blocks {
			v.current[b] = true
		}
		for _, i := range idx {
			out = append(out, v.region(&regions[i]))
		}
	}
	return out
}

// verifier holds the per-function state shared across that function's
// certificates.
type verifier struct {
	m       *ir.Module
	fn      *ir.Func
	oracle  *Oracle
	tracer  *tracer
	current map[*ir.Block]bool

	// throughPad caches the R1 availability solution per landing pad
	// (many certificates share one loop's pad).
	throughPad map[*ir.Block][]bool
}

// region discharges the certificate's obligations:
//
//	R1 availability   — every path from entry to a region block passes
//	                    the landing pad, so the promoted register is
//	                    initialized before any rewritten use.
//	R2 non-interference — no surviving access in the region body can
//	                    touch the promoted location (oracle bounds).
//	R3 summary consistency — each recorded call-summary claim contains
//	                    everything the oracle proves the callee does
//	                    to the promoted location.
//	R4 anticipated demotion — when the loop wrote the location, no
//	                    exit can reach a definite memory read of it
//	                    without an intervening store.
func (v *verifier) region(r *promote.Region) RegionResult {
	rr := RegionResult{Region: r}
	rset := r.Tags
	what := "pointer group " + rset.Format(&v.m.Tags)
	scalar := r.Tag != ir.TagInvalid
	if scalar {
		rset = ir.NewTagSet(r.Tag)
		what = fmt.Sprintf("tag %q", v.m.Tags.Get(r.Tag).Name)
	}

	// Surviving body blocks, deterministically ordered. Certificates
	// whose blocks later passes merged or deleted lose obligations,
	// not soundness: a vanished block holds no instructions to
	// misbehave, and R1/R4 note the staleness instead of guessing.
	body := currentBlocks(v.current, r.Body)
	if n := len(r.Body) - len(body); n > 0 {
		rr.Notes = append(rr.Notes, fmt.Sprintf("%d region block(s) no longer in the function", n))
	}

	v.checkAvailability(r, body, what, &rr)
	v.checkBody(r, body, rset, what, scalar, &rr)
	v.checkSummaries(r, rset, what, &rr)
	v.checkDemotion(r, what, scalar, &rr)

	switch {
	case len(rr.Diags) > 0:
		rr.Verdict = Violation
	case len(rr.Notes) > 0:
		rr.Verdict = Unproven
	}
	return rr
}

// checkAvailability is R1: a forward must-dataflow proving every path
// from the function entry to each surviving region block goes through
// the landing pad. The check is structural on the CFG, not on the pad
// instructions — value numbering may legally have folded the lifted
// load itself into an earlier equivalent.
func (v *verifier) checkAvailability(r *promote.Region, body []*ir.Block, what string, rr *RegionResult) {
	if r.Pad == nil || !v.current[r.Pad] {
		rr.Notes = append(rr.Notes, "landing pad no longer in the function")
		return
	}
	through, ok := v.throughPad[r.Pad]
	if !ok {
		through = solveThrough(v.fn, r.Pad)
		if v.throughPad == nil {
			v.throughPad = make(map[*ir.Block][]bool)
		}
		v.throughPad[r.Pad] = through
	}
	for _, b := range body {
		if int(b.ID) < len(through) && !through[b.ID] {
			rr.Diags = append(rr.Diags, ir.Diag{
				Check: "certify", Func: r.Func, Block: b.Label, Index: -1,
				Msg: fmt.Sprintf("region block for promoted %s is reachable without passing landing pad %q", what, r.Pad.Label),
			})
		}
	}
}

// solveThrough computes, for every block, whether all paths from the
// entry to it pass through pad: a forward must-problem initialized
// optimistically to true (greatest fixpoint; unreachable predecessors
// stay vacuously true, which is exact — they contribute no paths).
func solveThrough(fn *ir.Func, pad *ir.Block) []bool {
	through := make([]bool, len(fn.Blocks))
	for i := range through {
		through[i] = true
	}
	dataflow.SolveBlocks(fn, dataflow.Forward, func(b *ir.Block) bool {
		v := true
		switch {
		case b == pad:
		case b == fn.Entry:
			v = false
		default:
			for _, p := range b.Preds {
				if int(p.ID) < len(through) && !through[p.ID] {
					v = false
					break
				}
			}
		}
		if v != through[b.ID] {
			through[b.ID] = v
			return true
		}
		return false
	})
	return through
}

// checkBody is R2: no non-synthesized instruction surviving in the
// region body may touch the promoted location. A definite touch
// (oracle lower bound) is a violation; a possible touch (upper bound
// only) is merely unprovable — the sharper analyses may legitimately
// have excluded it. Reads matter only for regions that wrote the
// location: with memory unmodified, a stray read still sees the
// current value.
func (v *verifier) checkBody(r *promote.Region, body []*ir.Block, rset ir.TagSet, what string, scalar bool, rr *RegionResult) {
	unproven := 0
	for _, b := range body {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Synth {
				// Boundary spill code of nested regions; the promoted
				// lint polices its placement.
				continue
			}
			fx := v.oracle.instrEffects(v.tracer, in)
			switch {
			case fx.lowerMod.Intersects(rset):
				rr.Diags = append(rr.Diags, ir.Diag{
					Check: "certify", Func: r.Func, Block: b.Label, Index: i, Op: in.Op,
					Msg: fmt.Sprintf("instruction provably writes promoted %s inside its region", what),
				})
			case r.Stored && fx.lowerRef.Intersects(rset):
				rr.Diags = append(rr.Diags, ir.Diag{
					Check: "certify", Func: r.Func, Block: b.Label, Index: i, Op: in.Op,
					Msg: fmt.Sprintf("instruction provably reads promoted %s from memory inside its region (register holds a newer value)", what),
				})
			case fx.upperMod.Intersects(rset) || (r.Stored && fx.upperRef.Intersects(rset)):
				unproven++
			}
		}
	}
	if unproven > 0 {
		rr.Notes = append(rr.Notes, fmt.Sprintf("%d instruction(s) whose independent effect bound may overlap %s", unproven, what))
	}
}

// checkSummaries is R3: every call-summary fact the promotion relied
// on must contain what the oracle proves the callee does to the
// promoted location. The comparison is deliberately restricted to the
// region's own tags — summaries may legitimately be narrower than the
// oracle elsewhere (that is the whole point of the sharper analyses).
func (v *verifier) checkSummaries(r *promote.Region, rset ir.TagSet, what string, rr *RegionResult) {
	for i := range r.Calls {
		f := &r.Calls[i]
		if f.Callee == "" {
			continue // indirect: the oracle proves no single callee
		}
		lowerMod, lowerRef, _, _, ok := v.oracle.Effects(f.Callee)
		if !ok {
			continue
		}
		if missing := lowerMod.Intersect(rset).Minus(f.Mods); !missing.IsEmpty() {
			rr.Diags = append(rr.Diags, ir.Diag{
				Check: "certify", Func: r.Func, Block: f.Block, Index: f.Index, Op: ir.OpJsr,
				Msg: fmt.Sprintf("MOD summary of call to %q omits promoted %s, which the callee provably modifies", f.Callee, what),
			})
		}
		if missing := lowerRef.Intersect(rset).Minus(f.Refs); !missing.IsEmpty() {
			rr.Diags = append(rr.Diags, ir.Diag{
				Check: "certify", Func: r.Func, Block: f.Block, Index: f.Index, Op: ir.OpJsr,
				Msg: fmt.Sprintf("REF summary of call to %q omits promoted %s, which the callee provably references", f.Callee, what),
			})
		}
	}
}

// checkDemotion is R4: for a scalar region that wrote the promoted
// tag, no exit may reach a definite memory read of the tag without an
// intervening store — otherwise the demotion store was lost and the
// read observes the stale pre-loop value. The proof is a backward
// exists-path dataflow: anticipated[b] holds when some path from b's
// entry reaches a definite read of the tag with no possible write
// before it (a possible write conservatively ends the path — the
// stale value may be overwritten, so nothing is provable beyond it).
func (v *verifier) checkDemotion(r *promote.Region, what string, scalar bool, rr *RegionResult) {
	if !scalar || !r.Stored {
		return
	}
	anticipated := v.solveAnticipated(r.Tag)
	stale := 0
	for _, x := range r.Exits {
		if x == nil || !v.current[x] {
			stale++
			continue
		}
		if int(x.ID) < len(anticipated) && anticipated[x.ID] {
			rr.Diags = append(rr.Diags, ir.Diag{
				Check: "certify", Func: r.Func, Block: x.Label, Index: -1,
				Msg: fmt.Sprintf("demotion store for promoted %s is missing at region exit, and memory is definitely read downstream", what),
			})
		}
	}
	if stale > 0 {
		rr.Notes = append(rr.Notes, fmt.Sprintf("%d region exit(s) no longer in the function", stale))
	}
}

// solveAnticipated computes the R4 predicate for one tag over the
// whole function. Synthesized instructions count here — a sibling
// region's lifted load really does read memory at run time.
func (v *verifier) solveAnticipated(tag ir.TagID) []bool {
	fn := v.fn
	anticipated := make([]bool, len(fn.Blocks))
	target := ir.NewTagSet(tag)
	dataflow.SolveBlocks(fn, dataflow.Backward, func(b *ir.Block) bool {
		val, decided := false, false
	scan:
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// A possible write ends the path before a read does: if
			// one instruction could do both (a call), the internal
			// order is unknowable, so nothing is provable.
			if in.Op == ir.OpSStore && in.Tag == tag {
				decided = true
				break scan
			}
			fx := v.oracle.instrEffects(v.tracer, in)
			if fx.upperMod.Intersects(target) {
				decided = true
				break scan
			}
			if (in.Op == ir.OpSLoad || in.Op == ir.OpCLoad) && in.Tag == tag {
				val, decided = true, true
				break scan
			}
		}
		if !decided {
			for _, s := range b.Succs {
				if int(s.ID) < len(anticipated) && anticipated[s.ID] {
					val = true
					break
				}
			}
		}
		if val != anticipated[b.ID] {
			anticipated[b.ID] = val
			return true
		}
		return false
	})
	return anticipated
}

// currentBlocks filters a recorded block list down to blocks still in
// the function, ID-ordered.
func currentBlocks(current map[*ir.Block]bool, recorded []*ir.Block) []*ir.Block {
	out := make([]*ir.Block, 0, len(recorded))
	for _, b := range recorded {
		if current[b] {
			out = append(out, b)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
