package certify

import (
	"regpromo/internal/ir"
)

// effects is one function's independently derived MOD/REF bounds.
// The lower sets contain only locations the function *provably* may
// touch (witnessed by a syntactic access); the upper sets contain
// every location it could possibly touch. A sound interprocedural
// summary S therefore satisfies lower ⊆ S ⊆ (anything ⊇ upper is
// also fine — S may be wider than upper only through ⊤), which is
// exactly what the certificate obligations test against.
type effects struct {
	lowerMod, lowerRef ir.TagSet
	upperMod, upperRef ir.TagSet
}

// Oracle is the verifier's deliberately independent alias analysis:
// purely syntactic base/tag-class reasoning over the IL, sharing no
// code or results with analysis/pointsto or analysis/modref. A bug in
// those analyses therefore cannot vouch for itself — the oracle
// re-derives what it can from the instructions alone and the verifier
// compares the promotion's claims against these bounds.
type Oracle struct {
	m *ir.Module

	// universe is the set every untraceable pointer access may reach:
	// address-taken tags plus heap site tags (§4: only address-taken
	// tags appear in pointer-op tag sets).
	universe ir.TagSet

	fx map[string]*effects

	// indirectMod/indirectRef are the upper effects of an indirect
	// call: the union over every addressed function.
	indirectMod, indirectRef ir.TagSet
}

// NewOracle derives the per-function effect bounds for m. Synthesized
// spill code (Instr.Synth) is excluded throughout: the summaries the
// promoter recorded predate promotion, and every synthesized boundary
// write either mirrors a non-synthetic store the walk already counted
// or writes back an unmodified value — so skipping it keeps the lower
// bounds comparable to the claims without losing any real effect.
func NewOracle(m *ir.Module) *Oracle {
	o := &Oracle{m: m, fx: make(map[string]*effects, len(m.Funcs))}
	for _, t := range m.Tags.All() {
		if t.AddrTaken || t.Kind == ir.TagHeap {
			o.universe.Add(t.ID)
		}
	}

	type edge struct{ caller, callee string }
	var edges []edge
	for _, fn := range m.FuncsInOrder() {
		fx := &effects{}
		o.fx[fn.Name] = fx
		tr := newTracer(fn)
		for _, b := range fn.ReachableBlocks() {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Synth {
					continue
				}
				switch in.Op {
				case ir.OpSStore:
					fx.lowerMod.Add(in.Tag)
					fx.upperMod.Add(in.Tag)
				case ir.OpSLoad, ir.OpCLoad:
					fx.lowerRef.Add(in.Tag)
					fx.upperRef.Add(in.Tag)
				case ir.OpPLoad:
					set, definite, known := tr.trace(in.A, 0)
					o.fold(&fx.lowerRef, &fx.upperRef, set, definite, known)
				case ir.OpPStore:
					set, definite, known := tr.trace(in.A, 0)
					o.fold(&fx.lowerMod, &fx.upperMod, set, definite, known)
				case ir.OpJsr:
					edges = append(edges, edge{fn.Name, in.Callee})
				}
			}
		}
	}

	// Close the bounds over the call structure. Direct calls to
	// defined functions propagate both bounds; indirect calls may
	// reach any addressed function (upper only — no single callee is
	// provable); out-of-module callees use the runtime's own
	// intrinsic behaviour, not the analyses' model of it.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			caller := o.fx[e.caller]
			if e.callee == "" {
				for _, name := range o.m.AddressedFuncs {
					if g := o.fx[name]; g != nil {
						changed = g.upperMod.UnionInto(&caller.upperMod) || changed
						changed = g.upperRef.UnionInto(&caller.upperRef) || changed
					}
				}
				continue
			}
			if g := o.fx[e.callee]; g != nil {
				changed = g.lowerMod.UnionInto(&caller.lowerMod) || changed
				changed = g.lowerRef.UnionInto(&caller.lowerRef) || changed
				changed = g.upperMod.UnionInto(&caller.upperMod) || changed
				changed = g.upperRef.UnionInto(&caller.upperRef) || changed
				continue
			}
			em, er := o.intrinsicUpper(e.callee)
			changed = em.UnionInto(&caller.upperMod) || changed
			changed = er.UnionInto(&caller.upperRef) || changed
		}
	}
	for _, name := range m.AddressedFuncs {
		if g := o.fx[name]; g != nil {
			g.upperMod.UnionInto(&o.indirectMod)
			g.upperRef.UnionInto(&o.indirectRef)
		}
	}
	return o
}

// fold merges one pointer access's resolution into the bounds:
// a definitely resolved base contributes to both, an approximately
// resolved one (several possible AddrOf defs) to the upper bound
// only, and an untraceable one widens the upper bound to the
// address-taken universe.
func (o *Oracle) fold(lower, upper *ir.TagSet, set ir.TagSet, definite, known bool) {
	switch {
	case definite:
		set.UnionInto(lower)
		set.UnionInto(upper)
	case known:
		set.UnionInto(upper)
	default:
		o.universe.UnionInto(upper)
	}
}

// intrinsicUpper models out-of-module callees from the interpreter's
// own dispatch (internal/interp), the ground truth — not from the
// MOD/REF intrinsic table the verifier must stay independent of. The
// print/alloc intrinsics touch no program-visible tags; print_str
// reads through its pointer argument; anything else is unknown.
func (o *Oracle) intrinsicUpper(name string) (mods, refs ir.TagSet) {
	switch name {
	case "print_int", "print_char", "print_double", "malloc", "free":
		return ir.TagSet{}, ir.TagSet{}
	case "print_str":
		return ir.TagSet{}, o.universe
	}
	return ir.TopSet(), ir.TopSet()
}

// Effects returns the oracle's bounds for the named function; ok is
// false for functions not defined in the module.
func (o *Oracle) Effects(name string) (lowerMod, lowerRef, upperMod, upperRef ir.TagSet, ok bool) {
	fx := o.fx[name]
	if fx == nil {
		return ir.TagSet{}, ir.TagSet{}, ir.TagSet{}, ir.TagSet{}, false
	}
	return fx.lowerMod, fx.lowerRef, fx.upperMod, fx.upperRef, true
}

// instrFX bounds one instruction's own effects.
type instrFX struct {
	lowerMod, lowerRef ir.TagSet
	upperMod, upperRef ir.TagSet
}

// instrEffects derives the effect bounds of a single instruction in
// the function tr was built for, independent of the instruction's own
// claimed Tags/Mods/Refs fields wherever a claim is involved: pointer
// ops are resolved by base tracing, calls by the callee's derived
// summary.
func (o *Oracle) instrEffects(tr *tracer, in *ir.Instr) instrFX {
	var fx instrFX
	switch in.Op {
	case ir.OpSStore:
		fx.lowerMod = ir.NewTagSet(in.Tag)
		fx.upperMod = fx.lowerMod
	case ir.OpSLoad, ir.OpCLoad:
		fx.lowerRef = ir.NewTagSet(in.Tag)
		fx.upperRef = fx.lowerRef
	case ir.OpPLoad:
		set, definite, known := tr.trace(in.A, 0)
		o.fold(&fx.lowerRef, &fx.upperRef, set, definite, known)
	case ir.OpPStore:
		set, definite, known := tr.trace(in.A, 0)
		o.fold(&fx.lowerMod, &fx.upperMod, set, definite, known)
	case ir.OpJsr:
		switch {
		case in.Callee == "":
			fx.upperMod = o.indirectMod
			fx.upperRef = o.indirectRef
		default:
			if g := o.fx[in.Callee]; g != nil {
				fx.lowerMod, fx.lowerRef = g.lowerMod, g.lowerRef
				fx.upperMod, fx.upperRef = g.upperMod, g.upperRef
			} else {
				fx.upperMod, fx.upperRef = o.intrinsicUpper(in.Callee)
			}
		}
	}
	return fx
}

// tracer resolves pointer bases syntactically within one function by
// walking unique-definition chains of copies, address materializations
// and in-object pointer arithmetic.
type tracer struct {
	defs [][]*ir.Instr
}

func newTracer(fn *ir.Func) *tracer {
	t := &tracer{defs: make([][]*ir.Instr, fn.NumRegs)}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.RegInvalid && int(d) < len(t.defs) {
				t.defs[d] = append(t.defs[d], in)
			}
		}
	}
	return t
}

// maxTraceDepth bounds def-chain walks (defensive; copy chains are
// acyclic in verified IL, but the tracer must terminate regardless).
const maxTraceDepth = 64

// trace resolves the object(s) register r can point at. definite
// reports the chain resolved to exactly the returned tags on every
// path (safe as a lower bound: an access through r provably touches a
// returned tag — IL from UB-free sources never crosses object bounds
// via pointer arithmetic); known without definite means the returned
// set covers every possibility (upper bound only); neither means the
// base is untraceable.
func (t *tracer) trace(r ir.Reg, depth int) (set ir.TagSet, definite, known bool) {
	if depth > maxTraceDepth || r < 0 || int(r) >= len(t.defs) {
		return ir.TagSet{}, false, false
	}
	ds := t.defs[r]
	switch len(ds) {
	case 0:
		// Parameter or undefined: nothing syntactic to say.
		return ir.TagSet{}, false, false
	case 1:
		in := ds[0]
		switch in.Op {
		case ir.OpCopy:
			return t.trace(in.A, depth+1)
		case ir.OpAddrOf:
			if in.Callee != "" || in.Tag == ir.TagInvalid {
				return ir.TagSet{}, false, false
			}
			return ir.NewTagSet(in.Tag), true, true
		case ir.OpAdd, ir.OpSub:
			// In-object pointer arithmetic: when exactly one operand
			// resolves to an object, the result stays inside it (tags
			// name whole objects, and UB-free sources never index out
			// of bounds). Both-resolve is ambiguous — give up.
			sa, da, ka := t.trace(in.A, depth+1)
			sb, db, kb := t.trace(in.B, depth+1)
			switch {
			case ka && !kb:
				return sa, da, true
			case kb && !ka:
				return sb, db, true
			}
			return ir.TagSet{}, false, false
		}
		return ir.TagSet{}, false, false
	default:
		// Several defs: resolvable only when every one is a direct
		// address materialization — then the union is a sound upper
		// bound, but no single tag is provable.
		var u ir.TagSet
		for _, in := range ds {
			if in.Op != ir.OpAddrOf || in.Callee != "" || in.Tag == ir.TagInvalid {
				return ir.TagSet{}, false, false
			}
			u.Add(in.Tag)
		}
		return u, false, true
	}
}
