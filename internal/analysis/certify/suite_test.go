// Suite-wide certification: the whole benchmark suite, compiled under
// every differential configuration with the certify barrier armed,
// must pass — the independent verifier finds no violation in any real
// promotion. The pressure companion pins the paper's §5 finding: at
// K=32 exactly water's promotion site is statically over budget.
package certify_test

import (
	"errors"
	"testing"

	"regpromo/internal/analysis/certify"
	"regpromo/internal/bench"
	"regpromo/internal/driver"
)

// TestSuiteMatrixCertifiesClean compiles every suite program under
// every differential configuration with Config.Certify set. A
// certificate violation surfaces as a *driver.CheckError from Compile,
// so a clean pass here is the "no false positives at scale" half of
// the seeded-defect story.
func TestSuiteMatrixCertifiesClean(t *testing.T) {
	for _, p := range bench.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, nc := range driver.DifferentialConfigurations(testing.Short()) {
				cfg := nc.Config
				cfg.Certify = true
				if _, err := fe.Compile(cfg, nil); err != nil {
					var ce *driver.CheckError
					if errors.As(err, &ce) {
						t.Errorf("%s: certify barrier refused the compile: %v", nc.Name, ce.Diags)
					} else {
						t.Errorf("%s: compile: %v", nc.Name, err)
					}
				}
			}
		})
	}
}

// TestPressureFlagsWaterOnly reproduces the paper's §5 register-
// pressure observation statically: at the default budget of K=32, the
// promoted inter-molecular loop of water is the one promotion site in
// the suite whose worst boundary both exceeds the machine and is
// dominated by promoted values, while every other program's sites fit.
func TestPressureFlagsWaterOnly(t *testing.T) {
	for _, p := range bench.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			c, err := fe.Compile(driver.Config{Analysis: driver.ModRef, Promote: true}, nil)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var over []certify.Pressure
			for _, pr := range c.Pressure() {
				if pr.OverBudget {
					over = append(over, pr)
				}
			}
			if p.Name == "water" {
				if len(over) == 0 {
					t.Fatalf("water's promotion site not flagged over budget; pressure: %+v", c.Pressure())
				}
				for _, pr := range over {
					if pr.MaxLiveAll <= pr.Limit || 2*pr.MaxLive <= pr.Limit {
						t.Errorf("flagged site does not satisfy the budget predicate: %+v", pr)
					}
				}
			} else if len(over) != 0 {
				t.Errorf("unexpected over-budget site(s): %+v", over)
			}
		})
	}
}
