// Package certify independently re-proves register-promotion
// certificates and statically measures promoted-value register
// pressure.
//
// The promoter (internal/opt/promote) records one certificate per
// promoted region: the region's blocks, the boundary spill points,
// and the MOD/REF call summaries the decision relied on. This package
// re-establishes each certificate's soundness obligations without
// consulting analysis/pointsto or analysis/modref — a deliberately
// independent proof path, so a bug in the sharper analyses cannot
// certify its own output. Verification uses CFG dataflow on
// internal/dataflow plus a purely syntactic alias oracle; see Verify
// and the obligations documented on verifier.region.
//
// The pressure side (MeasurePressure) reads promoted-value liveness
// off the register allocator's dataflow and flags regions whose
// simultaneously-live promoted values leave too few of the K physical
// registers for everything else — the static form of the paper's
// water anecdote (§5), where promoting twenty-eight values caused
// enough spilling to erase the benefit.
package certify
