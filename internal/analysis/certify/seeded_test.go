// Seeded-defect tests: each test injects one specific unsoundness bug
// into an otherwise-correct promotion — a forged call summary, an
// interfering store smuggled into the region body, a mis-drawn region
// boundary, a dropped demotion store — and proves the certificate
// verifier catches it with exact provenance (check name, function,
// block, and instruction index). The clean baselines in the same file
// prove the catches are not false positives.
package certify_test

import (
	"strings"
	"testing"

	"regpromo/internal/analysis/certify"
	"regpromo/internal/ir"
	"regpromo/internal/opt/promote"
	"regpromo/internal/testutil"
)

// loopSrc is the minimal promotable program: the global "total" is
// read and written on every iteration with no interfering calls, so
// scalar promotion lifts it into a register for the whole loop.
const loopSrc = `
int total;
int main(void) {
    int i;
    for (i = 0; i < 10; i = i + 1) {
        total = total + i;
    }
    print_int(total);
    return 0;
}
`

// callSrc adds a call whose callee provably writes the promoted
// global. With honest MOD/REF summaries the call makes "total"
// ambiguous and promotion skips it; the forged-summary test below
// erases the summaries to force the unsound promotion through.
const callSrc = `
int total;
void bump(void) { total = total + 1; }
int main(void) {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        total = total + i;
        bump();
    }
    print_int(total);
    return 0;
}
`

func tagByName(t *testing.T, m *ir.Module, name string) ir.TagID {
	t.Helper()
	for _, tg := range m.Tags.All() {
		if tg.Name == name && tg.Func == "" {
			return tg.ID
		}
	}
	t.Fatalf("no global tag %q", name)
	return ir.TagInvalid
}

func promoteAll(t *testing.T, m *ir.Module) []promote.Region {
	t.Helper()
	st := promote.Run(m, promote.Options{})
	if len(st.Regions) == 0 {
		t.Fatalf("promotion produced no regions:\n%s", ir.FormatModule(m))
	}
	return st.Regions
}

func regionFor(t *testing.T, regions []promote.Region, fn string, tag ir.TagID) *promote.Region {
	t.Helper()
	for i := range regions {
		if regions[i].Func == fn && regions[i].Tag == tag {
			return &regions[i]
		}
	}
	t.Fatalf("no region for tag %d in %s", tag, fn)
	return nil
}

// wantViolation asserts that sum contains a [certify] diagnostic in
// fn/block matching msgPart, and returns it.
func wantViolation(t *testing.T, sum certify.Summary, fn, block, msgPart string) ir.Diag {
	t.Helper()
	for _, d := range sum.Diags {
		if d.Check == "certify" && d.Func == fn && d.Block == block && strings.Contains(d.Msg, msgPart) {
			return d
		}
	}
	t.Fatalf("no [certify] diag in %s/%s matching %q; got %v", fn, block, msgPart, sum.Diags)
	return ir.Diag{}
}

// TestCleanPromotionCertifies is the baseline: the untampered
// promotions of both fixture programs re-prove completely.
func TestCleanPromotionCertifies(t *testing.T) {
	for _, src := range []string{loopSrc, callSrc} {
		m := testutil.Compile(t, src)
		st := promote.Run(m, promote.Options{})
		sum := certify.Verify(m, st.Regions)
		if sum.Violations != 0 {
			t.Errorf("clean promotion has %d violations: %v", sum.Violations, sum.Diags)
		}
		if sum.Proved == 0 && sum.Regions > 0 {
			t.Errorf("clean promotion proved 0 of %d regions", sum.Regions)
		}
	}
}

// TestSeededForgedCallSummary erases the MOD/REF summaries on the
// call to bump() before promotion, simulating a pruned (unsound)
// interprocedural analysis. Promotion then wrongly lifts "total"
// across a call that writes it. The verifier must refute the
// certificate twice over: R2, because the call instruction provably
// writes the promoted tag inside the region, and R3, because the
// recorded summary fact omits a location the callee provably
// modifies — both anchored at the call site.
func TestSeededForgedCallSummary(t *testing.T) {
	m := testutil.Compile(t, callSrc)
	total := tagByName(t, m, "total")

	var callBlock string
	var callIndex int
	main := m.Funcs["main"]
	if main == nil {
		t.Fatal("no main")
	}
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpJsr && in.Callee == "bump" {
				in.Mods = ir.TagSet{}
				in.Refs = ir.TagSet{}
				callBlock, callIndex = b.Label, i
			}
		}
	}
	if callBlock == "" {
		t.Fatal("no call to bump in main")
	}

	regions := promoteAll(t, m)
	r := regionFor(t, regions, "main", total)
	if len(r.Calls) == 0 {
		t.Fatalf("certificate recorded no call facts; promotion did not cross the call")
	}

	sum := certify.Verify(m, regions)
	if sum.Violations == 0 {
		t.Fatalf("forged summary not refuted; diags: %v", sum.Diags)
	}
	d := wantViolation(t, sum, "main", callBlock, "provably writes promoted")
	if d.Index != callIndex || d.Op != ir.OpJsr {
		t.Errorf("R2 provenance: got %s #%d %v, want #%d %v", d.Block, d.Index, d.Op, callIndex, ir.OpJsr)
	}
	d = wantViolation(t, sum, "main", callBlock, `MOD summary of call to "bump" omits promoted`)
	if d.Index != callIndex {
		t.Errorf("R3 provenance: got index %d, want %d", d.Index, callIndex)
	}
	wantViolation(t, sum, "main", callBlock, `REF summary of call to "bump" omits promoted`)
}

// TestSeededInterferingStore plants a non-synthesized store to the
// promoted tag into a region body block after promotion, simulating a
// later pass that illegally re-materialized a memory access the
// certificate claims cannot exist. The verifier must flag exactly that
// instruction (R2).
func TestSeededInterferingStore(t *testing.T) {
	m := testutil.Compile(t, loopSrc)
	total := tagByName(t, m, "total")
	regions := promoteAll(t, m)
	r := regionFor(t, regions, "main", total)

	b := r.Body[0]
	store := ir.Instr{Op: ir.OpSStore, Tag: r.Tag, A: r.PromotedReg, Size: r.Size}
	b.Instrs = append([]ir.Instr{store}, b.Instrs...)

	sum := certify.Verify(m, regions)
	d := wantViolation(t, sum, "main", b.Label, "provably writes promoted")
	if d.Index != 0 || d.Op != ir.OpSStore {
		t.Errorf("R2 provenance: got #%d %v, want #0 %v", d.Index, d.Op, ir.OpSStore)
	}
}

// TestSeededMisdrawnBoundary rewrites the certificate's landing pad to
// the loop exit, simulating a promoter that recorded the region
// boundary at the wrong block. Every body block is then reachable from
// the entry without passing the claimed pad, so the lifted load would
// not dominate the rewritten uses — the verifier's R1 availability
// dataflow must refute it.
func TestSeededMisdrawnBoundary(t *testing.T) {
	m := testutil.Compile(t, loopSrc)
	total := tagByName(t, m, "total")
	regions := promoteAll(t, m)
	r := regionFor(t, regions, "main", total)
	if len(r.Exits) == 0 {
		t.Fatal("region has no exits")
	}

	r.Pad = r.Exits[0]

	sum := certify.Verify(m, regions)
	d := wantViolation(t, sum, "main", r.Body[0].Label, "reachable without passing landing pad")
	if d.Index != -1 {
		t.Errorf("R1 provenance: got index %d, want -1", d.Index)
	}
}

// TestSeededDroppedDemotion deletes the synthesized demotion store at
// the region exit after promotion. The downstream print_int(total)
// definitely reads the stale memory value, so the verifier's R4
// backward anticipation dataflow must flag the exit.
func TestSeededDroppedDemotion(t *testing.T) {
	m := testutil.Compile(t, loopSrc)
	total := tagByName(t, m, "total")
	regions := promoteAll(t, m)
	r := regionFor(t, regions, "main", total)
	if !r.Stored || !r.Demoted || len(r.Exits) == 0 {
		t.Fatalf("fixture region not stored+demoted with exits: %+v", r)
	}

	dropped := false
	for _, x := range r.Exits {
		kept := x.Instrs[:0]
		for i := range x.Instrs {
			in := x.Instrs[i]
			if in.Synth && in.Op == ir.OpSStore && in.Tag == r.Tag {
				dropped = true
				continue
			}
			kept = append(kept, in)
		}
		x.Instrs = kept
	}
	if !dropped {
		t.Fatal("no synthesized demotion store found at the exits")
	}

	sum := certify.Verify(m, regions)
	d := wantViolation(t, sum, "main", r.Exits[0].Label, "demotion store for promoted")
	if d.Index != -1 {
		t.Errorf("R4 provenance: got index %d, want -1", d.Index)
	}
}
