package pointsto

import (
	"testing"

	"regpromo/internal/analysis/modref"
	"regpromo/internal/callgraph"
	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
)

func analyze(t *testing.T, src string) (*ir.Module, *Result) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := irgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cg := callgraph.Build(m)
	modref.Run(m, cg)
	return m, Run(m, cg)
}

func tagByName(t *testing.T, m *ir.Module, name string) ir.TagID {
	t.Helper()
	for _, tag := range m.Tags.All() {
		if tag.Name == name {
			return tag.ID
		}
	}
	t.Fatalf("no tag %s", name)
	return ir.TagInvalid
}

// opTags collects the tag sets of all pLoad/pStore ops in fn.
func opTags(m *ir.Module, fn string) []ir.TagSet {
	var out []ir.TagSet
	for _, b := range m.Funcs[fn].Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpPLoad || in.Op == ir.OpPStore {
				out = append(out, in.Tags)
			}
		}
	}
	return out
}

func TestDistinguishesTargets(t *testing.T) {
	m, _ := analyze(t, `
int a;
int b;
int deref(int *p) { return *p; }
int main(void) {
	int *q;
	q = &a;
	(void) deref(&b);
	return *q;
}
`)
	aTag, bTag := tagByName(t, m, "a"), tagByName(t, m, "b")
	// The deref in main through q can only reach a.
	for _, ts := range opTags(m, "main") {
		if ts.Has(bTag) {
			t.Fatalf("q only points to a, got %s", ts.Format(&m.Tags))
		}
		if !ts.Has(aTag) {
			t.Fatalf("q must reach a, got %s", ts.Format(&m.Tags))
		}
	}
	// deref receives both &a (never) and &b: only b flows there.
	for _, ts := range opTags(m, "deref") {
		if ts.Has(aTag) {
			t.Fatalf("deref only ever sees &b, got %s", ts.Format(&m.Tags))
		}
	}
}

func TestFlowThroughMemory(t *testing.T) {
	m, _ := analyze(t, `
int x;
int *holder;
int main(void) {
	int *p;
	holder = &x;
	p = holder;
	return *p;
}
`)
	xTag := tagByName(t, m, "x")
	holderTag := tagByName(t, m, "holder")
	// Dereferences of p reach x but not holder itself.
	for _, ts := range opTags(m, "main") {
		if !ts.Has(xTag) || ts.Has(holderTag) {
			t.Fatalf("p should reach exactly x, got %s", ts.Format(&m.Tags))
		}
	}
}

func TestHeapSplitByAllocationSite(t *testing.T) {
	m, res := analyze(t, `
int main(void) {
	int *p;
	int *q;
	p = (int *) malloc(8);
	q = (int *) malloc(8);
	*p = 1;
	*q = 2;
	return *p + *q;
}
`)
	_ = res
	sets := opTags(m, "main")
	if len(sets) < 4 {
		t.Fatalf("expected 4 pointer ops, got %d", len(sets))
	}
	// p's and q's sets must be disjoint singletons (distinct sites).
	var pSet, qSet ir.TagSet
	for _, ts := range sets {
		if id, ok := ts.Singleton(); ok {
			tag := m.Tags.Get(id)
			if tag.Kind != ir.TagHeap {
				t.Fatalf("expected heap tag, got %s", tag.Name)
			}
			if pSet.IsEmpty() {
				pSet = ts
			} else if !ts.Equal(pSet) {
				qSet = ts
			}
		}
	}
	if qSet.IsEmpty() {
		t.Fatal("allocation sites were merged")
	}
	if pSet.Intersects(qSet) {
		t.Fatal("sites must be disjoint")
	}
}

func TestFunctionPointerTargets(t *testing.T) {
	m, _ := analyze(t, `
int fa(void) { return 1; }
int fb(void) { return 2; }
int fc(void) { return 3; }
int run(int (*f)(void)) { return f(); }
int main(void) { return run(fa) + run(fb) + fc(); }
`)
	for _, b := range m.Funcs["run"].Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpJsr && in.Callee == "" {
				if in.Targets == nil {
					t.Fatal("indirect call should have pinned targets")
				}
				got := map[string]bool{}
				for _, x := range in.Targets {
					got[x] = true
				}
				if !got["fa"] || !got["fb"] || got["fc"] {
					t.Fatalf("targets = %v", in.Targets)
				}
			}
		}
	}
}

func TestInitializerRelocsSeed(t *testing.T) {
	m, res := analyze(t, `
int cell;
int *ptr = &cell;
int main(void) { return *ptr; }
`)
	cell := tagByName(t, m, "cell")
	ptr := tagByName(t, m, "ptr")
	if !res.MemPointsTo(ptr).Has(cell) {
		t.Fatal("static initializer must seed points-to")
	}
	for _, ts := range opTags(m, "main") {
		if !ts.Has(cell) {
			t.Fatalf("deref of ptr must reach cell, got %s", ts.Format(&m.Tags))
		}
	}
}

// TestConservativeAgainstExecution is the dynamic-validation property:
// every address actually dereferenced at run time must belong to the
// static points-to set of the operation that dereferenced it.
func TestConservativeAgainstExecution(t *testing.T) {
	sources := []string{
		`
int a;
int b[4];
int pick(int *p) { return *p; }
int main(void) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 4; i++) b[i] = i;
	s += pick(&a);
	for (i = 0; i < 4; i++) s += pick(&b[i]);
	return s;
}`,
		`
struct node { int v; struct node *next; };
int main(void) {
	struct node *h;
	struct node *n;
	int i;
	int s;
	h = 0;
	for (i = 0; i < 5; i++) {
		n = (struct node *) malloc(sizeof(struct node));
		n->v = i;
		n->next = h;
		h = n;
	}
	s = 0;
	for (n = h; n != 0; n = n->next) s += n->v;
	return s;
}`,
		`
int x;
int y;
int *sel(int c) { if (c) return &x; return &y; }
int main(void) {
	int i;
	for (i = 0; i < 10; i++) *sel(i & 1) += 1;
	return x * 100 + y;
}`,
	}
	for _, src := range sources {
		m, _ := analyze(t, src)
		violations := 0
		_, err := interp.Run(m, interp.Options{
			Trace: func(fn string, in *ir.Instr, addr int64, owner ir.TagID) {
				if owner == ir.TagInvalid {
					return // stack scratch outside any tag
				}
				if !in.Tags.Has(owner) {
					violations++
					t.Errorf("%s: %s touched tag %s outside its set %s",
						fn, in.Op, m.Tags.Get(owner).Name, in.Tags.Format(&m.Tags))
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if violations > 0 {
			t.Fatalf("%d conservativeness violations", violations)
		}
	}
}

// TestRefinementMonotone: points-to only ever shrinks MOD/REF's sets.
func TestRefinementMonotone(t *testing.T) {
	src := `
int a;
int b;
int arr[8];
void touch(int *p, int i) { *p += arr[i & 7]; }
int main(void) {
	touch(&a, 1);
	touch(&b, 2);
	return a + b;
}
`
	f, _ := parser.Parse("t.c", src)
	p, _ := sema.Check(f)
	m1, _ := irgen.Generate(p)
	cg1 := callgraph.Build(m1)
	modref.Run(m1, cg1)
	before := map[*ir.Instr]ir.TagSet{}
	var order []*ir.Instr
	for _, fn := range m1.FuncsInOrder() {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpPLoad || in.Op == ir.OpPStore {
					before[in] = in.Tags
					order = append(order, in)
				}
			}
		}
	}
	Run(m1, cg1)
	for _, in := range order {
		if !in.Tags.SubsetOf(before[in]) {
			t.Fatalf("points-to grew a tag set: %s -> %s",
				before[in].Format(&m1.Tags), in.Tags.Format(&m1.Tags))
		}
	}
}
