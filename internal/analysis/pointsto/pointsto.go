// Package pointsto implements the paper's whole-program points-to
// analysis (§4), in the style of Ruf's context-insensitive analysis
// [18]: for every pointer-valued name the analysis computes the set of
// tags it may point to, propagating values through assignments,
// loads, stores, calls, and returns with a worklist until fixed point.
// Non-local memory is modeled with explicit names (one node per tag),
// the heap is split by allocation site, and function pointers are
// tracked so indirect calls resolve to the functions a pointer can
// actually carry.
//
// The implementation is flow-insensitive at the register level where
// the paper's is SSA-based; the IL generator produces single-
// assignment temporaries for all address computations, so the
// precision difference is confined to user variables that are
// reassigned between address-takings — a strictly conservative
// approximation.
//
// Two layers make the analysis demand-driven and incremental. A
// pointer-liveness pre-pass (liveness.go) restricts the fixpoint to
// instructions whose facts can reach a consumer the narrowing reads,
// so integer-only code costs nothing. Independently, Solve hashes the
// module's pointer projection — every solver-understood instruction,
// structurally (no literal operands, which no pointer transfer reads)
// — walking the callgraph SCCs in reverse topological order and
// chaining callee component keys; when an analysis cache holds the
// projection's narrowing from an earlier compile, Solve replays it
// without running the liveness pass or the fixpoint at all. Points-to
// is not bottom-up compositional (argument facts flow callers→callees
// and memory nodes are global), so the replay is all-or-nothing at
// module grain; the projection's indifference to literal operands and
// non-pointer opcodes is what makes warm hits common — in particular,
// every constant-only edit replays.
package pointsto

import (
	"sort"

	"regpromo/internal/analysis/cache"
	"regpromo/internal/callgraph"
	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/par"
)

// Options tune a points-to run.
type Options struct {
	// NoFilter disables the pointer-liveness pre-filter, making the
	// solver process every instruction its transfer functions
	// understand (the pre-incremental behaviour). Filtered and
	// unfiltered runs install byte-identical IL; the flag exists for
	// that property test and for ablation measurements.
	NoFilter bool
}

// Result maps analysis facts back to the program.
type Result struct {
	cg *callgraph.Graph
	// regs gives, per interned function id and register, the node
	// holding what that register may point to.
	regs [][]node
	mod  *ir.Module
	// mem gives the points-to set of the value stored in each tag.
	mem []node
	// Steps counts function re-analyses the sparse fixpoint performed —
	// deterministic for a given module, so it is safe to compare across
	// runs and report in telemetry. A cache replay reports the recorded
	// count of the run it replays.
	Steps int
	// Cached reports that the narrowing was replayed from the analysis
	// cache; per-register facts are unavailable on this path (only the
	// IL effects were needed).
	Cached bool
	// SCCsSolved and SCCsCached count callgraph components this run
	// solved versus replayed (all-or-nothing at module grain).
	SCCsSolved, SCCsCached int
}

// node is one points-to set: program tags plus possible function
// targets (by interned id).
type node struct {
	tags  ir.TagSet
	funcs map[callgraph.FuncID]bool
}

// unionTags grows the node's tag set in place (the node owns its
// backing words; sets are never assigned across nodes).
func (n *node) unionTags(t ir.TagSet) bool {
	return t.UnionInto(&n.tags)
}

func (n *node) addTag(t ir.TagID) bool {
	return n.tags.Add(t)
}

func (n *node) unionFuncs(fs map[callgraph.FuncID]bool) bool {
	changed := false
	for f := range fs {
		if !n.funcs[f] {
			if n.funcs == nil {
				n.funcs = make(map[callgraph.FuncID]bool)
			}
			n.funcs[f] = true
			changed = true
		}
	}
	return changed
}

func (n *node) addFunc(f callgraph.FuncID) bool {
	if n.funcs[f] {
		return false
	}
	if n.funcs == nil {
		n.funcs = make(map[callgraph.FuncID]bool)
	}
	n.funcs[f] = true
	return true
}

// RegPointsTo returns the tag set register r of function fn may point
// to. Dead pointers — registers the liveness pre-pass proves can
// never reach a pointer consumer — report the empty set (their facts
// collapse to ⊥). Unavailable after a cache replay.
func (r *Result) RegPointsTo(fn string, reg ir.Reg) ir.TagSet {
	id := r.cg.ID(fn)
	if id == callgraph.FuncInvalid || r.regs == nil {
		return ir.TagSet{}
	}
	ns := r.regs[id]
	if int(reg) >= len(ns) {
		return ir.TagSet{}
	}
	return ns[reg].tags
}

// MemPointsTo returns the tag set the value stored in tag may point
// to. Unavailable after a cache replay.
func (r *Result) MemPointsTo(tag ir.TagID) ir.TagSet {
	if r.mem == nil {
		return ir.TagSet{}
	}
	return r.mem[tag].tags
}

// AddrTakenSet returns the set of tags whose address the program can
// observe — the universe every pointer may-set is drawn from. After
// analysis narrows pointer operations, any tag set mentioning a tag
// outside this universe indicates a broken invariant; internal/check
// lints against it.
func AddrTakenSet(m *ir.Module) ir.TagSet {
	var s ir.TagSet
	for _, tag := range m.Tags.All() {
		if tag.AddrTaken {
			s.Add(tag.ID)
		}
	}
	return s
}

// Run analyzes the module, then narrows the tag sets of pointer-based
// memory operations and the target sets of indirect calls in place.
func Run(m *ir.Module, cg *callgraph.Graph) *Result {
	return Solve(m, cg, nil, Options{})
}

// Solve is Run with the incremental machinery exposed: when store is
// non-nil, the module's pointer projection is hashed (walking the
// callgraph SCCs in reverse topological order and chaining callee
// component keys) and a hit replays the cached narrowing verbatim —
// skipping the liveness pre-pass and the fixpoint entirely; a miss
// solves, then records the narrowing under the projection key.
// Replayed IL is byte-identical to a from-scratch solve by
// construction: the key covers every input the liveness pass, the
// solver, and narrow() read.
func Solve(m *ir.Module, cg *callgraph.Graph, store *cache.Store, opts Options) *Result {
	var key cache.Key
	if store != nil {
		key = projectionKey(m, cg, opts.NoFilter)
		if e, ok := store.PointsTo(key); ok {
			res := &Result{cg: cg, mod: m, Steps: e.Steps, Cached: true, SCCsCached: len(cg.SCCs)}
			replay(m, e)
			if r := obs.Metrics(); r != nil {
				r.Counter("pointsto.cache.hit").Inc()
				r.Counter("analysis.scc.hit").Add(int64(len(cg.SCCs)))
			}
			return res
		}
		if r := obs.Metrics(); r != nil {
			r.Counter("pointsto.cache.miss").Inc()
			r.Counter("analysis.scc.miss").Add(int64(len(cg.SCCs)))
		}
	}

	var li *liveness
	if !opts.NoFilter {
		li = computeLiveness(m, cg)
	}

	nf := cg.NumFuncs()
	a := &analyzer{
		mod: m,
		cg:  cg,
		li:  li,
		res: &Result{
			cg:   cg,
			regs: make([][]node, nf),
			mod:  m,
			mem:  make([]node, m.Tags.Len()),
		},
		rets:       make([]node, nf),
		memReaders: make([][]callgraph.FuncID, m.Tags.Len()),
		memIsRdr:   make([][]bool, m.Tags.Len()),
		retReaders: make([][]callgraph.FuncID, nf),
		retIsRdr:   make([][]bool, nf),
	}
	a.res.SCCsSolved = len(cg.SCCs)
	for _, fn := range m.FuncsInOrder() {
		a.res.regs[cg.ID(fn.Name)] = make([]node, fn.NumRegs)
	}

	// Seed: static initializers with relocations store addresses.
	for _, init := range m.Inits {
		for _, rel := range init.Relocs {
			a.res.mem[init.Tag].addTag(rel.Target)
		}
	}

	// Sparse transfer iteration: one worklist entry per function,
	// draining in module order. A function re-fires only when one of
	// its inputs grew — its own register nodes, a memory node it
	// reads (readers are registered dynamically as pointer targets
	// are discovered), or the return node of a callee. The
	// constraints are inclusion-monotone, so this reaches the same
	// least fixpoint as the old sweep-everything rounds.
	rank := make([]int, nf)
	for i := range rank {
		rank[i] = i
	}
	a.w = dataflow.NewWorklist(rank)
	funcs := m.FuncsInOrder()
	for i := range funcs {
		a.w.Push(i)
	}
	for {
		id, ok := a.w.Pop()
		if !ok {
			break
		}
		a.res.Steps++
		a.function(callgraph.FuncID(id), funcs[id])
	}
	if r := obs.Metrics(); r != nil {
		r.Counter("pointsto.runs").Inc()
		r.Counter("pointsto.steps").Add(int64(a.res.Steps))
		r.Counter("pointsto.pushes").Add(int64(a.w.Pushes()))
	}

	rec := a.narrow()
	if store != nil {
		store.PutPointsTo(key, &cache.PointsToEntry{Funcs: rec, Steps: a.res.Steps})
	}
	return a.res
}

// projectionKey hashes everything a (possibly filtered) solve reads:
// the module salt (tag table, initializers, addressed functions) and,
// per callgraph SCC in reverse topological order, each member's
// projection hash — its solver-understood instructions, structurally,
// with positions — chained with the keys of every callee component.
// The per-function hashes are independent, so they are computed in
// parallel before the (cheap, ordered) condensation walk. The key
// needs no liveness information: equal projections imply equal
// liveness and hence an equal filtered solution, which is what lets a
// hit skip the liveness pass too.
func projectionKey(m *ir.Module, cg *callgraph.Graph, noFilter bool) cache.Key {
	salt := cache.ModuleSalt(m)
	funcs := m.FuncsInOrder()
	fnKeys, _ := par.ParallelMap(len(funcs), 0, func(i int) (cache.Key, error) {
		return cache.FuncProjectionHash(funcs[i]), nil
	})
	sccKeys := make([]cache.Key, len(cg.SCCs))
	for i, comp := range cg.SCCMemberIDs {
		h := cache.NewHasher().Key(salt)
		for _, fid := range comp {
			h.Key(fnKeys[fid])
		}
		for _, j := range cg.SCCSuccs(i) {
			h.Key(sccKeys[j])
		}
		sccKeys[i] = h.Sum()
	}
	top := cache.NewHasher().Key(salt).Bool(!noFilter)
	top.Int(int64(len(sccKeys)))
	for _, k := range sccKeys {
		top.Key(k)
	}
	return top.Sum()
}

// replay installs a cached narrowing: the recorded pointer-op tag
// sets and indirect-call target lists, positionally.
func replay(m *ir.Module, e *cache.PointsToEntry) {
	for _, fe := range e.Funcs {
		fn := m.Funcs[fe.Name]
		for _, op := range fe.Ops {
			in := &fn.Blocks[op.Block].Instrs[op.Index]
			if op.Targets != nil {
				in.Targets = append([]string(nil), op.Targets...)
			} else {
				in.Tags = op.Tags.Clone()
			}
		}
	}
}

type analyzer struct {
	mod *ir.Module
	cg  *callgraph.Graph
	li  *liveness
	res *Result
	// rets holds one node per function for its returned value.
	rets []node
	w    *dataflow.Worklist

	// memReaders / retReaders record which functions read each memory
	// node / return node, so a write that grows a node re-queues
	// exactly its readers.
	memReaders [][]callgraph.FuncID
	memIsRdr   [][]bool
	retReaders [][]callgraph.FuncID
	retIsRdr   [][]bool
}

func (a *analyzer) readMem(t ir.TagID, fid callgraph.FuncID) *node {
	isRdr := a.memIsRdr[t]
	if isRdr == nil {
		isRdr = make([]bool, a.cg.NumFuncs())
		a.memIsRdr[t] = isRdr
	}
	if !isRdr[fid] {
		isRdr[fid] = true
		a.memReaders[t] = append(a.memReaders[t], fid)
	}
	return &a.res.mem[t]
}

func (a *analyzer) readRet(callee, fid callgraph.FuncID) *node {
	isRdr := a.retIsRdr[callee]
	if isRdr == nil {
		isRdr = make([]bool, a.cg.NumFuncs())
		a.retIsRdr[callee] = isRdr
	}
	if !isRdr[fid] {
		isRdr[fid] = true
		a.retReaders[callee] = append(a.retReaders[callee], fid)
	}
	return &a.rets[callee]
}

// markSelf re-queues the function whose own register nodes grew.
func (a *analyzer) markSelf(fid callgraph.FuncID, changed bool) {
	if changed {
		a.w.Push(int(fid))
	}
}

// markMem re-queues the registered readers of memory node t.
func (a *analyzer) markMem(t ir.TagID, changed bool) {
	if changed {
		for _, r := range a.memReaders[t] {
			a.w.Push(int(r))
		}
	}
}

// markRet re-queues the registered readers of fid's return node.
func (a *analyzer) markRet(fid callgraph.FuncID, changed bool) {
	if changed {
		for _, r := range a.retReaders[fid] {
			a.w.Push(int(r))
		}
	}
}

func (a *analyzer) function(fid callgraph.FuncID, fn *ir.Func) {
	regs := a.res.regs[fid]
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !a.li.relevant(fid, in) {
				// The liveness pre-filter proved no fact of this
				// instruction can reach a consumer the narrowing
				// reads; skipping it cannot change any observed set.
				continue
			}
			switch in.Op {
			case ir.OpAddrOf:
				if in.Callee != "" {
					a.markSelf(fid, regs[in.Dst].addFunc(a.cg.ID(in.Callee)))
				} else {
					a.markSelf(fid, regs[in.Dst].addTag(in.Tag))
				}

			case ir.OpCopy:
				a.markSelf(fid, regs[in.Dst].unionTags(regs[in.A].tags))
				a.markSelf(fid, regs[in.Dst].unionFuncs(regs[in.A].funcs))

			case ir.OpAdd, ir.OpSub:
				// Pointer arithmetic stays within the object; both
				// operands may carry the pointer.
				a.markSelf(fid, regs[in.Dst].unionTags(regs[in.A].tags))
				a.markSelf(fid, regs[in.Dst].unionTags(regs[in.B].tags))
				a.markSelf(fid, regs[in.Dst].unionFuncs(regs[in.A].funcs))
				a.markSelf(fid, regs[in.Dst].unionFuncs(regs[in.B].funcs))

			case ir.OpSLoad, ir.OpCLoad:
				mn := a.readMem(in.Tag, fid)
				a.markSelf(fid, regs[in.Dst].unionTags(mn.tags))
				a.markSelf(fid, regs[in.Dst].unionFuncs(mn.funcs))

			case ir.OpSStore:
				a.markMem(in.Tag, a.res.mem[in.Tag].unionTags(regs[in.A].tags))
				a.markMem(in.Tag, a.res.mem[in.Tag].unionFuncs(regs[in.A].funcs))

			case ir.OpPLoad:
				for _, t := range a.currentTargets(fn, in, regs) {
					mn := a.readMem(t, fid)
					a.markSelf(fid, regs[in.Dst].unionTags(mn.tags))
					a.markSelf(fid, regs[in.Dst].unionFuncs(mn.funcs))
				}

			case ir.OpPStore:
				for _, t := range a.currentTargets(fn, in, regs) {
					a.markMem(t, a.res.mem[t].unionTags(regs[in.B].tags))
					a.markMem(t, a.res.mem[t].unionFuncs(regs[in.B].funcs))
				}

			case ir.OpJsr:
				a.call(fid, fn, in, regs)

			case ir.OpRet:
				if in.HasValue && in.A != ir.RegInvalid {
					rn := &a.rets[fid]
					a.markRet(fid, rn.unionTags(regs[in.A].tags))
					a.markRet(fid, rn.unionFuncs(regs[in.A].funcs))
				}
			}
		}
	}
}

// currentTargets is the set of memory nodes a pointer op touches: the
// points-to set of its address register. An empty set means the
// address has not (yet) been reached by any modeled pointer value; in
// the standard inclusion-based reading the operation contributes no
// flow until the set grows, and the transfer re-fires when it does.
// (Programs that manufacture pointers from arbitrary integers are
// outside the modeled subset; their operations would be invisible
// here, which is why narrow() never shrinks a tag set on the strength
// of an empty result.)
func (a *analyzer) currentTargets(fn *ir.Func, in *ir.Instr, regs []node) []ir.TagID {
	pts := regs[in.A].tags
	if pts.IsTop() {
		var all []ir.TagID
		for _, tag := range a.mod.Tags.All() {
			if tag.AddrTaken {
				all = append(all, tag.ID)
			}
		}
		return all
	}
	return pts.IDs()
}

func (a *analyzer) call(fid callgraph.FuncID, fn *ir.Func, in *ir.Instr, regs []node) {
	var callees []string
	if in.Callee != "" {
		callees = []string{in.Callee}
	} else {
		// Indirect: targets from the function-pointer set; until it
		// is populated, every addressed function.
		fp := regs[in.A].funcs
		if len(fp) > 0 {
			callees = a.sortedNames(fp)
		} else {
			callees = a.mod.AddressedFuncs
		}
	}
	for _, name := range callees {
		callee, defined := a.mod.Funcs[name]
		if !defined {
			a.intrinsic(fid, name, in, regs)
			continue
		}
		cid := a.cg.ID(name)
		calleeRegs := a.res.regs[cid]
		for i, arg := range in.Args {
			if i >= len(callee.Params) {
				break
			}
			p := callee.Params[i]
			changed := calleeRegs[p].unionTags(regs[arg].tags)
			if calleeRegs[p].unionFuncs(regs[arg].funcs) {
				changed = true
			}
			if changed {
				a.w.Push(int(cid))
			}
		}
		if in.HasValue && in.Dst != ir.RegInvalid {
			rn := a.readRet(cid, fid)
			a.markSelf(fid, regs[in.Dst].unionTags(rn.tags))
			a.markSelf(fid, regs[in.Dst].unionFuncs(rn.funcs))
		}
	}
}

// sortedNames resolves a function-id set to sorted names. Ids intern
// module function order, not lexicographic order, so the names are
// sorted explicitly to keep every downstream iteration deterministic.
func (a *analyzer) sortedNames(fp map[callgraph.FuncID]bool) []string {
	names := make([]string, 0, len(fp))
	for f := range fp {
		names = append(names, a.cg.Name(f))
	}
	sort.Strings(names)
	return names
}

func (a *analyzer) intrinsic(fid callgraph.FuncID, name string, in *ir.Instr, regs []node) {
	if name == "malloc" && in.Site != ir.TagInvalid && in.Dst != ir.RegInvalid {
		a.markSelf(fid, regs[in.Dst].addTag(in.Site))
	}
}

// narrow installs the computed sets: pointer-op tag lists shrink to
// the address's points-to set (intersected with the existing
// visibility-limited set), and indirect calls learn their possible
// targets. The rewrites are also recorded positionally so an
// analysis cache can replay them on an unchanged projection.
func (a *analyzer) narrow() []cache.FuncNarrowing {
	var rec []cache.FuncNarrowing
	for _, fn := range a.mod.FuncsInOrder() {
		fnRec := cache.FuncNarrowing{Name: fn.Name}
		regs := a.res.regs[a.cg.ID(fn.Name)]
		for bi, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpPLoad, ir.OpPStore:
					pts := regs[in.A].tags
					if pts.IsEmpty() || pts.IsTop() {
						continue
					}
					if in.Tags.IsTop() {
						in.Tags = pts
					} else {
						in.Tags = in.Tags.Intersect(pts)
					}
					fnRec.Ops = append(fnRec.Ops, cache.NarrowOp{Block: bi, Index: i, Tags: in.Tags.Clone()})
				case ir.OpJsr:
					if in.Callee == "" && len(regs[in.A].funcs) > 0 {
						ts := a.sortedNames(regs[in.A].funcs)
						in.Targets = ts
						fnRec.Ops = append(fnRec.Ops, cache.NarrowOp{Block: bi, Index: i, Targets: append([]string(nil), ts...)})
					}
				}
			}
		}
		if len(fnRec.Ops) > 0 {
			rec = append(rec, fnRec)
		}
	}
	return rec
}
