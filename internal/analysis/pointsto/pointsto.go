// Package pointsto implements the paper's whole-program points-to
// analysis (§4), in the style of Ruf's context-insensitive analysis
// [18]: for every pointer-valued name the analysis computes the set of
// tags it may point to, propagating values through assignments,
// loads, stores, calls, and returns with a worklist until fixed point.
// Non-local memory is modeled with explicit names (one node per tag),
// the heap is split by allocation site, and function pointers are
// tracked so indirect calls resolve to the functions a pointer can
// actually carry.
//
// The implementation is flow-insensitive at the register level where
// the paper's is SSA-based; the IL generator produces single-
// assignment temporaries for all address computations, so the
// precision difference is confined to user variables that are
// reassigned between address-takings — a strictly conservative
// approximation.
package pointsto

import (
	"sort"

	"regpromo/internal/callgraph"
	"regpromo/internal/ir"
)

// Result maps analysis facts back to the program.
type Result struct {
	// RegTags gives, for function f and register r, the tags r may
	// point to.
	regs map[string][]node
	mod  *ir.Module
	// mem gives the points-to set of the value stored in each tag.
	mem []node
}

// node is one points-to set: program tags plus possible function
// targets.
type node struct {
	tags  ir.TagSet
	funcs map[string]bool
}

func (n *node) unionTags(t ir.TagSet) bool {
	u := n.tags.Union(t)
	if u.Equal(n.tags) {
		return false
	}
	n.tags = u
	return true
}

func (n *node) unionFuncs(fs map[string]bool) bool {
	changed := false
	for f := range fs {
		if !n.funcs[f] {
			if n.funcs == nil {
				n.funcs = make(map[string]bool)
			}
			n.funcs[f] = true
			changed = true
		}
	}
	return changed
}

func (n *node) addFunc(f string) bool {
	if n.funcs[f] {
		return false
	}
	if n.funcs == nil {
		n.funcs = make(map[string]bool)
	}
	n.funcs[f] = true
	return true
}

// RegPointsTo returns the tag set register r of function fn may point
// to.
func (r *Result) RegPointsTo(fn string, reg ir.Reg) ir.TagSet {
	ns := r.regs[fn]
	if ns == nil || int(reg) >= len(ns) {
		return ir.TagSet{}
	}
	return ns[reg].tags
}

// MemPointsTo returns the tag set the value stored in tag may point
// to.
func (r *Result) MemPointsTo(tag ir.TagID) ir.TagSet { return r.mem[tag].tags }

// Run analyzes the module, then narrows the tag sets of pointer-based
// memory operations and the target sets of indirect calls in place.
func Run(m *ir.Module, cg *callgraph.Graph) *Result {
	a := &analyzer{
		mod: m,
		res: &Result{
			regs: make(map[string][]node),
			mod:  m,
			mem:  make([]node, m.Tags.Len()),
		},
		rets: make(map[string]*node),
	}
	for _, fn := range m.FuncsInOrder() {
		a.res.regs[fn.Name] = make([]node, fn.NumRegs)
		a.rets[fn.Name] = &node{}
	}

	// Seed: static initializers with relocations store addresses.
	for _, init := range m.Inits {
		for _, rel := range init.Relocs {
			a.res.mem[init.Tag].unionTags(ir.NewTagSet(rel.Target))
		}
	}

	// Iterate all transfer functions to a fixed point. Program sizes
	// are modest; a full sweep per round keeps the logic transparent.
	for {
		a.changed = false
		for _, fn := range m.FuncsInOrder() {
			a.function(fn)
		}
		if !a.changed {
			break
		}
	}

	a.narrow()
	return a.res
}

type analyzer struct {
	mod     *ir.Module
	res     *Result
	rets    map[string]*node
	changed bool
}

func (a *analyzer) mark(b bool) {
	if b {
		a.changed = true
	}
}

func (a *analyzer) function(fn *ir.Func) {
	regs := a.res.regs[fn.Name]
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpAddrOf:
				if in.Callee != "" {
					a.mark(regs[in.Dst].addFunc(in.Callee))
				} else {
					a.mark(regs[in.Dst].unionTags(ir.NewTagSet(in.Tag)))
				}

			case ir.OpCopy:
				a.mark(regs[in.Dst].unionTags(regs[in.A].tags))
				a.mark(regs[in.Dst].unionFuncs(regs[in.A].funcs))

			case ir.OpAdd, ir.OpSub:
				// Pointer arithmetic stays within the object; both
				// operands may carry the pointer.
				a.mark(regs[in.Dst].unionTags(regs[in.A].tags))
				a.mark(regs[in.Dst].unionTags(regs[in.B].tags))
				a.mark(regs[in.Dst].unionFuncs(regs[in.A].funcs))
				a.mark(regs[in.Dst].unionFuncs(regs[in.B].funcs))

			case ir.OpSLoad, ir.OpCLoad:
				a.mark(regs[in.Dst].unionTags(a.res.mem[in.Tag].tags))
				a.mark(regs[in.Dst].unionFuncs(a.res.mem[in.Tag].funcs))

			case ir.OpSStore:
				a.mark(a.res.mem[in.Tag].unionTags(regs[in.A].tags))
				a.mark(a.res.mem[in.Tag].unionFuncs(regs[in.A].funcs))

			case ir.OpPLoad:
				for _, t := range a.currentTargets(fn, in, regs) {
					a.mark(regs[in.Dst].unionTags(a.res.mem[t].tags))
					a.mark(regs[in.Dst].unionFuncs(a.res.mem[t].funcs))
				}

			case ir.OpPStore:
				for _, t := range a.currentTargets(fn, in, regs) {
					a.mark(a.res.mem[t].unionTags(regs[in.B].tags))
					a.mark(a.res.mem[t].unionFuncs(regs[in.B].funcs))
				}

			case ir.OpJsr:
				a.call(fn, in, regs)

			case ir.OpRet:
				if in.HasValue && in.A != ir.RegInvalid {
					rn := a.rets[fn.Name]
					a.mark(rn.unionTags(regs[in.A].tags))
					a.mark(rn.unionFuncs(regs[in.A].funcs))
				}
			}
		}
	}
}

// currentTargets is the set of memory nodes a pointer op touches: the
// points-to set of its address register. An empty set means the
// address has not (yet) been reached by any modeled pointer value; in
// the standard inclusion-based reading the operation contributes no
// flow until the set grows, and the transfer re-fires when it does.
// (Programs that manufacture pointers from arbitrary integers are
// outside the modeled subset; their operations would be invisible
// here, which is why narrow() never shrinks a tag set on the strength
// of an empty result.)
func (a *analyzer) currentTargets(fn *ir.Func, in *ir.Instr, regs []node) []ir.TagID {
	pts := regs[in.A].tags
	if pts.IsTop() {
		var all []ir.TagID
		for _, tag := range a.mod.Tags.All() {
			if tag.AddrTaken {
				all = append(all, tag.ID)
			}
		}
		return all
	}
	return pts.IDs()
}

func (a *analyzer) call(fn *ir.Func, in *ir.Instr, regs []node) {
	var callees []string
	if in.Callee != "" {
		callees = []string{in.Callee}
	} else {
		// Indirect: targets from the function-pointer set; until it
		// is populated, every addressed function.
		fp := regs[in.A].funcs
		if len(fp) > 0 {
			for f := range fp {
				callees = append(callees, f)
			}
			sort.Strings(callees)
		} else {
			callees = a.mod.AddressedFuncs
		}
	}
	for _, name := range callees {
		callee, defined := a.mod.Funcs[name]
		if !defined {
			a.intrinsic(name, in, regs)
			continue
		}
		calleeRegs := a.res.regs[name]
		for i, arg := range in.Args {
			if i >= len(callee.Params) {
				break
			}
			p := callee.Params[i]
			a.mark(calleeRegs[p].unionTags(regs[arg].tags))
			a.mark(calleeRegs[p].unionFuncs(regs[arg].funcs))
		}
		if in.HasValue && in.Dst != ir.RegInvalid {
			rn := a.rets[name]
			a.mark(regs[in.Dst].unionTags(rn.tags))
			a.mark(regs[in.Dst].unionFuncs(rn.funcs))
		}
	}
}

func (a *analyzer) intrinsic(name string, in *ir.Instr, regs []node) {
	if name == "malloc" && in.Site != ir.TagInvalid && in.Dst != ir.RegInvalid {
		a.mark(regs[in.Dst].unionTags(ir.NewTagSet(in.Site)))
	}
}

// narrow installs the computed sets: pointer-op tag lists shrink to
// the address's points-to set (intersected with the existing
// visibility-limited set), and indirect calls learn their possible
// targets.
func (a *analyzer) narrow() {
	for _, fn := range a.mod.FuncsInOrder() {
		regs := a.res.regs[fn.Name]
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpPLoad, ir.OpPStore:
					pts := regs[in.A].tags
					if pts.IsEmpty() || pts.IsTop() {
						continue
					}
					if in.Tags.IsTop() {
						in.Tags = pts
					} else {
						in.Tags = in.Tags.Intersect(pts)
					}
				case ir.OpJsr:
					if in.Callee == "" && len(regs[in.A].funcs) > 0 {
						var ts []string
						for f := range regs[in.A].funcs {
							ts = append(ts, f)
						}
						sort.Strings(ts)
						in.Targets = ts
					}
				}
			}
		}
	}
}
