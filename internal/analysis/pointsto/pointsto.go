// Package pointsto implements the paper's whole-program points-to
// analysis (§4), in the style of Ruf's context-insensitive analysis
// [18]: for every pointer-valued name the analysis computes the set of
// tags it may point to, propagating values through assignments,
// loads, stores, calls, and returns with a worklist until fixed point.
// Non-local memory is modeled with explicit names (one node per tag),
// the heap is split by allocation site, and function pointers are
// tracked so indirect calls resolve to the functions a pointer can
// actually carry.
//
// The implementation is flow-insensitive at the register level where
// the paper's is SSA-based; the IL generator produces single-
// assignment temporaries for all address computations, so the
// precision difference is confined to user variables that are
// reassigned between address-takings — a strictly conservative
// approximation.
package pointsto

import (
	"sort"

	"regpromo/internal/callgraph"
	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
)

// Result maps analysis facts back to the program.
type Result struct {
	cg *callgraph.Graph
	// regs gives, per interned function id and register, the node
	// holding what that register may point to.
	regs [][]node
	mod  *ir.Module
	// mem gives the points-to set of the value stored in each tag.
	mem []node
	// Steps counts function re-analyses the sparse fixpoint performed —
	// deterministic for a given module, so it is safe to compare across
	// runs and report in telemetry.
	Steps int
}

// node is one points-to set: program tags plus possible function
// targets.
type node struct {
	tags  ir.TagSet
	funcs map[string]bool
}

// unionTags grows the node's tag set in place (the node owns its
// backing words; sets are never assigned across nodes).
func (n *node) unionTags(t ir.TagSet) bool {
	return t.UnionInto(&n.tags)
}

func (n *node) addTag(t ir.TagID) bool {
	return n.tags.Add(t)
}

func (n *node) unionFuncs(fs map[string]bool) bool {
	changed := false
	for f := range fs {
		if !n.funcs[f] {
			if n.funcs == nil {
				n.funcs = make(map[string]bool)
			}
			n.funcs[f] = true
			changed = true
		}
	}
	return changed
}

func (n *node) addFunc(f string) bool {
	if n.funcs[f] {
		return false
	}
	if n.funcs == nil {
		n.funcs = make(map[string]bool)
	}
	n.funcs[f] = true
	return true
}

// RegPointsTo returns the tag set register r of function fn may point
// to.
func (r *Result) RegPointsTo(fn string, reg ir.Reg) ir.TagSet {
	id := r.cg.ID(fn)
	if id == callgraph.FuncInvalid {
		return ir.TagSet{}
	}
	ns := r.regs[id]
	if int(reg) >= len(ns) {
		return ir.TagSet{}
	}
	return ns[reg].tags
}

// MemPointsTo returns the tag set the value stored in tag may point
// to.
func (r *Result) MemPointsTo(tag ir.TagID) ir.TagSet { return r.mem[tag].tags }

// AddrTakenSet returns the set of tags whose address the program can
// observe — the universe every pointer may-set is drawn from. After
// analysis narrows pointer operations, any tag set mentioning a tag
// outside this universe indicates a broken invariant; internal/check
// lints against it.
func AddrTakenSet(m *ir.Module) ir.TagSet {
	var s ir.TagSet
	for _, tag := range m.Tags.All() {
		if tag.AddrTaken {
			s.Add(tag.ID)
		}
	}
	return s
}

// Run analyzes the module, then narrows the tag sets of pointer-based
// memory operations and the target sets of indirect calls in place.
func Run(m *ir.Module, cg *callgraph.Graph) *Result {
	nf := cg.NumFuncs()
	a := &analyzer{
		mod: m,
		cg:  cg,
		res: &Result{
			cg:   cg,
			regs: make([][]node, nf),
			mod:  m,
			mem:  make([]node, m.Tags.Len()),
		},
		rets:       make([]node, nf),
		memReaders: make([][]callgraph.FuncID, m.Tags.Len()),
		memIsRdr:   make([][]bool, m.Tags.Len()),
		retReaders: make([][]callgraph.FuncID, nf),
		retIsRdr:   make([][]bool, nf),
	}
	for _, fn := range m.FuncsInOrder() {
		a.res.regs[cg.ID(fn.Name)] = make([]node, fn.NumRegs)
	}

	// Seed: static initializers with relocations store addresses.
	for _, init := range m.Inits {
		for _, rel := range init.Relocs {
			a.res.mem[init.Tag].addTag(rel.Target)
		}
	}

	// Sparse transfer iteration: one worklist entry per function,
	// draining in module order. A function re-fires only when one of
	// its inputs grew — its own register nodes, a memory node it
	// reads (readers are registered dynamically as pointer targets
	// are discovered), or the return node of a callee. The
	// constraints are inclusion-monotone, so this reaches the same
	// least fixpoint as the old sweep-everything rounds.
	rank := make([]int, nf)
	for i := range rank {
		rank[i] = i
	}
	a.w = dataflow.NewWorklist(rank)
	funcs := m.FuncsInOrder()
	for i := range funcs {
		a.w.Push(i)
	}
	for {
		id, ok := a.w.Pop()
		if !ok {
			break
		}
		a.res.Steps++
		a.function(callgraph.FuncID(id), funcs[id])
	}
	if r := obs.Metrics(); r != nil {
		r.Counter("pointsto.runs").Inc()
		r.Counter("pointsto.steps").Add(int64(a.res.Steps))
		r.Counter("pointsto.pushes").Add(int64(a.w.Pushes()))
	}

	a.narrow()
	return a.res
}

type analyzer struct {
	mod *ir.Module
	cg  *callgraph.Graph
	res *Result
	// rets holds one node per function for its returned value.
	rets []node
	w    *dataflow.Worklist

	// memReaders / retReaders record which functions read each memory
	// node / return node, so a write that grows a node re-queues
	// exactly its readers.
	memReaders [][]callgraph.FuncID
	memIsRdr   [][]bool
	retReaders [][]callgraph.FuncID
	retIsRdr   [][]bool
}

func (a *analyzer) readMem(t ir.TagID, fid callgraph.FuncID) *node {
	isRdr := a.memIsRdr[t]
	if isRdr == nil {
		isRdr = make([]bool, a.cg.NumFuncs())
		a.memIsRdr[t] = isRdr
	}
	if !isRdr[fid] {
		isRdr[fid] = true
		a.memReaders[t] = append(a.memReaders[t], fid)
	}
	return &a.res.mem[t]
}

func (a *analyzer) readRet(callee, fid callgraph.FuncID) *node {
	isRdr := a.retIsRdr[callee]
	if isRdr == nil {
		isRdr = make([]bool, a.cg.NumFuncs())
		a.retIsRdr[callee] = isRdr
	}
	if !isRdr[fid] {
		isRdr[fid] = true
		a.retReaders[callee] = append(a.retReaders[callee], fid)
	}
	return &a.rets[callee]
}

// markSelf re-queues the function whose own register nodes grew.
func (a *analyzer) markSelf(fid callgraph.FuncID, changed bool) {
	if changed {
		a.w.Push(int(fid))
	}
}

// markMem re-queues the registered readers of memory node t.
func (a *analyzer) markMem(t ir.TagID, changed bool) {
	if changed {
		for _, r := range a.memReaders[t] {
			a.w.Push(int(r))
		}
	}
}

// markRet re-queues the registered readers of fid's return node.
func (a *analyzer) markRet(fid callgraph.FuncID, changed bool) {
	if changed {
		for _, r := range a.retReaders[fid] {
			a.w.Push(int(r))
		}
	}
}

func (a *analyzer) function(fid callgraph.FuncID, fn *ir.Func) {
	regs := a.res.regs[fid]
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpAddrOf:
				if in.Callee != "" {
					a.markSelf(fid, regs[in.Dst].addFunc(in.Callee))
				} else {
					a.markSelf(fid, regs[in.Dst].addTag(in.Tag))
				}

			case ir.OpCopy:
				a.markSelf(fid, regs[in.Dst].unionTags(regs[in.A].tags))
				a.markSelf(fid, regs[in.Dst].unionFuncs(regs[in.A].funcs))

			case ir.OpAdd, ir.OpSub:
				// Pointer arithmetic stays within the object; both
				// operands may carry the pointer.
				a.markSelf(fid, regs[in.Dst].unionTags(regs[in.A].tags))
				a.markSelf(fid, regs[in.Dst].unionTags(regs[in.B].tags))
				a.markSelf(fid, regs[in.Dst].unionFuncs(regs[in.A].funcs))
				a.markSelf(fid, regs[in.Dst].unionFuncs(regs[in.B].funcs))

			case ir.OpSLoad, ir.OpCLoad:
				mn := a.readMem(in.Tag, fid)
				a.markSelf(fid, regs[in.Dst].unionTags(mn.tags))
				a.markSelf(fid, regs[in.Dst].unionFuncs(mn.funcs))

			case ir.OpSStore:
				a.markMem(in.Tag, a.res.mem[in.Tag].unionTags(regs[in.A].tags))
				a.markMem(in.Tag, a.res.mem[in.Tag].unionFuncs(regs[in.A].funcs))

			case ir.OpPLoad:
				for _, t := range a.currentTargets(fn, in, regs) {
					mn := a.readMem(t, fid)
					a.markSelf(fid, regs[in.Dst].unionTags(mn.tags))
					a.markSelf(fid, regs[in.Dst].unionFuncs(mn.funcs))
				}

			case ir.OpPStore:
				for _, t := range a.currentTargets(fn, in, regs) {
					a.markMem(t, a.res.mem[t].unionTags(regs[in.B].tags))
					a.markMem(t, a.res.mem[t].unionFuncs(regs[in.B].funcs))
				}

			case ir.OpJsr:
				a.call(fid, fn, in, regs)

			case ir.OpRet:
				if in.HasValue && in.A != ir.RegInvalid {
					rn := &a.rets[fid]
					a.markRet(fid, rn.unionTags(regs[in.A].tags))
					a.markRet(fid, rn.unionFuncs(regs[in.A].funcs))
				}
			}
		}
	}
}

// currentTargets is the set of memory nodes a pointer op touches: the
// points-to set of its address register. An empty set means the
// address has not (yet) been reached by any modeled pointer value; in
// the standard inclusion-based reading the operation contributes no
// flow until the set grows, and the transfer re-fires when it does.
// (Programs that manufacture pointers from arbitrary integers are
// outside the modeled subset; their operations would be invisible
// here, which is why narrow() never shrinks a tag set on the strength
// of an empty result.)
func (a *analyzer) currentTargets(fn *ir.Func, in *ir.Instr, regs []node) []ir.TagID {
	pts := regs[in.A].tags
	if pts.IsTop() {
		var all []ir.TagID
		for _, tag := range a.mod.Tags.All() {
			if tag.AddrTaken {
				all = append(all, tag.ID)
			}
		}
		return all
	}
	return pts.IDs()
}

func (a *analyzer) call(fid callgraph.FuncID, fn *ir.Func, in *ir.Instr, regs []node) {
	var callees []string
	if in.Callee != "" {
		callees = []string{in.Callee}
	} else {
		// Indirect: targets from the function-pointer set; until it
		// is populated, every addressed function.
		fp := regs[in.A].funcs
		if len(fp) > 0 {
			for f := range fp {
				callees = append(callees, f)
			}
			sort.Strings(callees)
		} else {
			callees = a.mod.AddressedFuncs
		}
	}
	for _, name := range callees {
		callee, defined := a.mod.Funcs[name]
		if !defined {
			a.intrinsic(fid, name, in, regs)
			continue
		}
		cid := a.cg.ID(name)
		calleeRegs := a.res.regs[cid]
		for i, arg := range in.Args {
			if i >= len(callee.Params) {
				break
			}
			p := callee.Params[i]
			changed := calleeRegs[p].unionTags(regs[arg].tags)
			if calleeRegs[p].unionFuncs(regs[arg].funcs) {
				changed = true
			}
			if changed {
				a.w.Push(int(cid))
			}
		}
		if in.HasValue && in.Dst != ir.RegInvalid {
			rn := a.readRet(cid, fid)
			a.markSelf(fid, regs[in.Dst].unionTags(rn.tags))
			a.markSelf(fid, regs[in.Dst].unionFuncs(rn.funcs))
		}
	}
}

func (a *analyzer) intrinsic(fid callgraph.FuncID, name string, in *ir.Instr, regs []node) {
	if name == "malloc" && in.Site != ir.TagInvalid && in.Dst != ir.RegInvalid {
		a.markSelf(fid, regs[in.Dst].addTag(in.Site))
	}
}

// narrow installs the computed sets: pointer-op tag lists shrink to
// the address's points-to set (intersected with the existing
// visibility-limited set), and indirect calls learn their possible
// targets.
func (a *analyzer) narrow() {
	for _, fn := range a.mod.FuncsInOrder() {
		regs := a.res.regs[a.cg.ID(fn.Name)]
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpPLoad, ir.OpPStore:
					pts := regs[in.A].tags
					if pts.IsEmpty() || pts.IsTop() {
						continue
					}
					if in.Tags.IsTop() {
						in.Tags = pts
					} else {
						in.Tags = in.Tags.Intersect(pts)
					}
				case ir.OpJsr:
					if in.Callee == "" && len(regs[in.A].funcs) > 0 {
						var ts []string
						for f := range regs[in.A].funcs {
							ts = append(ts, f)
						}
						sort.Strings(ts)
						in.Targets = ts
					}
				}
			}
		}
	}
}
