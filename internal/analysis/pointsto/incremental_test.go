package pointsto

import (
	"testing"

	"regpromo/internal/analysis/cache"
	"regpromo/internal/analysis/modref"
	"regpromo/internal/callgraph"
	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
	"regpromo/internal/testgen"
)

// buildAnalyzed compiles src through the front end and the MOD/REF
// pre-passes, leaving the module in the state Solve sees in the real
// pipeline.
func buildAnalyzed(t *testing.T, src string) (*ir.Module, *callgraph.Graph) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := irgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cg := callgraph.Build(m)
	modref.Run(m, cg)
	return m, cg
}

// TestConstantEditReplaysCachedNarrowing: the projection key excludes
// literal operands, so a constant-only edit must replay the cached
// module narrowing — marked Cached, with zero components solved — and
// the replayed IL must be byte-identical to solving the edited module
// from scratch.
func TestConstantEditReplaysCachedNarrowing(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		const funcs = 30
		base := testgen.Scale(testgen.ScaleOptions{Seed: seed, Funcs: funcs, Edit: -1})
		edited := testgen.Scale(testgen.ScaleOptions{Seed: seed, Funcs: funcs, Edit: funcs / 2})

		store := cache.NewStore()
		m0, cg0 := buildAnalyzed(t, base)
		cold := Solve(m0, cg0, store, Options{})
		if cold.Cached {
			t.Fatalf("seed %d: first solve cannot hit", seed)
		}

		mWarm, cgWarm := buildAnalyzed(t, edited)
		warm := Solve(mWarm, cgWarm, store, Options{})
		if !warm.Cached {
			t.Fatalf("seed %d: constant-only edit must replay the cached narrowing", seed)
		}
		if warm.Steps != cold.Steps {
			t.Fatalf("seed %d: replayed step count %d != recorded %d", seed, warm.Steps, cold.Steps)
		}

		mCold, cgCold := buildAnalyzed(t, edited)
		Solve(mCold, cgCold, nil, Options{})
		if ir.FormatModule(mWarm) != ir.FormatModule(mCold) {
			t.Fatalf("seed %d: replayed narrowing differs from scratch solve", seed)
		}
	}
}

// TestStructuralEditMissesAndMatchesScratch: an edit the solver can
// see (a changed address-of) must miss the projection cache, and the
// fresh solve must still agree with scratch.
func TestStructuralEditMissesAndMatchesScratch(t *testing.T) {
	baseSrc := `
int a;
int b;
int main(void) { int *p; p = &a; *p = 1; print_int(a + b); return 0; }
`
	editedSrc := `
int a;
int b;
int main(void) { int *p; p = &b; *p = 1; print_int(a + b); return 0; }
`
	store := cache.NewStore()
	m0, cg0 := buildAnalyzed(t, baseSrc)
	Solve(m0, cg0, store, Options{})

	mWarm, cgWarm := buildAnalyzed(t, editedSrc)
	warm := Solve(mWarm, cgWarm, store, Options{})
	if warm.Cached {
		t.Fatal("a structural pointer edit must not replay the old narrowing")
	}
	mCold, cgCold := buildAnalyzed(t, editedSrc)
	Solve(mCold, cgCold, nil, Options{})
	if ir.FormatModule(mWarm) != ir.FormatModule(mCold) {
		t.Fatal("post-miss solve differs from scratch")
	}
}

// TestFilteredMatchesUnfiltered: the liveness pre-filter is a pure
// optimization — propagating tag sets only for pointers that can
// still reach a dereference must leave every installed narrowing
// (pointer-op tag sets, pinned call targets) exactly as the
// unfiltered solve would.
func TestFilteredMatchesUnfiltered(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		src := testgen.Scale(testgen.ScaleOptions{Seed: seed, Funcs: 25, Edit: -1})
		mF, cgF := buildAnalyzed(t, src)
		Solve(mF, cgF, nil, Options{})
		mU, cgU := buildAnalyzed(t, src)
		Solve(mU, cgU, nil, Options{NoFilter: true})
		if ir.FormatModule(mF) != ir.FormatModule(mU) {
			t.Fatalf("seed %d: filtered and unfiltered narrowings differ", seed)
		}
	}
}
