package pointsto

import (
	"regpromo/internal/callgraph"
	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
)

// liveness is the interprocedural pointer-liveness pre-pass: two
// cheap bit-level fixpoints over the module that tell the solver
// which instructions can matter to the points-to solution.
//
// The forward pass computes pointer-bearing (pb) bits — a register,
// memory tag, or return value is pb when some chain of assignments,
// loads, stores, calls, and returns can carry an address (or function
// address) into it. The backward pass computes live (lv) bits — a
// value is live when it can reach a consumer the narrowing reads: the
// address operand of a pointer-based memory op or of an indirect
// call, or any flow into such a chain.
//
// An instruction is relevant when a pointer fact can both enter it
// (pb on its sources) and be observed beyond it (lv on its sinks).
// The solver skips irrelevant instructions entirely, so dead-pointer
// facts collapse to ⊥: integer-only code — the bulk of large modules
// — contributes nothing to the fixpoint, and the set of relevant
// instructions doubles as the module's cacheable projection
// (internal/analysis/cache). Exactness: every fact narrow() observes
// flows through live chains whose producers are all relevant, so
// filtered and unfiltered runs install byte-identical IL (the
// TestFilteredSolveMatchesUnfiltered property).
type liveness struct {
	pbRegs [][]bool
	pbTags []bool
	pbRets []bool
	lvRegs [][]bool
	lvTags []bool
	lvRets []bool
}

// computeLiveness runs both pre-fixpoints. Each is a monotone
// boolean lattice solved with the shared dataflow worklist kernel in
// module function order; bits only turn on, so both passes terminate
// after at most one function re-sweep per flipped input bit.
func computeLiveness(m *ir.Module, cg *callgraph.Graph) *liveness {
	nf := cg.NumFuncs()
	nt := m.Tags.Len()
	li := &liveness{
		pbRegs: make([][]bool, nf),
		pbTags: make([]bool, nt),
		pbRets: make([]bool, nf),
		lvRegs: make([][]bool, nf),
		lvTags: make([]bool, nt),
		lvRets: make([]bool, nf),
	}
	funcs := m.FuncsInOrder()
	for _, fn := range funcs {
		id := cg.ID(fn.Name)
		li.pbRegs[id] = make([]bool, fn.NumRegs)
		li.lvRegs[id] = make([]bool, fn.NumRegs)
	}

	// Dependency lists for precise re-queueing: callers (for
	// return/param bits) and per-tag scalar readers/writers; pointer
	// ops touch tag sets, so functions containing them re-sweep on
	// any tag flip.
	callers := make([][]callgraph.FuncID, nf)
	for id := range funcs {
		for _, c := range cg.CalleeIDs[id] {
			callers[c] = append(callers[c], callgraph.FuncID(id))
		}
	}
	tagScalarReaders := make([][]callgraph.FuncID, nt)
	tagScalarWriters := make([][]callgraph.FuncID, nt)
	var ptrLoadFuncs, ptrStoreFuncs []callgraph.FuncID
	for id, fn := range funcs {
		fid := callgraph.FuncID(id)
		hasPLoad, hasPStore := false, false
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case ir.OpSLoad, ir.OpCLoad:
					tagScalarReaders[b.Instrs[i].Tag] = append(tagScalarReaders[b.Instrs[i].Tag], fid)
				case ir.OpSStore:
					tagScalarWriters[b.Instrs[i].Tag] = append(tagScalarWriters[b.Instrs[i].Tag], fid)
				case ir.OpPLoad:
					hasPLoad = true
				case ir.OpPStore:
					hasPStore = true
				}
			}
		}
		if hasPLoad {
			ptrLoadFuncs = append(ptrLoadFuncs, fid)
		}
		if hasPStore {
			ptrStoreFuncs = append(ptrStoreFuncs, fid)
		}
	}

	// Seeds: static initializers with relocations plant addresses in
	// memory before any instruction runs.
	for _, init := range m.Inits {
		if len(init.Relocs) > 0 {
			li.pbTags[init.Tag] = true
		}
	}

	rank := make([]int, nf)
	for i := range rank {
		rank[i] = i
	}

	// Forward pass: pointer-bearing bits.
	li.solve(m, cg, rank, func(fid callgraph.FuncID, fn *ir.Func, push func(callgraph.FuncID)) {
		pushTag := func(t ir.TagID) {
			for _, r := range tagScalarReaders[t] {
				push(r)
			}
			for _, r := range ptrLoadFuncs {
				push(r)
			}
		}
		pb := li.pbRegs[fid]
		for changed := true; changed; {
			changed = false
			set := func(dst ir.Reg, v bool) {
				if v && !pb[dst] {
					pb[dst] = true
					changed = true
				}
			}
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Op {
					case ir.OpAddrOf:
						set(in.Dst, true)
					case ir.OpCopy:
						set(in.Dst, pb[in.A])
					case ir.OpAdd, ir.OpSub:
						set(in.Dst, pb[in.A] || pb[in.B])
					case ir.OpSLoad, ir.OpCLoad:
						set(in.Dst, li.pbTags[in.Tag])
					case ir.OpSStore:
						if pb[in.A] && !li.pbTags[in.Tag] {
							li.pbTags[in.Tag] = true
							changed = true
							pushTag(in.Tag)
						}
					case ir.OpPLoad:
						set(in.Dst, anyTag(in.Tags, li.pbTags))
					case ir.OpPStore:
						if pb[in.B] {
							forTags(in.Tags, len(li.pbTags), func(t ir.TagID) {
								if !li.pbTags[t] {
									li.pbTags[t] = true
									changed = true
									pushTag(t)
								}
							})
						}
					case ir.OpJsr:
						for _, name := range callTargets(m, in) {
							cid := cg.ID(name)
							if cid == callgraph.FuncInvalid {
								if name == "malloc" && in.HasValue && in.Dst != ir.RegInvalid {
									set(in.Dst, true)
								}
								continue
							}
							callee := m.Funcs[name]
							cpb := li.pbRegs[cid]
							for ai, arg := range in.Args {
								if ai >= len(callee.Params) {
									break
								}
								p := callee.Params[ai]
								if pb[arg] && !cpb[p] {
									cpb[p] = true
									push(cid)
								}
							}
							if in.HasValue && in.Dst != ir.RegInvalid {
								set(in.Dst, li.pbRets[cid])
							}
						}
					case ir.OpRet:
						if in.HasValue && in.A != ir.RegInvalid && pb[in.A] && !li.pbRets[fid] {
							li.pbRets[fid] = true
							for _, c := range callers[fid] {
								push(c)
							}
						}
					}
				}
			}
		}
	})

	// isParam marks each function's parameter registers: a live bit
	// reaching a parameter must re-sweep the callers that feed it.
	isParam := make([][]bool, nf)
	for id, fn := range funcs {
		ps := make([]bool, fn.NumRegs)
		for _, p := range fn.Params {
			ps[p] = true
		}
		isParam[id] = ps
	}

	// Backward pass: liveness bits, seeded at the consumers narrow()
	// reads (pointer-op addresses, indirect-call operands).
	li.solve(m, cg, rank, func(fid callgraph.FuncID, fn *ir.Func, push func(callgraph.FuncID)) {
		pushTag := func(t ir.TagID) {
			for _, w := range tagScalarWriters[t] {
				push(w)
			}
			for _, w := range ptrStoreFuncs {
				push(w)
			}
		}
		lv := li.lvRegs[fid]
		for changed := true; changed; {
			changed = false
			set := func(r ir.Reg, v bool) {
				if v && r != ir.RegInvalid && !lv[r] {
					lv[r] = true
					changed = true
					if isParam[fid][r] {
						for _, c := range callers[fid] {
							push(c)
						}
					}
				}
			}
			setTag := func(t ir.TagID, v bool) {
				if v && !li.lvTags[t] {
					li.lvTags[t] = true
					changed = true
					pushTag(t)
				}
			}
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Op {
					case ir.OpCopy:
						set(in.A, lv[in.Dst])
					case ir.OpAdd, ir.OpSub:
						set(in.A, lv[in.Dst])
						set(in.B, lv[in.Dst])
					case ir.OpSLoad, ir.OpCLoad:
						setTag(in.Tag, lv[in.Dst])
					case ir.OpSStore:
						set(in.A, li.lvTags[in.Tag])
					case ir.OpPLoad:
						set(in.A, true)
						if lv[in.Dst] {
							forTags(in.Tags, len(li.lvTags), func(t ir.TagID) { setTag(t, true) })
						}
					case ir.OpPStore:
						set(in.A, true)
						set(in.B, anyTag(in.Tags, li.lvTags))
					case ir.OpJsr:
						if in.Callee == "" {
							set(in.A, true)
						}
						dstLive := in.HasValue && in.Dst != ir.RegInvalid && lv[in.Dst]
						for _, name := range callTargets(m, in) {
							cid := cg.ID(name)
							if cid == callgraph.FuncInvalid {
								continue
							}
							callee := m.Funcs[name]
							clv := li.lvRegs[cid]
							for ai, arg := range in.Args {
								if ai >= len(callee.Params) {
									break
								}
								set(arg, clv[callee.Params[ai]])
							}
							if dstLive && !li.lvRets[cid] {
								li.lvRets[cid] = true
								push(cid)
							}
						}
					case ir.OpRet:
						if in.HasValue && in.A != ir.RegInvalid {
							set(in.A, li.lvRets[fid])
						}
					}
				}
			}
		}
	})

	return li
}

// solve drives one pass to interprocedural fixpoint on the shared
// dedup priority worklist: every function is seeded, and process
// re-queues exactly the functions whose cross-function inputs it
// changed (via its push callback).
func (li *liveness) solve(m *ir.Module, cg *callgraph.Graph, rank []int,
	process func(fid callgraph.FuncID, fn *ir.Func, push func(callgraph.FuncID))) {
	w := dataflow.NewWorklist(rank)
	funcs := m.FuncsInOrder()
	for i := range funcs {
		w.Push(i)
	}
	push := func(fid callgraph.FuncID) { w.Push(int(fid)) }
	for {
		id, ok := w.Pop()
		if !ok {
			return
		}
		process(callgraph.FuncID(id), funcs[id], push)
	}
}

// anyTag reports whether any member of the set has its bit on (⊤
// checks the whole table).
func anyTag(s ir.TagSet, bits []bool) bool {
	if s.IsTop() {
		for _, b := range bits {
			if b {
				return true
			}
		}
		return false
	}
	found := false
	s.ForEach(func(t ir.TagID) {
		if int(t) < len(bits) && bits[t] {
			found = true
		}
	})
	return found
}

// forTags applies f to every member (⊤ walks the whole table).
func forTags(s ir.TagSet, n int, f func(ir.TagID)) {
	if s.IsTop() {
		for t := 0; t < n; t++ {
			f(ir.TagID(t))
		}
		return
	}
	s.ForEach(func(t ir.TagID) {
		if int(t) < n {
			f(t)
		}
	})
}

// callTargets returns the possible callees of a call instruction:
// the direct callee, the points-to-refined target list, or every
// addressed function.
func callTargets(m *ir.Module, in *ir.Instr) []string {
	if in.Callee != "" {
		return []string{in.Callee}
	}
	if in.Targets != nil {
		return in.Targets
	}
	return m.AddressedFuncs
}

// relevant reports whether the solver must process the instruction: a
// pointer fact can enter it and escape to a live consumer. Pointer
// memory ops and calls are always relevant — narrow() reads their
// address operands and calls link the interprocedural flow. A nil
// receiver (liveness disabled) keeps every instruction the transfer
// functions understand.
func (li *liveness) relevant(fid callgraph.FuncID, in *ir.Instr) bool {
	if li == nil {
		switch in.Op {
		case ir.OpAddrOf, ir.OpCopy, ir.OpAdd, ir.OpSub, ir.OpSLoad, ir.OpCLoad,
			ir.OpSStore, ir.OpPLoad, ir.OpPStore, ir.OpJsr, ir.OpRet:
			return true
		}
		return false
	}
	pb, lv := li.pbRegs[fid], li.lvRegs[fid]
	switch in.Op {
	case ir.OpAddrOf:
		return lv[in.Dst]
	case ir.OpCopy:
		return pb[in.A] && lv[in.Dst]
	case ir.OpAdd, ir.OpSub:
		return (pb[in.A] || pb[in.B]) && lv[in.Dst]
	case ir.OpSLoad, ir.OpCLoad:
		return li.pbTags[in.Tag] && lv[in.Dst]
	case ir.OpSStore:
		return pb[in.A] && li.lvTags[in.Tag]
	case ir.OpPLoad, ir.OpPStore, ir.OpJsr:
		return true
	case ir.OpRet:
		return in.HasValue && in.A != ir.RegInvalid && pb[in.A] && li.lvRets[fid]
	}
	return false
}
