package cache

import (
	"testing"

	"regpromo/internal/ir"
)

func set(ids ...ir.TagID) ir.TagSet {
	var s ir.TagSet
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// TestHasherDeterministicAndSensitive: identical streams sum to
// identical keys; a one-word difference anywhere changes the key.
func TestHasherDeterministicAndSensitive(t *testing.T) {
	mk := func(v int64) Key {
		return NewHasher().Int(1).Str("alpha").Int(v).TagSet(set(3, 64)).Sum()
	}
	if mk(7) != mk(7) {
		t.Fatal("identical streams must hash identically")
	}
	if mk(7) == mk(8) {
		t.Fatal("differing streams must hash differently")
	}
}

// TestHasherStringBoundaries: length prefixes keep shifted
// concatenations apart — "ab"+"c" must not collide with "a"+"bc" —
// and string content past one word must still matter.
func TestHasherStringBoundaries(t *testing.T) {
	if NewHasher().Str("ab").Str("c").Sum() == NewHasher().Str("a").Str("bc").Sum() {
		t.Fatal("boundary shift collided")
	}
	long := "0123456789abcdef"
	if NewHasher().Str(long).Sum() == NewHasher().Str(long[:15]+"X").Sum() {
		t.Fatal("tail byte of a long string was ignored")
	}
}

// TestHasherOrderSensitive: the fold must not be commutative over the
// word stream.
func TestHasherOrderSensitive(t *testing.T) {
	if NewHasher().Int(1).Int(2).Sum() == NewHasher().Int(2).Int(1).Sum() {
		t.Fatal("hasher is order-insensitive")
	}
}

// TestHasherTagSetTop: the ⊤ set must hash unlike any finite set,
// including the empty one.
func TestHasherTagSetTop(t *testing.T) {
	top := NewHasher().TagSet(ir.TopSet()).Sum()
	if top == NewHasher().TagSet(ir.TagSet{}).Sum() || top == NewHasher().TagSet(set(0)).Sum() {
		t.Fatal("top set collided with a finite set")
	}
}

// TestStoreModRefRoundTrip: a put summary comes back equal, with the
// chained value key intact, and the returned sets are clones — a
// caller mutating its hit must not corrupt later hits.
func TestStoreModRefRoundTrip(t *testing.T) {
	s := NewStore()
	key := NewHasher().Int(1).Sum()
	mod, ref := set(1, 2), set(3)
	value := SummaryValue(mod, ref)
	s.PutModRef(key, mod, ref, value)

	e, ok := s.ModRef(key)
	if !ok || !e.Mod.Equal(mod) || !e.Ref.Equal(ref) || e.Value != value {
		t.Fatalf("round trip lost data: %+v ok=%v", e, ok)
	}
	e.Mod.Add(99)
	again, _ := s.ModRef(key)
	if again.Mod.Has(99) {
		t.Fatal("hit aliases the stored set")
	}
	if _, ok := s.ModRef(NewHasher().Int(2).Sum()); ok {
		t.Fatal("missing key reported present")
	}
}

// TestStoreFirstWriterWins: a second put under the same key must not
// replace the first — content addressing makes both writes equivalent,
// and keeping the first avoids churn under concurrent compiles.
func TestStoreFirstWriterWins(t *testing.T) {
	s := NewStore()
	key := NewHasher().Int(1).Sum()
	s.PutModRef(key, set(1), set(1), SummaryValue(set(1), set(1)))
	s.PutModRef(key, set(2), set(2), SummaryValue(set(2), set(2)))
	e, _ := s.ModRef(key)
	if !e.Mod.Equal(set(1)) {
		t.Fatalf("second writer replaced the first: %+v", e)
	}
	if mr, pts := s.Len(); mr != 1 || pts != 0 {
		t.Fatalf("Len = (%d, %d), want (1, 0)", mr, pts)
	}
}

// TestStoreNilSafe: every method on a nil store is a no-op miss, so
// uncached compiles need no branching at call sites.
func TestStoreNilSafe(t *testing.T) {
	var s *Store
	key := NewHasher().Int(1).Sum()
	s.PutModRef(key, set(1), set(1), key)
	s.PutPointsTo(key, &PointsToEntry{})
	if _, ok := s.ModRef(key); ok {
		t.Fatal("nil store hit")
	}
	if _, ok := s.PointsTo(key); ok {
		t.Fatal("nil store hit")
	}
	if mr, pts := s.Len(); mr != 0 || pts != 0 {
		t.Fatal("nil store non-empty")
	}
}

// TestStructuralHashIgnoresLiterals: the points-to projection must be
// blind to Imm/FImm (no pointer transfer reads them) but sensitive to
// every structural field the solver does read.
func TestStructuralHashIgnoresLiterals(t *testing.T) {
	base := ir.Instr{Op: ir.OpAdd, Dst: 1, A: 2, Imm: 10}
	hash := func(in ir.Instr) Key {
		h := NewHasher()
		HashInstrStructural(h, &in)
		return h.Sum()
	}
	edited := base
	edited.Imm = 999
	edited.FImm = 3.5
	if hash(base) != hash(edited) {
		t.Fatal("structural hash must ignore literal operands")
	}
	for name, mut := range map[string]func(*ir.Instr){
		"op":  func(in *ir.Instr) { in.Op = ir.OpSub },
		"dst": func(in *ir.Instr) { in.Dst = 7 },
		"a":   func(in *ir.Instr) { in.A = 7 },
		"tag": func(in *ir.Instr) { in.Tag = 4 },
	} {
		in := base
		mut(&in)
		if hash(base) == hash(in) {
			t.Fatalf("structural hash must be sensitive to %s", name)
		}
	}
}

// TestFuncBodyHashSeesLiterals: the MOD/REF body hash, by contrast,
// must change on a constant-only edit — the edited function's own
// component is re-solved, which is what keeps the summary cache
// honest without reasoning about literal flow.
func TestFuncBodyHashSeesLiterals(t *testing.T) {
	mk := func(imm int64) *ir.Func {
		return &ir.Func{
			Name:   "f",
			Blocks: []*ir.Block{{Instrs: []ir.Instr{{Op: ir.OpAdd, Dst: 1, A: 1, Imm: imm}}}},
		}
	}
	if FuncBodyHash(mk(1)) == FuncBodyHash(mk(2)) {
		t.Fatal("body hash must see literal operands")
	}
	if FuncBodyHash(mk(1)) != FuncBodyHash(mk(1)) {
		t.Fatal("body hash must be deterministic")
	}
}

// TestFuncProjectionHashSkipsIrrelevantOps: instructions outside the
// solver's vocabulary contribute only position shifts; an edit that
// swaps one irrelevant opcode for another at the same position with
// the same fields is invisible, while moving a relevant instruction
// to a different position is not.
func TestFuncProjectionHashSkipsIrrelevantOps(t *testing.T) {
	mk := func(filler ir.Op, pad int) *ir.Func {
		instrs := make([]ir.Instr, 0, pad+1)
		for i := 0; i < pad; i++ {
			instrs = append(instrs, ir.Instr{Op: filler, Dst: 9})
		}
		instrs = append(instrs, ir.Instr{Op: ir.OpAddrOf, Dst: 1, Tag: 2})
		return &ir.Func{Name: "f", Blocks: []*ir.Block{{Instrs: instrs}}}
	}
	if FuncProjectionHash(mk(ir.OpMul, 1)) != FuncProjectionHash(mk(ir.OpDiv, 1)) {
		t.Fatal("projection must ignore the content of irrelevant instructions")
	}
	if FuncProjectionHash(mk(ir.OpMul, 1)) == FuncProjectionHash(mk(ir.OpMul, 2)) {
		t.Fatal("projection must see a relevant instruction's position shift")
	}
}
