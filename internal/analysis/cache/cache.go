// Package cache is the content-addressed summary store behind
// incremental interprocedural analysis. A Store outlives any single
// compilation — the driver threads one through Config.AnalysisCache —
// and memoizes two kinds of analysis work:
//
//   - Per-SCC MOD/REF summaries, keyed by a hash of the component's
//     member bodies, the members' visible-tag sets, and the value
//     hashes of every callee component's summary. MOD/REF is
//     bottom-up compositional, so a component whose key is unchanged
//     has an unchanged summary and the fixpoint over it can be
//     skipped; editing one function re-solves only the components on
//     the dirty paths through the condensation
//     (callgraph.Graph.DirtySCCs describes the same frontier).
//
//   - The points-to narrowing for a whole module, keyed by a hash of
//     the module's pointer projection: every instruction the solver's
//     transfer functions understand, hashed structurally (no literal
//     operands — no pointer transfer reads them), plus the interface
//     data (parameters, initializers, addressed functions, the tag
//     table). Points-to is not compositional — argument facts flow
//     callers→callees while memory nodes are global — so the cache is
//     module-grained over the projection instead of per-SCC; because
//     the projection excludes literal operands and non-pointer
//     opcodes, any constant-only edit replays the cached narrowing
//     verbatim, skipping even the liveness pre-pass.
//
// Every key is salted with a hash of the full tag table. Tag ids are
// dense allocation-order indices, so an edit that adds or removes a
// declaration shifts every later id; the salt turns that into a clean
// whole-store miss (cold but correct) while keeping id-stable edits
// warm. Cached tag sets are cloned on every hit so no compilation can
// alias another's bits.
package cache

import (
	"encoding/binary"
	"math"
	"sync"

	"regpromo/internal/ir"
)

// Key is a 128-bit content hash. The store assumes no collisions, the
// standard content-addressing bet.
type Key [16]byte

// Hasher accumulates structured data into a Key: two independently
// seeded multiplicative lanes folded per 64-bit word, with the
// avalanche (splitmix64 finalization) deferred to Sum. A word-granular
// single-multiply mixer instead of a byte-granular standard hash
// matters here — warm runs hash every instruction in the module, so
// the hasher is the floor under warm re-analysis time. The
// construction is deterministic across processes (fixed seeds), which
// keeps cache behaviour reproducible for debugging. The zero value is
// not ready; use NewHasher.
type Hasher struct {
	a, b uint64
}

const (
	hashSeedA = 0x9E3779B97F4A7C15
	hashSeedB = 0xC2B2AE3D27D4EB4F
)

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on
// 64-bit words.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	return v
}

// NewHasher returns an empty hasher.
func NewHasher() *Hasher { return &Hasher{a: hashSeedA, b: hashSeedB} }

// word folds one 64-bit word into both lanes: xor-multiply in one,
// add-multiply in the other (both odd multipliers, so each step is a
// bijection of the lane state — no entropy is lost along the stream).
// One multiply per lane keeps the per-word cost minimal; the full
// avalanche is deferred to Sum. Multiplication makes the stream
// order-sensitive.
func (h *Hasher) word(v uint64) {
	h.a = (h.a ^ v) * 0x00000100000001B3 // FNV-64 prime
	h.b = (h.b + v) * hashSeedA
}

// Int folds one integer (any int-ish value widened to 64 bits).
func (h *Hasher) Int(v int64) *Hasher {
	h.word(uint64(v))
	return h
}

// Bytes folds a length-prefixed byte string, so concatenations cannot
// collide with shifted boundaries.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.word(uint64(len(b)))
	for len(b) >= 8 {
		h.word(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h.word(binary.LittleEndian.Uint64(tail[:]))
	}
	return h
}

// Str folds a length-prefixed string.
func (h *Hasher) Str(s string) *Hasher {
	h.word(uint64(len(s)))
	var tail [8]byte
	for len(s) >= 8 {
		copy(tail[:], s[:8])
		h.word(binary.LittleEndian.Uint64(tail[:]))
		s = s[8:]
	}
	if len(s) > 0 {
		tail = [8]byte{}
		copy(tail[:], s)
		h.word(binary.LittleEndian.Uint64(tail[:]))
	}
	return h
}

// Bool folds one bit.
func (h *Hasher) Bool(b bool) *Hasher {
	if b {
		return h.Int(1)
	}
	return h.Int(0)
}

// TagSet folds a tag set by value. The trimmed-words invariant makes
// the backing vector canonical, so folding the words hashes the set in
// O(tags/64) instead of O(tags).
func (h *Hasher) TagSet(s ir.TagSet) *Hasher {
	if s.IsTop() {
		return h.Int(-2)
	}
	w := s.Words()
	h.word(uint64(len(w)))
	for _, v := range w {
		h.word(v)
	}
	return h
}

// Key folds another key (for chaining callee summary hashes).
func (h *Hasher) Key(k Key) *Hasher {
	h.word(binary.LittleEndian.Uint64(k[:8]))
	h.word(binary.LittleEndian.Uint64(k[8:]))
	return h
}

// Sum finalizes the key, running the deferred avalanche over both
// lanes. The hasher stays usable (further writes extend the stream).
func (h *Hasher) Sum() Key {
	var k Key
	binary.LittleEndian.PutUint64(k[:8], mix64(mix64(h.a+hashSeedB)^h.b))
	binary.LittleEndian.PutUint64(k[8:], mix64(h.b^h.a))
	return k
}

// ModuleSalt hashes everything module-global the analyses read beside
// function bodies: the full tag table (ids, kinds, owners, sizes, and
// the AddrTaken/Strong/Recursive bits), the static initializers with
// their relocations, and the addressed-function list. Compute it
// after modref's demoteRecursiveLocals step so the Strong bits are in
// their analysis-time state.
func ModuleSalt(m *ir.Module) Key {
	h := NewHasher()
	h.Int(int64(m.Tags.Len()))
	for _, t := range m.Tags.All() {
		h.Int(int64(t.ID)).Str(t.Name).Int(int64(t.Kind)).Str(t.Func)
		h.Int(int64(t.Size)).Int(int64(t.Elem))
		h.Bool(t.AddrTaken).Bool(t.Strong).Bool(t.Recursive)
	}
	h.Int(int64(len(m.Inits)))
	for _, init := range m.Inits {
		h.Int(int64(init.Tag)).Bytes(init.Data)
		h.Int(int64(len(init.Relocs)))
		for _, rel := range init.Relocs {
			h.Int(int64(rel.Offset)).Int(int64(rel.Target)).Int(rel.Addend)
		}
	}
	h.Int(int64(len(m.AddressedFuncs)))
	for _, f := range m.AddressedFuncs {
		h.Str(f)
	}
	return h.Sum()
}

// HashInstr folds one instruction's analysis-relevant content: every
// semantic field except Mods and Refs, which are MOD/REF's own
// outputs (reinstalled on every run and never read by the analyses).
// Targets is included — it is points-to output, but it is MOD/REF
// *input* on the repeated run over the narrowed module.
func HashInstr(h *Hasher, in *ir.Instr) {
	h.Int(int64(in.Op)).Int(int64(in.Dst)).Int(int64(in.A)).Int(int64(in.B))
	h.Int(in.Imm)
	h.Int(int64(math.Float64bits(in.FImm)))
	h.Int(int64(in.Tag)).TagSet(in.Tags).Int(int64(in.Size))
	h.Str(in.Callee)
	h.Int(int64(len(in.Args)))
	for _, a := range in.Args {
		h.Int(int64(a))
	}
	h.Int(int64(in.Site)).Bool(in.HasValue).Bool(in.Synth)
	if in.Targets != nil {
		h.Int(int64(len(in.Targets)))
		for _, t := range in.Targets {
			h.Str(t)
		}
	} else {
		h.Int(-1)
	}
}

// FuncBodyHash hashes a function's interface and full instruction
// stream (per HashInstr). Block structure is folded as boundaries
// only: both analyses are flow-insensitive, but keeping the grouping
// in the stream is cheap and rules out degenerate collisions between
// differently-blocked bodies.
func FuncBodyHash(fn *ir.Func) Key {
	h := NewHasher()
	h.Str(fn.Name)
	h.Int(int64(len(fn.Params)))
	for _, p := range fn.Params {
		h.Int(int64(p))
	}
	h.Int(int64(len(fn.Blocks)))
	for _, b := range fn.Blocks {
		h.Int(int64(len(b.Instrs)))
		for i := range b.Instrs {
			HashInstr(h, &b.Instrs[i])
		}
	}
	return h.Sum()
}

// HashInstrStructural folds the subset of an instruction the points-to
// solver and its liveness pre-pass read: opcode, registers, tags,
// callee/argument linkage, and positions — everything in HashInstr
// except the Imm/FImm literal operands, which no pointer transfer
// function inspects (tag sets name symbols; offsets into an object
// never leave it). Keying the projection on this hash is what lets a
// constant-only edit replay the cached narrowing.
func HashInstrStructural(h *Hasher, in *ir.Instr) {
	h.Int(int64(in.Op)).Int(int64(in.Dst)).Int(int64(in.A)).Int(int64(in.B))
	h.Int(int64(in.Tag)).TagSet(in.Tags).Int(int64(in.Size))
	h.Str(in.Callee)
	h.Int(int64(len(in.Args)))
	for _, a := range in.Args {
		h.Int(int64(a))
	}
	h.Int(int64(in.Site)).Bool(in.HasValue)
	if in.Targets != nil {
		h.Int(int64(len(in.Targets)))
		for _, t := range in.Targets {
			h.Str(t)
		}
	} else {
		h.Int(-1)
	}
}

// SolverOp reports whether the points-to transfer functions (and the
// liveness pre-pass) understand the opcode. Instructions outside this
// set contribute nothing to any pointer fact, so the projection hash
// skips them — but their positions still shift the (block, index)
// coordinates of later relevant instructions, which the per-instruction
// position words in the projection capture.
func SolverOp(op ir.Op) bool {
	switch op {
	case ir.OpAddrOf, ir.OpCopy, ir.OpAdd, ir.OpSub, ir.OpSLoad, ir.OpCLoad,
		ir.OpSStore, ir.OpPLoad, ir.OpPStore, ir.OpJsr, ir.OpRet:
		return true
	}
	return false
}

// FuncProjectionHash hashes one function's points-to projection: its
// interface plus every solver-understood instruction, structurally
// (HashInstrStructural), with its (block, index) position. Module-level
// keys chain these per-function keys through the callgraph
// condensation.
func FuncProjectionHash(fn *ir.Func) Key {
	h := NewHasher()
	h.Str(fn.Name)
	h.Int(int64(len(fn.Params)))
	for _, p := range fn.Params {
		h.Int(int64(p))
	}
	for bi, b := range fn.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if !SolverOp(in.Op) {
				continue
			}
			h.Int(int64(bi)).Int(int64(ii))
			HashInstrStructural(h, in)
		}
	}
	return h.Sum()
}

// ModRefSummary is one component's cached MOD/REF summary: the shared
// member sets plus a value hash for chaining into caller keys.
type ModRefSummary struct {
	Mod, Ref ir.TagSet
	// Value hashes the summary's content; callers fold it into their
	// own keys, so a hit certifies the whole callee subtree unchanged.
	Value Key
}

// SummaryValue hashes a computed summary pair into its chaining key.
func SummaryValue(mod, ref ir.TagSet) Key {
	return NewHasher().TagSet(mod).TagSet(ref).Sum()
}

// PointsToEntry is the cached effect of one points-to run: everything
// narrow() writes into the IL, recorded positionally, plus the
// solver's deterministic step count for telemetry parity.
type PointsToEntry struct {
	Funcs []FuncNarrowing
	Steps int
}

// FuncNarrowing is the narrowing replay for one function, in module
// function order.
type FuncNarrowing struct {
	Name string
	Ops  []NarrowOp
}

// NarrowOp is one rewritten instruction: the final pointer-op tag set
// or the final indirect-call target list at (Block, Index).
type NarrowOp struct {
	Block, Index int
	Tags         ir.TagSet
	Targets      []string
}

// Store is the process-lifetime cache. All methods are safe for
// concurrent use; cached sets are cloned on the way out.
type Store struct {
	mu     sync.Mutex
	modref map[Key]ModRefSummary
	pts    map[Key]*PointsToEntry
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		modref: make(map[Key]ModRefSummary),
		pts:    make(map[Key]*PointsToEntry),
	}
}

// ModRef looks up a component summary. The returned sets are clones;
// callers may install them directly.
func (s *Store) ModRef(key Key) (ModRefSummary, bool) {
	if s == nil {
		return ModRefSummary{}, false
	}
	s.mu.Lock()
	e, ok := s.modref[key]
	s.mu.Unlock()
	if !ok {
		return ModRefSummary{}, false
	}
	return ModRefSummary{Mod: e.Mod.Clone(), Ref: e.Ref.Clone(), Value: e.Value}, true
}

// PutModRef records a freshly solved component summary. The store
// keeps its own clones.
func (s *Store) PutModRef(key Key, mod, ref ir.TagSet, value Key) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if _, ok := s.modref[key]; !ok {
		s.modref[key] = ModRefSummary{Mod: mod.Clone(), Ref: ref.Clone(), Value: value}
	}
	s.mu.Unlock()
}

// PointsTo looks up a whole-module narrowing by projection key.
func (s *Store) PointsTo(key Key) (*PointsToEntry, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.pts[key]
	s.mu.Unlock()
	return e, ok
}

// PutPointsTo records a solved module's narrowing. Entries are
// immutable once stored; the caller must not retain mutable aliases
// of the contained sets.
func (s *Store) PutPointsTo(key Key, e *PointsToEntry) {
	if s == nil || e == nil {
		return
	}
	s.mu.Lock()
	if _, ok := s.pts[key]; !ok {
		s.pts[key] = e
	}
	s.mu.Unlock()
}

// Len reports how many entries of each kind the store holds (for
// tests and diagnostics).
func (s *Store) Len() (modref, pointsto int) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.modref), len(s.pts)
}
