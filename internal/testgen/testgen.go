// Package testgen generates random, deterministic, terminating C
// programs in the compiler's subset. The programs exercise the
// features the optimizer reasons about — global scalars updated in
// loops, address-taken locals, arrays, pointer parameters, calls,
// nested control flow — while guaranteeing bounded loops, in-bounds
// indexing, and division only by nonzero constants, so that any
// behavioural difference between two compilations of the same program
// is a compiler bug, never undefined behaviour.
//
// Beyond whole-program generation (Program), the package exposes the
// program's removable units — every helper function and every
// top-level statement of a function body — to the differential
// tester's reducer (internal/difftest): Units counts them and
// ProgramKeep regenerates the program with an arbitrary subset
// omitted. Pruning never perturbs the random stream, so the units a
// caller keeps are textually identical to the full program's.
package testgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Program returns a random self-checking program for the seed. The
// program prints a checksum of all observable state before returning
// it from main.
func Program(seed int64) string {
	src, _ := generate(seed, nil)
	return src
}

// Units returns how many removable units — helper functions and
// top-level body statements — the seed's program contains. Unit
// indices are stable: they are assigned in generation order, which is
// fully determined by the seed.
func Units(seed int64) int {
	_, n := generate(seed, nil)
	return n
}

// ProgramKeep regenerates the seed's program including only the
// removable units accepted by keep (nil keeps everything). The
// surviving text is byte-identical to the corresponding parts of
// Program(seed); dropping a helper that is still called elsewhere
// yields a program that no longer compiles, which reducers treat as a
// rejected trial. Checksum plumbing, declarations, and array
// initialization are never pruned, so every candidate still prints
// its observable state.
func ProgramKeep(seed int64, keep func(int) bool) string {
	src, _ := generate(seed, keep)
	return src
}

func generate(seed int64, keep func(int) bool) (string, int) {
	g := &gen{
		rng:  rand.New(rand.NewSource(seed)),
		keep: keep,
	}
	return g.program(), g.units
}

type gen struct {
	rng  *rand.Rand
	sb   strings.Builder
	keep func(int) bool
	// units counts the removable units allocated so far; each helper
	// function and each top-level body statement takes one index.
	units int

	globals []string // global int scalars
	arrays  []string // global int arrays (all length arrayLen)
	funcs   []fnInfo
	depth   int
	loopVar int
}

// unitInto appends text to out unless the unit's index is pruned.
// Generation has already happened by the time unitInto runs, so
// pruning cannot perturb the random stream.
func (g *gen) unitInto(out *strings.Builder, text string) {
	u := g.units
	g.units++
	if g.keep == nil || g.keep(u) {
		out.WriteString(text)
	}
}

type fnInfo struct {
	name    string
	nParams int
	ptr     bool // first parameter is int*
}

const arrayLen = 16

func (g *gen) pick(n int) int { return g.rng.Intn(n) }

func (g *gen) program() string {
	nGlobals := 2 + g.pick(4)
	for i := 0; i < nGlobals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		fmt.Fprintf(&g.sb, "int %s = %d;\n", name, g.pick(100))
	}
	nArrays := 1 + g.pick(2)
	for i := 0; i < nArrays; i++ {
		name := fmt.Sprintf("arr%d", i)
		g.arrays = append(g.arrays, name)
		fmt.Fprintf(&g.sb, "int %s[%d];\n", name, arrayLen)
	}
	g.sb.WriteString("double fg;\n")
	g.sb.WriteString("char cbuf[16];\n")
	g.sb.WriteString("\n")

	nFuncs := 1 + g.pick(3)
	for i := 0; i < nFuncs; i++ {
		g.emitHelper(i)
	}
	g.emitMain()
	return g.sb.String()
}

// expr generates an int-valued expression from in-scope names
// (readable names include loop variables, which are never assigned).
func (g *gen) expr(scope []string, depth int) string {
	if depth <= 0 || g.pick(3) == 0 {
		switch g.pick(3) {
		case 0:
			return fmt.Sprint(g.pick(64))
		case 1:
			if len(scope) > 0 {
				return scope[g.pick(len(scope))]
			}
			return fmt.Sprint(g.pick(64))
		default:
			return g.globals[g.pick(len(g.globals))]
		}
	}
	a := g.expr(scope, depth-1)
	b := g.expr(scope, depth-1)
	switch g.pick(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("((%s * %s) & 4095)", a, b)
	case 3:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 4:
		return fmt.Sprintf("(%s | %s)", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s / %d)", a, 1+g.pick(7))
	default:
		arr := g.arrays[g.pick(len(g.arrays))]
		return fmt.Sprintf("%s[(%s) & %d]", arr, a, arrayLen-1)
	}
}

func (g *gen) cond(scope []string) string {
	ops := []string{"<", ">", "<=", ">=", "==", "!="}
	return fmt.Sprintf("(%s) %s (%s)",
		g.expr(scope, 1), ops[g.pick(len(ops))], g.expr(scope, 1))
}

// lvalue picks an assignable location.
func (g *gen) lvalue(scope []string) string {
	switch g.pick(3) {
	case 0:
		return g.globals[g.pick(len(g.globals))]
	case 1:
		if len(scope) > 0 {
			return scope[g.pick(len(scope))]
		}
		return g.globals[g.pick(len(g.globals))]
	default:
		arr := g.arrays[g.pick(len(g.arrays))]
		return fmt.Sprintf("%s[(%s) & %d]", arr, g.expr(scope, 1), arrayLen-1)
	}
}

// stmt generates one statement. writable lists the local names a
// statement may assign; readable additionally includes loop control
// variables, which must never be written or the loop could diverge.
func (g *gen) stmt(writable, readable []string, indent string, depth int) string {
	var sb strings.Builder
	switch g.pick(12) {
	case 0, 1, 2, 3:
		op := []string{"=", "+=", "-=", "^=", "|="}[g.pick(5)]
		fmt.Fprintf(&sb, "%s%s %s %s;\n", indent, g.lvalue(writable), op, g.expr(readable, 2))
	case 4:
		if depth > 0 {
			fmt.Fprintf(&sb, "%sif (%s) {\n", indent, g.cond(readable))
			sb.WriteString(g.stmt(writable, readable, indent+"\t", depth-1))
			if g.pick(2) == 0 {
				fmt.Fprintf(&sb, "%s} else {\n", indent)
				sb.WriteString(g.stmt(writable, readable, indent+"\t", depth-1))
			}
			fmt.Fprintf(&sb, "%s}\n", indent)
		} else {
			fmt.Fprintf(&sb, "%s%s += 1;\n", indent, g.globals[g.pick(len(g.globals))])
		}
	case 5:
		if depth > 0 {
			lv := fmt.Sprintf("t%d", g.loopVar)
			g.loopVar++
			n := 2 + g.pick(6)
			fmt.Fprintf(&sb, "%s{ int %s; for (%s = 0; %s < %d; %s++) {\n",
				indent, lv, lv, lv, n, lv)
			innerRead := append(append([]string(nil), readable...), lv)
			sb.WriteString(g.stmt(writable, innerRead, indent+"\t", depth-1))
			if g.pick(2) == 0 {
				sb.WriteString(g.stmt(writable, innerRead, indent+"\t", depth-1))
			}
			fmt.Fprintf(&sb, "%s} }\n", indent)
		} else {
			fmt.Fprintf(&sb, "%s%s ^= 3;\n", indent, g.globals[g.pick(len(g.globals))])
		}
	case 6:
		// Call a helper if any exist.
		if len(g.funcs) > 0 {
			f := g.funcs[g.pick(len(g.funcs))]
			var args []string
			if f.ptr {
				switch g.pick(3) {
				case 0:
					args = append(args, "&"+g.globals[g.pick(len(g.globals))])
				case 1:
					arr := g.arrays[g.pick(len(g.arrays))]
					args = append(args, fmt.Sprintf("&%s[%d]", arr, g.pick(arrayLen)))
				default:
					if len(writable) > 0 {
						args = append(args, "&"+writable[g.pick(len(writable))])
					} else {
						args = append(args, "&"+g.globals[g.pick(len(g.globals))])
					}
				}
			}
			for len(args) < f.nParams {
				args = append(args, g.expr(readable, 1))
			}
			fmt.Fprintf(&sb, "%s%s += %s(%s);\n", indent,
				g.globals[g.pick(len(g.globals))], f.name, strings.Join(args, ", "))
		} else {
			fmt.Fprintf(&sb, "%s%s -= 2;\n", indent, g.globals[g.pick(len(g.globals))])
		}
	case 7:
		// Pointer dance through a local pointer.
		tgt := g.globals[g.pick(len(g.globals))]
		fmt.Fprintf(&sb, "%s{ int *p; p = &%s; *p = *p + %d; }\n", indent, tgt, 1+g.pick(9))
	case 8:
		// Bounded floating-point update: fg stays finite because the
		// decay factor dominates the bounded integer increment.
		fmt.Fprintf(&sb, "%sfg = fg * 0.25 + (%s);\n", indent, g.expr(readable, 1))
	case 9:
		// Character-array traffic (1-byte loads/stores, sign
		// extension at the boundary).
		fmt.Fprintf(&sb, "%scbuf[(%s) & 15] = (%s) & 127;\n",
			indent, g.expr(readable, 1), g.expr(readable, 1))
	default:
		fmt.Fprintf(&sb, "%s%s = %s;\n", indent, g.lvalue(writable), g.expr(readable, 2))
	}
	return sb.String()
}

func (g *gen) emitHelper(i int) {
	name := fmt.Sprintf("helper%d", i)
	ptr := g.pick(2) == 0
	nParams := 1 + g.pick(2)
	var params []string
	var scope []string
	if ptr {
		params = append(params, "int *p0")
	}
	for len(params) < nParams {
		p := fmt.Sprintf("a%d", len(params))
		params = append(params, "int "+p)
		scope = append(scope, p)
	}
	// The whole helper is a removable unit; claim its index before the
	// body statements claim theirs so function units precede the units
	// nested inside them.
	hu := g.units
	g.units++
	var hb strings.Builder
	fmt.Fprintf(&hb, "int %s(%s) {\n", name, strings.Join(params, ", "))
	fmt.Fprintf(&hb, "\tint v;\n\tv = %s;\n", g.expr(scope, 2))
	if ptr {
		fmt.Fprintf(&hb, "\t*p0 = (*p0 + v) & 8191;\n")
	}
	n := 1 + g.pick(3)
	for j := 0; j < n; j++ {
		g.unitInto(&hb, g.stmt(scope, scope, "\t", 1))
	}
	fmt.Fprintf(&hb, "\treturn (v & 255);\n}\n\n")
	if g.keep == nil || g.keep(hu) {
		g.sb.WriteString(hb.String())
	}
	g.funcs = append(g.funcs, fnInfo{name: name, nParams: nParams, ptr: ptr})
}

func (g *gen) emitMain() {
	g.sb.WriteString("int main(void) {\n")
	g.sb.WriteString("\tint i;\n\tint check;\n\tint local0;\n\tint local1;\n")
	g.sb.WriteString("\tlocal0 = 1;\n\tlocal1 = 2;\n")
	scope := []string{"local0", "local1"}
	// Initialize the arrays deterministically.
	for _, arr := range g.arrays {
		fmt.Fprintf(&g.sb, "\tfor (i = 0; i < %d; i++) %s[i] = i * 3 + 1;\n", arrayLen, arr)
	}
	n := 3 + g.pick(5)
	for j := 0; j < n; j++ {
		g.unitInto(&g.sb, g.stmt(scope, scope, "\t", 2))
	}
	// Checksum every observable location.
	g.sb.WriteString("\tcheck = local0 ^ local1;\n")
	for _, gl := range g.globals {
		fmt.Fprintf(&g.sb, "\tcheck = (check * 31 + %s) & 1048575;\n", gl)
	}
	for _, arr := range g.arrays {
		fmt.Fprintf(&g.sb, "\tfor (i = 0; i < %d; i++) check = (check * 31 + %s[i]) & 1048575;\n", arrayLen, arr)
	}
	g.sb.WriteString("\tfor (i = 0; i < 16; i++) check = (check * 31 + cbuf[i]) & 1048575;\n")
	g.sb.WriteString("\tcheck = (check + ((int)(fg * 8.0) & 4095)) & 1048575;\n")
	g.sb.WriteString("\tprint_int(check);\n")
	g.sb.WriteString("\treturn check & 127;\n}\n")
}
