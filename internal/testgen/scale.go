// Scale-profile generation: deterministic ~1000-function modules for
// the incremental-analysis bench tier. Where Program targets breadth
// of language features in a few dozen lines, Scale targets *shape* at
// scale — deep call chains through clustered helpers, shared globals,
// pointer parameters threaded down the chains, address-taken locals,
// bounded self-recursion, and heap sites — the structures whose
// interprocedural analysis cost the summary cache and the liveness
// filter attack. A single-function edit knob regenerates the same
// module with one arithmetic constant changed, leaving the tag table
// and callgraph identical: exactly the kind of recompile the warm
// path must turn into cache hits.

package testgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// ScaleOptions selects one scale-profile module.
type ScaleOptions struct {
	// Seed drives all generation randomness.
	Seed int64

	// Funcs is the number of helper functions (default 1000). The
	// emitted source is roughly 100 lines per helper.
	Funcs int

	// Edit, when in [0, Funcs), perturbs one arithmetic constant in
	// the body of helper Edit. The edited module has an identical tag
	// table, callgraph, and function set — only that one body hash
	// changes — so it models the minimal recompile after a one-line
	// edit. Negative means no edit.
	Edit int
}

// scaleClusterSize is how many helpers share one cluster (its globals
// and its call chain).
const scaleClusterSize = 20

// scaleGlobalPtrs is how many module-wide pointer cells the profile
// declares (GP0..). Each is a global points-to merge node.
const scaleGlobalPtrs = 4

// ScaleFuncName returns the name of helper i, as emitted by Scale —
// the unit callers pass to callgraph.DirtySCCs when helper i is the
// edited function.
func ScaleFuncName(i int) string { return fmt.Sprintf("f%04d", i) }

// Scale emits the scale-profile program for the options. Generation
// is deterministic in (Seed, Funcs); Edit only rewrites one emitted
// constant and never perturbs the random stream, so the edited and
// unedited programs differ in exactly one line.
func Scale(o ScaleOptions) string {
	if o.Funcs <= 0 {
		o.Funcs = 1000
	}
	g := &scaleGen{
		rng:   rand.New(rand.NewSource(o.Seed)),
		funcs: o.Funcs,
		edit:  o.Edit,
	}
	return g.program()
}

type scaleGen struct {
	rng   *rand.Rand
	funcs int
	edit  int
	sb    strings.Builder
}

func (g *scaleGen) pick(n int) int { return g.rng.Intn(n) }

// clusterOf returns the cluster index and the in-cluster position of
// helper i.
func clusterOf(i int) (ci, j int) { return i / scaleClusterSize, i % scaleClusterSize }

func (g *scaleGen) numClusters() int {
	return (g.funcs + scaleClusterSize - 1) / scaleClusterSize
}

// hasPtr reports whether helper i takes an int* first parameter.
// Two in three do: the profile is deliberately pointer-dense so the
// cold points-to fixpoint has real work for the warm path to skip.
func hasPtr(i int) bool { _, j := clusterOf(i); return j%3 != 0 }

func (g *scaleGen) program() string {
	// Shared module globals: every cluster reads and writes these, so
	// MOD/REF summaries are non-trivial all the way up the callgraph.
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&g.sb, "int G%d = %d;\n", i, g.pick(100))
	}
	// fuel bounds the total dynamic call count: the static call DAG is
	// ~Funcs deep with cross edges, and every helper burns one unit
	// and stops calling when the tank is empty, so execution stays
	// small no matter how the static structure grows.
	g.sb.WriteString("int fuel;\n")
	// Module-wide pointer cells: every pointer function stores its
	// accumulated pointer into one and loads another back, so each cell
	// is a points-to merge node joining tags from the whole module.
	// These are what give the cold fixpoint real interprocedural work —
	// a single function's contribution re-queues every reader.
	for i := 0; i < scaleGlobalPtrs; i++ {
		fmt.Fprintf(&g.sb, "int *GP%d;\n", i)
	}
	for ci := 0; ci < g.numClusters(); ci++ {
		fmt.Fprintf(&g.sb, "int c%dg0 = %d;\nint c%dg1 = %d;\nint c%dg2 = %d;\n",
			ci, g.pick(64), ci, g.pick(64), ci, g.pick(64))
		fmt.Fprintf(&g.sb, "int c%darr[16];\n", ci)
		// Per-cluster pointer cell: a merge node local to the cluster's
		// chain.
		fmt.Fprintf(&g.sb, "int *c%dgp;\n", ci)
	}
	g.sb.WriteString("\n")
	for i := 0; i < g.funcs; i++ {
		g.emitScaleFunc(i)
	}
	g.emitScaleMain()
	return g.sb.String()
}

func (g *scaleGen) emitScaleFunc(i int) {
	ci, j := clusterOf(i)
	name := ScaleFuncName(i)
	ptr := hasPtr(i)
	cg := func(k int) string { return fmt.Sprintf("c%dg%d", ci, k) }
	arr := fmt.Sprintf("c%darr", ci)

	if ptr {
		fmt.Fprintf(&g.sb, "int %s(int *p, int n) {\n", name)
	} else {
		fmt.Fprintf(&g.sb, "int %s(int n) {\n", name)
	}
	g.sb.WriteString("\tint v;\n\tint w;\n\tint x;\n\tint t;\n")
	if ptr {
		// The locs are address-taken: their tags join the points-to
		// sets flowing down the cluster's call chain and into the
		// module's pointer cells.
		g.sb.WriteString("\tint loc0;\n\tint loc1;\n\tint loc2;\n\tint *q;\n\tint *r;\n")
	}

	// The edit knob: the one line ScaleOptions.Edit rewrites.
	k := g.pick(1024)
	if i == g.edit {
		k++
	}
	fmt.Fprintf(&g.sb, "\tv = (n + %d) & 4095;\n", k)
	g.sb.WriteString("\tw = v ^ 3;\n\tx = n & 255;\n")

	if ptr {
		g.sb.WriteString("\tloc0 = v & 63;\n\tloc1 = w & 63;\n\tloc2 = x & 63;\n")
		g.sb.WriteString("\t*p = (*p + v) & 8191;\n")
		g.sb.WriteString("\tv = (v + *p) & 4095;\n")
		// q points to either the caller's target set or a local, so
		// the sets threaded to callees keep growing down the chain.
		g.sb.WriteString("\tif (n & 1) { q = p; } else { q = &loc0; }\n")
		g.sb.WriteString("\tif (n & 2) { q = &loc1; }\n")
		g.sb.WriteString("\t*q = (*q + w) & 8191;\n")
		// Publish the accumulated pointer into the cluster's and the
		// module's merge cells: every storer's contribution re-queues
		// every reader, which is where the cold fixpoint's
		// interprocedural iteration comes from.
		fmt.Fprintf(&g.sb, "\tif (n & 4) { c%dgp = q; } else { c%dgp = &loc2; }\n", ci, ci)
		fmt.Fprintf(&g.sb, "\tif (n & 8) { GP%d = q; } else { GP%d = &%s; }\n",
			g.pick(scaleGlobalPtrs), g.pick(scaleGlobalPtrs), cg(g.pick(3)))
		// Loads back through the cells. n stays small at run time, so
		// these derefs never execute (a cell may hold a dead frame's
		// local) — but they are statically live, and their target sets
		// span everything the module ever published.
		fmt.Fprintf(&g.sb, "\tif (n > 9999) { r = c%dgp; *r = (*r + v) & 8191; w = (w + *r) & 4095; }\n", ci)
		if j%5 == 2 {
			// Module-wide readers are rationed: every reader of a GP
			// cell re-fires per contribution to it, so a reader in
			// every function makes the cold solve quadratic-ish in the
			// module. One in five keeps it expensive, not explosive.
			fmt.Fprintf(&g.sb, "\tif (n > 9999) { r = GP%d; *r = (*r + w) & 8191; x = (x ^ *r) & 2047; }\n",
				g.pick(scaleGlobalPtrs))
		}
	}
	if ptr && j%7 == 3 {
		g.sb.WriteString("\t{ int *hm; hm = (int *) malloc(16); *hm = v; v = (v + *hm) & 4095; free(hm); }\n")
	}

	// Arithmetic filler over cluster and shared globals: bulk for the
	// scalar passes, dead weight the pointer liveness filter proves
	// irrelevant to points-to.
	nFill := 60 + g.pick(20)
	for s := 0; s < nFill; s++ {
		switch g.pick(7) {
		case 0:
			fmt.Fprintf(&g.sb, "\t%s = (%s + v * %d + G%d) & 8191;\n", cg(g.pick(3)), cg(g.pick(3)), 1+g.pick(7), g.pick(8))
		case 1:
			fmt.Fprintf(&g.sb, "\tv = (v ^ %s[(v + w) & 15]) + %s;\n", arr, cg(g.pick(3)))
		case 2:
			fmt.Fprintf(&g.sb, "\tw = (w + x * %d) & 4095;\n", 1+g.pick(9))
		case 3:
			fmt.Fprintf(&g.sb, "\tG%d = (G%d * 17 + %s) & 8191;\n", g.pick(8), g.pick(8), cg(g.pick(3)))
		case 4:
			fmt.Fprintf(&g.sb, "\t%s[(w + %d) & 15] = (v + G%d) & 1023;\n", arr, g.pick(16), g.pick(8))
		case 5:
			fmt.Fprintf(&g.sb, "\tx = (x | (v & %s)) & 2047;\n", cg(g.pick(3)))
		default:
			fmt.Fprintf(&g.sb, "\tif ((v & %d) == 0) { w = (w + %s) & 4095; } else { x = (x ^ G%d) & 2047; }\n",
				1+g.pick(7), cg(g.pick(3)), g.pick(8))
		}
	}
	fmt.Fprintf(&g.sb, "\tfor (t = 0; t < %d; t++) { v = (v + %s[t & 15]) & 4095; }\n", 2+g.pick(4), arr)

	// Call structure. Every call is guarded by fuel, which bounds the
	// dynamic call count while leaving the static DAG deep.
	if j == 1 {
		// One bounded self-recursive helper per cluster, so recursion
		// cycles (and their weak locals) exist at scale.
		var self string
		if ptr {
			self = fmt.Sprintf("%s(q, n - 1)", name)
		} else {
			self = fmt.Sprintf("%s(n - 1)", name)
		}
		fmt.Fprintf(&g.sb, "\tif (n > 0 && fuel > 0) { fuel -= 1; v = (v + %s) & 4095; }\n", self)
	}
	if j > 0 {
		g.emitScaleCall(i, i-1, ci)
	}
	if j >= 5 && j%5 == 0 {
		g.emitScaleCall(i, i-3, ci)
	}
	if j == 0 && ci > 0 {
		// Cross-cluster edge: the chain of cluster ci hands off to the
		// root of cluster ci-1, so the whole module is one deep DAG.
		g.emitScaleCall(i, ci*scaleClusterSize-1, ci)
	}
	g.sb.WriteString("\treturn (v + w + x) & 255;\n}\n\n")
}

// emitScaleCall emits a fuel-guarded call from helper i to helper
// callee (callee < i, so it is already defined).
func (g *scaleGen) emitScaleCall(i, callee, ci int) {
	var arg string
	if hasPtr(callee) {
		if hasPtr(i) {
			// Forward q: the callee sees everything p may target plus
			// this frame's loc.
			arg = "q, "
		} else {
			arg = fmt.Sprintf("&c%dg%d, ", ci, g.pick(3))
		}
	}
	fmt.Fprintf(&g.sb, "\tif (fuel > 0) { fuel -= 1; v = (v + %s(%sv & 255)) & 4095; }\n",
		ScaleFuncName(callee), arg)
}

func (g *scaleGen) emitScaleMain() {
	g.sb.WriteString("int main(void) {\n\tint i;\n\tint check;\n")
	fmt.Fprintf(&g.sb, "\tfuel = %d;\n", 4*g.funcs)
	for ci := 0; ci < g.numClusters(); ci++ {
		fmt.Fprintf(&g.sb, "\tfor (i = 0; i < 16; i++) c%darr[i] = i * %d + 1;\n", ci, 2+ci%5)
	}
	g.sb.WriteString("\tcheck = 0;\n")
	// Drive the top cluster's root (which chains through every
	// cluster until the fuel runs out) plus each cluster root
	// directly, so all clusters execute even with small fuel.
	for ci := g.numClusters() - 1; ci >= 0; ci-- {
		root := ci*scaleClusterSize + scaleClusterSize - 1
		if root >= g.funcs {
			root = g.funcs - 1
		}
		var arg string
		if hasPtr(root) {
			arg = fmt.Sprintf("&c%dg0, ", ci)
		}
		fmt.Fprintf(&g.sb, "\tcheck = (check * 31 + %s(%s%d)) & 1048575;\n",
			ScaleFuncName(root), arg, ci+1)
	}
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&g.sb, "\tcheck = (check * 31 + G%d) & 1048575;\n", i)
	}
	for ci := 0; ci < g.numClusters(); ci++ {
		fmt.Fprintf(&g.sb, "\tcheck = (check * 31 + c%dg0 + c%dg1 + c%dg2) & 1048575;\n", ci, ci, ci)
		fmt.Fprintf(&g.sb, "\tfor (i = 0; i < 16; i++) check = (check * 31 + c%darr[i]) & 1048575;\n", ci)
	}
	g.sb.WriteString("\tprint_int(check);\n")
	g.sb.WriteString("\treturn check & 127;\n}\n")
}
