package testgen

import (
	"testing"
	"testing/quick"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/interp"
)

func TestDeterministic(t *testing.T) {
	if Program(42) != Program(42) {
		t.Fatal("same seed must give the same program")
	}
	if Program(1) == Program(2) {
		t.Fatal("different seeds should give different programs")
	}
}

// TestGeneratedProgramsAreValid: every generated program parses,
// checks, lowers, runs to completion, and prints a checksum.
func TestGeneratedProgramsAreValid(t *testing.T) {
	count := 100
	if testing.Short() {
		count = 20
	}
	check := func(seed int64) bool {
		src := Program(seed)
		f, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Logf("parse: %v\n%s", err, src)
			return false
		}
		p, err := sema.Check(f)
		if err != nil {
			t.Logf("sema: %v\n%s", err, src)
			return false
		}
		m, err := irgen.Generate(p)
		if err != nil {
			t.Logf("irgen: %v\n%s", err, src)
			return false
		}
		res, err := interp.Run(m, interp.Options{MaxSteps: 10_000_000})
		if err != nil {
			t.Logf("run: %v\n%s", err, src)
			return false
		}
		if res.Output == "" {
			t.Log("no checksum printed")
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedProgramsAreReproducible: running the same program twice
// yields identical output (no hidden nondeterminism in the machine).
func TestGeneratedProgramsAreReproducible(t *testing.T) {
	src := Program(777)
	run := func() string {
		f, _ := parser.Parse("gen.c", src)
		p, _ := sema.Check(f)
		m, _ := irgen.Generate(p)
		res, err := interp.Run(m, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	if run() != run() {
		t.Fatal("nondeterministic execution")
	}
}
