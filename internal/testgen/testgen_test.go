package testgen

import (
	"strings"
	"testing"
	"testing/quick"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/interp"
)

func TestDeterministic(t *testing.T) {
	if Program(42) != Program(42) {
		t.Fatal("same seed must give the same program")
	}
	if Program(1) == Program(2) {
		t.Fatal("different seeds should give different programs")
	}
}

// TestProgramKeepAllIsProgram: pruning nothing must reproduce the
// full program byte for byte — pruning never perturbs generation.
func TestProgramKeepAllIsProgram(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if ProgramKeep(seed, func(int) bool { return true }) != Program(seed) {
			t.Fatalf("seed %d: keep-all differs from Program", seed)
		}
		if n := Units(seed); n < 4 {
			t.Fatalf("seed %d: only %d removable units", seed, n)
		}
	}
}

// TestProgramKeepNoneStillRuns: the never-pruned scaffolding
// (declarations, array initialization, checksum) must itself be a
// valid program, so every reducer candidate between "all" and "none"
// is structurally sound.
func TestProgramKeepNoneStillRuns(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := ProgramKeep(seed, func(int) bool { return false })
		f, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		p, err := sema.Check(f)
		if err != nil {
			t.Fatalf("seed %d: sema: %v\n%s", seed, err, src)
		}
		m, err := irgen.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: irgen: %v\n%s", seed, err, src)
		}
		res, err := interp.Run(m, interp.Options{MaxSteps: 10_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		if res.Output == "" {
			t.Fatalf("seed %d: scaffolding printed no checksum", seed)
		}
	}
}

// TestProgramKeepSubsetIsSubstring: a kept unit's text is identical
// to its text in the full program (removal only deletes, never
// rewrites).
func TestProgramKeepSubsetIsSubstring(t *testing.T) {
	seed := int64(9)
	full := Program(seed)
	n := Units(seed)
	for u := 0; u < n; u++ {
		drop := u
		src := ProgramKeep(seed, func(i int) bool { return i != drop })
		if len(src) > len(full) {
			t.Fatalf("seed %d: dropping unit %d grew the program", seed, u)
		}
		// Every line of the pruned program must appear in the full
		// one.
		fullLines := map[string]int{}
		for _, l := range strings.Split(full, "\n") {
			fullLines[l]++
		}
		for _, l := range strings.Split(src, "\n") {
			if fullLines[l] == 0 {
				t.Fatalf("seed %d: pruned program invented line %q", seed, l)
			}
			fullLines[l]--
		}
	}
}

// TestGeneratedProgramsAreValid: every generated program parses,
// checks, lowers, runs to completion, and prints a checksum.
func TestGeneratedProgramsAreValid(t *testing.T) {
	count := 100
	if testing.Short() {
		count = 20
	}
	check := func(seed int64) bool {
		src := Program(seed)
		f, err := parser.Parse("gen.c", src)
		if err != nil {
			t.Logf("parse: %v\n%s", err, src)
			return false
		}
		p, err := sema.Check(f)
		if err != nil {
			t.Logf("sema: %v\n%s", err, src)
			return false
		}
		m, err := irgen.Generate(p)
		if err != nil {
			t.Logf("irgen: %v\n%s", err, src)
			return false
		}
		res, err := interp.Run(m, interp.Options{MaxSteps: 10_000_000})
		if err != nil {
			t.Logf("run: %v\n%s", err, src)
			return false
		}
		if res.Output == "" {
			t.Log("no checksum printed")
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedProgramsAreReproducible: running the same program twice
// yields identical output (no hidden nondeterminism in the machine).
func TestGeneratedProgramsAreReproducible(t *testing.T) {
	src := Program(777)
	run := func() string {
		f, _ := parser.Parse("gen.c", src)
		p, _ := sema.Check(f)
		m, _ := irgen.Generate(p)
		res, err := interp.Run(m, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	if run() != run() {
		t.Fatal("nondeterministic execution")
	}
}
