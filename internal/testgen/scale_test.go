package testgen

import (
	"strings"
	"testing"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
)

func scaleModule(t *testing.T, o ScaleOptions) *ir.Module {
	t.Helper()
	src := Scale(o)
	f, err := parser.Parse("scale.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	m, err := irgen.Generate(p)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return m
}

func TestScaleDeterministic(t *testing.T) {
	o := ScaleOptions{Seed: 7, Funcs: 40, Edit: -1}
	if Scale(o) != Scale(o) {
		t.Fatal("same options must give the same program")
	}
	if Scale(o) == Scale(ScaleOptions{Seed: 8, Funcs: 40, Edit: -1}) {
		t.Fatal("different seeds should give different programs")
	}
}

// TestScaleEditOneLine: the edit knob changes exactly one line — the
// edited helper's constant — leaving declarations, every other
// function, and main untouched.
func TestScaleEditOneLine(t *testing.T) {
	base := Scale(ScaleOptions{Seed: 3, Funcs: 40, Edit: -1})
	for _, edit := range []int{0, 7, 39} {
		edited := Scale(ScaleOptions{Seed: 3, Funcs: 40, Edit: edit})
		bl := strings.Split(base, "\n")
		el := strings.Split(edited, "\n")
		if len(bl) != len(el) {
			t.Fatalf("edit %d: line count changed %d -> %d", edit, len(bl), len(el))
		}
		diff := 0
		for i := range bl {
			if bl[i] != el[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("edit %d: want exactly 1 changed line, got %d", edit, diff)
		}
	}
}

// TestScaleRuns: a reduced-size scale module parses, generates IL, and
// executes to a checksum within bounded steps (the fuel counter keeps
// the deep static call DAG cheap dynamically).
func TestScaleRuns(t *testing.T) {
	m := scaleModule(t, ScaleOptions{Seed: 11, Funcs: 60, Edit: -1})
	res, err := interp.Run(m, interp.Options{MaxSteps: 50_000_000})
	if err != nil {
		t.Fatalf("run: %v\n", err)
	}
	if res.Output == "" {
		t.Fatal("scale program printed no checksum")
	}
	// The edited variant must still run (semantics differ, structure
	// does not).
	m2 := scaleModule(t, ScaleOptions{Seed: 11, Funcs: 60, Edit: 12})
	if _, err := interp.Run(m2, interp.Options{MaxSteps: 50_000_000}); err != nil {
		t.Fatalf("edited run: %v", err)
	}
}

// TestScaleShape: the full-size profile hits its advertised scale —
// ~1000 functions and on the order of 100k source lines.
func TestScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	src := Scale(ScaleOptions{Seed: 1, Edit: -1})
	lines := strings.Count(src, "\n")
	if lines < 60_000 {
		t.Fatalf("scale profile too small: %d lines", lines)
	}
	if got := strings.Count(src, "\nint f"); got < 1000 {
		t.Fatalf("scale profile has %d helpers, want >= 1000", got)
	}
}
