package check

import (
	"fmt"

	"regpromo/internal/ir"
)

// runCFG checks graph-level hygiene the structural verifier leaves
// alone: block ids must be dense and unique (the dominator and
// dataflow kernels index arrays by them), every block must be
// reachable from the entry (passes call RemoveUnreachable after
// editing the graph), and each return must agree with the function's
// declared result arity.
func runCFG(c *Context) []Diag {
	var ds []Diag
	for _, fn := range c.Module.FuncsInOrder() {
		if fn.Entry == nil {
			continue // verify reports this
		}
		seen := make([]bool, len(fn.Blocks))
		for _, b := range fn.Blocks {
			if int(b.ID) < 0 || int(b.ID) >= len(fn.Blocks) || seen[b.ID] {
				ds = append(ds, Diag{Check: "cfg", Func: fn.Name, Block: b.Label, Index: -1,
					Msg: fmt.Sprintf("block id %d not dense/unique (Renumber needed)", b.ID)})
				continue
			}
			seen[b.ID] = true
		}
		reach := make(map[*ir.Block]bool, len(fn.Blocks))
		for _, b := range fn.ReachableBlocks() {
			reach[b] = true
		}
		for _, b := range fn.Blocks {
			if !reach[b] {
				ds = append(ds, Diag{Check: "cfg", Func: fn.Name, Block: b.Label, Index: -1, Msg: "unreachable block"})
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpRet {
					continue
				}
				if in.HasValue && !fn.HasVarRet {
					ds = append(ds, Diag{Check: "cfg", Func: fn.Name, Block: b.Label, Index: i, Op: in.Op,
						Msg: "returns a value from a function declared without one"})
				} else if !in.HasValue && fn.HasVarRet {
					ds = append(ds, Diag{Check: "cfg", Func: fn.Name, Block: b.Label, Index: i, Op: in.Op,
						Msg: "returns no value from a function declared with one"})
				}
			}
		}
	}
	return ds
}

// denseIDs reports whether fn's block ids are dense and unique, the
// precondition for dataflow.SolveBlocks. The cfg lint diagnoses the
// violation; other passes use this to skip such functions safely.
func denseIDs(fn *ir.Func) bool {
	seen := make([]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		if int(b.ID) < 0 || int(b.ID) >= len(fn.Blocks) || seen[b.ID] {
			return false
		}
		seen[b.ID] = true
	}
	return true
}
