package check

import (
	"fmt"

	"regpromo/internal/analysis/certify"
)

// runCertify re-proves every promotion certificate in the context
// with the independent verifier. Only refuted obligations become
// diagnostics; certificates the oracle merely cannot re-establish
// (Unproven) are counted in metrics but stay silent — the sharper
// interprocedural analyses may legitimately know more.
func runCertify(c *Context) []Diag {
	if len(c.Regions) == 0 {
		return nil
	}
	return certify.Verify(c.Module, c.Regions).Diags
}

// runPressure reports the promotion sites the driver's static
// pressure measurement found over budget. Advisory: the IL is
// correct, but the allocator will have to spill inside the loop, so
// the promotion is likely a pessimization (the paper's water case).
func runPressure(c *Context) []Diag {
	var ds []Diag
	for i := range c.Pressure {
		p := &c.Pressure[i]
		if !p.OverBudget {
			continue
		}
		ds = append(ds, Diag{
			Check: "pressure", Func: p.Func, Block: p.Pad, Index: -1,
			Msg: fmt.Sprintf("promotion site holds %d promoted value(s) and its worst boundary has %d live registers against a budget of %d — expect spilling in the loop", p.Values, p.MaxLiveAll, p.Limit),
		})
	}
	return ds
}
