package check_test

import (
	"strings"
	"testing"

	"regpromo/internal/analysis/certify"
	"regpromo/internal/check"
	"regpromo/internal/ir"
	"regpromo/internal/opt/promote"
)

// mkMain builds a minimal well-formed module — one function "main"
// returning a value — and hands its entry block to the test for
// corruption. The entry terminator (ret r0, with r0 defined) is
// appended after build runs, so tests prepend their bad instructions.
func mkMain(build func(m *ir.Module, fn *ir.Func, entry *ir.Block)) *ir.Module {
	m := ir.NewModule()
	fn := &ir.Func{Name: "main", HasVarRet: true}
	entry := fn.NewBlock("")
	fn.Entry = entry
	m.AddFunc(fn)
	build(m, fn, entry)
	r := fn.NewReg()
	entry.Instrs = append(entry.Instrs,
		ir.Instr{Op: ir.OpLoadI, Dst: r, Imm: 0},
		ir.Instr{Op: ir.OpRet, A: r, HasValue: true})
	return m
}

// runPass runs one named pass from the registry over a fresh context.
func runPass(t *testing.T, name string, ctx *check.Context) []check.Diag {
	t.Helper()
	for _, p := range check.Passes() {
		if p.Name == name {
			return p.Run(ctx)
		}
	}
	t.Fatalf("no pass named %q in the registry", name)
	return nil
}

// wantDiag asserts exactly one diagnostic whose check and message
// match, and that its provenance names the function.
func wantDiag(t *testing.T, ds []check.Diag, checkName, msgPart string) {
	t.Helper()
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics %v, want 1", len(ds), ds)
	}
	d := ds[0]
	if d.Check != checkName {
		t.Errorf("check = %q, want %q", d.Check, checkName)
	}
	if !strings.Contains(d.Msg, msgPart) {
		t.Errorf("msg = %q, want substring %q", d.Msg, msgPart)
	}
	if d.Func != "main" {
		t.Errorf("func = %q, want main", d.Func)
	}
	if !strings.HasPrefix(d.String(), "[") || !strings.Contains(d.String(), checkName) {
		t.Errorf("stable string form broken: %q", d.String())
	}
}

func TestUseBeforeDef(t *testing.T) {
	m := mkMain(func(_ *ir.Module, fn *ir.Func, entry *ir.Block) {
		// r1 = copy r0 with r0 never defined anywhere (and not a
		// parameter): no definition may reach the use.
		a, b := fn.NewReg(), fn.NewReg()
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpCopy, Dst: b, A: a})
	})
	ds := runPass(t, "uninit", &check.Context{Module: m})
	wantDiag(t, ds, "uninit", "no definition reaches")
}

func TestUseBeforeDefMayReachIsQuiet(t *testing.T) {
	// A definition on only ONE path is may-reach: the lint must stay
	// quiet (it reports only uses no definition can ever reach).
	m := ir.NewModule()
	fn := &ir.Func{Name: "main", HasVarRet: true}
	entry := fn.NewBlock("")
	left := fn.NewBlock("")
	join := fn.NewBlock("")
	fn.Entry = entry
	m.AddFunc(fn)
	c, v := fn.NewReg(), fn.NewReg()
	entry.Instrs = []ir.Instr{
		{Op: ir.OpLoadI, Dst: c, Imm: 1},
		{Op: ir.OpCBr, A: c},
	}
	ir.AddEdge(entry, left)
	ir.AddEdge(entry, join)
	left.Instrs = []ir.Instr{{Op: ir.OpLoadI, Dst: v, Imm: 7}, {Op: ir.OpBr}}
	ir.AddEdge(left, join)
	join.Instrs = []ir.Instr{{Op: ir.OpRet, A: v, HasValue: true}}
	if ds := runPass(t, "uninit", &check.Context{Module: m}); len(ds) != 0 {
		t.Fatalf("may-reach definition flagged: %v", ds)
	}
}

func TestUnreachableBlock(t *testing.T) {
	m := mkMain(func(_ *ir.Module, fn *ir.Func, entry *ir.Block) {
		dead := fn.NewBlock("")
		dead.Instrs = []ir.Instr{{Op: ir.OpBr}}
		ir.AddEdge(dead, entry)
	})
	ds := runPass(t, "cfg", &check.Context{Module: m})
	wantDiag(t, ds, "cfg", "unreachable block")
}

func TestDanglingBranchTarget(t *testing.T) {
	// A successor edge into a block that is not in the function is the
	// structural verifier's job; check.Module must return only the
	// verifier's diagnostics (deeper passes would chase the breakage).
	stray := &ir.Block{ID: 0, Label: "stray"}
	stray.Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}}
	m := mkMain(func(_ *ir.Module, fn *ir.Func, entry *ir.Block) {
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpBr})
		ir.AddEdge(entry, stray)
	})
	ds := check.Module(&check.Context{Module: m})
	if len(ds) == 0 {
		t.Fatal("dangling branch target accepted")
	}
	for _, d := range ds {
		if d.Check != "verify" {
			t.Errorf("non-verify diag %v leaked past a broken module", d)
		}
	}
}

func TestBadCallArity(t *testing.T) {
	m := mkMain(func(m *ir.Module, fn *ir.Func, entry *ir.Block) {
		f := &ir.Func{Name: "f"}
		p := f.NewReg()
		f.Params = []ir.Reg{p}
		fb := f.NewBlock("")
		f.Entry = fb
		fb.Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}}
		m.AddFunc(f)
		// Call f() with no arguments; f wants one.
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpJsr, Callee: "f", Dst: ir.RegInvalid})
	})
	ds := runPass(t, "arity", &check.Context{Module: m})
	wantDiag(t, ds, "arity", "with 0 args, want 1")
}

func TestBadIntrinsicArity(t *testing.T) {
	m := mkMain(func(_ *ir.Module, fn *ir.Func, entry *ir.Block) {
		a, b := fn.NewReg(), fn.NewReg()
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpLoadI, Dst: a, Imm: 1},
			ir.Instr{Op: ir.OpLoadI, Dst: b, Imm: 2},
			ir.Instr{Op: ir.OpJsr, Callee: "print_int", Args: []ir.Reg{a, b}, Dst: ir.RegInvalid})
	})
	ds := runPass(t, "arity", &check.Context{Module: m})
	wantDiag(t, ds, "arity", "with 2 args, want 1")
}

func TestInvalidTagRange(t *testing.T) {
	// A tag id outside the TagTable is structural: the verifier owns
	// it, and via the registry it is the only report.
	m := mkMain(func(_ *ir.Module, fn *ir.Func, entry *ir.Block) {
		r := fn.NewReg()
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpSLoad, Dst: r, Tag: 99, Size: 8})
	})
	ds := check.Module(&check.Context{Module: m})
	wantDiag(t, ds, "verify", "tag")
}

func TestScalarAccessToHeapTag(t *testing.T) {
	m := mkMain(func(m *ir.Module, fn *ir.Func, entry *ir.Block) {
		h := m.Tags.NewTag("heap@1", ir.TagHeap, "", 8, 8)
		r := fn.NewReg()
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpSLoad, Dst: r, Tag: h.ID, Size: 8})
	})
	ds := runPass(t, "tags", &check.Context{Module: m})
	wantDiag(t, ds, "tags", "scalar access to heap tag")
}

func TestTopSetSurvivesAnalysis(t *testing.T) {
	m := mkMain(func(_ *ir.Module, fn *ir.Func, entry *ir.Block) {
		a, r := fn.NewReg(), fn.NewReg()
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpLoadI, Dst: a, Imm: 0},
			ir.Instr{Op: ir.OpPLoad, Dst: r, A: a, Size: 8, Tags: ir.TopSet()})
	})
	// Before analysis ⊤ is the legal conservative answer…
	if ds := runPass(t, "tags", &check.Context{Module: m}); len(ds) != 0 {
		t.Fatalf("pre-analysis ⊤ flagged: %v", ds)
	}
	// …after analysis it must have been narrowed.
	ds := runPass(t, "tags", &check.Context{Module: m, AnalysisDone: true})
	wantDiag(t, ds, "tags", "⊤ tag set survives")
}

func TestResidualPromotedAccess(t *testing.T) {
	var region promote.Region
	m := mkMain(func(m *ir.Module, fn *ir.Func, entry *ir.Block) {
		g := m.Tags.NewTag("g", ir.TagGlobal, "", 8, 8)
		r := fn.NewReg()
		// A load of the promoted tag left behind inside the region
		// body — exactly what promotion must have rewritten away.
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpSLoad, Dst: r, Tag: g.ID, Size: 8})
		region = promote.Region{Func: "main", Tag: g.ID, Body: []*ir.Block{entry}}
	})
	ds := runPass(t, "promoted", &check.Context{Module: m, Regions: []promote.Region{region}})
	wantDiag(t, ds, "promoted", "survives inside its region")
}

func TestSpillCodeInsideRegionBody(t *testing.T) {
	var region promote.Region
	m := mkMain(func(m *ir.Module, fn *ir.Func, entry *ir.Block) {
		g := m.Tags.NewTag("g", ir.TagGlobal, "", 8, 8)
		r := fn.NewReg()
		// Synth spill code is legal only at region boundaries, never
		// inside the body.
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpSLoad, Dst: r, Tag: g.ID, Size: 8, Synth: true})
		region = promote.Region{Func: "main", Tag: g.ID, Body: []*ir.Block{entry}}
	})
	ds := runPass(t, "promoted", &check.Context{Module: m, Regions: []promote.Region{region}})
	wantDiag(t, ds, "promoted", "spill code")
}

func TestCallTouchingPromotedTag(t *testing.T) {
	var region promote.Region
	m := mkMain(func(m *ir.Module, fn *ir.Func, entry *ir.Block) {
		g := m.Tags.NewTag("g", ir.TagGlobal, "", 8, 8)
		f := &ir.Func{Name: "f"}
		fb := f.NewBlock("")
		f.Entry = fb
		fb.Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}}
		m.AddFunc(f)
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpJsr, Callee: "f", Dst: ir.RegInvalid, Mods: ir.NewTagSet(g.ID)})
		region = promote.Region{Func: "main", Tag: g.ID, Body: []*ir.Block{entry}}
	})
	ds := runPass(t, "promoted", &check.Context{Module: m, Regions: []promote.Region{region}})
	wantDiag(t, ds, "promoted", "call may touch promoted")
}

// TestPressureLintFlagsOverBudgetSite: the advisory pressure pass
// turns each over-budget measurement in the context into one
// diagnostic anchored at the site's landing pad, and stays quiet for
// sites within budget.
func TestPressureLintFlagsOverBudgetSite(t *testing.T) {
	m := mkMain(func(_ *ir.Module, _ *ir.Func, _ *ir.Block) {})
	ctx := &check.Context{Module: m, Pressure: []certify.Pressure{
		{Func: "main", Pad: "pad0", Values: 4, MaxLive: 4, MaxLiveAll: 20, Limit: 32},
		{Func: "main", Pad: "pad1", Values: 28, MaxLive: 28, MaxLiveAll: 80, Limit: 32, OverBudget: true},
	}}
	var ds []check.Diag
	for _, p := range check.Advisory() {
		if p.Name == "pressure" {
			ds = p.Run(ctx)
		}
	}
	wantDiag(t, ds, "pressure", "expect spilling in the loop")
	if ds[0].Block != "pad1" || ds[0].Index != -1 {
		t.Errorf("provenance = %s#%d, want pad1#-1", ds[0].Block, ds[0].Index)
	}
}

// TestSelectedRunsOnlyRequestedPasses: Selected must run exactly the
// named passes — core and advisory alike — in registry order
// regardless of request order, and leave the rest silent.
func TestSelectedRunsOnlyRequestedPasses(t *testing.T) {
	// One module carrying two latent faults for different passes: a
	// scalar access to a heap tag ("tags") and an over-budget pressure
	// site ("pressure"). "uninit" would stay quiet even if run.
	m := mkMain(func(m *ir.Module, fn *ir.Func, entry *ir.Block) {
		h := m.Tags.NewTag("heap@1", ir.TagHeap, "", 8, 8)
		r := fn.NewReg()
		entry.Instrs = append(entry.Instrs,
			ir.Instr{Op: ir.OpSLoad, Dst: r, Tag: h.ID, Size: 8})
	})
	ctx := &check.Context{Module: m, Pressure: []certify.Pressure{
		{Func: "main", Pad: "pad0", Values: 28, MaxLive: 28, MaxLiveAll: 80, Limit: 32, OverBudget: true},
	}}

	if ds := check.Selected(ctx, []string{"uninit"}); len(ds) != 0 {
		t.Errorf("unrequested faults reported: %v", ds)
	}
	ds := check.Selected(ctx, []string{"pressure", "tags"})
	if len(ds) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(ds), ds)
	}
	for i, want := range []string{"tags", "pressure"} {
		if ds[i].Check != want {
			t.Errorf("diag %d from %q, want %q (canonical order)", i, ds[i].Check, want)
		}
	}
}

// TestRegistryNamesAreStable pins the registry order tools and docs
// rely on.
func TestRegistryNamesAreStable(t *testing.T) {
	want := []string{"verify", "cfg", "uninit", "arity", "tags", "promoted", "certify"}
	ps := check.Passes()
	if len(ps) != len(want) {
		t.Fatalf("registry has %d passes, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("pass %d = %q, want %q", i, p.Name, want[i])
		}
		if p.Doc == "" {
			t.Errorf("pass %q has no doc line", p.Name)
		}
	}
	wantAdv := []string{"pressure"}
	adv := check.Advisory()
	if len(adv) != len(wantAdv) {
		t.Fatalf("advisory registry has %d passes, want %d", len(adv), len(wantAdv))
	}
	for i, p := range adv {
		if p.Name != wantAdv[i] {
			t.Errorf("advisory pass %d = %q, want %q", i, p.Name, wantAdv[i])
		}
		if p.Doc == "" {
			t.Errorf("advisory pass %q has no doc line", p.Name)
		}
	}
	for _, name := range append(append([]string(nil), want...), wantAdv...) {
		if _, ok := check.Named(name); !ok {
			t.Errorf("Named(%q) not found", name)
		}
	}
	if _, ok := check.Named("nope"); ok {
		t.Errorf("Named(\"nope\") unexpectedly found")
	}
}
