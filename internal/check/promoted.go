package check

import (
	"fmt"
	"sort"

	"regpromo/internal/ir"
	"regpromo/internal/opt/promote"
)

// runPromoted enforces the promotion invariant over the regions the
// promote pass recorded: inside a promoted region's body no memory
// operation or call may still touch the promoted location — every
// reference was rewritten into a register copy, and the only accesses
// promotion itself synthesized (the lifted load, the demotion stores)
// sit at the region boundary, outside the body. A violation means a
// later pass reintroduced an access, or promotion's rewrite missed
// one, either of which silently breaks the value-in-register
// assumption.
func runPromoted(c *Context) []Diag {
	if len(c.Regions) == 0 {
		return nil
	}
	byFunc := make(map[string][]promote.Region)
	for _, r := range c.Regions {
		byFunc[r.Func] = append(byFunc[r.Func], r)
	}
	var ds []Diag
	for _, fn := range c.Module.FuncsInOrder() {
		regions := byFunc[fn.Name]
		if len(regions) == 0 {
			continue
		}
		current := make(map[*ir.Block]bool, len(fn.Blocks))
		for _, b := range fn.Blocks {
			current[b] = true
		}
		for _, r := range regions {
			// The promoted location as a set: the single scalar tag,
			// or the pointer group's may-set.
			rset := r.Tags
			what := "pointer group " + setNames(&c.Module.Tags, rset)
			if r.Tag != ir.TagInvalid {
				rset = ir.NewTagSet(r.Tag)
				what = fmt.Sprintf("tag %q", c.Module.Tags.Get(r.Tag).Name)
			}
			// Later passes may merge or delete body blocks; only
			// blocks still in the function count, in a deterministic
			// order.
			body := make([]*ir.Block, 0, len(r.Body))
			for _, b := range r.Body {
				if current[b] {
					body = append(body, b)
				}
			}
			sort.Slice(body, func(i, j int) bool { return body[i].ID < body[j].ID })
			for _, b := range body {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					touches := false
					switch in.Op {
					case ir.OpSLoad, ir.OpCLoad, ir.OpSStore:
						touches = rset.Has(in.Tag)
					case ir.OpPLoad, ir.OpPStore:
						touches = in.Tags.Intersects(rset)
					case ir.OpJsr:
						touches = in.Mods.Intersects(rset) || in.Refs.Intersects(rset)
					}
					if !touches {
						continue
					}
					msg := fmt.Sprintf("access to promoted %s survives inside its region", what)
					if in.Synth {
						msg = fmt.Sprintf("promotion spill code for %s inside the region body (boundaries only)", what)
					} else if in.Op == ir.OpJsr {
						msg = fmt.Sprintf("call may touch promoted %s inside its region", what)
					}
					ds = append(ds, Diag{Check: "promoted", Func: fn.Name, Block: b.Label, Index: i, Op: in.Op, Msg: msg})
				}
			}
		}
	}
	return ds
}
