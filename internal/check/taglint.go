package check

import (
	"fmt"
	"strings"

	"regpromo/internal/analysis/pointsto"
	"regpromo/internal/ir"
)

// runTags enforces the Table-1 tag discipline: every memory operation
// names tags valid in the TagTable, scalar operations never touch
// heap storage (which has no static address), local and spill tags
// are only accessed by their owning function, allocation sites carry
// heap tags, and ⊤ appears only where the hierarchy permits — after
// interprocedural analysis, a pointer operation's tag set must have
// been limited to the visible set (⊤ may survive only in call
// summaries that absorb an unknown external), and every member of a
// limited set must be address-taken storage.
func runTags(c *Context) []Diag {
	m := c.Module
	tt := &m.Tags
	var ds []Diag
	var addrTaken ir.TagSet
	if c.AnalysisDone {
		addrTaken = pointsto.AddrTakenSet(m)
	}
	valid := func(t ir.TagID) bool { return t >= 0 && int(t) < tt.Len() }
	for _, fn := range m.FuncsInOrder() {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				diag := func(msg string, args ...any) {
					ds = append(ds, Diag{Check: "tags", Func: fn.Name, Block: b.Label, Index: i, Op: in.Op,
						Msg: fmt.Sprintf(msg, args...)})
				}
				// checkSet validates the members of a may-set
				// (pointer op Tags, call Mods/Refs).
				checkSet := func(what string, s ir.TagSet) {
					if s.IsTop() {
						return
					}
					s.ForEach(func(t ir.TagID) {
						if !valid(t) {
							diag("%s names tag %d outside the TagTable", what, t)
						}
					})
				}
				switch in.Op {
				case ir.OpCLoad, ir.OpSLoad, ir.OpSStore:
					if !valid(in.Tag) {
						break // verify reports the range violation
					}
					tag := tt.Get(in.Tag)
					if tag.Kind == ir.TagHeap {
						diag("scalar access to heap tag %q (heap storage has no static address)", tag.Name)
					}
					if (tag.Kind == ir.TagLocal || tag.Kind == ir.TagSpill) && tag.Func != fn.Name {
						diag("access to %s tag %q owned by %q", tag.Kind, tag.Name, tag.Func)
					}
				case ir.OpAddrOf:
					if in.Callee != "" || !valid(in.Tag) {
						break
					}
					tag := tt.Get(in.Tag)
					if tag.Kind == ir.TagHeap || tag.Kind == ir.TagSpill {
						diag("address of %s tag %q", tag.Kind, tag.Name)
					}
					if tag.Kind == ir.TagLocal && tag.Func != fn.Name {
						diag("address of local tag %q owned by %q", tag.Name, tag.Func)
					}
					if !tag.AddrTaken {
						diag("address of tag %q not marked AddrTaken", tag.Name)
					}
				case ir.OpPLoad, ir.OpPStore:
					if c.AnalysisDone {
						if in.Tags.IsTop() {
							diag("⊤ tag set survives interprocedural analysis")
						} else if !in.Tags.SubsetOf(addrTaken) {
							extra := in.Tags.Minus(addrTaken)
							diag("tag set includes storage whose address is never taken: %s", setNames(tt, extra))
						}
					}
					checkSet("pointer tag set", in.Tags)
				case ir.OpJsr:
					if in.Site != ir.TagInvalid {
						if !valid(in.Site) {
							diag("allocation site tag %d outside the TagTable", in.Site)
						} else if k := tt.Get(in.Site).Kind; k != ir.TagHeap {
							diag("allocation site carries %s tag %q, want heap", k, tt.Get(in.Site).Name)
						}
					}
					checkSet("MOD summary", in.Mods)
					checkSet("REF summary", in.Refs)
				}
			}
		}
	}
	return ds
}

// setNames renders a small tag set's member names for a diagnostic,
// truncating long sets.
func setNames(tt *ir.TagTable, s ir.TagSet) string {
	var names []string
	s.ForEach(func(t ir.TagID) {
		if len(names) >= 5 {
			return
		}
		if t >= 0 && int(t) < tt.Len() {
			names = append(names, tt.Get(t).Name)
		} else {
			names = append(names, fmt.Sprintf("#%d", t))
		}
	})
	out := strings.Join(names, ", ")
	if s.Len() > len(names) {
		out += ", …"
	}
	return out
}
