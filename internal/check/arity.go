package check

import (
	"fmt"

	"regpromo/internal/analysis/modref"
	"regpromo/internal/callgraph"
	"regpromo/internal/ir"
)

// runArity checks every call site's interface: direct calls against
// the defined callee's parameter list and result arity, intrinsic
// calls against the runtime's signature table, indirect-call target
// sets against the address-taken function list, and the callgraph's
// FuncID interning table against the module itself.
func runArity(c *Context) []Diag {
	m := c.Module
	cg := c.Graph()
	var ds []Diag
	addressed := make(map[string]bool, len(m.AddressedFuncs))
	for _, f := range m.AddressedFuncs {
		addressed[f] = true
	}
	for _, fn := range m.FuncsInOrder() {
		if cg.ID(fn.Name) == callgraph.FuncInvalid {
			ds = append(ds, Diag{Check: "arity", Func: fn.Name, Index: -1,
				Msg: "function missing from the callgraph FuncID table"})
		}
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				diag := func(msg string, args ...any) {
					ds = append(ds, Diag{Check: "arity", Func: fn.Name, Block: b.Label, Index: i, Op: in.Op,
						Msg: fmt.Sprintf(msg, args...)})
				}
				switch in.Op {
				case ir.OpJsr:
					if in.Callee != "" {
						checkCallee(m, in, in.Callee, false, diag)
					} else {
						for _, t := range in.Targets {
							if !addressed[t] {
								diag("indirect call target %q is never address-taken", t)
							}
							checkCallee(m, in, t, true, diag)
						}
					}
				case ir.OpAddrOf:
					if in.Callee == "" {
						break
					}
					if _, ok := m.Funcs[in.Callee]; !ok {
						diag("address of undefined function %q", in.Callee)
					} else if !addressed[in.Callee] {
						diag("%q has its address taken but is missing from AddressedFuncs", in.Callee)
					}
				}
			}
		}
	}
	return ds
}

// checkCallee validates one resolved callee of a call site: a defined
// function, a runtime intrinsic, or (a violation) neither.
func checkCallee(m *ir.Module, in *ir.Instr, name string, indirect bool, diag func(string, ...any)) {
	kind := "call to"
	if indirect {
		kind = "indirect call target"
	}
	if callee, ok := m.Funcs[name]; ok {
		if len(in.Args) != len(callee.Params) {
			diag("%s %q with %d args, want %d", kind, name, len(in.Args), len(callee.Params))
		}
		if in.HasValue && !callee.HasVarRet {
			diag("%s %q uses a result, but the function returns none", kind, name)
		}
		return
	}
	if arity, returns, ok := modref.IntrinsicSignature(name); ok {
		if len(in.Args) != arity {
			diag("%s intrinsic %q with %d args, want %d", kind, name, len(in.Args), arity)
		}
		if in.HasValue && !returns {
			diag("%s intrinsic %q uses a result, but it returns none", kind, name)
		}
		return
	}
	diag("%s undefined function %q", kind, name)
}
