// Package check is the compiler's static correctness subsystem: a
// registry of lint passes over the IL that go beyond ir.Verify's
// structural checks — use-before-def of virtual registers (a forward
// may-reach dataflow), CFG hygiene, call arity/signature discipline
// against the callgraph table, Table-1 tag discipline, and the
// promotion invariant (no access to a promoted location survives
// inside its region). The driver runs the registry at
// Config.CheckLevel granularity; rpcc exposes it as -check/-checkall.
//
// The dynamic half of the subsystem — the analysis-soundness
// sanitizer that diffs observed MOD/REF/points-to behaviour against
// the static sets — lives in internal/interp (Options.Sanitize) and
// reports through the same ir.Diag type.
package check

import (
	"regpromo/internal/analysis/certify"
	"regpromo/internal/callgraph"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/opt/promote"
)

// Diag is the canonical diagnostic type shared by the verifier, the
// lint passes, and the interpreter sanitizer. It aliases ir.Diag so
// lower layers can produce diagnostics without importing check; every
// tool prints Diag.String, so output never drifts between rpcc,
// rpexec, and rpfuzz.
type Diag = ir.Diag

// Context carries everything a lint pass may consult.
type Context struct {
	Module *ir.Module

	// AnalysisDone marks that interprocedural analysis has run:
	// every call site carries MOD/REF summaries and pointer
	// operations have had ⊤ tag sets limited to the visible set.
	// The tag-discipline lint enforces the stricter post-analysis
	// invariants only when this is set.
	AnalysisDone bool

	// Regions are the promoted regions recorded by the promote pass;
	// empty before it runs (the promotion-invariant and certificate
	// lints are then vacuous).
	Regions []promote.Region

	// Pressure holds the static register-pressure reports the driver
	// measured after promotion (empty otherwise); the advisory
	// pressure lint reads them.
	Pressure []certify.Pressure

	graph *callgraph.Graph
}

// Graph returns the module's call graph, built on first use.
func (c *Context) Graph() *callgraph.Graph {
	if c.graph == nil {
		c.graph = callgraph.Build(c.Module)
	}
	return c.graph
}

// Pass is one registered lint pass.
type Pass struct {
	Name string
	Doc  string
	Run  func(*Context) []Diag
}

// Passes returns the registry in canonical execution order. The
// structural verifier runs first; the deeper passes assume its
// invariants (blocks terminated, registers and tags in range).
func Passes() []Pass {
	return []Pass{
		{Name: "verify", Doc: "structural well-formedness: terminators, edges, register and tag ranges", Run: func(c *Context) []Diag { return ir.VerifyModuleAll(c.Module) }},
		{Name: "cfg", Doc: "CFG hygiene: dense block ids, no unreachable blocks, ret/HasVarRet agreement", Run: runCFG},
		{Name: "uninit", Doc: "use of a virtual register that no definition may reach (forward dataflow)", Run: runUninit},
		{Name: "arity", Doc: "call arity/signature discipline against defined functions and intrinsics", Run: runArity},
		{Name: "tags", Doc: "Table-1 tag discipline: kinds, ownership, ⊤ only where the hierarchy permits", Run: runTags},
		{Name: "promoted", Doc: "promotion invariant: no access to a promoted location inside its region", Run: runPromoted},
		{Name: "certify", Doc: "re-prove promotion certificates with the independent region-soundness verifier", Run: runCertify},
	}
}

// Advisory returns the advisory passes: findings that flag likely
// performance problems rather than correctness violations, so they
// are selectable by name (rpcc -check pressure) but excluded from the
// default Module run — an over-budget promotion is legal IL.
func Advisory() []Pass {
	return []Pass{
		{Name: "pressure", Doc: "static register pressure: promotion sites whose live values exceed the K budget", Run: runPressure},
	}
}

// Named returns the registered pass — core or advisory — with the
// given name.
func Named(name string) (Pass, bool) {
	for _, p := range Passes() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range Advisory() {
		if p.Name == name {
			return p, true
		}
	}
	return Pass{}, false
}

// Names lists every selectable pass name, core registry first, in
// execution order.
func Names() []string {
	var out []string
	for _, p := range Passes() {
		out = append(out, p.Name)
	}
	for _, p := range Advisory() {
		out = append(out, p.Name)
	}
	return out
}

// Selected runs exactly the named passes in registry order (advisory
// passes after core ones), ignoring names that are not registered —
// callers validate names up front with Named. The structural
// verifier, when selected, short-circuits as in Module.
func Selected(ctx *Context, names []string) []Diag {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var ds []Diag
	for _, p := range Passes() {
		if !want[p.Name] {
			continue
		}
		out := p.Run(ctx)
		if p.Name == "verify" && len(out) > 0 {
			ir.SortDiags(out)
			return out
		}
		ds = append(ds, out...)
	}
	for _, p := range Advisory() {
		if want[p.Name] {
			ds = append(ds, p.Run(ctx)...)
		}
	}
	ir.SortDiags(ds)
	return ds
}

// Module runs every registered pass over the module and returns the
// combined diagnostics in registry order. When the structural
// verifier itself reports violations, only those are returned — the
// deeper passes would chase the same breakage (or crash on it).
func Module(ctx *Context) []Diag {
	var ds []Diag
	for i, p := range Passes() {
		out := p.Run(ctx)
		if i == 0 && len(out) > 0 {
			ds = out
			break
		}
		ds = append(ds, out...)
	}
	// Position-sort so the combined output is independent of pass
	// order and of the parallel middle end's scheduling; the stable
	// sort keeps registry order between diags at the same position.
	ir.SortDiags(ds)
	if r := obs.Metrics(); r != nil {
		r.Counter("check.runs").Inc()
		r.Counter("check.diags").Add(int64(len(ds)))
	}
	return ds
}
