package check_test

import (
	"errors"
	"testing"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
)

// TestEveryPassCleanOnSuite is the subsystem's own soundness gate:
// compiling the entire benchmark suite under the full differential
// matrix with CheckLevel = after-every-pass must produce zero
// diagnostics — the front end and every pass leave the module
// lint-clean at every boundary.
func TestEveryPassCleanOnSuite(t *testing.T) {
	for _, p := range bench.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			src := bench.Source(p)
			for _, nc := range driver.DifferentialConfigurations(testing.Short()) {
				cfg := nc.Config
				cfg.Check = driver.CheckEveryPass
				if _, err := driver.CompileSource(p.Name+".c", src, cfg); err != nil {
					var ce *driver.CheckError
					if errors.As(err, &ce) {
						t.Errorf("%s: check failed after %s:", nc.Name, ce.Pass)
						for _, d := range ce.Diags {
							t.Errorf("  %s", d)
						}
						continue
					}
					t.Errorf("%s: %v", nc.Name, err)
				}
			}
		})
	}
}
