package check

import (
	"fmt"

	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
)

// runUninit flags every use of a virtual register that no definition
// may reach: a forward may-reach dataflow (union at joins) over the
// defined-register sets, seeded with the function's parameters at the
// entry. Because the join is a union, path-sensitive initialization
// (defined on one arm, used after the join) passes — only a use with
// no defining path at all is reported, which in the source language
// is a genuine read of garbage.
func runUninit(c *Context) []Diag {
	var ds []Diag
	for _, fn := range c.Module.FuncsInOrder() {
		ds = append(ds, uninitFunc(fn)...)
	}
	return ds
}

// regBits is a fixed-width bitset over a function's virtual registers.
type regBits []uint64

func (s regBits) set(r ir.Reg)      { s[r>>6] |= 1 << (uint(r) & 63) }
func (s regBits) has(r ir.Reg) bool { return s[r>>6]&(1<<(uint(r)&63)) != 0 }

func (s regBits) equal(o regBits) bool {
	for i, w := range s {
		if o[i] != w {
			return false
		}
	}
	return true
}

func uninitFunc(fn *ir.Func) []Diag {
	if fn.Entry == nil || !denseIDs(fn) {
		return nil // verify / cfg report these
	}
	words := (fn.NumRegs + 63) / 64
	if words == 0 {
		return nil
	}
	inRange := func(r ir.Reg) bool { return r >= 0 && int(r) < fn.NumRegs }

	// reachedIn(b) = params (entry) ∪ ⋃ preds' out; out(b) adds b's
	// own defs. Unreachable predecessors keep a nil out and
	// contribute nothing.
	out := make([]regBits, len(fn.Blocks))
	cur := make(regBits, words)
	flowIn := func(b *ir.Block, dst regBits) {
		for i := range dst {
			dst[i] = 0
		}
		if b == fn.Entry {
			for _, p := range fn.Params {
				if inRange(p) {
					dst.set(p)
				}
			}
		}
		for _, p := range b.Preds {
			if o := out[p.ID]; o != nil {
				for i, w := range o {
					dst[i] |= w
				}
			}
		}
	}
	dataflow.SolveBlocks(fn, dataflow.Forward, func(b *ir.Block) bool {
		flowIn(b, cur)
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.RegInvalid && inRange(d) {
				cur.set(d)
			}
		}
		if o := out[b.ID]; o != nil && o.equal(cur) {
			return false
		}
		if out[b.ID] == nil {
			out[b.ID] = make(regBits, words)
		}
		copy(out[b.ID], cur)
		return true
	})

	// Report pass: one deterministic walk, checking each use against
	// the defs that reach it within the block.
	var ds []Diag
	var buf [8]ir.Reg
	for _, b := range dataflow.ReversePostorder(fn) {
		flowIn(b, cur)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Uses(buf[:0]) {
				if inRange(r) && !cur.has(r) {
					ds = append(ds, Diag{Check: "uninit", Func: fn.Name, Block: b.Label, Index: i, Op: in.Op,
						Msg: fmt.Sprintf("use of r%d that no definition reaches", r)})
				}
			}
			if d := in.Def(); d != ir.RegInvalid && inRange(d) {
				cur.set(d)
			}
		}
	}
	return ds
}
