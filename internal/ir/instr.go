package ir

// Reg is a register number. Before allocation registers are virtual
// and unbounded; after allocation they name physical registers.
// RegInvalid marks an absent operand or result.
type Reg int32

// RegInvalid is the absent-register sentinel.
const RegInvalid Reg = -1

// Instr is one IL instruction. Fields are used per-opcode:
//
//	LoadI            Dst ← Imm
//	LoadF            Dst ← FImm
//	Copy, Neg, Not,
//	FNeg, I2F, F2I   Dst ← op A
//	binary ops       Dst ← A op B
//	CLoad            Dst ← mem[Tag]          (invariant value)
//	SLoad            Dst ← mem[Tag]
//	SStore           mem[Tag] ← A
//	PLoad            Dst ← mem[A]            (may touch Tags)
//	PStore           mem[A] ← B              (may touch Tags)
//	AddrOf           Dst ← &Tag              (function address when Callee != "")
//	Br               (successor on Block)
//	CBr              if A != 0 → Succs[0] else Succs[1]
//	Ret              return A when HasValue
//	Jsr              Dst ← Callee(Args...)   (indirect via A when Callee == "";
//	                 Mods/Refs are the call's summary side effects;
//	                 Site is the heap tag for allocation intrinsics)
type Instr struct {
	Op  Op
	Dst Reg
	A   Reg
	B   Reg

	Imm  int64
	FImm float64

	// Tag is the single location named by a scalar memory op or
	// AddrOf.
	Tag TagID
	// Tags is the may-reference set of a pointer-based memory op.
	Tags TagSet
	// Size is the access width in bytes (1, 4, or 8) of a memory op.
	Size int

	// Call fields.
	Callee   string
	Args     []Reg
	Mods     TagSet // locations the call may modify
	Refs     TagSet // locations the call may reference
	Site     TagID  // heap tag for allocation call sites
	HasValue bool   // Ret carries a value; Jsr result is used

	// Targets, when non-nil on an indirect Jsr, is the refined set
	// of possible callees computed by points-to analysis; nil means
	// "any addressed function".
	Targets []string

	// Synth marks compiler-synthesized spill code: the lifted loads
	// and demotion stores promotion inserts at region boundaries.
	// These deliberately sit outside the effect sets the analyses
	// computed (a demotion store legally writes a tag the region only
	// read), so the soundness sanitizer and the promotion-invariant
	// lint skip them.
	Synth bool
}

// Uses appends the registers the instruction reads to buf and returns
// it. The result aliases buf's backing array.
func (in *Instr) Uses(buf []Reg) []Reg {
	switch in.Op {
	case OpNop, OpLoadI, OpLoadF, OpCLoad, OpSLoad, OpAddrOf, OpBr:
		// no register uses
	case OpRet:
		if in.HasValue && in.A != RegInvalid {
			buf = append(buf, in.A)
		}
	case OpJsr:
		if in.Callee == "" && in.A != RegInvalid {
			buf = append(buf, in.A)
		}
		buf = append(buf, in.Args...)
	case OpCopy, OpNeg, OpNot, OpFNeg, OpI2F, OpF2I, OpCBr, OpSStore, OpPLoad:
		buf = append(buf, in.A)
	case OpPStore:
		buf = append(buf, in.A, in.B)
	default:
		// binary arithmetic and comparisons
		buf = append(buf, in.A, in.B)
	}
	return buf
}

// Def returns the register the instruction defines, or RegInvalid.
func (in *Instr) Def() Reg {
	if !in.Op.HasDst() {
		return RegInvalid
	}
	if in.Op == OpJsr && !in.HasValue {
		return RegInvalid
	}
	return in.Dst
}

// ReplaceUses rewrites every use of register from to register to.
func (in *Instr) ReplaceUses(from, to Reg) {
	switch in.Op {
	case OpNop, OpLoadI, OpLoadF, OpCLoad, OpSLoad, OpAddrOf, OpBr:
		return
	case OpRet:
		if in.HasValue && in.A == from {
			in.A = to
		}
		return
	case OpJsr:
		if in.Callee == "" && in.A == from {
			in.A = to
		}
		for i, r := range in.Args {
			if r == from {
				in.Args[i] = to
			}
		}
		return
	case OpCopy, OpNeg, OpNot, OpFNeg, OpI2F, OpF2I, OpCBr, OpSStore, OpPLoad:
		if in.A == from {
			in.A = to
		}
		return
	case OpPStore:
		if in.A == from {
			in.A = to
		}
		if in.B == from {
			in.B = to
		}
		return
	default:
		if in.A == from {
			in.A = to
		}
		if in.B == from {
			in.B = to
		}
	}
}

// MapUses rewrites every use operand through f, positionally — unlike
// ReplaceUses it is safe when the new names overlap the old ones
// (register renaming after coloring).
func (in *Instr) MapUses(f func(Reg) Reg) {
	switch in.Op {
	case OpNop, OpLoadI, OpLoadF, OpCLoad, OpSLoad, OpAddrOf, OpBr:
		return
	case OpRet:
		if in.HasValue && in.A != RegInvalid {
			in.A = f(in.A)
		}
	case OpJsr:
		if in.Callee == "" && in.A != RegInvalid {
			in.A = f(in.A)
		}
		for i, r := range in.Args {
			in.Args[i] = f(r)
		}
	case OpCopy, OpNeg, OpNot, OpFNeg, OpI2F, OpF2I, OpCBr, OpSStore, OpPLoad:
		in.A = f(in.A)
	case OpPStore:
		in.A = f(in.A)
		in.B = f(in.B)
	default:
		in.A = f(in.A)
		in.B = f(in.B)
	}
}

// MayReadMem returns the tag set an instruction may read, or an empty
// set. Calls read their Refs set.
func (in *Instr) MayReadMem() TagSet {
	switch in.Op {
	case OpCLoad, OpSLoad:
		return NewTagSet(in.Tag)
	case OpPLoad:
		return in.Tags
	case OpJsr:
		return in.Refs
	}
	return TagSet{}
}

// MayWriteMem returns the tag set an instruction may write, or an
// empty set. Calls write their Mods set.
func (in *Instr) MayWriteMem() TagSet {
	switch in.Op {
	case OpSStore:
		return NewTagSet(in.Tag)
	case OpPStore:
		return in.Tags
	case OpJsr:
		return in.Mods
	}
	return TagSet{}
}

// Clone returns a deep copy of the instruction (Args and Targets are
// copied; TagSets are immutable and shared).
func (in *Instr) Clone() Instr {
	out := *in
	if in.Args != nil {
		out.Args = append([]Reg(nil), in.Args...)
	}
	if in.Targets != nil {
		out.Targets = append([]string(nil), in.Targets...)
	}
	return out
}
