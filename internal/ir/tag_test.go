package ir

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randSet builds a random tag set over a small universe so overlaps
// are common.
func randSet(rng *rand.Rand) TagSet {
	if rng.Intn(20) == 0 {
		return TopSet()
	}
	n := rng.Intn(8)
	ids := make([]TagID, n)
	for i := range ids {
		ids[i] = TagID(rng.Intn(12))
	}
	return NewTagSet(ids...)
}

// asMap converts an explicit set to a map for oracle computations.
func asMap(s TagSet) map[TagID]bool {
	out := map[TagID]bool{}
	for _, id := range s.IDs() {
		out[id] = true
	}
	return out
}

func fromMap(m map[TagID]bool) TagSet {
	var ids []TagID
	for id := range m {
		ids = append(ids, id)
	}
	return NewTagSet(ids...)
}

func TestTagSetBasics(t *testing.T) {
	s := NewTagSet(3, 1, 2, 1, 3)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	ids := s.IDs()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("ids not sorted")
	}
	if !s.Has(2) || s.Has(5) {
		t.Fatal("membership wrong")
	}
	if _, ok := s.Singleton(); ok {
		t.Fatal("3-element set is not a singleton")
	}
	one := NewTagSet(7)
	if id, ok := one.Singleton(); !ok || id != 7 {
		t.Fatal("singleton detection failed")
	}
	if !TopSet().IsTop() || TopSet().IsEmpty() {
		t.Fatal("top set misclassified")
	}
	var zero TagSet
	if !zero.IsEmpty() || zero.IsTop() {
		t.Fatal("zero value should be the empty set")
	}
}

func TestTagSetAlgebraAgainstMapOracle(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)
		if a.IsTop() || b.IsTop() {
			// ⊤ laws checked separately.
			return true
		}
		am, bm := asMap(a), asMap(b)

		union := map[TagID]bool{}
		for k := range am {
			union[k] = true
		}
		for k := range bm {
			union[k] = true
		}
		inter := map[TagID]bool{}
		for k := range am {
			if bm[k] {
				inter[k] = true
			}
		}
		minus := map[TagID]bool{}
		for k := range am {
			if !bm[k] {
				minus[k] = true
			}
		}
		if !a.Union(b).Equal(fromMap(union)) {
			return false
		}
		if !a.Intersect(b).Equal(fromMap(inter)) {
			return false
		}
		if !a.Minus(b).Equal(fromMap(minus)) {
			return false
		}
		if a.Intersects(b) != (len(inter) > 0) {
			return false
		}
		if a.SubsetOf(b) != (len(minus) == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTagSetTopLaws(t *testing.T) {
	top := TopSet()
	s := NewTagSet(1, 2, 3)
	if !s.Union(top).IsTop() || !top.Union(s).IsTop() {
		t.Fatal("union with top must be top")
	}
	if !s.Intersect(top).Equal(s) || !top.Intersect(s).Equal(s) {
		t.Fatal("intersection with top must be identity")
	}
	if !s.Minus(top).IsEmpty() {
		t.Fatal("s minus top must be empty")
	}
	if !s.SubsetOf(top) {
		t.Fatal("everything is a subset of top")
	}
	if top.SubsetOf(s) {
		t.Fatal("top is not a subset of a finite set")
	}
	if !top.Has(42) {
		t.Fatal("top contains everything")
	}
	if !top.Intersects(s) || top.Intersects(TagSet{}) {
		t.Fatal("top intersects exactly the non-empty sets")
	}
}

func TestTagSetWith(t *testing.T) {
	s := NewTagSet(5)
	s2 := s.With(3).With(5).With(9)
	if !s2.Equal(NewTagSet(3, 5, 9)) {
		t.Fatalf("with chain = %s", s2)
	}
	// With must not mutate the receiver.
	if !s.Equal(NewTagSet(5)) {
		t.Fatal("With mutated its receiver")
	}
}

func TestTagTable(t *testing.T) {
	var tt TagTable
	a := tt.NewTag("a", TagGlobal, "", 8, 8)
	b := tt.NewTag("b", TagLocal, "f", 4, 4)
	if a.ID == b.ID {
		t.Fatal("ids must be distinct")
	}
	if tt.Get(b.ID).Name != "b" || tt.Len() != 2 {
		t.Fatal("lookup failed")
	}
	if got := b.Kind.String(); got != "local" {
		t.Fatalf("kind string = %q", got)
	}
}

func TestFormatUsesTagNames(t *testing.T) {
	var tt TagTable
	a := tt.NewTag("alpha", TagGlobal, "", 8, 8)
	b := tt.NewTag("beta", TagGlobal, "", 8, 8)
	s := NewTagSet(a.ID, b.ID)
	if got := s.Format(&tt); got != "[alpha,beta]" {
		t.Fatalf("format = %q", got)
	}
	if got := TopSet().Format(&tt); got != "[*]" {
		t.Fatalf("top format = %q", got)
	}
}
