package ir

import "testing"

// buildCloneFixture makes a two-function module with a loop edge,
// a global initializer with a relocation, and a call.
func buildCloneFixture() *Module {
	m := NewModule()
	g := m.Tags.NewTag("g", TagGlobal, "", 8, 8)
	m.Inits = append(m.Inits, GlobalInit{
		Tag:    g.ID,
		Data:   []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Relocs: []Reloc{{Offset: 0, Target: g.ID, Addend: 4}},
	})

	callee := &Func{Name: "callee", NumRegs: 2, Params: []Reg{0}, HasVarRet: true}
	cb := callee.NewBlock("")
	cb.Instrs = append(cb.Instrs, Instr{Op: OpRet, A: 0, HasValue: true})
	callee.Entry = cb
	m.AddFunc(callee)

	fn := &Func{Name: "main", NumRegs: 3, HasVarRet: true}
	local := m.Tags.NewTag("x", TagLocal, "main", 8, 8)
	fn.Locals = append(fn.Locals, local.ID)
	head := fn.NewBlock("")
	body := fn.NewBlock("")
	exit := fn.NewBlock("")
	head.Instrs = append(head.Instrs,
		Instr{Op: OpLoadI, Dst: 0, Imm: 7},
		Instr{Op: OpCBr, A: 0},
	)
	body.Instrs = append(body.Instrs,
		Instr{Op: OpJsr, Dst: 1, Callee: "callee", Args: []Reg{0}, HasValue: true},
		Instr{Op: OpSStore, A: 1, Tag: local.ID, Size: 8},
		Instr{Op: OpBr},
	)
	exit.Instrs = append(exit.Instrs, Instr{Op: OpRet, A: 1, HasValue: true})
	AddEdge(head, body)
	AddEdge(head, exit)
	AddEdge(body, head) // loop back edge
	fn.Entry = head
	m.AddFunc(fn)
	m.AddressedFuncs = append(m.AddressedFuncs, "callee")
	return m
}

func TestModuleCloneIsDeepAndEqual(t *testing.T) {
	orig := buildCloneFixture()
	want := FormatModule(orig)
	clone := orig.Clone()

	if got := FormatModule(clone); got != want {
		t.Fatalf("clone formats differently:\n--- original\n%s\n--- clone\n%s", want, got)
	}
	if err := VerifyModule(clone); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}

	// Edges must point at cloned blocks, not the originals.
	cm := clone.Funcs["main"]
	om := orig.Funcs["main"]
	if cm == om {
		t.Fatal("function not cloned")
	}
	for _, b := range cm.Blocks {
		for _, s := range b.Succs {
			for _, ob := range om.Blocks {
				if s == ob {
					t.Fatal("clone successor aliases an original block")
				}
			}
		}
	}

	// Mutating the clone must not leak into the original: grow the tag
	// table, rewrite an instruction, and edit init data.
	clone.Tags.NewTag("spill0", TagSpill, "main", 8, 8)
	if clone.Tags.Len() != orig.Tags.Len()+1 {
		t.Fatalf("tag table shared: clone=%d orig=%d", clone.Tags.Len(), orig.Tags.Len())
	}
	cm.Blocks[1].Instrs[0].Args[0] = 99
	if om.Blocks[1].Instrs[0].Args[0] == 99 {
		t.Fatal("call Args shared between clone and original")
	}
	clone.Inits[0].Data[0] = 0xFF
	if orig.Inits[0].Data[0] == 0xFF {
		t.Fatal("init data shared between clone and original")
	}
	clone.Tags.Get(0).Name = "renamed"
	if orig.Tags.Get(0).Name == "renamed" {
		t.Fatal("tags shared between clone and original")
	}
	if got := FormatModule(orig); got != want {
		t.Fatalf("original changed after clone mutation:\n%s", got)
	}
}
