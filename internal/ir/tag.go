// Package ir defines the intermediate language used throughout the
// compiler: an ILOC-style, register-based, three-address code in which
// every memory operation carries a list of "tags" naming the memory
// locations the operation may touch, following Cooper & Lu, "Register
// Promotion in C Programs" (PLDI 1997), §2.
//
// The opcode set realizes the paper's Table 1 hierarchy of memory
// operations: an immediate load (LoadI) for known constants, a constant
// load (CLoad) for invariant-but-unknown values, scalar loads and stores
// (SLoad/SStore) that reference a single named location directly, and
// general pointer-based loads and stores (PLoad/PStore) whose address is
// computed at run time and whose tag set records which locations they
// may reach.
package ir

import (
	"fmt"
	"math/bits"
	"strings"
)

// TagID names one abstract memory location (a "tag" in the paper's
// terminology). Tags are allocated per Module; TagInvalid is never a
// valid tag.
type TagID int32

// TagInvalid is the zero-signal tag id.
const TagInvalid TagID = -1

// TagKind classifies what a tag names.
type TagKind uint8

const (
	// TagGlobal names a global variable.
	TagGlobal TagKind = iota
	// TagLocal names a stack-allocated local (or parameter) whose
	// address is materialized in the frame (address-taken scalars,
	// arrays, structs).
	TagLocal
	// TagHeap names all storage allocated at one malloc call site
	// (the paper models the heap "with a single name for each
	// call-site that can generate a new heap address", §4).
	TagHeap
	// TagSpill names a register-allocator spill slot.
	TagSpill
)

func (k TagKind) String() string {
	switch k {
	case TagGlobal:
		return "global"
	case TagLocal:
		return "local"
	case TagHeap:
		return "heap"
	case TagSpill:
		return "spill"
	default:
		return fmt.Sprintf("TagKind(%d)", uint8(k))
	}
}

// Tag describes one abstract memory location.
type Tag struct {
	ID   TagID
	Name string
	Kind TagKind

	// Func is the name of the owning function for locals, heap site
	// tags and spill slots; empty for globals.
	Func string

	// Size is the size in bytes of the storage the tag names
	// (0 for heap tags, whose extent is dynamic).
	Size int

	// Elem is the access size in bytes for scalar loads/stores of
	// this tag (equal to Size for scalars).
	Elem int

	// AddrTaken records whether the program ever takes the address
	// of this location. The front end computes it (§4: "only tags
	// that have had their address taken are placed in the tag sets
	// of pointer-based memory operations").
	AddrTaken bool

	// Strong reports whether the tag names exactly one run-time
	// storage location per activation, so that a reference to the
	// tag can be rewritten to a register reference. Global scalars
	// and addressed locals of non-recursive functions are strong;
	// arrays, structs, heap site tags, and addressed locals of
	// recursive functions (one name for many locations, §4) are
	// weak.
	Strong bool

	// Recursive marks a local tag owned by a (possibly) recursive
	// function. Such tags are weak.
	Recursive bool
}

// TagTable allocates and resolves tags for one Module.
type TagTable struct {
	tags []*Tag
}

// TagAlloc abstracts tag allocation so a pass that creates tags (the
// register allocator's spill slots) can run either against the module
// table directly or against a per-function staging allocator while the
// table is frozen during the parallel middle-end.
type TagAlloc interface {
	NewTag(name string, kind TagKind, fn string, size, elem int) *Tag
}

// NewTag allocates a tag and returns it.
func (t *TagTable) NewTag(name string, kind TagKind, fn string, size, elem int) *Tag {
	tag := &Tag{
		ID:   TagID(len(t.tags)),
		Name: name,
		Kind: kind,
		Func: fn,
		Size: size,
		Elem: elem,
	}
	t.tags = append(t.tags, tag)
	return tag
}

// Get returns the tag with the given id. It panics on an invalid id:
// tag ids are internal invariants, not user input.
func (t *TagTable) Get(id TagID) *Tag {
	return t.tags[id]
}

// Len returns the number of allocated tags.
func (t *TagTable) Len() int { return len(t.tags) }

// All returns the backing slice of tags; callers must not mutate it.
func (t *TagTable) All() []*Tag { return t.tags }

// StagedTags is a TagAlloc that records tag creations without touching
// the module table. Staged tags carry provisional negative ids (so a
// staged id can never collide with a real one); Commit replays the
// creations against the real table in staging order and returns the
// provisional→real id mapping. The parallel middle-end gives every
// function its own stage and commits them in function order, which
// reproduces exactly the tag table a serial compile builds.
type StagedTags struct {
	tags []*Tag
}

// stagedBase is the first provisional id; staged ids descend from it.
// (-1 is TagInvalid and must stay unused.)
const stagedBase TagID = -2

// IsStagedTag reports whether id is a provisional id handed out by a
// StagedTags allocator.
func IsStagedTag(id TagID) bool { return id <= stagedBase }

// NewTag records one staged tag creation.
func (s *StagedTags) NewTag(name string, kind TagKind, fn string, size, elem int) *Tag {
	tag := &Tag{
		ID:   stagedBase - TagID(len(s.tags)),
		Name: name,
		Kind: kind,
		Func: fn,
		Size: size,
		Elem: elem,
	}
	s.tags = append(s.tags, tag)
	return tag
}

// Empty reports whether nothing was staged.
func (s *StagedTags) Empty() bool { return len(s.tags) == 0 }

// Commit replays the staged creations against tt in staging order. The
// returned map sends each provisional id to the real id it received;
// the staged Tag structs themselves are re-identified in place, so
// pointers handed out by NewTag stay valid.
func (s *StagedTags) Commit(tt *TagTable) map[TagID]TagID {
	if len(s.tags) == 0 {
		return nil
	}
	remap := make(map[TagID]TagID, len(s.tags))
	for _, tag := range s.tags {
		old := tag.ID
		tag.ID = TagID(len(tt.tags))
		tt.tags = append(tt.tags, tag)
		remap[old] = tag.ID
	}
	s.tags = nil
	return remap
}

// A TagSet is a set of tags, with a distinguished "all memory" top
// element used before analysis has run. The zero value is the empty
// set.
//
// The representation is a dense bit vector (one bit per TagID, words
// trimmed of trailing zeros), following the Cooper–Torczon bit-vector
// dataflow tradition: union, intersection, and subset queries run a
// word at a time, and the trimmed-words invariant makes Equal a plain
// word comparison. Values are immutable and may share backing words —
// every exported method returns a new set or a scalar. The *Into
// variants mutate their receiver in place for fixpoint accumulators;
// callers own such receivers (start from the zero value, Clone, or
// NewTagSetSized) and must never mutate a set read out of an
// instruction.
type TagSet struct {
	// all marks the ⊤ set: the operation may touch any location.
	all bool
	// words is the bit vector; bit id%64 of words[id/64] is set when
	// id is a member. Invariant: the last word is non-zero (no
	// trailing zero words), so IsEmpty and Equal are O(1) and O(words)
	// respectively.
	words []uint64
}

// TopSet returns the ⊤ tag set ("may touch anything").
func TopSet() TagSet { return TagSet{all: true} }

// NewTagSet builds a set from the given ids. An empty input allocates
// nothing.
func NewTagSet(ids ...TagID) TagSet {
	if len(ids) == 0 {
		return TagSet{}
	}
	max := ids[0]
	for _, id := range ids[1:] {
		if id > max {
			max = id
		}
	}
	s := TagSet{words: make([]uint64, int(max)/64+1)}
	for _, id := range ids {
		s.words[id/64] |= 1 << (uint(id) % 64)
	}
	return s
}

// NewTagSetSized returns an owned empty set whose backing array can
// hold tags [0, n) without reallocating — size it from TagTable.Len()
// for fixpoint accumulators that will grow via the *Into methods.
func NewTagSetSized(n int) TagSet {
	if n <= 0 {
		return TagSet{}
	}
	return TagSet{words: make([]uint64, 0, (n+63)/64)}
}

// trim restores the no-trailing-zero-words invariant after an
// operation that may have cleared high bits.
func (s *TagSet) trim() {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	s.words = s.words[:n]
}

// Clone returns a copy with its own backing words, safe to mutate with
// the *Into methods.
func (s TagSet) Clone() TagSet {
	if s.all || len(s.words) == 0 {
		return TagSet{all: s.all}
	}
	return TagSet{words: append(make([]uint64, 0, len(s.words)), s.words...)}
}

// IsTop reports whether the set is the ⊤ ("all memory") set.
func (s TagSet) IsTop() bool { return s.all }

// IsEmpty reports whether the set is empty (and not ⊤).
func (s TagSet) IsEmpty() bool { return !s.all && len(s.words) == 0 }

// Len returns the number of explicit members; it is meaningless for ⊤.
func (s TagSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Singleton returns the sole member, if the set has exactly one
// explicit member.
func (s TagSet) Singleton() (TagID, bool) {
	if s.all {
		return TagInvalid, false
	}
	found := TagInvalid
	for i, w := range s.words {
		switch bits.OnesCount64(w) {
		case 0:
		case 1:
			if found != TagInvalid {
				return TagInvalid, false
			}
			found = TagID(i*64 + bits.TrailingZeros64(w))
		default:
			return TagInvalid, false
		}
	}
	if found == TagInvalid {
		return TagInvalid, false
	}
	return found, true
}

// Has reports whether id is a member (always true for ⊤).
func (s TagSet) Has(id TagID) bool {
	if s.all {
		return true
	}
	if id < 0 || int(id)/64 >= len(s.words) {
		return false
	}
	return s.words[id/64]&(1<<(uint(id)%64)) != 0
}

// IDs returns the explicit members in ascending order; it returns nil
// for ⊤ and for the empty set. Each call allocates a fresh slice; hot
// loops should prefer ForEach.
func (s TagSet) IDs() []TagID {
	if s.all || len(s.words) == 0 {
		return nil
	}
	out := make([]TagID, 0, s.Len())
	s.ForEach(func(id TagID) { out = append(out, id) })
	return out
}

// Words exposes the trimmed backing bit vector (bit id%64 of word
// id/64 is set for each member id); callers must not mutate it. The
// no-trailing-zero-words invariant makes the slice a canonical value
// representation — equal sets always expose equal words — so hashing
// it hashes the set. Empty and ⊤ both expose nil; distinguish ⊤ with
// IsTop.
func (s TagSet) Words() []uint64 { return s.words }

// ForEach calls f for every member in ascending order, without
// allocating. It does nothing for ⊤ (its membership is not
// enumerable).
func (s TagSet) ForEach(f func(TagID)) {
	for i, w := range s.words {
		for w != 0 {
			f(TagID(i*64 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// Union returns s ∪ o.
func (s TagSet) Union(o TagSet) TagSet {
	if s.all || o.all {
		return TopSet()
	}
	// Empty operands return the other set unchanged (sharing its
	// backing words — safe under the immutability convention) so that
	// the common grow-from-empty case allocates nothing.
	if len(s.words) == 0 {
		return o
	}
	if len(o.words) == 0 {
		return s
	}
	long, short := s.words, o.words
	if len(long) < len(short) {
		long, short = short, long
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return TagSet{words: out}
}

// UnionInto adds o's members into dst in place, returning whether dst
// grew. dst must own its backing words.
func (o TagSet) UnionInto(dst *TagSet) bool {
	if dst.all {
		return false
	}
	if o.all {
		dst.all, dst.words = true, nil
		return true
	}
	if len(o.words) > len(dst.words) {
		if cap(dst.words) >= len(o.words) {
			grown := dst.words[:len(o.words)]
			for i := len(dst.words); i < len(grown); i++ {
				grown[i] = 0
			}
			dst.words = grown
		} else {
			grown := make([]uint64, len(o.words), cap(o.words))
			copy(grown, dst.words)
			dst.words = grown
		}
	}
	changed := false
	for i, w := range o.words {
		if n := dst.words[i] | w; n != dst.words[i] {
			dst.words[i] = n
			changed = true
		}
	}
	return changed
}

// Add inserts id into dst in place, returning whether it was new. dst
// must own its backing words.
func (dst *TagSet) Add(id TagID) bool {
	if dst.all || dst.Has(id) {
		return false
	}
	wi := int(id) / 64
	if wi >= len(dst.words) {
		if cap(dst.words) > wi {
			grown := dst.words[:wi+1]
			for i := len(dst.words); i < len(grown); i++ {
				grown[i] = 0
			}
			dst.words = grown
		} else {
			grown := make([]uint64, wi+1)
			copy(grown, dst.words)
			dst.words = grown
		}
	}
	dst.words[wi] |= 1 << (uint(id) % 64)
	return true
}

// Remove deletes id from dst in place, returning whether it was a
// member. Removing from ⊤ is a no-op (⊤ has no explicit members to
// drop); callers tracking precise sets never hold ⊤. dst must own its
// backing words.
func (dst *TagSet) Remove(id TagID) bool {
	if dst.all || id < 0 {
		return false
	}
	wi := int(id) / 64
	if wi >= len(dst.words) {
		return false
	}
	bit := uint64(1) << (uint(id) % 64)
	if dst.words[wi]&bit == 0 {
		return false
	}
	dst.words[wi] &^= bit
	dst.trim()
	return true
}

// SubtractInto removes o's members from dst in place (dst = dst \ o),
// returning whether dst shrank. Mirrors Minus: subtracting from ⊤
// leaves ⊤; subtracting ⊤ empties dst. dst must own its backing
// words.
func (o TagSet) SubtractInto(dst *TagSet) bool {
	if dst.all {
		return false
	}
	if o.all {
		changed := len(dst.words) > 0
		dst.words = nil
		return changed
	}
	n := len(dst.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	changed := false
	for i := 0; i < n; i++ {
		if m := dst.words[i] &^ o.words[i]; m != dst.words[i] {
			dst.words[i] = m
			changed = true
		}
	}
	dst.trim()
	return changed
}

// Intersect returns s ∩ o. Intersecting with ⊤ yields the other set.
func (s TagSet) Intersect(o TagSet) TagSet {
	if s.all {
		return o
	}
	if o.all {
		return s
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := TagSet{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & o.words[i]
	}
	out.trim()
	if len(out.words) == 0 {
		out.words = nil
	}
	return out
}

// IntersectInto narrows dst to dst ∩ o in place, returning whether dst
// shrank. dst must own its backing words.
func (o TagSet) IntersectInto(dst *TagSet) bool {
	if o.all {
		return false
	}
	if dst.all {
		*dst = o.Clone()
		return true
	}
	changed := false
	n := len(dst.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if m := dst.words[i] & o.words[i]; m != dst.words[i] {
			dst.words[i] = m
			changed = true
		}
	}
	for i := n; i < len(dst.words); i++ {
		if dst.words[i] != 0 {
			dst.words[i] = 0
			changed = true
		}
	}
	dst.words = dst.words[:n]
	dst.trim()
	return changed
}

// Minus returns s \ o. The result of subtracting from ⊤ is ⊤ (we never
// need precise complements).
func (s TagSet) Minus(o TagSet) TagSet {
	if o.all {
		return TagSet{}
	}
	if s.all {
		return TopSet()
	}
	if len(s.words) == 0 || len(o.words) == 0 {
		return s
	}
	out := TagSet{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		out.words[i] &^= o.words[i]
	}
	out.trim()
	if len(out.words) == 0 {
		out.words = nil
	}
	return out
}

// Intersects reports whether s ∩ o is non-empty. ⊤ intersects every
// non-empty set and, conservatively, every ⊤.
func (s TagSet) Intersects(o TagSet) bool {
	if s.all {
		return o.all || len(o.words) > 0
	}
	if o.all {
		return len(s.words) > 0
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports set equality. Thanks to the trimmed-words invariant
// this is a single backing-word comparison.
func (s TagSet) Equal(o TagSet) bool {
	if s.all != o.all || len(s.words) != len(o.words) {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ o.
func (s TagSet) SubsetOf(o TagSet) bool {
	if o.all {
		return true
	}
	if s.all {
		return false
	}
	if len(s.words) > len(o.words) {
		return false
	}
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// With returns s ∪ {id}.
func (s TagSet) With(id TagID) TagSet {
	if s.all || s.Has(id) {
		return s
	}
	wi := int(id) / 64
	n := len(s.words)
	if wi+1 > n {
		n = wi + 1
	}
	out := TagSet{words: make([]uint64, n)}
	copy(out.words, s.words)
	out.words[wi] |= 1 << (uint(id) % 64)
	return out
}

// String formats the set using the module-independent tag ids.
func (s TagSet) String() string {
	if s.all {
		return "[*]"
	}
	var parts []string
	s.ForEach(func(id TagID) { parts = append(parts, fmt.Sprintf("t%d", id)) })
	return "[" + strings.Join(parts, ",") + "]"
}

// Format formats the set using tag names from the table.
func (s TagSet) Format(tt *TagTable) string {
	if s.all {
		return "[*]"
	}
	var parts []string
	s.ForEach(func(id TagID) { parts = append(parts, tt.Get(id).Name) })
	return "[" + strings.Join(parts, ",") + "]"
}
