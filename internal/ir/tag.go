// Package ir defines the intermediate language used throughout the
// compiler: an ILOC-style, register-based, three-address code in which
// every memory operation carries a list of "tags" naming the memory
// locations the operation may touch, following Cooper & Lu, "Register
// Promotion in C Programs" (PLDI 1997), §2.
//
// The opcode set realizes the paper's Table 1 hierarchy of memory
// operations: an immediate load (LoadI) for known constants, a constant
// load (CLoad) for invariant-but-unknown values, scalar loads and stores
// (SLoad/SStore) that reference a single named location directly, and
// general pointer-based loads and stores (PLoad/PStore) whose address is
// computed at run time and whose tag set records which locations they
// may reach.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// TagID names one abstract memory location (a "tag" in the paper's
// terminology). Tags are allocated per Module; TagInvalid is never a
// valid tag.
type TagID int32

// TagInvalid is the zero-signal tag id.
const TagInvalid TagID = -1

// TagKind classifies what a tag names.
type TagKind uint8

const (
	// TagGlobal names a global variable.
	TagGlobal TagKind = iota
	// TagLocal names a stack-allocated local (or parameter) whose
	// address is materialized in the frame (address-taken scalars,
	// arrays, structs).
	TagLocal
	// TagHeap names all storage allocated at one malloc call site
	// (the paper models the heap "with a single name for each
	// call-site that can generate a new heap address", §4).
	TagHeap
	// TagSpill names a register-allocator spill slot.
	TagSpill
)

func (k TagKind) String() string {
	switch k {
	case TagGlobal:
		return "global"
	case TagLocal:
		return "local"
	case TagHeap:
		return "heap"
	case TagSpill:
		return "spill"
	default:
		return fmt.Sprintf("TagKind(%d)", uint8(k))
	}
}

// Tag describes one abstract memory location.
type Tag struct {
	ID   TagID
	Name string
	Kind TagKind

	// Func is the name of the owning function for locals, heap site
	// tags and spill slots; empty for globals.
	Func string

	// Size is the size in bytes of the storage the tag names
	// (0 for heap tags, whose extent is dynamic).
	Size int

	// Elem is the access size in bytes for scalar loads/stores of
	// this tag (equal to Size for scalars).
	Elem int

	// AddrTaken records whether the program ever takes the address
	// of this location. The front end computes it (§4: "only tags
	// that have had their address taken are placed in the tag sets
	// of pointer-based memory operations").
	AddrTaken bool

	// Strong reports whether the tag names exactly one run-time
	// storage location per activation, so that a reference to the
	// tag can be rewritten to a register reference. Global scalars
	// and addressed locals of non-recursive functions are strong;
	// arrays, structs, heap site tags, and addressed locals of
	// recursive functions (one name for many locations, §4) are
	// weak.
	Strong bool

	// Recursive marks a local tag owned by a (possibly) recursive
	// function. Such tags are weak.
	Recursive bool
}

// TagTable allocates and resolves tags for one Module.
type TagTable struct {
	tags []*Tag
}

// NewTag allocates a tag and returns it.
func (t *TagTable) NewTag(name string, kind TagKind, fn string, size, elem int) *Tag {
	tag := &Tag{
		ID:   TagID(len(t.tags)),
		Name: name,
		Kind: kind,
		Func: fn,
		Size: size,
		Elem: elem,
	}
	t.tags = append(t.tags, tag)
	return tag
}

// Get returns the tag with the given id. It panics on an invalid id:
// tag ids are internal invariants, not user input.
func (t *TagTable) Get(id TagID) *Tag {
	return t.tags[id]
}

// Len returns the number of allocated tags.
func (t *TagTable) Len() int { return len(t.tags) }

// All returns the backing slice of tags; callers must not mutate it.
func (t *TagTable) All() []*Tag { return t.tags }

// A TagSet is a set of tags, with a distinguished "all memory" top
// element used before analysis has run. The zero value is the empty
// set.
type TagSet struct {
	// all marks the ⊤ set: the operation may touch any location.
	all bool
	// ids is sorted and duplicate-free when all is false.
	ids []TagID
}

// TopSet returns the ⊤ tag set ("may touch anything").
func TopSet() TagSet { return TagSet{all: true} }

// NewTagSet builds a set from the given ids.
func NewTagSet(ids ...TagID) TagSet {
	s := TagSet{ids: append([]TagID(nil), ids...)}
	s.normalize()
	return s
}

func (s *TagSet) normalize() {
	sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	out := s.ids[:0]
	var prev TagID = TagInvalid
	for _, id := range s.ids {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	s.ids = out
}

// IsTop reports whether the set is the ⊤ ("all memory") set.
func (s TagSet) IsTop() bool { return s.all }

// IsEmpty reports whether the set is empty (and not ⊤).
func (s TagSet) IsEmpty() bool { return !s.all && len(s.ids) == 0 }

// Len returns the number of explicit members; it is meaningless for ⊤.
func (s TagSet) Len() int { return len(s.ids) }

// Singleton returns the sole member, if the set has exactly one
// explicit member.
func (s TagSet) Singleton() (TagID, bool) {
	if !s.all && len(s.ids) == 1 {
		return s.ids[0], true
	}
	return TagInvalid, false
}

// Has reports whether id is a member (always true for ⊤).
func (s TagSet) Has(id TagID) bool {
	if s.all {
		return true
	}
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// IDs returns the explicit members in sorted order; callers must not
// mutate the result. It returns nil for ⊤.
func (s TagSet) IDs() []TagID { return s.ids }

// Union returns s ∪ o.
func (s TagSet) Union(o TagSet) TagSet {
	if s.all || o.all {
		return TopSet()
	}
	if len(s.ids) == 0 {
		return o
	}
	if len(o.ids) == 0 {
		return s
	}
	out := make([]TagID, 0, len(s.ids)+len(o.ids))
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			out = append(out, s.ids[i])
			i++
		case s.ids[i] > o.ids[j]:
			out = append(out, o.ids[j])
			j++
		default:
			out = append(out, s.ids[i])
			i++
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	out = append(out, o.ids[j:]...)
	return TagSet{ids: out}
}

// Intersect returns s ∩ o. Intersecting with ⊤ yields the other set.
func (s TagSet) Intersect(o TagSet) TagSet {
	if s.all {
		return o
	}
	if o.all {
		return s
	}
	var out []TagID
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			i++
		case s.ids[i] > o.ids[j]:
			j++
		default:
			out = append(out, s.ids[i])
			i++
			j++
		}
	}
	return TagSet{ids: out}
}

// Minus returns s \ o. The result of subtracting from ⊤ is ⊤ (we never
// need precise complements).
func (s TagSet) Minus(o TagSet) TagSet {
	if o.all {
		return TagSet{}
	}
	if s.all {
		return TopSet()
	}
	var out []TagID
	j := 0
	for _, id := range s.ids {
		for j < len(o.ids) && o.ids[j] < id {
			j++
		}
		if j < len(o.ids) && o.ids[j] == id {
			continue
		}
		out = append(out, id)
	}
	return TagSet{ids: out}
}

// Intersects reports whether s ∩ o is non-empty. ⊤ intersects every
// non-empty set and, conservatively, every ⊤.
func (s TagSet) Intersects(o TagSet) bool {
	if s.all {
		return o.all || len(o.ids) > 0
	}
	if o.all {
		return len(s.ids) > 0
	}
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			i++
		case s.ids[i] > o.ids[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Equal reports set equality.
func (s TagSet) Equal(o TagSet) bool {
	if s.all != o.all || len(s.ids) != len(o.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != o.ids[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ o.
func (s TagSet) SubsetOf(o TagSet) bool {
	if o.all {
		return true
	}
	if s.all {
		return false
	}
	j := 0
	for _, id := range s.ids {
		for j < len(o.ids) && o.ids[j] < id {
			j++
		}
		if j >= len(o.ids) || o.ids[j] != id {
			return false
		}
	}
	return true
}

// With returns s ∪ {id}.
func (s TagSet) With(id TagID) TagSet {
	if s.all || s.Has(id) {
		return s
	}
	return s.Union(NewTagSet(id))
}

// String formats the set using the module-independent tag ids.
func (s TagSet) String() string {
	if s.all {
		return "[*]"
	}
	parts := make([]string, len(s.ids))
	for i, id := range s.ids {
		parts[i] = fmt.Sprintf("t%d", id)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Format formats the set using tag names from the table.
func (s TagSet) Format(tt *TagTable) string {
	if s.all {
		return "[*]"
	}
	parts := make([]string, len(s.ids))
	for i, id := range s.ids {
		parts[i] = tt.Get(id).Name
	}
	return "[" + strings.Join(parts, ",") + "]"
}
