package ir

import "fmt"

// BlockID numbers a basic block within its function.
type BlockID int32

// Block is a basic block: a straight-line instruction sequence ending
// in a terminator, plus explicit successor/predecessor edges.
type Block struct {
	ID     BlockID
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block

	// Label is a human-readable name for dumps ("B3", "B3.pad", …).
	Label string
}

// Terminator returns the block's final instruction, or nil for an
// empty block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	in := &b.Instrs[len(b.Instrs)-1]
	if !in.Op.IsTerminator() {
		return nil
	}
	return in
}

// HasSucc reports whether s is a successor of b.
func (b *Block) HasSucc(s *Block) bool {
	for _, t := range b.Succs {
		if t == s {
			return true
		}
	}
	return false
}

// ReplaceSucc redirects every edge b→from to b→to and fixes the
// predecessor lists of both ends.
func (b *Block) ReplaceSucc(from, to *Block) {
	for i, s := range b.Succs {
		if s == from {
			b.Succs[i] = to
			from.removePred(b)
			to.Preds = append(to.Preds, b)
		}
	}
}

func (b *Block) removePred(p *Block) {
	for i, q := range b.Preds {
		if q == p {
			b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
			return
		}
	}
}

// Func is one IL function.
type Func struct {
	Name string

	// Params are the registers that receive the arguments, in
	// order. Callees copy incoming values here on entry.
	Params []Reg

	// NumRegs is the number of virtual registers allocated so far;
	// register numbers are in [0, NumRegs).
	NumRegs int

	Entry  *Block
	Blocks []*Block

	// Locals lists the tags of stack-resident locals (address-taken
	// scalars, arrays, structs) owned by this function, in frame
	// layout order.
	Locals []TagID

	// HasVarRet records whether the function returns a value.
	HasVarRet bool

	// Allocated is set once physical register allocation has run;
	// NumRegs is then the physical register count actually used.
	Allocated bool
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// NewBlock allocates a new block, appends it to the function, and
// returns it.
func (f *Func) NewBlock(label string) *Block {
	b := &Block{ID: BlockID(len(f.Blocks)), Label: label}
	if b.Label == "" {
		b.Label = fmt.Sprintf("B%d", b.ID)
	}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Renumber reassigns dense block ids in slice order and refreshes
// default labels of the form "B<n>".
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		old := fmt.Sprintf("B%d", b.ID)
		b.ID = BlockID(i)
		if b.Label == old {
			b.Label = fmt.Sprintf("B%d", b.ID)
		}
	}
}

// AddEdge records a CFG edge from p to s.
func AddEdge(p, s *Block) {
	p.Succs = append(p.Succs, s)
	s.Preds = append(s.Preds, p)
}

// ReachableBlocks returns the blocks reachable from the entry in
// depth-first preorder.
func (f *Func) ReachableBlocks() []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var order []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		order = append(order, b)
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(f.Entry)
	return order
}

// RemoveUnreachable drops blocks not reachable from the entry and
// fixes predecessor lists.
func (f *Func) RemoveUnreachable() {
	reach := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.ReachableBlocks() {
		reach[b] = true
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
			var preds []*Block
			for _, p := range b.Preds {
				if reach[p] {
					preds = append(preds, p)
				}
			}
			b.Preds = preds
		}
	}
	f.Blocks = kept
	f.Renumber()
}

// Reloc records that the 8 bytes at Offset within an initialized
// global hold the run-time address of Target (plus Addend). The
// loader patches them once the memory layout is fixed.
type Reloc struct {
	Offset int
	Target TagID
	Addend int64
}

// GlobalInit describes one global variable's static initialization.
type GlobalInit struct {
	Tag TagID
	// Data holds the initial bytes (zero-filled to the tag's size
	// when shorter).
	Data []byte
	// Relocs are address patches applied at load time.
	Relocs []Reloc
}

// Module is a whole compiled program.
type Module struct {
	Funcs map[string]*Func
	// FuncOrder lists function names in source order, for
	// deterministic iteration.
	FuncOrder []string
	Tags      TagTable
	Inits     []GlobalInit

	// AddressedFuncs lists functions whose address is taken
	// (possible targets of indirect calls).
	AddressedFuncs []string
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{Funcs: make(map[string]*Func)}
}

// AddFunc registers fn in the module.
func (m *Module) AddFunc(fn *Func) {
	m.Funcs[fn.Name] = fn
	m.FuncOrder = append(m.FuncOrder, fn.Name)
}

// FuncsInOrder returns the functions in source order.
func (m *Module) FuncsInOrder() []*Func {
	out := make([]*Func, 0, len(m.FuncOrder))
	for _, name := range m.FuncOrder {
		out = append(out, m.Funcs[name])
	}
	return out
}
