package ir

import "fmt"

// Op is an IL opcode.
type Op uint8

// The opcode set. Memory opcodes realize the paper's Table 1 hierarchy;
// the mnemonics in comments are the ones the paper's Figure 2 uses.
const (
	OpNop Op = iota

	// Constants and copies.
	OpLoadI // iLoad: materialize a known integer constant (Imm)
	OpLoadF // iLoad: materialize a known double constant (FImm)
	OpCopy  // CP: register copy

	// Integer arithmetic (64-bit two's complement).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot // bitwise complement
	OpShl
	OpShr // arithmetic right shift

	// Integer comparisons, producing 0 or 1.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Double-precision arithmetic. Register bits are reinterpreted
	// as IEEE-754 doubles.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Double comparisons, producing integer 0 or 1.
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE

	// Conversions.
	OpI2F // int64 -> double
	OpF2I // double -> int64 (truncating)

	// Memory operations (Table 1).
	OpCLoad  // cLoad: load an invariant, but unknown, value named by Tag
	OpSLoad  // SLD: scalar load of Tag
	OpSStore // SST: scalar store of A into Tag
	OpPLoad  // PLD: pointer-based load, address in A, may-set in Tags
	OpPStore // PST: pointer-based store of B at address A, may-set in Tags
	OpAddrOf // materialize the address of Tag into Dst

	// Control flow. Branch targets live on the Block (Succs).
	OpBr  // unconditional; one successor
	OpCBr // conditional on A; Succs[0] taken when A != 0, else Succs[1]
	OpRet // return, value in A when HasValue
	OpJsr // call Callee (or the address in A when Callee == ""), args in Args

	opMax
)

var opNames = [...]string{
	OpNop:    "nop",
	OpLoadI:  "loadI",
	OpLoadF:  "loadF",
	OpCopy:   "cp",
	OpAdd:    "add",
	OpSub:    "sub",
	OpMul:    "mul",
	OpDiv:    "div",
	OpRem:    "rem",
	OpNeg:    "neg",
	OpAnd:    "and",
	OpOr:     "or",
	OpXor:    "xor",
	OpNot:    "not",
	OpShl:    "shl",
	OpShr:    "shr",
	OpCmpEQ:  "cmpEQ",
	OpCmpNE:  "cmpNE",
	OpCmpLT:  "cmpLT",
	OpCmpLE:  "cmpLE",
	OpCmpGT:  "cmpGT",
	OpCmpGE:  "cmpGE",
	OpFAdd:   "fadd",
	OpFSub:   "fsub",
	OpFMul:   "fmul",
	OpFDiv:   "fdiv",
	OpFNeg:   "fneg",
	OpFCmpEQ: "fcmpEQ",
	OpFCmpNE: "fcmpNE",
	OpFCmpLT: "fcmpLT",
	OpFCmpLE: "fcmpLE",
	OpFCmpGT: "fcmpGT",
	OpFCmpGE: "fcmpGE",
	OpI2F:    "i2f",
	OpF2I:    "f2i",
	OpCLoad:  "cLoad",
	OpSLoad:  "sLoad",
	OpSStore: "sStore",
	OpPLoad:  "pLoad",
	OpPStore: "pStore",
	OpAddrOf: "addrOf",
	OpBr:     "br",
	OpCBr:    "cbr",
	OpRet:    "ret",
	OpJsr:    "jsr",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsLoad reports whether op reads memory. LoadI/LoadF are immediate
// loads and do not touch memory.
func (op Op) IsLoad() bool {
	return op == OpCLoad || op == OpSLoad || op == OpPLoad
}

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool {
	return op == OpSStore || op == OpPStore
}

// IsMem reports whether op is a memory operation (load or store).
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpBr || op == OpCBr || op == OpRet
}

// HasDst reports whether instructions with this opcode define Dst.
// OpJsr defines Dst only when the instruction's Dst is valid.
func (op Op) HasDst() bool {
	switch op {
	case OpNop, OpSStore, OpPStore, OpBr, OpCBr, OpRet:
		return false
	}
	return true
}

// IsCommutative reports whether the binary op commutes.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpCmpEQ, OpCmpNE, OpFAdd, OpFMul, OpFCmpEQ, OpFCmpNE:
		return true
	}
	return false
}
