package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Diag is one diagnostic produced by the IL verifier, a lint pass in
// internal/check, or the interpreter's soundness sanitizer. All three
// layers share this type so rpcc, rpexec, and rpfuzz print identical
// lines for the same defect and golden tests don't drift between
// tools.
type Diag struct {
	// Check names the pass that produced the diagnostic, e.g.
	// "verify", "uninit", or "sanitize.mod".
	Check string
	// Func is the enclosing function.
	Func string
	// Block is the label of the enclosing block; empty for
	// function-level diagnostics.
	Block string
	// Index is the instruction's position within Block, or -1 when
	// the diagnostic is not anchored to one instruction.
	Index int
	// Op is the opcode of the offending instruction (OpNop when the
	// diagnostic has no instruction).
	Op Op
	// Msg describes the violation.
	Msg string
}

// String renders the canonical single-line form
//
//	[check] func/block#index: op: msg
//
// omitting the parts that are absent. This is the stable format every
// tool prints and every golden test matches.
func (d Diag) String() string {
	var sb strings.Builder
	if d.Check != "" {
		sb.WriteByte('[')
		sb.WriteString(d.Check)
		sb.WriteString("] ")
	}
	if d.Func != "" || d.Block != "" {
		sb.WriteString(d.Func)
		if d.Block != "" {
			sb.WriteByte('/')
			sb.WriteString(d.Block)
			if d.Index >= 0 {
				fmt.Fprintf(&sb, "#%d", d.Index)
			}
		}
		sb.WriteString(": ")
	}
	if d.Op != OpNop {
		sb.WriteString(d.Op.String())
		sb.WriteString(": ")
	}
	sb.WriteString(d.Msg)
	return sb.String()
}

// SortDiags orders a diagnostic list by program position — function,
// then block label, then instruction index — with a stable sort, so
// diagnostics accumulated in schedule-dependent order (the parallel
// middle end visits functions concurrently) print byte-identically at
// any worker count. Diags at the same position keep their relative
// (registry) order.
func SortDiags(ds []Diag) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Func != ds[j].Func {
			return ds[i].Func < ds[j].Func
		}
		if ds[i].Block != ds[j].Block {
			return ds[i].Block < ds[j].Block
		}
		return ds[i].Index < ds[j].Index
	})
}

// DiagError folds a diagnostic list into a single error: nil when the
// list is empty, otherwise the first diagnostic plus a count of the
// rest. Callers that want every violation use the slice directly.
func DiagError(ds []Diag) error {
	switch len(ds) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("%s", ds[0])
	default:
		return fmt.Errorf("%s (and %d more)", ds[0], len(ds)-1)
	}
}
