package ir

import (
	"fmt"
	"strings"
)

// FormatInstr renders one instruction in the paper's abstract style:
// mnemonic, tag list, then the registers involved.
func FormatInstr(in *Instr, tt *TagTable, b *Block) string {
	tagName := func(id TagID) string {
		if tt != nil && id != TagInvalid {
			return "[" + tt.Get(id).Name + "]"
		}
		return fmt.Sprintf("[t%d]", id)
	}
	tagsName := func(s TagSet) string {
		if tt != nil {
			return s.Format(tt)
		}
		return s.String()
	}
	succ := func(i int) string {
		if b != nil && i < len(b.Succs) {
			return b.Succs[i].Label
		}
		return fmt.Sprintf("succ%d", i)
	}
	switch in.Op {
	case OpNop:
		return "nop"
	case OpLoadI:
		return fmt.Sprintf("loadI %d -> r%d", in.Imm, in.Dst)
	case OpLoadF:
		return fmt.Sprintf("loadF %g -> r%d", in.FImm, in.Dst)
	case OpCopy:
		return fmt.Sprintf("cp r%d -> r%d", in.A, in.Dst)
	case OpNeg, OpNot, OpFNeg, OpI2F, OpF2I:
		return fmt.Sprintf("%s r%d -> r%d", in.Op, in.A, in.Dst)
	case OpCLoad:
		return fmt.Sprintf("cLoad %s -> r%d", tagName(in.Tag), in.Dst)
	case OpSLoad:
		return fmt.Sprintf("sLoad %s -> r%d", tagName(in.Tag), in.Dst)
	case OpSStore:
		return fmt.Sprintf("sStore %s r%d", tagName(in.Tag), in.A)
	case OpPLoad:
		return fmt.Sprintf("pLoad %s (r%d) -> r%d", tagsName(in.Tags), in.A, in.Dst)
	case OpPStore:
		return fmt.Sprintf("pStore %s (r%d) r%d", tagsName(in.Tags), in.A, in.B)
	case OpAddrOf:
		if in.Callee != "" {
			return fmt.Sprintf("addrOf @%s -> r%d", in.Callee, in.Dst)
		}
		return fmt.Sprintf("addrOf %s -> r%d", tagName(in.Tag), in.Dst)
	case OpBr:
		return fmt.Sprintf("br %s", succ(0))
	case OpCBr:
		return fmt.Sprintf("cbr r%d ? %s : %s", in.A, succ(0), succ(1))
	case OpRet:
		if in.HasValue {
			return fmt.Sprintf("ret r%d", in.A)
		}
		return "ret"
	case OpJsr:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		target := "@" + in.Callee
		if in.Callee == "" {
			target = fmt.Sprintf("(r%d)", in.A)
		}
		s := fmt.Sprintf("jsr %s(%s)", target, strings.Join(args, ","))
		if in.HasValue {
			s += fmt.Sprintf(" -> r%d", in.Dst)
		}
		s += fmt.Sprintf(" mod %s ref %s", tagsName(in.Mods), tagsName(in.Refs))
		return s
	default:
		return fmt.Sprintf("%s r%d r%d -> r%d", in.Op, in.A, in.B, in.Dst)
	}
}

// FormatFunc renders a function listing.
func FormatFunc(f *Func, tt *TagTable) string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("r%d", p)
	}
	fmt.Fprintf(&sb, "func %s(%s)  ; regs=%d\n", f.Name, strings.Join(params, ","), f.NumRegs)
	for _, b := range f.Blocks {
		succs := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = s.Label
		}
		fmt.Fprintf(&sb, "%s:", b.Label)
		if b == f.Entry {
			sb.WriteString("  ; entry")
		}
		sb.WriteByte('\n')
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", FormatInstr(&b.Instrs[i], tt, b))
		}
	}
	return sb.String()
}

// FormatModule renders every function in the module.
func FormatModule(m *Module) string {
	var sb strings.Builder
	for _, f := range m.FuncsInOrder() {
		sb.WriteString(FormatFunc(f, &m.Tags))
		sb.WriteByte('\n')
	}
	return sb.String()
}
