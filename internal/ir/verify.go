package ir

import "fmt"

// VerifyFuncAll checks structural well-formedness of a function —
// every block ends in exactly one terminator, successor counts match
// the terminator, edges are symmetric, register numbers are in range,
// and memory operations carry sensible sizes and tags — and returns
// every violation found, each anchored to its function, block, and
// instruction. Deeper semantic invariants (reachability, use-before-
// def, tag discipline, promotion regions) live in internal/check.
func VerifyFuncAll(f *Func, tt *TagTable) []Diag {
	var ds []Diag
	funcDiag := func(msg string, args ...any) {
		ds = append(ds, Diag{Check: "verify", Func: f.Name, Index: -1, Msg: fmt.Sprintf(msg, args...)})
	}
	if f.Entry == nil {
		funcDiag("no entry block")
		return ds
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	if !inFunc[f.Entry] {
		funcDiag("entry block not in Blocks")
	}
	for _, b := range f.Blocks {
		blockDiag := func(msg string, args ...any) {
			ds = append(ds, Diag{Check: "verify", Func: f.Name, Block: b.Label, Index: -1, Msg: fmt.Sprintf(msg, args...)})
		}
		if len(b.Instrs) == 0 {
			blockDiag("empty block")
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				ds = append(ds, Diag{Check: "verify", Func: f.Name, Block: b.Label, Index: i, Op: in.Op, Msg: "terminator not last"})
			}
			ds = verifyInstr(ds, f, b, i, in, tt)
		}
		term := b.Terminator()
		if term == nil {
			blockDiag("missing terminator")
		} else {
			want := 0
			switch term.Op {
			case OpBr:
				want = 1
			case OpCBr:
				want = 2
			case OpRet:
				want = 0
			}
			if len(b.Succs) != want {
				blockDiag("%s with %d successors", term.Op, len(b.Succs))
			}
		}
		for _, s := range b.Succs {
			if !inFunc[s] {
				blockDiag("successor %s not in function", s.Label)
			} else if !hasPred(s, b) {
				blockDiag("successor %s missing back-pointer", s.Label)
			}
		}
		for _, p := range b.Preds {
			if !inFunc[p] {
				blockDiag("predecessor %s not in function", p.Label)
			} else if !p.HasSucc(b) {
				blockDiag("predecessor %s missing forward edge", p.Label)
			}
		}
	}
	return ds
}

// VerifyFunc runs VerifyFuncAll and summarizes the result as a single
// error (nil when the function is well-formed).
func VerifyFunc(f *Func, tt *TagTable) error {
	return DiagError(VerifyFuncAll(f, tt))
}

func hasPred(b, p *Block) bool {
	for _, q := range b.Preds {
		if q == p {
			return true
		}
	}
	return false
}

func verifyInstr(ds []Diag, f *Func, b *Block, idx int, in *Instr, tt *TagTable) []Diag {
	ctx := func(msg string, args ...any) {
		ds = append(ds, Diag{Check: "verify", Func: f.Name, Block: b.Label, Index: idx, Op: in.Op, Msg: fmt.Sprintf(msg, args...)})
	}
	checkReg := func(r Reg) {
		if r < 0 || int(r) >= f.NumRegs {
			ctx("register r%d out of range [0,%d)", r, f.NumRegs)
		}
	}
	var buf [8]Reg
	for _, r := range in.Uses(buf[:0]) {
		checkReg(r)
	}
	if d := in.Def(); d != RegInvalid {
		checkReg(d)
	}
	switch in.Op {
	case OpCLoad, OpSLoad, OpSStore:
		if tt != nil && (in.Tag < 0 || int(in.Tag) >= tt.Len()) {
			ctx("bad tag %d", in.Tag)
		}
		if in.Size != 1 && in.Size != 4 && in.Size != 8 {
			ctx("bad size %d", in.Size)
		}
	case OpPLoad, OpPStore:
		if in.Size != 1 && in.Size != 4 && in.Size != 8 {
			ctx("bad size %d", in.Size)
		}
	case OpAddrOf:
		if in.Callee == "" && tt != nil && (in.Tag < 0 || int(in.Tag) >= tt.Len()) {
			ctx("bad tag %d", in.Tag)
		}
	}
	return ds
}

// VerifyModuleAll verifies every function in the module, collecting
// all violations.
func VerifyModuleAll(m *Module) []Diag {
	var ds []Diag
	for _, f := range m.FuncsInOrder() {
		ds = append(ds, VerifyFuncAll(f, &m.Tags)...)
	}
	return ds
}

// VerifyModule verifies every function in the module, summarizing any
// violations as a single error.
func VerifyModule(m *Module) error {
	return DiagError(VerifyModuleAll(m))
}
