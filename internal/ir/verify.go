package ir

import "fmt"

// VerifyFunc checks structural well-formedness of a function:
// every block ends in exactly one terminator, successor counts match
// the terminator, edges are symmetric, register numbers are in range,
// and memory operations carry sensible sizes and tags. It returns the
// first violation found.
func VerifyFunc(f *Func, tt *TagTable) error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	if !inFunc[f.Entry] {
		return fmt.Errorf("%s: entry block not in Blocks", f.Name)
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s/%s: empty block", f.Name, b.Label)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("%s/%s: terminator %s not last", f.Name, b.Label, in.Op)
			}
			if err := verifyInstr(f, b, in, tt); err != nil {
				return err
			}
		}
		term := b.Terminator()
		if term == nil {
			return fmt.Errorf("%s/%s: missing terminator", f.Name, b.Label)
		}
		want := 0
		switch term.Op {
		case OpBr:
			want = 1
		case OpCBr:
			want = 2
		case OpRet:
			want = 0
		}
		if len(b.Succs) != want {
			return fmt.Errorf("%s/%s: %s with %d successors", f.Name, b.Label, term.Op, len(b.Succs))
		}
		for _, s := range b.Succs {
			if !inFunc[s] {
				return fmt.Errorf("%s/%s: successor %s not in function", f.Name, b.Label, s.Label)
			}
			if !hasPred(s, b) {
				return fmt.Errorf("%s/%s: successor %s missing back-pointer", f.Name, b.Label, s.Label)
			}
		}
		for _, p := range b.Preds {
			if !inFunc[p] {
				return fmt.Errorf("%s/%s: predecessor %s not in function", f.Name, b.Label, p.Label)
			}
			if !p.HasSucc(b) {
				return fmt.Errorf("%s/%s: predecessor %s missing forward edge", f.Name, b.Label, p.Label)
			}
		}
	}
	return nil
}

func hasPred(b, p *Block) bool {
	for _, q := range b.Preds {
		if q == p {
			return true
		}
	}
	return false
}

func verifyInstr(f *Func, b *Block, in *Instr, tt *TagTable) error {
	ctx := func(msg string, args ...any) error {
		return fmt.Errorf("%s/%s: %s: %s", f.Name, b.Label, in.Op, fmt.Sprintf(msg, args...))
	}
	checkReg := func(r Reg) error {
		if r < 0 || int(r) >= f.NumRegs {
			return ctx("register r%d out of range [0,%d)", r, f.NumRegs)
		}
		return nil
	}
	var buf [8]Reg
	for _, r := range in.Uses(buf[:0]) {
		if err := checkReg(r); err != nil {
			return err
		}
	}
	if d := in.Def(); d != RegInvalid {
		if err := checkReg(d); err != nil {
			return err
		}
	}
	switch in.Op {
	case OpCLoad, OpSLoad, OpSStore:
		if tt != nil && (in.Tag < 0 || int(in.Tag) >= tt.Len()) {
			return ctx("bad tag %d", in.Tag)
		}
		if in.Size != 1 && in.Size != 4 && in.Size != 8 {
			return ctx("bad size %d", in.Size)
		}
	case OpPLoad, OpPStore:
		if in.Size != 1 && in.Size != 4 && in.Size != 8 {
			return ctx("bad size %d", in.Size)
		}
	case OpAddrOf:
		if in.Callee == "" && tt != nil && (in.Tag < 0 || int(in.Tag) >= tt.Len()) {
			return ctx("bad tag %d", in.Tag)
		}
	}
	return nil
}

// VerifyModule verifies every function in the module.
func VerifyModule(m *Module) error {
	for _, f := range m.FuncsInOrder() {
		if err := VerifyFunc(f, &m.Tags); err != nil {
			return err
		}
	}
	return nil
}
