package ir

// Clone returns a deep copy of the module: functions, blocks,
// instructions, the tag table, and global initializers are all
// duplicated, so passes run on the clone never disturb the original.
// This is what lets one front-end artifact fork many independent
// pipeline configurations (compile-once sharing): parse and generate
// IL once, then hand each configuration its own clone.
//
// TagSet values are shared between the copies — every TagSet operation
// allocates a fresh backing slice, so sharing is safe by construction.
func (m *Module) Clone() *Module {
	out := &Module{
		Funcs:          make(map[string]*Func, len(m.Funcs)),
		FuncOrder:      append([]string(nil), m.FuncOrder...),
		Tags:           m.Tags.Clone(),
		AddressedFuncs: append([]string(nil), m.AddressedFuncs...),
	}
	if m.Inits != nil {
		out.Inits = make([]GlobalInit, len(m.Inits))
		for i, init := range m.Inits {
			out.Inits[i] = GlobalInit{
				Tag:    init.Tag,
				Data:   append([]byte(nil), init.Data...),
				Relocs: append([]Reloc(nil), init.Relocs...),
			}
		}
	}
	for _, name := range m.FuncOrder {
		out.Funcs[name] = m.Funcs[name].Clone()
	}
	return out
}

// Clone returns a deep copy of the function. Blocks are duplicated and
// their successor/predecessor edges remapped onto the copies.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:      f.Name,
		Params:    append([]Reg(nil), f.Params...),
		NumRegs:   f.NumRegs,
		Locals:    append([]TagID(nil), f.Locals...),
		HasVarRet: f.HasVarRet,
		Allocated: f.Allocated,
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Label: b.Label}
		if len(b.Instrs) > 0 {
			nb.Instrs = make([]Instr, len(b.Instrs))
			for i := range b.Instrs {
				nb.Instrs[i] = b.Instrs[i].Clone()
			}
		}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	remap := func(bs []*Block) []*Block {
		if bs == nil {
			return nil
		}
		out := make([]*Block, len(bs))
		for i, b := range bs {
			out[i] = bmap[b]
		}
		return out
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		nb.Succs = remap(b.Succs)
		nb.Preds = remap(b.Preds)
	}
	nf.Entry = bmap[f.Entry]
	return nf
}

// Clone returns a deep copy of the table; the copies' tags can be
// mutated (or extended with spill slots) independently.
func (t *TagTable) Clone() TagTable {
	tags := make([]*Tag, len(t.tags))
	for i, tag := range t.tags {
		c := *tag
		tags[i] = &c
	}
	return TagTable{tags: tags}
}
