package ir

import (
	"strings"
	"testing"
)

// TestVerifyFuncAllCollectsEveryViolation checks the collect-all
// contract: a function with several independent defects yields one
// Diag per defect with block/instruction provenance, and the
// error-compatible summary names the first and counts the rest.
func TestVerifyFuncAllCollectsEveryViolation(t *testing.T) {
	fn := &Func{Name: "bad", NumRegs: 1}
	b := fn.NewBlock("")
	fn.Entry = b
	b.Instrs = []Instr{
		// Defect 1: register out of range.
		{Op: OpCopy, Dst: 0, A: 42},
		// Defect 2: invalid access size.
		{Op: OpSLoad, Dst: 0, Tag: 0, Size: 3},
		{Op: OpRet, A: RegInvalid},
	}
	var tt TagTable
	tt.NewTag("g", TagGlobal, "", 8, 8)

	ds := VerifyFuncAll(fn, &tt)
	if len(ds) < 2 {
		t.Fatalf("collected %d diagnostics %v, want at least 2", len(ds), ds)
	}
	for _, d := range ds {
		if d.Func != "bad" || d.Block == "" || d.Index < 0 {
			t.Errorf("diag missing provenance: %+v", d)
		}
		if d.Check != "verify" {
			t.Errorf("diag check = %q, want verify", d.Check)
		}
	}

	err := VerifyFunc(fn, &tt)
	if err == nil {
		t.Fatal("summary error is nil despite violations")
	}
	if !strings.Contains(err.Error(), ds[0].Msg) {
		t.Errorf("summary %q does not lead with the first diag %q", err, ds[0].Msg)
	}
	if len(ds) > 1 && !strings.Contains(err.Error(), "more") {
		t.Errorf("summary %q does not count the remaining diags", err)
	}
}

// TestDiagStringForm pins the stable rendering every tool prints.
func TestDiagStringForm(t *testing.T) {
	cases := []struct {
		d    Diag
		want string
	}{
		{Diag{Check: "verify", Func: "f", Block: "B1", Index: 2, Op: OpSLoad, Msg: "boom"},
			"[verify] f/B1#2: sLoad: boom"},
		{Diag{Check: "cfg", Func: "f", Block: "B1", Index: -1, Msg: "unreachable block"},
			"[cfg] f/B1: unreachable block"},
		{Diag{Check: "arity", Func: "f", Index: -1, Msg: "missing"},
			"[arity] f: missing"},
		{Diag{Check: "sanitize.mod", Msg: "bare"},
			"[sanitize.mod] bare"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// TestDiagError folds diagnostic lists into the error summary shape.
func TestDiagError(t *testing.T) {
	if DiagError(nil) != nil {
		t.Error("empty list must fold to nil")
	}
	one := []Diag{{Check: "verify", Msg: "a"}}
	if err := DiagError(one); err == nil || strings.Contains(err.Error(), "more") {
		t.Errorf("single diag summary = %v", err)
	}
	two := append(one, Diag{Check: "verify", Msg: "b"})
	if err := DiagError(two); err == nil || !strings.Contains(err.Error(), "and 1 more") {
		t.Errorf("two-diag summary = %v", err)
	}
}
