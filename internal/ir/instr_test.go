package ir

import (
	"strings"
	"testing"
)

func TestUsesAndDefPerOpcode(t *testing.T) {
	var buf [8]Reg
	cases := []struct {
		in   Instr
		uses []Reg
		def  Reg
	}{
		{Instr{Op: OpLoadI, Dst: 1, Imm: 5}, nil, 1},
		{Instr{Op: OpCopy, Dst: 2, A: 1}, []Reg{1}, 2},
		{Instr{Op: OpAdd, Dst: 3, A: 1, B: 2}, []Reg{1, 2}, 3},
		{Instr{Op: OpSLoad, Dst: 4, Tag: 0, Size: 8}, nil, 4},
		{Instr{Op: OpSStore, A: 4, Tag: 0, Size: 8}, []Reg{4}, RegInvalid},
		{Instr{Op: OpPLoad, Dst: 5, A: 4, Size: 8}, []Reg{4}, 5},
		{Instr{Op: OpPStore, A: 4, B: 5, Size: 8}, []Reg{4, 5}, RegInvalid},
		{Instr{Op: OpBr}, nil, RegInvalid},
		{Instr{Op: OpCBr, A: 6}, []Reg{6}, RegInvalid},
		{Instr{Op: OpRet, A: 7, HasValue: true}, []Reg{7}, RegInvalid},
		{Instr{Op: OpRet, A: RegInvalid}, nil, RegInvalid},
		{Instr{Op: OpJsr, Callee: "f", Args: []Reg{1, 2}, Dst: 3, HasValue: true}, []Reg{1, 2}, 3},
		{Instr{Op: OpJsr, Callee: "", A: 9, Args: []Reg{1}, Dst: RegInvalid}, []Reg{9, 1}, RegInvalid},
		{Instr{Op: OpAddrOf, Dst: 8, Tag: 0}, nil, 8},
	}
	for _, c := range cases {
		got := c.in.Uses(buf[:0])
		if len(got) != len(c.uses) {
			t.Fatalf("%s: uses = %v, want %v", c.in.Op, got, c.uses)
		}
		for i := range got {
			if got[i] != c.uses[i] {
				t.Fatalf("%s: uses = %v, want %v", c.in.Op, got, c.uses)
			}
		}
		if d := c.in.Def(); d != c.def {
			t.Fatalf("%s: def = %v, want %v", c.in.Op, d, c.def)
		}
	}
}

func TestJsrWithoutValueHasNoDef(t *testing.T) {
	in := Instr{Op: OpJsr, Callee: "f", Dst: 3, HasValue: false}
	if in.Def() != RegInvalid {
		t.Fatal("value-less call must not define a register")
	}
}

func TestMapUsesHandlesOverlappingRenames(t *testing.T) {
	// Swap r1 <-> r2 in one shot: value-based replacement would
	// collapse both operands onto one register.
	in := Instr{Op: OpAdd, Dst: 0, A: 1, B: 2}
	in.MapUses(func(r Reg) Reg {
		switch r {
		case 1:
			return 2
		case 2:
			return 1
		}
		return r
	})
	if in.A != 2 || in.B != 1 {
		t.Fatalf("swap failed: A=%d B=%d", in.A, in.B)
	}
}

func TestReplaceUses(t *testing.T) {
	in := Instr{Op: OpJsr, Callee: "f", Args: []Reg{1, 2, 1}}
	in.ReplaceUses(1, 9)
	if in.Args[0] != 9 || in.Args[1] != 2 || in.Args[2] != 9 {
		t.Fatalf("args = %v", in.Args)
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := Instr{Op: OpJsr, Callee: "f", Args: []Reg{1, 2}}
	cp := in.Clone()
	cp.Args[0] = 99
	if in.Args[0] == 99 {
		t.Fatal("clone shares Args with original")
	}
}

func TestMayReadWriteMem(t *testing.T) {
	load := Instr{Op: OpSLoad, Tag: 3}
	if !load.MayReadMem().Has(3) || !load.MayWriteMem().IsEmpty() {
		t.Fatal("sLoad effects wrong")
	}
	store := Instr{Op: OpPStore, Tags: NewTagSet(1, 2)}
	if !store.MayWriteMem().Equal(NewTagSet(1, 2)) || !store.MayReadMem().IsEmpty() {
		t.Fatal("pStore effects wrong")
	}
	call := Instr{Op: OpJsr, Mods: NewTagSet(1), Refs: NewTagSet(2)}
	if !call.MayWriteMem().Has(1) || !call.MayReadMem().Has(2) {
		t.Fatal("call effects wrong")
	}
}

func TestVerifyCatchesBrokenFunctions(t *testing.T) {
	mk := func(build func(fn *Func)) error {
		fn := &Func{Name: "t"}
		build(fn)
		return VerifyFunc(fn, nil)
	}

	// Well-formed.
	if err := mk(func(fn *Func) {
		b := fn.NewBlock("")
		fn.Entry = b
		b.Instrs = []Instr{{Op: OpRet, A: RegInvalid}}
	}); err != nil {
		t.Fatalf("valid function rejected: %v", err)
	}

	// Missing terminator.
	if err := mk(func(fn *Func) {
		b := fn.NewBlock("")
		fn.Entry = b
		r := fn.NewReg()
		b.Instrs = []Instr{{Op: OpLoadI, Dst: r}}
	}); err == nil {
		t.Fatal("missing terminator accepted")
	}

	// Register out of range.
	if err := mk(func(fn *Func) {
		b := fn.NewBlock("")
		fn.Entry = b
		b.Instrs = []Instr{{Op: OpCopy, Dst: 5, A: 9}, {Op: OpRet, A: RegInvalid}}
	}); err == nil {
		t.Fatal("out-of-range register accepted")
	}

	// cbr with one successor.
	if err := mk(func(fn *Func) {
		b := fn.NewBlock("")
		c := fn.NewBlock("")
		fn.Entry = b
		r := fn.NewReg()
		b.Instrs = []Instr{{Op: OpLoadI, Dst: r}, {Op: OpCBr, A: r}}
		AddEdge(b, c)
		c.Instrs = []Instr{{Op: OpRet, A: RegInvalid}}
	}); err == nil {
		t.Fatal("cbr with one successor accepted")
	}

	// Asymmetric edge (succ without pred back-pointer).
	if err := mk(func(fn *Func) {
		b := fn.NewBlock("")
		c := fn.NewBlock("")
		fn.Entry = b
		b.Instrs = []Instr{{Op: OpBr}}
		b.Succs = append(b.Succs, c) // no pred entry
		c.Instrs = []Instr{{Op: OpRet, A: RegInvalid}}
	}); err == nil {
		t.Fatal("asymmetric edge accepted")
	}
}

func TestFormatInstr(t *testing.T) {
	var tt TagTable
	g := tt.NewTag("g", TagGlobal, "", 8, 8)
	in := Instr{Op: OpSLoad, Dst: 3, Tag: g.ID, Size: 8}
	if got := FormatInstr(&in, &tt, nil); !strings.Contains(got, "[g]") {
		t.Fatalf("format = %q", got)
	}
	call := Instr{Op: OpJsr, Callee: "f", Args: []Reg{1}, Mods: NewTagSet(g.ID), Refs: TagSet{}}
	if got := FormatInstr(&call, &tt, nil); !strings.Contains(got, "@f(r1)") || !strings.Contains(got, "mod [g]") {
		t.Fatalf("call format = %q", got)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	fn := &Func{Name: "t"}
	a := fn.NewBlock("")
	bb := fn.NewBlock("")
	dead := fn.NewBlock("")
	fn.Entry = a
	a.Instrs = []Instr{{Op: OpBr}}
	AddEdge(a, bb)
	bb.Instrs = []Instr{{Op: OpRet, A: RegInvalid}}
	dead.Instrs = []Instr{{Op: OpBr}}
	AddEdge(dead, bb)
	fn.RemoveUnreachable()
	if len(fn.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(fn.Blocks))
	}
	for _, p := range bb.Preds {
		if p == dead {
			t.Fatal("dead predecessor not pruned")
		}
	}
}
