package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTagSetInPlaceAgainstMapOracle mirrors the immutable-algebra
// oracle test for the *Into mutators the fixpoint accumulators use:
// each in-place result must match the map computation, the reported
// change bit must match, and the operand set must come through
// untouched.
func TestTagSetInPlaceAgainstMapOracle(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)
		if a.IsTop() || b.IsTop() {
			return true // ⊤ laws checked separately
		}
		am, bm := asMap(a), asMap(b)
		bBefore := b.Clone()

		union := map[TagID]bool{}
		for k := range am {
			union[k] = true
		}
		for k := range bm {
			union[k] = true
		}
		inter := map[TagID]bool{}
		for k := range am {
			if bm[k] {
				inter[k] = true
			}
		}
		minus := map[TagID]bool{}
		for k := range am {
			if !bm[k] {
				minus[k] = true
			}
		}

		dst := a.Clone()
		if changed := b.UnionInto(&dst); !dst.Equal(fromMap(union)) || changed != !dst.Equal(a) {
			return false
		}
		dst = a.Clone()
		if changed := b.IntersectInto(&dst); !dst.Equal(fromMap(inter)) || changed != !dst.Equal(a) {
			return false
		}
		dst = a.Clone()
		if changed := b.SubtractInto(&dst); !dst.Equal(fromMap(minus)) || changed != !dst.Equal(a) {
			return false
		}

		id := TagID(rng.Intn(12))
		dst = a.Clone()
		if changed := dst.Add(id); !dst.Equal(a.With(id)) || changed == am[id] {
			return false
		}
		dst = a.Clone()
		if changed := dst.Remove(id); dst.Has(id) || changed != am[id] {
			return false
		}
		am2 := asMap(a)
		delete(am2, id)
		if !dst.Equal(fromMap(am2)) {
			return false
		}

		// The operand is never mutated.
		return b.Equal(bBefore)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTagSetInPlaceTopLaws(t *testing.T) {
	s := NewTagSet(1, 2, 3)

	dst := s.Clone()
	if changed := TopSet().UnionInto(&dst); !changed || !dst.IsTop() {
		t.Fatal("⊤ union-into a finite set must produce ⊤")
	}
	dst = TopSet()
	if changed := s.UnionInto(&dst); changed || !dst.IsTop() {
		t.Fatal("union into ⊤ must keep ⊤ unchanged")
	}

	dst = s.Clone()
	if changed := TopSet().IntersectInto(&dst); changed || !dst.Equal(s) {
		t.Fatal("⊤ intersect-into must be the identity")
	}
	dst = TopSet()
	if changed := s.IntersectInto(&dst); !changed || !dst.Equal(s) {
		t.Fatal("intersecting ⊤ down to s must yield s")
	}

	dst = s.Clone()
	if changed := TopSet().SubtractInto(&dst); !changed || !dst.IsEmpty() {
		t.Fatal("subtracting ⊤ must empty the set")
	}
	dst = TopSet()
	if changed := s.SubtractInto(&dst); changed || !dst.IsTop() {
		t.Fatal("⊤ minus a finite set stays ⊤ (matching Minus)")
	}
	dst = TopSet()
	if dst.Remove(2) || !dst.IsTop() {
		t.Fatal("Remove on ⊤ is a no-op")
	}
}

// TestTagSetIntoOwnership pins the aliasing contract the analyses
// rely on: UnionInto must give dst its own backing even when the
// no-alloc Union fast path would have shared words, so mutating the
// accumulator afterwards can never write through into the operand.
func TestTagSetIntoOwnership(t *testing.T) {
	src := NewTagSet(3, 7, 64)
	var acc TagSet // empty: the sharing-prone case
	src.UnionInto(&acc)
	acc.Add(9)
	acc.Remove(7)
	if !src.Equal(NewTagSet(3, 7, 64)) {
		t.Fatalf("mutating the accumulator changed the source: %v", src)
	}
}

// TestStagedTagsCommit checks the parallel middle-end's spill-slot
// protocol: provisional ids are recognizable, Commit replays the
// stagings into the shared table in order, and the Tag structs handed
// out by NewTag are re-identified in place so held pointers stay good.
func TestStagedTagsCommit(t *testing.T) {
	var tt TagTable
	pre := tt.NewTag("g", TagGlobal, "", 8, 8)

	var st StagedTags
	if !st.Empty() {
		t.Fatal("fresh staging must be empty")
	}
	a := st.NewTag("f.spill#0", TagSpill, "f", 8, 8)
	b := st.NewTag("f.spill#1", TagSpill, "f", 8, 8)
	a.Strong = true
	if !IsStagedTag(a.ID) || !IsStagedTag(b.ID) || a.ID == b.ID {
		t.Fatalf("staged ids must be distinct provisionals, got %d and %d", a.ID, b.ID)
	}
	if IsStagedTag(pre.ID) || IsStagedTag(TagInvalid) {
		t.Fatal("real ids and TagInvalid must not classify as staged")
	}

	remap := st.Commit(&tt)
	if !st.Empty() {
		t.Fatal("commit must drain the staging")
	}
	if len(remap) != 2 {
		t.Fatalf("remap has %d entries, want 2", len(remap))
	}
	if a.ID != pre.ID+1 || b.ID != pre.ID+2 {
		t.Fatalf("commit must hand out sequential table ids, got %d, %d", a.ID, b.ID)
	}
	if tt.Get(a.ID) != a || tt.Get(b.ID) != b {
		t.Fatal("committed table entries must be the staged structs themselves")
	}
	if !tt.Get(a.ID).Strong {
		t.Fatal("fields set on staged tags must survive commit")
	}
	if tt.Len() != 3 {
		t.Fatalf("table has %d tags, want 3", tt.Len())
	}
}
