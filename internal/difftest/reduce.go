package difftest

import "regpromo/internal/testgen"

// Check is a reducer oracle: it reports whether a candidate program
// still exhibits the failure being chased. For real divergences the
// oracle re-runs the differential matrix; tests substitute cheaper
// predicates.
type Check func(src string) bool

// Reduce shrinks a failing seed's generated program by delta
// debugging over its removable units (testgen: helper functions and
// top-level statements): it repeatedly regenerates the program with
// ever-smaller unit subsets, keeping a trial only when check still
// fails on the candidate. Removal is chunked ddmin-style — halves
// first, then singletons to a fixpoint — so large irrelevant regions
// fall away in O(log n) probes before the fine pass. A trial that
// breaks compilation (for example, removing a helper that is still
// called) simply fails check and is rejected.
//
// Reduce returns the smallest failing program found and how many
// units it retains. The full program is returned unchanged if check
// rejects it (an irreproducible failure).
func Reduce(seed int64, check Check) (string, int) {
	n := testgen.Units(seed)
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	render := func(mask []bool) string {
		return testgen.ProgramKeep(seed, func(u int) bool { return mask[u] })
	}
	kept := func(mask []bool) int {
		c := 0
		for _, k := range mask {
			if k {
				c++
			}
		}
		return c
	}
	if !check(render(keep)) {
		return render(keep), n
	}

	// try removes the kept units in [lo, hi) if the result still
	// fails.
	try := func(lo, hi int) bool {
		trial := make([]bool, n)
		removed := false
		for i := range keep {
			trial[i] = keep[i]
			if i >= lo && i < hi && trial[i] {
				trial[i] = false
				removed = true
			}
		}
		if !removed || !check(render(trial)) {
			return false
		}
		keep = trial
		return true
	}

	for chunk := (n + 1) / 2; chunk >= 1; chunk /= 2 {
		for {
			changed := false
			for lo := 0; lo < n; lo += chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if try(lo, hi) {
					changed = true
				}
			}
			// Coarse chunks get one sweep each; the singleton pass
			// repeats until no single unit can be removed.
			if chunk > 1 || !changed {
				break
			}
		}
	}
	return render(keep), kept(keep)
}
