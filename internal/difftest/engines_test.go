package difftest

import (
	"fmt"
	"reflect"
	"testing"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/testgen"
)

// These tests hold the flat-code engine to byte equality with the
// block-walking switch engine — counts, profiles (block execution
// counts and per-tag traffic), exit codes, outputs, and error text —
// across the generated fuzz corpus and the full benchmark suite. The
// switch engine is the oracle: any disagreement is a bug in the flat
// lowering or dispatch, never a tolerable difference.

// engineSeeds is how many consecutive testgen seeds the engine
// differential covers (matching the CI fuzz smoke range).
const engineSeeds = 200

// compareEngines executes one compilation on both engines with
// profiling enabled and reports any observable difference.
func compareEngines(label string, c *driver.Compilation, maxSteps int64) error {
	flat, ferr := c.Execute(interp.Options{MaxSteps: maxSteps, Profile: true, Engine: interp.EngineFlat})
	sw, serr := c.Execute(interp.Options{MaxSteps: maxSteps, Profile: true, Engine: interp.EngineSwitch})
	switch {
	case ferr != nil && serr != nil:
		if ferr.Error() != serr.Error() {
			return fmt.Errorf("%s: error divergence: flat %q, switch %q", label, ferr, serr)
		}
		return nil
	case ferr != nil || serr != nil:
		return fmt.Errorf("%s: one engine failed: flat err=%v, switch err=%v", label, ferr, serr)
	}
	if flat.Counts != sw.Counts {
		return fmt.Errorf("%s: counts diverge: flat %+v, switch %+v", label, flat.Counts, sw.Counts)
	}
	if flat.Exit != sw.Exit {
		return fmt.Errorf("%s: exit diverges: flat %d, switch %d", label, flat.Exit, sw.Exit)
	}
	if flat.Output != sw.Output {
		return fmt.Errorf("%s: output diverges: flat %q, switch %q", label, flat.Output, sw.Output)
	}
	if !reflect.DeepEqual(flat.Profile, sw.Profile) {
		return fmt.Errorf("%s: profiles diverge:\nflat:\n%s\nswitch:\n%s",
			label, flat.Profile.Format(10), sw.Profile.Format(10))
	}
	return nil
}

// TestEnginesAgreeOnSeeds runs the fuzz corpus through every
// differential configuration on both engines.
func TestEnginesAgreeOnSeeds(t *testing.T) {
	seeds := engineSeeds
	if testing.Short() {
		seeds = 25
	}
	matrix := driver.DifferentialConfigurations(testing.Short())
	_, err := bench.ParallelMap(seeds, 0, func(i int) (struct{}, error) {
		seed := int64(i)
		fe, err := driver.ParseSource(fmt.Sprintf("seed%d.c", seed), testgen.Program(seed))
		if err != nil {
			return struct{}{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		for _, nc := range matrix {
			c, err := fe.Compile(nc.Config, nil)
			if err != nil {
				return struct{}{}, fmt.Errorf("seed %d/%s: %w", seed, nc.Name, err)
			}
			if err := compareEngines(fmt.Sprintf("seed %d/%s", seed, nc.Name), c, MaxSteps); err != nil {
				return struct{}{}, err
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEnginesAgreeOnBenchSuite runs every benchmark program through
// the paper's four measurement configurations on both engines.
func TestEnginesAgreeOnBenchSuite(t *testing.T) {
	programs := bench.Suite()
	if testing.Short() {
		programs = programs[:4]
	}
	_, err := bench.ParallelMap(len(programs), 0, func(i int) (struct{}, error) {
		p := programs[i]
		fe, err := driver.ParseSource(p.Name+".c", bench.Source(p))
		if err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		for _, cfg := range driver.Configurations() {
			c, err := fe.Compile(cfg, nil)
			if err != nil {
				return struct{}{}, fmt.Errorf("%s: %w", p.Name, err)
			}
			label := fmt.Sprintf("%s/%s/promote=%v", p.Name, cfg.Analysis, cfg.Promote)
			if err := compareEngines(label, c, 1<<33); err != nil {
				return struct{}{}, err
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBothEnginesFuzzMode exercises the FuzzOptions.BothEngines path
// end to end: a clean seed range must stay clean with the engine
// cross-check enabled.
func TestBothEnginesFuzzMode(t *testing.T) {
	report, err := Fuzz(FuzzOptions{Seeds: 10, Short: true, BothEngines: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failures) != 0 {
		t.Fatalf("both-engines fuzz found divergences:\n%s", report.Failures[0].Divergence)
	}
}

// TestNativeEngineFuzzMode runs a small seed range with the native
// backend in the engine matrix: every compilation is translated to
// machine code and held to output/exit/error/count parity with the
// flat engine. Kept to a few seeds — each (seed, config) pair is a
// full toolchain invocation — the broad sweep is rpfuzz's job.
func TestNativeEngineFuzzMode(t *testing.T) {
	if testing.Short() {
		t.Skip("native builds are toolchain invocations; skipped in -short")
	}
	report, err := Fuzz(FuzzOptions{Seeds: 3, Short: true, Engines: []interp.Engine{interp.EngineNative}})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failures) != 0 {
		t.Fatalf("native-engine fuzz found divergences:\n%s", report.Failures[0].Divergence)
	}
}

// TestSanitizeFuzzMode exercises FuzzOptions.Sanitize end to end: a
// clean seed range must stay clean with the analysis-soundness
// sanitizer armed as the third oracle. (The oracle's ability to catch
// a real defect is proven by the seeded-corruption tests in
// internal/interp; here we pin the absence of false positives on
// honest compilations.)
func TestSanitizeFuzzMode(t *testing.T) {
	report, err := Fuzz(FuzzOptions{Start: 500, Seeds: 10, Short: true, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failures) != 0 {
		t.Fatalf("sanitize fuzz found divergences:\n%s", report.Failures[0].Divergence)
	}
}
