package difftest

// This file is the incremental-compilation oracle: the differential
// gate for the analysis summary cache. Where difftest.Fuzz compares
// configurations against each other on one program, the incremental
// oracle compares one configuration against itself across an edit —
// compile program A cold into a fresh cache.Store, compile program B
// warm against that populated store, and demand the warm compile's
// final IL be byte-identical to compiling B with no cache at all. Any
// byte of difference means a stale summary was replayed, which is a
// miscompilation in waiting; the seed is archived as a reproducer.
//
// Each seed derives its edit from the generator itself: program B is
// the seed's full program and program A is the same program with one
// generated unit removed (testgen.ProgramKeep), so the pair differs
// by a single function-local edit with the rest of the module shared.
// Both directions run — growing A→B exercises summaries computed
// before the code existed, shrinking B→A exercises summaries that
// must not resurrect deleted effects.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"regpromo/internal/analysis/cache"
	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/testgen"
)

// IncrementalResult is the oracle's verdict on one seed.
type IncrementalResult struct {
	Seed int64
	// Base is the seed's full program; Mutated is the same program
	// with one generated unit removed.
	Base, Mutated string
	// Divergence lists every configuration/direction whose warm
	// compile differed from scratch ("" when all were identical).
	Divergence string
	// WarmIL and ScratchIL hold the first diverging IL pair, for the
	// failure artifact.
	WarmIL, ScratchIL string
}

// Diverged reports whether any warm compile differed from scratch.
func (r *IncrementalResult) Diverged() bool { return r.Divergence != "" }

// IncrementalSeed runs the incremental oracle on one seed: for every
// configuration in the matrix, compile the seed's base program cold
// into a fresh summary store, recompile the one-unit-edited variant
// warm against it, and compare the warm IL byte-for-byte against an
// uncached compile of the same source. Both edit directions run.
func IncrementalSeed(seed int64, matrix []driver.NamedConfig) *IncrementalResult {
	r := &IncrementalResult{Seed: seed, Base: testgen.Program(seed)}
	r.Mutated = mutateSeed(seed)
	var sb strings.Builder
	for _, nc := range matrix {
		for _, d := range []struct{ name, cold, warm string }{
			{"grow", r.Mutated, r.Base},
			{"shrink", r.Base, r.Mutated},
		} {
			div, warmIL, scratchIL := incrementalOne(seed, nc, d.cold, d.warm)
			if div == "" {
				continue
			}
			fmt.Fprintf(&sb, "%s/%s: %s\n", nc.Name, d.name, div)
			if r.WarmIL == "" {
				r.WarmIL, r.ScratchIL = warmIL, scratchIL
			}
		}
	}
	r.Divergence = sb.String()
	return r
}

// mutateSeed derives the seed's one-edit variant: the full program
// with one generated unit removed. Not every unit is removable —
// dropping a helper definition whose call sites survive leaves an
// unparseable program — so candidates are scanned from a
// seed-dependent start until one still parses. Seeds where no single
// unit can go (none observed in practice) fall back to the unedited
// program, degrading that seed to a same-source replay check.
func mutateSeed(seed int64) string {
	units := testgen.Units(seed)
	for off := 0; off < units; off++ {
		drop := (int(seed%int64(units)) + off) % units
		src := testgen.ProgramKeep(seed, func(i int) bool { return i != drop })
		if _, err := driver.ParseSource(fmt.Sprintf("seed%d.c", seed), src); err == nil {
			return src
		}
	}
	return testgen.Program(seed)
}

// incrementalOne runs one configuration in one direction: cold compile
// populating a fresh store, warm compile of the edited source against
// it, scratch compile of the same edited source with no cache. The IL
// pair is returned only when it diverges.
func incrementalOne(seed int64, nc driver.NamedConfig, cold, warm string) (string, string, string) {
	name := fmt.Sprintf("seed%d.c", seed)
	cfg := nc.Config
	cfg.AnalysisCache = cache.NewStore()
	if _, err := driver.CompileSource(name, cold, cfg); err != nil {
		return fmt.Sprintf("cold compile: %v", err), "", ""
	}
	warmC, err := driver.CompileSource(name, warm, cfg)
	if err != nil {
		return fmt.Sprintf("warm compile: %v", err), "", ""
	}
	scratchC, err := driver.CompileSource(name, warm, nc.Config)
	if err != nil {
		return fmt.Sprintf("scratch compile: %v", err), "", ""
	}
	w, s := ir.FormatModule(warmC.Module), ir.FormatModule(scratchC.Module)
	if w != s {
		return fmt.Sprintf("warm IL differs from scratch (%d vs %d bytes; %d SCCs replayed from cache)",
			len(w), len(s), warmC.Analysis.SCCsCached), w, s
	}
	return "", "", ""
}

// IncrementalOptions configure an incremental-oracle fuzzing run.
type IncrementalOptions struct {
	// Start is the first seed; Seeds is how many consecutive seeds to
	// test.
	Start, Seeds int64
	// Parallel bounds concurrent seeds (<=0 means one worker per CPU).
	Parallel int
	// Short trims the configuration matrix for smoke runs.
	Short bool
	// CorpusDir, when non-empty, receives a failure artifact per
	// divergent seed.
	CorpusDir string
	// Progress, when non-nil, is called after each seed completes
	// (from worker goroutines, possibly out of order).
	Progress func(seed int64, diverged bool)
}

// IncrementalFailure is one divergent seed with its artifact location.
type IncrementalFailure struct {
	Seed       int64
	Divergence string
	// Dir is the corpus directory the artifact was written to (empty
	// when no corpus was requested).
	Dir string
}

// IncrementalReport summarizes an incremental-oracle run.
type IncrementalReport struct {
	Seeds    int64
	Matrix   []driver.NamedConfig
	Failures []IncrementalFailure
}

// FuzzIncremental runs the incremental oracle over Seeds consecutive
// seeds on the shared bench worker pool and reports every divergence,
// archived according to the options. As with Fuzz, the error return
// is for infrastructure problems; divergences are data.
func FuzzIncremental(opts IncrementalOptions) (*IncrementalReport, error) {
	matrix := driver.DifferentialConfigurations(opts.Short)
	report := &IncrementalReport{Seeds: opts.Seeds, Matrix: matrix}
	fails, err := bench.ParallelMap(int(opts.Seeds), opts.Parallel, func(i int) (*IncrementalFailure, error) {
		seed := opts.Start + int64(i)
		r := IncrementalSeed(seed, matrix)
		if reg := obs.Metrics(); reg != nil {
			reg.Counter("difftest.incremental.seeds").Inc()
			if r.Diverged() {
				reg.Counter("difftest.incremental.divergences").Inc()
			}
		}
		if opts.Progress != nil {
			opts.Progress(seed, r.Diverged())
		}
		if !r.Diverged() {
			return nil, nil
		}
		f := &IncrementalFailure{Seed: seed, Divergence: r.Divergence}
		if opts.CorpusDir != "" {
			dir, err := writeIncrementalArtifacts(opts.CorpusDir, r)
			if err != nil {
				return nil, err
			}
			f.Dir = dir
		}
		return f, nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range fails {
		if f != nil {
			report.Failures = append(report.Failures, *f)
		}
	}
	return report, nil
}

// writeIncrementalArtifacts archives a divergent seed under
// dir/incr-seed<NNN>: both program variants, the first diverging
// warm/scratch IL pair, and a repro command.
func writeIncrementalArtifacts(dir string, r *IncrementalResult) (string, error) {
	sub := filepath.Join(dir, fmt.Sprintf("incr-seed%d", r.Seed))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}
	var repro strings.Builder
	fmt.Fprintf(&repro, "Incremental-compilation divergence on seed %d.\n\n%s\n", r.Seed, r.Divergence)
	fmt.Fprintf(&repro, "Reproduce with:\n\n    go run ./cmd/rpfuzz -incremental -start %d -seeds 1\n", r.Seed)
	for name, content := range map[string]string{
		"base.c":         r.Base,
		"mutated.c":      r.Mutated,
		"il-warm.txt":    r.WarmIL,
		"il-scratch.txt": r.ScratchIL,
		"repro.txt":      repro.String(),
	} {
		if err := os.WriteFile(filepath.Join(sub, name), []byte(content), 0o644); err != nil {
			return "", err
		}
	}
	return sub, nil
}
