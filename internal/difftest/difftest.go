// Package difftest is the compiler's differential-testing subsystem:
// a standing correctness gate behind every measurement the paper's
// figures make. For each seed it generates a deterministic, UB-free C
// program (internal/testgen), compiles it under every pipeline
// configuration the evaluation compares (driver.
// DifferentialConfigurations: the no-opt reference, the baseline
// optimizer, scalar and pointer promotion under both analyses, the
// §3.3/§3.4 variants), executes each compilation in the instrumented
// interpreter, and compares observable behaviour — printed output and
// exit code. The generator rules out undefined behaviour by
// construction, so any divergence is a compiler bug, full stop.
//
// When a seed diverges, the package shrinks it with a delta-debugging
// reducer (Reduce) that removes generated statements and helper
// functions while the divergence still reproduces, then writes a
// self-contained failure artifact — original and reduced C source,
// the final IL of every configuration, and a repro command — under a
// corpus directory (WriteArtifacts). Fuzz drives the whole loop
// across a seed range on the shared bench worker pool; cmd/rpfuzz is
// its CLI.
package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/testgen"
)

// MaxSteps bounds each interpreted execution. Generated programs are
// small and their loops statically bounded, so any run this long is a
// termination bug; the bound is shared by every configuration so a
// uniform timeout cannot masquerade as a divergence.
const MaxSteps = 1 << 28

// Execution is one configuration's observable outcome on a program.
type Execution struct {
	Config driver.NamedConfig
	// Output and Exit are the program's observable behaviour; Err is
	// set instead when compilation or execution failed.
	Output string
	Exit   int64
	Err    error
	// Counts are the dynamic execution counters. They differ across
	// configurations by design (that difference is the paper's
	// result), so the cross-configuration comparison ignores them —
	// but across engines on the same compilation they must be
	// byte-identical, and the both-engines mode enforces that.
	Counts interp.Counts
}

// Behaviour renders the outcome as a comparable string: diverging
// behaviours compare unequal, identical ones equal.
func (e *Execution) Behaviour() string {
	if e.Err != nil {
		return "error: " + e.Err.Error()
	}
	return fmt.Sprintf("exit=%d output=%q", e.Exit, e.Output)
}

// Result is the differential verdict on one program.
type Result struct {
	Seed   int64
	Source string
	Execs  []Execution
}

// Divergence describes how the configurations disagree, or returns ""
// when they all agree. The first configuration (the no-opt reference)
// is the anchor every other configuration is compared against.
func (r *Result) Divergence() string {
	if len(r.Execs) == 0 {
		return ""
	}
	ref := r.Execs[0].Behaviour()
	var sb strings.Builder
	for _, e := range r.Execs[1:] {
		if b := e.Behaviour(); b != ref {
			fmt.Fprintf(&sb, "%s: %s\n  (reference %s: %s)\n",
				e.Config.Name, b, r.Execs[0].Config.Name, ref)
		}
	}
	return sb.String()
}

// Diverged reports whether any configuration disagrees with the
// reference.
func (r *Result) Diverged() bool { return r.Divergence() != "" }

// Mode selects the optional oracles of a differential comparison
// beyond the cross-configuration diff itself.
type Mode struct {
	// BothEngines executes each compilation on the reference switch
	// engine too and reports any flat-vs-switch disagreement.
	BothEngines bool
	// Engines lists additional engines to cross-check beyond the ones
	// BothEngines implies; every listed engine executes each
	// compilation and must agree with the flat engine on output, exit,
	// error text, and dynamic counts. Listing the native engine turns
	// every seed into a translation-validation check of the codegen.
	Engines []interp.Engine
	// Sanitize runs every execution under the analysis-soundness
	// sanitizer; any violation is reported as a divergence on that
	// configuration (the third oracle, beside engine parity and
	// config divergence).
	Sanitize bool
	// Certify re-proves every promotion certificate with the
	// independent region-soundness verifier on each compilation (the
	// fourth oracle — a static one: a refuted certificate fails the
	// compile, which the diff reports as a divergence on that
	// configuration).
	Certify bool
}

// EngineMatrix resolves the mode's full, deduplicated engine list.
// The flat engine is always first: it is the primary whose behaviour
// feeds the cross-configuration diff, and every other engine is
// compared against it.
func (m Mode) EngineMatrix() []interp.Engine {
	engines := []interp.Engine{interp.EngineFlat}
	seen := map[interp.Engine]bool{interp.EngineFlat: true}
	add := func(e interp.Engine) {
		if !seen[e] {
			seen[e] = true
			engines = append(engines, e)
		}
	}
	if m.BothEngines {
		add(interp.EngineSwitch)
	}
	for _, e := range m.Engines {
		add(e)
	}
	return engines
}

// DiffSource compiles and executes src under every configuration of
// the matrix, on the default (flat) engine.
func DiffSource(filename, src string, matrix []driver.NamedConfig) *Result {
	return DiffSourceMode(filename, src, matrix, Mode{})
}

// DiffSourceEngines is DiffSource with the engine dimension exposed.
func DiffSourceEngines(filename, src string, matrix []driver.NamedConfig, bothEngines bool) *Result {
	return DiffSourceMode(filename, src, matrix, Mode{BothEngines: bothEngines})
}

// DiffSourceMode is DiffSource with every oracle dimension exposed.
// The front end runs once; every configuration's pipeline is forked
// from the shared artifact (compile-once sharing). With
// Mode.BothEngines set, each compilation additionally executes on the
// reference switch engine, and any flat-vs-switch disagreement —
// output, exit code, dynamic counts, error text, or sanitizer
// violations — is reported as a divergence on that configuration.
// With Mode.Sanitize set, every execution runs under the
// analysis-soundness sanitizer and its violations are divergences.
func DiffSourceMode(filename, src string, matrix []driver.NamedConfig, mode Mode) *Result {
	r := &Result{Source: src}
	fe, feErr := driver.ParseSource(filename, src)
	for _, nc := range matrix {
		if feErr != nil {
			// A front-end failure hits every configuration identically,
			// exactly as per-configuration recompiles would see it.
			r.Execs = append(r.Execs, Execution{Config: nc, Err: fmt.Errorf("compile: %w", feErr)})
			continue
		}
		r.Execs = append(r.Execs, runOne(fe, nc, mode))
	}
	return r
}

// DiffSeed generates the seed's program and diffs it.
func DiffSeed(seed int64, matrix []driver.NamedConfig) *Result {
	return DiffSeedMode(seed, matrix, Mode{})
}

// DiffSeedEngines generates the seed's program and diffs it, with the
// both-engines cross-check when requested.
func DiffSeedEngines(seed int64, matrix []driver.NamedConfig, bothEngines bool) *Result {
	return DiffSeedMode(seed, matrix, Mode{BothEngines: bothEngines})
}

// DiffSeedMode generates the seed's program and diffs it under the
// given oracle mode.
func DiffSeedMode(seed int64, matrix []driver.NamedConfig, mode Mode) *Result {
	r := DiffSourceMode(fmt.Sprintf("seed%d.c", seed), testgen.Program(seed), matrix, mode)
	r.Seed = seed
	return r
}

func runOne(fe *driver.Frontend, nc driver.NamedConfig, mode Mode) Execution {
	e := Execution{Config: nc}
	cfg := nc.Config
	if mode.Certify {
		cfg.Certify = true
	}
	c, err := fe.Compile(cfg, nil)
	if err != nil {
		e.Err = fmt.Errorf("compile: %w", err)
		return e
	}
	opts := interp.Options{MaxSteps: MaxSteps, Engine: interp.EngineFlat, Sanitize: mode.Sanitize}
	res, rerr := c.Execute(opts)
	if rerr != nil {
		e.Err = fmt.Errorf("execute: %w", rerr)
	} else {
		e.Output = res.Output
		e.Exit = res.Exit
		e.Counts = res.Counts
	}
	for _, eng := range mode.EngineMatrix()[1:] {
		eopts := opts
		eopts.Engine = eng
		if eng == interp.EngineNative {
			// The sanitizer is interpreter-only; the native engine is
			// still held to output/exit/error/count parity.
			eopts.Sanitize = false
		}
		sres, serr := c.Execute(eopts)
		diverged := true
		switch {
		case rerr != nil && serr != nil:
			// Both engines failed: the error text must match exactly, or
			// the engines disagree about how the program goes wrong.
			if rerr.Error() != serr.Error() {
				e.Err = fmt.Errorf("engine divergence: flat error %q, %s error %q", rerr, eng, serr)
			} else {
				diverged = false
			}
		case rerr != nil || serr != nil:
			e.Err = fmt.Errorf("engine divergence: flat err=%v, %s err=%v", rerr, eng, serr)
		case res.Output != sres.Output || res.Exit != sres.Exit || res.Counts != sres.Counts:
			e.Err = fmt.Errorf(
				"engine divergence: flat exit=%d counts=%+v output=%q; %s exit=%d counts=%+v output=%q",
				res.Exit, res.Counts, res.Output, eng, sres.Exit, sres.Counts, sres.Output)
		case eng != interp.EngineNative && !sameDiags(res.Violations, sres.Violations):
			// Both interpreter engines observe execution in the same
			// order, so their violation lists must match exactly.
			e.Err = fmt.Errorf("engine divergence: flat violations %q, %s violations %q",
				diagStrings(res.Violations), eng, diagStrings(sres.Violations))
		default:
			diverged = false
		}
		if diverged {
			break
		}
	}
	if e.Err == nil && rerr == nil && len(res.Violations) > 0 {
		e.Err = fmt.Errorf("sanitizer: %d violation(s): %s",
			len(res.Violations), strings.Join(diagStrings(res.Violations), "; "))
	}
	return e
}

// diagStrings renders a violation list in its stable string form,
// truncated for reporting.
func diagStrings(ds []ir.Diag) []string {
	out := make([]string, 0, len(ds))
	for i, d := range ds {
		if i == 5 {
			out = append(out, fmt.Sprintf("… %d more", len(ds)-i))
			break
		}
		out = append(out, d.String())
	}
	return out
}

func sameDiags(a, b []ir.Diag) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Failure is one divergent seed with its reduction and artifact
// location.
type Failure struct {
	Seed       int64
	Divergence string
	// Sanitizer is true when the divergence includes an
	// analysis-soundness sanitizer violation (as opposed to a pure
	// behavioural or engine disagreement).
	Sanitizer bool
	// Certify is true when the divergence includes a refuted
	// promotion certificate from the region-soundness verifier.
	Certify bool
	// Reduced is the shrunk source (equal to the original when
	// reduction was disabled or could not shrink it).
	Reduced string
	// Units counts the generated units kept in the reduced program.
	Units int
	// Dir is the corpus directory the artifact was written to (empty
	// when no corpus was requested).
	Dir string
}

// FuzzOptions configure a fuzzing run.
type FuzzOptions struct {
	// Start is the first seed; Seeds is how many consecutive seeds to
	// test.
	Start, Seeds int64
	// Parallel bounds concurrent seeds (<=0 means one worker per
	// CPU).
	Parallel int
	// Short trims the configuration matrix for smoke runs.
	Short bool
	// BothEngines executes every compilation on both interpreter
	// engines (flat and the switch reference) and reports any
	// disagreement — counts included — as a divergence.
	BothEngines bool
	// Engines lists additional engines (e.g. the native backend) to
	// cross-check against the flat engine on every seed; see
	// Mode.Engines.
	Engines []interp.Engine
	// Sanitize runs every execution under the analysis-soundness
	// sanitizer, the third oracle: any observed memory access outside
	// the static MOD/REF or points-to sets is a divergence, archived
	// to the corpus like any other.
	Sanitize bool
	// Certify re-proves every promotion certificate on every
	// compilation, the fourth oracle: a refuted certificate is a
	// divergence, archived to the corpus like any other.
	Certify bool
	// Reduce shrinks each failing program before reporting it.
	Reduce bool
	// CorpusDir, when non-empty, receives a failure artifact per
	// divergent seed.
	CorpusDir string
	// Progress, when non-nil, is called after each seed completes
	// (from worker goroutines, possibly out of order). sanitizer and
	// certify report whether the seed's divergence includes an
	// analysis-soundness sanitizer violation or a refuted promotion
	// certificate, respectively.
	Progress func(seed int64, diverged, sanitizer, certify bool)
}

// FuzzReport summarizes a fuzzing run.
type FuzzReport struct {
	Seeds    int64
	Matrix   []driver.NamedConfig
	Failures []Failure
}

// Fuzz differentially tests Seeds consecutive seeds and reports every
// divergence, reduced and archived according to the options. The seed
// loop runs on the shared bench worker pool; failures are reported in
// seed order regardless of schedule. The error return is for
// infrastructure problems (unwritable corpus); divergences are data,
// not errors.
func Fuzz(opts FuzzOptions) (*FuzzReport, error) {
	matrix := driver.DifferentialConfigurations(opts.Short)
	report := &FuzzReport{Seeds: opts.Seeds, Matrix: matrix}
	fails, err := bench.ParallelMap(int(opts.Seeds), opts.Parallel, func(i int) (*Failure, error) {
		seed := opts.Start + int64(i)
		r := DiffSeedMode(seed, matrix, Mode{BothEngines: opts.BothEngines, Engines: opts.Engines, Sanitize: opts.Sanitize, Certify: opts.Certify})
		div := r.Divergence()
		sanitizer := strings.Contains(div, "sanitizer:")
		certify := strings.Contains(div, "[certify")
		if reg := obs.Metrics(); reg != nil {
			reg.Counter("difftest.seeds").Inc()
			if div != "" {
				reg.Counter("difftest.divergences").Inc()
			}
			if sanitizer {
				reg.Counter("difftest.sanitizer_divergences").Inc()
			}
			if certify {
				reg.Counter("difftest.certify_divergences").Inc()
			}
		}
		if opts.Progress != nil {
			opts.Progress(seed, div != "", sanitizer, certify)
		}
		if div == "" {
			return nil, nil
		}
		f := &Failure{Seed: seed, Divergence: div, Sanitizer: sanitizer, Certify: certify, Reduced: r.Source, Units: testgen.Units(seed)}
		if opts.Reduce {
			f.Reduced, f.Units = Reduce(seed, func(src string) bool {
				m := Mode{BothEngines: opts.BothEngines, Engines: opts.Engines, Sanitize: opts.Sanitize, Certify: opts.Certify}
				return DiffSourceMode(fmt.Sprintf("seed%d.c", seed), src, matrix, m).Diverged()
			})
		}
		if opts.CorpusDir != "" {
			dir, err := WriteArtifacts(opts.CorpusDir, r, f.Reduced)
			if err != nil {
				return nil, err
			}
			f.Dir = dir
		}
		return f, nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range fails {
		if f != nil {
			report.Failures = append(report.Failures, *f)
		}
	}
	return report, nil
}

// WriteArtifacts archives a divergent result under dir/seed<NNN>:
// the generating source (prog.c), the reduced reproducer (reduced.c),
// the divergence summary with a repro command (repro.txt), and the
// final IL of each configuration as captured by the observability
// pipeline (il-<config>.txt). It returns the artifact directory.
func WriteArtifacts(dir string, r *Result, reduced string) (string, error) {
	sub := filepath.Join(dir, fmt.Sprintf("seed%d", r.Seed))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(sub, name), []byte(content), 0o644)
	}
	if err := write("prog.c", r.Source); err != nil {
		return "", err
	}
	if err := write("reduced.c", reduced); err != nil {
		return "", err
	}
	var repro strings.Builder
	fmt.Fprintf(&repro, "Differential divergence on seed %d.\n\n%s\n", r.Seed, r.Divergence())
	fmt.Fprintf(&repro, "Reproduce with:\n\n    go run ./cmd/rpfuzz -start %d -seeds 1\n\n", r.Seed)
	repro.WriteString("Per-configuration behaviour:\n\n")
	for i := range r.Execs {
		e := &r.Execs[i]
		fmt.Fprintf(&repro, "  %-22s %s\n", e.Config.Name, e.Behaviour())
		il, err := finalIL(fmt.Sprintf("seed%d.c", r.Seed), reduced, e.Config)
		if err != nil {
			il = "; IL unavailable: " + err.Error() + "\n"
		}
		if err := write("il-"+e.Config.Name+".txt", il); err != nil {
			return "", err
		}
	}
	if err := write("repro.txt", repro.String()); err != nil {
		return "", err
	}
	return sub, nil
}

// finalIL compiles src under one configuration with the observability
// pipeline capturing the IL after the final verification pass.
func finalIL(filename, src string, nc driver.NamedConfig) (string, error) {
	pipe := &obs.Pipeline{DumpPass: driver.PassVerify}
	if _, err := driver.Compile(filename, src, nc.Config, pipe); err != nil {
		return "", err
	}
	if ev := pipe.Event(driver.PassVerify); ev != nil && ev.IRDump != "" {
		return ev.IRDump, nil
	}
	return "", fmt.Errorf("no IL captured")
}
