package difftest

import (
	"testing"

	"regpromo/internal/driver"
)

// TestIncrementalSeedsClean runs the incremental oracle on a handful
// of generator seeds with the short matrix: every warm compile must be
// byte-identical to scratch, and the mutation must actually produce a
// different program (otherwise the oracle degrades to a replay check).
func TestIncrementalSeedsClean(t *testing.T) {
	matrix := driver.DifferentialConfigurations(true)
	for seed := int64(1); seed <= 6; seed++ {
		r := IncrementalSeed(seed, matrix)
		if r.Diverged() {
			t.Fatalf("seed %d: incremental compile diverged:\n%s", seed, r.Divergence)
		}
		if r.Mutated == r.Base {
			t.Fatalf("seed %d: no removable unit found, oracle degraded", seed)
		}
	}
}

// TestFuzzIncrementalReportsClean drives the batch entry point the CLI
// uses, checking seed accounting and the no-failure report shape.
func TestFuzzIncrementalReportsClean(t *testing.T) {
	var seen int
	report, err := FuzzIncremental(IncrementalOptions{
		Start: 1, Seeds: 4, Short: true,
		CorpusDir: t.TempDir(),
		Progress:  func(int64, bool) { seen++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 4 || report.Seeds != 4 {
		t.Fatalf("progress saw %d seeds, report says %d, want 4", seen, report.Seeds)
	}
	if len(report.Failures) != 0 {
		t.Fatalf("unexpected failures: %+v", report.Failures)
	}
}
