package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regpromo/internal/driver"
	"regpromo/internal/testgen"
)

// TestDiffSeedAgreesOnMain: a handful of seeds through the full
// matrix; any divergence is a miscompilation in the tree.
func TestDiffSeedAgreesOnMain(t *testing.T) {
	matrix := driver.DifferentialConfigurations(false)
	for seed := int64(1); seed <= 5; seed++ {
		r := DiffSeed(seed, matrix)
		if d := r.Divergence(); d != "" {
			t.Errorf("seed %d diverges:\n%s\n%s", seed, d, r.Source)
		}
	}
}

// TestFuzzCleanOnMain drives the whole Fuzz loop (parallel, short
// matrix) and expects a clean report.
func TestFuzzCleanOnMain(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	rep, err := Fuzz(FuzzOptions{Start: 1000, Seeds: seeds, Parallel: 4, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("fuzzing found %d divergences: %+v", len(rep.Failures), rep.Failures)
	}
}

// unitText recovers the text of one removable unit by rendering the
// program with only that unit kept and subtracting the never-pruned
// scaffolding around it.
func unitText(seed int64, u int) string {
	with := testgen.ProgramKeep(seed, func(i int) bool { return i == u })
	without := testgen.ProgramKeep(seed, func(i int) bool { return false })
	lo := 0
	for lo < len(without) && lo < len(with) && with[lo] == without[lo] {
		lo++
	}
	hi := 0
	for hi < len(without)-lo && hi < len(with)-lo && with[len(with)-1-hi] == without[len(without)-1-hi] {
		hi++
	}
	return with[lo : len(with)-hi]
}

// lastMainUnit returns the index and text of the seed's final
// main-body statement — a unit that survives on its own (units inside
// helper functions disappear when the helper itself is pruned, so
// they make poor reduction targets for this test).
func lastMainUnit(t *testing.T, seed int64) (int, string) {
	t.Helper()
	u := testgen.Units(seed) - 1
	text := unitText(seed, u)
	if text == "" {
		t.Fatalf("seed %d: unit %d has no text", seed, u)
	}
	return u, text
}

// TestReduceShrinksToMarker: with an oracle that "fails" whenever a
// marker statement is present, the reducer must strip essentially
// everything else. Each seeded fixture must shrink to at most two
// kept units (the marker plus, at worst, one unremovable companion).
func TestReduceShrinksToMarker(t *testing.T) {
	for _, seed := range []int64{3, 42, 777, 90210} {
		_, marker := lastMainUnit(t, seed)
		checks := 0
		reduced, kept := Reduce(seed, func(src string) bool {
			checks++
			return strings.Contains(src, marker)
		})
		if !strings.Contains(reduced, marker) {
			t.Errorf("seed %d: reduction lost the marker", seed)
		}
		if kept > 2 {
			t.Errorf("seed %d: reduced to %d units, want <= 2 (of %d)\n%s",
				seed, kept, testgen.Units(seed), reduced)
		}
		if full := testgen.Program(seed); len(reduced) >= len(full) {
			t.Errorf("seed %d: reduced program (%d bytes) not smaller than original (%d)", seed, len(reduced), len(full))
		}
		if checks == 0 {
			t.Errorf("seed %d: oracle never consulted", seed)
		}
	}
}

// TestReduceIrreproducible: when the oracle rejects even the full
// program, Reduce must hand it back untouched.
func TestReduceIrreproducible(t *testing.T) {
	seed := int64(11)
	src, kept := Reduce(seed, func(string) bool { return false })
	if src != testgen.Program(seed) || kept != testgen.Units(seed) {
		t.Fatal("irreproducible failure should return the full program")
	}
}

// TestReducedCandidatesStayWellFormed: every candidate the reducer
// proposes against a real differential oracle must at minimum keep
// the reference configuration compiling and running — pruning only
// removes whole generated units, never scaffolding.
func TestReducedCandidatesStayWellFormed(t *testing.T) {
	ref := driver.DifferentialConfigurations(true)[:1]
	seed := int64(1234)
	_, marker := lastMainUnit(t, seed)
	probes := 0
	Reduce(seed, func(src string) bool {
		probes++
		r := DiffSource("cand.c", src, ref)
		// Compile errors are legitimate rejected trials (e.g. a
		// pruned helper that is still called); runtime faults are
		// not — pruning whole units must never corrupt the program.
		if err := r.Execs[0].Err; err != nil && strings.Contains(err.Error(), "execute:") {
			t.Fatalf("candidate faults at runtime: %v\n%s", err, src)
		}
		return strings.Contains(src, marker)
	})
	if probes < 3 {
		t.Fatalf("reducer probed only %d candidates, expected a real search", probes)
	}
}

// TestWriteArtifacts archives a (non-divergent) result and checks the
// corpus layout.
func TestWriteArtifacts(t *testing.T) {
	matrix := driver.DifferentialConfigurations(true)
	r := DiffSeed(7, matrix)
	dir := t.TempDir()
	sub, err := WriteArtifacts(dir, r, r.Source)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"prog.c", "reduced.c", "repro.txt"}
	for _, nc := range matrix {
		want = append(want, "il-"+nc.Name+".txt")
	}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(sub, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	repro, _ := os.ReadFile(filepath.Join(sub, "repro.txt"))
	if !strings.Contains(string(repro), "rpfuzz -start 7 -seeds 1") {
		t.Error("repro.txt lacks the repro command")
	}
}
