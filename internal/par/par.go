// Package par is the repo's shared bounded worker pool. The benchmark
// harness uses it to parallelize the measurement matrix (RunFigures,
// CollectReport), the differential tester (internal/difftest) fans
// seeds out across CPUs with it, and the driver's middle end runs
// per-function pass groups through it; all need the same contract:
// bounded concurrency, results in input order, fail-fast on error.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes a
// non-positive parallelism: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ParallelMap runs fn over the work items 0..n-1 on at most workers
// goroutines and returns the results in item order, so concurrent
// callers observe exactly the output a serial loop would have
// produced. workers <= 0 selects DefaultWorkers; workers == 1 runs
// the items serially on the calling goroutine.
//
// The first error stops the pool from claiming new items (items
// already in flight finish, their results discarded) and is returned;
// among errors from in-flight items, the lowest-index one wins, so
// single-worker and many-worker runs agree on which error surfaces
// whenever only one item fails.
func ParallelMap[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return ParallelMapWorker(n, workers, func(_, i int) (T, error) { return fn(i) })
}

// ParallelMapWorker is ParallelMap with the pool slot exposed: fn
// receives (worker, i) where worker identifies which of the pool's
// goroutines ran item i (0..workers-1; the serial single-worker path
// is worker 0). Telemetry uses it to attribute work items to logical
// threads; correctness must never depend on which worker ran an item.
func ParallelMapWorker[T any](n, workers int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := fn(0, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // next unclaimed item
		failed  atomic.Bool  // stop claiming once any item errors
		mu      sync.Mutex
		firstI  int = n
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(worker, i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstI {
						firstI, firstEr = i, err
					}
					mu.Unlock()
					return
				}
				results[i] = r
			}
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}
