package cfg

import (
	"sort"

	"regpromo/internal/ir"
)

// Loop is one natural loop. Loops with the same header are merged, so
// each header identifies exactly one loop; the paper refers to loops
// by their header's block number the same way.
type Loop struct {
	Header *ir.Block
	// Blocks is the set of blocks in the loop, header included.
	Blocks map[*ir.Block]bool
	// Parent is the innermost enclosing loop, nil for outermost
	// loops.
	Parent *Loop
	// Children are the loops directly nested inside this one.
	Children []*Loop
	// Depth is 1 for outermost loops.
	Depth int
	// Pad is the loop's landing pad (unique predecessor of the
	// header from outside the loop); set by EnsureLandingPads.
	Pad *ir.Block
	// Exits are the blocks outside the loop that loop edges leave
	// to; after EnsureExitBlocks each has predecessors only inside
	// the loop.
	Exits []*ir.Block
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// BlocksInOrder returns the loop's blocks sorted by id. Passes that
// emit or move code must iterate in this order: ranging over the
// Blocks map would make the output order depend on map iteration.
func (l *Loop) BlocksInOrder() []*ir.Block {
	out := make([]*ir.Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LoopForest is the loop nesting structure of one function.
type LoopForest struct {
	// Roots are the outermost loops.
	Roots []*Loop
	// Loops lists every loop, outer before inner.
	Loops []*Loop
	// ByHeader maps a header block to its loop.
	ByHeader map[*ir.Block]*Loop
	// InnermostOf maps each block to the innermost loop containing
	// it (nil when outside all loops).
	InnermostOf map[*ir.Block]*Loop
}

// Depth returns the loop nesting depth of b (0 outside all loops).
func (f *LoopForest) Depth(b *ir.Block) int {
	if l := f.InnermostOf[b]; l != nil {
		return l.Depth
	}
	return 0
}

// FindLoops identifies natural loops from back edges (edges whose
// head dominates their tail), merges loops sharing a header, and
// builds the nesting forest.
func FindLoops(fn *ir.Func, dom *DomTree) *LoopForest {
	f := &LoopForest{
		ByHeader:    make(map[*ir.Block]*Loop),
		InnermostOf: make(map[*ir.Block]*Loop),
	}

	// Collect back edges in reverse postorder for determinism.
	for _, b := range dom.ReversePostorder() {
		for _, s := range b.Succs {
			if dom.Dominates(s, b) {
				loop := f.ByHeader[s]
				if loop == nil {
					loop = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
					f.ByHeader[s] = loop
				}
				// Grow the natural loop: all blocks that reach the
				// back edge's tail without passing through the
				// header.
				var stack []*ir.Block
				if !loop.Blocks[b] {
					loop.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range x.Preds {
						if !loop.Blocks[p] {
							loop.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}

	// Order loops by size descending so parents precede children.
	for _, l := range f.ByHeader {
		f.Loops = append(f.Loops, l)
	}
	sort.Slice(f.Loops, func(i, j int) bool {
		if len(f.Loops[i].Blocks) != len(f.Loops[j].Blocks) {
			return len(f.Loops[i].Blocks) > len(f.Loops[j].Blocks)
		}
		return f.Loops[i].Header.ID < f.Loops[j].Header.ID
	})

	// Nesting: the parent of l is the smallest loop properly
	// containing l's header (other than l itself).
	for i, l := range f.Loops {
		for j := i - 1; j >= 0; j-- {
			cand := f.Loops[j]
			if cand != l && cand.Blocks[l.Header] {
				// Loops are sorted by size descending, so scan from
				// the nearest (smallest) candidate upward.
				if l.Parent == nil || len(cand.Blocks) < len(l.Parent.Blocks) {
					l.Parent = cand
				}
			}
		}
	}
	for _, l := range f.Loops {
		if l.Parent == nil {
			f.Roots = append(f.Roots, l)
		} else {
			l.Parent.Children = append(l.Parent.Children, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, r := range f.Roots {
		setDepth(r, 1)
	}

	// Innermost loop per block: loops sorted big→small, so later
	// assignment wins.
	for _, l := range f.Loops {
		for b := range l.Blocks {
			f.InnermostOf[b] = l
		}
	}

	// Exits: outside-successors of loop blocks.
	for _, l := range f.Loops {
		seen := map[*ir.Block]bool{}
		for b := range l.Blocks {
			for _, s := range b.Succs {
				if !l.Blocks[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool { return l.Exits[i].ID < l.Exits[j].ID })
	}
	return f
}

// PreorderLoops returns the loops outermost-first (parents before
// children), which is the evaluation order for equation (4).
func (f *LoopForest) PreorderLoops() []*Loop {
	var out []*Loop
	var walk func(l *Loop)
	walk = func(l *Loop) {
		out = append(out, l)
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return out
}
