package cfg

import "regpromo/internal/ir"

// Normalize gives every loop an explicit landing pad and dedicated
// exit blocks, matching the shape the paper's compiler builds
// automatically (§3.2), and returns fresh dominator and loop
// structures for the normalized graph.
//
// After Normalize:
//   - every loop header has exactly one predecessor outside the loop,
//     the landing pad, which branches unconditionally to the header;
//   - every edge leaving a loop lands in a block whose predecessors
//     are all inside that loop (the loop's exit blocks).
//
// Promotion inserts its lifted loads in pads and its lifted stores in
// exit blocks.
func Normalize(fn *ir.Func) (*DomTree, *LoopForest) {
	for {
		fn.RemoveUnreachable()
		dom := Dominators(fn)
		forest := FindLoops(fn, dom)
		changed := false
		for _, l := range forest.Loops {
			if ensureLandingPad(fn, l) {
				changed = true
			}
		}
		if !changed {
			for _, l := range forest.Loops {
				if ensureExitBlocks(fn, l, forest) {
					changed = true
				}
			}
		}
		if !changed {
			// Record pads now that the shape is stable.
			for _, l := range forest.Loops {
				l.Pad = landingPadOf(l)
			}
			return dom, forest
		}
	}
}

// landingPadOf returns the unique outside predecessor of the loop
// header once normalization has established it.
func landingPadOf(l *Loop) *ir.Block {
	var pad *ir.Block
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			pad = p
		}
	}
	return pad
}

// ensureLandingPad gives l a dedicated preheader. It reports whether
// the CFG changed.
func ensureLandingPad(fn *ir.Func, l *Loop) bool {
	var outside []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	entryIsHeader := l.Header == fn.Entry
	if !entryIsHeader && len(outside) == 1 && len(outside[0].Succs) == 1 {
		return false // already a dedicated pad
	}
	pad := fn.NewBlock(l.Header.Label + ".pad")
	pad.Instrs = []ir.Instr{{Op: ir.OpBr}}
	for _, p := range outside {
		p.ReplaceSucc(l.Header, pad)
	}
	ir.AddEdge(pad, l.Header)
	if entryIsHeader {
		fn.Entry = pad
	}
	return true
}

// ensureExitBlocks redirects every loop-leaving edge into a block
// dedicated to this loop. It reports whether the CFG changed.
func ensureExitBlocks(fn *ir.Func, l *Loop, forest *LoopForest) bool {
	changed := false
	for _, x := range l.Exits {
		// Dedicated already: every predecessor inside l, and x is
		// not a loop header (a store inserted into a header would
		// execute per-iteration of that loop).
		dedicated := forest.ByHeader[x] == nil
		for _, p := range x.Preds {
			if !l.Blocks[p] {
				dedicated = false
				break
			}
		}
		if dedicated {
			continue
		}
		exit := fn.NewBlock(x.Label + ".exit")
		exit.Instrs = []ir.Instr{{Op: ir.OpBr}}
		for _, p := range append([]*ir.Block(nil), x.Preds...) {
			if l.Blocks[p] {
				p.ReplaceSucc(x, exit)
			}
		}
		ir.AddEdge(exit, x)
		changed = true
	}
	return changed
}
