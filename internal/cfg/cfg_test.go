package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regpromo/internal/ir"
)

// buildFunc constructs a function from an adjacency list. edges[i]
// lists the successor ids of block i; block 0 is the entry. Blocks
// with 0 successors get ret, 1 get br, 2 get cbr.
func buildFunc(edges [][]int) *ir.Func {
	fn := &ir.Func{Name: "t"}
	blocks := make([]*ir.Block, len(edges))
	for i := range edges {
		blocks[i] = fn.NewBlock("")
	}
	fn.Entry = blocks[0]
	cond := fn.NewReg()
	for i, succs := range edges {
		b := blocks[i]
		switch len(succs) {
		case 0:
			b.Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}}
		case 1:
			b.Instrs = []ir.Instr{{Op: ir.OpBr}}
		case 2:
			b.Instrs = []ir.Instr{{Op: ir.OpCBr, A: cond}}
		default:
			panic("too many successors")
		}
		for _, s := range succs {
			ir.AddEdge(b, blocks[s])
		}
	}
	return fn
}

func TestDominatorsDiamond(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//     \ /
	//      3
	fn := buildFunc([][]int{{1, 2}, {3}, {3}, {}})
	dom := Dominators(fn)
	if dom.Idom(fn.Blocks[3]) != fn.Blocks[0] {
		t.Fatalf("idom(3) = %v, want B0", dom.Idom(fn.Blocks[3]))
	}
	if !dom.Dominates(fn.Blocks[0], fn.Blocks[3]) {
		t.Fatal("entry must dominate join")
	}
	if dom.Dominates(fn.Blocks[1], fn.Blocks[3]) {
		t.Fatal("B1 must not dominate join")
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1, 2 -> 3
	fn := buildFunc([][]int{{1}, {2}, {1, 3}, {}})
	dom := Dominators(fn)
	if dom.Idom(fn.Blocks[2]) != fn.Blocks[1] {
		t.Fatal("idom(2) should be 1")
	}
	if dom.Idom(fn.Blocks[3]) != fn.Blocks[2] {
		t.Fatal("idom(3) should be 2")
	}
}

// TestDominatorsMatchIterative is the property test pitting
// Lengauer–Tarjan against the classic iterative algorithm on random
// CFGs.
func TestDominatorsMatchIterative(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		edges := make([][]int, n)
		for i := range edges {
			k := rng.Intn(3)
			// Ensure forward progress exists so that most blocks are
			// reachable.
			if i < n-1 && k == 0 {
				k = 1
			}
			seen := map[int]bool{}
			for j := 0; j < k; j++ {
				s := rng.Intn(n)
				if seen[s] {
					continue
				}
				seen[s] = true
				edges[i] = append(edges[i], s)
			}
			if len(edges[i]) == 1 && rng.Intn(2) == 0 && i < n-1 {
				edges[i] = append(edges[i], i+1)
			}
		}
		fn := buildFunc(edges)
		fn.RemoveUnreachable()
		if len(fn.Blocks) == 0 {
			return true
		}
		lt := Dominators(fn)
		iter := IterativeDominators(fn)
		for _, b := range fn.Blocks {
			if lt.Idom(b) != iter[b] {
				t.Logf("seed %d: idom(%s): LT=%v iterative=%v", seed, b.Label, lt.Idom(b), iter[b])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFindLoopsNest(t *testing.T) {
	// 0 -> 1(outer hdr) -> 2(inner hdr) -> 3 -> 2, 3 -> 4 -> 1, 4 -> 5
	fn := buildFunc([][]int{{1}, {2}, {3}, {2, 4}, {1, 5}, {}})
	dom := Dominators(fn)
	forest := FindLoops(fn, dom)
	if len(forest.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(forest.Loops))
	}
	outer := forest.ByHeader[fn.Blocks[1]]
	inner := forest.ByHeader[fn.Blocks[2]]
	if outer == nil || inner == nil {
		t.Fatal("missing loop headers")
	}
	if inner.Parent != outer {
		t.Fatal("inner loop should nest in outer")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths: outer=%d inner=%d", outer.Depth, inner.Depth)
	}
	if !outer.Blocks[fn.Blocks[3]] || !inner.Blocks[fn.Blocks[3]] {
		t.Fatal("block 3 belongs to both loops")
	}
	if inner.Blocks[fn.Blocks[4]] {
		t.Fatal("block 4 is not in the inner loop")
	}
}

func TestNormalizeInsertsPadsAndExits(t *testing.T) {
	// Loop header 1 with two outside preds (0 and 3->... none; craft
	// shared exit): 0->1, 1->2, 2->1|3, and 3 also reachable from 0.
	fn := buildFunc([][]int{{1, 3}, {2}, {1, 3}, {}})
	_, forest := Normalize(fn)
	if len(forest.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(forest.Loops))
	}
	l := forest.Loops[0]
	if l.Pad == nil {
		t.Fatal("no landing pad")
	}
	// Pad branches straight to the header and is outside the loop.
	if l.Blocks[l.Pad] {
		t.Fatal("pad inside loop")
	}
	if len(l.Pad.Succs) != 1 || l.Pad.Succs[0] != l.Header {
		t.Fatal("pad must branch to header only")
	}
	// Every exit block's preds are inside the loop.
	for _, x := range l.Exits {
		for _, p := range x.Preds {
			if !l.Blocks[p] {
				t.Fatalf("exit %s has outside pred %s", x.Label, p.Label)
			}
		}
	}
	if err := ir.VerifyFunc(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeEntryHeader(t *testing.T) {
	// Entry is itself a loop header: 0 -> 0|1.
	fn := buildFunc([][]int{{0, 1}, {}})
	_, forest := Normalize(fn)
	if len(forest.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(forest.Loops))
	}
	l := forest.Loops[0]
	if l.Pad == nil || fn.Entry != l.Pad {
		t.Fatalf("entry should be the new pad, entry=%s pad=%v", fn.Entry.Label, l.Pad)
	}
}

// TestNormalizeIdempotent: running Normalize twice must not add
// blocks the second time.
func TestNormalizeIdempotent(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		edges := make([][]int, n)
		for i := range edges {
			k := 1 + rng.Intn(2)
			if i == n-1 {
				k = 0
			}
			for j := 0; j < k; j++ {
				edges[i] = append(edges[i], rng.Intn(n))
			}
			if len(edges) > 1 && len(edges[i]) == 2 && edges[i][0] == edges[i][1] {
				edges[i] = edges[i][:1]
			}
		}
		fn := buildFunc(edges)
		Normalize(fn)
		before := len(fn.Blocks)
		Normalize(fn)
		return len(fn.Blocks) == before
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiEntryRegionHasNoNaturalLoop(t *testing.T) {
	// A cycle entered at two points has no back edge whose head
	// dominates its tail, so natural-loop detection must find no
	// loop — and Normalize must not invent pads for it.
	//     0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1, 1 -> 3, 2 -> 3... keep it
	// simple: 0 branches to both 1 and 2, which branch to each other
	// and out to 3.
	fn := buildFunc([][]int{{1, 2}, {2, 3}, {1, 3}, {}})
	dom := Dominators(fn)
	forest := FindLoops(fn, dom)
	if len(forest.Loops) != 0 {
		t.Fatalf("irreducible region misdetected as %d natural loops", len(forest.Loops))
	}
	_, forest2 := Normalize(fn)
	if len(forest2.Loops) != 0 {
		t.Fatal("normalize invented loops")
	}
}

func TestSelfLoop(t *testing.T) {
	// 0 -> 1, 1 -> 1|2
	fn := buildFunc([][]int{{1}, {1, 2}, {}})
	_, forest := Normalize(fn)
	if len(forest.Loops) != 1 {
		t.Fatalf("self loop not found: %d", len(forest.Loops))
	}
	l := forest.Loops[0]
	if len(l.Blocks) != 1 {
		t.Fatalf("self loop spans %d blocks", len(l.Blocks))
	}
	if l.Pad == nil || l.Blocks[l.Pad] {
		t.Fatal("self loop needs an outside pad")
	}
}

func TestSharedHeaderLoopsMerge(t *testing.T) {
	// Two back edges to one header: 0->1, 1->2|3, 2->1, 3->1|4.
	fn := buildFunc([][]int{{1}, {2, 3}, {1}, {1, 4}, {}})
	dom := Dominators(fn)
	forest := FindLoops(fn, dom)
	if len(forest.Loops) != 1 {
		t.Fatalf("loops sharing a header must merge, got %d", len(forest.Loops))
	}
	l := forest.Loops[0]
	for _, id := range []int{1, 2, 3} {
		if !l.Blocks[fn.Blocks[id]] {
			t.Fatalf("block %d missing from merged loop", id)
		}
	}
}

func TestLoopDepthQuery(t *testing.T) {
	fn := buildFunc([][]int{{1}, {2}, {2, 3}, {1, 4}, {}})
	dom := Dominators(fn)
	forest := FindLoops(fn, dom)
	if d := forest.Depth(fn.Blocks[0]); d != 0 {
		t.Fatalf("entry depth = %d", d)
	}
	if d := forest.Depth(fn.Blocks[2]); d != 2 {
		t.Fatalf("inner block depth = %d", d)
	}
}
