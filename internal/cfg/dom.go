// Package cfg provides control-flow-graph analyses and normalizations
// over the IL: dominators via the Lengauer–Tarjan algorithm [15],
// natural-loop-nest identification (§3.1 step 3 of the paper), and the
// loop landing pads and dedicated exit blocks the promotion rewrite
// relies on (§3.2: "each loop has an explicit landing pad before its
// header and an explicit exit block").
package cfg

import "regpromo/internal/ir"

// DomTree holds immediate-dominator information for one function.
type DomTree struct {
	fn *ir.Func
	// idom[b.ID] is b's immediate dominator (nil for the entry and
	// unreachable blocks).
	idom []*ir.Block
	// children is the dominator tree.
	children [][]*ir.Block
	// order is a reverse-postorder numbering of reachable blocks.
	order []*ir.Block
	num   []int
}

// Idom returns b's immediate dominator (nil for the entry block).
func (d *DomTree) Idom(b *ir.Block) *ir.Block { return d.idom[b.ID] }

// Children returns the dominator-tree children of b.
func (d *DomTree) Children(b *ir.Block) []*ir.Block { return d.children[b.ID] }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = d.idom[b.ID]
	}
	return false
}

// ReversePostorder returns reachable blocks in reverse postorder.
func (d *DomTree) ReversePostorder() []*ir.Block { return d.order }

// Dominators computes the dominator tree of fn using the
// Lengauer–Tarjan algorithm with simple path compression. Blocks must
// be densely numbered (fn.Renumber).
func Dominators(fn *ir.Func) *DomTree {
	n := len(fn.Blocks)
	d := &DomTree{
		fn:       fn,
		idom:     make([]*ir.Block, n),
		children: make([][]*ir.Block, n),
		num:      make([]int, n),
	}

	// DFS numbering.
	semi := make([]int, n) // semidominator number, by dfs number
	vertex := make([]*ir.Block, 0, n)
	parent := make([]int, n) // dfs parent, by dfs number
	dfn := make([]int, n)    // block id -> dfs number (+1; 0 = unreached)
	var dfs func(b *ir.Block, p int)
	dfs = func(b *ir.Block, p int) {
		if dfn[b.ID] != 0 {
			return
		}
		dfn[b.ID] = len(vertex) + 1
		parent[len(vertex)] = p
		semi[len(vertex)] = len(vertex)
		vertex = append(vertex, b)
		for _, s := range b.Succs {
			dfs(s, dfn[b.ID]-1)
		}
	}
	dfs(fn.Entry, -1)
	m := len(vertex)

	// Union-find with path compression on dfs numbers, tracking the
	// minimum-semidominator vertex on the path.
	ancestor := make([]int, m)
	label := make([]int, m)
	for i := range ancestor {
		ancestor[i] = -1
		label[i] = i
	}
	var compress func(v int)
	compress = func(v int) {
		if ancestor[ancestor[v]] == -1 {
			return
		}
		compress(ancestor[v])
		if semi[label[ancestor[v]]] < semi[label[v]] {
			label[v] = label[ancestor[v]]
		}
		ancestor[v] = ancestor[ancestor[v]]
	}
	eval := func(v int) int {
		if ancestor[v] == -1 {
			return label[v]
		}
		compress(v)
		return label[v]
	}

	bucket := make([][]int, m)
	idom := make([]int, m)
	for i := range idom {
		idom[i] = -1
	}

	for w := m - 1; w >= 1; w-- {
		b := vertex[w]
		for _, p := range b.Preds {
			if dfn[p.ID] == 0 {
				continue // unreachable predecessor
			}
			v := dfn[p.ID] - 1
			u := eval(v)
			if semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		bucket[semi[w]] = append(bucket[semi[w]], w)
		ancestor[w] = parent[w]
		for _, v := range bucket[parent[w]] {
			u := eval(v)
			if semi[u] < semi[v] {
				idom[v] = u
			} else {
				idom[v] = parent[w]
			}
		}
		bucket[parent[w]] = nil
	}
	for w := 1; w < m; w++ {
		if idom[w] != semi[w] {
			idom[w] = idom[idom[w]]
		}
	}

	for w := 1; w < m; w++ {
		b := vertex[w]
		ib := vertex[idom[w]]
		d.idom[b.ID] = ib
		d.children[ib.ID] = append(d.children[ib.ID], b)
	}

	// Reverse postorder for iteration orders elsewhere.
	seen := make([]bool, n)
	var post []*ir.Block
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(fn.Entry)
	d.order = make([]*ir.Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		d.order = append(d.order, post[i])
	}
	for i, b := range d.order {
		d.num[b.ID] = i
	}
	return d
}

// IterativeDominators computes immediate dominators with the classic
// iterative data-flow algorithm. It exists as an independent oracle
// for property-testing the Lengauer–Tarjan implementation.
func IterativeDominators(fn *ir.Func) map[*ir.Block]*ir.Block {
	// Reverse postorder.
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(fn.Entry)
	rpo := make([]*ir.Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		rpoNum[b] = i
	}

	idom := make(map[*ir.Block]*ir.Block, len(rpo))
	idom[fn.Entry] = fn.Entry
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	out := make(map[*ir.Block]*ir.Block, len(rpo))
	for _, b := range rpo {
		if b == fn.Entry {
			out[b] = nil
		} else {
			out[b] = idom[b]
		}
	}
	return out
}
