// Package testutil provides shared helpers for compiler tests:
// compiling C snippets to analyzed IL, counting opcodes, and running
// modules while comparing observable behaviour.
package testutil

import (
	"testing"

	"regpromo/internal/analysis/modref"
	"regpromo/internal/callgraph"
	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
)

// Compile builds a module from C source, with MOD/REF analysis
// applied (the baseline every pass expects).
func Compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	m, err := irgen.Generate(p)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	cg := callgraph.Build(m)
	modref.Run(m, cg)
	return m
}

// CountOps returns how many instructions of the given opcode exist in
// fn.
func CountOps(fn *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

// Run executes the module and fails the test on runtime errors.
func Run(t *testing.T, m *ir.Module) *interp.Result {
	t.Helper()
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, ir.FormatModule(m))
	}
	return res
}

// MustBehaveLike runs m and checks output and exit code against a
// reference result.
func MustBehaveLike(t *testing.T, m *ir.Module, want *interp.Result) *interp.Result {
	t.Helper()
	got := Run(t, m)
	if got.Output != want.Output || got.Exit != want.Exit {
		t.Fatalf("behaviour changed:\nwant exit=%d out=%q\ngot  exit=%d out=%q\n%s",
			want.Exit, want.Output, got.Exit, got.Output, ir.FormatModule(m))
	}
	return got
}

// VerifyAll fails the test if any function is structurally invalid.
func VerifyAll(t *testing.T, m *ir.Module) {
	t.Helper()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("invalid IL: %v", err)
	}
}
