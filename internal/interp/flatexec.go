package interp

import (
	"encoding/binary"
	"fmt"
	"math"

	"regpromo/internal/ir"
)

// This file is the flat-code dispatch engine. Each activation runs a
// loop whose hot state (program counter, step counter, register file)
// stays in locals, so each instruction is a single indexed load, a
// bump, and a dense switch. The current function, frame, and register
// file are loop-invariant — calls recurse into a fresh runFlat rather
// than swapping them in place, which keeps the loop's live set small
// enough to stay in machine registers. Register files are sliced out
// of a per-machine arena and frame objects are pooled, so
// steady-state calls allocate nothing.
//
// The engine is behaviour-identical to the block-walking reference
// engine (exec.go): same counts, same profiles, same outputs, same
// error strings. internal/difftest and the engines differential test
// hold the two to byte equality.

// Run executes the program's main function. When opts.Profile is set
// but the program was lowered without markers, the module is
// re-lowered with profiling first.
func (p *Program) Run(opts Options) (*Result, error) {
	if opts.Profile && !p.profiled {
		p = Flatten(p.mod, true)
	}
	if p.mainIdx < 0 {
		return nil, &Error{Func: "main", Msg: "no main function"}
	}
	m := newMachineImage(p.mod, opts, p.img)
	regs := m.allocRegs(p.funcs[p.mainIdx].numRegs)
	exit, err := m.runFlat(p, p.mainIdx, regs)
	if err != nil {
		return nil, err
	}
	return m.result(exit), nil
}

// allocRegs slices a zeroed n-register file out of the arena.
func (m *machine) allocRegs(n int) []int64 {
	if m.regTop+n > len(m.regArena) {
		size := 2 * len(m.regArena)
		if size < m.regTop+n {
			size = m.regTop + n
		}
		if size < 256 {
			size = 256
		}
		// Frames still holding slices of the old array keep using it;
		// the arena only hands out disjoint index ranges, so the swap
		// is invisible to them.
		m.regArena = make([]int64, size)
	}
	regs := m.regArena[m.regTop : m.regTop+n]
	m.regTop += n
	clear(regs)
	return regs
}

// pushFrame activates a frame for fn at the current stack pointer,
// recycling a pooled frame object when one is free.
func (m *machine) pushFrame(fn *ir.Func, regs []int64, ff *flatFunc) *frame {
	var f *frame
	if n := len(m.framePool); n > 0 {
		f = m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
		*f = frame{fn: fn, regs: regs, base: m.sp, size: ff.frameSize}
	} else {
		f = &frame{fn: fn, regs: regs, base: m.sp, size: ff.frameSize}
	}
	if ff.needsZero {
		lo := f.base - stackBase
		clear(m.stack[lo : lo+ff.frameSize])
	}
	m.sp += ff.frameSize
	m.frames = append(m.frames, f)
	return f
}

// runFlat executes one function activation. regs must have been
// handed out by allocRegs with the parameter registers already
// filled in.
//
// The loop keeps its state lean on purpose: one local step counter
// (ops and steps advance in lockstep, so a single counter serves as
// both, settled into m.counts.Ops/m.steps only at call boundaries
// and on successful return — error exits leave them stale because
// nothing reads counts after a failed run), and hoisted
// loop-invariant fields (prof, trace, the global and stack regions).
// Every extra live variable here costs real dispatch throughput in
// spills.
func (m *machine) runFlat(p *Program, fi int, regs []int64) (ret int64, err error) {
	ff := &p.funcs[fi]
	fn := ff.src
	if m.sp+ff.frameSize > stackBase+stackSize {
		m.regTop -= ff.numRegs
		return 0, &Error{Func: fn.Name, Msg: "stack overflow"}
	}
	m.ensureStack(m.sp + ff.frameSize - stackBase)
	f := m.pushFrame(fn, regs, ff)

	code := p.code
	pc := ff.entry
	var steps int64
	budget := m.max - m.steps
	prof := m.prof
	trace := m.opts.Trace
	san := m.san
	globals := m.globals
	// stk tracks m.stack; it is refreshed after every call, the only
	// point where ensureStack can move the backing array.
	stk := m.stack

	for {
		in := &code[pc]
		pc++
		if in.op == fBlock {
			// A profiled program can legally run without profiling (a
			// cached lowering reused for a plain run); the marker is
			// then a pure no-op, still outside the op/step counters.
			if prof != nil {
				ref := &p.blocks[in.imm]
				prof.hitBlock(ref.fn, ref.b)
			}
			continue
		}
		steps++
		if steps > budget {
			return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
		}

		switch in.op {
		case fNop:
			// no effect

		case fLoadI:
			regs[in.dst] = in.imm
		case fCopy:
			m.counts.Copies++
			regs[in.dst] = regs[in.a]

		case fAdd:
			regs[in.dst] = regs[in.a] + regs[in.b]
		case fSub:
			regs[in.dst] = regs[in.a] - regs[in.b]
		case fMul:
			regs[in.dst] = regs[in.a] * regs[in.b]
		case fDiv:
			if regs[in.b] == 0 {
				return 0, &Error{Func: fn.Name, Msg: "integer division by zero"}
			}
			regs[in.dst] = regs[in.a] / regs[in.b]
		case fRem:
			if regs[in.b] == 0 {
				return 0, &Error{Func: fn.Name, Msg: "integer remainder by zero"}
			}
			regs[in.dst] = regs[in.a] % regs[in.b]
		case fNeg:
			regs[in.dst] = -regs[in.a]
		case fAnd:
			regs[in.dst] = regs[in.a] & regs[in.b]
		case fOr:
			regs[in.dst] = regs[in.a] | regs[in.b]
		case fXor:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
		case fNot:
			regs[in.dst] = ^regs[in.a]
		case fShl:
			regs[in.dst] = regs[in.a] << (uint64(regs[in.b]) & 63)
		case fShr:
			regs[in.dst] = regs[in.a] >> (uint64(regs[in.b]) & 63)

		case fCmpEQ:
			regs[in.dst] = b2i(regs[in.a] == regs[in.b])
		case fCmpNE:
			regs[in.dst] = b2i(regs[in.a] != regs[in.b])
		case fCmpLT:
			regs[in.dst] = b2i(regs[in.a] < regs[in.b])
		case fCmpLE:
			regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
		case fCmpGT:
			regs[in.dst] = b2i(regs[in.a] > regs[in.b])
		case fCmpGE:
			regs[in.dst] = b2i(regs[in.a] >= regs[in.b])

		case fFAdd:
			regs[in.dst] = fbits(fval(regs[in.a]) + fval(regs[in.b]))
		case fFSub:
			regs[in.dst] = fbits(fval(regs[in.a]) - fval(regs[in.b]))
		case fFMul:
			regs[in.dst] = fbits(fval(regs[in.a]) * fval(regs[in.b]))
		case fFDiv:
			regs[in.dst] = fbits(fval(regs[in.a]) / fval(regs[in.b]))
		case fFNeg:
			regs[in.dst] = fbits(-fval(regs[in.a]))

		case fFCmpEQ:
			regs[in.dst] = b2i(fval(regs[in.a]) == fval(regs[in.b]))
		case fFCmpNE:
			regs[in.dst] = b2i(fval(regs[in.a]) != fval(regs[in.b]))
		case fFCmpLT:
			regs[in.dst] = b2i(fval(regs[in.a]) < fval(regs[in.b]))
		case fFCmpLE:
			regs[in.dst] = b2i(fval(regs[in.a]) <= fval(regs[in.b]))
		case fFCmpGT:
			regs[in.dst] = b2i(fval(regs[in.a]) > fval(regs[in.b]))
		case fFCmpGE:
			regs[in.dst] = b2i(fval(regs[in.a]) >= fval(regs[in.b]))

		case fI2F:
			regs[in.dst] = fbits(float64(regs[in.a]))
		case fF2I:
			regs[in.dst] = int64(fval(regs[in.a]))

		// Memory operations resolve their region inline: scalar ops
		// know it statically (fLoadG/fStoreG are always global,
		// fLoadL/fStoreL always stack), pointer ops pick it with two
		// compares. The fast paths bound-check against exactly the
		// byte ranges mem() accepts, and anything they reject falls
		// back to loadMem/storeMem so faults keep the reference
		// engine's error text.
		case fLoadG:
			m.counts.Loads++
			if prof != nil {
				prof.load(in.tag)
			}
			if san != nil {
				san.scalarRef(in.src)
			}
			v, ok := loadFast(globals, in.imm-globalBase, in.sz)
			if !ok {
				var lerr error
				if v, lerr = m.loadMem(f, in.imm, int(in.sz)); lerr != nil {
					return 0, lerr
				}
			}
			regs[in.dst] = v
		case fLoadL:
			m.counts.Loads++
			if prof != nil {
				prof.load(in.tag)
			}
			if san != nil {
				san.scalarRef(in.src)
			}
			v, ok := loadFast(stk, f.base+in.imm-stackBase, in.sz)
			if !ok {
				var lerr error
				if v, lerr = m.loadMem(f, f.base+in.imm, int(in.sz)); lerr != nil {
					return 0, lerr
				}
			}
			regs[in.dst] = v
		case fStoreG:
			m.counts.Stores++
			if prof != nil {
				prof.store(in.tag)
			}
			if san != nil {
				san.scalarMod(in.src)
			}
			if !storeFast(globals, in.imm-globalBase, in.sz, regs[in.a]) {
				if serr := m.storeMem(f, in.imm, int(in.sz), regs[in.a]); serr != nil {
					return 0, serr
				}
			}
		case fStoreL:
			m.counts.Stores++
			if prof != nil {
				prof.store(in.tag)
			}
			if san != nil {
				san.scalarMod(in.src)
			}
			if !storeFast(stk, f.base+in.imm-stackBase, in.sz, regs[in.a]) {
				if serr := m.storeMem(f, f.base+in.imm, int(in.sz), regs[in.a]); serr != nil {
					return 0, serr
				}
			}
		case fAddrL:
			regs[in.dst] = f.base + in.imm

		case fPLoad:
			m.counts.Loads++
			addr := regs[in.a]
			if trace != nil {
				trace(fn.Name, in.src, addr, m.ownerOf(addr))
			}
			if prof != nil {
				prof.load(m.ownerOf(addr))
			}
			if san != nil {
				san.ptrAccess(fn.Name, in.src, m.ownerOf(addr), false)
			}
			var v int64
			var ok bool
			// Regions in descending base order; a miss (gap between
			// regions, past a region's committed end, null page) falls
			// through with ok=false. The heap is sliced to heapTop so
			// over-allocated capacity stays unaddressable, as in mem().
			switch {
			case addr >= heapBase:
				v, ok = loadFast(m.heap[:m.heapTop-heapBase], addr-heapBase, in.sz)
			case addr >= stackBase:
				v, ok = loadFast(stk, addr-stackBase, in.sz)
			case addr >= globalBase:
				v, ok = loadFast(globals, addr-globalBase, in.sz)
			}
			if !ok {
				var lerr error
				if v, lerr = m.loadMem(f, addr, int(in.sz)); lerr != nil {
					return 0, lerr
				}
			}
			regs[in.dst] = v
		case fPStore:
			m.counts.Stores++
			addr := regs[in.a]
			if trace != nil {
				trace(fn.Name, in.src, addr, m.ownerOf(addr))
			}
			if prof != nil {
				prof.store(m.ownerOf(addr))
			}
			if san != nil {
				san.ptrAccess(fn.Name, in.src, m.ownerOf(addr), true)
			}
			var ok bool
			switch {
			case addr >= heapBase:
				ok = storeFast(m.heap[:m.heapTop-heapBase], addr-heapBase, in.sz, regs[in.b])
			case addr >= stackBase:
				ok = storeFast(stk, addr-stackBase, in.sz, regs[in.b])
			case addr >= globalBase:
				ok = storeFast(globals, addr-globalBase, in.sz, regs[in.b])
			}
			if !ok {
				if serr := m.storeMem(f, addr, int(in.sz), regs[in.b]); serr != nil {
					return 0, serr
				}
			}

		case fBr:
			pc = int(in.imm)
		case fCBr:
			if regs[in.a] != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.b)
			}
		case fRet:
			var v int64
			if in.a >= 0 {
				v = regs[in.a]
			}
			m.frames = m.frames[:len(m.frames)-1]
			m.sp = f.base
			m.regTop -= ff.numRegs
			m.framePool = append(m.framePool, f)
			m.counts.Ops += steps
			m.steps += steps
			return v, nil

		// Fused compare-and-branch. Each case is the unfused pair run
		// back to back: write the compare register, count the branch
		// as a second op (with its own budget check, so the step limit
		// still fires between the two halves exactly where the
		// reference engine would), then pick the successor.
		case fJEQ:
			v := b2i(regs[in.a] == regs[in.b])
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJNE:
			v := b2i(regs[in.a] != regs[in.b])
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJLT:
			v := b2i(regs[in.a] < regs[in.b])
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJLE:
			v := b2i(regs[in.a] <= regs[in.b])
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJGT:
			v := b2i(regs[in.a] > regs[in.b])
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJGE:
			v := b2i(regs[in.a] >= regs[in.b])
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJFEQ:
			v := b2i(fval(regs[in.a]) == fval(regs[in.b]))
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJFNE:
			v := b2i(fval(regs[in.a]) != fval(regs[in.b]))
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJFLT:
			v := b2i(fval(regs[in.a]) < fval(regs[in.b]))
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJFLE:
			v := b2i(fval(regs[in.a]) <= fval(regs[in.b]))
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJFGT:
			v := b2i(fval(regs[in.a]) > fval(regs[in.b]))
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}
		case fJFGE:
			v := b2i(fval(regs[in.a]) >= fval(regs[in.b]))
			regs[in.dst] = v
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			if v != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.c)
			}

		// Fused address-compute-and-access: the add half writes its
		// register and counts first (with the same mid-pair budget
		// check as fused branches), then the access half runs as an
		// ordinary fPLoad/fPStore body.
		case fAddPLoad:
			addr := regs[in.a] + regs[in.b]
			regs[in.c] = addr
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			m.counts.Loads++
			if trace != nil {
				trace(fn.Name, in.src, addr, m.ownerOf(addr))
			}
			if prof != nil {
				prof.load(m.ownerOf(addr))
			}
			if san != nil {
				san.ptrAccess(fn.Name, in.src, m.ownerOf(addr), false)
			}
			var v int64
			var ok bool
			switch {
			case addr >= heapBase:
				v, ok = loadFast(m.heap[:m.heapTop-heapBase], addr-heapBase, in.sz)
			case addr >= stackBase:
				v, ok = loadFast(stk, addr-stackBase, in.sz)
			case addr >= globalBase:
				v, ok = loadFast(globals, addr-globalBase, in.sz)
			}
			if !ok {
				var lerr error
				if v, lerr = m.loadMem(f, addr, int(in.sz)); lerr != nil {
					return 0, lerr
				}
			}
			regs[in.dst] = v
		case fAddPStore:
			addr := regs[in.a] + regs[in.b]
			regs[in.c] = addr
			steps++
			if steps > budget {
				return 0, &Error{Func: fn.Name, Msg: "step limit exceeded (infinite loop?)"}
			}
			m.counts.Stores++
			if trace != nil {
				trace(fn.Name, in.src, addr, m.ownerOf(addr))
			}
			if prof != nil {
				prof.store(m.ownerOf(addr))
			}
			if san != nil {
				san.ptrAccess(fn.Name, in.src, m.ownerOf(addr), true)
			}
			val := regs[in.dst]
			var ok bool
			switch {
			case addr >= heapBase:
				ok = storeFast(m.heap[:m.heapTop-heapBase], addr-heapBase, in.sz, val)
			case addr >= stackBase:
				ok = storeFast(stk, addr-stackBase, in.sz, val)
			case addr >= globalBase:
				ok = storeFast(globals, addr-globalBase, in.sz, val)
			}
			if !ok {
				if serr := m.storeMem(f, addr, int(in.sz), val); serr != nil {
					return 0, serr
				}
			}

		case fCall:
			m.counts.Calls++
			src := in.src
			target := in.imm
			if target == callIndirect {
				addr := regs[in.a]
				idx := addr - funcBase
				if idx < 0 || int(idx) >= len(p.funcs) {
					return 0, &Error{Func: fn.Name, Msg: fmt.Sprintf("indirect call through invalid address %#x", addr)}
				}
				target = idx
			}
			if target == callIntrinsic {
				// Intrinsics never touch the step counters, so no
				// settle/reload is needed around them.
				args := m.argScratch[:0]
				for _, a := range src.Args {
					args = append(args, regs[a])
				}
				m.argScratch = args[:0]
				v, ierr := m.intrinsic(f, src.Callee, src, args)
				if ierr != nil {
					return 0, ierr
				}
				if in.dst >= 0 {
					regs[in.dst] = v
				}
				continue
			}
			callee := &p.funcs[target]
			cregs := m.allocRegs(callee.numRegs)
			for i, pr := range callee.src.Params {
				if i < len(src.Args) {
					cregs[pr] = regs[src.Args[i]]
				}
			}
			// Settle the local counter so the callee budgets against
			// up-to-date step totals, then reload what the callee may
			// have moved: the budget and the stack array.
			m.counts.Ops += steps
			m.steps += steps
			steps = 0
			if san != nil {
				san.pushCall(fn.Name, src)
			}
			v, cerr := m.runFlat(p, int(target), cregs)
			if cerr != nil {
				return 0, cerr
			}
			if san != nil {
				san.popCall()
			}
			budget = m.max - m.steps
			stk = m.stack
			if in.dst >= 0 {
				regs[in.dst] = v
			}

		case fErr:
			return 0, &Error{Func: fn.Name, Msg: p.errs[in.imm]}

		default:
			return 0, &Error{Func: fn.Name, Msg: fmt.Sprintf("flat engine: bad opcode %d", in.op)}
		}
	}
}

// loadFast reads a little-endian value of a supported width when
// off..off+size lies inside buf; ok=false defers to the generic,
// fault-reporting loadMem path (out of bounds, or an unusual width
// that must produce loadMem's "bad load size" error).
func loadFast(buf []byte, off int64, sz uint8) (v int64, ok bool) {
	if off < 0 {
		return 0, false
	}
	switch sz {
	case 8:
		if off+8 <= int64(len(buf)) {
			return int64(binary.LittleEndian.Uint64(buf[off:])), true
		}
	case 4:
		if off+4 <= int64(len(buf)) {
			return int64(int32(binary.LittleEndian.Uint32(buf[off:]))), true
		}
	case 1:
		if off < int64(len(buf)) {
			return int64(int8(buf[off])), true
		}
	}
	return 0, false
}

// storeFast is loadFast's store twin.
func storeFast(buf []byte, off int64, sz uint8, v int64) bool {
	if off < 0 {
		return false
	}
	switch sz {
	case 8:
		if off+8 <= int64(len(buf)) {
			binary.LittleEndian.PutUint64(buf[off:], uint64(v))
			return true
		}
	case 4:
		if off+4 <= int64(len(buf)) {
			binary.LittleEndian.PutUint32(buf[off:], uint32(v))
			return true
		}
	case 1:
		if off < int64(len(buf)) {
			buf[off] = byte(v)
			return true
		}
	}
	return false
}

func fbits(v float64) int64 { return int64(math.Float64bits(v)) }
