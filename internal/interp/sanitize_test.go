package interp_test

// Seeded-defect tests for the analysis-soundness sanitizer: compile a
// real program, surgically prune a call site's static MOD or REF
// summary (exactly the unsound result a broken analysis would
// produce), and check that executing under Options.Sanitize reports
// the pruned tag with full provenance — on both engines, since the
// flat lowering carries source-instruction back-pointers.

import (
	"strings"
	"testing"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
)

// findTag resolves a tag by name or fails the test.
func findTag(t *testing.T, m *ir.Module, name string) ir.TagID {
	t.Helper()
	for _, tag := range m.Tags.All() {
		if tag.Name == name {
			return tag.ID
		}
	}
	t.Fatalf("no tag named %q", name)
	return ir.TagInvalid
}

// findCall returns main's call to callee, with its provenance.
func findCall(t *testing.T, m *ir.Module, callee string) (in *ir.Instr, block string, index int) {
	t.Helper()
	for _, b := range m.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpJsr && b.Instrs[i].Callee == callee {
				return &b.Instrs[i], b.Label, i
			}
		}
	}
	t.Fatalf("main never calls %q", callee)
	return nil, "", 0
}

func engines() []interp.Engine {
	return []interp.Engine{interp.EngineFlat, interp.EngineSwitch}
}

func TestSanitizerCatchesPrunedModSet(t *testing.T) {
	const src = `
int g;
void f(void) { g = 1; }
int main(void) { f(); return g; }
`
	c, err := driver.CompileSource("pruned_mod.c", src, driver.Config{Analysis: driver.ModRef})
	if err != nil {
		t.Fatal(err)
	}
	gid := findTag(t, c.Module, "g")
	call, block, index := findCall(t, c.Module, "f")
	if !call.Mods.Has(gid) {
		t.Fatalf("MOD/REF analysis lost g at the call site; mods = %v", call.Mods)
	}
	// The seeded defect: an unsound analysis that "proved" f does not
	// modify g.
	call.Mods = call.Mods.Minus(ir.NewTagSet(gid))

	for _, engine := range engines() {
		res, err := c.Execute(interp.Options{MaxSteps: 1 << 20, Engine: engine, Sanitize: true})
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if res.Exit != 1 {
			t.Fatalf("engine %v: exit = %d, want 1 (program behaviour must not change)", engine, res.Exit)
		}
		if len(res.Violations) != 1 {
			t.Fatalf("engine %v: %d violations %v, want 1", engine, len(res.Violations), res.Violations)
		}
		d := res.Violations[0]
		if d.Check != "sanitize.mod" {
			t.Errorf("engine %v: check = %q, want sanitize.mod", engine, d.Check)
		}
		if d.Func != "main" || d.Block != block || d.Index != index || d.Op != ir.OpJsr {
			t.Errorf("engine %v: provenance = %s/%s#%d %v, want main/%s#%d jsr",
				engine, d.Func, d.Block, d.Index, d.Op, block, index)
		}
		if !strings.Contains(d.Msg, `"g"`) || !strings.Contains(d.Msg, "f") || !strings.Contains(d.Msg, "MOD") {
			t.Errorf("engine %v: msg = %q, want the callee, the tag, and the set named", engine, d.Msg)
		}
	}
}

func TestSanitizerCatchesPrunedRefSet(t *testing.T) {
	const src = `
int g = 5;
int f(void) { return g; }
int main(void) { return f(); }
`
	c, err := driver.CompileSource("pruned_ref.c", src, driver.Config{Analysis: driver.ModRef})
	if err != nil {
		t.Fatal(err)
	}
	gid := findTag(t, c.Module, "g")
	call, _, _ := findCall(t, c.Module, "f")
	call.Refs = call.Refs.Minus(ir.NewTagSet(gid))

	for _, engine := range engines() {
		res, err := c.Execute(interp.Options{MaxSteps: 1 << 20, Engine: engine, Sanitize: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 1 || res.Violations[0].Check != "sanitize.ref" {
			t.Fatalf("engine %v: violations = %v, want one sanitize.ref", engine, res.Violations)
		}
	}
}

func TestSanitizerCatchesPrunedPointsToSet(t *testing.T) {
	// The pointer comes out of a call so the front end cannot fold
	// the store into a direct sStore; points-to narrows the pStore's
	// may-set to {a, b}, and at run time it resolves to a.
	const src = `
int a, b;
int *pick(int x) { if (x) return &a; return &b; }
int main(void) {
	int *p = pick(1);
	*p = 3;
	return a + b;
}
`
	c, err := driver.CompileSource("pruned_ptr.c", src, driver.Config{Analysis: driver.PointsTo, DisableOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	aid := findTag(t, c.Module, "a")
	// Find the pStore through p and prune a from its may-set, leaving
	// it non-⊤ (point it at b instead).
	bid := findTag(t, c.Module, "b")
	var pruned bool
	for _, bb := range c.Module.Funcs["main"].Blocks {
		for i := range bb.Instrs {
			in := &bb.Instrs[i]
			if in.Op == ir.OpPStore && in.Tags.Has(aid) {
				in.Tags = ir.NewTagSet(bid)
				pruned = true
			}
		}
	}
	if !pruned {
		t.Fatal("no pStore of a in the unoptimized module; nothing to seed")
	}
	for _, engine := range engines() {
		res, err := c.Execute(interp.Options{MaxSteps: 1 << 20, Engine: engine, Sanitize: true})
		if err != nil {
			t.Fatal(err)
		}
		var found bool
		for _, d := range res.Violations {
			if d.Check == "sanitize.ptr" && strings.Contains(d.Msg, `"a"`) {
				found = true
			}
		}
		if !found {
			t.Fatalf("engine %v: violations = %v, want a sanitize.ptr naming a", engine, res.Violations)
		}
	}
}

// TestSanitizerCleanOnHonestAnalysis is the false-positive gate on
// real code: an unmodified compilation must execute violation-free.
func TestSanitizerCleanOnHonestAnalysis(t *testing.T) {
	const src = `
int g;
int acc(int x) { g = g + x; return g; }
int main(void) {
	int i;
	int s = 0;
	for (i = 0; i < 10; i++) s = acc(i);
	return s;
}
`
	for _, nc := range driver.DifferentialConfigurations(true) {
		c, err := driver.CompileSource("clean.c", src, nc.Config)
		if err != nil {
			t.Fatal(err)
		}
		for _, engine := range engines() {
			res, err := c.Execute(interp.Options{MaxSteps: 1 << 24, Engine: engine, Sanitize: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s engine %v: spurious violations %v", nc.Name, engine, res.Violations)
			}
		}
	}
}

// BenchmarkSanitizerOverhead measures what Options.Sanitize costs when
// on; when off the hooks are a nil check on a hoisted local, so the
// off/on delta is the sanitizer's whole price.
func BenchmarkSanitizerOverhead(b *testing.B) {
	c := compileProgram(b, "mlink")
	for _, mode := range []struct {
		name     string
		sanitize bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				res, err := c.Execute(interp.Options{
					MaxSteps: 1 << 33, Engine: interp.EngineFlat, Sanitize: mode.sanitize,
				})
				if err != nil {
					b.Fatal(err)
				}
				ops += res.Counts.Ops
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(ops)/secs, "interp-ops/sec")
			}
		})
	}
}
