package interp

import (
	"fmt"
	"math"

	"regpromo/internal/ir"
)

// This file is the flat-code compiler: it lowers an ir.Module into a
// single contiguous instruction array with every operand pre-resolved,
// so the dispatch loop (flatexec.go) never chases a block pointer,
// hashes a map, or re-derives an address it could have computed once.
//
//   - Branch targets become instruction indices into the flat array.
//   - Call targets become indices into a function table resolved at
//     lowering time (intrinsics and indirect calls are marked and
//     resolved by the dispatcher).
//   - Scalar memory operations carry their absolute global address or
//     frame offset, plus the access width, in the instruction itself;
//     frame layouts are computed once per function, not per call.
//   - loadF immediates are pre-converted to their bit patterns, and
//     addrOf of a global or function folds to a constant load.
//   - Profiling hooks compile to explicit block-entry markers, emitted
//     only when the profile build is requested — a zero-profiling
//     program pays nothing for the instrumentation.
//
// Lowering never fails: an instruction the flat engine cannot execute
// (an unaddressable tag, a missing frame slot, a block without a
// terminator) compiles to an fErr that faults with the reference
// engine's exact error message if — and only if — it is reached.

// flatOp is a flat-code opcode.
type flatOp uint8

const (
	fNop   flatOp = iota
	fLoadI        // dst ← imm (constants, float bits, global/function addresses)
	fCopy         // dst ← a
	fAdd
	fSub
	fMul
	fDiv
	fRem
	fNeg
	fAnd
	fOr
	fXor
	fNot
	fShl
	fShr
	fCmpEQ
	fCmpNE
	fCmpLT
	fCmpLE
	fCmpGT
	fCmpGE
	fFAdd
	fFSub
	fFMul
	fFDiv
	fFNeg
	fFCmpEQ
	fFCmpNE
	fFCmpLT
	fFCmpLE
	fFCmpGT
	fFCmpGE
	fI2F
	fF2I
	fLoadG  // dst ← mem[imm] (absolute global address), width sz
	fLoadL  // dst ← mem[frame+imm], width sz
	fStoreG // mem[imm] ← a, width sz
	fStoreL // mem[frame+imm] ← a, width sz
	fAddrL  // dst ← frame + imm
	fPLoad  // dst ← mem[regs[a]], width sz
	fPStore // mem[regs[a]] ← regs[b], width sz
	fBr     // pc ← imm
	fCBr    // pc ← imm when regs[a] != 0, else b
	fRet    // return regs[a] (a < 0 returns 0)
	fCall   // imm ≥ 0: p.funcs[imm]; callIndirect/callIntrinsic otherwise
	fBlock  // profiling block-entry marker, blockRef index in imm
	fErr    // deferred lowering fault, message index in imm

	// Fused compare-and-branch superinstructions: a fCmpXX/fFCmpXX
	// immediately followed in the same block by a fCBr testing its
	// result collapses into one dispatch. The compare register is
	// still written and the pair still counts as two ops, so dynamic
	// behaviour is bit-identical to the unfused sequence — only the
	// dispatch count drops. dst/a/b are the compare's operands; imm
	// is the taken target, c the fall-through.
	fJEQ
	fJNE
	fJLT
	fJLE
	fJGT
	fJGE
	fJFEQ
	fJFNE
	fJFLT
	fJFLE
	fJFGT
	fJFGE

	// Fused address-compute-and-access superinstructions: an fAdd
	// whose result immediately feeds a pointer access collapses the
	// same way. The sum is still written to the add's destination
	// (register c) and the pair still counts as two ops.
	fAddPLoad  // c ← a+b; dst ← mem[c], width sz
	fAddPStore // c ← a+b; mem[c] ← dst, width sz
)

// fuseCmpBr maps a compare opcode to its fused compare-and-branch
// form; opcodes absent from the table (fNop zero value) do not fuse.
var fuseCmpBr = [...]flatOp{
	fCmpEQ:  fJEQ,
	fCmpNE:  fJNE,
	fCmpLT:  fJLT,
	fCmpLE:  fJLE,
	fCmpGT:  fJGT,
	fCmpGE:  fJGE,
	fFCmpEQ: fJFEQ,
	fFCmpNE: fJFNE,
	fFCmpLT: fJFLT,
	fFCmpLE: fJFLE,
	fFCmpGT: fJFGT,
	fFCmpGE: fJFGE,
}

// fCall sentinels for the imm field.
const (
	callIndirect  int64 = -1 // target address in regs[a]
	callIntrinsic int64 = -2 // named runtime intrinsic, name in src.Callee
)

// aluOp maps the simple dst ← a op b (and unary) opcodes 1:1.
var aluOp = [...]flatOp{
	ir.OpCopy:   fCopy,
	ir.OpAdd:    fAdd,
	ir.OpSub:    fSub,
	ir.OpMul:    fMul,
	ir.OpDiv:    fDiv,
	ir.OpRem:    fRem,
	ir.OpNeg:    fNeg,
	ir.OpAnd:    fAnd,
	ir.OpOr:     fOr,
	ir.OpXor:    fXor,
	ir.OpNot:    fNot,
	ir.OpShl:    fShl,
	ir.OpShr:    fShr,
	ir.OpCmpEQ:  fCmpEQ,
	ir.OpCmpNE:  fCmpNE,
	ir.OpCmpLT:  fCmpLT,
	ir.OpCmpLE:  fCmpLE,
	ir.OpCmpGT:  fCmpGT,
	ir.OpCmpGE:  fCmpGE,
	ir.OpFAdd:   fFAdd,
	ir.OpFSub:   fFSub,
	ir.OpFMul:   fFMul,
	ir.OpFDiv:   fFDiv,
	ir.OpFNeg:   fFNeg,
	ir.OpFCmpEQ: fFCmpEQ,
	ir.OpFCmpNE: fFCmpNE,
	ir.OpFCmpLT: fFCmpLT,
	ir.OpFCmpLE: fFCmpLE,
	ir.OpFCmpGT: fFCmpGT,
	ir.OpFCmpGE: fFCmpGE,
	ir.OpI2F:    fI2F,
	ir.OpF2I:    fF2I,
}

// flatInstr is one flat-code instruction. Operands are pre-resolved:
// imm doubles as immediate value, absolute address, frame offset,
// branch target, or call index depending on op.
type flatInstr struct {
	op  flatOp
	sz  uint8 // access width of memory ops
	dst int32
	a   int32
	b   int32
	imm int64
	// tag attributes scalar memory traffic to its location when
	// profiling; TagInvalid otherwise.
	tag ir.TagID
	// c is the fall-through target of a fused compare-and-branch; it
	// occupies what would otherwise be struct padding.
	c int32
	// src points at the lowered IL instruction, for call argument
	// lists, intrinsic names, and Trace callbacks.
	src *ir.Instr
}

// flatFunc is one function's entry in the flat program.
type flatFunc struct {
	src       *ir.Func
	entry     int // pc of the function's first instruction
	frameSize int64
	needsZero bool
	numRegs   int
}

// blockRef names a basic block for profiling markers.
type blockRef struct {
	fn *ir.Func
	b  *ir.Block
}

// Program is a module lowered to flat code, ready to execute. A
// Program is immutable after Flatten and safe to share across
// sequential runs; each Run builds fresh machine state.
type Program struct {
	mod      *ir.Module
	code     []flatInstr
	funcs    []flatFunc
	mainIdx  int // index into funcs, -1 when the module has no main
	errs     []string
	blocks   []blockRef
	profiled bool
	// img is the module's load image, computed once at lowering time;
	// every Run copies its initialized globals instead of re-walking
	// the tag table and initializers.
	img *execImage
}

// Mod returns the module the program was lowered from.
func (p *Program) Mod() *ir.Module { return p.mod }

// Len returns the number of flat instructions (profiling markers
// included).
func (p *Program) Len() int { return len(p.code) }

// Profiled reports whether block-entry profiling markers were
// compiled in.
func (p *Program) Profiled() bool { return p.profiled }

// Flatten lowers mod into a flat program. When profile is set,
// block-entry markers are compiled in so executions can attribute
// instruction counts to basic blocks; without it the lowered code
// carries no instrumentation at all.
func Flatten(mod *ir.Module, profile bool) *Program {
	p := &Program{mod: mod, mainIdx: -1, profiled: profile, img: buildImage(mod)}
	gaddrs := p.img.globalAddr
	fidx := make(map[string]int, len(mod.FuncOrder))
	for i, name := range mod.FuncOrder {
		fidx[name] = i
	}
	p.funcs = make([]flatFunc, len(mod.FuncOrder))
	for i, name := range mod.FuncOrder {
		fn := mod.Funcs[name]
		if name == "main" {
			p.mainIdx = i
		}
		layout := computeLayout(mod, fn)
		p.funcs[i] = flatFunc{
			src:       fn,
			entry:     len(p.code),
			frameSize: layout.size,
			needsZero: layout.needsZero,
			numRegs:   fn.NumRegs,
		}
		p.flattenFunc(fn, layout, gaddrs, fidx, profile)
	}
	return p
}

// flattenFunc lowers one function and patches its branch targets.
func (p *Program) flattenFunc(fn *ir.Func, layout *frameLayout, gaddrs map[ir.TagID]int64, fidx map[string]int, profile bool) {
	blockPC := make(map[*ir.Block]int, len(fn.Blocks))
	const (
		patchImm = iota // taken / unconditional target
		patchB          // fCBr false edge
		patchC          // fused compare-and-branch fall-through
	)
	type patch struct {
		at     int
		target *ir.Block
		field  uint8
	}
	var patches []patch

	// emitAddr lowers a scalar access of tag into (op-variant, imm):
	// globals pre-resolve to absolute addresses, locals and spill
	// slots to frame offsets. Failures defer to runtime faults with
	// the reference engine's message.
	emitAddr := func(in *ir.Instr, global, local flatOp) (flatOp, int64, bool) {
		tag := p.mod.Tags.Get(in.Tag)
		switch tag.Kind {
		case ir.TagGlobal:
			return global, gaddrs[in.Tag], true
		case ir.TagLocal, ir.TagSpill:
			off, ok := layout.offsets[in.Tag]
			if !ok {
				p.emitErr(in, fmt.Sprintf("tag %s has no frame slot", tag.Name))
				return 0, 0, false
			}
			return local, off, true
		}
		p.emitErr(in, fmt.Sprintf("cannot address tag %s", tag.Name))
		return 0, 0, false
	}

	for _, b := range fn.Blocks {
		blockPC[b] = len(p.code)
		if profile {
			p.code = append(p.code, flatInstr{op: fBlock, imm: int64(len(p.blocks)), tag: ir.TagInvalid})
			p.blocks = append(p.blocks, blockRef{fn, b})
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			fi := flatInstr{dst: int32(in.Dst), a: int32(in.A), b: int32(in.B), tag: ir.TagInvalid, src: in}
			switch in.Op {
			case ir.OpNop:
				fi.op = fNop

			case ir.OpLoadI:
				fi.op, fi.imm = fLoadI, in.Imm
			case ir.OpLoadF:
				fi.op, fi.imm = fLoadI, int64(math.Float64bits(in.FImm))

			case ir.OpCLoad, ir.OpSLoad:
				op, imm, ok := emitAddr(in, fLoadG, fLoadL)
				if !ok {
					continue
				}
				fi.op, fi.imm, fi.sz, fi.tag = op, imm, uint8(in.Size), in.Tag
			case ir.OpSStore:
				op, imm, ok := emitAddr(in, fStoreG, fStoreL)
				if !ok {
					continue
				}
				fi.op, fi.imm, fi.sz, fi.tag = op, imm, uint8(in.Size), in.Tag
			case ir.OpPLoad:
				// Fuse with an immediately preceding add that computes
				// this access's address (same-block adjacency pinned by
				// the src identity check, as for compare-and-branch).
				if j > 0 {
					prev := &p.code[len(p.code)-1]
					if prev.op == fAdd && prev.dst == fi.a && prev.src == &b.Instrs[j-1] {
						prev.op, prev.c = fAddPLoad, prev.dst
						prev.dst, prev.sz, prev.src = int32(in.Dst), uint8(in.Size), in
						continue
					}
				}
				fi.op, fi.sz = fPLoad, uint8(in.Size)
			case ir.OpPStore:
				if j > 0 {
					prev := &p.code[len(p.code)-1]
					if prev.op == fAdd && prev.dst == fi.a && prev.src == &b.Instrs[j-1] {
						prev.op, prev.c = fAddPStore, prev.dst
						prev.dst, prev.sz, prev.src = int32(in.B), uint8(in.Size), in
						continue
					}
				}
				fi.op, fi.sz = fPStore, uint8(in.Size)

			case ir.OpAddrOf:
				if in.Callee != "" {
					idx, ok := fidx[in.Callee]
					if !ok {
						p.emitErr(in, "address of undefined function "+in.Callee)
						continue
					}
					fi.op, fi.imm = fLoadI, funcBase+int64(idx)
					break
				}
				op, imm, ok := emitAddr(in, fLoadI, fAddrL)
				if !ok {
					continue
				}
				fi.op, fi.imm = op, imm

			case ir.OpBr:
				fi.op, fi.imm = fBr, -1
				patches = append(patches, patch{at: len(p.code), target: b.Succs[0]})
			case ir.OpCBr:
				// Fuse with an immediately preceding compare that feeds
				// this branch. The src identity check pins the previous
				// flat instruction to b.Instrs[j-1], so the pair is
				// known to be adjacent within this block — nothing can
				// branch between them.
				if j > 0 {
					prev := &p.code[len(p.code)-1]
					if int(prev.op) < len(fuseCmpBr) && fuseCmpBr[prev.op] != fNop &&
						prev.dst == fi.a && prev.src == &b.Instrs[j-1] {
						prev.op = fuseCmpBr[prev.op]
						prev.imm, prev.c = -1, -1
						patches = append(patches, patch{at: len(p.code) - 1, target: b.Succs[0]})
						patches = append(patches, patch{at: len(p.code) - 1, target: b.Succs[1], field: patchC})
						continue
					}
				}
				fi.op, fi.imm, fi.b = fCBr, -1, -1
				patches = append(patches, patch{at: len(p.code), target: b.Succs[0]})
				patches = append(patches, patch{at: len(p.code), target: b.Succs[1], field: patchB})
			case ir.OpRet:
				fi.op = fRet
				if !in.HasValue {
					fi.a = -1
				}

			case ir.OpJsr:
				fi.op = fCall
				if !in.HasValue || in.Dst == ir.RegInvalid {
					fi.dst = -1
				}
				switch {
				case in.Callee == "":
					fi.imm = callIndirect
				default:
					if idx, ok := fidx[in.Callee]; ok {
						fi.imm = int64(idx)
					} else {
						fi.imm = callIntrinsic
					}
				}

			default:
				if int(in.Op) < len(aluOp) && aluOp[in.Op] != fNop {
					fi.op = aluOp[in.Op]
					break
				}
				p.emitErr(in, fmt.Sprintf("unimplemented opcode %s", in.Op))
				continue
			}
			p.code = append(p.code, fi)
		}
		if b.Terminator() == nil {
			p.emitErr(nil, fmt.Sprintf("block %s fell off the end", b.Label))
		}
	}

	for _, pt := range patches {
		pc, ok := blockPC[pt.target]
		if !ok {
			// A successor outside fn.Blocks would be a malformed CFG;
			// the verifier rejects it long before execution. Guard
			// anyway so a stray edge faults instead of jumping wild.
			pc = -1
		}
		switch pt.field {
		case patchB:
			p.code[pt.at].b = int32(pc)
		case patchC:
			p.code[pt.at].c = int32(pc)
		default:
			p.code[pt.at].imm = int64(pc)
		}
	}
}

// emitErr appends a deferred-fault instruction carrying msg.
func (p *Program) emitErr(src *ir.Instr, msg string) {
	p.code = append(p.code, flatInstr{op: fErr, imm: int64(len(p.errs)), tag: ir.TagInvalid, src: src})
	p.errs = append(p.errs, msg)
}
