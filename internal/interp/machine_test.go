package interp

import (
	"strings"
	"testing"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	file, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return mod
}

func TestCharSignExtension(t *testing.T) {
	res, err := Run(compile(t, `
char c;
int main(void) {
	c = 200;       /* stores 0xC8; signed char reads back negative */
	if (c < 0) return 1;
	return 0;
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 1 {
		t.Fatalf("char must sign-extend: exit=%d", res.Exit)
	}
}

func TestIntTruncationAtStore(t *testing.T) {
	res, err := Run(compile(t, `
int g;
int main(void) {
	long big;
	big = 4294967296 + 5;   /* 2^32 + 5 */
	g = big;                /* store truncates to 32 bits */
	return g;
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 5 {
		t.Fatalf("int store must truncate: exit=%d", res.Exit)
	}
}

func TestFrameIsolationAcrossCalls(t *testing.T) {
	res, err := Run(compile(t, `
int probe(int depth) {
	int local[4];
	int i;
	for (i = 0; i < 4; i++) local[i] = depth * 10 + i;
	if (depth > 0) probe(depth - 1);
	/* callee frames must not have clobbered ours */
	for (i = 0; i < 4; i++) {
		if (local[i] != depth * 10 + i) return 0;
	}
	return 1;
}
int main(void) { return probe(5); }`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 1 {
		t.Fatal("recursive frames overlapped")
	}
}

func TestFreshFramesAreZeroed(t *testing.T) {
	res, err := Run(compile(t, `
int dirty(void) {
	int scratch[8];
	int i;
	for (i = 0; i < 8; i++) scratch[i] = 12345;
	return 0;
}
int reader(void) {
	int scratch[8];
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 8; i++) sum += scratch[i];
	return sum;
}
int main(void) {
	dirty();
	return reader();   /* occupies the same stack region */
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 0 {
		t.Fatalf("uninitialized locals must read zero, got %d", res.Exit)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	_, err := Run(compile(t, `
int deep(int n) {
	int pad[512];
	pad[0] = n;
	return deep(n + 1) + pad[0];
}
int main(void) { return deep(0); }`), Options{})
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("want stack overflow, got %v", err)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	for _, op := range []string{"/", "%"} {
		_, err := Run(compile(t, `
int z;
int main(void) { return 10 `+op+` z; }`), Options{})
		if err == nil || !strings.Contains(err.Error(), "zero") {
			t.Fatalf("%s: want division fault, got %v", op, err)
		}
	}
}

func TestOutOfBoundsHeapAccessFaults(t *testing.T) {
	_, err := Run(compile(t, `
int main(void) {
	int *p;
	p = (int *) malloc(8);
	return p[1000000];
}`), Options{})
	if err == nil {
		t.Fatal("far out-of-bounds heap access must fault")
	}
}

func TestIndirectCallThroughBadPointerFaults(t *testing.T) {
	_, err := Run(compile(t, `
int main(void) {
	int (*f)(void);
	f = (int (*)(void)) 12345;
	return f();
}`), Options{})
	if err == nil || !strings.Contains(err.Error(), "indirect call") {
		t.Fatalf("want indirect-call fault, got %v", err)
	}
}

func TestGlobalInitializersLoaded(t *testing.T) {
	res, err := Run(compile(t, `
int scalars[3] = {11, 22, 33};
double d = 2.5;
char text[8] = "ok";
int *alias = &scalars[0];
int main(void) {
	if (d != 2.5) return 1;
	if (text[0] != 'o' || text[1] != 'k' || text[2] != 0) return 2;
	if (*alias != 11) return 3;
	return scalars[0] + scalars[1] + scalars[2];
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 66 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestNegativeModAndDivision(t *testing.T) {
	res, err := Run(compile(t, `
int main(void) {
	int a;
	int b;
	a = -7 / 2;    /* C truncates toward zero: -3 */
	b = -7 % 2;    /* sign follows dividend: -1 */
	if (a != -3) return 1;
	if (b != -1) return 2;
	return 0;
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 0 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestShiftMasking(t *testing.T) {
	res, err := Run(compile(t, `
int main(void) {
	long x;
	x = 1;
	x = x << 66;    /* count masked to 66 & 63 == 2 */
	return x;
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 4 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestCountsSeparateCopiesAndCalls(t *testing.T) {
	res, err := Run(compile(t, `
int id(int v) { return v; }
int main(void) {
	int a;
	a = id(1) + id(2) + id(3);
	return a;
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Calls != 3 {
		t.Fatalf("calls = %d", res.Counts.Calls)
	}
	if res.Counts.Ops < res.Counts.Calls {
		t.Fatal("total must include calls")
	}
}

func TestOwnerResolution(t *testing.T) {
	mod := compile(t, `
int g;
int arr[4];
int touch(int *p) { return *p; }
int main(void) {
	int l;
	l = 5;
	return touch(&g) + touch(&arr[2]) + touch(&l);
}`)
	owners := map[string]bool{}
	_, err := Run(mod, Options{
		Trace: func(fn string, in *ir.Instr, addr int64, owner ir.TagID) {
			if owner != ir.TagInvalid {
				owners[mod.Tags.Get(owner).Name] = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !owners["g"] || !owners["arr"] {
		t.Fatalf("owners = %v", owners)
	}
	foundLocal := false
	for name := range owners {
		if strings.Contains(name, "main.l") {
			foundLocal = true
		}
	}
	if !foundLocal {
		t.Fatalf("stack owner not resolved: %v", owners)
	}
}

func TestHeapGrowth(t *testing.T) {
	res, err := Run(compile(t, `
int main(void) {
	int i;
	long total;
	total = 0;
	for (i = 0; i < 100; i++) {
		char *p;
		p = (char *) malloc(10000);
		p[9999] = i & 127;
		total += p[9999];
	}
	return total & 127;
}`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}
