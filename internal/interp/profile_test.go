package interp_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
)

// compileRun compiles src under the paper's baseline configuration
// (no promotion, so scalar traffic stays visible) and executes it
// with profiling enabled.
func compileRun(t *testing.T, src string, cfg driver.Config) *interp.Result {
	t.Helper()
	c, err := driver.CompileSource("prof.c", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProfileHotBlocksAndTags(t *testing.T) {
	src := `
int counter;
int spare;
int main(void) {
	int i;
	spare = 5;
	for (i = 0; i < 1000; i++) counter += i;
	print_int(counter);
	print_int(spare);
	return 0;
}`
	res := compileRun(t, src, driver.Config{Analysis: driver.ModRef})
	if res.Profile == nil {
		t.Fatal("Profile requested but not returned")
	}

	// The loop body must dominate the block profile: the hottest
	// block runs ~1000 times, everything outside the loop once.
	hot := res.Profile.Blocks[0]
	if hot.Func != "main" || hot.Count < 1000 {
		t.Fatalf("hottest block = %+v, want a main loop block with >= 1000 executions", hot)
	}
	for i := 1; i < len(res.Profile.Blocks); i++ {
		if res.Profile.Blocks[i].Count > hot.Count {
			t.Fatal("blocks not sorted hottest-first")
		}
	}

	// Tag traffic: counter is loaded and stored ~1000 times, spare
	// exactly once. The per-tag sums must bucket the global counters
	// exactly.
	var counterSeen, spareSeen bool
	var loads, stores int64
	for _, tc := range res.Profile.Tags {
		loads += tc.Loads
		stores += tc.Stores
		switch tc.Tag {
		case "counter":
			counterSeen = true
			if tc.Kind != "global" || tc.Stores < 1000 {
				t.Fatalf("counter tag = %+v, want ~1000 global stores", tc)
			}
		case "spare":
			spareSeen = true
			if tc.Stores != 1 {
				t.Fatalf("spare tag = %+v, want exactly 1 store", tc)
			}
		}
	}
	if !counterSeen || !spareSeen {
		t.Fatalf("missing tags in profile: %+v", res.Profile.Tags)
	}
	if loads != res.Counts.Loads || stores != res.Counts.Stores {
		t.Fatalf("per-tag sums (loads=%d stores=%d) disagree with counts %+v",
			loads, stores, res.Counts)
	}
}

// TestProfileShowsPromotionRescue is the paper's §5 diagnostic made
// mechanical: promotion must visibly drain a promoted tag's dynamic
// traffic between the without/with profiles.
func TestProfileShowsPromotionRescue(t *testing.T) {
	src := `
int acc;
int main(void) {
	int i;
	for (i = 0; i < 500; i++) acc += i;
	print_int(acc);
	return 0;
}`
	traffic := func(res *interp.Result, tag string) int64 {
		for _, tc := range res.Profile.Tags {
			if tc.Tag == tag {
				return tc.Loads + tc.Stores
			}
		}
		return 0
	}
	without := compileRun(t, src, driver.Config{Analysis: driver.ModRef})
	with := compileRun(t, src, driver.Config{Analysis: driver.ModRef, Promote: true})
	w, p := traffic(without, "acc"), traffic(with, "acc")
	if w < 500 {
		t.Fatalf("unpromoted acc traffic = %d, want >= 500", w)
	}
	if p >= w/100 {
		t.Fatalf("promotion should collapse acc traffic: %d -> %d", w, p)
	}
}

// TestProfileHeapAndPointerTraffic: pointer accesses are attributed
// to the owning allocation-site tag.
func TestProfileHeapAndPointerTraffic(t *testing.T) {
	src := `
struct node { int val; struct node *next; };
int total;
int main(void) {
	struct node *head;
	struct node *p;
	int i;
	head = 0;
	for (i = 0; i < 30; i++) {
		p = (struct node *) malloc(sizeof(struct node));
		p->val = i;
		p->next = head;
		head = p;
	}
	for (p = head; p != 0; p = p->next) total += p->val;
	print_int(total);
	return 0;
}`
	res := compileRun(t, src, driver.Config{Analysis: driver.PointsTo, Promote: true})
	var heap *interp.TagCount
	for i, tc := range res.Profile.Tags {
		if tc.Kind == "heap" {
			heap = &res.Profile.Tags[i]
		}
	}
	if heap == nil {
		t.Fatalf("no heap tag in profile: %+v", res.Profile.Tags)
	}
	if heap.Stores < 60 || heap.Loads < 60 {
		t.Fatalf("heap site should see 30 nodes × 2 fields of traffic each way, got %+v", heap)
	}
}

// TestProfileDeterministicAndJSON: two identical runs produce the
// same profile, and it survives a JSON round trip.
func TestProfileDeterministicAndJSON(t *testing.T) {
	src := `
int g;
int main(void) {
	int i;
	for (i = 0; i < 50; i++) g ^= i;
	print_int(g);
	return 0;
}`
	a := compileRun(t, src, driver.Config{Analysis: driver.ModRef})
	b := compileRun(t, src, driver.Config{Analysis: driver.ModRef})
	if !reflect.DeepEqual(a.Profile, b.Profile) {
		t.Fatal("profile is nondeterministic across identical runs")
	}
	data, err := json.Marshal(a.Profile)
	if err != nil {
		t.Fatal(err)
	}
	var back interp.Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, a.Profile) {
		t.Fatal("profile does not round-trip through JSON")
	}
	text := a.Profile.Format(5)
	for _, want := range []string{"hot blocks", "main", "memory traffic", "g"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted profile missing %q:\n%s", want, text)
		}
	}
}

// TestProfileOffByDefault: no profile is collected unless requested.
func TestProfileOffByDefault(t *testing.T) {
	c, err := driver.CompileSource("p.c", "int main(void) { print_int(1); return 0; }",
		driver.Config{Analysis: driver.ModRef})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatal("profile collected without Options.Profile")
	}
}
