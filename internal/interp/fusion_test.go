package interp

import (
	"testing"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
)

// The flat engine's superinstructions (fused compare-and-branch,
// fused address-compute-and-access) only form when the pair is
// adjacent within one block; the fused form still writes the
// intermediate register and still counts as two ops. These tests pin
// both halves of that contract at the fusion boundaries — pair
// adjacent, pair split across a block edge, pair separated by an
// intervening instruction, first half as a block's final computation
// — because these are exactly the patterns the native codegen must
// reproduce bit-for-bit in counts. Every variant is cross-checked
// against the block-walking switch engine, which never fuses.

// compileIR lowers C source to an IL module without running it.
func compileIR(t *testing.T, src string) *ir.Module {
	t.Helper()
	file, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return mod
}

// opCount tallies the flat program's static opcode mix.
func opCount(p *Program) map[flatOp]int {
	m := map[flatOp]int{}
	for i := range p.code {
		m[p.code[i].op]++
	}
	return m
}

// checkEngineParity runs the module on the flat and switch engines
// and demands identical exit, output, and dynamic counts.
func checkEngineParity(t *testing.T, mod *ir.Module) *Result {
	t.Helper()
	flat, err := Flatten(mod, false).Run(Options{})
	if err != nil {
		t.Fatalf("flat engine: %v\n%s", err, ir.FormatModule(mod))
	}
	ref, err := Run(mod, Options{Engine: EngineSwitch})
	if err != nil {
		t.Fatalf("switch engine: %v", err)
	}
	if flat.Exit != ref.Exit {
		t.Errorf("exit: flat %d, switch %d", flat.Exit, ref.Exit)
	}
	if flat.Output != ref.Output {
		t.Errorf("output: flat %q, switch %q", flat.Output, ref.Output)
	}
	if flat.Counts != ref.Counts {
		t.Errorf("counts diverge:\nflat   %+v\nswitch %+v", flat.Counts, ref.Counts)
	}
	return flat
}

// splitBefore moves b.Instrs[idx:] into a fresh block reached by an
// unconditional branch, turning an intra-block pair into a
// block-edge pair while preserving semantics.
func splitBefore(fn *ir.Func, b *ir.Block, idx int) {
	nb := fn.NewBlock("")
	nb.Instrs = append(nb.Instrs, b.Instrs[idx:]...)
	b.Instrs = b.Instrs[:idx:idx]
	nb.Succs = b.Succs
	for _, s := range nb.Succs {
		for i, p := range s.Preds {
			if p == b {
				s.Preds[i] = nb
			}
		}
	}
	b.Succs = nil
	ir.AddEdge(b, nb)
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpBr})
}

// findPair locates a block whose instruction at i has opcode first
// and whose instruction at i+1 has opcode second, returning the block
// and i+1 (the split point).
func findPair(t *testing.T, fn *ir.Func, first, second ir.Op) (*ir.Block, int) {
	t.Helper()
	for _, b := range fn.Blocks {
		for i := 0; i+1 < len(b.Instrs); i++ {
			if b.Instrs[i].Op == first && b.Instrs[i+1].Op == second {
				return b, i + 1
			}
		}
	}
	t.Fatalf("no %v+%v pair found in %s", first, second, fn.Name)
	return nil, 0
}

const cmpBrSrc = `
int main(void) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i++) s += i;
	if (s == 45) return 1;
	return 0;
}`

// TestFuseCmpBranchAdjacent: a compare immediately feeding the
// block's conditional branch fuses, the unfused forms disappear, and
// the fused pair still counts as two ops (switch-engine parity).
func TestFuseCmpBranchAdjacent(t *testing.T) {
	mod := compileIR(t, cmpBrSrc)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fJLT] == 0 || ops[fJEQ] == 0 {
		t.Errorf("expected fused fJLT and fJEQ, got %v", ops)
	}
	if ops[fCmpLT] != 0 || ops[fCmpEQ] != 0 || ops[fCBr] != 0 {
		t.Errorf("unfused remnants survived fusion: %v", ops)
	}
	res := checkEngineParity(t, mod)
	if res.Exit != 1 {
		t.Errorf("exit = %d, want 1", res.Exit)
	}
}

// TestFuseCmpBranchBlockEdge: the same program with the loop compare
// and its branch forced into different blocks must not fuse — the
// compare ends one block, the branch opens the next — and both
// engines still agree on every count (the synthetic jump is one extra
// op on both).
func TestFuseCmpBranchBlockEdge(t *testing.T) {
	mod := compileIR(t, cmpBrSrc)
	fn := mod.Funcs["main"]
	b, split := findPair(t, fn, ir.OpCmpLT, ir.OpCBr)
	splitBefore(fn, b, split)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fJLT] != 0 {
		t.Errorf("compare and branch fused across a block edge: %v", ops)
	}
	if ops[fCmpLT] == 0 || ops[fCBr] == 0 {
		t.Errorf("split pair not lowered to plain cmp+cbr: %v", ops)
	}
	res := checkEngineParity(t, mod)
	if res.Exit != 1 {
		t.Errorf("exit = %d, want 1", res.Exit)
	}
}

// TestFuseCmpBranchIntervening: an instruction between the compare
// and the branch blocks fusion even within one block.
func TestFuseCmpBranchIntervening(t *testing.T) {
	mod := compileIR(t, cmpBrSrc)
	fn := mod.Funcs["main"]
	b, split := findPair(t, fn, ir.OpCmpLT, ir.OpCBr)
	pad := ir.Instr{Op: ir.OpLoadI, Dst: fn.NewReg(), Imm: 7}
	b.Instrs = append(b.Instrs[:split:split], append([]ir.Instr{pad}, b.Instrs[split:]...)...)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fJLT] != 0 {
		t.Errorf("compare and branch fused across an intervening instruction: %v", ops)
	}
	if ops[fCmpLT] == 0 || ops[fCBr] == 0 {
		t.Errorf("separated pair not lowered to plain cmp+cbr: %v", ops)
	}
	checkEngineParity(t, mod)
}

// TestCmpAsFinalComputation: a compare whose result flows to ret, not
// to a branch, stays a plain compare even as the last computation of
// the function.
func TestCmpAsFinalComputation(t *testing.T) {
	mod := compileIR(t, `
int main(void) {
	int x;
	int y;
	x = 3;
	y = 9;
	return x < y;
}`)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fCmpLT] == 0 {
		t.Errorf("compare feeding ret vanished: %v", ops)
	}
	if ops[fJLT] != 0 {
		t.Errorf("compare feeding ret fused with a branch: %v", ops)
	}
	res := checkEngineParity(t, mod)
	if res.Exit != 1 {
		t.Errorf("exit = %d, want 1", res.Exit)
	}
}

const addPLoadSrc = `
int a[4] = {1, 2, 3, 4};
int main(void) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 4; i++) s += a[i];
	return s;
}`

// The stored value is plain i: computing it first leaves the
// indexing add as the instruction immediately before the store,
// which is the adjacency fusion needs. (With `a[i] = i + 1` the
// value-side add lands between them and correctly blocks fusion.)
const addPStoreSrc = `
int a[4];
int main(void) {
	int i;
	for (i = 0; i < 4; i++) a[i] = i;
	return a[1] + a[3];
}`

// TestFuseAddPLoadAdjacent: the indexing add immediately feeding a
// pointer load fuses into fAddPLoad; the plain pLoad disappears.
func TestFuseAddPLoadAdjacent(t *testing.T) {
	mod := compileIR(t, addPLoadSrc)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fAddPLoad] == 0 {
		t.Errorf("expected fused fAddPLoad, got %v", ops)
	}
	res := checkEngineParity(t, mod)
	if res.Exit != 10 {
		t.Errorf("exit = %d, want 10", res.Exit)
	}
}

// TestFuseAddPLoadBlockEdge: the add ending one block and the load
// opening the next must not fuse, and counts still match the
// reference engine.
func TestFuseAddPLoadBlockEdge(t *testing.T) {
	mod := compileIR(t, addPLoadSrc)
	fn := mod.Funcs["main"]
	b, split := findPair(t, fn, ir.OpAdd, ir.OpPLoad)
	splitBefore(fn, b, split)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fAddPLoad] != 0 {
		t.Errorf("add and load fused across a block edge: %v", ops)
	}
	if ops[fPLoad] == 0 {
		t.Errorf("split access not lowered to plain pLoad: %v", ops)
	}
	res := checkEngineParity(t, mod)
	if res.Exit != 10 {
		t.Errorf("exit = %d, want 10", res.Exit)
	}
}

// TestFuseAddPStoreAdjacent: the store-side twin of fAddPLoad.
func TestFuseAddPStoreAdjacent(t *testing.T) {
	mod := compileIR(t, addPStoreSrc)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fAddPStore] == 0 {
		t.Errorf("expected fused fAddPStore, got %v", ops)
	}
	res := checkEngineParity(t, mod)
	if res.Exit != 4 {
		t.Errorf("exit = %d, want 4", res.Exit)
	}
}

// TestFuseAddPStoreBlockEdge: splitting the add from its store
// suppresses fusion without disturbing counts.
func TestFuseAddPStoreBlockEdge(t *testing.T) {
	mod := compileIR(t, addPStoreSrc)
	fn := mod.Funcs["main"]
	b, split := findPair(t, fn, ir.OpAdd, ir.OpPStore)
	splitBefore(fn, b, split)
	p := Flatten(mod, false)
	ops := opCount(p)
	if ops[fAddPStore] != 0 {
		t.Errorf("add and store fused across a block edge: %v", ops)
	}
	if ops[fPStore] == 0 {
		t.Errorf("split access not lowered to plain pStore: %v", ops)
	}
	res := checkEngineParity(t, mod)
	if res.Exit != 4 {
		t.Errorf("exit = %d, want 4", res.Exit)
	}
}

// TestFusedPairWritesIntermediateRegister: fusion must still write
// the compare result / computed address to its register — a later
// reader of the intermediate observes the same value either way.
func TestFusedPairWritesIntermediateRegister(t *testing.T) {
	// s collects the compare results after branching on them, so the
	// fused fJLT must still deposit 0/1 in the compare's register.
	res := checkEngineParity(t, compileIR(t, `
int main(void) {
	int i;
	int s;
	int t;
	s = 0;
	for (i = 0; i < 3; i++) {
		t = i < 2;
		if (t) s += 10;
		s += t;
	}
	return s;
}`))
	if res.Exit != 22 {
		t.Errorf("exit = %d, want 22", res.Exit)
	}
}
