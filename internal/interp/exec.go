package interp

import (
	"fmt"
	"math"
	"strconv"

	"regpromo/internal/ir"
)

// call executes fn with the given arguments and returns its result.
func (m *machine) call(fn *ir.Func, args []int64) (int64, error) {
	layout := m.layoutOf(fn)
	if m.sp+layout.size > stackBase+stackSize {
		return 0, &Error{Func: fn.Name, Msg: "stack overflow"}
	}
	m.ensureStack(m.sp + layout.size - stackBase)
	f := &frame{
		fn:   fn,
		regs: make([]int64, fn.NumRegs),
		base: m.sp,
		size: layout.size,
	}
	// Zero the frame so uninitialized locals read deterministically.
	// Spill-only frames are skipped: the allocator stores every spill
	// slot before any load of it, so stale bytes are unobservable.
	if layout.needsZero {
		lo := f.base - stackBase
		clear(m.stack[lo : lo+layout.size])
	}
	m.sp += layout.size
	m.frames = append(m.frames, f)
	defer func() {
		m.frames = m.frames[:len(m.frames)-1]
		m.sp = f.base
	}()

	for i, p := range fn.Params {
		if i < len(args) {
			f.regs[p] = args[i]
		}
	}

	b := fn.Entry
	for {
		next, ret, done, err := m.execBlock(f, b)
		if err != nil {
			return 0, err
		}
		if done {
			return ret, nil
		}
		b = next
	}
}

// execBlock runs one basic block, returning the successor or the
// function result.
func (m *machine) execBlock(f *frame, b *ir.Block) (next *ir.Block, ret int64, done bool, err error) {
	regs := f.regs
	if m.prof != nil {
		m.prof.hitBlock(f.fn, b)
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		m.steps++
		if m.steps > m.max {
			return nil, 0, false, &Error{Func: f.fn.Name, Msg: "step limit exceeded (infinite loop?)"}
		}
		m.counts.Ops++

		switch in.Op {
		case ir.OpNop:
			// no effect

		case ir.OpLoadI:
			regs[in.Dst] = in.Imm
		case ir.OpLoadF:
			regs[in.Dst] = int64(math.Float64bits(in.FImm))
		case ir.OpCopy:
			m.counts.Copies++
			regs[in.Dst] = regs[in.A]

		case ir.OpAdd:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case ir.OpSub:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case ir.OpMul:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case ir.OpDiv:
			if regs[in.B] == 0 {
				return nil, 0, false, &Error{Func: f.fn.Name, Msg: "integer division by zero"}
			}
			regs[in.Dst] = regs[in.A] / regs[in.B]
		case ir.OpRem:
			if regs[in.B] == 0 {
				return nil, 0, false, &Error{Func: f.fn.Name, Msg: "integer remainder by zero"}
			}
			regs[in.Dst] = regs[in.A] % regs[in.B]
		case ir.OpNeg:
			regs[in.Dst] = -regs[in.A]
		case ir.OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
		case ir.OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
		case ir.OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
		case ir.OpNot:
			regs[in.Dst] = ^regs[in.A]
		case ir.OpShl:
			regs[in.Dst] = regs[in.A] << (uint64(regs[in.B]) & 63)
		case ir.OpShr:
			regs[in.Dst] = regs[in.A] >> (uint64(regs[in.B]) & 63)

		case ir.OpCmpEQ:
			regs[in.Dst] = b2i(regs[in.A] == regs[in.B])
		case ir.OpCmpNE:
			regs[in.Dst] = b2i(regs[in.A] != regs[in.B])
		case ir.OpCmpLT:
			regs[in.Dst] = b2i(regs[in.A] < regs[in.B])
		case ir.OpCmpLE:
			regs[in.Dst] = b2i(regs[in.A] <= regs[in.B])
		case ir.OpCmpGT:
			regs[in.Dst] = b2i(regs[in.A] > regs[in.B])
		case ir.OpCmpGE:
			regs[in.Dst] = b2i(regs[in.A] >= regs[in.B])

		case ir.OpFAdd:
			regs[in.Dst] = fop(regs[in.A], regs[in.B], func(a, b float64) float64 { return a + b })
		case ir.OpFSub:
			regs[in.Dst] = fop(regs[in.A], regs[in.B], func(a, b float64) float64 { return a - b })
		case ir.OpFMul:
			regs[in.Dst] = fop(regs[in.A], regs[in.B], func(a, b float64) float64 { return a * b })
		case ir.OpFDiv:
			regs[in.Dst] = fop(regs[in.A], regs[in.B], func(a, b float64) float64 { return a / b })
		case ir.OpFNeg:
			regs[in.Dst] = int64(math.Float64bits(-math.Float64frombits(uint64(regs[in.A]))))

		case ir.OpFCmpEQ:
			regs[in.Dst] = b2i(fval(regs[in.A]) == fval(regs[in.B]))
		case ir.OpFCmpNE:
			regs[in.Dst] = b2i(fval(regs[in.A]) != fval(regs[in.B]))
		case ir.OpFCmpLT:
			regs[in.Dst] = b2i(fval(regs[in.A]) < fval(regs[in.B]))
		case ir.OpFCmpLE:
			regs[in.Dst] = b2i(fval(regs[in.A]) <= fval(regs[in.B]))
		case ir.OpFCmpGT:
			regs[in.Dst] = b2i(fval(regs[in.A]) > fval(regs[in.B]))
		case ir.OpFCmpGE:
			regs[in.Dst] = b2i(fval(regs[in.A]) >= fval(regs[in.B]))

		case ir.OpI2F:
			regs[in.Dst] = int64(math.Float64bits(float64(regs[in.A])))
		case ir.OpF2I:
			regs[in.Dst] = int64(fval(regs[in.A]))

		case ir.OpCLoad, ir.OpSLoad:
			m.counts.Loads++
			if m.prof != nil {
				m.prof.load(in.Tag)
			}
			if m.san != nil {
				m.san.scalarRef(in)
			}
			addr, err := m.tagAddr(f, in.Tag)
			if err != nil {
				return nil, 0, false, err
			}
			v, err := m.loadMem(f, addr, in.Size)
			if err != nil {
				return nil, 0, false, err
			}
			regs[in.Dst] = v
		case ir.OpSStore:
			m.counts.Stores++
			if m.prof != nil {
				m.prof.store(in.Tag)
			}
			if m.san != nil {
				m.san.scalarMod(in)
			}
			addr, err := m.tagAddr(f, in.Tag)
			if err != nil {
				return nil, 0, false, err
			}
			if err := m.storeMem(f, addr, in.Size, regs[in.A]); err != nil {
				return nil, 0, false, err
			}
		case ir.OpPLoad:
			m.counts.Loads++
			addr := regs[in.A]
			if m.opts.Trace != nil {
				m.opts.Trace(f.fn.Name, in, addr, m.ownerOf(addr))
			}
			if m.prof != nil {
				m.prof.load(m.ownerOf(addr))
			}
			if m.san != nil {
				m.san.ptrAccess(f.fn.Name, in, m.ownerOf(addr), false)
			}
			v, err := m.loadMem(f, addr, in.Size)
			if err != nil {
				return nil, 0, false, err
			}
			regs[in.Dst] = v
		case ir.OpPStore:
			m.counts.Stores++
			addr := regs[in.A]
			if m.opts.Trace != nil {
				m.opts.Trace(f.fn.Name, in, addr, m.ownerOf(addr))
			}
			if m.prof != nil {
				m.prof.store(m.ownerOf(addr))
			}
			if m.san != nil {
				m.san.ptrAccess(f.fn.Name, in, m.ownerOf(addr), true)
			}
			if err := m.storeMem(f, addr, in.Size, regs[in.B]); err != nil {
				return nil, 0, false, err
			}

		case ir.OpAddrOf:
			if in.Callee != "" {
				idx := m.funcIndex(in.Callee)
				if idx < 0 {
					return nil, 0, false, &Error{Func: f.fn.Name, Msg: "address of undefined function " + in.Callee}
				}
				regs[in.Dst] = funcBase + int64(idx)
				break
			}
			addr, err := m.tagAddr(f, in.Tag)
			if err != nil {
				return nil, 0, false, err
			}
			regs[in.Dst] = addr

		case ir.OpBr:
			return b.Succs[0], 0, false, nil
		case ir.OpCBr:
			if regs[in.A] != 0 {
				return b.Succs[0], 0, false, nil
			}
			return b.Succs[1], 0, false, nil
		case ir.OpRet:
			if in.HasValue {
				return nil, regs[in.A], true, nil
			}
			return nil, 0, true, nil

		case ir.OpJsr:
			m.counts.Calls++
			v, err := m.execCall(f, in)
			if err != nil {
				return nil, 0, false, err
			}
			if in.HasValue && in.Dst != ir.RegInvalid {
				regs[in.Dst] = v
			}

		default:
			return nil, 0, false, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("unimplemented opcode %s", in.Op)}
		}
	}
	return nil, 0, false, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("block %s fell off the end", b.Label)}
}

func (m *machine) funcIndex(name string) int {
	for i, n := range m.mod.FuncOrder {
		if n == name {
			return i
		}
	}
	return -1
}

func (m *machine) execCall(f *frame, in *ir.Instr) (int64, error) {
	name := in.Callee
	if name == "" {
		addr := f.regs[in.A]
		idx := addr - funcBase
		if idx < 0 || int(idx) >= len(m.mod.FuncOrder) {
			return 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("indirect call through invalid address %#x", addr)}
		}
		name = m.mod.FuncOrder[idx]
	}
	args := make([]int64, len(in.Args))
	for i, a := range in.Args {
		args[i] = f.regs[a]
	}
	if callee, ok := m.mod.Funcs[name]; ok {
		if m.san == nil {
			return m.call(callee, args)
		}
		// Sanitize: bracket the call with an observation record and
		// diff it against the site's static MOD/REF summary on
		// return. Errors abandon the record — the run has no result.
		m.san.pushCall(f.fn.Name, in)
		v, err := m.call(callee, args)
		if err == nil {
			m.san.popCall()
		}
		return v, err
	}
	return m.intrinsic(f, name, in, args)
}

func (m *machine) intrinsic(f *frame, name string, in *ir.Instr, args []int64) (int64, error) {
	switch name {
	case "print_int":
		m.out.WriteString(strconv.FormatInt(args[0], 10))
		m.out.WriteByte('\n')
		return 0, nil
	case "print_char":
		m.out.WriteByte(byte(args[0]))
		return 0, nil
	case "print_double":
		m.out.WriteString(strconv.FormatFloat(fval(args[0]), 'g', 10, 64))
		m.out.WriteByte('\n')
		return 0, nil
	case "print_str":
		addr := args[0]
		for {
			c, err := m.loadMem(f, addr, 1)
			if err != nil {
				return 0, err
			}
			if c == 0 {
				break
			}
			m.out.WriteByte(byte(c))
			addr++
		}
		return 0, nil
	case "malloc":
		n := args[0]
		if n < 0 {
			return 0, &Error{Func: f.fn.Name, Msg: "negative malloc size"}
		}
		if n == 0 {
			n = 1
		}
		addr := align16(m.heapTop)
		if addr+n > heapBase+int64(heapSize) {
			return 0, &Error{Func: f.fn.Name, Msg: "out of heap memory"}
		}
		need := addr + n - heapBase
		for int64(len(m.heap)) < need {
			m.heap = append(m.heap, make([]byte, max(int(need)-len(m.heap), 4096))...)
		}
		m.heapTop = addr + n
		if in.Site != ir.TagInvalid {
			m.heapOwner = append(m.heapOwner, ownerRange{addr, addr + n, in.Site})
		}
		return addr, nil
	case "free":
		return 0, nil
	}
	return 0, &Error{Func: f.fn.Name, Msg: "call to undefined function " + name}
}

func align16(a int64) int64 { return (a + 15) &^ 15 }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func fval(bits int64) float64 { return math.Float64frombits(uint64(bits)) }

func fop(a, b int64, f func(float64, float64) float64) int64 {
	return int64(math.Float64bits(f(fval(a), fval(b))))
}
