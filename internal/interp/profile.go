package interp

import (
	"fmt"
	"sort"
	"strings"

	"regpromo/internal/ir"
)

// Profile is the interpreter's opt-in execution profile: per-basic-
// block execution counts (the hot spots) and per-tag dynamic load and
// store counters (which memory locations the program actually
// hammers). Together they point at exactly which loops and which tags
// promotion did or did not rescue — the diagnostic the paper performs
// by hand in §5.
type Profile struct {
	// Blocks lists basic-block execution counts, hottest first.
	Blocks []BlockCount `json:"blocks"`
	// Tags lists per-tag dynamic memory traffic, busiest first.
	// Pointer accesses that resolve to no tagged storage are
	// aggregated under the pseudo-tag "(untagged)".
	Tags []TagCount `json:"tags"`
}

// BlockCount is one basic block's dynamic execution count.
type BlockCount struct {
	Func  string `json:"func"`
	Block string `json:"block"`
	Count int64  `json:"count"`
}

// TagCount is one tag's dynamic load/store traffic.
type TagCount struct {
	Tag    string `json:"tag"`
	Kind   string `json:"kind"`
	Loads  int64  `json:"loads"`
	Stores int64  `json:"stores"`
}

// untaggedName labels pointer traffic whose address resolves to no
// known tag (e.g. interior pointers past a frame's layout).
const untaggedName = "(untagged)"

// profiler is the machine's recording state; nil when profiling is
// off, so the hot loop pays one pointer test.
type profiler struct {
	blocks map[blockKey]int64
	loads  []int64 // indexed by TagID
	stores []int64
	// untaggedLoads/Stores tally pointer accesses ownerOf could not
	// attribute.
	untaggedLoads  int64
	untaggedStores int64
}

type blockKey struct {
	fn    string
	block string
}

func newProfiler(mod *ir.Module) *profiler {
	return &profiler{
		blocks: make(map[blockKey]int64),
		loads:  make([]int64, mod.Tags.Len()),
		stores: make([]int64, mod.Tags.Len()),
	}
}

func (p *profiler) hitBlock(fn *ir.Func, b *ir.Block) {
	p.blocks[blockKey{fn.Name, b.Label}]++
}

func (p *profiler) load(tag ir.TagID) {
	if tag == ir.TagInvalid || int(tag) >= len(p.loads) {
		p.untaggedLoads++
		return
	}
	p.loads[tag]++
}

func (p *profiler) store(tag ir.TagID) {
	if tag == ir.TagInvalid || int(tag) >= len(p.stores) {
		p.untaggedStores++
		return
	}
	p.stores[tag]++
}

// result assembles the deterministic, sorted profile.
func (p *profiler) result(mod *ir.Module) *Profile {
	out := &Profile{}
	for k, c := range p.blocks {
		out.Blocks = append(out.Blocks, BlockCount{Func: k.fn, Block: k.block, Count: c})
	}
	sort.Slice(out.Blocks, func(i, j int) bool {
		a, b := out.Blocks[i], out.Blocks[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Block < b.Block
	})
	for id := 0; id < mod.Tags.Len(); id++ {
		if p.loads[id] == 0 && p.stores[id] == 0 {
			continue
		}
		tag := mod.Tags.Get(ir.TagID(id))
		out.Tags = append(out.Tags, TagCount{
			Tag:    tag.Name,
			Kind:   tag.Kind.String(),
			Loads:  p.loads[id],
			Stores: p.stores[id],
		})
	}
	if p.untaggedLoads > 0 || p.untaggedStores > 0 {
		out.Tags = append(out.Tags, TagCount{
			Tag:    untaggedName,
			Kind:   "unknown",
			Loads:  p.untaggedLoads,
			Stores: p.untaggedStores,
		})
	}
	sort.SliceStable(out.Tags, func(i, j int) bool {
		a, b := out.Tags[i], out.Tags[j]
		if a.Loads+a.Stores != b.Loads+b.Stores {
			return a.Loads+a.Stores > b.Loads+b.Stores
		}
		return a.Tag < b.Tag
	})
	return out
}

// Format renders the profile: the topN hottest blocks and every tag
// with memory traffic.
func (p *Profile) Format(topN int) string {
	var sb strings.Builder
	blocks := p.Blocks
	if topN > 0 && len(blocks) > topN {
		blocks = blocks[:topN]
	}
	fmt.Fprintf(&sb, "hot blocks (top %d of %d):\n", len(blocks), len(p.Blocks))
	fmt.Fprintf(&sb, "%-20s %-10s %12s\n", "func", "block", "executions")
	for _, b := range blocks {
		fmt.Fprintf(&sb, "%-20s %-10s %12d\n", b.Func, b.Block, b.Count)
	}
	tags := p.Tags
	if topN > 0 && len(tags) > topN {
		tags = tags[:topN]
	}
	fmt.Fprintf(&sb, "memory traffic by tag (top %d of %d):\n", len(tags), len(p.Tags))
	fmt.Fprintf(&sb, "%-20s %-8s %12s %12s\n", "tag", "kind", "loads", "stores")
	for _, tc := range tags {
		fmt.Fprintf(&sb, "%-20s %-8s %12d %12d\n", tc.Tag, tc.Kind, tc.Loads, tc.Stores)
	}
	return sb.String()
}
