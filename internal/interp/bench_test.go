package interp_test

// Benchmarks for the measurement loop itself: engine dispatch speed
// (flat vs switch), the end-to-end figure suite, and compile-once
// sharing. The package is interp_test so the harness can drive the
// interpreter through the real driver and benchmark suite without an
// import cycle.
//
// Run with:
//
//	go test ./internal/interp/ -bench=. -benchtime=2s
//
// BenchmarkFlatVsSwitch reports interp-ops/sec per engine; the flat
// engine's acceptance bar is ≥2× the switch engine's.

import (
	"testing"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
)

// compileProgram compiles one suite member under the paper's full
// promote-pointer pipeline, the configuration the figures measure.
func compileProgram(b *testing.B, name string) *driver.Compilation {
	b.Helper()
	for _, p := range bench.Suite() {
		if p.Name != name {
			continue
		}
		c, err := driver.CompileSource(p.Name+".c", bench.Source(p), driver.Config{
			Analysis: driver.PointsTo, Promote: true, PointerPromote: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Fatalf("no suite program %q", name)
	return nil
}

// runEngine executes a precompiled program b.N times on one engine and
// reports throughput as interpreted IL operations per second.
func runEngine(b *testing.B, c *driver.Compilation, engine interp.Engine) {
	b.Helper()
	var ops int64
	for i := 0; i < b.N; i++ {
		res, err := c.Execute(interp.Options{MaxSteps: 1 << 33, Engine: engine})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Counts.Ops
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(ops)/secs, "interp-ops/sec")
	}
}

// BenchmarkFlatVsSwitch races the two engines over the same compiled
// program. Compilation happens once, outside the timer: this measures
// pure dispatch speed. The programs are the suite's memory-bound
// members — the workloads register promotion studies, and the ones
// that dominate the measurement loop's wall clock. See
// BenchmarkEngineMatrix for the full suite, including the ALU-dense
// programs where the promoted code's huge basic blocks narrow the
// gap between the engines.
func BenchmarkFlatVsSwitch(b *testing.B) {
	for _, name := range []string{"mlink", "water", "li", "indent"} {
		c := compileProgram(b, name)
		b.Run(name+"/flat", func(b *testing.B) { runEngine(b, c, interp.EngineFlat) })
		b.Run(name+"/switch", func(b *testing.B) { runEngine(b, c, interp.EngineSwitch) })
	}
}

// BenchmarkEngineMatrix runs every suite program on both engines —
// the honest full table behind BenchmarkFlatVsSwitch's headline.
func BenchmarkEngineMatrix(b *testing.B) {
	for _, p := range bench.Suite() {
		c := compileProgram(b, p.Name)
		b.Run(p.Name+"/flat", func(b *testing.B) { runEngine(b, c, interp.EngineFlat) })
		b.Run(p.Name+"/switch", func(b *testing.B) { runEngine(b, c, interp.EngineSwitch) })
	}
}

// BenchmarkInterpFigureSuite executes every suite program (compiled
// once, outside the timer) on the default engine per iteration — the
// execution half of a full figure regeneration.
func BenchmarkInterpFigureSuite(b *testing.B) {
	var compiled []*driver.Compilation
	for _, p := range bench.Suite() {
		compiled = append(compiled, compileProgram(b, p.Name))
	}
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		for _, c := range compiled {
			res, err := c.Execute(interp.Options{MaxSteps: 1 << 33})
			if err != nil {
				b.Fatal(err)
			}
			ops += res.Counts.Ops
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(ops)/secs, "interp-ops/sec")
	}
}

// BenchmarkCompileOnceSharing compares the two ways to compile one
// program under the paper's four measurement configurations: a full
// recompile (front end × 4) against one parse forked four ways — the
// compile half of the measurement loop, before and after sharing.
func BenchmarkCompileOnceSharing(b *testing.B) {
	p := bench.Suite()[0] // tsp
	src := bench.Source(p)
	b.Run("recompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range driver.Configurations() {
				if _, err := driver.CompileSource(p.Name+".c", src, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fe, err := driver.ParseSource(p.Name+".c", src)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range driver.Configurations() {
				if _, err := fe.Compile(cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
