package interp

import (
	"fmt"

	"regpromo/internal/ir"
)

// sanitizer is the dynamic half of the correctness subsystem: with
// Options.Sanitize set, both engines report every memory access to
// it, and it diffs observed behaviour against the static analyses —
// per call, the set of tags actually modified and referenced must be
// inside the call site's static MOD/REF summary, and per pointer
// access, the tag owning the resolved address must be inside the
// operation's static may-set. Any access outside a static set is an
// unsoundness violation (the analyses under-approximated), reported
// as an ir.Diag with function/block/instruction provenance.
//
// The checking is one-sided by construction: the static sets are
// over-approximations, so observed ⊆ static is the soundness
// direction and slack is expected. Promotion's synthesized boundary
// ops (Instr.Synth) are skipped — a demotion store legally writes a
// tag the region only read — as are register-allocator spill slots,
// which are created after the analyses ran.
type sanitizer struct {
	mod *ir.Module
	// stack mirrors the call stack: one record per active defined-
	// function call, accumulating the tags the call observably
	// modified and referenced. Accesses in main (empty stack) have no
	// site to check against.
	stack []sanRecord
	vios  []ir.Diag
	// seen dedups violations per (instruction, direction, tag) so a
	// hot loop reports each defect once.
	seen map[sanKey]bool
	// pos resolves an instruction to its provenance, built lazily on
	// the first violation.
	pos map[*ir.Instr]sanPos
}

// sanRecord accumulates one active call's observed effects.
type sanRecord struct {
	// site is the Jsr instruction in the caller; caller names the
	// enclosing function (provenance for the diff report).
	site   *ir.Instr
	caller string
	obsMod ir.TagSet
	obsRef ir.TagSet
}

type sanKey struct {
	in   *ir.Instr
	kind uint8 // 'm' mod, 'r' ref, 'p' pointer target
	tag  ir.TagID
}

type sanPos struct {
	fn    string
	block string
	index int
}

func newSanitizer(mod *ir.Module) *sanitizer {
	return &sanitizer{mod: mod, seen: make(map[sanKey]bool)}
}

// skipTag reports whether accesses to tag are exempt from checking
// and recording: spill slots postdate the analyses.
func (s *sanitizer) skipTag(tag ir.TagID) bool {
	if tag < 0 || int(tag) >= s.mod.Tags.Len() {
		return true
	}
	return s.mod.Tags.Get(tag).Kind == ir.TagSpill
}

// scalarRef records a scalar load (cLoad/sLoad) of src.Tag.
func (s *sanitizer) scalarRef(src *ir.Instr) {
	if len(s.stack) == 0 || src.Synth || s.skipTag(src.Tag) {
		return
	}
	s.stack[len(s.stack)-1].obsRef.Add(src.Tag)
}

// scalarMod records a scalar store (sStore) of src.Tag.
func (s *sanitizer) scalarMod(src *ir.Instr) {
	if len(s.stack) == 0 || src.Synth || s.skipTag(src.Tag) {
		return
	}
	s.stack[len(s.stack)-1].obsMod.Add(src.Tag)
}

// ptrAccess checks a pointer-based access (pLoad/pStore) against the
// operation's static may-set and records the owning tag into the
// active call record. owner is the tag owning the resolved address
// (TagInvalid when the address falls outside tagged storage — the
// access will fault or hit untagged slack, neither of which the
// static sets describe).
func (s *sanitizer) ptrAccess(fn string, src *ir.Instr, owner ir.TagID, store bool) {
	if src.Synth || owner == ir.TagInvalid || s.skipTag(owner) {
		return
	}
	if !src.Tags.IsTop() && !src.Tags.Has(owner) {
		k := sanKey{in: src, kind: 'p', tag: owner}
		if !s.seen[k] {
			s.seen[k] = true
			s.report(src, fmt.Sprintf("access to %q outside the static points-to set %s",
				s.mod.Tags.Get(owner).Name, src.Tags.Format(&s.mod.Tags)), "sanitize.ptr", fn)
		}
	}
	if len(s.stack) == 0 {
		return
	}
	rec := &s.stack[len(s.stack)-1]
	if store {
		rec.obsMod.Add(owner)
	} else {
		rec.obsRef.Add(owner)
	}
}

// pushCall opens a record for a call to a defined function. site is
// the Jsr instruction; caller the enclosing function's name.
func (s *sanitizer) pushCall(caller string, site *ir.Instr) {
	s.stack = append(s.stack, sanRecord{site: site, caller: caller})
}

// popCall closes the innermost call record: the observed effect sets
// must be inside the site's static MOD/REF summaries, then fold into
// the caller's record (a callee's effects are transitively the
// caller's).
func (s *sanitizer) popCall() {
	n := len(s.stack) - 1
	rec := s.stack[n]
	s.stack = s.stack[:n]
	s.diffSet(rec, rec.obsMod, rec.site.Mods, 'm', "modified", "MOD")
	s.diffSet(rec, rec.obsRef, rec.site.Refs, 'r', "referenced", "REF")
	if n > 0 {
		parent := &s.stack[n-1]
		rec.obsMod.UnionInto(&parent.obsMod)
		rec.obsRef.UnionInto(&parent.obsRef)
	}
}

func (s *sanitizer) diffSet(rec sanRecord, obs, static ir.TagSet, kind uint8, verb, set string) {
	if obs.SubsetOf(static) {
		return
	}
	check := "sanitize.mod"
	if kind == 'r' {
		check = "sanitize.ref"
	}
	callee := rec.site.Callee
	if callee == "" {
		callee = "<indirect>"
	}
	obs.Minus(static).ForEach(func(t ir.TagID) {
		k := sanKey{in: rec.site, kind: kind, tag: t}
		if s.seen[k] {
			return
		}
		s.seen[k] = true
		s.report(rec.site, fmt.Sprintf("call to %s %s %q outside its static %s set",
			callee, verb, s.mod.Tags.Get(t).Name, set), check, rec.caller)
	})
}

// report emits one violation with provenance resolved from the
// module; the instruction→position map is built on first use so a
// clean run never pays for it.
func (s *sanitizer) report(in *ir.Instr, msg, checkName, fn string) {
	if s.pos == nil {
		s.pos = make(map[*ir.Instr]sanPos)
		for _, f := range s.mod.FuncsInOrder() {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					s.pos[&b.Instrs[i]] = sanPos{fn: f.Name, block: b.Label, index: i}
				}
			}
		}
	}
	d := ir.Diag{Check: checkName, Func: fn, Index: -1, Op: in.Op, Msg: msg}
	if p, ok := s.pos[in]; ok {
		d.Func, d.Block, d.Index = p.fn, p.block, p.index
	}
	s.vios = append(s.vios, d)
}

// finish flushes records still open when the run ends (main's own
// frame never pushes a record, but a run that stops mid-call — e.g.
// exit through main's return while records remain is impossible; this
// guards future early-exit paths) and returns the violations.
func (s *sanitizer) finish() []ir.Diag {
	for len(s.stack) > 0 {
		s.popCall()
	}
	return s.vios
}
