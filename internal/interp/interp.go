// Package interp executes IL modules in an instrumented virtual
// machine. The paper's evaluation instruments each compiled program
// "to record the total number of operations executed, stores executed,
// and loads executed" (§5); this interpreter produces exactly those
// dynamic counts, deterministically.
//
// Machine model: 64-bit registers (doubles are held bit-reinterpreted),
// a byte-addressable memory split into a global region, a stack of
// frames for address-taken locals, and a bump-allocated heap with one
// allocation site per malloc call. Every call activates a fresh
// register file, so cross-call register state is impossible by
// construction.
package interp

import (
	"encoding/binary"
	"fmt"
	"strings"

	"regpromo/internal/ir"
)

// Region base addresses. Address 0 stays unmapped so null dereferences
// fault.
const (
	globalBase = 0x0000_1000
	stackBase  = 0x1000_0000
	stackSize  = 8 << 20
	heapBase   = 0x4000_0000
	heapSize   = 64 << 20
	funcBase   = 0x7000_0000 // function "addresses" for indirect calls
)

// Counts are the dynamic instruction counters of one execution.
type Counts struct {
	// Ops is the total number of IL operations executed.
	Ops int64 `json:"ops"`
	// Loads counts executed memory loads (sLoad, cLoad, pLoad).
	Loads int64 `json:"loads"`
	// Stores counts executed memory stores (sStore, pStore).
	Stores int64 `json:"stores"`
	// Copies counts executed register copies.
	Copies int64 `json:"copies"`
	// Calls counts executed jsr operations.
	Calls int64 `json:"calls"`
}

// Options configure an execution.
type Options struct {
	// MaxSteps bounds execution; 0 means the default (2^31).
	MaxSteps int64
	// Trace, when non-nil, is invoked for every pointer-based
	// memory access with the instruction, the resolved address, and
	// the tag owning that address (TagInvalid when unknown).
	Trace func(fn string, in *ir.Instr, addr int64, owner ir.TagID)
	// Profile enables hot-spot profiling: per-basic-block execution
	// counts and per-tag dynamic load/store counters, reported in
	// Result.Profile. Pointer accesses are attributed to the tag
	// owning the resolved address, which costs an ownership lookup
	// per access — leave this off for plain measurements.
	Profile bool
}

// Result is the outcome of an execution.
type Result struct {
	Counts Counts
	// Exit is main's return value.
	Exit int64
	// Output is everything the program printed.
	Output string
	// Profile is the execution profile when Options.Profile was set,
	// nil otherwise.
	Profile *Profile
}

// Error is a runtime fault with function context.
type Error struct {
	Func string
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("runtime error in %s: %s", e.Func, e.Msg) }

// machine is the execution state.
type machine struct {
	mod  *ir.Module
	opts Options

	globals []byte
	stack   []byte
	heap    []byte

	globalAddr map[ir.TagID]int64
	// globalOwner resolves a global address back to its tag.
	globalOwner []ownerRange
	// heapOwner records allocation-site ownership of heap ranges.
	heapOwner []ownerRange

	layouts map[string]*frameLayout

	sp      int64 // next free stack address
	heapTop int64

	counts Counts
	steps  int64
	max    int64
	out    strings.Builder

	// prof records hot-spot data when profiling is enabled; nil
	// otherwise.
	prof *profiler

	frames []*frame
}

type ownerRange struct {
	lo, hi int64
	tag    ir.TagID
}

type frame struct {
	fn   *ir.Func
	regs []int64
	base int64 // frame base address
	size int64
}

// frameLayout assigns frame offsets to a function's local tags.
type frameLayout struct {
	offsets map[ir.TagID]int64
	size    int64
}

// Run executes the module's main function.
func Run(mod *ir.Module, opts Options) (*Result, error) {
	mainFn, ok := mod.Funcs["main"]
	if !ok {
		return nil, &Error{Func: "main", Msg: "no main function"}
	}
	m := &machine{
		mod:        mod,
		opts:       opts,
		stack:      make([]byte, stackSize),
		heap:       make([]byte, 0),
		globalAddr: make(map[ir.TagID]int64),
		layouts:    make(map[string]*frameLayout),
		sp:         stackBase,
		heapTop:    heapBase,
		max:        opts.MaxSteps,
	}
	if m.max == 0 {
		m.max = 1 << 31
	}
	if opts.Profile {
		m.prof = newProfiler(mod)
	}
	m.layoutGlobals()

	exit, err := m.call(mainFn, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Counts: m.counts, Exit: exit, Output: m.out.String()}
	if m.prof != nil {
		res.Profile = m.prof.result(mod)
	}
	return res, nil
}

func (m *machine) layoutGlobals() {
	addr := int64(globalBase)
	for _, tag := range m.mod.Tags.All() {
		if tag.Kind != ir.TagGlobal {
			continue
		}
		addr = align8(addr)
		m.globalAddr[tag.ID] = addr
		m.globalOwner = append(m.globalOwner, ownerRange{addr, addr + int64(max(tag.Size, 1)), tag.ID})
		addr += int64(max(tag.Size, 1))
	}
	m.globals = make([]byte, addr-globalBase)
	for _, init := range m.mod.Inits {
		base := m.globalAddr[init.Tag] - globalBase
		copy(m.globals[base:], init.Data)
		for _, rel := range init.Relocs {
			target := m.globalAddr[rel.Target] + rel.Addend
			binary.LittleEndian.PutUint64(m.globals[base+int64(rel.Offset):], uint64(target))
		}
	}
}

func align8(a int64) int64 { return (a + 7) &^ 7 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// layoutOf computes (and caches) the frame layout of fn.
func (m *machine) layoutOf(fn *ir.Func) *frameLayout {
	if l, ok := m.layouts[fn.Name]; ok {
		return l
	}
	l := &frameLayout{offsets: make(map[ir.TagID]int64)}
	for _, tid := range fn.Locals {
		tag := m.mod.Tags.Get(tid)
		l.size = align8(l.size)
		l.offsets[tid] = l.size
		l.size += int64(max(tag.Size, 1))
	}
	l.size = align8(l.size)
	m.layouts[fn.Name] = l
	return l
}

// tagAddr resolves a scalar-op tag to its address in the current
// frame or the global region.
func (m *machine) tagAddr(f *frame, tid ir.TagID) (int64, error) {
	tag := m.mod.Tags.Get(tid)
	switch tag.Kind {
	case ir.TagGlobal:
		return m.globalAddr[tid], nil
	case ir.TagLocal, ir.TagSpill:
		off, ok := m.layoutOf(f.fn).offsets[tid]
		if !ok {
			return 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("tag %s has no frame slot", tag.Name)}
		}
		return f.base + off, nil
	}
	return 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("cannot address tag %s", tag.Name)}
}

// mem returns the byte slice and offset backing addr..addr+size.
func (m *machine) mem(f *frame, addr int64, size int) ([]byte, int64, error) {
	switch {
	case addr >= globalBase && addr+int64(size) <= globalBase+int64(len(m.globals)):
		return m.globals, addr - globalBase, nil
	case addr >= stackBase && addr+int64(size) <= stackBase+int64(len(m.stack)):
		return m.stack, addr - stackBase, nil
	case addr >= heapBase && addr+int64(size) <= m.heapTop:
		return m.heap, addr - heapBase, nil
	}
	return nil, 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("invalid memory access at %#x size %d", addr, size)}
}

func (m *machine) loadMem(f *frame, addr int64, size int) (int64, error) {
	buf, off, err := m.mem(f, addr, size)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return int64(int8(buf[off])), nil
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(buf[off:]))), nil
	case 8:
		return int64(binary.LittleEndian.Uint64(buf[off:])), nil
	}
	return 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("bad load size %d", size)}
}

func (m *machine) storeMem(f *frame, addr int64, size int, v int64) error {
	buf, off, err := m.mem(f, addr, size)
	if err != nil {
		return err
	}
	switch size {
	case 1:
		buf[off] = byte(v)
	case 4:
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(buf[off:], uint64(v))
	default:
		return &Error{Func: f.fn.Name, Msg: fmt.Sprintf("bad store size %d", size)}
	}
	return nil
}

// ownerOf resolves an address to the tag owning it, for tracing.
func (m *machine) ownerOf(addr int64) ir.TagID {
	for _, r := range m.globalOwner {
		if addr >= r.lo && addr < r.hi {
			return r.tag
		}
	}
	for _, r := range m.heapOwner {
		if addr >= r.lo && addr < r.hi {
			return r.tag
		}
	}
	// Stack: walk active frames.
	for i := len(m.frames) - 1; i >= 0; i-- {
		f := m.frames[i]
		if addr >= f.base && addr < f.base+f.size {
			l := m.layoutOf(f.fn)
			for tid, off := range l.offsets {
				tag := m.mod.Tags.Get(tid)
				if addr >= f.base+off && addr < f.base+off+int64(max(tag.Size, 1)) {
					return tid
				}
			}
		}
	}
	return ir.TagInvalid
}
