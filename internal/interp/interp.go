// Package interp executes IL modules in an instrumented virtual
// machine. The paper's evaluation instruments each compiled program
// "to record the total number of operations executed, stores executed,
// and loads executed" (§5); this interpreter produces exactly those
// dynamic counts, deterministically.
//
// Machine model: 64-bit registers (doubles are held bit-reinterpreted),
// a byte-addressable memory split into a global region, a stack of
// frames for address-taken locals, and a bump-allocated heap with one
// allocation site per malloc call. Every call activates a fresh
// register file, so cross-call register state is impossible by
// construction.
package interp

import (
	"encoding/binary"
	"fmt"
	"strings"

	"regpromo/internal/ir"
	"regpromo/internal/obs"
)

// Region base addresses. Address 0 stays unmapped so null dereferences
// fault.
const (
	globalBase = 0x0000_1000
	stackBase  = 0x1000_0000
	stackSize  = 8 << 20
	heapBase   = 0x4000_0000
	heapSize   = 64 << 20
	funcBase   = 0x7000_0000 // function "addresses" for indirect calls
)

// Counts are the dynamic instruction counters of one execution.
type Counts struct {
	// Ops is the total number of IL operations executed.
	Ops int64 `json:"ops"`
	// Loads counts executed memory loads (sLoad, cLoad, pLoad).
	Loads int64 `json:"loads"`
	// Stores counts executed memory stores (sStore, pStore).
	Stores int64 `json:"stores"`
	// Copies counts executed register copies.
	Copies int64 `json:"copies"`
	// Calls counts executed jsr operations.
	Calls int64 `json:"calls"`
}

// Engine selects the execution engine.
type Engine int

const (
	// EngineFlat is the default: the module is lowered once into a
	// contiguous flat-code array with pre-resolved operands (branch
	// targets as instruction indices, call targets as function
	// indices, frame offsets and global addresses baked into each
	// memory operation) and dispatched with a function-local pc.
	EngineFlat Engine = iota
	// EngineSwitch is the original block-walking reference engine.
	// It produces bit-identical counts, profiles, and behaviour, and
	// stays as the built-in differential oracle for the flat engine.
	EngineSwitch
	// EngineNative compiles the flat program to machine code: the
	// flattened instruction array is translated to Go source
	// (Program.NativeSource), built with the Go toolchain, and loaded
	// as a plugin or executed as a subprocess (internal/native). It
	// obeys the same parity contract as the interpreters — identical
	// output, exit status, error text, and dynamic counts — but runs
	// only through driver.Compilation.Execute, which owns the build
	// artifact cache; interp.Run rejects it.
	EngineNative
)

func (e Engine) String() string {
	switch e {
	case EngineSwitch:
		return "switch"
	case EngineNative:
		return "native"
	}
	return "flat"
}

// ParseEngine resolves an engine name ("flat", "switch", or
// "native").
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "flat":
		return EngineFlat, nil
	case "switch":
		return EngineSwitch, nil
	case "native":
		return EngineNative, nil
	}
	return EngineFlat, fmt.Errorf("unknown engine %q (want flat, switch, or native)", s)
}

// Options configure an execution.
type Options struct {
	// MaxSteps bounds execution; 0 means the default (2^31).
	MaxSteps int64
	// Trace, when non-nil, is invoked for every pointer-based
	// memory access with the instruction, the resolved address, and
	// the tag owning that address (TagInvalid when unknown).
	Trace func(fn string, in *ir.Instr, addr int64, owner ir.TagID)
	// Profile enables hot-spot profiling: per-basic-block execution
	// counts and per-tag dynamic load/store counters, reported in
	// Result.Profile. Pointer accesses are attributed to the tag
	// owning the resolved address, which costs an ownership lookup
	// per access — leave this off for plain measurements.
	Profile bool
	// Engine selects the execution engine; the zero value is the
	// flat-code engine.
	Engine Engine
	// Sanitize enables the analysis-soundness sanitizer: every memory
	// access is diffed against the static MOD/REF and points-to sets
	// and violations are reported in Result.Violations. Guarded like
	// profiling — zero cost when off.
	Sanitize bool
	// NoCounts, honoured by the native engine only, selects the
	// uninstrumented build: no dynamic-op counters and no step-budget
	// checks are compiled in, so the hot path pays nothing for
	// instrumentation. Result.Counts is all zeros and MaxSteps is not
	// enforced. The interpreter engines ignore it — their counters
	// are structural.
	NoCounts bool
}

// Result is the outcome of an execution.
type Result struct {
	Counts Counts
	// Exit is main's return value.
	Exit int64
	// Output is everything the program printed.
	Output string
	// Profile is the execution profile when Options.Profile was set,
	// nil otherwise.
	Profile *Profile
	// Violations are the analysis-soundness diagnostics collected
	// when Options.Sanitize was set; empty on a clean run.
	Violations []ir.Diag
}

// Error is a runtime fault with function context.
type Error struct {
	Func string
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("runtime error in %s: %s", e.Func, e.Msg) }

// machine is the execution state.
type machine struct {
	mod  *ir.Module
	opts Options

	globals []byte
	stack   []byte
	heap    []byte

	globalAddr map[ir.TagID]int64
	// globalOwner resolves a global address back to its tag.
	globalOwner []ownerRange
	// heapOwner records allocation-site ownership of heap ranges.
	heapOwner []ownerRange

	// layouts caches frame layouts per function. The key is the
	// function pointer, not its name: pointer hashing is cheaper than
	// string hashing on every call, and two modules reusing a name
	// can never collide.
	layouts map[*ir.Func]*frameLayout

	sp      int64 // next free stack address
	heapTop int64

	counts Counts
	steps  int64
	max    int64
	out    strings.Builder

	// regArena is the flat engine's register allocator: each call
	// slices its register file out of this arena instead of calling
	// make, and returns it on exit. Growth replaces the backing
	// array; outstanding frames keep their own (still valid) slices.
	regArena []int64
	regTop   int
	// argScratch is a reusable buffer for intrinsic-call arguments.
	argScratch []int64
	// framePool recycles frame objects popped by the flat engine's
	// threaded returns, so steady-state calls allocate nothing.
	framePool []*frame

	// prof records hot-spot data when profiling is enabled; nil
	// otherwise.
	prof *profiler
	// san records analysis-soundness observations when sanitizing;
	// nil otherwise.
	san *sanitizer

	frames []*frame
}

type ownerRange struct {
	lo, hi int64
	tag    ir.TagID
}

type frame struct {
	fn   *ir.Func
	regs []int64
	base int64 // frame base address
	size int64
}

// frameLayout assigns frame offsets to a function's local tags.
type frameLayout struct {
	offsets map[ir.TagID]int64
	size    int64
	// needsZero is false when every slot in the frame is a
	// register-allocator spill slot. The spiller stores a slot before
	// any load of it by construction, so such frames are fully
	// stored-before-loaded and need no entry zeroing.
	needsZero bool
}

// computeLayout lays out fn's frame. Shared by the machine's cache and
// the flat-code compiler so both always agree on offsets.
func computeLayout(mod *ir.Module, fn *ir.Func) *frameLayout {
	l := &frameLayout{offsets: make(map[ir.TagID]int64, len(fn.Locals))}
	for _, tid := range fn.Locals {
		tag := mod.Tags.Get(tid)
		l.size = align8(l.size)
		l.offsets[tid] = l.size
		l.size += int64(max(tag.Size, 1))
		if tag.Kind != ir.TagSpill {
			l.needsZero = true
		}
	}
	l.size = align8(l.size)
	return l
}

// Run executes the module's main function under the selected engine.
// The native engine needs a build-artifact cache and a toolchain
// invocation, both owned by driver.Compilation — route native
// executions through Compilation.Execute instead.
func Run(mod *ir.Module, opts Options) (*Result, error) {
	switch opts.Engine {
	case EngineSwitch:
		return runSwitch(mod, opts)
	case EngineNative:
		return nil, fmt.Errorf("native engine requires a driver.Compilation (use Compilation.Execute)")
	}
	return Flatten(mod, opts.Profile).Run(opts)
}

// runSwitch executes main on the block-walking reference engine.
func runSwitch(mod *ir.Module, opts Options) (*Result, error) {
	mainFn, ok := mod.Funcs["main"]
	if !ok {
		return nil, &Error{Func: "main", Msg: "no main function"}
	}
	m := newMachine(mod, opts)
	exit, err := m.call(mainFn, nil)
	if err != nil {
		return nil, err
	}
	return m.result(exit), nil
}

// execImage is the precomputed load-time image of a module: the
// global memory layout, ownership ranges, and the initialized global
// bytes. Building it walks the whole tag table and applies every
// initializer — for a short-running program that can cost more than
// the execution itself — so the flat engine computes it once per
// Program and every run just copies the initialized bytes.
type execImage struct {
	globalAddr  map[ir.TagID]int64
	globalOwner []ownerRange
	// globals is the initialized global region template; each machine
	// copies it so runs cannot observe each other's writes.
	globals []byte
}

// buildImage lays out and initializes the module's global region.
func buildImage(mod *ir.Module) *execImage {
	img := &execImage{}
	addrs, end := globalAddrs(mod)
	img.globalAddr = addrs
	for _, tag := range mod.Tags.All() {
		if tag.Kind != ir.TagGlobal {
			continue
		}
		addr := addrs[tag.ID]
		img.globalOwner = append(img.globalOwner, ownerRange{addr, addr + int64(max(tag.Size, 1)), tag.ID})
	}
	img.globals = make([]byte, end-globalBase)
	for _, init := range mod.Inits {
		base := addrs[init.Tag] - globalBase
		copy(img.globals[base:], init.Data)
		for _, rel := range init.Relocs {
			target := addrs[rel.Target] + rel.Addend
			binary.LittleEndian.PutUint64(img.globals[base+int64(rel.Offset):], uint64(target))
		}
	}
	return img
}

// newMachine builds the execution state shared by both engines,
// computing the module's load image from scratch.
func newMachine(mod *ir.Module, opts Options) *machine {
	return newMachineImage(mod, opts, buildImage(mod))
}

// newMachineImage builds execution state from a precomputed image.
// The address map and ownership ranges are shared read-only; the
// global bytes are copied. The stack region is committed lazily
// (ensureStack), so construction costs O(globals), not O(stack).
func newMachineImage(mod *ir.Module, opts Options, img *execImage) *machine {
	m := &machine{
		mod:         mod,
		opts:        opts,
		globals:     append([]byte(nil), img.globals...),
		heap:        make([]byte, 0),
		globalAddr:  img.globalAddr,
		globalOwner: img.globalOwner,
		layouts:     make(map[*ir.Func]*frameLayout),
		sp:          stackBase,
		heapTop:     heapBase,
		max:         opts.MaxSteps,
	}
	if m.max == 0 {
		m.max = 1 << 31
	}
	if opts.Profile {
		m.prof = newProfiler(mod)
	}
	if opts.Sanitize {
		m.san = newSanitizer(mod)
	}
	return m
}

// ensureStack commits the stack region through need bytes. The region
// is logically stackSize bytes of zeroes; committing it lazily keeps
// machine construction cheap when one program runs many times. Both
// engines commit at frame push with identical frame sizes, so the
// committed prefix — and therefore which wild stack addresses fault in
// mem — evolves identically under either engine.
func (m *machine) ensureStack(need int64) {
	if need <= int64(len(m.stack)) {
		return
	}
	sz := int64(64 << 10)
	for sz < need {
		sz *= 2
	}
	if sz > stackSize {
		sz = stackSize
	}
	grown := make([]byte, sz)
	copy(grown, m.stack)
	m.stack = grown
}

// result assembles the final Result after a successful run.
func (m *machine) result(exit int64) *Result {
	res := &Result{Counts: m.counts, Exit: exit, Output: m.out.String()}
	if m.prof != nil {
		res.Profile = m.prof.result(m.mod)
	}
	if m.san != nil {
		res.Violations = m.san.finish()
	}
	reportRunMetrics(res)
	return res
}

// ReportRunMetrics folds a finished execution into the process-wide
// metrics registry on behalf of an out-of-process engine. The
// interpreter engines report through machine.result; the native
// runner calls this so its runs land in the same counters.
func ReportRunMetrics(res *Result) { reportRunMetrics(res) }

// reportRunMetrics folds one finished execution into the process-wide
// metrics registry. Both engines end through machine.result, so the
// per-run aggregates land here once, off the dispatch hot path.
func reportRunMetrics(res *Result) {
	r := obs.Metrics()
	if r == nil {
		return
	}
	r.Counter("interp.runs").Inc()
	r.Counter("interp.ops").Add(res.Counts.Ops)
	r.Counter("interp.loads").Add(res.Counts.Loads)
	r.Counter("interp.stores").Add(res.Counts.Stores)
	r.Counter("interp.copies").Add(res.Counts.Copies)
	r.Counter("interp.calls").Add(res.Counts.Calls)
	r.Counter("interp.sanitizer_violations").Add(int64(len(res.Violations)))
	r.Histogram("interp.ops_per_run", obs.SizeBuckets).Observe(res.Counts.Ops)
}

// globalAddrs computes the global memory layout: every global tag's
// absolute address, plus the end address of the region. Shared by the
// machine loader and the flat-code compiler so the pre-resolved
// addresses baked into flat code always match the loaded layout.
func globalAddrs(mod *ir.Module) (map[ir.TagID]int64, int64) {
	addrs := make(map[ir.TagID]int64)
	addr := int64(globalBase)
	for _, tag := range mod.Tags.All() {
		if tag.Kind != ir.TagGlobal {
			continue
		}
		addr = align8(addr)
		addrs[tag.ID] = addr
		addr += int64(max(tag.Size, 1))
	}
	return addrs, addr
}

func align8(a int64) int64 { return (a + 7) &^ 7 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// layoutOf computes (and caches) the frame layout of fn.
func (m *machine) layoutOf(fn *ir.Func) *frameLayout {
	if l, ok := m.layouts[fn]; ok {
		return l
	}
	l := computeLayout(m.mod, fn)
	m.layouts[fn] = l
	return l
}

// tagAddr resolves a scalar-op tag to its address in the current
// frame or the global region.
func (m *machine) tagAddr(f *frame, tid ir.TagID) (int64, error) {
	tag := m.mod.Tags.Get(tid)
	switch tag.Kind {
	case ir.TagGlobal:
		return m.globalAddr[tid], nil
	case ir.TagLocal, ir.TagSpill:
		off, ok := m.layoutOf(f.fn).offsets[tid]
		if !ok {
			return 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("tag %s has no frame slot", tag.Name)}
		}
		return f.base + off, nil
	}
	return 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("cannot address tag %s", tag.Name)}
}

// mem returns the byte slice and offset backing addr..addr+size.
func (m *machine) mem(f *frame, addr int64, size int) ([]byte, int64, error) {
	switch {
	case addr >= globalBase && addr+int64(size) <= globalBase+int64(len(m.globals)):
		return m.globals, addr - globalBase, nil
	case addr >= stackBase && addr+int64(size) <= stackBase+int64(len(m.stack)):
		return m.stack, addr - stackBase, nil
	case addr >= heapBase && addr+int64(size) <= m.heapTop:
		return m.heap, addr - heapBase, nil
	}
	return nil, 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("invalid memory access at %#x size %d", addr, size)}
}

func (m *machine) loadMem(f *frame, addr int64, size int) (int64, error) {
	buf, off, err := m.mem(f, addr, size)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return int64(int8(buf[off])), nil
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(buf[off:]))), nil
	case 8:
		return int64(binary.LittleEndian.Uint64(buf[off:])), nil
	}
	return 0, &Error{Func: f.fn.Name, Msg: fmt.Sprintf("bad load size %d", size)}
}

func (m *machine) storeMem(f *frame, addr int64, size int, v int64) error {
	buf, off, err := m.mem(f, addr, size)
	if err != nil {
		return err
	}
	switch size {
	case 1:
		buf[off] = byte(v)
	case 4:
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(buf[off:], uint64(v))
	default:
		return &Error{Func: f.fn.Name, Msg: fmt.Sprintf("bad store size %d", size)}
	}
	return nil
}

// ownerOf resolves an address to the tag owning it, for tracing.
func (m *machine) ownerOf(addr int64) ir.TagID {
	for _, r := range m.globalOwner {
		if addr >= r.lo && addr < r.hi {
			return r.tag
		}
	}
	for _, r := range m.heapOwner {
		if addr >= r.lo && addr < r.hi {
			return r.tag
		}
	}
	// Stack: walk active frames.
	for i := len(m.frames) - 1; i >= 0; i-- {
		f := m.frames[i]
		if addr >= f.base && addr < f.base+f.size {
			l := m.layoutOf(f.fn)
			for tid, off := range l.offsets {
				tag := m.mod.Tags.Get(tid)
				if addr >= f.base+off && addr < f.base+off+int64(max(tag.Size, 1)) {
					return tid
				}
			}
		}
	}
	return ir.TagInvalid
}
