package interp

import (
	"testing"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	file, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	res, err := Run(mod, Options{})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, ir.FormatModule(mod))
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `int main(void) { return (3 + 4) * 5 - 100 / 4 - 7 % 3; }`)
	if res.Exit != 9 {
		t.Fatalf("exit = %d, want 9", res.Exit)
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
int main(void) {
	int i;
	int sum;
	sum = 0;
	for (i = 1; i <= 10; i++) {
		if (i % 2 == 0) continue;
		sum += i;
		if (sum > 20) break;
	}
	while (sum < 30) sum++;
	do { sum--; } while (sum > 27);
	return sum;
}`)
	if res.Exit != 27 {
		t.Fatalf("exit = %d, want 27", res.Exit)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	res := run(t, `
int total;
int data[5] = {5, 4, 3, 2, 1};
int main(void) {
	int i;
	for (i = 0; i < 5; i++) total += data[i];
	return total;
}`)
	if res.Exit != 15 {
		t.Fatalf("exit = %d, want 15", res.Exit)
	}
}

func TestPointers(t *testing.T) {
	res := run(t, `
void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }
int main(void) {
	int x;
	int y;
	x = 3; y = 9;
	swap(&x, &y);
	return x * 10 + y;
}`)
	if res.Exit != 93 {
		t.Fatalf("exit = %d, want 93", res.Exit)
	}
}

func TestPointerArithmetic(t *testing.T) {
	res := run(t, `
int a[4] = {10, 20, 30, 40};
int main(void) {
	int *p;
	int *q;
	p = a;
	q = p + 3;
	return *q - *(p + 1) + (q - p);
}`)
	if res.Exit != 23 {
		t.Fatalf("exit = %d, want 23", res.Exit)
	}
}

func TestRecursion(t *testing.T) {
	res := run(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { return fib(12); }`)
	if res.Exit != 144 {
		t.Fatalf("exit = %d, want 144", res.Exit)
	}
}

func TestDoubles(t *testing.T) {
	res := run(t, `
double half(double x) { return x / 2.0; }
int main(void) {
	double d;
	d = half(7.0) + 0.5;
	if (d == 4.0) return 1;
	return 0;
}`)
	if res.Exit != 1 {
		t.Fatalf("exit = %d, want 1", res.Exit)
	}
}

func TestStructs(t *testing.T) {
	res := run(t, `
struct point { int x; int y; };
struct rect { struct point a; struct point b; };
struct rect r;
int area(struct rect *p) {
	return (p->b.x - p->a.x) * (p->b.y - p->a.y);
}
int main(void) {
	r.a.x = 1; r.a.y = 1;
	r.b.x = 4; r.b.y = 5;
	return area(&r);
}`)
	if res.Exit != 12 {
		t.Fatalf("exit = %d, want 12", res.Exit)
	}
}

func TestMallocAndLists(t *testing.T) {
	res := run(t, `
struct node { int val; struct node *next; };
int main(void) {
	struct node *head;
	struct node *n;
	int i;
	int sum;
	head = 0;
	for (i = 1; i <= 5; i++) {
		n = (struct node *) malloc(sizeof(struct node));
		n->val = i;
		n->next = head;
		head = n;
	}
	sum = 0;
	for (n = head; n != 0; n = n->next) sum += n->val;
	return sum;
}`)
	if res.Exit != 15 {
		t.Fatalf("exit = %d, want 15", res.Exit)
	}
}

func TestPrinting(t *testing.T) {
	res := run(t, `
int main(void) {
	print_str("n=");
	print_int(42);
	print_char('x');
	print_char(10);
	print_double(1.5);
	return 0;
}`)
	want := "n=42\nx\n1.5\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestCharArithmetic(t *testing.T) {
	res := run(t, `
char buf[8];
int main(void) {
	char c;
	buf[0] = 'A';
	c = buf[0] + 1;
	buf[1] = c;
	return buf[1];
}`)
	if res.Exit != 'B' {
		t.Fatalf("exit = %d, want %d", res.Exit, 'B')
	}
}

func TestFunctionPointerDispatch(t *testing.T) {
	res := run(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int apply(int (*op)(int, int), int x, int y) { return op(x, y); }
int main(void) { return apply(add, 2, 3) * apply(mul, 2, 3); }`)
	if res.Exit != 30 {
		t.Fatalf("exit = %d, want 30", res.Exit)
	}
}

func TestCountsAreRecorded(t *testing.T) {
	res := run(t, `
int g;
int main(void) {
	int i;
	for (i = 0; i < 10; i++) g = g + 1;
	return g;
}`)
	if res.Exit != 10 {
		t.Fatalf("exit = %d", res.Exit)
	}
	// The loop body loads and stores g each of the 10 iterations.
	if res.Counts.Loads < 10 || res.Counts.Stores < 10 {
		t.Fatalf("counts = %+v, expected >= 10 loads and stores", res.Counts)
	}
	if res.Counts.Ops <= res.Counts.Loads+res.Counts.Stores {
		t.Fatalf("total ops must dominate memory ops: %+v", res.Counts)
	}
}

func TestConditionalExpressions(t *testing.T) {
	res := run(t, `
int main(void) {
	int a;
	int b;
	a = 5;
	b = a > 3 ? 100 : 200;
	b += (a == 5 && a != 4) ? 1 : 0;
	b += (a < 0 || a > 4) ? 10 : 20;
	return b;
}`)
	if res.Exit != 111 {
		t.Fatalf("exit = %d, want 111", res.Exit)
	}
}

func TestShiftAndBitOps(t *testing.T) {
	res := run(t, `
int main(void) {
	int x;
	x = 1 << 4;
	x |= 3;
	x ^= 1;
	x &= 30;
	x >>= 1;
	return x + (~0 == -1);
}`)
	if res.Exit != 10 {
		t.Fatalf("exit = %d, want 10", res.Exit)
	}
}

func TestNullDerefFaults(t *testing.T) {
	file, err := parser.Parse("test.c", `
int main(void) {
	int *p;
	p = 0;
	return *p;
}`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mod, Options{}); err == nil {
		t.Fatal("null dereference must fault")
	}
}

func TestStepLimit(t *testing.T) {
	file, _ := parser.Parse("test.c", `int main(void) { while (1) {} return 0; }`)
	prog, _ := sema.Check(file)
	mod, _ := irgen.Generate(prog)
	if _, err := Run(mod, Options{MaxSteps: 1000}); err == nil {
		t.Fatal("infinite loop must hit the step limit")
	}
}

func TestStringGlobals(t *testing.T) {
	res := run(t, `
char *greeting = "hi";
int main(void) {
	print_str(greeting);
	return greeting[1];
}`)
	if res.Output != "hi" || res.Exit != 'i' {
		t.Fatalf("output=%q exit=%d", res.Output, res.Exit)
	}
}

func TestTwoDimensionalArrays(t *testing.T) {
	res := run(t, `
int m[3][4];
int main(void) {
	int i;
	int j;
	int sum;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			m[i][j] = i * 4 + j;
	sum = 0;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			sum += m[i][j];
	return sum;
}`)
	if res.Exit != 66 {
		t.Fatalf("exit = %d, want 66", res.Exit)
	}
}
