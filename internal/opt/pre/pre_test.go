package pre

import (
	"testing"

	"regpromo/internal/ir"
	"regpromo/internal/testutil"
)

func TestCrossBlockRedundantLoad(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	int a;
	int b;
	a = g;           /* establishes g in a register */
	if (a > 0) {
		a = a + 1;
	}
	b = g;           /* redundant on every path */
	return a * 100 + b;
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	before := testutil.CountOps(fn, ir.OpSLoad)
	if n := Run(m); n == 0 {
		t.Fatalf("expected a redundant load, have %d loads:\n%s",
			before, ir.FormatFunc(fn, &m.Tags))
	}
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestStoreMakesLoadRedundant(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int use(int v) { return v; }
int main(void) {
	int b;
	g = 42;
	use(0);          /* calls use, which cannot touch g */
	b = g;
	return b;
}
`)
	fn := m.Funcs["main"]
	if n := Run(m); n == 0 {
		t.Fatalf("store should make the load redundant:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 42 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestDivergentPathsBlockReuse(t *testing.T) {
	// The two paths leave g's value in DIFFERENT registers; the meet
	// must discard the fact and keep the load.
	m := testutil.Compile(t, `
int g;
int main(void) {
	int a;
	int b;
	int c;
	if (g > 0) {
		a = g + 1;
	} else {
		b = g + 2;
		if (b > 100) b = 0;
	}
	c = g;
	return c;
}
`)
	want := testutil.Run(t, m)
	Run(m)
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestAmbiguousWriteKills(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	int a;
	int b;
	int *p;
	p = &g;
	a = g;
	*p = 99;         /* may (does) modify g */
	b = g;           /* must reload */
	return a + b;
}
`)
	fn := m.Funcs["main"]
	before := testutil.CountOps(fn, ir.OpSLoad)
	Run(m)
	after := testutil.CountOps(fn, ir.OpSLoad)
	if after != before {
		t.Fatalf("load after aliasing store removed: %d -> %d\n%s",
			before, after, ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 99 {
		t.Fatalf("exit = %d, want 0+99", res.Exit)
	}
}

func TestCallModsKill(t *testing.T) {
	m := testutil.Compile(t, `
int g;
void clobber(void) { g = 5; }
int main(void) {
	int a;
	int b;
	a = g;
	clobber();
	b = g;
	return a * 10 + b;
}
`)
	fn := m.Funcs["main"]
	before := testutil.CountOps(fn, ir.OpSLoad)
	Run(m)
	if after := testutil.CountOps(fn, ir.OpSLoad); after != before {
		t.Fatalf("load across clobbering call removed: %d -> %d", before, after)
	}
}

func TestLoopCarriedFactsConverge(t *testing.T) {
	// A load inside a loop whose tag is stored in the same loop: the
	// back edge must reach a fixed point without oscillating, and the
	// loop-carried register must not be wrongly reused.
	m := testutil.Compile(t, `
int g;
int main(void) {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 10; i++) {
		sum += g;
		g = sum & 7;
	}
	print_int(g);
	print_int(sum);
	return 0;
}
`)
	want := testutil.Run(t, m)
	Run(m)
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestStraightLinePromotionEffect(t *testing.T) {
	// §3.4: PRE achieves "most of the effects of promotion in
	// straight-line code" — repeated loads of a global outside any
	// loop collapse to one.
	m := testutil.Compile(t, `
int g;
int h;
int main(void) {
	int a;
	a = g + h;
	a += g * h;
	a += g - h;
	return a & 1023;
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	Run(m)
	loads := testutil.CountOps(fn, ir.OpSLoad)
	if loads > 2 {
		t.Fatalf("each global should be loaded once, %d loads remain:\n%s",
			loads, ir.FormatFunc(fn, &m.Tags))
	}
	testutil.MustBehaveLike(t, m, want)
}
