// Package pre implements the load-redundancy half of partial
// redundancy elimination. The paper's compiler uses PRE with memory
// tag information to remove redundant loads in straight-line code
// while treating stores conservatively (§3.4: "It uses the tag fields
// to eliminate redundant loads. It must treat stores more
// conservatively."); this pass does the same, globally.
//
// The analysis computes, for every block boundary, the set of
// available (tag, register) pairs: pairs such that on every incoming
// path the register holds the tag's current memory value. A load
// generates its (tag, destination) pair; a scalar store generates
// (tag, source); an ambiguous write kills every pair for the tags it
// may touch; redefining a register kills the pairs it holds. Only
// single-definition registers participate, so a pair can never be
// silently invalidated by an unrelated redefinition on another path.
// Gen and kill are independent of the incoming fact set, which makes
// the transfer functions distributive and the fixed point exact.
//
// A later sLoad of a tag with an available pair is rewritten into a
// copy from the holding register. This also achieves "most of the
// effects of promotion in straight-line code" (§3.1).
package pre

import (
	"sort"

	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
)

// Run eliminates redundant loads in every function; it returns the
// number of loads removed.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// fact is one available pair: reg holds tag's current value, loaded
// or stored with the given access width.
type fact struct {
	tag  ir.TagID
	reg  ir.Reg
	size int
}

// facts is an immutable-ish set of facts.
type facts map[fact]bool

func (f facts) clone() facts {
	out := make(facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func intersect(a, b facts) facts {
	out := make(facts)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func equal(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Func eliminates redundant loads in one function.
func Func(fn *ir.Func) int {
	fn.RemoveUnreachable()
	n := len(fn.Blocks)

	defCount := make(map[ir.Reg]int)
	// Parameters carry an implicit entry definition.
	for _, p := range fn.Params {
		defCount[p]++
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.RegInvalid {
				defCount[d]++
			}
		}
	}

	// Solve forward over the worklist kernel (reverse-postorder
	// visits, so every block except the entry sees a processed
	// predecessor on the first pass). A nil OUT means ⊤ — "not yet
	// computed" — and such predecessors are skipped in the meet; they
	// must never be treated as ∅, or the descent from ⊤ would lose
	// monotonicity and could cycle.
	in := make([]facts, n)
	out := make([]facts, n)
	dataflow.SolveBlocks(fn, dataflow.Forward, func(b *ir.Block) bool {
		var cur facts
		if b == fn.Entry {
			cur = make(facts) // nothing is available at entry
		} else {
			first := true
			for _, p := range b.Preds {
				po := out[p.ID]
				if po == nil {
					continue // ⊤: contributes nothing to the meet
				}
				if first {
					cur = po.clone()
					first = false
				} else {
					cur = intersect(cur, po)
				}
			}
			if cur == nil {
				// Every predecessor still ⊤: re-queued when one is.
				return false
			}
		}
		in[b.ID] = cur.clone()
		transfer(b, cur, defCount, false)
		if out[b.ID] == nil || !equal(out[b.ID], cur) {
			out[b.ID] = cur
			return true
		}
		return false
	})

	removed := 0
	for _, b := range fn.Blocks {
		if in[b.ID] == nil {
			continue // unreachable in RPO (no processed predecessor)
		}
		removed += transfer(b, in[b.ID], defCount, true)
	}
	return removed
}

// transfer applies b's instructions to cur; in rewrite mode redundant
// loads become copies (the state transitions are identical either
// way: a load's destination holds the tag's value whether the value
// arrived from memory or from the copy source).
func transfer(b *ir.Block, cur facts, defCount map[ir.Reg]int, rewrite bool) int {
	removed := 0
	for i := range b.Instrs {
		instr := &b.Instrs[i]
		switch instr.Op {
		case ir.OpSLoad, ir.OpCLoad:
			if rewrite {
				if r, ok := holder(cur, instr.Tag, instr.Size); ok && r != instr.Dst {
					*instr = ir.Instr{Op: ir.OpCopy, Dst: instr.Dst, A: r}
					removed++
				}
			}
			killReg(cur, instr.Dst)
			if defCount[instr.Dst] == 1 {
				cur[fact{instr.Tag, instr.Dst, instr.Size}] = true
			}
		case ir.OpSStore:
			killTag(cur, instr.Tag)
			if defCount[instr.A] == 1 {
				cur[fact{instr.Tag, instr.A, instr.Size}] = true
			}
		case ir.OpPStore:
			killTags(cur, instr.Tags)
		case ir.OpJsr:
			killTags(cur, instr.Mods)
			if d := instr.Def(); d != ir.RegInvalid {
				killReg(cur, d)
			}
		default:
			if d := instr.Def(); d != ir.RegInvalid {
				killReg(cur, d)
			}
		}
	}
	return removed
}

// holder picks the available register for (tag, size),
// deterministically (lowest register number).
func holder(cur facts, tag ir.TagID, size int) (ir.Reg, bool) {
	var regs []ir.Reg
	for k := range cur {
		if k.tag == tag && k.size == size {
			regs = append(regs, k.reg)
		}
	}
	if len(regs) == 0 {
		return ir.RegInvalid, false
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	return regs[0], true
}

func killReg(cur facts, r ir.Reg) {
	for k := range cur {
		if k.reg == r {
			delete(cur, k)
		}
	}
}

func killTag(cur facts, t ir.TagID) {
	for k := range cur {
		if k.tag == t {
			delete(cur, k)
		}
	}
}

func killTags(cur facts, tags ir.TagSet) {
	if tags.IsTop() {
		for k := range cur {
			delete(cur, k)
		}
		return
	}
	for k := range cur {
		if tags.Has(k.tag) {
			delete(cur, k)
		}
	}
}
