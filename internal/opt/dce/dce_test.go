package dce

import (
	"testing"

	"regpromo/internal/ir"
	"regpromo/internal/testutil"
)

func TestRemovesDeadArithmetic(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int used;
	int dead;
	used = 3;
	dead = used * 100;   /* never read again after DCE sees through it */
	return used;
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	before := len(fn.Entry.Instrs)
	if n := Func(fn); n == 0 {
		t.Fatalf("nothing removed from %d instructions:\n%s", before, ir.FormatFunc(fn, &m.Tags))
	}
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestRemovesDeadLoads(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	int x;
	x = g;      /* dead load: x is never read */
	return 7;
}
`)
	fn := m.Funcs["main"]
	Func(fn)
	if testutil.CountOps(fn, ir.OpSLoad) != 0 {
		t.Fatalf("dead load survived:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 7 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestKeepsStoresAndCalls(t *testing.T) {
	m := testutil.Compile(t, `
int g;
void effect(void) { g++; }
int main(void) {
	int unused;
	g = 5;          /* store stays */
	effect();       /* call stays */
	unused = g + 1; /* computation goes */
	return g;
}
`)
	fn := m.Funcs["main"]
	Func(fn)
	if testutil.CountOps(fn, ir.OpSStore) == 0 {
		t.Fatal("store removed")
	}
	if testutil.CountOps(fn, ir.OpJsr) == 0 {
		t.Fatal("call removed")
	}
	if res := testutil.Run(t, m); res.Exit != 6 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestTransitiveDeadChains(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int a;
	int b;
	int c;
	a = 1;
	b = a + 2;   /* feeds only c */
	c = b * 3;   /* dead */
	return a;
}
`)
	fn := m.Funcs["main"]
	Func(fn)
	// Only the constant 1 and the return plumbing should remain.
	if n := testutil.CountOps(fn, ir.OpMul); n != 0 {
		t.Fatalf("dead chain kept the multiply:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 1 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestValueUsedAcrossLoopStays(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 5; i++) acc += i;
	return acc;
}
`)
	want := testutil.Run(t, m)
	Run(m)
	got := testutil.MustBehaveLike(t, m, want)
	if got.Exit != 10 {
		t.Fatalf("exit = %d", got.Exit)
	}
}
