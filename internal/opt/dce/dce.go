// Package dce implements dead-code elimination: instructions whose
// results are never used and which have no side effects (stores,
// calls, control flow) are deleted. Dead loads are removed too — a
// load's only observable effect is its result.
package dce

import (
	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
)

// Run eliminates dead code in every function and returns the number
// of instructions removed.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// Func eliminates dead code in one function.
func Func(fn *ir.Func) int {
	removed := 0
	var buf [8]ir.Reg
	for {
		// Sparse mark phase: seed liveness from the operands of
		// side-effecting and control instructions, then drain a
		// register worklist — a register going live revives the pure
		// instructions that define it, which keeps their own operands
		// alive in turn. Same least fixpoint as the old whole-function
		// sweep, without rescanning every instruction per iteration.
		live := make([]bool, fn.NumRegs)
		defs := make([][]*ir.Instr, fn.NumRegs)
		rank := make([]int, fn.NumRegs)
		for i := range rank {
			rank[i] = i
		}
		w := dataflow.NewWorklist(rank)
		mark := func(r ir.Reg) {
			if !live[r] {
				live[r] = true
				w.Push(int(r))
			}
		}
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if isRemovable(in) {
					if d := in.Def(); d != ir.RegInvalid {
						defs[d] = append(defs[d], in)
					}
					continue
				}
				for _, u := range in.Uses(buf[:0]) {
					mark(u)
				}
			}
		}
		for {
			id, ok := w.Pop()
			if !ok {
				break
			}
			for _, in := range defs[id] {
				for _, u := range in.Uses(buf[:0]) {
					mark(u)
				}
			}
		}
		n := sweep(fn, live)
		removed += n
		if n == 0 {
			return removed
		}
	}
}

// isRemovable reports whether the instruction may be deleted when its
// result is dead.
func isRemovable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpSStore, ir.OpPStore, ir.OpJsr, ir.OpBr, ir.OpCBr, ir.OpRet:
		return false
	case ir.OpNop:
		return true
	}
	return true
}

func sweep(fn *ir.Func, live []bool) int {
	n := 0
	for _, b := range fn.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op == ir.OpNop {
				n++
				continue
			}
			if isRemovable(&in) && (in.Def() == ir.RegInvalid || !live[in.Def()]) {
				n++
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return n
}
