// Package dce implements dead-code elimination: instructions whose
// results are never used and which have no side effects (stores,
// calls, control flow) are deleted. Dead loads are removed too — a
// load's only observable effect is its result.
package dce

import "regpromo/internal/ir"

// Run eliminates dead code in every function and returns the number
// of instructions removed.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// Func eliminates dead code in one function.
func Func(fn *ir.Func) int {
	removed := 0
	for {
		live := make([]bool, fn.NumRegs)
		// Seed: registers used by side-effecting or control
		// instructions, then propagate through pure defs until
		// stable.
		var buf [8]ir.Reg
		changed := true
		for changed {
			changed = false
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if !isRemovable(in) || (in.Def() != ir.RegInvalid && live[in.Def()]) {
						for _, u := range in.Uses(buf[:0]) {
							if !live[u] {
								live[u] = true
								changed = true
							}
						}
					}
				}
			}
		}
		n := sweep(fn, live)
		removed += n
		if n == 0 {
			return removed
		}
	}
}

// isRemovable reports whether the instruction may be deleted when its
// result is dead.
func isRemovable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpSStore, ir.OpPStore, ir.OpJsr, ir.OpBr, ir.OpCBr, ir.OpRet:
		return false
	case ir.OpNop:
		return true
	}
	return true
}

func sweep(fn *ir.Func, live []bool) int {
	n := 0
	for _, b := range fn.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op == ir.OpNop {
				n++
				continue
			}
			if isRemovable(&in) && (in.Def() == ir.RegInvalid || !live[in.Def()]) {
				n++
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return n
}
