// Package clean implements the basic-block cleaning pass the paper's
// pipeline ends with (§5): folding conditional branches with identical
// targets, removing empty forwarding blocks, merging blocks with their
// unique successors, and deleting unreachable code.
package clean

import "regpromo/internal/ir"

// Run cleans every function and returns the number of blocks removed.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// Func cleans one function's CFG.
func Func(fn *ir.Func) int {
	before := len(fn.Blocks)
	for {
		changed := false
		fn.RemoveUnreachable()

		for _, b := range fn.Blocks {
			// cbr with both edges to the same target becomes br.
			if term := b.Terminator(); term != nil && term.Op == ir.OpCBr &&
				len(b.Succs) == 2 && b.Succs[0] == b.Succs[1] {
				t := b.Succs[0]
				*term = ir.Instr{Op: ir.OpBr}
				b.Succs = b.Succs[:1]
				// Drop one duplicate pred entry.
				t.Preds = removeOne(t.Preds, b)
				changed = true
			}
		}

		// Forward empty blocks: a block containing only "br X" can be
		// bypassed, except self-loops.
		for _, b := range fn.Blocks {
			if b == fn.Entry || len(b.Instrs) != 1 || b.Instrs[0].Op != ir.OpBr {
				continue
			}
			target := b.Succs[0]
			if target == b {
				continue
			}
			for _, p := range append([]*ir.Block(nil), b.Preds...) {
				// Avoid creating a duplicate edge p→target when p
				// already branches there via a cbr: that is legal
				// (cbr both-arms), handled above next round.
				p.ReplaceSucc(b, target)
				changed = true
			}
		}
		fn.RemoveUnreachable()

		// Merge a block with its unique successor when the successor
		// has exactly one predecessor.
		for _, b := range fn.Blocks {
			for {
				term := b.Terminator()
				if term == nil || term.Op != ir.OpBr || len(b.Succs) != 1 {
					break
				}
				s := b.Succs[0]
				if s == b || len(s.Preds) != 1 || s == fn.Entry {
					break
				}
				// Splice s into b.
				b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
				b.Succs = nil
				for _, t := range s.Succs {
					t.Preds = removeOne(t.Preds, s)
					ir.AddEdge(b, t)
				}
				s.Succs = nil
				s.Preds = nil
				s.Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}} // keep verifiable until removed
				changed = true
			}
		}
		fn.RemoveUnreachable()

		if !changed {
			break
		}
	}
	return before - len(fn.Blocks)
}

func removeOne(list []*ir.Block, b *ir.Block) []*ir.Block {
	for i, x := range list {
		if x == b {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
