package clean

import (
	"testing"

	"regpromo/internal/ir"
	"regpromo/internal/testutil"
)

func TestMergesStraightLine(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int a;
	a = 1;
	a = a + 1;
	a = a * 3;
	return a;
}
`)
	fn := m.Funcs["main"]
	Func(fn)
	if len(fn.Blocks) != 1 {
		t.Fatalf("straight-line code should be one block, got %d:\n%s",
			len(fn.Blocks), ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 6 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestRemovesForwardingBlocks(t *testing.T) {
	// Empty if-arms become forwarding blocks ("br join" only) that
	// clean bypasses and removes.
	m := testutil.Compile(t, `
int main(void) {
	int a;
	a = 3;
	if (a > 1) {
		if (a > 2) { }
	}
	return a;
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	before := len(fn.Blocks)
	Func(fn)
	if len(fn.Blocks) >= before {
		t.Fatalf("no blocks removed: %d -> %d", before, len(fn.Blocks))
	}
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestLoopsSurviveCleaning(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) s += i;
	}
	while (s > 25) s--;
	return s;
}
`)
	want := testutil.Run(t, m)
	Run(m)
	testutil.VerifyAll(t, m)
	got := testutil.MustBehaveLike(t, m, want)
	if got.Exit != 20 {
		t.Fatalf("exit = %d", got.Exit)
	}
}

func TestFoldsSameTargetCbr(t *testing.T) {
	// Build a function with a cbr whose arms match.
	m := ir.NewModule()
	fn := &ir.Func{Name: "main"}
	entry := fn.NewBlock("")
	target := fn.NewBlock("")
	fn.Entry = entry
	cond := fn.NewReg()
	entry.Instrs = []ir.Instr{
		{Op: ir.OpLoadI, Dst: cond, Imm: 1},
		{Op: ir.OpCBr, A: cond},
	}
	ir.AddEdge(entry, target)
	ir.AddEdge(entry, target)
	target.Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}}
	fn.HasVarRet = false
	m.AddFunc(fn)
	Func(fn)
	if err := ir.VerifyFunc(fn, &m.Tags); err != nil {
		t.Fatal(err)
	}
	// After folding and merging there is one block ending in ret.
	if len(fn.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(fn.Blocks))
	}
	if term := fn.Blocks[0].Terminator(); term == nil || term.Op != ir.OpRet {
		t.Fatal("expected a single ret block")
	}
}

func TestInfiniteLoopSafe(t *testing.T) {
	// A self-loop of a forwarding block must not hang clean. Build
	// br-to-self directly (unreachable after entry returns).
	m := testutil.Compile(t, `
int main(void) {
	int n;
	n = 3;
	while (n > 0) { n--; }
	return n;
}
`)
	want := testutil.Run(t, m)
	Run(m)
	testutil.MustBehaveLike(t, m, want)
}
