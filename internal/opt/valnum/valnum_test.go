package valnum

import (
	"testing"

	"regpromo/internal/ir"
	"regpromo/internal/testutil"
)

func TestRedundantComputationBecomesCopy(t *testing.T) {
	const src = `
int f(int a, int b) {
	int x;
	int y;
	x = a + b;
	y = a + b;
	return x * y;
}
int main(void) { return f(3, 4) & 127; }
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	n := Run(m)
	if n == 0 {
		t.Fatal("expected a CSE hit")
	}
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestConstantFolding(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int x;
	x = 3 * 4 + 2;
	return x;
}
`)
	Run(m)
	res := testutil.Run(t, m)
	if res.Exit != 14 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestCommutativityMatches(t *testing.T) {
	m := testutil.Compile(t, `
int f(int a, int b) {
	int x;
	int y;
	x = a + b;
	y = b + a;
	return x - y;
}
int main(void) { return f(5, 9); }
`)
	if n := Run(m); n == 0 {
		t.Fatal("a+b and b+a must value-number together")
	}
	if res := testutil.Run(t, m); res.Exit != 0 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestRedundantLoadRemovedWithinBlock(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	int a;
	int b;
	a = g;
	b = g;
	return a + b;
}
`)
	fn := m.Funcs["main"]
	before := testutil.CountOps(fn, ir.OpSLoad)
	Run(m)
	after := testutil.CountOps(fn, ir.OpSLoad)
	if after >= before {
		t.Fatalf("loads %d -> %d: second load of g should become a copy", before, after)
	}
}

func TestStoreForwardsToLoad(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	int a;
	g = 7;
	a = g;
	return a;
}
`)
	fn := m.Funcs["main"]
	Run(m)
	if testutil.CountOps(fn, ir.OpSLoad) != 0 {
		t.Fatalf("load after store of same tag should forward:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 7 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestCallKillsMemoryFacts(t *testing.T) {
	m := testutil.Compile(t, `
int g;
void bump(void) { g++; }
int main(void) {
	int a;
	int b;
	a = g;
	bump();
	b = g;
	return a * 10 + b;
}
`)
	fn := m.Funcs["main"]
	before := testutil.CountOps(fn, ir.OpSLoad)
	Run(m)
	after := testutil.CountOps(fn, ir.OpSLoad)
	if after != before {
		t.Fatalf("loads across a clobbering call must stay: %d -> %d", before, after)
	}
	if res := testutil.Run(t, m); res.Exit != 1 {
		t.Fatalf("exit = %d, want 01", res.Exit)
	}
}

func TestPointerStoreKillsOnlyItsTags(t *testing.T) {
	m := testutil.Compile(t, `
int safe;
int arr[4];
int main(void) {
	int a;
	int b;
	int *p;
	p = &arr[1];
	a = safe;
	*p = 9;
	b = safe;     /* safe cannot alias arr: load is redundant */
	return a + b + arr[1];
}
`)
	fn := m.Funcs["main"]
	Run(m)
	// After numbering, only the initial load of safe remains.
	loads := 0
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpSLoad && m.Tags.Get(in.Tag).Name == "safe" {
				loads++
			}
		}
	}
	if loads != 1 {
		t.Fatalf("safe loaded %d times, want 1:\n%s", loads, ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 9 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestRedefinitionInvalidatesFacts(t *testing.T) {
	// The register holding a CSE'd value is redefined between the
	// two computations: the second must NOT reuse it.
	m := testutil.Compile(t, `
int main(void) {
	int a;
	int x;
	a = 5;
	x = a + 1;     /* x = 6 */
	x = x + 1;     /* x = 7, redefines the holder */
	x = a + 1;     /* must recompute: 6, not stale */
	return x;
}
`)
	want := testutil.Run(t, m)
	if want.Exit != 6 {
		t.Fatalf("reference exit = %d", want.Exit)
	}
	m2 := testutil.Compile(t, `
int main(void) {
	int a;
	int x;
	a = 5;
	x = a + 1;
	x = x + 1;
	x = a + 1;
	return x;
}
`)
	Run(m2)
	testutil.MustBehaveLike(t, m2, want)
}

func TestDuplicateConstantsShareValueNumbers(t *testing.T) {
	m := testutil.Compile(t, `
int arr[16];
int main(void) {
	int i;
	arr[4] = 1;
	i = arr[4];
	return i + arr[4];
}
`)
	// The two arr[4] address computations use two loadI 4 constants;
	// after numbering both address chains collapse.
	fn := m.Funcs["main"]
	Run(m)
	adds := testutil.CountOps(fn, ir.OpAdd)
	// One address add shared by the three accesses (plus the final +).
	if adds > 3 {
		t.Fatalf("address computations did not collapse, %d adds:\n%s",
			adds, ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 2 {
		t.Fatalf("exit = %d", res.Exit)
	}
}
