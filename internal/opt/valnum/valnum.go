// Package valnum implements local value numbering with constant
// folding. Within each basic block, pure computations that repeat an
// earlier computation are replaced by register copies, constant
// operands fold at compile time, and memory-aware numbering removes
// loads that repeat an earlier load or store of the same tag when no
// intervening operation can have changed the location — the tag lists
// make that query exact.
package valnum

import (
	"fmt"
	"math"

	"regpromo/internal/ir"
)

// Run value-numbers every block of every function; it returns the
// number of instructions simplified.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// Func value-numbers one function.
func Func(fn *ir.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		n += block(fn, b)
	}
	return n
}

type valnumState struct {
	// vn maps a register to its value number.
	vn map[ir.Reg]int
	// leader maps a value number to the first register that held it,
	// for operand canonicalization: rewriting operands to the leader
	// turns copy chains into direct uses, which both exposes more
	// matches here and lets pointer-based promotion see one base
	// register per address (§3.3).
	leader map[int]exprVal
	// expr maps an expression key to (value number, holding reg).
	expr map[string]exprVal
	// constOf maps a value number to a known integer constant.
	constOf map[int]int64
	isConst map[int]bool
	// constVN gives every distinct constant one value number, so
	// repeated loadI of the same literal share a class (and operand
	// canonicalization then drops the duplicates).
	constVN  map[int64]int
	fconstVN map[uint64]int
	// memVal maps a tag to the register holding its current value
	// (established by a load or store in this block).
	memVal map[ir.TagID]memFact
	next   int
}

type exprVal struct {
	vn  int
	reg ir.Reg
}

// memFact records which register holds a tag's current value and the
// access width that established it.
type memFact struct {
	exprVal
	size int
}

// valid reports whether the recorded holding register still carries
// the recorded value. Registers are not in SSA form, so a later
// redefinition changes the register's value number and invalidates
// the fact.
func (s *valnumState) valid(e exprVal) bool { return s.vn[e.reg] == e.vn }

// lookup returns the live table entry for key, if any.
func (s *valnumState) lookup(key string) (exprVal, bool) {
	e, ok := s.expr[key]
	if !ok || !s.valid(e) {
		return exprVal{}, false
	}
	return e, true
}

// record stores a table entry for key held in reg.
func (s *valnumState) record(key string, reg ir.Reg, vn int) {
	s.expr[key] = exprVal{vn: vn, reg: reg}
}

func (s *valnumState) valueOf(r ir.Reg) int {
	if v, ok := s.vn[r]; ok {
		return v
	}
	s.next++
	s.vn[r] = s.next
	return s.next
}

// defConst records that r now holds the integer constant c, reusing
// the constant's existing value class when a live leader holds it.
func (s *valnumState) defConst(r ir.Reg, c int64) {
	if v, ok := s.constVN[c]; ok {
		if l, has := s.leader[v]; has && s.valid(l) {
			s.vn[r] = v
			return
		}
	}
	v := s.fresh(r)
	s.constOf[v] = c
	s.isConst[v] = true
	s.constVN[c] = v
}

func (s *valnumState) fresh(r ir.Reg) int {
	s.next++
	s.vn[r] = s.next
	s.leader[s.next] = exprVal{vn: s.next, reg: r}
	return s.next
}

func block(fn *ir.Func, b *ir.Block) int {
	s := &valnumState{
		vn:       make(map[ir.Reg]int),
		leader:   make(map[int]exprVal),
		expr:     make(map[string]exprVal),
		constOf:  make(map[int]int64),
		isConst:  make(map[int]bool),
		constVN:  make(map[int64]int),
		fconstVN: make(map[uint64]int),
		memVal:   make(map[ir.TagID]memFact),
	}
	changed := 0
	for i := range b.Instrs {
		in := &b.Instrs[i]
		// Canonicalize operands to their value leaders first, so a
		// register defined by a copy reads as the copied-from value.
		in.MapUses(func(u ir.Reg) ir.Reg {
			v, known := s.vn[u]
			if !known {
				return u
			}
			if l, ok := s.leader[v]; ok && s.valid(l) && l.reg != u {
				changed++
				return l.reg
			}
			return u
		})
		switch in.Op {
		case ir.OpLoadI:
			s.defConst(in.Dst, in.Imm)

		case ir.OpLoadF:
			bits := math.Float64bits(in.FImm)
			if v, ok := s.fconstVN[bits]; ok {
				if l, has := s.leader[v]; has && s.valid(l) {
					s.vn[in.Dst] = v
					continue
				}
			}
			v := s.fresh(in.Dst)
			s.fconstVN[bits] = v

		case ir.OpCopy:
			// The destination takes the source's value number, so
			// later expressions see through copies.
			s.vn[in.Dst] = s.valueOf(in.A)

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
			ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
			va, vb := s.valueOf(in.A), s.valueOf(in.B)
			// Constant folding.
			if s.isConst[va] && s.isConst[vb] {
				if c, ok := foldInt(in.Op, s.constOf[va], s.constOf[vb]); ok {
					*in = ir.Instr{Op: ir.OpLoadI, Dst: in.Dst, Imm: c}
					s.defConst(in.Dst, c)
					changed++
					continue
				}
			}
			if in.Op.IsCommutative() && vb < va {
				va, vb = vb, va
			}
			key := fmt.Sprintf("%d:%d:%d", in.Op, va, vb)
			if prev, ok := s.lookup(key); ok {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: prev.reg}
				s.vn[in.Dst] = prev.vn
				changed++
				continue
			}
			v := s.fresh(in.Dst)
			s.record(key, in.Dst, v)

		case ir.OpNeg, ir.OpNot, ir.OpI2F, ir.OpF2I, ir.OpFNeg:
			va := s.valueOf(in.A)
			if in.Op == ir.OpNeg && s.isConst[va] {
				c := -s.constOf[va]
				*in = ir.Instr{Op: ir.OpLoadI, Dst: in.Dst, Imm: c}
				s.defConst(in.Dst, c)
				changed++
				continue
			}
			key := fmt.Sprintf("%d:%d", in.Op, va)
			if prev, ok := s.lookup(key); ok {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: prev.reg}
				s.vn[in.Dst] = prev.vn
				changed++
				continue
			}
			v := s.fresh(in.Dst)
			s.record(key, in.Dst, v)

		case ir.OpAddrOf:
			key := "addr:" + in.Callee + fmt.Sprintf(":%d", in.Tag)
			if prev, ok := s.lookup(key); ok {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: prev.reg}
				s.vn[in.Dst] = prev.vn
				changed++
				continue
			}
			v := s.fresh(in.Dst)
			s.record(key, in.Dst, v)

		case ir.OpSLoad, ir.OpCLoad:
			if prev, ok := s.memVal[in.Tag]; ok && prev.size == in.Size && s.valid(prev.exprVal) {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: prev.reg}
				s.vn[in.Dst] = prev.vn
				changed++
				continue
			}
			v := s.fresh(in.Dst)
			s.memVal[in.Tag] = memFact{exprVal{vn: v, reg: in.Dst}, in.Size}

		case ir.OpSStore:
			// The store establishes the tag's current value. Any
			// other tag a pointer may alias is unaffected: scalar
			// stores name exactly one location.
			s.memVal[in.Tag] = memFact{exprVal{vn: s.valueOf(in.A), reg: in.A}, in.Size}

		case ir.OpPLoad:
			s.fresh(in.Dst)

		case ir.OpPStore:
			// Kill facts for every tag the store may touch.
			s.killTags(in.Tags)

		case ir.OpJsr:
			if in.Def() != ir.RegInvalid {
				s.fresh(in.Dst)
			}
			s.killTags(in.Mods)

		default:
			if d := in.Def(); d != ir.RegInvalid {
				s.fresh(d)
			}
		}
	}
	return changed
}

func (s *valnumState) killTags(tags ir.TagSet) {
	if tags.IsTop() {
		s.memVal = make(map[ir.TagID]memFact)
		return
	}
	tags.ForEach(func(t ir.TagID) {
		delete(s.memVal, t)
	})
}

// foldInt evaluates op on two constants when defined.
func foldInt(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return a >> (uint64(b) & 63), true
	case ir.OpCmpEQ:
		return b2i(a == b), true
	case ir.OpCmpNE:
		return b2i(a != b), true
	case ir.OpCmpLT:
		return b2i(a < b), true
	case ir.OpCmpLE:
		return b2i(a <= b), true
	case ir.OpCmpGT:
		return b2i(a > b), true
	case ir.OpCmpGE:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
