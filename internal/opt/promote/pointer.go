package promote

import (
	"sort"

	"regpromo/internal/cfg"
	"regpromo/internal/ir"
)

// promotePointer implements §3.3: it finds memory references whose
// base (address) register is invariant in a loop and where the only
// accesses in the loop to the tags those references may touch are
// through that same invariant base register, then promotes the
// referenced cell into a register using the same lift/copy/demote
// rewriting as scalar promotion.
//
// Loop-invariant code motion is expected to have hoisted the address
// computations out of the loop already (the paper notes the algorithm
// "relies on loop-invariant code motion to identify the loop-invariant
// base registers"); here invariance is checked directly: the base
// register has no definition inside the loop.
func promotePointer(m *ir.Module, fn *ir.Func, forest *cfg.LoopForest, opts Options) Stats {
	var stats Stats
	for _, l := range forest.PreorderLoops() {
		stats.Add(promotePointerInLoop(fn, l, opts))
	}
	return stats
}

// group is one promotion candidate: all pointer ops in the loop using
// the same base register and access width.
type group struct {
	base   ir.Reg
	size   int
	tags   ir.TagSet
	ops    []*ir.Instr
	stored bool
	bad    bool
}

func promotePointerInLoop(fn *ir.Func, l *cfg.Loop, opts Options) Stats {
	var stats Stats

	// Registers defined inside the loop are not invariant.
	defined := make(map[ir.Reg]bool)
	for b := range l.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.RegInvalid {
				defined[d] = true
			}
		}
	}

	// Group pointer ops by invariant base register. Iterate blocks
	// in id order so group discovery (and therefore pad-load order)
	// is deterministic.
	groups := make(map[ir.Reg]*group)
	var order []ir.Reg
	for _, b := range l.BlocksInOrder() {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpPLoad && in.Op != ir.OpPStore {
				continue
			}
			base := in.A
			if defined[base] {
				continue
			}
			g := groups[base]
			if g == nil {
				g = &group{base: base, size: in.Size}
				groups[base] = g
				order = append(order, base)
			}
			if in.Size != g.size {
				g.bad = true
				continue
			}
			g.tags = g.tags.Union(in.Tags)
			g.ops = append(g.ops, in)
			if in.Op == ir.OpPStore {
				g.stored = true
			}
		}
	}
	if len(groups) == 0 {
		return stats
	}

	// Disqualify groups whose tags any other access in the loop can
	// reach: explicit scalar ops, calls, pointer ops with a
	// different (or non-invariant) base.
	for _, b := range l.BlocksInOrder() {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			var touches ir.TagSet
			var owner *group
			switch in.Op {
			case ir.OpSLoad, ir.OpCLoad, ir.OpSStore:
				touches = ir.NewTagSet(in.Tag)
			case ir.OpPLoad, ir.OpPStore:
				touches = in.Tags
				if !defined[in.A] {
					owner = groups[in.A]
				}
			case ir.OpJsr:
				touches = in.Mods.Union(in.Refs)
			default:
				continue
			}
			for _, base := range order {
				g := groups[base]
				if g == owner {
					continue
				}
				if touches.IsTop() || touches.Intersects(g.tags) {
					g.bad = true
				}
			}
		}
	}

	// A pStore through a base register whose value could equal
	// another group's base would alias; conservatively, any two
	// groups with intersecting tag sets disqualify each other.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			a, b := groups[order[i]], groups[order[j]]
			if a.tags.Intersects(b.tags) {
				a.bad = true
				b.bad = true
			}
		}
	}

	for _, base := range order {
		g := groups[base]
		if g.bad || len(g.ops) == 0 || g.tags.IsTop() || g.tags.IsEmpty() {
			continue
		}
		// The base register must be available at the landing pad:
		// with a single definition outside the loop this holds
		// whenever the program ever enters the loop. Conservatively
		// require the pad to be dominated by... the base has no def
		// in the loop and every use in the loop sees the same value
		// that reached the pad, so the pad load reads the same cell
		// the first iteration would.
		v := fn.NewReg()
		calls := collectCallFacts(l)
		insertBeforeTerminator(l.Pad, ir.Instr{Op: ir.OpPLoad, Dst: v, A: base, Tags: g.tags, Size: g.size, Synth: true})
		stats.LoadsInserted++
		demoted := !opts.SkipUnwrittenStores || g.stored
		if demoted {
			for _, x := range l.Exits {
				insertAtHead(x, ir.Instr{Op: ir.OpPStore, A: base, B: v, Tags: g.tags, Size: g.size, Synth: true})
				stats.StoresInserted++
			}
		}
		body := l.BlocksInOrder()
		stats.Regions = append(stats.Regions, Region{
			Func:        fn.Name,
			Tag:         ir.TagInvalid,
			Tags:        g.tags,
			Body:        body,
			Pad:         l.Pad,
			Exits:       append([]*ir.Block(nil), l.Exits...),
			Size:        g.size,
			Stored:      g.stored,
			Demoted:     demoted,
			PromotedReg: v,
			Calls:       calls,
		})
		for _, in := range g.ops {
			if in.Op == ir.OpPLoad {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: v}
			} else {
				*in = ir.Instr{Op: ir.OpCopy, Dst: v, A: in.B}
			}
			stats.RefsRewritten++
		}
		stats.PointerPromotions++
	}
	return stats
}
