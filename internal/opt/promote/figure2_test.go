package promote

import (
	"testing"

	"regpromo/internal/cfg"
	"regpromo/internal/ir"
)

// buildFigure2 constructs the paper's Figure 2 example: a triply
// nested loop over tags A, B, C.
//
//	B0:  (pad of outer loop)
//	B1:  sStore [C] r0 ; jsr mod/ref {A}    — outer header
//	B2:  (pad of middle loop)
//	B3:  sStore [B] r2                      — middle header
//	B4:  jsr ref {B}                        — pad of inner loop
//	B5:  sLoad [A] -> r3                    — inner header
//	B6:  cbr -> B5 | B7                     — inner latch
//	B7:  cbr -> B3 | B8                     — middle latch
//	B8:  cbr -> B1 | B9                     — middle exit, outer latch
//	B9:  sStore [C] rc' ... ret             — outer exit
//
// Expected (paper §3.2): A promotable in the two inner loops, lifted
// around the middle loop (load in B4's... in B2, store in B8); B never
// promotable; C promotable in the outer loop (load in B0, store in B9).
func buildFigure2(t *testing.T) (*ir.Module, *ir.Func, map[string]ir.TagID) {
	t.Helper()
	m := ir.NewModule()
	a := m.Tags.NewTag("A", ir.TagGlobal, "", 8, 8)
	b := m.Tags.NewTag("B", ir.TagGlobal, "", 8, 8)
	c := m.Tags.NewTag("C", ir.TagGlobal, "", 8, 8)
	a.Strong, b.Strong, c.Strong = true, true, true

	fn := &ir.Func{Name: "fig2"}
	blocks := make([]*ir.Block, 10)
	for i := range blocks {
		blocks[i] = fn.NewBlock("")
	}
	fn.Entry = blocks[0]
	r0 := fn.NewReg()
	r2 := fn.NewReg()
	r3 := fn.NewReg()
	cond := fn.NewReg()

	setSuccs := func(i int, succs ...int) {
		for _, s := range succs {
			ir.AddEdge(blocks[i], blocks[s])
		}
	}
	br := ir.Instr{Op: ir.OpBr}
	cbr := ir.Instr{Op: ir.OpCBr, A: cond}

	blocks[0].Instrs = []ir.Instr{br}
	setSuccs(0, 1)
	blocks[1].Instrs = []ir.Instr{
		{Op: ir.OpSStore, Tag: c.ID, A: r0, Size: 8},
		{Op: ir.OpJsr, Callee: "ext", Dst: ir.RegInvalid,
			Mods: ir.NewTagSet(a.ID), Refs: ir.NewTagSet(a.ID)},
		br,
	}
	setSuccs(1, 2)
	blocks[2].Instrs = []ir.Instr{br}
	setSuccs(2, 3)
	blocks[3].Instrs = []ir.Instr{
		{Op: ir.OpSStore, Tag: b.ID, A: r2, Size: 8},
		br,
	}
	setSuccs(3, 4)
	blocks[4].Instrs = []ir.Instr{
		{Op: ir.OpJsr, Callee: "ext2", Dst: ir.RegInvalid,
			Mods: ir.TagSet{}, Refs: ir.NewTagSet(b.ID)},
		br,
	}
	setSuccs(4, 5)
	blocks[5].Instrs = []ir.Instr{
		{Op: ir.OpSLoad, Tag: a.ID, Dst: r3, Size: 8},
		br,
	}
	setSuccs(5, 6)
	blocks[6].Instrs = []ir.Instr{cbr}
	setSuccs(6, 5, 7)
	blocks[7].Instrs = []ir.Instr{cbr}
	setSuccs(7, 3, 8)
	blocks[8].Instrs = []ir.Instr{cbr}
	setSuccs(8, 1, 9)
	blocks[9].Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}}

	if err := ir.VerifyFunc(fn, &m.Tags); err != nil {
		t.Fatal(err)
	}
	return m, fn, map[string]ir.TagID{"A": a.ID, "B": b.ID, "C": c.ID}
}

func TestFigure2EquationSets(t *testing.T) {
	m, fn, tags := buildFigure2(t)
	_, forest := cfg.Normalize(fn)
	if len(forest.Loops) != 3 {
		t.Fatalf("want 3 loops, got %d", len(forest.Loops))
	}
	info := AnalyzeFunc(m, fn, forest)

	// Identify loops by nesting depth.
	var outer, middle, inner *cfg.Loop
	for _, l := range forest.Loops {
		switch l.Depth {
		case 1:
			outer = l
		case 2:
			middle = l
		case 3:
			inner = l
		}
	}
	if outer == nil || middle == nil || inner == nil {
		t.Fatal("missing loop depths")
	}

	A, B, C := tags["A"], tags["B"], tags["C"]

	o := info.ByLoop[outer]
	if !o.Explicit.Has(A) || !o.Explicit.Has(B) || !o.Explicit.Has(C) {
		t.Fatalf("outer explicit = %s", o.Explicit.Format(&m.Tags))
	}
	if !o.Ambiguous.Has(A) || !o.Ambiguous.Has(B) || o.Ambiguous.Has(C) {
		t.Fatalf("outer ambiguous = %s", o.Ambiguous.Format(&m.Tags))
	}
	if !o.Promotable.Equal(ir.NewTagSet(C)) {
		t.Fatalf("outer promotable = %s, want {C}", o.Promotable.Format(&m.Tags))
	}
	if !o.Lift.Equal(ir.NewTagSet(C)) {
		t.Fatalf("outer lift = %s, want {C}", o.Lift.Format(&m.Tags))
	}

	mi := info.ByLoop[middle]
	if !mi.Promotable.Equal(ir.NewTagSet(A)) {
		t.Fatalf("middle promotable = %s, want {A}", mi.Promotable.Format(&m.Tags))
	}
	if !mi.Lift.Equal(ir.NewTagSet(A)) {
		t.Fatalf("middle lift = %s, want {A}", mi.Lift.Format(&m.Tags))
	}

	in := info.ByLoop[inner]
	if !in.Promotable.Equal(ir.NewTagSet(A)) {
		t.Fatalf("inner promotable = %s, want {A}", in.Promotable.Format(&m.Tags))
	}
	// Equation (4): A already promotable in the parent, so the inner
	// loop lifts nothing.
	if !in.Lift.IsEmpty() {
		t.Fatalf("inner lift = %s, want {}", in.Lift.Format(&m.Tags))
	}
}

func TestFigure2Rewrite(t *testing.T) {
	m, fn, tags := buildFigure2(t)
	stats := Func(m, fn, Options{})
	if stats.ScalarPromotions != 2 {
		t.Fatalf("want 2 promotions (A around middle, C around outer), got %d", stats.ScalarPromotions)
	}
	if err := ir.VerifyFunc(fn, &m.Tags); err != nil {
		t.Fatal(err)
	}

	A, B, C := tags["A"], tags["B"], tags["C"]
	// Count remaining explicit memory references per tag.
	refs := map[ir.TagID][]ir.Op{}
	_, forest := cfg.Normalize(fn)
	depthOf := func(b *ir.Block) int { return forest.Depth(b) }
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpSLoad || in.Op == ir.OpSStore {
				refs[in.Tag] = append(refs[in.Tag], in.Op)
				switch in.Tag {
				case A:
					// A's remaining ops are the lifted load/store:
					// both must sit at outer-loop depth (inside B1's
					// loop, outside the middle loop).
					if d := depthOf(b); d != 1 {
						t.Fatalf("A's lifted op at depth %d, want 1", d)
					}
				case C:
					if d := depthOf(b); d != 0 {
						t.Fatalf("C's lifted op at depth %d, want 0", d)
					}
				}
			}
		}
	}
	// A: one lifted load + one lifted store; original sLoad became a copy.
	if len(refs[A]) != 2 {
		t.Fatalf("A refs = %v, want [load store]", refs[A])
	}
	// B: untouched single store.
	if len(refs[B]) != 1 || refs[B][0] != ir.OpSStore {
		t.Fatalf("B refs = %v", refs[B])
	}
	// C: one lifted load + one lifted store outside the loop nest.
	if len(refs[C]) != 2 {
		t.Fatalf("C refs = %v", refs[C])
	}
}
