package promote

import (
	"sort"

	"regpromo/internal/cfg"
	"regpromo/internal/ir"
)

// Throttling implements the §3.4 direction the paper takes from Carr:
// "beyond some point, the memory accesses removed by the
// transformation were balanced by the spills added during register
// allocation. He adopted a bin-packing discipline to throttle the
// promotion process. As we extend our work, we will undoubtedly
// encounter the same problem and need a similar solution."
//
// The discipline here is a simple bin-packer: each loop gets a budget
// of registers (the machine supply minus an estimate of the loop's
// existing register demand minus a safety margin); lifted tags are
// ranked by their static reference count inside the loop, and only as
// many as fit the budget are promoted.

// pressureMargin reserves registers for loop control, address
// arithmetic, and scratch values the estimate cannot see.
const pressureMargin = 4

// estimateLoopDemand approximates how many registers the loop already
// needs: registers live across the loop boundary (defined outside,
// used inside, or defined inside and used outside) plus the widest
// single block's definition count as a scratch proxy.
func estimateLoopDemand(fn *ir.Func, l *cfg.Loop) int {
	definedIn := make(map[ir.Reg]bool)
	usedIn := make(map[ir.Reg]bool)
	var buf [8]ir.Reg
	for b := range l.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.RegInvalid {
				definedIn[d] = true
			}
			for _, u := range in.Uses(buf[:0]) {
				usedIn[u] = true
			}
		}
	}
	demand := 0
	for _, b := range fn.Blocks {
		if l.Blocks[b] {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.RegInvalid && usedIn[d] && !definedIn[d] {
				demand++ // flows into the loop
				usedIn[d] = false
			}
			for _, u := range in.Uses(buf[:0]) {
				if definedIn[u] {
					demand++ // flows out of the loop
					definedIn[u] = false
				}
			}
		}
	}
	return demand
}

// refCount counts the scalar references to tag inside l (the ranking
// key for the bin-packer: more references, more benefit).
func refCount(l *cfg.Loop, tag ir.TagID) int {
	n := 0
	for b := range l.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpSLoad, ir.OpCLoad, ir.OpSStore:
				if in.Tag == tag {
					n++
				}
			}
		}
	}
	return n
}

// throttleLift shrinks a loop's lift set to its register budget,
// keeping the most-referenced tags. A zero or negative budget
// suppresses promotion in the loop entirely.
func throttleLift(fn *ir.Func, l *cfg.Loop, lift ir.TagSet, limit int) ir.TagSet {
	if limit <= 0 || lift.IsEmpty() {
		return lift
	}
	budget := limit - estimateLoopDemand(fn, l) - pressureMargin
	if budget >= lift.Len() {
		return lift
	}
	if budget <= 0 {
		return ir.TagSet{}
	}
	ids := append([]ir.TagID(nil), lift.IDs()...)
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := refCount(l, ids[i]), refCount(l, ids[j])
		if ci != cj {
			return ci > cj
		}
		return ids[i] < ids[j]
	})
	return ir.NewTagSet(ids[:budget]...)
}
