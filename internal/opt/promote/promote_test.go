package promote

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regpromo/internal/cfg"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/opt/licm"
	"regpromo/internal/testgen"
	"regpromo/internal/testutil"
)

func TestScalarPromotionMovesTraffic(t *testing.T) {
	src := `
int g;
int main(void) {
	int i;
	for (i = 0; i < 200; i++) g += i;
	print_int(g);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	st := Run(m, Options{})
	if st.ScalarPromotions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	testutil.VerifyAll(t, m)
	got := testutil.MustBehaveLike(t, m, want)
	if got.Counts.Stores >= want.Counts.Stores {
		t.Fatalf("stores %d -> %d", want.Counts.Stores, got.Counts.Stores)
	}
}

func TestAmbiguousReferencesBlockPromotion(t *testing.T) {
	// The loop stores through a pointer that may alias g.
	src := `
int g;
int main(void) {
	int i;
	int *p;
	p = &g;
	for (i = 0; i < 10; i++) {
		g += 1;
		*p = g * 2;
	}
	print_int(g);
	return 0;
}
`
	m := testutil.Compile(t, src)
	st := Run(m, Options{})
	if st.ScalarPromotions != 0 {
		t.Fatalf("g is aliased in the loop; promotions = %d", st.ScalarPromotions)
	}
}

func TestCallsBlockPromotionOfTouchedTags(t *testing.T) {
	src := `
int touched;
int untouched;
void bump(void) { touched++; }
int main(void) {
	int i;
	for (i = 0; i < 10; i++) {
		touched += i;
		untouched += i;
		bump();
	}
	print_int(touched);
	print_int(untouched);
	return 0;
}
`
	m := testutil.Compile(t, src)
	want := testutil.Run(t, testutil.Compile(t, src))
	st := Run(m, Options{})
	if st.ScalarPromotions != 1 {
		t.Fatalf("only untouched should promote; stats = %+v", st)
	}
	testutil.MustBehaveLike(t, m, want)
}

func TestFigure3PointerPromotion(t *testing.T) {
	// The paper's Figure 3: B[i] accumulated in an inner loop through
	// an invariant base address.
	src := `
int A[8][8];
int B[8];
int main(void) {
	int i;
	int j;
	for (i = 0; i < 8; i++)
		for (j = 0; j < 8; j++)
			A[i][j] = i * 8 + j;
	for (i = 0; i < 8; i++) {
		B[i] = 0;
		for (j = 0; j < 8; j++) {
			B[i] += A[i][j];
		}
	}
	print_int(B[0]);
	print_int(B[7]);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	licm.Run(m) // hoists the invariant base addresses (§3.3 precondition)
	st := Run(m, Options{Pointer: true})
	if st.PointerPromotions == 0 {
		t.Fatalf("B[i] should promote; stats = %+v\n%s",
			st, ir.FormatFunc(m.Funcs["main"], &m.Tags))
	}
	got := testutil.MustBehaveLike(t, m, want)
	if got.Counts.Loads >= want.Counts.Loads {
		t.Fatalf("pointer promotion should remove loads: %d -> %d",
			want.Counts.Loads, got.Counts.Loads)
	}
	if got.Counts.Stores >= want.Counts.Stores {
		t.Fatalf("pointer promotion should remove stores: %d -> %d",
			want.Counts.Stores, got.Counts.Stores)
	}
}

func TestPointerPromotionRespectsConflicts(t *testing.T) {
	// Two different bases into the same array within the loop: no
	// group may promote.
	src := `
int B[8];
int main(void) {
	int i;
	int j;
	for (i = 0; i < 8; i++) {
		for (j = 0; j < 8; j++) {
			B[i] += j;
			B[(i + 1) & 7] ^= j;   /* second access path into B */
		}
	}
	print_int(B[3]);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	licm.Run(m)
	Run(m, Options{Pointer: true})
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestDemotionStoreOptions(t *testing.T) {
	// A tag only read in the loop: the paper's policy still stores at
	// the exit; the refinement skips it.
	src := `
int ro;
int main(void) {
	int i;
	int acc;
	ro = 5;
	acc = 0;
	for (i = 0; i < 10; i++) acc += ro;
	print_int(acc);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))

	faithful := testutil.Compile(t, src)
	Run(faithful, Options{})
	f := testutil.MustBehaveLike(t, faithful, want)

	refined := testutil.Compile(t, src)
	Run(refined, Options{SkipUnwrittenStores: true})
	r := testutil.MustBehaveLike(t, refined, want)

	if r.Counts.Stores >= f.Counts.Stores {
		t.Fatalf("refinement must save the read-only demotion store: %d vs %d",
			f.Counts.Stores, r.Counts.Stores)
	}
}

// TestLiftPartition checks the equation (4) invariant: within any
// loop-nest path from an outermost loop to an innermost one, a tag
// appears in at most one L_LIFT set.
func TestLiftPartition(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := testgen.Program(rng.Int63())
		m := testutil.Compile(t, src)
		for _, fn := range m.FuncsInOrder() {
			_, forest := cfg.Normalize(fn)
			if len(forest.Loops) == 0 {
				continue
			}
			info := AnalyzeFunc(m, fn, forest)
			for _, l := range forest.Loops {
				for anc := l.Parent; anc != nil; anc = anc.Parent {
					both := info.ByLoop[l].Lift.Intersect(info.ByLoop[anc].Lift)
					if !both.IsEmpty() {
						t.Logf("%s: tag lifted twice on a nest path: %s",
							fn.Name, both.Format(&m.Tags))
						return false
					}
				}
				// Lift ⊆ Promotable ⊆ Explicit.
				ls := info.ByLoop[l]
				if !ls.Lift.SubsetOf(ls.Promotable) || !ls.Promotable.SubsetOf(ls.Explicit) {
					return false
				}
				// Promotable ∩ Ambiguous = ∅.
				if ls.Promotable.Intersects(ls.Ambiguous) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPromotionSoundOnRandomPrograms: behaviour is identical with
// promotion on and off (both promotion flavours).
func TestPromotionSoundOnRandomPrograms(t *testing.T) {
	count := 30
	if testing.Short() {
		count = 8
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := testgen.Program(rng.Int63())
		want := testutil.Run(t, testutil.Compile(t, src))
		for _, opts := range []Options{
			{},
			{Pointer: true},
			{SkipUnwrittenStores: true},
			{Pointer: true, SkipUnwrittenStores: true},
		} {
			m := testutil.Compile(t, src)
			licm.Run(m)
			Run(m, opts)
			if err := ir.VerifyModule(m); err != nil {
				t.Logf("invalid IL under %+v: %v", opts, err)
				return false
			}
			got, err := interp.Run(m, interp.Options{})
			if err != nil {
				t.Logf("%v\n%s", err, src)
				return false
			}
			if got.Output != want.Output || got.Exit != want.Exit {
				t.Logf("diverged under %+v\n%s", opts, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTripLoopStaysCorrect(t *testing.T) {
	// Promotion's landing-pad load and exit store execute even when
	// the loop body never runs; the value must round-trip unchanged.
	src := `
int g;
int main(void) {
	int i;
	int n;
	g = 77;
	n = 0;
	for (i = 0; i < n; i++) g = 0;
	print_int(g);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	Run(m, Options{})
	testutil.MustBehaveLike(t, m, want)
}

func TestMultipleExitsGetStores(t *testing.T) {
	src := `
int g;
int main(void) {
	int i;
	for (i = 0; i < 100; i++) {
		g += i;
		if (g > 50) break;   /* second exit */
	}
	print_int(g);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	st := Run(m, Options{})
	if st.ScalarPromotions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StoresInserted < 2 {
		t.Fatalf("both exits need demotion stores, inserted %d", st.StoresInserted)
	}
	testutil.MustBehaveLike(t, m, want)
}
