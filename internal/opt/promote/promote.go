// Package promote implements register promotion, the paper's central
// transformation (§3). Scalar promotion finds, for every loop, the
// tags referenced only by explicit memory operations (equations
// (1)–(3) of Figure 1), lifts a load of each such tag into the landing
// pad of the outermost loop where it is promotable (equation (4)),
// rewrites the loop-body references into register copies, and demotes
// the value with a store in the loop's exit blocks. Pointer-based
// promotion (§3.3) additionally promotes pLoad/pStore references whose
// base register is loop-invariant when no other access in the loop can
// touch the same storage.
package promote

import (
	"fmt"

	"regpromo/internal/cfg"
	"regpromo/internal/ir"
)

// Options selects promotion variants.
type Options struct {
	// Pointer enables §3.3 promotion of loop-invariant-base
	// pointer references.
	Pointer bool

	// SkipUnwrittenStores suppresses the demotion store at loop
	// exits for tags the loop never writes. The paper's compiler
	// always stores on exit (Figure 2 demotes the load-only tag A
	// into B8); leaving this false reproduces that behaviour, while
	// setting it measures the obvious refinement as an ablation.
	SkipUnwrittenStores bool

	// PressureLimit, when positive, bounds promotion per loop with a
	// bin-packing discipline after Carr [3]: each loop may promote
	// only as many tags as fit the register supply once the loop's
	// estimated demand and a safety margin are subtracted (§3.4).
	// Zero disables throttling, reproducing the paper's unthrottled
	// promoter.
	PressureLimit int
}

// Region records one promoted region. It doubles as the region's
// promotion certificate: enough facts for an independent verifier
// (internal/analysis/certify) to re-prove the promotion sound without
// consulting the analyses that justified it. Exactly one of Tag and
// Tags is meaningful: scalar regions name a single tag, §3.3 pointer
// regions carry the group's may-set.
type Region struct {
	// Func is the enclosing function's name.
	Func string
	// Tag is the promoted scalar location; ir.TagInvalid for a
	// pointer region.
	Tag ir.TagID
	// Tags is the may-set of a pointer region; empty for a scalar
	// region.
	Tags ir.TagSet
	// Body holds the loop-body blocks at promotion time. Later passes
	// may merge or delete blocks, so consumers must ignore pointers
	// that are no longer in the function.
	Body []*ir.Block

	// Pad is the landing-pad block that received the lifted load;
	// every path into the region passes through it. Like Body, the
	// pointer may go stale under later CFG edits.
	Pad *ir.Block
	// Exits are the loop-exit blocks that received (or, when Demoted
	// is false, would have received) the demotion store, in block-ID
	// order at promotion time.
	Exits []*ir.Block
	// Size is the access width of the promoted references, in bytes.
	Size int
	// Stored reports whether the loop writes the promoted location
	// (the lift was read-only otherwise).
	Stored bool
	// Demoted reports whether demotion stores were actually inserted
	// at the exits (false only under Options.SkipUnwrittenStores for
	// an unwritten tag).
	Demoted bool
	// PromotedReg is the virtual register the location was promoted
	// into. Register allocation renames it, so it is only meaningful
	// before regalloc — the pressure analysis runs there.
	PromotedReg ir.Reg
	// Calls records the MOD/REF summary facts of every call inside
	// the region body at promotion time — the alias-analysis claims
	// the promotion relied on, in block-ID/instruction order. The
	// certificate verifier re-derives its own conservative summaries
	// and checks these against them.
	Calls []CallFact
}

// CallFact is one region-body call's claimed summary effects, as
// promotion saw them. Block/Index locate the call at promotion time
// (provenance for certificate diagnostics, not a stable pointer).
type CallFact struct {
	// Block is the label of the containing block.
	Block string
	// Index is the call's instruction index within Block.
	Index int
	// Callee names the direct callee; empty for an indirect call.
	Callee string
	// Mods and Refs are the summary effect sets the call carried.
	Mods ir.TagSet
	Refs ir.TagSet
}

// Stats reports what promotion did.
type Stats struct {
	// ScalarPromotions counts (tag, outermost-loop) regions
	// promoted by the scalar algorithm.
	ScalarPromotions int
	// PointerPromotions counts (base, loop) groups promoted by the
	// §3.3 algorithm.
	PointerPromotions int
	// RefsRewritten counts memory operations converted to copies.
	RefsRewritten int
	// LoadsInserted and StoresInserted count the lifted operations.
	LoadsInserted  int
	StoresInserted int

	// Regions lists every promoted region, for the promotion-
	// invariant checker. Excluded from JSON reports: blocks are
	// cyclic graph nodes, and the counts above already summarize the
	// work done.
	Regions []Region `json:"-"`
}

// Counters is the comparable scalar part of Stats (Regions reduced
// to a count), for tests and logs that compare two runs.
type Counters struct {
	ScalarPromotions  int
	PointerPromotions int
	RefsRewritten     int
	LoadsInserted     int
	StoresInserted    int
	Regions           int
}

// Counters summarizes s as a comparable value.
func (s Stats) Counters() Counters {
	return Counters{
		ScalarPromotions:  s.ScalarPromotions,
		PointerPromotions: s.PointerPromotions,
		RefsRewritten:     s.RefsRewritten,
		LoadsInserted:     s.LoadsInserted,
		StoresInserted:    s.StoresInserted,
		Regions:           len(s.Regions),
	}
}

// Add folds another function's statistics into s. The driver's
// parallel middle end accumulates per-function results with it; the
// fold is commutative, so the accumulation order does not matter.
// (Regions may end up in any order; consumers that need determinism
// group them by function.)
func (s *Stats) Add(o Stats) {
	s.ScalarPromotions += o.ScalarPromotions
	s.PointerPromotions += o.PointerPromotions
	s.RefsRewritten += o.RefsRewritten
	s.LoadsInserted += o.LoadsInserted
	s.StoresInserted += o.StoresInserted
	s.Regions = append(s.Regions, o.Regions...)
}

// Run promotes every function in the module.
func Run(m *ir.Module, opts Options) Stats {
	var total Stats
	for _, fn := range m.FuncsInOrder() {
		total.Add(Func(m, fn, opts))
	}
	return total
}

// Func promotes one function.
func Func(m *ir.Module, fn *ir.Func, opts Options) Stats {
	var stats Stats
	_, forest := cfg.Normalize(fn)
	if len(forest.Loops) == 0 {
		return stats
	}
	info := AnalyzeFunc(m, fn, forest)
	stats.Add(rewriteScalar(fn, forest, info, opts))
	if opts.Pointer {
		stats.Add(promotePointer(m, fn, forest, opts))
	}
	return stats
}

// LoopSets holds the Figure 1 sets for one loop.
type LoopSets struct {
	Loop       *cfg.Loop
	Explicit   ir.TagSet // L_EXPLICIT,  equation (1)
	Ambiguous  ir.TagSet // L_AMBIGUOUS, equation (2)
	Promotable ir.TagSet // L_PROMOTABLE, equation (3)
	Lift       ir.TagSet // L_LIFT, equation (4)
	// Stored is the subset of Explicit actually written in the
	// loop; lifted tags not in Stored need no demotion store.
	Stored ir.TagSet
}

// FuncInfo is the promotion analysis result for one function.
type FuncInfo struct {
	// ByLoop maps each loop to its solved equation sets.
	ByLoop map[*cfg.Loop]*LoopSets
	// Disqualified are tags that may never promote in this function
	// (inconsistent access widths).
	Disqualified ir.TagSet
}

// AnalyzeFunc solves the Figure 1 equations over the loop forest
// without rewriting anything.
func AnalyzeFunc(m *ir.Module, fn *ir.Func, forest *cfg.LoopForest) *FuncInfo {
	info := &FuncInfo{ByLoop: make(map[*cfg.Loop]*LoopSets)}

	// Gather the per-block sets (a simple linear pass, §3.1):
	// B_EXPLICIT from scalar operations, B_AMBIGUOUS from calls and
	// pointer-based operations.
	nBlocks := len(fn.Blocks)
	bExplicit := make([]ir.TagSet, nBlocks)
	bAmbiguous := make([]ir.TagSet, nBlocks)
	bStored := make([]ir.TagSet, nBlocks)
	sizeOf := make(map[ir.TagID]int)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpSLoad, ir.OpCLoad, ir.OpSStore:
				bExplicit[b.ID].Add(in.Tag)
				if in.Op == ir.OpSStore {
					bStored[b.ID].Add(in.Tag)
				}
				if prev, seen := sizeOf[in.Tag]; seen && prev != in.Size {
					info.Disqualified.Add(in.Tag)
				} else {
					sizeOf[in.Tag] = in.Size
				}
				if m.Tags.Get(in.Tag).Elem != in.Size {
					info.Disqualified.Add(in.Tag)
				}
			case ir.OpPLoad, ir.OpPStore:
				in.Tags.UnionInto(&bAmbiguous[b.ID])
			case ir.OpJsr:
				in.Mods.UnionInto(&bAmbiguous[b.ID])
				in.Refs.UnionInto(&bAmbiguous[b.ID])
			}
		}
	}

	// Solve per loop, outermost first so equation (4) can subtract
	// the parent's promotable set.
	for _, l := range forest.PreorderLoops() {
		ls := &LoopSets{Loop: l}
		for b := range l.Blocks {
			bExplicit[b.ID].UnionInto(&ls.Explicit)   // (1)
			bAmbiguous[b.ID].UnionInto(&ls.Ambiguous) // (2)
			bStored[b.ID].UnionInto(&ls.Stored)
		}
		ls.Promotable = ls.Explicit.Minus(ls.Ambiguous).Minus(info.Disqualified) // (3)
		if l.Parent == nil {
			ls.Lift = ls.Promotable // (4), outermost case
		} else {
			ls.Lift = ls.Promotable.Minus(info.ByLoop[l.Parent].Promotable) // (4)
		}
		info.ByLoop[l] = ls
	}
	return info
}

// rewriteScalar performs the §3.1 steps 5–6 rewrite: one virtual
// register per lifted (tag, loop) region, loads in the landing pad,
// stores in the exit blocks, references converted to copies.
func rewriteScalar(fn *ir.Func, forest *cfg.LoopForest, info *FuncInfo, opts Options) Stats {
	var stats Stats
	for _, l := range forest.PreorderLoops() {
		ls := info.ByLoop[l]
		lift := throttleLift(fn, l, ls.Lift, opts.PressureLimit)
		ids := lift.IDs()
		if len(ids) == 0 {
			continue
		}
		// Snapshot the call-summary facts the promotion decision
		// relied on before rewriting; the certificate verifier checks
		// them against independently derived summaries.
		calls := collectCallFacts(l)
		for _, tag := range ids {
			v := fn.NewReg()
			size := refSize(fn, l, tag)
			if size == 0 {
				continue // no actual references (cannot happen for Lift members)
			}
			// Promote: load into v before entering the loop.
			insertBeforeTerminator(l.Pad, ir.Instr{Op: ir.OpSLoad, Dst: v, Tag: tag, Size: size, Synth: true})
			stats.LoadsInserted++
			// Demote: store at the loop exits. The store goes at the
			// head of the exit block — the block may already contain
			// post-loop code that reads the tag from memory. The
			// paper always demotes; the refinement skips tags the
			// loop never writes.
			demoted := !opts.SkipUnwrittenStores || ls.Stored.Has(tag)
			if demoted {
				for _, x := range l.Exits {
					insertAtHead(x, ir.Instr{Op: ir.OpSStore, A: v, Tag: tag, Size: size, Synth: true})
					stats.StoresInserted++
				}
			}
			stats.Regions = append(stats.Regions, Region{
				Func:        fn.Name,
				Tag:         tag,
				Body:        l.BlocksInOrder(),
				Pad:         l.Pad,
				Exits:       append([]*ir.Block(nil), l.Exits...),
				Size:        size,
				Stored:      ls.Stored.Has(tag),
				Demoted:     demoted,
				PromotedReg: v,
				Calls:       calls,
			})
			// Rewrite every reference in the loop to a copy.
			for b := range l.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch {
					case (in.Op == ir.OpSLoad || in.Op == ir.OpCLoad) && in.Tag == tag:
						*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: v}
						stats.RefsRewritten++
					case in.Op == ir.OpSStore && in.Tag == tag:
						*in = ir.Instr{Op: ir.OpCopy, Dst: v, A: in.A}
						stats.RefsRewritten++
					}
				}
			}
			stats.ScalarPromotions++
		}
	}
	return stats
}

// collectCallFacts snapshots the claimed MOD/REF summary of every
// call in l's body, in block-ID/instruction order. The snapshot is
// taken before rewriting, so the recorded indices are promotion-time
// provenance, not stable pointers into the final IL.
func collectCallFacts(l *cfg.Loop) []CallFact {
	var facts []CallFact
	for _, b := range l.BlocksInOrder() {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpJsr {
				continue
			}
			facts = append(facts, CallFact{
				Block:  b.Label,
				Index:  i,
				Callee: in.Callee,
				Mods:   in.Mods,
				Refs:   in.Refs,
			})
		}
	}
	return facts
}

// refSize finds the access width used for tag inside l.
func refSize(fn *ir.Func, l *cfg.Loop, tag ir.TagID) int {
	for b := range l.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.Op == ir.OpSLoad || in.Op == ir.OpSStore || in.Op == ir.OpCLoad) && in.Tag == tag {
				return in.Size
			}
		}
	}
	return 0
}

// insertBeforeTerminator places in directly before b's terminator
// (lifted loads go at the end of the landing pad, after any code the
// pad already holds).
func insertBeforeTerminator(b *ir.Block, in ir.Instr) {
	n := len(b.Instrs)
	if n == 0 || !b.Instrs[n-1].Op.IsTerminator() {
		panic(fmt.Sprintf("block %s lacks a terminator", b.Label))
	}
	b.Instrs = append(b.Instrs, ir.Instr{})
	copy(b.Instrs[n:], b.Instrs[n-1:])
	b.Instrs[n-1] = in
}

// insertAtHead places in as b's first instruction (lifted stores go
// at the head of the exit block, before any post-loop code that may
// reference the demoted location).
func insertAtHead(b *ir.Block, in ir.Instr) {
	b.Instrs = append([]ir.Instr{in}, b.Instrs...)
}
