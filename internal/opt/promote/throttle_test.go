package promote

import (
	"fmt"
	"strings"
	"testing"

	"regpromo/internal/ir"
	"regpromo/internal/testutil"
)

// manyAccumulators builds a program with n global accumulators all
// hot in one loop.
func manyAccumulators(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "int a%02d;\n", i)
	}
	sb.WriteString("int main(void) {\n\tint i;\n\tfor (i = 0; i < 50; i++) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "\t\ta%02d = (a%02d + i) & 65535;\n", i, i)
	}
	sb.WriteString("\t}\n\tprint_int(")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(" ^ ")
		}
		fmt.Fprintf(&sb, "a%02d", i)
	}
	sb.WriteString(");\n\treturn 0;\n}\n")
	return sb.String()
}

func TestThrottleBoundsPromotions(t *testing.T) {
	src := manyAccumulators(24)
	want := testutil.Run(t, testutil.Compile(t, src))

	unthrottled := testutil.Compile(t, src)
	stU := Run(unthrottled, Options{})
	if stU.ScalarPromotions != 24 {
		t.Fatalf("unthrottled should promote all 24, got %d", stU.ScalarPromotions)
	}
	testutil.MustBehaveLike(t, unthrottled, want)

	throttled := testutil.Compile(t, src)
	stT := Run(throttled, Options{PressureLimit: 16})
	if stT.ScalarPromotions >= stU.ScalarPromotions {
		t.Fatalf("throttle had no effect: %d vs %d", stT.ScalarPromotions, stU.ScalarPromotions)
	}
	if stT.ScalarPromotions == 0 {
		t.Fatal("throttle should leave room for some promotions")
	}
	testutil.MustBehaveLike(t, throttled, want)
}

func TestThrottleKeepsHottestTags(t *testing.T) {
	// One tag referenced five times per iteration, others once: under
	// a tight budget the hot one must be among the survivors.
	src := `
int hot;
int cold1;
int cold2;
int cold3;
int cold4;
int cold5;
int cold6;
int cold7;
int cold8;
int main(void) {
	int i;
	for (i = 0; i < 50; i++) {
		hot += i; hot ^= 3; hot &= 65535; hot |= 1; hot -= i & 1;
		cold1 += i;
		cold2 += i;
		cold3 += i;
		cold4 += i;
		cold5 += i;
		cold6 += i;
		cold7 += i;
		cold8 += i;
	}
	print_int(hot ^ cold1 ^ cold5 ^ cold8);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	// Budget of demand+margin+2: roughly two promotions allowed.
	st := Run(m, Options{PressureLimit: 10})
	if st.ScalarPromotions == 0 || st.ScalarPromotions >= 9 {
		t.Fatalf("expected a partial promotion set, got %d", st.ScalarPromotions)
	}
	// The hot tag must have been rewritten: no remaining scalar ops
	// on it inside main.
	fn := m.Funcs["main"]
	hotRefsInLoop := 0
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsMem() && in.Tag != ir.TagInvalid && m.Tags.Get(in.Tag).Name == "hot" {
				hotRefsInLoop++
			}
		}
	}
	// Landing-pad load + exit store + the post-loop print read
	// remain; the five in-loop references became copies.
	if hotRefsInLoop > 3 {
		t.Fatalf("hot tag not prioritized: %d scalar refs remain", hotRefsInLoop)
	}
	testutil.MustBehaveLike(t, m, want)
}

func TestZeroLimitMeansUnthrottled(t *testing.T) {
	src := manyAccumulators(8)
	a := testutil.Compile(t, src)
	b := testutil.Compile(t, src)
	stA := Run(a, Options{})
	stB := Run(b, Options{PressureLimit: 0})
	if stA.ScalarPromotions != stB.ScalarPromotions {
		t.Fatalf("zero limit must disable throttling: %d vs %d",
			stA.ScalarPromotions, stB.ScalarPromotions)
	}
}

func TestTinyBudgetSuppressesPromotion(t *testing.T) {
	src := manyAccumulators(8)
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	st := Run(m, Options{PressureLimit: 1})
	if st.ScalarPromotions != 0 {
		t.Fatalf("budget of 1 register should promote nothing, got %d", st.ScalarPromotions)
	}
	testutil.MustBehaveLike(t, m, want)
}
