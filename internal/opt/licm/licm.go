// Package licm implements loop-invariant code motion: pure register
// computations whose operands do not change inside a loop are hoisted
// to the loop's landing pad. Address computations hoisted this way are
// what the §3.3 pointer-based promotion keys on ("This algorithm
// relies on loop-invariant code motion to identify the loop-invariant
// base registers and place the computation of these registers outside
// a loop"). cLoads (invariant-by-contract memory values, Table 1) are
// hoisted too; sLoad/pLoad removal is left to promotion and PRE,
// matching the paper's division of labor.
//
// Because the IL is not in SSA form, a hoist candidate must satisfy
// strict conditions: it is the register's only definition in the
// function, it dominates every use of the register, its operands have
// no definitions inside the loop, and the operation cannot fault when
// executed speculatively (division is excluded).
package licm

import (
	"regpromo/internal/cfg"
	"regpromo/internal/ir"
)

// Run hoists invariant code in every function and returns the number
// of instructions moved.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// Func hoists invariant code in one function.
func Func(fn *ir.Func) int {
	dom, forest := cfg.Normalize(fn)
	if len(forest.Loops) == 0 {
		return 0
	}
	st := newState(fn, dom)
	moved := 0
	// Innermost loops first, so code migrates outward one level per
	// pass; repeat until nothing moves.
	for {
		n := 0
		loops := forest.PreorderLoops()
		for i := len(loops) - 1; i >= 0; i-- {
			n += st.hoist(loops[i])
		}
		moved += n
		if n == 0 {
			return moved
		}
	}
}

type state struct {
	fn  *ir.Func
	dom *cfg.DomTree
	// defCount counts definitions per register over the whole
	// function; maintained across hoists (moves do not change it).
	defCount []int
	// loopDefs is scratch for hoist, reused across loops.
	loopDefs []int
}

func newState(fn *ir.Func, dom *cfg.DomTree) *state {
	st := &state{
		fn:       fn,
		dom:      dom,
		defCount: make([]int, fn.NumRegs),
		loopDefs: make([]int, fn.NumRegs),
	}
	// Parameters carry an implicit entry definition.
	for _, p := range fn.Params {
		st.defCount[p]++
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.RegInvalid {
				st.defCount[d]++
			}
		}
	}
	return st
}

// hoist moves invariant instructions of l into its landing pad.
func (st *state) hoist(l *cfg.Loop) int {
	moved := 0
	// Definitions inside this loop.
	loopDefs := st.loopDefs
	for i := range loopDefs {
		loopDefs[i] = 0
	}
	for b := range l.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.RegInvalid {
				loopDefs[d]++
			}
		}
	}
	var buf [8]ir.Reg
	for _, b := range l.BlocksInOrder() {
		for i := 0; i < len(b.Instrs); i++ {
			in := &b.Instrs[i]
			if !hoistable(in) {
				continue
			}
			d := in.Def()
			if d == ir.RegInvalid || st.defCount[d] != 1 {
				continue
			}
			invariant := true
			for _, u := range in.Uses(buf[:0]) {
				if loopDefs[u] != 0 {
					invariant = false
					break
				}
			}
			if !invariant || !st.dominatesAllUses(b, i, d) {
				continue
			}
			hoisted := in.Clone()
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			i--
			insertBeforeTerminator(l.Pad, hoisted)
			loopDefs[d] = 0
			moved++
		}
	}
	return moved
}

// dominatesAllUses reports whether the definition at (db, di) dominates
// every use of r in the function.
func (st *state) dominatesAllUses(db *ir.Block, di int, r ir.Reg) bool {
	var buf [8]ir.Reg
	for _, b := range st.fn.Blocks {
		for i := range b.Instrs {
			for _, u := range b.Instrs[i].Uses(buf[:0]) {
				if u != r {
					continue
				}
				if b == db {
					if i <= di {
						return false
					}
					continue
				}
				if !st.dom.Dominates(db, b) {
					return false
				}
			}
		}
	}
	return true
}

// hoistable reports whether the instruction may be executed
// speculatively in the landing pad: pure, no memory access, and
// incapable of faulting (division is excluded).
func hoistable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpLoadI, ir.OpLoadF, ir.OpAddrOf,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpNeg,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFNeg,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE,
		ir.OpI2F, ir.OpF2I:
		return true
	case ir.OpCLoad:
		// cLoad names an invariant value by definition (Table 1).
		return true
	}
	return false
}

func insertBeforeTerminator(b *ir.Block, in ir.Instr) {
	n := len(b.Instrs)
	b.Instrs = append(b.Instrs, ir.Instr{})
	copy(b.Instrs[n:], b.Instrs[n-1:])
	b.Instrs[n-1] = in
}
