package licm

import (
	"testing"

	"regpromo/internal/cfg"
	"regpromo/internal/ir"
	"regpromo/internal/testutil"
)

// depthOfDef returns the loop depth at which register r is defined.
func depthOfDef(fn *ir.Func, r ir.Reg) int {
	_, forest := cfg.Normalize(fn)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Def() == r {
				return forest.Depth(b)
			}
		}
	}
	return -1
}

func TestHoistsInvariantArithmetic(t *testing.T) {
	m := testutil.Compile(t, `
int out[64];
int main(void) {
	int i;
	int n;
	n = 7;
	for (i = 0; i < 64; i++) {
		out[i] = n * 31 + 4;    /* invariant computation */
	}
	return out[63];
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	if n := Func(fn); n == 0 {
		t.Fatalf("nothing hoisted:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestHoistsAddressComputations(t *testing.T) {
	// The §3.3 precondition: &B[i] in the inner loop hoists to the
	// inner loop's landing pad.
	m := testutil.Compile(t, `
int A[16][16];
int B[16];
int main(void) {
	int i;
	int j;
	for (i = 0; i < 16; i++)
		for (j = 0; j < 16; j++)
			B[i] += A[i][j];
	return B[3];
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	if n := Func(fn); n == 0 {
		t.Fatal("address computation should hoist from the inner loop")
	}
	// Find the pLoad/pStore of B: its address register must now be
	// defined at depth 1 (outer loop body / inner pad), not depth 2.
	var addr ir.Reg = ir.RegInvalid
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpPStore {
				if tag, ok := in.Tags.Singleton(); ok && m.Tags.Get(tag).Name == "B" {
					addr = in.A
				}
			}
		}
	}
	if addr == ir.RegInvalid {
		t.Fatalf("no store to B found:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	if d := depthOfDef(fn, addr); d > 1 {
		t.Fatalf("B's address defined at depth %d, want <= 1", d)
	}
	testutil.MustBehaveLike(t, m, want)
}

func TestDoesNotHoistVariantCode(t *testing.T) {
	m := testutil.Compile(t, `
int out[32];
int main(void) {
	int i;
	for (i = 0; i < 32; i++) {
		out[i] = i * i;   /* depends on i: must stay */
	}
	return out[5];
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	Func(fn)
	testutil.MustBehaveLike(t, m, want)
	if want.Exit != 25 {
		t.Fatalf("exit = %d", want.Exit)
	}
}

func TestDoesNotHoistConditionalSingleDefWithEarlyUse(t *testing.T) {
	// x's only def sits behind a condition inside the loop, and x is
	// read before it on the zero-trip path of an inner structure.
	// Hoisting would change the value observed by the early read.
	m := testutil.Compile(t, `
int flags[8];
int main(void) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 8; i++) {
		int x;
		x = 0;
		if (flags[i]) x = 99;
		acc += x;
	}
	print_int(acc);
	flags[0] = 1;
	for (i = 0; i < 8; i++) {
		int y;
		y = 0;
		if (flags[i]) y = 7;
		acc += y;
	}
	print_int(acc);
	return 0;
}
`)
	want := testutil.Run(t, m)
	Run(m)
	testutil.VerifyAll(t, m)
	testutil.MustBehaveLike(t, m, want)
}

func TestDivisionNeverHoists(t *testing.T) {
	// Division can fault; a guarded division must not speculate into
	// the landing pad.
	m := testutil.Compile(t, `
int main(void) {
	int i;
	int d;
	int acc;
	d = 0;
	acc = 0;
	for (i = 0; i < 10; i++) {
		if (d != 0) {
			acc += 100 / d;   /* never executes: d stays 0 */
		}
		acc += 1;
	}
	return acc;
}
`)
	want := testutil.Run(t, m)
	Run(m)
	got := testutil.MustBehaveLike(t, m, want)
	if got.Exit != 10 {
		t.Fatalf("exit = %d", got.Exit)
	}
}

func TestNestedLoopsMigrateOutward(t *testing.T) {
	m := testutil.Compile(t, `
int out[8];
int main(void) {
	int i;
	int j;
	int k;
	int base;
	base = 21;
	for (i = 0; i < 8; i++) {
		for (j = 0; j < 8; j++) {
			for (k = 0; k < 8; k++) {
				out[k] = base * 2 + 1;   /* invariant at every level */
			}
		}
	}
	return out[0];
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	Func(fn)
	// The computation base*2+1 must now live at depth 0.
	found := false
	_, forest := cfg.Normalize(fn)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpMul && forest.Depth(b) == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("mul did not migrate to depth 0:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	testutil.MustBehaveLike(t, m, want)
}
