package constprop

import (
	"testing"

	"regpromo/internal/ir"
	"regpromo/internal/testutil"
)

func TestFoldsConstantChains(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int a;
	int b;
	int c;
	a = 6;
	b = a * 7;
	c = b - 2;
	return c;
}
`)
	fn := m.Funcs["main"]
	if n := Func(fn); n == 0 {
		t.Fatalf("nothing folded:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 40 {
		t.Fatalf("exit = %d", res.Exit)
	}
	// After folding, no multiplies should remain.
	if testutil.CountOps(fn, ir.OpMul) != 0 {
		t.Fatalf("mul not folded:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
}

func TestFoldsBranches(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int configured;
	configured = 1;
	if (configured) {
		return 10;
	}
	return 20;
}
`)
	want := testutil.Run(t, m)
	fn := m.Funcs["main"]
	Func(fn)
	if testutil.CountOps(fn, ir.OpCBr) != 0 {
		t.Fatalf("constant branch survived:\n%s", ir.FormatFunc(fn, &m.Tags))
	}
	testutil.MustBehaveLike(t, m, want)
}

func TestAlgebraicIdentities(t *testing.T) {
	m := testutil.Compile(t, `
int f(int x) {
	int a;
	a = x + 0;
	a = a * 1;
	a = a - 0;
	a = a / 1;
	a = a | 0;
	a = a ^ 0;
	return a;
}
int main(void) { return f(37); }
`)
	fn := m.Funcs["f"]
	Func(fn)
	// Everything reduces to copies; no arithmetic left.
	for _, op := range []ir.Op{ir.OpAdd, ir.OpMul, ir.OpSub, ir.OpDiv, ir.OpOr, ir.OpXor} {
		if testutil.CountOps(fn, op) != 0 {
			t.Fatalf("%s identity not simplified:\n%s", op, ir.FormatFunc(fn, &m.Tags))
		}
	}
	if res := testutil.Run(t, m); res.Exit != 37 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestMultiplyByZero(t *testing.T) {
	m := testutil.Compile(t, `
int f(int x) { return x * 0 + 9; }
int main(void) { return f(123456); }
`)
	Func(m.Funcs["f"])
	if res := testutil.Run(t, m); res.Exit != 9 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestMultiDefRegistersNotTreatedAsConstant(t *testing.T) {
	// x is assigned twice; the constant 1 must not propagate to the
	// return.
	m := testutil.Compile(t, `
int main(void) {
	int x;
	int i;
	x = 1;
	for (i = 0; i < 3; i++) x = x + 1;
	return x;
}
`)
	want := testutil.Run(t, m)
	if want.Exit != 4 {
		t.Fatalf("reference exit = %d", want.Exit)
	}
	Run(m)
	testutil.MustBehaveLike(t, m, want)
}

func TestParamWithInBodyConstantAssignment(t *testing.T) {
	// The parameter is assigned a constant AFTER its uses: the
	// constant must not flow backwards (params have an implicit
	// entry definition).
	m := testutil.Compile(t, `
int f(int a) {
	int v;
	v = a + a;
	a = 34;
	return v + a;
}
int main(void) { return f(4); }
`)
	want := testutil.Run(t, m)
	if want.Exit != 42 {
		t.Fatalf("reference exit = %d", want.Exit)
	}
	Run(m)
	testutil.MustBehaveLike(t, m, want)
}

func TestDivisionByZeroNotFolded(t *testing.T) {
	// 1/0 is a runtime fault; folding must not evaluate it at
	// compile time, and the guard keeps it from executing.
	m := testutil.Compile(t, `
int main(void) {
	int z;
	int r;
	z = 0;
	r = 5;
	if (z != 0) r = 1 / z;
	return r;
}
`)
	Run(m)
	if res := testutil.Run(t, m); res.Exit != 5 {
		t.Fatalf("exit = %d", res.Exit)
	}
}
