// Package constprop implements global constant propagation over
// registers. The IL is not in SSA form, so the pass exploits the fact
// that most temporaries have a single static definition: a register
// defined exactly once, by a constant, is that constant everywhere it
// is used (uses are always dominated by the definition in well-formed
// input). Folding iterates with local simplification until no new
// constants appear.
package constprop

import (
	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
)

// Run propagates constants through every function; it returns the
// number of instructions folded.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// Func propagates constants through one function.
func Func(fn *ir.Func) int {
	folded := 0
	for {
		defCount := make(map[ir.Reg]int)
		constVal := make(map[ir.Reg]int64)
		isConst := make(map[ir.Reg]bool)
		// Parameters are defined implicitly at entry by the calling
		// convention; an in-body assignment is therefore a SECOND
		// definition, never a unique one.
		for _, p := range fn.Params {
			defCount[p]++
		}
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if d := in.Def(); d != ir.RegInvalid {
					defCount[d]++
					if in.Op == ir.OpLoadI {
						constVal[d] = in.Imm
						isConst[d] = true
					}
				}
			}
		}
		known := func(r ir.Reg) (int64, bool) {
			if defCount[r] == 1 && isConst[r] {
				return constVal[r], true
			}
			return 0, false
		}
		// A fold that produces a LoadI makes its destination known
		// immediately — the next round would rediscover exactly this
		// fact, so registering it now only accelerates convergence
		// (the fixpoint is the same; rewrites never retract).
		setConst := func(d ir.Reg, v int64) {
			if defCount[d] == 1 {
				constVal[d] = v
				isConst[d] = true
			}
		}

		changed := 0
		// Visit blocks in reverse postorder so a constant discovered
		// in a block is usually seen before the blocks it flows to.
		for _, b := range dataflow.ReversePostorder(fn) {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
					ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
					ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
					a, aok := known(in.A)
					bb, bok := known(in.B)
					if aok && bok {
						if c, ok := fold(in.Op, a, bb); ok {
							*in = ir.Instr{Op: ir.OpLoadI, Dst: in.Dst, Imm: c}
							setConst(in.Dst, c)
							changed++
						}
						continue
					}
					// Algebraic identities with one constant side.
					if c, ok := simplifyIdentity(in, aok, a, bok, bb); ok {
						*in = c
						if c.Op == ir.OpLoadI {
							setConst(c.Dst, c.Imm)
						}
						changed++
					}
				case ir.OpNeg:
					if a, ok := known(in.A); ok {
						*in = ir.Instr{Op: ir.OpLoadI, Dst: in.Dst, Imm: -a}
						setConst(in.Dst, -a)
						changed++
					}
				case ir.OpNot:
					if a, ok := known(in.A); ok {
						*in = ir.Instr{Op: ir.OpLoadI, Dst: in.Dst, Imm: ^a}
						setConst(in.Dst, ^a)
						changed++
					}
				case ir.OpCopy:
					if a, ok := known(in.A); ok {
						*in = ir.Instr{Op: ir.OpLoadI, Dst: in.Dst, Imm: a}
						setConst(in.Dst, a)
						changed++
					}
				case ir.OpCBr:
					if a, ok := known(in.A); ok {
						// Fold the branch: keep the taken edge.
						taken, dead := b.Succs[0], b.Succs[1]
						if a == 0 {
							taken, dead = dead, taken
						}
						*in = ir.Instr{Op: ir.OpBr}
						b.Succs = []*ir.Block{taken}
						dead.Preds = removeOne(dead.Preds, b)
						if dead == taken {
							// Both arms identical: predecessor list
							// already repaired by removeOne.
							b.Succs = []*ir.Block{taken}
						}
						changed++
					}
				}
			}
		}
		folded += changed
		if changed == 0 {
			fn.RemoveUnreachable()
			return folded
		}
	}
}

// simplifyIdentity rewrites x+0, x-0, x*1, x*0, x|0, x&0, x^0, x<<0,
// x>>0 into copies or constants.
func simplifyIdentity(in *ir.Instr, aok bool, a int64, bok bool, b int64) (ir.Instr, bool) {
	cp := func(src ir.Reg) (ir.Instr, bool) {
		return ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: src}, true
	}
	konst := func(v int64) (ir.Instr, bool) {
		return ir.Instr{Op: ir.OpLoadI, Dst: in.Dst, Imm: v}, true
	}
	switch in.Op {
	case ir.OpAdd:
		if aok && a == 0 {
			return cp(in.B)
		}
		if bok && b == 0 {
			return cp(in.A)
		}
	case ir.OpSub, ir.OpShl, ir.OpShr, ir.OpXor, ir.OpOr:
		if bok && b == 0 {
			return cp(in.A)
		}
	case ir.OpMul:
		if aok && a == 1 {
			return cp(in.B)
		}
		if bok && b == 1 {
			return cp(in.A)
		}
		if (aok && a == 0) || (bok && b == 0) {
			return konst(0)
		}
	case ir.OpAnd:
		if (aok && a == 0) || (bok && b == 0) {
			return konst(0)
		}
	case ir.OpDiv:
		if bok && b == 1 {
			return cp(in.A)
		}
	}
	return ir.Instr{}, false
}

func removeOne(list []*ir.Block, b *ir.Block) []*ir.Block {
	for i, x := range list {
		if x == b {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func fold(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return a >> (uint64(b) & 63), true
	case ir.OpCmpEQ:
		return b2i(a == b), true
	case ir.OpCmpNE:
		return b2i(a != b), true
	case ir.OpCmpLT:
		return b2i(a < b), true
	case ir.OpCmpLE:
		return b2i(a <= b), true
	case ir.OpCmpGT:
		return b2i(a > b), true
	case ir.OpCmpGE:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
