// Package dse implements tag-based dead-store elimination, the
// extension §3.4 sketches for straight-line code: PRE removes the
// redundant loads but "must treat stores more conservatively.
// Extending the promoter could improve the behavior for these
// stores." A scalar store is dead when the location is overwritten
// again before anything can read it; the tag lists make the
// may-read question exact.
//
// The pass works backward through each block, tracking which tags are
// certainly overwritten later in the block with no intervening
// possible read. At a return, every frame-local tag of the function
// is additionally dead: the frame ceases to exist, and any read a
// callee could have performed through an escaped pointer is visible
// in the call's REF list before the return is reached.
package dse

import "regpromo/internal/ir"

// Run eliminates dead scalar stores in every function and returns the
// number removed.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(m, fn)
	}
	return n
}

// Func eliminates dead scalar stores in one function.
func Func(m *ir.Module, fn *ir.Func) int {
	// Tags local to this function's frame (dead once it returns).
	var ownLocals ir.TagSet
	for _, t := range fn.Locals {
		ownLocals.Add(t)
	}

	removed := 0
	for _, b := range fn.Blocks {
		// dead holds the tags that every path from this point within
		// the block overwrites before any possible read. Seeded at a
		// return with the function's own frame tags.
		var dead ir.TagSet
		if term := b.Terminator(); term != nil && term.Op == ir.OpRet {
			dead = ownLocals.Clone()
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpSStore:
				if dead.Has(in.Tag) {
					*in = ir.Instr{Op: ir.OpNop}
					removed++
					continue
				}
				dead.Add(in.Tag)
			case ir.OpSLoad, ir.OpCLoad:
				dead.Remove(in.Tag)
			case ir.OpPLoad:
				in.Tags.SubtractInto(&dead)
			case ir.OpPStore:
				// A pointer store may only PARTIALLY overwrite a
				// tag (an array element); it never makes a tag
				// dead, and it reads nothing.
			case ir.OpJsr:
				in.Refs.SubtractInto(&dead)
				// The callee may also store-then-read internally;
				// only its REF set matters for deadness here, but
				// tags it may write are not "overwritten later"
				// from this block's perspective either — a write in
				// the callee happens before the later overwrite, so
				// deadness of the CALLER's later store region is
				// unaffected. Its own stores are its business.
			}
		}
		// Drop the nops.
		out := b.Instrs[:0]
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.OpNop {
				out = append(out, b.Instrs[i])
			}
		}
		b.Instrs = out
	}
	return removed
}
