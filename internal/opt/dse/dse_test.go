package dse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/testgen"
	"regpromo/internal/testutil"
)

func TestRemovesOverwrittenStore(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	g = 1;     /* dead: overwritten before any read */
	g = 2;
	return g;
}
`)
	fn := m.Funcs["main"]
	before := testutil.CountOps(fn, ir.OpSStore)
	if n := Func(m, fn); n != 1 {
		t.Fatalf("removed %d stores, want 1 (had %d):\n%s",
			n, before, ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 2 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestInterveningLoadBlocks(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	int a;
	g = 1;
	a = g;     /* reads the first store */
	g = 2;
	return a * 10 + g;
}
`)
	fn := m.Funcs["main"]
	if n := Func(m, fn); n != 0 {
		t.Fatalf("removed %d stores across a read", n)
	}
	if res := testutil.Run(t, m); res.Exit != 12 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestInterveningCallRefBlocks(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int peek(void) { return g; }
int main(void) {
	int a;
	g = 1;
	a = peek();   /* the call reads g */
	g = 2;
	print_int(a);
	return g;
}
`)
	fn := m.Funcs["main"]
	if n := Func(m, fn); n != 0 {
		t.Fatalf("removed %d stores across a reading call", n)
	}
	if res := testutil.Run(t, m); res.Output != "1\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestPointerLoadBlocks(t *testing.T) {
	m := testutil.Compile(t, `
int g;
int main(void) {
	int a;
	int *p;
	p = &g;
	g = 1;
	a = *p;    /* may (does) read g */
	g = 2;
	return a * 10 + g;
}
`)
	fn := m.Funcs["main"]
	Func(m, fn)
	if res := testutil.Run(t, m); res.Exit != 12 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestFrameLocalDeadAtReturn(t *testing.T) {
	m := testutil.Compile(t, `
int observe(int *p) { return *p; }
int f(void) {
	int local;
	int r;
	local = 5;
	r = observe(&local);
	local = 99;        /* dead: frame dies at return, nothing reads it */
	return r;
}
int main(void) { return f(); }
`)
	fn := m.Funcs["f"]
	if n := Func(m, fn); n == 0 {
		t.Fatalf("final store to a frame local before return should die:\n%s",
			ir.FormatFunc(fn, &m.Tags))
	}
	if res := testutil.Run(t, m); res.Exit != 5 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestLocalReadByCalleeSurvives(t *testing.T) {
	m := testutil.Compile(t, `
int observe(int *p) { return *p; }
int f(void) {
	int local;
	local = 7;
	return observe(&local);   /* call reads local before the return */
}
int main(void) { return f(); }
`)
	want := testutil.Run(t, testutil.Compile(t, `
int observe(int *p) { return *p; }
int f(void) {
	int local;
	local = 7;
	return observe(&local);
}
int main(void) { return f(); }
`))
	fn := m.Funcs["f"]
	Func(m, fn)
	got := testutil.MustBehaveLike(t, m, want)
	if got.Exit != 7 {
		t.Fatalf("exit = %d", got.Exit)
	}
}

// TestSoundOnRandomPrograms: DSE never changes observable behaviour.
func TestSoundOnRandomPrograms(t *testing.T) {
	count := 40
	if testing.Short() {
		count = 10
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := testgen.Program(rng.Int63())
		want := testutil.Run(t, testutil.Compile(t, src))
		m := testutil.Compile(t, src)
		Run(m)
		if err := ir.VerifyModule(m); err != nil {
			t.Logf("invalid IL: %v", err)
			return false
		}
		got, err := interp.Run(m, interp.Options{})
		if err != nil {
			t.Logf("%v\n%s", err, src)
			return false
		}
		if got.Output != want.Output || got.Exit != want.Exit {
			t.Logf("diverged\n%s", src)
			return false
		}
		if got.Counts.Stores > want.Counts.Stores {
			t.Log("DSE increased stores")
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}
