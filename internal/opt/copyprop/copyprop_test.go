package copyprop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/opt/dce"
	"regpromo/internal/testgen"
	"regpromo/internal/testutil"
)

func TestPropagatesThroughTemporaries(t *testing.T) {
	m := testutil.Compile(t, `
int f(int a) {
	int x;
	int y;
	x = a;        /* cp a -> x */
	y = x;        /* cp x -> y */
	return y + x;
}
int main(void) { return f(21); }
`)
	want := testutil.Run(t, m)
	m2 := testutil.Compile(t, `
int f(int a) {
	int x;
	int y;
	x = a;
	y = x;
	return y + x;
}
int main(void) { return f(21); }
`)
	if n := Run(m2); n == 0 {
		t.Fatal("nothing propagated")
	}
	dce.Run(m2)
	testutil.VerifyAll(t, m2)
	got := testutil.MustBehaveLike(t, m2, want)
	if got.Exit != 42 {
		t.Fatalf("exit = %d", got.Exit)
	}
	// After propagation + DCE the chain collapses: no copies remain
	// in f.
	if c := testutil.CountOps(m2.Funcs["f"], ir.OpCopy); c != 0 {
		t.Fatalf("%d copies remain:\n%s", c, ir.FormatFunc(m2.Funcs["f"], &m2.Tags))
	}
}

func TestSkipsMultiDefSources(t *testing.T) {
	src := `
int main(void) {
	int a;
	int x;
	int r;
	a = 1;
	x = a;        /* x copies a's FIRST value */
	a = 2;        /* a redefined: x must keep 1 */
	r = x + a;
	return r;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	if want.Exit != 3 {
		t.Fatalf("reference exit = %d", want.Exit)
	}
	m := testutil.Compile(t, src)
	Run(m)
	testutil.MustBehaveLike(t, m, want)
}

func TestLoopCarriedCopiesStay(t *testing.T) {
	src := `
int main(void) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 10; i++) acc += i;
	return acc;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	Run(m)
	got := testutil.MustBehaveLike(t, m, want)
	if got.Exit != 45 {
		t.Fatalf("exit = %d", got.Exit)
	}
}

// TestSoundOnRandomPrograms: copy propagation (followed by DCE, its
// natural companion) never changes behaviour.
func TestSoundOnRandomPrograms(t *testing.T) {
	count := 40
	if testing.Short() {
		count = 10
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := testgen.Program(rng.Int63())
		want := testutil.Run(t, testutil.Compile(t, src))
		m := testutil.Compile(t, src)
		Run(m)
		dce.Run(m)
		if err := ir.VerifyModule(m); err != nil {
			t.Logf("invalid IL: %v", err)
			return false
		}
		got, err := interp.Run(m, interp.Options{})
		if err != nil {
			t.Logf("%v\n%s", err, src)
			return false
		}
		if got.Output != want.Output || got.Exit != want.Exit {
			t.Logf("diverged\n%s", src)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}
