// Package copyprop implements global copy propagation: a use of x,
// where x is defined exactly once and that definition is "x ← cp y"
// with y itself defined at most once, reads the same value as y, so
// the use can name y directly. The copies this leaves dead are
// removed by dead-code elimination, and the register allocator's
// coalescer handles the loop-carried copies this pass cannot touch.
//
// The single-definition requirements make the transformation sound in
// the non-SSA IL: with one definition of y there is no program point
// where x is live but y holds a different value, and the dominance
// check below rules out paths that could read x before its
// definition.
package copyprop

import (
	"regpromo/internal/cfg"
	"regpromo/internal/ir"
)

// Run propagates copies in every function; it returns the number of
// copies propagated.
func Run(m *ir.Module) int {
	n := 0
	for _, fn := range m.FuncsInOrder() {
		n += Func(fn)
	}
	return n
}

// Func propagates copies in one function.
func Func(fn *ir.Func) int {
	fn.RemoveUnreachable()
	dom := cfg.Dominators(fn)

	defCount := make(map[ir.Reg]int)
	for _, p := range fn.Params {
		defCount[p]++
	}
	type defSite struct {
		b *ir.Block
		i int
	}
	defs := make(map[ir.Reg]defSite)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.RegInvalid {
				defCount[d]++
				defs[d] = defSite{b, i}
			}
		}
	}

	// forward maps x -> y for propagatable copies.
	forward := make(map[ir.Reg]ir.Reg)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpCopy {
				continue
			}
			x, y := in.Dst, in.A
			if defCount[x] != 1 || defCount[y] > 1 {
				continue
			}
			if !dominatesAllUses(fn, dom, b, i, x) {
				continue
			}
			forward[x] = y
		}
	}
	if len(forward) == 0 {
		return 0
	}
	// Resolve chains x -> y -> z.
	resolve := func(r ir.Reg) ir.Reg {
		for i := 0; i < len(forward); i++ {
			y, ok := forward[r]
			if !ok {
				return r
			}
			r = y
		}
		return r
	}

	n := 0
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			b.Instrs[i].MapUses(func(u ir.Reg) ir.Reg {
				v := resolve(u)
				if v != u {
					n++
				}
				return v
			})
		}
	}
	return n
}

// dominatesAllUses reports whether the definition at (db, di)
// dominates every use of r.
func dominatesAllUses(fn *ir.Func, dom *cfg.DomTree, db *ir.Block, di int, r ir.Reg) bool {
	var buf [8]ir.Reg
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			for _, u := range b.Instrs[i].Uses(buf[:0]) {
				if u != r {
					continue
				}
				if b == db {
					if i <= di {
						return false
					}
					continue
				}
				if !dom.Dominates(db, b) {
					return false
				}
			}
		}
	}
	return true
}
