package native_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/native"
)

// These tests hold the native backend to the engine parity contract:
// byte-identical output, exit status, error text, and dynamic counts
// against the flat engine (itself pinned to the switch oracle by
// internal/difftest). The subprocess backend is forced for the bulk
// of the suite — it works everywhere, including -race test hosts
// where plugin.Open fails — and plugin mode gets one dedicated test
// that skips when the platform lacks support.

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "regpromo-native-test")
	if err != nil {
		panic(err)
	}
	os.Setenv("REGPROMO_NATIVE_CACHE", dir)
	native.SetDefaultBackend(native.BackendSubprocess)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// compile builds src under the given configuration.
func compile(t *testing.T, src string, cfg driver.Config) *driver.Compilation {
	t.Helper()
	c, err := driver.CompileSource("test.c", src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// runBoth executes one compilation on the flat and native engines and
// reports any observable difference.
func runBoth(t *testing.T, label string, c *driver.Compilation, maxSteps int64) {
	t.Helper()
	flat, ferr := c.Execute(interp.Options{MaxSteps: maxSteps, Engine: interp.EngineFlat})
	nat, nerr := c.Execute(interp.Options{MaxSteps: maxSteps, Engine: interp.EngineNative})
	switch {
	case ferr != nil && nerr != nil:
		if ferr.Error() != nerr.Error() {
			t.Fatalf("%s: error divergence: flat %q, native %q", label, ferr, nerr)
		}
		return
	case ferr != nil || nerr != nil:
		t.Fatalf("%s: one engine failed: flat err=%v, native err=%v", label, ferr, nerr)
	}
	if flat.Counts != nat.Counts {
		t.Fatalf("%s: counts diverge: flat %+v, native %+v", label, flat.Counts, nat.Counts)
	}
	if flat.Exit != nat.Exit {
		t.Fatalf("%s: exit diverges: flat %d, native %d", label, flat.Exit, nat.Exit)
	}
	if flat.Output != nat.Output {
		t.Fatalf("%s: output diverges: flat %q, native %q", label, flat.Output, nat.Output)
	}
}

// parityPrograms exercise the codegen surface: globals and locals,
// arrays and pointer arithmetic, direct and indirect control flow,
// malloc'd memory, doubles, every print intrinsic, and recursion.
var parityPrograms = []struct {
	name string
	src  string
}{
	{"arith", `
int main(void) {
	int i;
	int acc;
	acc = 7;
	for (i = 1; i < 50; i++) {
		acc = acc * 3 + i;
		acc = acc % 100003;
		acc = acc - (acc / 7);
		acc = acc ^ (acc << 3);
		acc = acc & 16777215;
	}
	print_int(acc);
	return acc & 63;
}`},
	{"memory", `
int g[64];
int sum;
int main(void) {
	int i;
	int *p;
	p = (int *)malloc(64 * sizeof(int));
	for (i = 0; i < 64; i++) {
		g[i] = i * i;
		p[i] = g[i] + i;
	}
	for (i = 0; i < 64; i++)
		sum = sum + p[i] - g[63 - i];
	print_int(sum);
	free(p);
	return sum & 63;
}`},
	{"calls", `
int depth;
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int twice(int x) { return x + x; }
int main(void) {
	int (*f)(int);
	int v;
	f = twice;
	v = fib(15) + f(21);
	print_int(v);
	print_char(10);
	return v & 63;
}`},
	{"doubles", `
double scale;
double mix(double a, double b) { return a * 0.5 + b * 0.25; }
int main(void) {
	double x;
	int i;
	scale = 1.5;
	x = 0.0;
	for (i = 0; i < 20; i++)
		x = mix(x, scale * i) + 0.125;
	print_double(x);
	print_str("done\n");
	return (int)x;
}`},
	{"strings", `
char buf[16];
int main(void) {
	int i;
	for (i = 0; i < 15; i++)
		buf[i] = 'a' + (char)(i % 26);
	print_str(buf);
	print_char('\n');
	print_str("tail");
	print_char(10);
	return buf[3];
}`},
}

// parityConfigs is the configuration slice the parity tests cover:
// the straight lowering, the paper's strongest pipeline, and the
// throttled allocator (to force spill slots into the frame array).
func parityConfigs() []driver.NamedConfig {
	return []driver.NamedConfig{
		{Name: "ref-noopt", Config: driver.Config{Analysis: driver.ModRef, DisableOpt: true, NoAlloc: true}},
		{Name: "promote-pointer", Config: driver.Config{Analysis: driver.PointsTo, Promote: true, PointerPromote: true}},
		{Name: "throttle-k8", Config: driver.Config{Analysis: driver.ModRef, Promote: true, Throttle: 8, K: 8}},
	}
}

func TestNativeParity(t *testing.T) {
	for _, p := range parityPrograms {
		for _, nc := range parityConfigs() {
			c := compile(t, p.src, nc.Config)
			runBoth(t, p.name+"/"+nc.Name, c, 1<<28)
		}
	}
}

// TestNativeErrorParity pins the runtime-fault contract: the native
// engine must fail with byte-identical error text, including the step
// limit firing at the same instruction.
func TestNativeErrorParity(t *testing.T) {
	faults := []struct {
		name     string
		src      string
		maxSteps int64
	}{
		{"div-zero", `
int main(void) {
	int d;
	d = 0;
	print_int(1 / d);
	return 0;
}`, 1 << 28},
		{"rem-zero", `
int main(void) {
	int d;
	d = 0;
	return 7 % d;
}`, 1 << 28},
		{"null-load", `
int main(void) {
	int *p;
	p = (int *)0;
	return *p;
}`, 1 << 28},
		{"wild-store", `
int main(void) {
	int *p;
	p = (int *)12345678;
	*p = 1;
	return 0;
}`, 1 << 28},
		{"stack-overflow", `
int burn(int n) {
	int pad[256];
	pad[0] = n;
	return burn(n + 1) + pad[0];
}
int main(void) { return burn(0); }`, 1 << 28},
		{"step-limit", `
int main(void) {
	int i;
	i = 0;
	for (;;) i++;
	return i;
}`, 10000},
		{"step-limit-tight", `
int main(void) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 1000; i++) s = s + i;
	print_int(s);
	return 0;
}`, 100},
		{"negative-malloc", `
int main(void) {
	int n;
	n = -8;
	return (int)(long)malloc(n);
}`, 1 << 28},
	}
	for _, f := range faults {
		c := compile(t, f.src, driver.Config{Analysis: driver.ModRef, Promote: true})
		flat, ferr := c.Execute(interp.Options{MaxSteps: f.maxSteps, Engine: interp.EngineFlat})
		nat, nerr := c.Execute(interp.Options{MaxSteps: f.maxSteps, Engine: interp.EngineNative})
		if (ferr == nil) != (nerr == nil) {
			t.Fatalf("%s: one engine failed: flat err=%v, native err=%v", f.name, ferr, nerr)
		}
		if ferr != nil {
			if ferr.Error() != nerr.Error() {
				t.Fatalf("%s: error divergence: flat %q, native %q", f.name, ferr, nerr)
			}
			continue
		}
		if flat.Counts != nat.Counts || flat.Exit != nat.Exit || flat.Output != nat.Output {
			t.Fatalf("%s: results diverge: flat %+v exit=%d, native %+v exit=%d",
				f.name, flat.Counts, flat.Exit, nat.Counts, nat.Exit)
		}
	}
}

// TestNativeNoCounts checks the uninstrumented build: identical
// output and exit with all-zero counters, from a separately cached
// artifact.
func TestNativeNoCounts(t *testing.T) {
	c := compile(t, parityPrograms[1].src, driver.Config{Analysis: driver.ModRef, Promote: true})
	flat, err := c.Execute(interp.Options{Engine: interp.EngineFlat})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := c.Execute(interp.Options{Engine: interp.EngineNative, NoCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	if nat.Output != flat.Output || nat.Exit != flat.Exit {
		t.Fatalf("uninstrumented run diverges: flat exit=%d %q, native exit=%d %q",
			flat.Exit, flat.Output, nat.Exit, nat.Output)
	}
	if nat.Counts != (interp.Counts{}) {
		t.Fatalf("uninstrumented run reported counts: %+v", nat.Counts)
	}
}

// TestNativeUnsupportedOptions pins the rejection errors for
// interpreter-only features.
func TestNativeUnsupportedOptions(t *testing.T) {
	c := compile(t, parityPrograms[0].src, driver.Config{Analysis: driver.ModRef})
	for _, tc := range []struct {
		name string
		opts interp.Options
		want string
	}{
		{"profile", interp.Options{Engine: interp.EngineNative, Profile: true}, "profiling is not supported"},
		{"sanitize", interp.Options{Engine: interp.EngineNative, Sanitize: true}, "sanitizer is not supported"},
	} {
		_, err := c.Execute(tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestBuildCacheHit checks that rebuilding an identical program skips
// the toolchain: the second Build for the same source must resolve to
// the same on-disk artifact without error (the hit path).
func TestBuildCacheHit(t *testing.T) {
	c := compile(t, parityPrograms[0].src, driver.Config{Analysis: driver.ModRef})
	p := interpProgram(t, c)
	a1, err := native.Build(p, true, native.Options{Backend: native.BackendSubprocess})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := native.Build(p, true, native.Options{Backend: native.BackendSubprocess})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a1.Run(interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Run(interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output || r1.Counts != r2.Counts {
		t.Fatalf("cache hit produced different behaviour: %+v vs %+v", r1, r2)
	}
}

// interpProgram extracts the flat lowering the way the driver does,
// via a throwaway flat execution to force it, then regenerating it
// directly for the Build call.
func interpProgram(t *testing.T, c *driver.Compilation) *interp.Program {
	t.Helper()
	return interp.Flatten(c.Module, false)
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want native.Backend
		err  bool
	}{
		{"", native.BackendAuto, false},
		{"auto", native.BackendAuto, false},
		{"plugin", native.BackendPlugin, false},
		{"subprocess", native.BackendSubprocess, false},
		{"jit", native.BackendAuto, true},
	} {
		got, err := native.ParseBackend(tc.in)
		if (err != nil) != tc.err {
			t.Fatalf("ParseBackend(%q): err=%v, want err=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if err != nil && !strings.Contains(err.Error(), fmt.Sprintf("unknown native backend %q", tc.in)) {
			t.Fatalf("ParseBackend(%q): unexpected error %v", tc.in, err)
		}
	}
}

// TestPluginBackend exercises the in-process path explicitly. Plugin
// support is platform- and build-mode-dependent (absent under -race
// test binaries, among others), so a failed build or load skips
// rather than fails.
func TestPluginBackend(t *testing.T) {
	c := compile(t, parityPrograms[0].src, driver.Config{Analysis: driver.ModRef, Promote: true})
	p := interpProgram(t, c)
	a, err := native.Build(p, true, native.Options{Backend: native.BackendPlugin})
	if err != nil {
		t.Skipf("plugin backend unavailable: %v", err)
	}
	if a.Backend() != native.BackendPlugin {
		t.Fatalf("backend = %v, want plugin", a.Backend())
	}
	nat, err := a.Run(interp.Options{MaxSteps: 1 << 28})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := c.Execute(interp.Options{MaxSteps: 1 << 28, Engine: interp.EngineFlat})
	if err != nil {
		t.Fatal(err)
	}
	if nat.Counts != flat.Counts || nat.Exit != flat.Exit || nat.Output != flat.Output {
		t.Fatalf("plugin run diverges from flat: %+v exit=%d vs %+v exit=%d",
			nat.Counts, nat.Exit, flat.Counts, flat.Exit)
	}
}
