// Package native builds and runs the machine-code backend: it takes
// the Go source the flat-program code generator renders
// (interp.Program.NativeSource), compiles it with the Go toolchain,
// and executes it either in-process as a plugin or out-of-process as
// a subprocess speaking a small JSON protocol.
//
// Build artifacts are content-addressed: the cache key is the hash of
// the generated source plus the toolchain version, so any change to
// the program, the configuration it was compiled under, or the
// instrumentation mode lands in a different slot, and rebuilding an
// unchanged program is a cache hit that skips the toolchain entirely.
// The cache lives on disk (REGPROMO_NATIVE_CACHE, defaulting to the
// user cache directory) and is shared across processes; builds write
// to unique temp files and commit with an atomic rename, so
// concurrent builders of the same key cannot corrupt each other.
//
// Backend selection: plugin mode loads the artifact into the calling
// process (fastest per run — no process spawn), but Go plugins can
// never be unloaded, so a workload that builds many distinct programs
// (the fuzzer) must use subprocess mode or grow without bound; and
// plugin support is missing on some platforms and under some build
// modes (notably -race hosts). BackendAuto therefore probes plugin
// mode on first use and falls back to subprocess execution — for the
// whole process — when the probe fails.
package native

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"plugin"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"regpromo/internal/interp"
	"regpromo/internal/obs"
)

// Backend selects how a built artifact is executed.
type Backend int

const (
	// BackendAuto tries plugin mode and falls back to subprocess
	// execution — permanently, for the whole process — when plugin
	// build or load fails.
	BackendAuto Backend = iota
	// BackendPlugin loads the artifact into this process via
	// plugin.Open. Lowest per-run overhead; plugins can never be
	// unloaded, so unsuitable for many-program workloads.
	BackendPlugin
	// BackendSubprocess builds a standalone binary and execs it per
	// run. Slightly slower per run, works everywhere, and leaves no
	// residue in the calling process.
	BackendSubprocess
)

func (b Backend) String() string {
	switch b {
	case BackendPlugin:
		return "plugin"
	case BackendSubprocess:
		return "subprocess"
	}
	return "auto"
}

// ParseBackend resolves a backend name ("auto", "plugin", or
// "subprocess").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "plugin":
		return BackendPlugin, nil
	case "subprocess":
		return BackendSubprocess, nil
	}
	return BackendAuto, fmt.Errorf("unknown native backend %q (want auto, plugin, or subprocess)", s)
}

// defaultBackend is the process-wide backend used when
// Options.Backend is BackendAuto; settable from CLI flags.
var defaultBackend atomic.Int32

// SetDefaultBackend fixes the process-wide backend used by
// BackendAuto builds. The fuzzer sets subprocess here: a fuzz run
// builds one artifact per (seed, config) and plugins can never be
// unloaded.
func SetDefaultBackend(b Backend) { defaultBackend.Store(int32(b)) }

// DefaultBackend returns the process-wide default backend.
func DefaultBackend() Backend { return Backend(defaultBackend.Load()) }

// pluginBroken latches the first plugin failure under BackendAuto so
// the probe is paid once per process, not once per build.
var pluginBroken atomic.Bool

// Options configure a build.
type Options struct {
	// Backend selects the execution mode; BackendAuto (the zero
	// value) defers to the process default, probing plugin support
	// when that too is auto.
	Backend Backend
	// CacheDir overrides the on-disk artifact cache location. Empty
	// means $REGPROMO_NATIVE_CACHE, else the user cache directory.
	CacheDir string
}

// Artifact is a built native program, ready to run.
type Artifact struct {
	backend      Backend // resolved: plugin or subprocess
	binPath      string
	instrumented bool
	runFn        func(int64) ([7]int64, []byte, string, string)
}

// Backend reports the execution mode the artifact resolved to.
func (a *Artifact) Backend() Backend { return a.backend }

// CacheDir resolves the artifact cache directory.
func CacheDir(override string) string {
	if override != "" {
		return override
	}
	if env := os.Getenv("REGPROMO_NATIVE_CACHE"); env != "" {
		return env
	}
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "regpromo-native")
	}
	return filepath.Join(os.TempDir(), "regpromo-native")
}

// buildLocks serializes same-key builds within this process; cross-
// process races are handled by temp-file-plus-rename commits.
var buildLocks sync.Map // key string → *sync.Mutex

// pluginCache reuses opened plugins by cache key: a plugin can never
// be unloaded, so re-opening the same artifact should at least not
// re-probe the loader.
var pluginCache sync.Map // key string → *Artifact

// Build renders p's native source in the requested instrumentation
// mode, compiles it (or reuses the content-addressed cached build),
// and returns a runnable artifact.
func Build(p *interp.Program, instrument bool, opts Options) (*Artifact, error) {
	src := p.NativeSource(instrument)
	sum := sha256.Sum256([]byte(runtime.Version() + "\x00" + src))
	key := hex.EncodeToString(sum[:16])

	backend := opts.Backend
	if backend == BackendAuto {
		backend = DefaultBackend()
	}
	probing := false
	if backend == BackendAuto {
		if pluginBroken.Load() {
			backend = BackendSubprocess
		} else {
			backend, probing = BackendPlugin, true
		}
	}

	dir := CacheDir(opts.CacheDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("native cache: %w", err)
	}

	if backend == BackendPlugin {
		a, err := buildPlugin(dir, key, src, instrument)
		if err == nil {
			return a, nil
		}
		if !probing {
			return nil, err
		}
		// Auto probe failed: remember, and never try plugins again in
		// this process.
		pluginBroken.Store(true)
		if r := obs.Metrics(); r != nil {
			r.Counter("native.plugin_fallback").Inc()
		}
		backend = BackendSubprocess
	}
	return buildSubprocess(dir, key, src, instrument)
}

// buildPlugin builds (or reuses) the plugin artifact for key and
// loads its entry point.
func buildPlugin(dir, key, src string, instrument bool) (*Artifact, error) {
	if a, ok := pluginCache.Load(key); ok {
		return a.(*Artifact), nil
	}
	soPath := filepath.Join(dir, "rp_"+key+".so")
	if err := ensureBuilt(dir, key, src, soPath, true); err != nil {
		return nil, err
	}
	pl, err := plugin.Open(soPath)
	if err != nil {
		return nil, fmt.Errorf("native plugin load: %w", err)
	}
	sym, err := pl.Lookup("RPRun")
	if err != nil {
		return nil, fmt.Errorf("native plugin: %w", err)
	}
	runFn, ok := sym.(func(int64) ([7]int64, []byte, string, string))
	if !ok {
		return nil, fmt.Errorf("native plugin: RPRun has unexpected type %T", sym)
	}
	a := &Artifact{backend: BackendPlugin, binPath: soPath, instrumented: instrument, runFn: runFn}
	pluginCache.Store(key, a)
	return a, nil
}

// buildSubprocess builds (or reuses) the standalone binary for key.
func buildSubprocess(dir, key, src string, instrument bool) (*Artifact, error) {
	binPath := filepath.Join(dir, "rp_"+key+".bin")
	if err := ensureBuilt(dir, key, src, binPath, false); err != nil {
		return nil, err
	}
	return &Artifact{backend: BackendSubprocess, binPath: binPath, instrumented: instrument}, nil
}

// ensureBuilt makes outPath exist: a disk-cache hit returns
// immediately, otherwise the source is written and compiled, all
// committed with atomic renames so concurrent builders (goroutines
// or processes) converge on the same files.
func ensureBuilt(dir, key, src, outPath string, pluginMode bool) error {
	lockIface, _ := buildLocks.LoadOrStore(key+filepath.Ext(outPath), &sync.Mutex{})
	lock := lockIface.(*sync.Mutex)
	lock.Lock()
	defer lock.Unlock()

	r := obs.Metrics()
	if _, err := os.Stat(outPath); err == nil {
		if r != nil {
			r.Counter("native.build.hit").Inc()
		}
		return nil
	}
	if r != nil {
		r.Counter("native.build.miss").Inc()
	}
	began := time.Now()

	goPath := filepath.Join(dir, "rp_"+key+".go")
	if _, err := os.Stat(goPath); err != nil {
		tmp := fmt.Sprintf("%s.tmp%d", goPath, os.Getpid())
		if err := os.WriteFile(tmp, []byte(src), 0o644); err != nil {
			return fmt.Errorf("native cache: %w", err)
		}
		if err := os.Rename(tmp, goPath); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("native cache: %w", err)
		}
	}

	tmpOut := fmt.Sprintf("%s.tmp%d", outPath, os.Getpid())
	args := []string{"build"}
	if pluginMode {
		args = append(args, "-buildmode=plugin")
	}
	args = append(args, "-o", tmpOut, goPath)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		os.Remove(tmpOut)
		return fmt.Errorf("native build (go %v): %v\n%s", args[:len(args)-2], err, out)
	}
	if err := os.Rename(tmpOut, outPath); err != nil {
		os.Remove(tmpOut)
		return fmt.Errorf("native cache: %w", err)
	}
	if r != nil {
		r.Histogram("native.build_ns", obs.DurationBucketsNS).Observe(time.Since(began).Nanoseconds())
	}
	return nil
}

// wire is the subprocess result protocol: one JSON object on stdout.
// Output travels base64-encoded — programs may print arbitrary bytes
// and JSON strings only carry valid UTF-8.
type wire struct {
	Vals   [7]int64 `json:"vals"`
	Out    string   `json:"out"`
	ErrFn  string   `json:"err_fn,omitempty"`
	ErrMsg string   `json:"err_msg,omitempty"`
}

// Run executes the artifact under the interpreter option contract:
// identical output, exit status, error text, and — when the artifact
// was built instrumented — identical dynamic counts and step-limit
// behaviour. Profiling, tracing, and sanitizing are interpreter-only
// features and are rejected.
func (a *Artifact) Run(opts interp.Options) (*interp.Result, error) {
	switch {
	case opts.Profile:
		return nil, fmt.Errorf("native engine: profiling is not supported (use the flat or switch engine)")
	case opts.Sanitize:
		return nil, fmt.Errorf("native engine: the sanitizer is not supported (use the flat or switch engine)")
	case opts.Trace != nil:
		return nil, fmt.Errorf("native engine: tracing is not supported (use the flat or switch engine)")
	}
	var vals [7]int64
	var out []byte
	var errFn, errMsg string
	if a.backend == BackendPlugin {
		vals, out, errFn, errMsg = a.runFn(opts.MaxSteps)
	} else {
		cmd := exec.Command(a.binPath, strconv.FormatInt(opts.MaxSteps, 10))
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("native artifact %s: %v\n%s", filepath.Base(a.binPath), err, stderr.String())
		}
		var w wire
		if err := json.Unmarshal(stdout.Bytes(), &w); err != nil {
			return nil, fmt.Errorf("native artifact %s: bad result: %w", filepath.Base(a.binPath), err)
		}
		decoded, err := base64.StdEncoding.DecodeString(w.Out)
		if err != nil {
			return nil, fmt.Errorf("native artifact %s: bad output encoding: %w", filepath.Base(a.binPath), err)
		}
		vals, out, errFn, errMsg = w.Vals, decoded, w.ErrFn, w.ErrMsg
	}
	if r := obs.Metrics(); r != nil {
		r.Counter("native.runs").Inc()
	}
	if vals[6] != 0 {
		return nil, &interp.Error{Func: errFn, Msg: errMsg}
	}
	res := &interp.Result{
		Counts: interp.Counts{Ops: vals[1], Loads: vals[2], Stores: vals[3], Copies: vals[4], Calls: vals[5]},
		Exit:   vals[0],
		Output: string(out),
	}
	interp.ReportRunMetrics(res)
	return res, nil
}
