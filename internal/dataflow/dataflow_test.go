package dataflow

import (
	"testing"

	"regpromo/internal/ir"
)

// buildFunc constructs a function from an adjacency list: edges[i]
// lists the successor ids of block i, block 0 is the entry.
func buildFunc(edges [][]int) *ir.Func {
	fn := &ir.Func{Name: "t"}
	blocks := make([]*ir.Block, len(edges))
	for i := range edges {
		blocks[i] = fn.NewBlock("")
	}
	fn.Entry = blocks[0]
	cond := fn.NewReg()
	for i, succs := range edges {
		b := blocks[i]
		switch len(succs) {
		case 0:
			b.Instrs = []ir.Instr{{Op: ir.OpRet, A: ir.RegInvalid}}
		case 1:
			b.Instrs = []ir.Instr{{Op: ir.OpBr}}
		default:
			b.Instrs = []ir.Instr{{Op: ir.OpCBr, A: cond}}
		}
		for _, s := range succs {
			ir.AddEdge(b, blocks[s])
		}
	}
	return fn
}

// diamondAndLoop is the canonical awkward shape: a diamond feeding a
// loop feeding an exit.
//
//	  0
//	 / \
//	1   2
//	 \ /
//	  3 ◄─┐
//	  │   │
//	  4 ──┘
//	  │
//	  5
func diamondAndLoop() *ir.Func {
	return buildFunc([][]int{{1, 2}, {3}, {3}, {4}, {3, 5}, {}})
}

func TestReversePostorderDiamondAndLoop(t *testing.T) {
	fn := diamondAndLoop()
	rpo := ReversePostorder(fn)
	if len(rpo) != len(fn.Blocks) {
		t.Fatalf("rpo has %d blocks, want %d", len(rpo), len(fn.Blocks))
	}
	if rpo[0] != fn.Entry {
		t.Fatalf("rpo must start at entry, got B%d", rpo[0].ID)
	}
	pos := make(map[ir.BlockID]int, len(rpo))
	for i, b := range rpo {
		if _, dup := pos[b.ID]; dup {
			t.Fatalf("B%d appears twice", b.ID)
		}
		pos[b.ID] = i
	}
	// Every forward (non-back) edge must go left to right: the only
	// edge allowed to point backward in this CFG is the loop edge 4→3.
	for _, b := range fn.Blocks {
		for _, s := range b.Succs {
			if pos[s.ID] <= pos[b.ID] && !(b.ID == 4 && s.ID == 3) {
				t.Errorf("edge B%d→B%d goes backward in RPO", b.ID, s.ID)
			}
		}
	}
}

func TestWorklistDedupAndRankOrder(t *testing.T) {
	w := NewWorklist([]int{3, 0, 2, 1})
	for _, id := range []int{0, 2, 1, 2, 0, 3} { // duplicates on purpose
		w.Push(id)
	}
	var got []int
	for {
		id, ok := w.Pop()
		if !ok {
			break
		}
		got = append(got, id)
	}
	want := []int{1, 3, 2, 0} // ascending rank
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v (duplicates must collapse)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if !w.Empty() {
		t.Fatal("worklist must be empty after draining")
	}
}

// naiveSolve is the reference fixpoint: apply transfer to every block
// over and over until a full sweep changes nothing. Any worklist
// strategy must converge to the same facts (the framework is
// monotone, so the least fixpoint is unique).
func naiveSolve(fn *ir.Func, transfer func(b *ir.Block) bool) {
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			if transfer(b) {
				changed = true
			}
		}
	}
}

// reachTransfer builds the forward "ancestor blocks" analysis over a
// bitmask lattice: out[b] = {b} ∪ ⋃_{p∈preds} out[p]. Union is
// monotone, so the least fixpoint is exactly reachability from entry
// through each block.
func reachTransfer(out []uint64) func(b *ir.Block) bool {
	return func(b *ir.Block) bool {
		v := uint64(1) << uint(b.ID)
		for _, p := range b.Preds {
			v |= out[p.ID]
		}
		if v == out[b.ID] {
			return false
		}
		out[b.ID] = v
		return true
	}
}

func TestSolveBlocksForwardConvergence(t *testing.T) {
	fn := diamondAndLoop()

	got := make([]uint64, len(fn.Blocks))
	steps := SolveBlocks(fn, Forward, reachTransfer(got))

	want := make([]uint64, len(fn.Blocks))
	naiveSolve(fn, reachTransfer(want))

	for id := range got {
		if got[id] != want[id] {
			t.Errorf("B%d: worklist fixpoint %b, naive fixpoint %b", id, got[id], want[id])
		}
	}
	// Block 5 is reached through the diamond and the loop: everything
	// is its ancestor.
	if got[5] != 0b111111 {
		t.Errorf("out[5] = %b, want 111111", got[5])
	}
	// In RPO the only re-queues come from the loop edge 4→3; the
	// whole solve must stay near one sweep, not near the quadratic
	// worst case.
	if max := 2 * len(fn.Blocks); steps > max {
		t.Errorf("converged in %d steps, want ≤ %d", steps, max)
	}
}

func TestSolveBlocksBackwardConvergence(t *testing.T) {
	fn := diamondAndLoop()

	// Backward "descendant blocks": in[b] = {b} ∪ ⋃_{s∈succs} in[s].
	transfer := func(in []uint64) func(b *ir.Block) bool {
		return func(b *ir.Block) bool {
			v := uint64(1) << uint(b.ID)
			for _, s := range b.Succs {
				v |= in[s.ID]
			}
			if v == in[b.ID] {
				return false
			}
			in[b.ID] = v
			return true
		}
	}

	got := make([]uint64, len(fn.Blocks))
	SolveBlocks(fn, Backward, transfer(got))
	want := make([]uint64, len(fn.Blocks))
	naiveSolve(fn, transfer(want))

	for id := range got {
		if got[id] != want[id] {
			t.Errorf("B%d: worklist fixpoint %b, naive fixpoint %b", id, got[id], want[id])
		}
	}
	// From the entry every block is reachable.
	if got[0] != 0b111111 {
		t.Errorf("in[0] = %b, want 111111", got[0])
	}
}
