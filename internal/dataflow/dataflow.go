// Package dataflow provides the shared machinery for the compiler's
// iterative fixpoint computations: reverse-postorder block orderings
// and a priority worklist that drains items in a fixed rank order.
//
// Every analysis in this repository solves a monotone framework over a
// finite lattice, so the fixpoint it reaches is the unique least
// fixpoint regardless of iteration order (Kam & Ullman). The kernel
// therefore only changes *how fast* an analysis converges, never what
// it computes — which is what lets the parallel middle-end and the
// serial pipeline produce byte-identical IL. Forward problems visit
// blocks in reverse postorder (all of a block's forward predecessors
// first), backward problems in postorder; the priority worklist keeps
// re-queued blocks in that same order so a loop body is re-examined
// before the code after the loop.
package dataflow

import (
	"container/heap"

	"regpromo/internal/ir"
	"regpromo/internal/obs"
)

// Postorder returns fn's blocks reachable from Entry in postorder
// (every block after all of its unvisited successors). The traversal
// follows Succs edges in order, matching the hand-rolled orderings the
// individual passes used before this package existed.
func Postorder(fn *ir.Func) []*ir.Block {
	order := make([]*ir.Block, 0, len(fn.Blocks))
	seen := make([]bool, len(fn.Blocks))
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				walk(s)
			}
		}
		order = append(order, b)
	}
	if fn.Entry != nil {
		walk(fn.Entry)
	}
	return order
}

// ReversePostorder returns fn's reachable blocks in reverse postorder,
// the canonical iteration order for forward dataflow problems.
func ReversePostorder(fn *ir.Func) []*ir.Block {
	po := Postorder(fn)
	for i, j := 0, len(po)-1; i < j; i, j = i+1, j-1 {
		po[i], po[j] = po[j], po[i]
	}
	return po
}

// Direction selects which way facts flow through the CFG.
type Direction int

const (
	// Forward problems propagate facts along Succs edges and visit
	// blocks in reverse postorder.
	Forward Direction = iota
	// Backward problems propagate facts along Preds edges and visit
	// blocks in postorder.
	Backward
)

// Worklist is a deduplicating priority worklist over dense item ids.
// Items drain in ascending rank; pushing an item already queued is a
// no-op, so each pending item is processed once per generation.
type Worklist struct {
	rank   []int // rank[id] = drain priority of item id
	queued []bool
	heap   workHeap
	pushes int // enqueues that actually landed (dedup hits excluded)
}

// NewWorklist builds a worklist for items 0..len(rank)-1 where rank[i]
// gives item i's drain priority (lower drains first).
func NewWorklist(rank []int) *Worklist {
	return &Worklist{
		rank:   rank,
		queued: make([]bool, len(rank)),
		heap:   make(workHeap, 0, len(rank)),
	}
}

// Push queues id unless it is already pending.
func (w *Worklist) Push(id int) {
	if w.queued[id] {
		return
	}
	w.queued[id] = true
	w.pushes++
	heap.Push(&w.heap, workItem{id: id, rank: w.rank[id]})
}

// Pushes returns how many enqueues landed on the worklist so far
// (pushes deduplicated away are not counted) — a schedule-independent
// measure of how much re-examination the fixpoint needed.
func (w *Worklist) Pushes() int { return w.pushes }

// Pop removes and returns the pending item with the lowest rank;
// ok is false when the worklist is empty.
func (w *Worklist) Pop() (id int, ok bool) {
	if len(w.heap) == 0 {
		return 0, false
	}
	it := heap.Pop(&w.heap).(workItem)
	w.queued[it.id] = false
	return it.id, true
}

// Empty reports whether nothing is pending.
func (w *Worklist) Empty() bool { return len(w.heap) == 0 }

type workItem struct{ id, rank int }

type workHeap []workItem

func (h workHeap) Len() int            { return len(h) }
func (h workHeap) Less(i, j int) bool  { return h[i].rank < h[j].rank }
func (h workHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workHeap) Push(x interface{}) { *h = append(*h, x.(workItem)) }
func (h *workHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SolveBlocks iterates transfer over fn's reachable blocks until
// fixpoint. transfer recomputes the block's facts from its current
// inputs and reports whether its outward-facing facts changed; when
// they did, the block's dependents (Succs for Forward, Preds for
// Backward) are re-queued. Blocks are visited — and revisited — in
// reverse postorder for forward problems and postorder for backward
// ones. The number of transfer applications is returned so callers can
// report convergence effort.
func SolveBlocks(fn *ir.Func, dir Direction, transfer func(b *ir.Block) bool) int {
	var order []*ir.Block
	if dir == Forward {
		order = ReversePostorder(fn)
	} else {
		order = Postorder(fn)
	}
	rank := make([]int, len(fn.Blocks))
	for i, b := range order {
		rank[b.ID] = i
	}
	w := NewWorklist(rank)
	for _, b := range order {
		w.Push(int(b.ID))
	}
	byID := make([]*ir.Block, len(fn.Blocks))
	for _, b := range fn.Blocks {
		byID[b.ID] = b
	}
	steps := 0
	for {
		id, ok := w.Pop()
		if !ok {
			if r := obs.Metrics(); r != nil {
				r.Counter("dataflow.solves").Inc()
				r.Counter("dataflow.steps").Add(int64(steps))
				r.Counter("dataflow.pushes").Add(int64(w.pushes))
				r.Histogram("dataflow.steps_per_solve", obs.SizeBuckets).Observe(int64(steps))
			}
			return steps
		}
		b := byID[id]
		steps++
		if !transfer(b) {
			continue
		}
		if dir == Forward {
			for _, s := range b.Succs {
				w.Push(int(s.ID))
			}
		} else {
			for _, p := range b.Preds {
				w.Push(int(p.ID))
			}
		}
	}
}
