// Package ast defines the abstract syntax tree for the C subset. The
// parser produces it; sema annotates it with types and symbols; irgen
// lowers it to IL.
package ast

import (
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------- Expressions ----------

// Expr is an expression node. After sema, Type() reports the
// expression's C type.
type Expr interface {
	Node
	Type() *types.Type
	setType(*types.Type)
}

type exprBase struct {
	P token.Pos
	T *types.Type
}

func (e *exprBase) Pos() token.Pos        { return e.P }
func (e *exprBase) Type() *types.Type     { return e.T }
func (e *exprBase) setType(t *types.Type) { e.T = t }

// SetPos records the node's source position (used by the parser).
func (e *exprBase) SetPos(p token.Pos) { e.P = p }

// SetType annotates e with its type (used by sema).
func SetType(e Expr, t *types.Type) { e.setType(t) }

// IntLit is an integer or character constant.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a double constant.
type FloatLit struct {
	exprBase
	Value float64
}

// StringLit is a string constant; sema assigns it a global tag.
type StringLit struct {
	exprBase
	Value string
	// Index is filled by sema: which string-pool entry this is.
	Index int
}

// Ident is a name use. Sym is resolved by sema.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// Unary is a prefix operator: - ! ~ * & ++ --.
type Unary struct {
	exprBase
	Op token.Kind
	X  Expr
}

// Postfix is a postfix ++ or --.
type Postfix struct {
	exprBase
	Op token.Kind
	X  Expr
}

// Binary is an infix operator (arithmetic, comparison, logical,
// bitwise).
type Binary struct {
	exprBase
	Op   token.Kind
	X, Y Expr
}

// Assign is an assignment, possibly compound (+= etc.; Op == Assign
// for plain =).
type Assign struct {
	exprBase
	Op   token.Kind
	X, Y Expr
}

// Cond is the ?: operator.
type Cond struct {
	exprBase
	C, X, Y Expr
}

// Index is X[I].
type Index struct {
	exprBase
	X, I Expr
}

// Call is a function call; Fun is an Ident naming a function or an
// expression of function-pointer type.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Member is X.Name (Arrow false) or X->Name (Arrow true).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	// Field is resolved by sema.
	Field types.Field
}

// SizeofExpr is sizeof(type) or sizeof expr; sema folds it to a
// constant size.
type SizeofExpr struct {
	exprBase
	// Arg is nil when OfType is set.
	Arg    Expr
	OfType *types.Type
	Size   int
}

// Cast is an explicit conversion (T)X.
type Cast struct {
	exprBase
	To *types.Type
	X  Expr
}

// ListExpr is a brace-enclosed initializer list; it appears only as a
// VarDecl initializer (possibly nested) and never has a type of its
// own.
type ListExpr struct {
	exprBase
	Elems []Expr
}

// ---------- Statements ----------

// Stmt is a statement node.
type Stmt interface{ Node }

type stmtBase struct{ P token.Pos }

func (s *stmtBase) Pos() token.Pos { return s.P }

// SetPos records the node's source position (used by the parser).
func (s *stmtBase) SetPos(p token.Pos) { s.P = p }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// If is if/else.
type If struct {
	stmtBase
	Cond       Expr
	Then, Else Stmt // Else may be nil
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile is a do/while loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For is a for loop; Init/Cond/Post may be nil. Init may be a
// DeclStmt or ExprStmt.
type For struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Return returns Value (may be nil).
type Return struct {
	stmtBase
	Value Expr
}

// Break exits the innermost loop.
type Break struct{ stmtBase }

// Continue advances the innermost loop.
type Continue struct{ stmtBase }

// Empty is ";".
type Empty struct{ stmtBase }

// ---------- Declarations ----------

// SymbolKind classifies a resolved symbol.
type SymbolKind int

const (
	SymGlobal SymbolKind = iota
	SymLocal
	SymParam
	SymFunc
	SymEnumConst
)

// Symbol is a resolved name. sema creates one per declaration.
type Symbol struct {
	Kind SymbolKind
	Name string
	Type *types.Type

	// AddrTaken is set when & is applied to the symbol, or when it
	// is an array/struct (whose uses are address computations).
	AddrTaken bool

	// EnumValue is the value of a SymEnumConst.
	EnumValue int64

	// Func is the owning function for locals and params.
	Func *FuncDecl

	// Uniq is a per-function unique id assigned by sema (used to
	// name tags for shadowed locals distinctly).
	Uniq int
}

// VarDecl is one declared variable (global or local).
type VarDecl struct {
	P    token.Pos
	Name string
	Type *types.Type
	// Init is the initializer expression, or nil. Aggregate
	// initializers use InitList.
	Init Expr
	// InitList holds brace-initializer elements for arrays and
	// structs.
	InitList []Expr
	// Sym is filled by sema.
	Sym *Symbol
}

func (d *VarDecl) Pos() token.Pos { return d.P }

// ParamDecl is one function parameter.
type ParamDecl struct {
	P    token.Pos
	Name string
	Type *types.Type
	Sym  *Symbol
}

func (d *ParamDecl) Pos() token.Pos { return d.P }

// FuncDecl is a function definition or prototype (Body nil).
type FuncDecl struct {
	P      token.Pos
	Name   string
	Result *types.Type
	Params []*ParamDecl
	Body   *Block
	Sym    *Symbol

	// Locals collects every local VarDecl in the body, filled by
	// sema, for frame layout.
	Locals []*VarDecl
}

func (d *FuncDecl) Pos() token.Pos { return d.P }

// StructDecl declares a struct type.
type StructDecl struct {
	P    token.Pos
	Name string
	Type *types.Type
}

func (d *StructDecl) Pos() token.Pos { return d.P }

// EnumDecl declares enumeration constants.
type EnumDecl struct {
	P     token.Pos
	Names []string
	Vals  []int64
}

func (d *EnumDecl) Pos() token.Pos { return d.P }

// File is one translation unit.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
	Structs []*StructDecl
	Enums   []*EnumDecl
	// Decls preserves top-level declaration order for diagnostics.
	Decls []Node
}
