// Package lexer tokenizes C-subset source text into the token stream
// the recursive-descent parser consumes. It handles the subset's full
// lexical grammar — identifiers and keywords, integer, floating,
// character, and string literals (with the usual escape sequences),
// every multi-character operator, and both comment forms — and
// reports each token with its line and column so front-end errors
// point at source positions.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"regpromo/internal/cc/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans one source file.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// New returns a lexer over src; file names positions in diagnostics.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Tokenize scans the entire input, returning the token stream ending
// in an EOF token.
func Tokenize(file, src string) ([]token.Token, error) {
	lx := New(file, src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(start, "unterminated block comment")
			}
		case c == '#':
			// Preprocessor lines (e.g. #define used as commentary
			// in the benchmark sources) are not supported; the
			// bench sources avoid them. Treat as an error so
			// mistakes surface early.
			return l.errorf(l.pos(), "preprocessor directives are not supported")
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdent(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := token.Keywords[text]; ok {
			return token.Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return token.Token{Kind: token.Ident, Pos: pos, Text: text}, nil
	case isDigit(c), c == '.' && isDigit(l.peek2()):
		return l.number(pos)
	case c == '\'':
		return l.charLit(pos)
	case c == '"':
		return l.stringLit(pos)
	}
	return l.operator(pos)
}

func (l *Lexer) number(pos token.Pos) (token.Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.off], 16, 64)
		if err != nil {
			return token.Token{}, l.errorf(pos, "bad hex literal %q", l.src[start:l.off])
		}
		l.skipIntSuffix()
		return token.Token{Kind: token.IntLit, Pos: pos, Int: int64(v), Text: l.src[start:l.off]}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		if n := l.peek2(); isDigit(n) || ((n == '+' || n == '-') && l.off+2 < len(l.src) && isDigit(l.src[l.off+2])) {
			isFloat = true
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token.Token{}, l.errorf(pos, "bad float literal %q", text)
		}
		return token.Token{Kind: token.FloatLit, Pos: pos, Float: v, Text: text}, nil
	}
	v, err := strconv.ParseUint(text, 10, 64)
	if err != nil {
		return token.Token{}, l.errorf(pos, "bad integer literal %q", text)
	}
	l.skipIntSuffix()
	return token.Token{Kind: token.IntLit, Pos: pos, Int: int64(v), Text: text}, nil
}

// skipIntSuffix consumes C integer suffixes (u, l, ul, …), which the
// subset accepts and ignores.
func (l *Lexer) skipIntSuffix() {
	for l.off < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
		default:
			return
		}
	}
}

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *Lexer) escape(pos token.Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, l.errorf(pos, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	case 'b':
		return '\b', nil
	case 'a':
		return 7, nil
	case 'f':
		return '\f', nil
	case 'v':
		return '\v', nil
	}
	return 0, l.errorf(pos, "unsupported escape \\%c", c)
}

func (l *Lexer) charLit(pos token.Pos) (token.Token, error) {
	l.advance() // consume '
	if l.off >= len(l.src) {
		return token.Token{}, l.errorf(pos, "unterminated char literal")
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		e, err := l.escape(pos)
		if err != nil {
			return token.Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return token.Token{}, l.errorf(pos, "unterminated char literal")
	}
	return token.Token{Kind: token.CharLit, Pos: pos, Int: int64(v)}, nil
}

func (l *Lexer) stringLit(pos token.Pos) (token.Token, error) {
	var sb strings.Builder
	for {
		l.advance() // consume "
		for {
			if l.off >= len(l.src) {
				return token.Token{}, l.errorf(pos, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\n' {
				return token.Token{}, l.errorf(pos, "newline in string literal")
			}
			if c == '\\' {
				e, err := l.escape(pos)
				if err != nil {
					return token.Token{}, err
				}
				sb.WriteByte(e)
				continue
			}
			sb.WriteByte(c)
		}
		// Adjacent string literals concatenate, as in C.
		if err := l.skipSpaceAndComments(); err != nil {
			return token.Token{}, err
		}
		if l.peek() != '"' {
			break
		}
	}
	return token.Token{Kind: token.StringLit, Pos: pos, Str: sb.String()}, nil
}

func (l *Lexer) operator(pos token.Pos) (token.Token, error) {
	mk := func(k token.Kind, n int) (token.Token, error) {
		for i := 0; i < n; i++ {
			l.advance()
		}
		return token.Token{Kind: k, Pos: pos}, nil
	}
	c, c2 := l.peek(), l.peek2()
	var c3 byte
	if l.off+2 < len(l.src) {
		c3 = l.src[l.off+2]
	}
	switch c {
	case '(':
		return mk(token.LParen, 1)
	case ')':
		return mk(token.RParen, 1)
	case '{':
		return mk(token.LBrace, 1)
	case '}':
		return mk(token.RBrace, 1)
	case '[':
		return mk(token.LBracket, 1)
	case ']':
		return mk(token.RBracket, 1)
	case ';':
		return mk(token.Semi, 1)
	case ',':
		return mk(token.Comma, 1)
	case '?':
		return mk(token.Question, 1)
	case ':':
		return mk(token.Colon, 1)
	case '~':
		return mk(token.Tilde, 1)
	case '.':
		if c2 == '.' && c3 == '.' {
			return mk(token.Ellipsis, 3)
		}
		return mk(token.Dot, 1)
	case '+':
		switch c2 {
		case '+':
			return mk(token.Inc, 2)
		case '=':
			return mk(token.PlusAssign, 2)
		}
		return mk(token.Plus, 1)
	case '-':
		switch c2 {
		case '-':
			return mk(token.Dec, 2)
		case '=':
			return mk(token.MinusAssign, 2)
		case '>':
			return mk(token.Arrow, 2)
		}
		return mk(token.Minus, 1)
	case '*':
		if c2 == '=' {
			return mk(token.StarAssign, 2)
		}
		return mk(token.Star, 1)
	case '/':
		if c2 == '=' {
			return mk(token.SlashAssign, 2)
		}
		return mk(token.Slash, 1)
	case '%':
		if c2 == '=' {
			return mk(token.PercentAssign, 2)
		}
		return mk(token.Percent, 1)
	case '=':
		if c2 == '=' {
			return mk(token.Eq, 2)
		}
		return mk(token.Assign, 1)
	case '!':
		if c2 == '=' {
			return mk(token.NotEq, 2)
		}
		return mk(token.Not, 1)
	case '<':
		if c2 == '<' {
			if c3 == '=' {
				return mk(token.ShlAssign, 3)
			}
			return mk(token.Shl, 2)
		}
		if c2 == '=' {
			return mk(token.Le, 2)
		}
		return mk(token.Lt, 1)
	case '>':
		if c2 == '>' {
			if c3 == '=' {
				return mk(token.ShrAssign, 3)
			}
			return mk(token.Shr, 2)
		}
		if c2 == '=' {
			return mk(token.Ge, 2)
		}
		return mk(token.Gt, 1)
	case '&':
		if c2 == '&' {
			return mk(token.AndAnd, 2)
		}
		if c2 == '=' {
			return mk(token.AndAssign, 2)
		}
		return mk(token.And, 1)
	case '|':
		if c2 == '|' {
			return mk(token.OrOr, 2)
		}
		if c2 == '=' {
			return mk(token.OrAssign, 2)
		}
		return mk(token.Or, 1)
	case '^':
		if c2 == '=' {
			return mk(token.XorAssign, 2)
		}
		return mk(token.Xor, 1)
	}
	return token.Token{}, l.errorf(pos, "unexpected character %q", c)
}
