package lexer

import (
	"testing"

	"regpromo/internal/cc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize("t.c", src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	want = append(want, token.EOF)
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdentifiers(t *testing.T) {
	expectKinds(t, "int interior if iffy while",
		token.KwInt, token.Ident, token.KwIf, token.Ident, token.KwWhile)
}

func TestOperators(t *testing.T) {
	expectKinds(t, "a+++b", token.Ident, token.Inc, token.Plus, token.Ident)
	expectKinds(t, "a->b", token.Ident, token.Arrow, token.Ident)
	expectKinds(t, "a<<=b>>=c", token.Ident, token.ShlAssign, token.Ident, token.ShrAssign, token.Ident)
	expectKinds(t, "a<=b<c<<d", token.Ident, token.Le, token.Ident, token.Lt, token.Ident, token.Shl, token.Ident)
	expectKinds(t, "x&&y&z||w", token.Ident, token.AndAnd, token.Ident, token.And, token.Ident, token.OrOr, token.Ident)
	expectKinds(t, "...", token.Ellipsis)
	expectKinds(t, "a %= b ^= c |= d",
		token.Ident, token.PercentAssign, token.Ident, token.XorAssign,
		token.Ident, token.OrAssign, token.Ident)
}

func TestIntegerLiterals(t *testing.T) {
	toks, err := Tokenize("t.c", "0 42 0x2A 0xff 100u 200L 300UL")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 42, 42, 255, 100, 200, 300}
	for i, w := range want {
		if toks[i].Kind != token.IntLit || toks[i].Int != w {
			t.Fatalf("token %d = %+v, want int %d", i, toks[i], w)
		}
	}
}

func TestFloatLiterals(t *testing.T) {
	toks, err := Tokenize("t.c", "1.5 0.25 2e3 1.5e-2 7.")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 0.25, 2000, 0.015, 7}
	for i, w := range want {
		if toks[i].Kind != token.FloatLit || toks[i].Float != w {
			t.Fatalf("token %d = %+v, want float %g", i, toks[i], w)
		}
	}
}

func TestDotVersusFloat(t *testing.T) {
	expectKinds(t, "a.b", token.Ident, token.Dot, token.Ident)
	toks, _ := Tokenize("t.c", ".5")
	if toks[0].Kind != token.FloatLit || toks[0].Float != 0.5 {
		t.Fatalf("got %+v", toks[0])
	}
}

func TestCharLiterals(t *testing.T) {
	toks, err := Tokenize("t.c", `'a' '\n' '\0' '\\' '\''`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{'a', '\n', 0, '\\', '\''}
	for i, w := range want {
		if toks[i].Kind != token.CharLit || toks[i].Int != w {
			t.Fatalf("token %d = %+v, want char %d", i, toks[i], w)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := Tokenize("t.c", `"hello", "a\tb"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Str != "hello" {
		t.Fatalf("got %q", toks[0].Str)
	}
	if toks[2].Str != "a\tb" {
		t.Fatalf("got %q", toks[2].Str)
	}
}

func TestAdjacentStringsConcatenate(t *testing.T) {
	toks, err := Tokenize("t.c", `"x" "y"  "z"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Str != "xyz" {
		t.Fatalf("concatenation got %q", toks[0].Str)
	}
	if toks[1].Kind != token.EOF {
		t.Fatalf("expected single token, next = %v", toks[1])
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a /* b c */ d // e\nf",
		token.Ident, token.Ident, token.Ident)
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("t.c", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"\"unterminated",
		"'a",
		"/* unterminated",
		"#include <stdio.h>",
		"@",
		`'\q'`,
	} {
		if _, err := Tokenize("t.c", src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}
