package irgen

import (
	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/sema"
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
	"regpromo/internal/ir"
)

// lvKind classifies how an lvalue is accessed.
type lvKind int

const (
	// lvReg: the variable lives in a virtual register.
	lvReg lvKind = iota
	// lvTag: a named scalar memory location, accessed with explicit
	// sLoad/sStore.
	lvTag
	// lvMem: a computed address, accessed with pLoad/pStore carrying
	// a may-reference tag set.
	lvMem
)

// lvalue describes a storage location an expression designates.
type lvalue struct {
	kind lvKind
	reg  ir.Reg    // lvReg: the home register; lvMem: the address
	tag  ir.TagID  // lvTag
	tags ir.TagSet // lvMem may-set (⊤ when pointer-derived)
	typ  *types.Type
}

// varLValue builds the lvalue for a plain variable reference.
func (g *generator) varLValue(sym *ast.Symbol) lvalue {
	if r, ok := g.symRegs[sym]; ok {
		return lvalue{kind: lvReg, reg: r, typ: sym.Type}
	}
	tag := g.symTags[sym]
	if sym.Type.IsScalar() {
		return lvalue{kind: lvTag, tag: tag, typ: sym.Type}
	}
	// Aggregates are manipulated by address.
	addr := g.emitTo(ir.Instr{Op: ir.OpAddrOf, Tag: tag})
	return lvalue{kind: lvMem, reg: addr, tags: ir.NewTagSet(tag), typ: sym.Type}
}

// load produces the value stored in lv.
func (g *generator) load(lv lvalue) ir.Reg {
	switch lv.kind {
	case lvReg:
		return lv.reg
	case lvTag:
		return g.emitTo(ir.Instr{Op: ir.OpSLoad, Tag: lv.tag, Size: lv.typ.Size()})
	default:
		return g.emitTo(ir.Instr{Op: ir.OpPLoad, A: lv.reg, Tags: lv.tags, Size: lv.typ.Size()})
	}
}

// store writes v into lv.
func (g *generator) store(lv lvalue, v ir.Reg) {
	switch lv.kind {
	case lvReg:
		g.emit(ir.Instr{Op: ir.OpCopy, Dst: lv.reg, A: v})
	case lvTag:
		g.emit(ir.Instr{Op: ir.OpSStore, Tag: lv.tag, A: v, Size: lv.typ.Size()})
	default:
		g.emit(ir.Instr{Op: ir.OpPStore, A: lv.reg, B: v, Tags: lv.tags, Size: lv.typ.Size()})
	}
}

// addressOf materializes the address of lv (which must not be lvReg).
func (g *generator) addressOf(lv lvalue) (ir.Reg, ir.TagSet) {
	switch lv.kind {
	case lvTag:
		addr := g.emitTo(ir.Instr{Op: ir.OpAddrOf, Tag: lv.tag})
		return addr, ir.NewTagSet(lv.tag)
	default:
		return lv.reg, lv.tags
	}
}

// genLValue lowers an lvalue expression to a storage designator.
func (g *generator) genLValue(e ast.Expr) (lvalue, error) {
	switch n := e.(type) {
	case *ast.Ident:
		return g.varLValue(n.Sym), nil

	case *ast.Unary: // *p
		if n.Op != token.Star {
			return lvalue{}, errorf(n.Pos(), "not an lvalue: unary %s", n.Op)
		}
		addr, err := g.genExpr(n.X)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{kind: lvMem, reg: addr, tags: ir.TopSet(), typ: n.Type()}, nil

	case *ast.Index:
		return g.genIndexLValue(n)

	case *ast.Member:
		return g.genMemberLValue(n)
	}
	return lvalue{}, errorf(e.Pos(), "not an lvalue: %T", e)
}

// genIndexLValue lowers x[i]. When x is (derived from) a named array
// the may-set stays that array's tag; when x is a pointer value the
// set is ⊤ until analysis shrinks it.
func (g *generator) genIndexLValue(n *ast.Index) (lvalue, error) {
	base, tags, err := g.genBaseAddr(n.X)
	if err != nil {
		return lvalue{}, err
	}
	idx, err := g.genExprAs(n.I, types.LongType)
	if err != nil {
		return lvalue{}, err
	}
	elem := n.Type()
	scaled := idx
	if sz := sizeOfStep(elem); sz != 1 {
		szr := g.loadImm(int64(sz))
		scaled = g.emitTo(ir.Instr{Op: ir.OpMul, A: idx, B: szr})
	}
	addr := g.emitTo(ir.Instr{Op: ir.OpAdd, A: base, B: scaled})
	return lvalue{kind: lvMem, reg: addr, tags: tags, typ: elem}, nil
}

// sizeOfStep is the pointer-arithmetic step for element type t (an
// array element steps by the whole sub-array size).
func sizeOfStep(t *types.Type) int { return t.Size() }

// genBaseAddr produces (address, may-set) for the base of an index or
// member expression. Named arrays keep their singleton tag set;
// pointer values get ⊤.
func (g *generator) genBaseAddr(e ast.Expr) (ir.Reg, ir.TagSet, error) {
	t := e.Type()
	if t.Kind == types.Array {
		lv, err := g.genLValue(e)
		if err != nil {
			return ir.RegInvalid, ir.TagSet{}, err
		}
		addr, tags := g.addressOf(lv)
		return addr, tags, nil
	}
	// Pointer-typed base: evaluate the pointer value.
	addr, err := g.genExpr(e)
	if err != nil {
		return ir.RegInvalid, ir.TagSet{}, err
	}
	return addr, ir.TopSet(), nil
}

func (g *generator) genMemberLValue(n *ast.Member) (lvalue, error) {
	var base ir.Reg
	var tags ir.TagSet
	if n.Arrow {
		p, err := g.genExpr(n.X)
		if err != nil {
			return lvalue{}, err
		}
		base, tags = p, ir.TopSet()
	} else {
		lv, err := g.genLValue(n.X)
		if err != nil {
			return lvalue{}, err
		}
		base, tags = g.addressOf(lv)
	}
	addr := base
	if n.Field.Offset != 0 {
		off := g.loadImm(int64(n.Field.Offset))
		addr = g.emitTo(ir.Instr{Op: ir.OpAdd, A: base, B: off})
	}
	return lvalue{kind: lvMem, reg: addr, tags: tags, typ: n.Field.Type}, nil
}

// convert coerces a value from type `from` to type `to`.
func (g *generator) convert(v ir.Reg, from, to *types.Type) ir.Reg {
	if from.Kind == types.Double && to.Kind != types.Double && to.IsScalar() {
		return g.emitTo(ir.Instr{Op: ir.OpF2I, A: v})
	}
	if from.Kind != types.Double && to.Kind == types.Double {
		return g.emitTo(ir.Instr{Op: ir.OpI2F, A: v})
	}
	// Integer and pointer widths are all held canonically in 64-bit
	// registers; truncation happens at store time.
	return v
}

// genExprAs evaluates e and converts the result to type to.
func (g *generator) genExprAs(e ast.Expr, to *types.Type) (ir.Reg, error) {
	v, err := g.genExpr(e)
	if err != nil {
		return ir.RegInvalid, err
	}
	return g.convert(v, exprValueType(e), to), nil
}

// exprValueType is e's type after array/function decay.
func exprValueType(e ast.Expr) *types.Type {
	t := e.Type()
	switch t.Kind {
	case types.Array:
		return types.PointerTo(t.Elem)
	case types.Func:
		return types.PointerTo(t)
	}
	return t
}

// genExpr evaluates e for its value.
func (g *generator) genExpr(e ast.Expr) (ir.Reg, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return g.loadImm(n.Value), nil

	case *ast.FloatLit:
		return g.emitTo(ir.Instr{Op: ir.OpLoadF, FImm: n.Value}), nil

	case *ast.StringLit:
		return g.emitTo(ir.Instr{Op: ir.OpAddrOf, Tag: g.strTags[n.Index]}), nil

	case *ast.Ident:
		switch n.Sym.Kind {
		case ast.SymEnumConst:
			return g.loadImm(n.Sym.EnumValue), nil
		case ast.SymFunc:
			return g.emitTo(ir.Instr{Op: ir.OpAddrOf, Callee: n.Sym.Name}), nil
		}
		if n.Type().Kind == types.Array || n.Type().Kind == types.Struct {
			lv := g.varLValue(n.Sym)
			addr, _ := g.addressOf(lv)
			return addr, nil
		}
		return g.load(g.varLValue(n.Sym)), nil

	case *ast.Unary:
		return g.genUnary(n)

	case *ast.Postfix:
		lv, err := g.genLValue(n.X)
		if err != nil {
			return ir.RegInvalid, err
		}
		old := g.load(lv)
		step, isF := g.stepFor(lv.typ)
		var op ir.Op
		if isF {
			op = ir.OpFAdd
			if n.Op == token.Dec {
				op = ir.OpFSub
			}
		} else {
			op = ir.OpAdd
			if n.Op == token.Dec {
				op = ir.OpSub
			}
		}
		next := g.emitTo(ir.Instr{Op: op, A: old, B: step})
		g.store(lv, next)
		return old, nil

	case *ast.Binary:
		return g.genBinary(n)

	case *ast.Assign:
		return g.genAssign(n)

	case *ast.Cond:
		return g.genCondExpr(n)

	case *ast.Index:
		lv, err := g.genIndexLValue(n)
		if err != nil {
			return ir.RegInvalid, err
		}
		if lv.typ.Kind == types.Array || lv.typ.Kind == types.Struct {
			return lv.reg, nil // decays to its address
		}
		return g.load(lv), nil

	case *ast.Member:
		lv, err := g.genMemberLValue(n)
		if err != nil {
			return ir.RegInvalid, err
		}
		if lv.typ.Kind == types.Array || lv.typ.Kind == types.Struct {
			return lv.reg, nil
		}
		return g.load(lv), nil

	case *ast.Call:
		return g.genCall(n)

	case *ast.SizeofExpr:
		return g.loadImm(int64(n.Size)), nil

	case *ast.Cast:
		if n.To.Kind == types.Void {
			_, err := g.genExpr(n.X)
			return ir.RegInvalid, err
		}
		return g.genExprAs(n.X, n.To)
	}
	return ir.RegInvalid, errorf(e.Pos(), "unhandled expression %T", e)
}

// stepFor returns the register holding the increment step for ++/--
// on type t (elem size for pointers, 1 or 1.0 otherwise) and whether
// the type is floating.
func (g *generator) stepFor(t *types.Type) (ir.Reg, bool) {
	if t.Kind == types.Double {
		return g.emitTo(ir.Instr{Op: ir.OpLoadF, FImm: 1}), true
	}
	if t.Kind == types.Pointer {
		return g.loadImm(int64(t.Elem.Size())), false
	}
	return g.loadImm(1), false
}

func (g *generator) genUnary(n *ast.Unary) (ir.Reg, error) {
	switch n.Op {
	case token.Minus:
		if n.Type().Kind == types.Double {
			v, err := g.genExprAs(n.X, types.DoubleType)
			if err != nil {
				return ir.RegInvalid, err
			}
			return g.emitTo(ir.Instr{Op: ir.OpFNeg, A: v}), nil
		}
		v, err := g.genExprAs(n.X, types.LongType)
		if err != nil {
			return ir.RegInvalid, err
		}
		return g.emitTo(ir.Instr{Op: ir.OpNeg, A: v}), nil

	case token.Tilde:
		v, err := g.genExprAs(n.X, types.LongType)
		if err != nil {
			return ir.RegInvalid, err
		}
		return g.emitTo(ir.Instr{Op: ir.OpNot, A: v}), nil

	case token.Not:
		// !x is x == 0 in the operand's domain.
		xt := exprValueType(n.X)
		if xt.Kind == types.Double {
			v, err := g.genExpr(n.X)
			if err != nil {
				return ir.RegInvalid, err
			}
			z := g.emitTo(ir.Instr{Op: ir.OpLoadF, FImm: 0})
			return g.emitTo(ir.Instr{Op: ir.OpFCmpEQ, A: v, B: z}), nil
		}
		v, err := g.genExpr(n.X)
		if err != nil {
			return ir.RegInvalid, err
		}
		z := g.loadImm(0)
		return g.emitTo(ir.Instr{Op: ir.OpCmpEQ, A: v, B: z}), nil

	case token.Star:
		if n.Type().Kind == types.Func {
			// *fp is fp.
			return g.genExpr(n.X)
		}
		lv, err := g.genLValue(n)
		if err != nil {
			return ir.RegInvalid, err
		}
		if lv.typ.Kind == types.Array || lv.typ.Kind == types.Struct {
			return lv.reg, nil
		}
		return g.load(lv), nil

	case token.And:
		if id, ok := n.X.(*ast.Ident); ok && id.Sym.Kind == ast.SymFunc {
			return g.emitTo(ir.Instr{Op: ir.OpAddrOf, Callee: id.Sym.Name}), nil
		}
		lv, err := g.genLValue(n.X)
		if err != nil {
			return ir.RegInvalid, err
		}
		addr, _ := g.addressOf(lv)
		return addr, nil

	case token.Inc, token.Dec:
		lv, err := g.genLValue(n.X)
		if err != nil {
			return ir.RegInvalid, err
		}
		old := g.load(lv)
		step, isF := g.stepFor(lv.typ)
		var op ir.Op
		if isF {
			op = ir.OpFAdd
			if n.Op == token.Dec {
				op = ir.OpFSub
			}
		} else {
			op = ir.OpAdd
			if n.Op == token.Dec {
				op = ir.OpSub
			}
		}
		next := g.emitTo(ir.Instr{Op: op, A: old, B: step})
		g.store(lv, next)
		return next, nil
	}
	return ir.RegInvalid, errorf(n.Pos(), "unhandled unary %s", n.Op)
}

var intBinOps = map[token.Kind]ir.Op{
	token.Plus:    ir.OpAdd,
	token.Minus:   ir.OpSub,
	token.Star:    ir.OpMul,
	token.Slash:   ir.OpDiv,
	token.Percent: ir.OpRem,
	token.And:     ir.OpAnd,
	token.Or:      ir.OpOr,
	token.Xor:     ir.OpXor,
	token.Shl:     ir.OpShl,
	token.Shr:     ir.OpShr,
	token.Eq:      ir.OpCmpEQ,
	token.NotEq:   ir.OpCmpNE,
	token.Lt:      ir.OpCmpLT,
	token.Le:      ir.OpCmpLE,
	token.Gt:      ir.OpCmpGT,
	token.Ge:      ir.OpCmpGE,
}

var floatBinOps = map[token.Kind]ir.Op{
	token.Plus:  ir.OpFAdd,
	token.Minus: ir.OpFSub,
	token.Star:  ir.OpFMul,
	token.Slash: ir.OpFDiv,
	token.Eq:    ir.OpFCmpEQ,
	token.NotEq: ir.OpFCmpNE,
	token.Lt:    ir.OpFCmpLT,
	token.Le:    ir.OpFCmpLE,
	token.Gt:    ir.OpFCmpGT,
	token.Ge:    ir.OpFCmpGE,
}

func (g *generator) genBinary(n *ast.Binary) (ir.Reg, error) {
	switch n.Op {
	case token.AndAnd, token.OrOr:
		return g.genShortCircuit(n)
	}

	xt, yt := exprValueType(n.X), exprValueType(n.Y)

	// Pointer arithmetic.
	if n.Op == token.Plus || n.Op == token.Minus {
		if xt.Kind == types.Pointer && yt.IsInteger() {
			return g.genPtrOffset(n.X, n.Y, n.Op == token.Minus)
		}
		if n.Op == token.Plus && xt.IsInteger() && yt.Kind == types.Pointer {
			return g.genPtrOffset(n.Y, n.X, false)
		}
		if n.Op == token.Minus && xt.Kind == types.Pointer && yt.Kind == types.Pointer {
			p, err := g.genExpr(n.X)
			if err != nil {
				return ir.RegInvalid, err
			}
			q, err := g.genExpr(n.Y)
			if err != nil {
				return ir.RegInvalid, err
			}
			diff := g.emitTo(ir.Instr{Op: ir.OpSub, A: p, B: q})
			if sz := xt.Elem.Size(); sz > 1 {
				szr := g.loadImm(int64(sz))
				diff = g.emitTo(ir.Instr{Op: ir.OpDiv, A: diff, B: szr})
			}
			return diff, nil
		}
	}

	// Pointer comparisons compare raw addresses.
	common := types.LongType
	switch {
	case xt.Kind == types.Double || yt.Kind == types.Double:
		common = types.DoubleType
	case xt.Kind == types.Pointer || yt.Kind == types.Pointer:
		common = types.LongType
	}

	x, err := g.genExprAs(n.X, common)
	if err != nil {
		return ir.RegInvalid, err
	}
	y, err := g.genExprAs(n.Y, common)
	if err != nil {
		return ir.RegInvalid, err
	}
	if common.Kind == types.Double {
		op, ok := floatBinOps[n.Op]
		if !ok {
			return ir.RegInvalid, errorf(n.Pos(), "invalid float op %s", n.Op)
		}
		return g.emitTo(ir.Instr{Op: op, A: x, B: y}), nil
	}
	op, ok := intBinOps[n.Op]
	if !ok {
		return ir.RegInvalid, errorf(n.Pos(), "invalid op %s", n.Op)
	}
	return g.emitTo(ir.Instr{Op: op, A: x, B: y}), nil
}

// genPtrOffset emits p ± i*sizeof(*p).
func (g *generator) genPtrOffset(pe, ie ast.Expr, sub bool) (ir.Reg, error) {
	p, err := g.genExpr(pe)
	if err != nil {
		return ir.RegInvalid, err
	}
	i, err := g.genExprAs(ie, types.LongType)
	if err != nil {
		return ir.RegInvalid, err
	}
	elem := exprValueType(pe).Elem
	if sz := elem.Size(); sz != 1 {
		szr := g.loadImm(int64(sz))
		i = g.emitTo(ir.Instr{Op: ir.OpMul, A: i, B: szr})
	}
	op := ir.OpAdd
	if sub {
		op = ir.OpSub
	}
	return g.emitTo(ir.Instr{Op: op, A: p, B: i}), nil
}

// genShortCircuit lowers && and || with control flow, producing 0/1.
func (g *generator) genShortCircuit(n *ast.Binary) (ir.Reg, error) {
	result := g.fn.NewReg()
	evalY := g.fn.NewBlock("")
	short := g.fn.NewBlock("")
	join := g.fn.NewBlock("")

	if n.Op == token.AndAnd {
		if err := g.genCond(n.X, evalY, short); err != nil {
			return ir.RegInvalid, err
		}
	} else {
		if err := g.genCond(n.X, short, evalY); err != nil {
			return ir.RegInvalid, err
		}
	}

	// Short-circuit arm: result is 0 for &&, 1 for ||.
	g.cur = short
	sv := int64(0)
	if n.Op == token.OrOr {
		sv = 1
	}
	c := g.loadImm(sv)
	g.emit(ir.Instr{Op: ir.OpCopy, Dst: result, A: c})
	g.branchTo(join)

	// Full-evaluation arm: result is !!y.
	g.cur = evalY
	y, err := g.genTruth(n.Y)
	if err != nil {
		return ir.RegInvalid, err
	}
	g.emit(ir.Instr{Op: ir.OpCopy, Dst: result, A: y})
	g.branchTo(join)

	g.cur = join
	return result, nil
}

// genTruth evaluates e to 0 or 1.
func (g *generator) genTruth(e ast.Expr) (ir.Reg, error) {
	t := exprValueType(e)
	v, err := g.genExpr(e)
	if err != nil {
		return ir.RegInvalid, err
	}
	if t.Kind == types.Double {
		z := g.emitTo(ir.Instr{Op: ir.OpLoadF, FImm: 0})
		return g.emitTo(ir.Instr{Op: ir.OpFCmpNE, A: v, B: z}), nil
	}
	z := g.loadImm(0)
	return g.emitTo(ir.Instr{Op: ir.OpCmpNE, A: v, B: z}), nil
}

func (g *generator) genAssign(n *ast.Assign) (ir.Reg, error) {
	lv, err := g.genLValue(n.X)
	if err != nil {
		return ir.RegInvalid, err
	}
	if n.Op == token.Assign {
		v, err := g.genExprAs(n.Y, valueType(lv.typ))
		if err != nil {
			return ir.RegInvalid, err
		}
		g.store(lv, v)
		return v, nil
	}

	// Compound assignment: load, operate, store.
	old := g.load(lv)
	dt := lv.typ

	// Pointer += / -= scale the operand.
	if dt.Kind == types.Pointer && (n.Op == token.PlusAssign || n.Op == token.MinusAssign) {
		i, err := g.genExprAs(n.Y, types.LongType)
		if err != nil {
			return ir.RegInvalid, err
		}
		if sz := dt.Elem.Size(); sz != 1 {
			szr := g.loadImm(int64(sz))
			i = g.emitTo(ir.Instr{Op: ir.OpMul, A: i, B: szr})
		}
		op := ir.OpAdd
		if n.Op == token.MinusAssign {
			op = ir.OpSub
		}
		res := g.emitTo(ir.Instr{Op: op, A: old, B: i})
		g.store(lv, res)
		return res, nil
	}

	binTok := compoundBase[n.Op]
	common := types.LongType
	if dt.Kind == types.Double || exprValueType(n.Y).Kind == types.Double {
		common = types.DoubleType
	}
	x := g.convert(old, dt, common)
	y, err := g.genExprAs(n.Y, common)
	if err != nil {
		return ir.RegInvalid, err
	}
	var res ir.Reg
	if common.Kind == types.Double {
		op, ok := floatBinOps[binTok]
		if !ok {
			return ir.RegInvalid, errorf(n.Pos(), "invalid float compound op")
		}
		res = g.emitTo(ir.Instr{Op: op, A: x, B: y})
	} else {
		res = g.emitTo(ir.Instr{Op: intBinOps[binTok], A: x, B: y})
	}
	res = g.convert(res, common, dt)
	g.store(lv, res)
	return res, nil
}

var compoundBase = map[token.Kind]token.Kind{
	token.PlusAssign:    token.Plus,
	token.MinusAssign:   token.Minus,
	token.StarAssign:    token.Star,
	token.SlashAssign:   token.Slash,
	token.PercentAssign: token.Percent,
	token.ShlAssign:     token.Shl,
	token.ShrAssign:     token.Shr,
	token.AndAssign:     token.And,
	token.OrAssign:      token.Or,
	token.XorAssign:     token.Xor,
}

func (g *generator) genCondExpr(n *ast.Cond) (ir.Reg, error) {
	result := g.fn.NewReg()
	thenB := g.fn.NewBlock("")
	elseB := g.fn.NewBlock("")
	join := g.fn.NewBlock("")
	if err := g.genCond(n.C, thenB, elseB); err != nil {
		return ir.RegInvalid, err
	}
	g.cur = thenB
	x, err := g.genExprAs(n.X, n.Type())
	if err != nil {
		return ir.RegInvalid, err
	}
	g.emit(ir.Instr{Op: ir.OpCopy, Dst: result, A: x})
	g.branchTo(join)
	g.cur = elseB
	y, err := g.genExprAs(n.Y, n.Type())
	if err != nil {
		return ir.RegInvalid, err
	}
	g.emit(ir.Instr{Op: ir.OpCopy, Dst: result, A: y})
	g.branchTo(join)
	g.cur = join
	return result, nil
}

func (g *generator) genCall(n *ast.Call) (ir.Reg, error) {
	// Resolve direct callee.
	callee := ""
	var fnReg ir.Reg = ir.RegInvalid
	if id, ok := n.Fun.(*ast.Ident); ok && id.Sym.Kind == ast.SymFunc {
		callee = id.Sym.Name
	} else {
		v, err := g.genExpr(n.Fun)
		if err != nil {
			return ir.RegInvalid, err
		}
		fnReg = v
	}

	var sig *types.Type
	if callee != "" {
		sig = g.prog.FuncSyms[callee].Type
	} else {
		ft := exprValueType(n.Fun)
		sig = ft.Elem
	}

	args := make([]ir.Reg, len(n.Args))
	for i, a := range n.Args {
		want := exprValueType(a)
		if i < len(sig.Params) {
			want = sig.Params[i]
		}
		v, err := g.genExprAs(a, want)
		if err != nil {
			return ir.RegInvalid, err
		}
		args[i] = v
	}

	in := ir.Instr{
		Op:     ir.OpJsr,
		Callee: callee,
		A:      fnReg,
		Args:   args,
		Mods:   ir.TopSet(),
		Refs:   ir.TopSet(),
		Site:   ir.TagInvalid,
	}
	if callee == "malloc" {
		// Each allocation call site names its storage (§4).
		tag := g.mod.Tags.NewTag(
			g.fd.Name+".heap#"+itoa(g.heapN), ir.TagHeap, g.fd.Name, 0, 0)
		tag.AddrTaken = true
		g.heapN++
		in.Site = tag.ID
	}
	if sig.Elem.Kind != types.Void {
		in.HasValue = true
		in.Dst = g.fn.NewReg()
	} else {
		in.Dst = ir.RegInvalid
	}
	g.emit(in)
	return in.Dst, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// genCond lowers a boolean context: branch to t when e is true, else
// to f. Comparisons and logical operators fuse into the branch.
func (g *generator) genCond(e ast.Expr, t, f *ir.Block) error {
	switch n := e.(type) {
	case *ast.Binary:
		switch n.Op {
		case token.AndAnd:
			mid := g.fn.NewBlock("")
			if err := g.genCond(n.X, mid, f); err != nil {
				return err
			}
			g.cur = mid
			return g.genCond(n.Y, t, f)
		case token.OrOr:
			mid := g.fn.NewBlock("")
			if err := g.genCond(n.X, t, mid); err != nil {
				return err
			}
			g.cur = mid
			return g.genCond(n.Y, t, f)
		case token.Eq, token.NotEq, token.Lt, token.Le, token.Gt, token.Ge:
			v, err := g.genBinary(n)
			if err != nil {
				return err
			}
			g.emit(ir.Instr{Op: ir.OpCBr, A: v})
			ir.AddEdge(g.cur, t)
			ir.AddEdge(g.cur, f)
			g.cur = nil
			return nil
		}
	case *ast.Unary:
		if n.Op == token.Not {
			return g.genCond(n.X, f, t)
		}
	}
	v, err := g.genTruth(e)
	if err != nil {
		return err
	}
	g.emit(ir.Instr{Op: ir.OpCBr, A: v})
	ir.AddEdge(g.cur, t)
	ir.AddEdge(g.cur, f)
	g.cur = nil
	return nil
}

// Silence an unused-import error when sema is only needed for types
// in signatures.
var _ = sema.Builtins
