package irgen

import (
	"strings"
	"testing"

	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
)

// compile runs the front end over src and returns the module.
func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	file, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return mod
}

func TestGenerateSimpleFunction(t *testing.T) {
	mod := compile(t, `
int add(int a, int b) { return a + b; }
int main(void) { return add(2, 3); }
`)
	if len(mod.Funcs) != 2 {
		t.Fatalf("want 2 functions, got %d", len(mod.Funcs))
	}
	add := mod.Funcs["add"]
	if add == nil || len(add.Params) != 2 {
		t.Fatalf("add: %+v", add)
	}
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalsGetScalarOps(t *testing.T) {
	mod := compile(t, `
int g;
void f(void) { g = g + 1; }
`)
	f := mod.Funcs["f"]
	var loads, stores int
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpSLoad:
				loads++
			case ir.OpSStore:
				stores++
			}
		}
	}
	if loads != 1 || stores != 1 {
		t.Fatalf("global access should be explicit scalar ops: loads=%d stores=%d\n%s",
			loads, stores, ir.FormatFunc(f, &mod.Tags))
	}
}

func TestUnaliasedLocalsStayInRegisters(t *testing.T) {
	mod := compile(t, `
int f(int n) {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < n; i++) sum += i;
	return sum;
}
`)
	f := mod.Funcs["f"]
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op.IsMem() {
				t.Fatalf("unaliased locals should not touch memory:\n%s", ir.FormatFunc(f, &mod.Tags))
			}
		}
	}
}

func TestAddressTakenLocalGoesToMemory(t *testing.T) {
	mod := compile(t, `
void use(int *p) { *p = 1; }
int f(void) {
	int x;
	x = 0;
	use(&x);
	return x;
}
`)
	f := mod.Funcs["f"]
	var sawStore, sawLoad bool
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpSStore:
				sawStore = true
			case ir.OpSLoad:
				sawLoad = true
			}
		}
	}
	if !sawStore || !sawLoad {
		t.Fatalf("address-taken local must live in memory:\n%s", ir.FormatFunc(f, &mod.Tags))
	}
	// The tag for x must be marked address-taken.
	found := false
	for _, tag := range mod.Tags.All() {
		if strings.Contains(tag.Name, "f.x") {
			found = true
			if !tag.AddrTaken {
				t.Fatalf("tag %s should be AddrTaken", tag.Name)
			}
		}
	}
	if !found {
		t.Fatal("no tag for local x")
	}
}

func TestPointerDerefGetsTopTagSet(t *testing.T) {
	mod := compile(t, `
int f(int *p) { return *p; }
`)
	f := mod.Funcs["f"]
	var sawPLoad bool
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPLoad {
				sawPLoad = true
				if !b.Instrs[i].Tags.IsTop() {
					t.Fatalf("pointer deref should start with top tag set, got %s", b.Instrs[i].Tags)
				}
			}
		}
	}
	if !sawPLoad {
		t.Fatal("no pLoad generated")
	}
}

func TestNamedArrayKeepsSingletonTagSet(t *testing.T) {
	mod := compile(t, `
int a[10];
int f(int i) { return a[i]; }
`)
	f := mod.Funcs["f"]
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPLoad {
				tag, ok := b.Instrs[i].Tags.Singleton()
				if !ok {
					t.Fatalf("array load should have singleton tag set, got %s", b.Instrs[i].Tags)
				}
				if mod.Tags.Get(tag).Name != "a" {
					t.Fatalf("wrong tag %s", mod.Tags.Get(tag).Name)
				}
				return
			}
		}
	}
	t.Fatal("no pLoad generated")
}

func TestStructMemberAccess(t *testing.T) {
	mod := compile(t, `
struct point { int x; int y; };
struct point p;
int f(void) { p.x = 3; p.y = 4; return p.x + p.y; }
`)
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatal(err)
	}
}

func TestMallocCreatesHeapSiteTags(t *testing.T) {
	mod := compile(t, `
int *f(void) {
	int *p;
	int *q;
	p = (int *) malloc(40);
	q = (int *) malloc(80);
	*p = 1;
	return q;
}
`)
	var heapTags int
	for _, tag := range mod.Tags.All() {
		if tag.Kind == ir.TagHeap {
			heapTags++
		}
	}
	if heapTags != 2 {
		t.Fatalf("want one heap tag per malloc site, got %d", heapTags)
	}
}

func TestGlobalInitializers(t *testing.T) {
	mod := compile(t, `
int x = 42;
double d = 2.5;
int arr[4] = {1, 2, 3};
char msg[6] = "hello";
char *s = "world";
int mat[2][2] = {{1, 2}, {3, 4}};
`)
	byName := map[string]ir.GlobalInit{}
	for _, init := range mod.Inits {
		byName[mod.Tags.Get(init.Tag).Name] = init
	}
	if got := byName["x"].Data[0]; got != 42 {
		t.Fatalf("x init = %d", got)
	}
	if len(byName["arr"].Data) != 16 {
		t.Fatalf("arr data len %d", len(byName["arr"].Data))
	}
	if byName["arr"].Data[4] != 2 {
		t.Fatalf("arr[1] = %d", byName["arr"].Data[4])
	}
	if len(byName["s"].Relocs) != 1 {
		t.Fatalf("s should have a reloc, got %+v", byName["s"])
	}
	if byName["mat"].Data[12] != 4 {
		t.Fatalf("mat[1][1] = %d", byName["mat"].Data[12])
	}
}

func TestShortCircuitAndConditional(t *testing.T) {
	mod := compile(t, `
int f(int a, int b) {
	int r;
	r = (a > 0 && b > 0) ? a : b;
	if (a == 1 || b == 2) r++;
	while (a > 0 && r < 100) { r += a; a--; }
	return r;
}
`)
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionPointers(t *testing.T) {
	mod := compile(t, `
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int apply(int (*f)(int), int v) { return f(v); }
int main(void) { return apply(inc, 1) + apply(dbl, 2); }
`)
	if len(mod.AddressedFuncs) != 2 {
		t.Fatalf("addressed funcs: %v", mod.AddressedFuncs)
	}
	// apply must contain an indirect jsr.
	apply := mod.Funcs["apply"]
	found := false
	for _, b := range apply.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpJsr && b.Instrs[i].Callee == "" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no indirect call in apply:\n%s", ir.FormatFunc(apply, &mod.Tags))
	}
}

func TestBreakContinueTargets(t *testing.T) {
	mod := compile(t, `
int f(void) {
	int i;
	int j;
	int hits;
	hits = 0;
	for (i = 0; i < 5; i++) {
		for (j = 0; j < 5; j++) {
			if (j == 2) continue;
			if (j == 4) break;
			hits++;
		}
		if (i == 3) break;
	}
	return hits;
}
int main(void) { return f(); }
`)
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatal(err)
	}
}

func TestCompoundAssignOnPointer(t *testing.T) {
	mod := compile(t, `
int a[8];
int main(void) {
	int *p;
	p = a;
	p += 3;
	*p = 7;
	p -= 2;
	*p = 9;
	return a[3] * 10 + a[1];
}
`)
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatal(err)
	}
}

func TestDoWhileShape(t *testing.T) {
	mod := compile(t, `
int main(void) {
	int n;
	n = 0;
	do { n++; } while (n < 3);
	return n;
}
`)
	// A do-while body must execute before the first condition test:
	// the entry must reach the body block without passing a cbr.
	fn := mod.Funcs["main"]
	b := fn.Entry
	for len(b.Succs) == 1 {
		if term := b.Terminator(); term != nil && term.Op == ir.OpCBr {
			t.Fatal("condition tested before the do-while body")
		}
		b = b.Succs[0]
		if b == fn.Entry {
			break
		}
	}
}

func TestAddressOfParamSpillsToFrame(t *testing.T) {
	mod := compile(t, `
void set(int *p) { *p = 9; }
int f(int v) {
	set(&v);
	return v;
}
int main(void) { return f(1); }
`)
	f := mod.Funcs["f"]
	// The param must be stored to its frame slot at entry.
	if f.Entry.Instrs[0].Op != ir.OpSStore {
		t.Fatalf("addressed param not homed at entry:\n%s", ir.FormatFunc(f, &mod.Tags))
	}
}

func TestStringLiteralSharing(t *testing.T) {
	mod := compile(t, `
char *a = "shared";
int main(void) {
	print_str("shared");
	print_str(a);
	return 0;
}
`)
	n := 0
	for _, tag := range mod.Tags.All() {
		if tag.Kind == ir.TagGlobal && tag.Name == ".str0" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("string pool entries named .str0: %d", n)
	}
}
