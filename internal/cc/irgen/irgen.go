// Package irgen lowers the checked AST to the tagged IL.
//
// The lowering realizes the conservative code shape the paper starts
// from (§2): scalars the front end can prove unaliased (locals and
// parameters whose address is never taken) live directly in virtual
// registers; everything else — globals, address-taken locals, arrays,
// structs — lives in memory, accessed by explicit scalar operations
// (sLoad/sStore) when the location is named, or by pointer operations
// (pLoad/pStore) with a ⊤ tag set when it is not. Interprocedural
// analysis later shrinks those tag sets; register promotion then moves
// the survivors into registers.
package irgen

import (
	"encoding/binary"
	"fmt"
	"math"

	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/sema"
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
	"regpromo/internal/ir"
)

// Generate lowers a checked program to an IL module.
func Generate(prog *sema.Program) (*ir.Module, error) {
	g := &generator{
		prog:    prog,
		mod:     ir.NewModule(),
		symTags: make(map[*ast.Symbol]ir.TagID),
		symRegs: make(map[*ast.Symbol]ir.Reg),
		strTags: make(map[int]ir.TagID),
	}
	g.mod.AddressedFuncs = append(g.mod.AddressedFuncs, prog.AddressedFuncs...)

	// String pool tags.
	for i, s := range prog.Strings {
		tag := g.mod.Tags.NewTag(fmt.Sprintf(".str%d", i), ir.TagGlobal, "", len(s)+1, 1)
		tag.AddrTaken = true // strings are only ever used by address
		g.strTags[i] = tag.ID
		data := append([]byte(s), 0)
		g.mod.Inits = append(g.mod.Inits, ir.GlobalInit{Tag: tag.ID, Data: data})
	}

	// Global variable tags and initializers.
	for _, vd := range prog.Globals {
		tag := g.mod.Tags.NewTag(vd.Name, ir.TagGlobal, "", vd.Type.Size(), elemSize(vd.Type))
		// Arrays and structs are accessed through computed addresses
		// by construction, so their storage is always reachable from
		// pointers regardless of whether "&" appears in the source.
		tag.AddrTaken = vd.Sym.AddrTaken ||
			vd.Type.Kind == types.Array || vd.Type.Kind == types.Struct
		tag.Strong = vd.Type.IsScalar()
		g.symTags[vd.Sym] = tag.ID
		init, err := g.globalInit(vd, tag.ID)
		if err != nil {
			return nil, err
		}
		if init != nil {
			g.mod.Inits = append(g.mod.Inits, *init)
		}
	}

	for _, fd := range prog.Funcs {
		if err := g.genFunc(fd); err != nil {
			return nil, err
		}
	}
	if err := ir.VerifyModule(g.mod); err != nil {
		return nil, fmt.Errorf("irgen produced invalid IL: %w", err)
	}
	return g.mod, nil
}

// elemSize is the scalar access width for a type: its own size for
// scalars, the deepest element size for arrays, 0 for structs (whose
// fields are accessed individually).
func elemSize(t *types.Type) int {
	switch t.Kind {
	case types.Array:
		return elemSize(t.Elem)
	case types.Struct:
		return 0
	default:
		return t.Size()
	}
}

type generator struct {
	prog    *sema.Program
	mod     *ir.Module
	symTags map[*ast.Symbol]ir.TagID
	symRegs map[*ast.Symbol]ir.Reg
	strTags map[int]ir.TagID

	// per-function state
	fn    *ir.Func
	fd    *ast.FuncDecl
	cur   *ir.Block
	brk   []*ir.Block // break targets, innermost last
	cont  []*ir.Block // continue targets
	heapN int         // malloc site counter within the function
}

// errorf reports a lowering error (rare: sema rejects most problems).
func errorf(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

// ---------- global initializers ----------

// constValue is a folded compile-time constant.
type constValue struct {
	isFloat bool
	i       int64
	f       float64
	// tag != TagInvalid makes this an address constant tag+addend.
	tag    ir.TagID
	addend int64
}

func (g *generator) globalInit(vd *ast.VarDecl, tag ir.TagID) (*ir.GlobalInit, error) {
	if vd.Init == nil && len(vd.InitList) == 0 {
		return nil, nil // zero-initialized
	}
	init := &ir.GlobalInit{Tag: tag, Data: make([]byte, vd.Type.Size())}
	if vd.Init != nil {
		if err := g.encodeConst(init, 0, vd.Type, vd.Init); err != nil {
			return nil, err
		}
		return init, nil
	}
	if err := g.encodeList(init, 0, vd.Type, vd.InitList, vd.Pos()); err != nil {
		return nil, err
	}
	return init, nil
}

func (g *generator) encodeList(init *ir.GlobalInit, off int, t *types.Type, elems []ast.Expr, pos token.Pos) error {
	switch t.Kind {
	case types.Array:
		es := t.Elem.Size()
		if len(elems) > t.ArrayLen {
			return errorf(pos, "too many initializers for %s", t)
		}
		for i, e := range elems {
			if list, ok := e.(*ast.ListExpr); ok {
				if err := g.encodeList(init, off+i*es, t.Elem, list.Elems, pos); err != nil {
					return err
				}
				continue
			}
			if err := g.encodeConst(init, off+i*es, t.Elem, e); err != nil {
				return err
			}
		}
		return nil
	case types.Struct:
		if len(elems) > len(t.Fields) {
			return errorf(pos, "too many initializers for %s", t)
		}
		for i, e := range elems {
			f := t.Fields[i]
			if list, ok := e.(*ast.ListExpr); ok {
				if err := g.encodeList(init, off+f.Offset, f.Type, list.Elems, pos); err != nil {
					return err
				}
				continue
			}
			if err := g.encodeConst(init, off+f.Offset, f.Type, e); err != nil {
				return err
			}
		}
		return nil
	default:
		if len(elems) != 1 {
			return errorf(pos, "scalar initializer needs exactly one element")
		}
		return g.encodeConst(init, off, t, elems[0])
	}
}

func (g *generator) encodeConst(init *ir.GlobalInit, off int, t *types.Type, e ast.Expr) error {
	// A char array initialized from a string literal copies the
	// bytes (including the NUL when it fits), as in C.
	if s, ok := e.(*ast.StringLit); ok && t.Kind == types.Array && t.Elem.Kind == types.Char {
		n := len(s.Value)
		if n > t.ArrayLen {
			return errorf(e.Pos(), "string too long for %s", t)
		}
		copy(init.Data[off:], s.Value)
		return nil
	}
	cv, err := g.constEval(e)
	if err != nil {
		return err
	}
	if cv.tag != ir.TagInvalid {
		if t.Kind != types.Pointer {
			return errorf(e.Pos(), "address constant initializing non-pointer %s", t)
		}
		init.Relocs = append(init.Relocs, ir.Reloc{Offset: off, Target: cv.tag, Addend: cv.addend})
		return nil
	}
	switch t.Kind {
	case types.Double:
		v := cv.f
		if !cv.isFloat {
			v = float64(cv.i)
		}
		binary.LittleEndian.PutUint64(init.Data[off:], math.Float64bits(v))
	case types.Char:
		init.Data[off] = byte(cv.i)
	case types.Int:
		binary.LittleEndian.PutUint32(init.Data[off:], uint32(cv.i))
	case types.Long, types.Pointer:
		binary.LittleEndian.PutUint64(init.Data[off:], uint64(cv.i))
	default:
		return errorf(e.Pos(), "cannot statically initialize %s", t)
	}
	return nil
}

// constEval folds the constant expressions sema admits in global
// initializers.
func (g *generator) constEval(e ast.Expr) (constValue, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return constValue{i: n.Value, tag: ir.TagInvalid}, nil
	case *ast.FloatLit:
		return constValue{isFloat: true, f: n.Value, tag: ir.TagInvalid}, nil
	case *ast.StringLit:
		return constValue{tag: g.strTags[n.Index]}, nil
	case *ast.SizeofExpr:
		return constValue{i: int64(n.Size), tag: ir.TagInvalid}, nil
	case *ast.Ident:
		if n.Sym.Kind == ast.SymEnumConst {
			return constValue{i: n.Sym.EnumValue, tag: ir.TagInvalid}, nil
		}
		if n.Sym.Kind == ast.SymGlobal && n.Sym.Type.Kind == types.Array {
			return constValue{tag: g.symTags[n.Sym]}, nil
		}
		return constValue{}, errorf(n.Pos(), "non-constant identifier %s in initializer", n.Name)
	case *ast.Unary:
		if n.Op == token.And {
			if id, ok := n.X.(*ast.Ident); ok && id.Sym.Kind == ast.SymGlobal {
				return constValue{tag: g.symTags[id.Sym]}, nil
			}
			if idx, ok := n.X.(*ast.Index); ok {
				id, okID := idx.X.(*ast.Ident)
				lit, okLit := idx.I.(*ast.IntLit)
				if okID && okLit && id.Sym.Kind == ast.SymGlobal && id.Sym.Type.Kind == types.Array {
					return constValue{
						tag:    g.symTags[id.Sym],
						addend: lit.Value * int64(id.Sym.Type.Elem.Size()),
					}, nil
				}
			}
			return constValue{}, errorf(n.Pos(), "unsupported address constant")
		}
		cv, err := g.constEval(n.X)
		if err != nil {
			return constValue{}, err
		}
		if cv.tag != ir.TagInvalid {
			return constValue{}, errorf(n.Pos(), "arithmetic on address constant")
		}
		switch n.Op {
		case token.Minus:
			if cv.isFloat {
				cv.f = -cv.f
			} else {
				cv.i = -cv.i
			}
		case token.Tilde:
			cv.i = ^cv.i
		case token.Not:
			if cv.i == 0 {
				cv.i = 1
			} else {
				cv.i = 0
			}
		default:
			return constValue{}, errorf(n.Pos(), "unsupported constant unary %s", n.Op)
		}
		return cv, nil
	case *ast.Binary:
		x, err := g.constEval(n.X)
		if err != nil {
			return constValue{}, err
		}
		y, err := g.constEval(n.Y)
		if err != nil {
			return constValue{}, err
		}
		if x.tag != ir.TagInvalid || y.tag != ir.TagInvalid {
			return constValue{}, errorf(n.Pos(), "arithmetic on address constant")
		}
		if x.isFloat || y.isFloat {
			xf, yf := x.f, y.f
			if !x.isFloat {
				xf = float64(x.i)
			}
			if !y.isFloat {
				yf = float64(y.i)
			}
			var r float64
			switch n.Op {
			case token.Plus:
				r = xf + yf
			case token.Minus:
				r = xf - yf
			case token.Star:
				r = xf * yf
			case token.Slash:
				r = xf / yf
			default:
				return constValue{}, errorf(n.Pos(), "unsupported constant float op %s", n.Op)
			}
			return constValue{isFloat: true, f: r, tag: ir.TagInvalid}, nil
		}
		var r int64
		switch n.Op {
		case token.Plus:
			r = x.i + y.i
		case token.Minus:
			r = x.i - y.i
		case token.Star:
			r = x.i * y.i
		case token.Slash:
			if y.i == 0 {
				return constValue{}, errorf(n.Pos(), "division by zero in constant")
			}
			r = x.i / y.i
		case token.Percent:
			if y.i == 0 {
				return constValue{}, errorf(n.Pos(), "division by zero in constant")
			}
			r = x.i % y.i
		case token.Shl:
			r = x.i << (uint64(y.i) & 63)
		case token.Shr:
			r = x.i >> (uint64(y.i) & 63)
		case token.And:
			r = x.i & y.i
		case token.Or:
			r = x.i | y.i
		case token.Xor:
			r = x.i ^ y.i
		default:
			return constValue{}, errorf(n.Pos(), "unsupported constant op %s", n.Op)
		}
		return constValue{i: r, tag: ir.TagInvalid}, nil
	case *ast.Cast:
		cv, err := g.constEval(n.X)
		if err != nil {
			return constValue{}, err
		}
		if n.To.Kind == types.Double && !cv.isFloat {
			return constValue{isFloat: true, f: float64(cv.i), tag: cv.tag}, nil
		}
		if n.To.IsInteger() && cv.isFloat {
			return constValue{i: int64(cv.f), tag: cv.tag}, nil
		}
		return cv, nil
	}
	return constValue{}, errorf(e.Pos(), "unsupported constant expression %T", e)
}
