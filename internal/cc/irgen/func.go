package irgen

import (
	"fmt"

	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/types"
	"regpromo/internal/ir"
)

func (g *generator) genFunc(fd *ast.FuncDecl) error {
	fn := &ir.Func{Name: fd.Name, HasVarRet: fd.Result.Kind != types.Void}
	g.fn = fn
	g.fd = fd
	g.heapN = 0
	g.brk = nil
	g.cont = nil

	entry := fn.NewBlock("")
	fn.Entry = entry
	g.cur = entry

	// Decide residence for parameters and create their homes.
	for _, p := range fd.Params {
		r := fn.NewReg()
		fn.Params = append(fn.Params, r)
		if p.Sym.AddrTaken {
			tag := g.newLocalTag(p.Sym)
			g.emit(ir.Instr{Op: ir.OpSStore, Tag: tag, A: r, Size: p.Type.Size()})
		} else {
			g.symRegs[p.Sym] = r
		}
	}

	// Locals: registers for unaliased scalars, frame tags otherwise.
	// (Initializer code is emitted when the declaration statement is
	// reached, not here.)
	for _, vd := range fd.Locals {
		if vd.Type.IsScalar() && !vd.Sym.AddrTaken {
			g.symRegs[vd.Sym] = fn.NewReg()
		} else {
			g.newLocalTag(vd.Sym)
		}
	}

	if err := g.genBlock(fd.Body); err != nil {
		return err
	}

	// Fall-off return.
	if g.cur != nil {
		if fn.HasVarRet {
			z := g.loadImm(0)
			g.emit(ir.Instr{Op: ir.OpRet, A: z, HasValue: true})
		} else {
			g.emit(ir.Instr{Op: ir.OpRet, A: ir.RegInvalid})
		}
	}
	fn.RemoveUnreachable()
	g.mod.AddFunc(fn)
	return nil
}

// newLocalTag creates the frame tag for a memory-resident local or
// parameter.
func (g *generator) newLocalTag(sym *ast.Symbol) ir.TagID {
	name := fmt.Sprintf("%s.%s#%d", g.fd.Name, sym.Name, sym.Uniq)
	tag := g.mod.Tags.NewTag(name, ir.TagLocal, g.fd.Name, sym.Type.Size(), elemSize(sym.Type))
	tag.AddrTaken = sym.AddrTaken || sym.Type.Kind == types.Array || sym.Type.Kind == types.Struct
	// Strong is provisional: the MOD/REF pass clears it for locals
	// of recursive functions, where one tag names many activations.
	tag.Strong = sym.Type.IsScalar()
	g.symTags[sym] = tag.ID
	g.fn.Locals = append(g.fn.Locals, tag.ID)
	return tag.ID
}

// emit appends an instruction to the current block and returns its
// destination register.
func (g *generator) emit(in ir.Instr) ir.Reg {
	g.cur.Instrs = append(g.cur.Instrs, in)
	return in.Dst
}

// emitTo allocates a destination register, emits, and returns it.
func (g *generator) emitTo(in ir.Instr) ir.Reg {
	in.Dst = g.fn.NewReg()
	g.cur.Instrs = append(g.cur.Instrs, in)
	return in.Dst
}

func (g *generator) loadImm(v int64) ir.Reg {
	return g.emitTo(ir.Instr{Op: ir.OpLoadI, Imm: v})
}

// setCur seals the current block with a branch to next (if still
// open) and makes next current.
func (g *generator) setCur(next *ir.Block) {
	if g.cur != nil && g.cur.Terminator() == nil {
		g.emit(ir.Instr{Op: ir.OpBr})
		ir.AddEdge(g.cur, next)
	}
	g.cur = next
}

// branchTo seals the current block with an unconditional branch to
// target (if open).
func (g *generator) branchTo(target *ir.Block) {
	if g.cur != nil && g.cur.Terminator() == nil {
		g.emit(ir.Instr{Op: ir.OpBr})
		ir.AddEdge(g.cur, target)
	}
	g.cur = nil
}

func (g *generator) genBlock(b *ast.Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
		if g.cur == nil {
			// The rest of the block is unreachable (after
			// return/break/continue). C allows it; skip.
			return nil
		}
	}
	return nil
}

func (g *generator) genStmt(s ast.Stmt) error {
	switch n := s.(type) {
	case *ast.Block:
		return g.genBlock(n)
	case *ast.Empty:
		return nil
	case *ast.ExprStmt:
		_, err := g.genExpr(n.X)
		return err
	case *ast.DeclStmt:
		for _, d := range n.Decls {
			if err := g.genLocalInit(d); err != nil {
				return err
			}
		}
		return nil
	case *ast.If:
		return g.genIf(n)
	case *ast.While:
		return g.genWhile(n)
	case *ast.DoWhile:
		return g.genDoWhile(n)
	case *ast.For:
		return g.genFor(n)
	case *ast.Return:
		if n.Value != nil {
			v, err := g.genExprAs(n.Value, g.fd.Result)
			if err != nil {
				return err
			}
			g.emit(ir.Instr{Op: ir.OpRet, A: v, HasValue: true})
		} else {
			g.emit(ir.Instr{Op: ir.OpRet, A: ir.RegInvalid})
		}
		g.cur = nil
		return nil
	case *ast.Break:
		g.branchTo(g.brk[len(g.brk)-1])
		return nil
	case *ast.Continue:
		g.branchTo(g.cont[len(g.cont)-1])
		return nil
	}
	return errorf(s.Pos(), "unhandled statement %T", s)
}

func (g *generator) genLocalInit(d *ast.VarDecl) error {
	if d.Init != nil {
		v, err := g.genExprAs(d.Init, valueType(d.Type))
		if err != nil {
			return err
		}
		lv := g.varLValue(d.Sym)
		g.store(lv, v)
		return nil
	}
	if len(d.InitList) > 0 {
		tag := g.symTags[d.Sym]
		base := g.emitTo(ir.Instr{Op: ir.OpAddrOf, Tag: tag})
		return g.genListInit(base, ir.NewTagSet(tag), d.Type, d.InitList, 0)
	}
	return nil
}

// genListInit stores a brace initializer element-by-element; elements
// not covered by the list are zeroed, matching C semantics.
func (g *generator) genListInit(base ir.Reg, tags ir.TagSet, t *types.Type, elems []ast.Expr, off int64) error {
	switch t.Kind {
	case types.Array:
		es := int64(t.Elem.Size())
		for i := 0; i < t.ArrayLen; i++ {
			var e ast.Expr
			if i < len(elems) {
				e = elems[i]
			}
			if err := g.genInitElem(base, tags, t.Elem, e, off+int64(i)*es); err != nil {
				return err
			}
		}
		return nil
	case types.Struct:
		for i, f := range t.Fields {
			var e ast.Expr
			if i < len(elems) {
				e = elems[i]
			}
			if err := g.genInitElem(base, tags, f.Type, e, off+int64(f.Offset)); err != nil {
				return err
			}
		}
		return nil
	default:
		var e ast.Expr
		if len(elems) > 0 {
			e = elems[0]
		}
		return g.genInitElem(base, tags, t, e, off)
	}
}

func (g *generator) genInitElem(base ir.Reg, tags ir.TagSet, t *types.Type, e ast.Expr, off int64) error {
	if list, ok := e.(*ast.ListExpr); ok {
		return g.genListInit(base, tags, t, list.Elems, off)
	}
	if t.Kind == types.Array || t.Kind == types.Struct {
		// Aggregate element with a non-list (or absent) initializer:
		// zero-fill recursively.
		if e != nil {
			return errorf(e.Pos(), "aggregate element needs a brace initializer")
		}
		return g.genListInit(base, tags, t, nil, off)
	}
	var v ir.Reg
	if e == nil {
		if t.Kind == types.Double {
			v = g.emitTo(ir.Instr{Op: ir.OpLoadF, FImm: 0})
		} else {
			v = g.loadImm(0)
		}
	} else {
		var err error
		v, err = g.genExprAs(e, valueType(t))
		if err != nil {
			return err
		}
	}
	addr := base
	if off != 0 {
		o := g.loadImm(off)
		addr = g.emitTo(ir.Instr{Op: ir.OpAdd, A: base, B: o})
	}
	g.emit(ir.Instr{Op: ir.OpPStore, A: addr, B: v, Tags: tags, Size: t.Size()})
	return nil
}

func (g *generator) genIf(n *ast.If) error {
	thenB := g.fn.NewBlock("")
	var elseB *ir.Block
	joinB := g.fn.NewBlock("")
	if n.Else != nil {
		elseB = g.fn.NewBlock("")
	} else {
		elseB = joinB
	}
	if err := g.genCond(n.Cond, thenB, elseB); err != nil {
		return err
	}
	g.cur = thenB
	if err := g.genStmt(n.Then); err != nil {
		return err
	}
	g.branchTo(joinB)
	if n.Else != nil {
		g.cur = elseB
		if err := g.genStmt(n.Else); err != nil {
			return err
		}
		g.branchTo(joinB)
	}
	g.cur = joinB
	return nil
}

func (g *generator) genWhile(n *ast.While) error {
	condB := g.fn.NewBlock("")
	bodyB := g.fn.NewBlock("")
	exitB := g.fn.NewBlock("")
	g.branchTo(condB)
	g.cur = condB
	if err := g.genCond(n.Cond, bodyB, exitB); err != nil {
		return err
	}
	g.brk = append(g.brk, exitB)
	g.cont = append(g.cont, condB)
	g.cur = bodyB
	err := g.genStmt(n.Body)
	g.brk = g.brk[:len(g.brk)-1]
	g.cont = g.cont[:len(g.cont)-1]
	if err != nil {
		return err
	}
	g.branchTo(condB)
	g.cur = exitB
	return nil
}

func (g *generator) genDoWhile(n *ast.DoWhile) error {
	bodyB := g.fn.NewBlock("")
	condB := g.fn.NewBlock("")
	exitB := g.fn.NewBlock("")
	g.branchTo(bodyB)
	g.brk = append(g.brk, exitB)
	g.cont = append(g.cont, condB)
	g.cur = bodyB
	err := g.genStmt(n.Body)
	g.brk = g.brk[:len(g.brk)-1]
	g.cont = g.cont[:len(g.cont)-1]
	if err != nil {
		return err
	}
	g.branchTo(condB)
	g.cur = condB
	if err := g.genCond(n.Cond, bodyB, exitB); err != nil {
		return err
	}
	g.cur = exitB
	return nil
}

func (g *generator) genFor(n *ast.For) error {
	if n.Init != nil {
		if err := g.genStmt(n.Init); err != nil {
			return err
		}
	}
	condB := g.fn.NewBlock("")
	bodyB := g.fn.NewBlock("")
	postB := g.fn.NewBlock("")
	exitB := g.fn.NewBlock("")
	g.branchTo(condB)
	g.cur = condB
	if n.Cond != nil {
		if err := g.genCond(n.Cond, bodyB, exitB); err != nil {
			return err
		}
	} else {
		g.branchTo(bodyB)
	}
	g.brk = append(g.brk, exitB)
	g.cont = append(g.cont, postB)
	g.cur = bodyB
	err := g.genStmt(n.Body)
	g.brk = g.brk[:len(g.brk)-1]
	g.cont = g.cont[:len(g.cont)-1]
	if err != nil {
		return err
	}
	g.branchTo(postB)
	g.cur = postB
	if n.Post != nil {
		if _, err := g.genExpr(n.Post); err != nil {
			return err
		}
	}
	g.branchTo(condB)
	g.cur = exitB
	return nil
}

// valueType is the type a value of declared type t has when loaded:
// small integers widen in registers, so the register type matters
// only for float-vs-int and pointer scaling decisions.
func valueType(t *types.Type) *types.Type { return t }
