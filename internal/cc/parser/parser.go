// Package parser implements a recursive-descent parser for the C
// subset. The grammar has no typedefs, so a statement begins a
// declaration exactly when it begins with a type keyword; casts are
// disambiguated the same way.
package parser

import (
	"fmt"

	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/lexer"
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser holds parse state for one translation unit.
type Parser struct {
	toks []token.Token
	pos  int

	file    *ast.File
	structs map[string]*types.Type

	// paramNames holds the parameter names of the most recently
	// parsed function declarator, in order.
	paramNames []string
}

// Parse parses one source file.
func Parse(filename, src string) (*ast.File, error) {
	toks, err := lexer.Tokenize(filename, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{
		toks:    toks,
		file:    &ast.File{Name: filename},
		structs: make(map[string]*types.Type),
	}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isTypeStart reports whether the current token can begin a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case token.KwVoid, token.KwChar, token.KwInt, token.KwLong, token.KwDouble,
		token.KwStruct, token.KwConst, token.KwUnsigned, token.KwEnum:
		return true
	}
	return false
}

func (p *Parser) isDeclStart() bool {
	switch p.cur().Kind {
	case token.KwStatic, token.KwExtern:
		return true
	}
	return p.isTypeStart()
}

// ---------- Top level ----------

func (p *Parser) parseFile() error {
	for !p.at(token.EOF) {
		if err := p.parseTopDecl(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) parseTopDecl() error {
	// Storage classes are accepted and ignored: the subset compiles
	// whole programs at once, so extern/static linkage does not
	// change behaviour.
	for p.at(token.KwStatic) || p.at(token.KwExtern) {
		p.next()
	}

	switch p.cur().Kind {
	case token.KwStruct:
		// Either a struct definition/declaration or a variable of
		// struct type; look ahead past "struct Name".
		if p.peek().Kind == token.Ident {
			if p.toks[p.pos+2].Kind == token.LBrace || p.toks[p.pos+2].Kind == token.Semi {
				return p.parseStructDecl()
			}
		} else if p.peek().Kind == token.LBrace {
			return p.errorf("anonymous struct types are not supported")
		}
	case token.KwEnum:
		return p.parseEnumDecl()
	}

	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}

	// First declarator decides function vs variables.
	name, typ, pos, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if typ.Kind == types.Func && (p.at(token.LBrace) || p.at(token.Semi)) {
		return p.parseFuncRest(name, typ, pos)
	}

	// Variable declaration list.
	for {
		vd := &ast.VarDecl{P: pos, Name: name, Type: typ}
		if p.accept(token.Assign) {
			init, err := p.parseInitializer()
			if err != nil {
				return err
			}
			if list, ok := init.(*ast.ListExpr); ok {
				vd.InitList = list.Elems
			} else {
				vd.Init = init
			}
		}
		p.file.Globals = append(p.file.Globals, vd)
		p.file.Decls = append(p.file.Decls, vd)
		if !p.accept(token.Comma) {
			break
		}
		name, typ, pos, err = p.parseDeclarator(base)
		if err != nil {
			return err
		}
	}
	_, err = p.expect(token.Semi)
	return err
}

func (p *Parser) parseStructDecl() error {
	pos := p.cur().Pos
	p.next() // struct
	nameTok, err := p.expect(token.Ident)
	if err != nil {
		return err
	}
	name := nameTok.Text
	st, exists := p.structs[name]
	if !exists {
		st = &types.Type{Kind: types.Struct, StructName: name}
		p.structs[name] = st
	}
	if p.accept(token.Semi) {
		// Forward declaration.
		return nil
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return err
	}
	if len(st.Fields) > 0 {
		return &Error{Pos: pos, Msg: fmt.Sprintf("struct %s redefined", name)}
	}
	for !p.at(token.RBrace) {
		base, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		for {
			fname, ftype, fpos, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			if ftype.Kind == types.Func {
				return &Error{Pos: fpos, Msg: "function fields are not supported"}
			}
			st.Fields = append(st.Fields, types.Field{Name: fname, Type: ftype})
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.Semi); err != nil {
			return err
		}
	}
	p.next() // }
	if _, err := p.expect(token.Semi); err != nil {
		return err
	}
	st.LayOut()
	sd := &ast.StructDecl{P: pos, Name: name, Type: st}
	p.file.Structs = append(p.file.Structs, sd)
	p.file.Decls = append(p.file.Decls, sd)
	return nil
}

func (p *Parser) parseEnumDecl() error {
	pos := p.cur().Pos
	p.next() // enum
	if p.at(token.Ident) {
		p.next() // tag name, ignored
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return err
	}
	ed := &ast.EnumDecl{P: pos}
	var val int64
	for !p.at(token.RBrace) {
		nameTok, err := p.expect(token.Ident)
		if err != nil {
			return err
		}
		if p.accept(token.Assign) {
			v, err := p.parseConstIntExpr()
			if err != nil {
				return err
			}
			val = v
		}
		ed.Names = append(ed.Names, nameTok.Text)
		ed.Vals = append(ed.Vals, val)
		val++
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RBrace); err != nil {
		return err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return err
	}
	p.file.Enums = append(p.file.Enums, ed)
	p.file.Decls = append(p.file.Decls, ed)
	return nil
}

// parseConstIntExpr parses and folds a constant integer expression as
// far as enum initializers need (literals, optionally negated).
func (p *Parser) parseConstIntExpr() (int64, error) {
	neg := p.accept(token.Minus)
	t, err := p.expect(token.IntLit)
	if err != nil {
		return 0, err
	}
	if neg {
		return -t.Int, nil
	}
	return t.Int, nil
}

func (p *Parser) parseFuncRest(name string, sig *types.Type, pos token.Pos) error {
	fd := &ast.FuncDecl{P: pos, Name: name, Result: sig.Elem}
	for i, pt := range sig.Params {
		pn := ""
		if i < len(p.paramNames) {
			pn = p.paramNames[i]
		}
		fd.Params = append(fd.Params, &ast.ParamDecl{P: pos, Name: pn, Type: pt})
	}
	if p.accept(token.Semi) {
		// Prototype only.
		fd.Body = nil
		p.file.Funcs = append(p.file.Funcs, fd)
		p.file.Decls = append(p.file.Decls, fd)
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	p.file.Funcs = append(p.file.Funcs, fd)
	p.file.Decls = append(p.file.Decls, fd)
	return nil
}

// ---------- Types and declarators ----------

// parseTypeSpec parses a base type: void/char/int/long/double,
// struct name, with const/unsigned accepted and ignored.
func (p *Parser) parseTypeSpec() (*types.Type, error) {
	for p.accept(token.KwConst) || p.accept(token.KwUnsigned) || p.accept(token.KwStatic) || p.accept(token.KwExtern) {
	}
	switch p.cur().Kind {
	case token.KwVoid:
		p.next()
		return types.VoidType, nil
	case token.KwChar:
		p.next()
		p.accept(token.KwConst)
		return types.CharType, nil
	case token.KwInt:
		p.next()
		return types.IntType, nil
	case token.KwLong:
		p.next()
		p.accept(token.KwInt)  // "long int"
		p.accept(token.KwLong) // "long long"
		p.accept(token.KwInt)
		return types.LongType, nil
	case token.KwDouble:
		p.next()
		return types.DoubleType, nil
	case token.KwStruct:
		p.next()
		nameTok, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[nameTok.Text]
		if !ok {
			st = &types.Type{Kind: types.Struct, StructName: nameTok.Text}
			p.structs[nameTok.Text] = st
		}
		return st, nil
	case token.KwEnum:
		p.next()
		if p.at(token.Ident) {
			p.next()
		}
		return types.IntType, nil
	default:
		// "unsigned" or "const" alone means int.
		return types.IntType, nil
	}
}

// declPart is an intermediate declarator component built inside-out.
type declPart struct {
	kind     byte // '*' pointer, '[' array, '(' function
	arrayLen int
	params   []*types.Type
	names    []string
	variadic bool
}

// parseDeclarator parses a C declarator against the given base type
// and returns the declared name and full type. It also records
// parameter names (for function declarators) in p.paramNames.
func (p *Parser) parseDeclarator(base *types.Type) (string, *types.Type, token.Pos, error) {
	pos := p.cur().Pos
	name, typ, err := p.declarator(base)
	return name, typ, pos, err
}

// declarator parses: pointer* direct-declarator.
func (p *Parser) declarator(base *types.Type) (string, *types.Type, error) {
	for p.accept(token.Star) {
		p.accept(token.KwConst)
		base = types.PointerTo(base)
	}
	return p.directDeclarator(base)
}

// directDeclarator parses: (declarator) | ident, then [n] / (params)
// suffixes. The inner declarator in parentheses binds tighter, so the
// suffixes apply to the base first, then the inner wrapping.
func (p *Parser) directDeclarator(base *types.Type) (string, *types.Type, error) {
	if p.accept(token.LParen) {
		// Parenthesized declarator (e.g. int (*fp)(int)). Parse the
		// inner declarator with a placeholder, apply suffixes to the
		// base, then substitute.
		placeholder := &types.Type{Kind: types.Void}
		name, inner, err := p.declarator(placeholder)
		if err != nil {
			return "", nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return "", nil, err
		}
		full, err := p.declaratorSuffixes(base)
		if err != nil {
			return "", nil, err
		}
		return name, substitute(inner, placeholder, full), nil
	}
	nameTok, err := p.expect(token.Ident)
	if err != nil {
		return "", nil, err
	}
	typ, err := p.declaratorSuffixes(base)
	if err != nil {
		return "", nil, err
	}
	return nameTok.Text, typ, nil
}

// substitute replaces the placeholder leaf in t with repl, returning
// the rebuilt type.
func substitute(t, placeholder, repl *types.Type) *types.Type {
	if t == placeholder {
		return repl
	}
	switch t.Kind {
	case types.Pointer:
		return types.PointerTo(substitute(t.Elem, placeholder, repl))
	case types.Array:
		return types.ArrayOf(substitute(t.Elem, placeholder, repl), t.ArrayLen)
	case types.Func:
		return types.FuncOf(substitute(t.Elem, placeholder, repl), t.Params, t.Variadic)
	}
	return t
}

func (p *Parser) declaratorSuffixes(base *types.Type) (*types.Type, error) {
	switch p.cur().Kind {
	case token.LBracket:
		p.next()
		n := 0
		if !p.at(token.RBracket) {
			v, err := p.parseConstIntExpr()
			if err != nil {
				return nil, err
			}
			n = int(v)
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
		elem, err := p.declaratorSuffixes(base)
		if err != nil {
			return nil, err
		}
		return types.ArrayOf(elem, n), nil
	case token.LParen:
		p.next()
		params, names, variadic, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		p.paramNames = names
		return types.FuncOf(base, params, variadic), nil
	}
	return base, nil
}

func (p *Parser) parseParams() ([]*types.Type, []string, bool, error) {
	var params []*types.Type
	var names []string
	variadic := false
	if p.accept(token.RParen) {
		return nil, nil, false, nil
	}
	if p.at(token.KwVoid) && p.peek().Kind == token.RParen {
		p.next()
		p.next()
		return nil, nil, false, nil
	}
	for {
		if p.accept(token.Ellipsis) {
			variadic = true
			break
		}
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, nil, false, err
		}
		name := ""
		typ := base
		for p.accept(token.Star) {
			p.accept(token.KwConst)
			typ = types.PointerTo(typ)
		}
		if p.at(token.Ident) {
			saved := p.paramNames
			var err error
			name, typ, err = p.directDeclarator(typ)
			p.paramNames = saved
			if err != nil {
				return nil, nil, false, err
			}
		} else if p.at(token.LParen) {
			// Unnamed function-pointer parameter.
			saved := p.paramNames
			var err error
			name, typ, err = p.directDeclarator(typ)
			p.paramNames = saved
			if err != nil {
				return nil, nil, false, err
			}
		} else if p.at(token.LBracket) {
			var err error
			typ, err = p.declaratorSuffixes(typ)
			if err != nil {
				return nil, nil, false, err
			}
		}
		// Array parameters decay to pointers.
		if typ.Kind == types.Array {
			typ = types.PointerTo(typ.Elem)
		}
		// Function parameters decay to function pointers.
		if typ.Kind == types.Func {
			typ = types.PointerTo(typ)
		}
		params = append(params, typ)
		names = append(names, name)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, nil, false, err
	}
	return params, names, variadic, nil
}
