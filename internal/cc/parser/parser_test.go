package parser

import (
	"testing"

	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/types"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse("t.c", src)
	if err == nil {
		t.Fatalf("expected parse error for %q", src)
	}
	return err
}

func TestGlobalDeclarations(t *testing.T) {
	f := parse(t, `
int a;
int b = 3, c = 4;
double d;
char *s;
int arr[10];
int mat[2][3];
`)
	if len(f.Globals) != 7 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	byName := map[string]*ast.VarDecl{}
	for _, g := range f.Globals {
		byName[g.Name] = g
	}
	if byName["s"].Type.Kind != types.Pointer || byName["s"].Type.Elem.Kind != types.Char {
		t.Fatalf("s type = %s", byName["s"].Type)
	}
	if byName["mat"].Type.Kind != types.Array || byName["mat"].Type.Elem.ArrayLen != 3 {
		t.Fatalf("mat type = %s", byName["mat"].Type)
	}
	if byName["b"].Init == nil {
		t.Fatal("b has no initializer")
	}
}

func TestFunctionDeclarations(t *testing.T) {
	f := parse(t, `
int add(int a, int b) { return a + b; }
void nothing(void) { }
int proto(int x);
double *mk(void);
`)
	if len(f.Funcs) != 4 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	add := f.Funcs[0]
	if add.Name != "add" || len(add.Params) != 2 || add.Params[0].Name != "a" {
		t.Fatalf("add = %+v", add)
	}
	if f.Funcs[2].Body != nil {
		t.Fatal("prototype should have no body")
	}
	mk := f.Funcs[3]
	if mk.Result.Kind != types.Pointer || mk.Result.Elem.Kind != types.Double {
		t.Fatalf("mk result = %s", mk.Result)
	}
}

func TestFunctionPointerDeclarator(t *testing.T) {
	f := parse(t, `
int apply(int (*op)(int, int), int x) { return op(x, x); }
int (*table[4])(int, int);
`)
	apply := f.Funcs[0]
	p := apply.Params[0].Type
	if p.Kind != types.Pointer || p.Elem.Kind != types.Func || len(p.Elem.Params) != 2 {
		t.Fatalf("op type = %s", p)
	}
	tab := f.Globals[0]
	if tab.Type.Kind != types.Array || tab.Type.Elem.Kind != types.Pointer ||
		tab.Type.Elem.Elem.Kind != types.Func {
		t.Fatalf("table type = %s", tab.Type)
	}
}

func TestStructDeclarations(t *testing.T) {
	f := parse(t, `
struct point { int x; int y; };
struct list;
struct list { int val; struct list *next; };
struct point origin;
`)
	if len(f.Structs) != 2 {
		t.Fatalf("structs = %d", len(f.Structs))
	}
	pt := f.Structs[0].Type
	if len(pt.Fields) != 2 || pt.Fields[1].Offset != 4 {
		t.Fatalf("point fields = %+v", pt.Fields)
	}
	lst := f.Structs[1].Type
	if lst.Fields[1].Type.Kind != types.Pointer || lst.Fields[1].Type.Elem != lst {
		t.Fatal("self-referential struct pointer broken")
	}
	if lst.Fields[1].Offset != 8 {
		t.Fatalf("next offset = %d (alignment)", lst.Fields[1].Offset)
	}
}

func TestEnumDeclarations(t *testing.T) {
	f := parse(t, `enum color { RED, GREEN = 5, BLUE };`)
	e := f.Enums[0]
	if len(e.Names) != 3 || e.Vals[0] != 0 || e.Vals[1] != 5 || e.Vals[2] != 6 {
		t.Fatalf("enum = %+v", e)
	}
}

func TestStatements(t *testing.T) {
	parse(t, `
void f(int n) {
	int i;
	if (n > 0) i = 1; else i = 2;
	while (n--) { i += n; }
	do i--; while (i > 0);
	for (i = 0; i < n; i++) continue;
	for (;;) break;
	;
	return;
}
`)
}

func TestExpressionPrecedence(t *testing.T) {
	f := parse(t, `int x = 1 + 2 * 3;`)
	bin := f.Globals[0].Init.(*ast.Binary)
	// Must parse as 1 + (2*3): top node is +.
	if bin.Op.String() != "+" {
		t.Fatalf("top op = %v", bin.Op)
	}
	if _, ok := bin.Y.(*ast.Binary); !ok {
		t.Fatal("rhs should be the multiplication")
	}
}

func TestAssignmentRightAssociative(t *testing.T) {
	f := parse(t, `
void f(void) {
	int a;
	int b;
	a = b = 3;
}
`)
	body := f.Funcs[0].Body
	stmt := body.Stmts[len(body.Stmts)-1].(*ast.ExprStmt)
	outer := stmt.X.(*ast.Assign)
	if _, ok := outer.Y.(*ast.Assign); !ok {
		t.Fatal("a = (b = 3) expected")
	}
}

func TestCastVersusParen(t *testing.T) {
	f := parse(t, `
void g(int p) {
	double d;
	int i;
	d = (double) p;
	i = (p) + 1;
}
`)
	body := f.Funcs[0].Body
	castStmt := body.Stmts[2].(*ast.ExprStmt).X.(*ast.Assign)
	if _, ok := castStmt.Y.(*ast.Cast); !ok {
		t.Fatalf("cast not recognized: %T", castStmt.Y)
	}
	addStmt := body.Stmts[3].(*ast.ExprStmt).X.(*ast.Assign)
	if _, ok := addStmt.Y.(*ast.Binary); !ok {
		t.Fatalf("paren expr misparsed as cast: %T", addStmt.Y)
	}
}

func TestSizeof(t *testing.T) {
	f := parse(t, `
struct s { int a; double b; };
void f(void) {
	int x;
	x = sizeof(int);
	x = sizeof(struct s);
	x = sizeof x;
	x = sizeof(int *);
	x = sizeof(int[4]);
}
`)
	_ = f
}

func TestTernaryAndLogical(t *testing.T) {
	parse(t, `int f(int a, int b) { return a > b ? a : b ? 1 : 0; }`)
	parse(t, `int g(int a) { return !a && ~a || -a; }`)
}

func TestInitializerLists(t *testing.T) {
	f := parse(t, `
int a[3] = {1, 2, 3};
int m[2][2] = {{1, 2}, {3, 4}};
`)
	if len(f.Globals[0].InitList) != 3 {
		t.Fatalf("a initlist = %d", len(f.Globals[0].InitList))
	}
	inner, ok := f.Globals[1].InitList[0].(*ast.ListExpr)
	if !ok || len(inner.Elems) != 2 {
		t.Fatal("nested init list broken")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"int;",
		"int f( { }",
		"int f(void) { return }",
		"int f(void) { if }",
		"struct { int x; } v;",
		"int f(void) { x = ; }",
		"int a[3",
		"int f(void) { for (;;) }",
	} {
		parseErr(t, src)
	}
}

func TestStorageClassesIgnored(t *testing.T) {
	f := parse(t, `
static int counter;
extern int other;
static int helper(void) { return 1; }
`)
	if len(f.Globals) != 2 || len(f.Funcs) != 1 {
		t.Fatalf("globals=%d funcs=%d", len(f.Globals), len(f.Funcs))
	}
}

func TestUnsignedAndLongSpellings(t *testing.T) {
	f := parse(t, `
unsigned u;
long l;
long int li;
unsigned int ui;
const char *msg;
`)
	if len(f.Globals) != 5 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	byName := map[string]*ast.VarDecl{}
	for _, g := range f.Globals {
		byName[g.Name] = g
	}
	if byName["l"].Type.Kind != types.Long || byName["li"].Type.Kind != types.Long {
		t.Fatal("long spellings")
	}
	if byName["u"].Type.Kind != types.Int {
		t.Fatal("unsigned maps to int in the subset")
	}
}
