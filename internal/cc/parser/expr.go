package parser

import (
	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
)

// Binary operator precedence, highest binds tightest. Assignment and
// ?: are handled separately (right-associative).
var binPrec = map[token.Kind]int{
	token.OrOr:    1,
	token.AndAnd:  2,
	token.Or:      3,
	token.Xor:     4,
	token.And:     5,
	token.Eq:      6,
	token.NotEq:   6,
	token.Lt:      7,
	token.Le:      7,
	token.Gt:      7,
	token.Ge:      7,
	token.Shl:     8,
	token.Shr:     8,
	token.Plus:    9,
	token.Minus:   9,
	token.Star:    10,
	token.Slash:   10,
	token.Percent: 10,
}

// parseExpr parses a full expression including comma-free assignment.
// (The C comma operator is not supported; use separate statements.)
func (p *Parser) parseExpr() (ast.Expr, error) {
	return p.parseAssignExpr()
}

func isAssignOp(k token.Kind) bool {
	switch k {
	case token.Assign, token.PlusAssign, token.MinusAssign, token.StarAssign,
		token.SlashAssign, token.PercentAssign, token.ShlAssign,
		token.ShrAssign, token.AndAssign, token.OrAssign, token.XorAssign:
		return true
	}
	return false
}

func (p *Parser) parseAssignExpr() (ast.Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if !isAssignOp(p.cur().Kind) {
		return lhs, nil
	}
	op := p.next()
	rhs, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	n := &ast.Assign{Op: op.Kind, X: lhs, Y: rhs}
	n.SetPos(op.Pos)
	return n, nil
}

func (p *Parser) parseCondExpr() (ast.Expr, error) {
	c, err := p.parseBinaryExpr(1)
	if err != nil {
		return nil, err
	}
	if !p.at(token.Question) {
		return c, nil
	}
	q := p.next()
	x, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	y, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	n := &ast.Cond{C: c, X: x, Y: y}
	n.SetPos(q.Pos)
	return n, nil
}

func (p *Parser) parseBinaryExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		n := &ast.Binary{Op: op.Kind, X: lhs, Y: rhs}
		n.SetPos(op.Pos)
		lhs = n
	}
}

func (p *Parser) parseUnaryExpr() (ast.Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.Plus:
		p.next()
		return p.parseUnaryExpr()
	case token.Minus, token.Not, token.Tilde, token.Star, token.And, token.Inc, token.Dec:
		op := p.next()
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		n := &ast.Unary{Op: op.Kind, X: x}
		n.SetPos(pos)
		return n, nil
	case token.KwSizeof:
		p.next()
		n := &ast.SizeofExpr{}
		n.SetPos(pos)
		if p.at(token.LParen) && p.typeStartsAt(p.pos+1) {
			p.next() // (
			t, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			n.OfType = t
			return n, nil
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		n.Arg = x
		return n, nil
	case token.LParen:
		if p.typeStartsAt(p.pos + 1) {
			p.next() // (
			t, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			n := &ast.Cast{To: t, X: x}
			n.SetPos(pos)
			return n, nil
		}
	}
	return p.parsePostfixExpr()
}

// typeStartsAt reports whether the token at index i begins a type
// name. With no typedefs, type keywords decide exactly.
func (p *Parser) typeStartsAt(i int) bool {
	if i >= len(p.toks) {
		return false
	}
	switch p.toks[i].Kind {
	case token.KwVoid, token.KwChar, token.KwInt, token.KwLong, token.KwDouble,
		token.KwStruct, token.KwConst, token.KwUnsigned:
		return true
	}
	return false
}

// parseTypeName parses an abstract type name: base type plus * [] ()
// derivations without an identifier (e.g. "int", "char*", "struct s**",
// "int(*)(int)").
func (p *Parser) parseTypeName() (*types.Type, error) {
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	for p.accept(token.Star) {
		p.accept(token.KwConst)
		base = types.PointerTo(base)
	}
	if p.at(token.LParen) && p.peek().Kind == token.Star {
		// Abstract function-pointer: base (*)(params)
		p.next() // (
		p.next() // *
		for p.accept(token.Star) {
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		params, _, variadic, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		return types.PointerTo(types.FuncOf(base, params, variadic)), nil
	}
	for p.at(token.LBracket) {
		p.next()
		n := 0
		if !p.at(token.RBracket) {
			v, err := p.parseConstIntExpr()
			if err != nil {
				return nil, err
			}
			n = int(v)
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
		base = types.ArrayOf(base, n)
	}
	return base, nil
}

func (p *Parser) parsePostfixExpr() (ast.Expr, error) {
	x, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case token.LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			n := &ast.Index{X: x, I: idx}
			n.SetPos(pos)
			x = n
		case token.LParen:
			p.next()
			call := &ast.Call{Fun: x}
			call.SetPos(pos)
			for !p.at(token.RParen) {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(token.Comma) {
					break
				}
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			x = call
		case token.Dot, token.Arrow:
			arrow := p.next().Kind == token.Arrow
			nameTok, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			n := &ast.Member{X: x, Name: nameTok.Text, Arrow: arrow}
			n.SetPos(pos)
			x = n
		case token.Inc, token.Dec:
			op := p.next()
			n := &ast.Postfix{Op: op.Kind, X: x}
			n.SetPos(pos)
			x = n
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimaryExpr() (ast.Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.IntLit:
		t := p.next()
		n := &ast.IntLit{Value: t.Int}
		n.SetPos(pos)
		return n, nil
	case token.CharLit:
		t := p.next()
		n := &ast.IntLit{Value: t.Int}
		n.SetPos(pos)
		return n, nil
	case token.FloatLit:
		t := p.next()
		n := &ast.FloatLit{Value: t.Float}
		n.SetPos(pos)
		return n, nil
	case token.StringLit:
		t := p.next()
		n := &ast.StringLit{Value: t.Str}
		n.SetPos(pos)
		return n, nil
	case token.Ident:
		t := p.next()
		n := &ast.Ident{Name: t.Text}
		n.SetPos(pos)
		return n, nil
	case token.LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("expected expression, found %s", p.cur())
}
