package parser

import (
	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
)

func (p *Parser) parseBlock() (*ast.Block, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.Block{}
	b.SetPos(lb.Pos)
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errorf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

// Small constructors that pair allocation with position setting.

func newEmpty(pos token.Pos) *ast.Empty {
	n := &ast.Empty{}
	n.SetPos(pos)
	return n
}

func newReturn(pos token.Pos) *ast.Return {
	n := &ast.Return{}
	n.SetPos(pos)
	return n
}

func newBreak(pos token.Pos) *ast.Break {
	n := &ast.Break{}
	n.SetPos(pos)
	return n
}

func newContinue(pos token.Pos) *ast.Continue {
	n := &ast.Continue{}
	n.SetPos(pos)
	return n
}

func newExprStmt(pos token.Pos) *ast.ExprStmt {
	n := &ast.ExprStmt{}
	n.SetPos(pos)
	return n
}

func newDeclStmt(pos token.Pos) *ast.DeclStmt {
	n := &ast.DeclStmt{}
	n.SetPos(pos)
	return n
}

func newIf(pos token.Pos) *ast.If {
	n := &ast.If{}
	n.SetPos(pos)
	return n
}

func newWhile(pos token.Pos) *ast.While {
	n := &ast.While{}
	n.SetPos(pos)
	return n
}

func newDoWhile(pos token.Pos) *ast.DoWhile {
	n := &ast.DoWhile{}
	n.SetPos(pos)
	return n
}

func newFor(pos token.Pos) *ast.For {
	n := &ast.For{}
	n.SetPos(pos)
	return n
}

func newListExpr(pos token.Pos) *ast.ListExpr {
	n := &ast.ListExpr{}
	n.SetPos(pos)
	return n
}

func (p *Parser) parseStmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		p.next()
		return newEmpty(pos), nil
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		p.next()
		r := newReturn(pos)
		if !p.at(token.Semi) {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		_, err := p.expect(token.Semi)
		return r, err
	case token.KwBreak:
		p.next()
		_, err := p.expect(token.Semi)
		return newBreak(pos), err
	case token.KwContinue:
		p.next()
		_, err := p.expect(token.Semi)
		return newContinue(pos), err
	}
	if p.isDeclStart() {
		ds, err := p.parseLocalDecl()
		if err != nil {
			return nil, err
		}
		return ds, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	es := newExprStmt(pos)
	es.X = x
	return es, nil
}

func (p *Parser) parseLocalDecl() (*ast.DeclStmt, error) {
	pos := p.cur().Pos
	for p.at(token.KwStatic) || p.at(token.KwExtern) {
		p.next()
	}
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	ds := newDeclStmt(pos)
	for {
		name, typ, dpos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if typ.Kind == types.Func {
			return nil, p.errorf("local function declarations are not supported")
		}
		vd := &ast.VarDecl{P: dpos, Name: name, Type: typ}
		if p.accept(token.Assign) {
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			if list, ok := init.(*ast.ListExpr); ok {
				vd.InitList = list.Elems
			} else {
				vd.Init = init
			}
		}
		ds.Decls = append(ds.Decls, vd)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *Parser) parseInitializer() (ast.Expr, error) {
	if p.at(token.LBrace) {
		pos := p.cur().Pos
		p.next()
		list := newListExpr(pos)
		for !p.at(token.RBrace) {
			e, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			list.Elems = append(list.Elems, e)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RBrace); err != nil {
			return nil, err
		}
		return list, nil
	}
	return p.parseAssignExpr()
}

func (p *Parser) parseIf() (ast.Stmt, error) {
	pos := p.cur().Pos
	p.next() // if
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	node := newIf(pos)
	node.Cond, node.Then = cond, then
	if p.accept(token.KwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *Parser) parseWhile() (ast.Stmt, error) {
	pos := p.cur().Pos
	p.next() // while
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	node := newWhile(pos)
	node.Cond, node.Body = cond, body
	return node, nil
}

func (p *Parser) parseDoWhile() (ast.Stmt, error) {
	pos := p.cur().Pos
	p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	node := newDoWhile(pos)
	node.Body, node.Cond = body, cond
	return node, nil
}

func (p *Parser) parseFor() (ast.Stmt, error) {
	pos := p.cur().Pos
	p.next() // for
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	node := newFor(pos)
	if !p.at(token.Semi) {
		if p.isDeclStart() {
			ds, err := p.parseLocalDecl()
			if err != nil {
				return nil, err
			}
			node.Init = ds
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			es := newExprStmt(pos)
			es.X = x
			node.Init = es
			if _, err := p.expect(token.Semi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(token.Semi) {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Cond = c
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	if !p.at(token.RParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Post = post
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}
