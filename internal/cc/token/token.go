// Package token defines the lexical tokens of the C subset accepted by
// the front end.
package token

import "fmt"

// Kind identifies a token class.
type Kind int

const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit

	// Keywords.
	KwBreak
	KwChar
	KwConst
	KwContinue
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFor
	KwIf
	KwInt
	KwLong
	KwReturn
	KwSizeof
	KwStatic
	KwStruct
	KwUnsigned
	KwVoid
	KwWhile

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Ellipsis // ...

	Assign     // =
	PlusAssign // +=
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	ShlAssign
	ShrAssign
	AndAssign
	OrAssign
	XorAssign

	Question // ?
	Colon    // :

	OrOr   // ||
	AndAnd // &&
	Or     // |
	Xor    // ^
	And    // &
	Eq     // ==
	NotEq  // !=
	Lt     // <
	Le     // <=
	Gt     // >
	Ge     // >=
	Shl    // <<
	Shr    // >>
	Plus   // +
	Minus  // -
	Star   // *
	Slash  // /
	Percent
	Not   // !
	Tilde // ~
	Inc   // ++
	Dec   // --
)

var names = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	FloatLit: "float literal", CharLit: "char literal", StringLit: "string literal",
	KwBreak: "break", KwChar: "char", KwConst: "const", KwContinue: "continue",
	KwDo: "do", KwDouble: "double", KwElse: "else", KwEnum: "enum",
	KwExtern: "extern", KwFor: "for", KwIf: "if", KwInt: "int", KwLong: "long",
	KwReturn: "return", KwSizeof: "sizeof", KwStatic: "static",
	KwStruct: "struct", KwUnsigned: "unsigned", KwVoid: "void", KwWhile: "while",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[",
	RBracket: "]", Semi: ";", Comma: ",", Dot: ".", Arrow: "->", Ellipsis: "...",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", ShlAssign: "<<=", ShrAssign: ">>=",
	AndAssign: "&=", OrAssign: "|=", XorAssign: "^=",
	Question: "?", Colon: ":", OrOr: "||", AndAnd: "&&", Or: "|", Xor: "^",
	And: "&", Eq: "==", NotEq: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Shl: "<<", Shr: ">>", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Not: "!", Tilde: "~", Inc: "++", Dec: "--",
}

func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"break": KwBreak, "char": KwChar, "const": KwConst, "continue": KwContinue,
	"do": KwDo, "double": KwDouble, "else": KwElse, "enum": KwEnum,
	"extern": KwExtern, "for": KwFor, "if": KwIf, "int": KwInt, "long": KwLong,
	"return": KwReturn, "sizeof": KwSizeof, "static": KwStatic,
	"struct": KwStruct, "unsigned": KwUnsigned, "void": KwVoid, "while": KwWhile,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos

	// Text is the identifier or literal spelling.
	Text string
	// Int is the decoded value of IntLit and CharLit tokens.
	Int int64
	// Float is the decoded value of FloatLit tokens.
	Float float64
	// Str is the decoded value of StringLit tokens (escapes
	// processed, no terminating NUL).
	Str string
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return t.Text
	case IntLit:
		return fmt.Sprintf("%d", t.Int)
	case FloatLit:
		return fmt.Sprintf("%g", t.Float)
	case CharLit:
		return fmt.Sprintf("%q", rune(t.Int))
	case StringLit:
		return fmt.Sprintf("%q", t.Str)
	}
	return t.Kind.String()
}
