// Package types implements the C subset's type system: void, char,
// int, long, double, pointers, fixed-size arrays, structs, and
// function types. char is 1 byte, int is 4, long and double are 8, and
// pointers are 8.
package types

import (
	"fmt"
	"strings"
)

// Kind classifies a type.
type Kind int

const (
	Void Kind = iota
	Char
	Int
	Long
	Double
	Pointer
	Array
	Struct
	Func
)

// Type is a C type. Types are compared structurally except structs,
// which compare by identity (name).
type Type struct {
	Kind Kind

	// Elem is the pointee for Pointer, the element for Array, and
	// the result for Func.
	Elem *Type

	// ArrayLen is the constant element count for Array.
	ArrayLen int

	// StructName and Fields describe Struct types.
	StructName string
	Fields     []Field

	// Params describes Func parameter types; Variadic marks a
	// trailing "...".
	Params   []*Type
	Variadic bool
}

// Field is one struct member with its computed byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

// Predefined basic types. Basic types are shared singletons so
// pointer equality works for them.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	IntType    = &Type{Kind: Int}
	LongType   = &Type{Kind: Long}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns the type "pointer to t".
func PointerTo(t *Type) *Type { return &Type{Kind: Pointer, Elem: t} }

// ArrayOf returns the type "array of n t".
func ArrayOf(t *Type, n int) *Type {
	return &Type{Kind: Array, Elem: t, ArrayLen: n}
}

// FuncOf returns a function type.
func FuncOf(result *Type, params []*Type, variadic bool) *Type {
	return &Type{Kind: Func, Elem: result, Params: params, Variadic: variadic}
}

// Size returns the byte size of t; struct sizes include padding for
// field alignment. Function and void types have size 0.
func (t *Type) Size() int {
	switch t.Kind {
	case Void, Func:
		return 0
	case Char:
		return 1
	case Int:
		return 4
	case Long, Double, Pointer:
		return 8
	case Array:
		return t.ArrayLen * t.Elem.Size()
	case Struct:
		if len(t.Fields) == 0 {
			return 0
		}
		last := t.Fields[len(t.Fields)-1]
		return align(last.Offset+last.Type.Size(), t.Align())
	}
	return 0
}

// Align returns the alignment of t in bytes.
func (t *Type) Align() int {
	switch t.Kind {
	case Char:
		return 1
	case Int:
		return 4
	case Long, Double, Pointer:
		return 8
	case Array:
		return t.Elem.Align()
	case Struct:
		a := 1
		for _, f := range t.Fields {
			if fa := f.Type.Align(); fa > a {
				a = fa
			}
		}
		return a
	}
	return 1
}

func align(off, a int) int {
	if a <= 1 {
		return off
	}
	return (off + a - 1) / a * a
}

// LayOut assigns field offsets for a struct type.
func (t *Type) LayOut() {
	off := 0
	for i := range t.Fields {
		f := &t.Fields[i]
		off = align(off, f.Type.Align())
		f.Offset = off
		off += f.Type.Size()
	}
}

// FieldByName returns the named field.
func (t *Type) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// IsInteger reports whether t is char, int, or long.
func (t *Type) IsInteger() bool {
	return t.Kind == Char || t.Kind == Int || t.Kind == Long
}

// IsArith reports whether t is an arithmetic type.
func (t *Type) IsArith() bool { return t.IsInteger() || t.Kind == Double }

// IsScalar reports whether t is arithmetic or a pointer: a value that
// fits in one register and can appear in conditions.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == Pointer }

// Equal reports structural type equality (structs by name).
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Void, Char, Int, Long, Double:
		return true
	case Pointer:
		return Equal(a.Elem, b.Elem)
	case Array:
		return a.ArrayLen == b.ArrayLen && Equal(a.Elem, b.Elem)
	case Struct:
		return a.StructName == b.StructName
	case Func:
		if !Equal(a.Elem, b.Elem) || len(a.Params) != len(b.Params) || a.Variadic != b.Variadic {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func (t *Type) String() string {
	switch t.Kind {
	case Void:
		return "void"
	case Char:
		return "char"
	case Int:
		return "int"
	case Long:
		return "long"
	case Double:
		return "double"
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case Struct:
		return "struct " + t.StructName
	case Func:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		if t.Variadic {
			parts = append(parts, "...")
		}
		return fmt.Sprintf("%s(%s)", t.Elem, strings.Join(parts, ","))
	}
	return "?"
}
