package types

import "testing"

func TestBasicSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size int
	}{
		{CharType, 1},
		{IntType, 4},
		{LongType, 8},
		{DoubleType, 8},
		{PointerTo(IntType), 8},
		{ArrayOf(IntType, 10), 40},
		{ArrayOf(ArrayOf(CharType, 3), 4), 12},
		{VoidType, 0},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("%s size = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestStructLayout(t *testing.T) {
	s := &Type{Kind: Struct, StructName: "s", Fields: []Field{
		{Name: "c", Type: CharType},
		{Name: "d", Type: DoubleType},
		{Name: "i", Type: IntType},
	}}
	s.LayOut()
	if s.Fields[0].Offset != 0 {
		t.Errorf("c offset = %d", s.Fields[0].Offset)
	}
	if s.Fields[1].Offset != 8 {
		t.Errorf("d offset = %d (must align to 8)", s.Fields[1].Offset)
	}
	if s.Fields[2].Offset != 16 {
		t.Errorf("i offset = %d", s.Fields[2].Offset)
	}
	if s.Size() != 24 {
		t.Errorf("size = %d (must pad to alignment)", s.Size())
	}
	if s.Align() != 8 {
		t.Errorf("align = %d", s.Align())
	}
}

func TestStructFieldLookup(t *testing.T) {
	s := &Type{Kind: Struct, StructName: "s", Fields: []Field{
		{Name: "x", Type: IntType},
	}}
	s.LayOut()
	if f, ok := s.FieldByName("x"); !ok || f.Type != IntType {
		t.Fatal("lookup x failed")
	}
	if _, ok := s.FieldByName("y"); ok {
		t.Fatal("phantom field")
	}
}

func TestEquality(t *testing.T) {
	if !Equal(PointerTo(IntType), PointerTo(IntType)) {
		t.Error("pointer equality")
	}
	if Equal(PointerTo(IntType), PointerTo(CharType)) {
		t.Error("distinct pointees")
	}
	if !Equal(ArrayOf(IntType, 3), ArrayOf(IntType, 3)) {
		t.Error("array equality")
	}
	if Equal(ArrayOf(IntType, 3), ArrayOf(IntType, 4)) {
		t.Error("array lengths differ")
	}
	f1 := FuncOf(IntType, []*Type{IntType}, false)
	f2 := FuncOf(IntType, []*Type{IntType}, false)
	f3 := FuncOf(IntType, []*Type{IntType}, true)
	if !Equal(f1, f2) || Equal(f1, f3) {
		t.Error("function equality")
	}
	s1 := &Type{Kind: Struct, StructName: "a"}
	s2 := &Type{Kind: Struct, StructName: "a"}
	s3 := &Type{Kind: Struct, StructName: "b"}
	if !Equal(s1, s2) || Equal(s1, s3) {
		t.Error("struct equality is by name")
	}
}

func TestClassification(t *testing.T) {
	if !IntType.IsInteger() || !IntType.IsArith() || !IntType.IsScalar() {
		t.Error("int classification")
	}
	if DoubleType.IsInteger() || !DoubleType.IsArith() {
		t.Error("double classification")
	}
	p := PointerTo(VoidType)
	if p.IsArith() || !p.IsScalar() {
		t.Error("pointer classification")
	}
	arr := ArrayOf(IntType, 2)
	if arr.IsScalar() {
		t.Error("array is not scalar")
	}
}

func TestString(t *testing.T) {
	cases := map[string]*Type{
		"int":        IntType,
		"char*":      PointerTo(CharType),
		"int[4]":     ArrayOf(IntType, 4),
		"struct s":   {Kind: Struct, StructName: "s"},
		"int(int)":   FuncOf(IntType, []*Type{IntType}, false),
		"double*[2]": ArrayOf(PointerTo(DoubleType), 2),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
