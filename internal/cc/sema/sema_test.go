package sema

import (
	"strings"
	"testing"

	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/types"
)

func check(t *testing.T, src string) *Program {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(f)
	if err == nil {
		t.Fatalf("expected error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestSymbolResolution(t *testing.T) {
	p := check(t, `
int g;
int f(int a) {
	int l;
	l = a + g;
	return l;
}
`)
	if len(p.Funcs) != 1 || len(p.Globals) != 1 {
		t.Fatalf("prog = %+v", p)
	}
	if p.Funcs[0].Locals[0].Sym.Kind != ast.SymLocal {
		t.Fatal("local kind wrong")
	}
}

func TestUndefinedVariable(t *testing.T) {
	checkErr(t, `int f(void) { return nope; }`, "undefined")
}

func TestShadowing(t *testing.T) {
	p := check(t, `
int x;
int f(int x) {
	if (x) {
		int x;
		x = 3;
	}
	return x;
}
`)
	// Three distinct symbols named x; the two locals get distinct
	// uniq numbers.
	fd := p.Funcs[0]
	if fd.Params[0].Sym.Uniq == fd.Locals[0].Sym.Uniq {
		t.Fatal("shadowed locals must get distinct ids")
	}
}

func TestRedeclarationInScope(t *testing.T) {
	checkErr(t, `int f(void) { int a; int a; return 0; }`, "redeclared")
}

func TestAddressTakenMarking(t *testing.T) {
	p := check(t, `
int taken;
int nottaken;
int f(void) {
	int l;
	int *p;
	p = &taken;
	l = nottaken;
	return *p + l;
}
`)
	byName := map[string]*ast.VarDecl{}
	for _, g := range p.Globals {
		byName[g.Name] = g
	}
	if !byName["taken"].Sym.AddrTaken {
		t.Fatal("&taken must mark AddrTaken")
	}
	if byName["nottaken"].Sym.AddrTaken {
		t.Fatal("nottaken must not be marked")
	}
}

func TestTypeErrors(t *testing.T) {
	// Pointer/integer interconversion is deliberately lenient (old C),
	// but aggregates never convert.
	checkErr(t, `struct s { int x; }; struct s v; int f(void) { int a; a = v; return a; }`, "cannot assign")
	checkErr(t, `struct s { int x; }; struct s v; int f(void) { return v + 1; }`, "+")
	checkErr(t, `int f(void) { double d; return d % 2; }`, "%")
	checkErr(t, `int f(void) { int a; return *a; }`, "dereference")
	checkErr(t, `int f(void) { return 3 = 4; }`, "non-lvalue")
	checkErr(t, `void g(void) { } int f(void) { return g() + 1; }`, "+")
}

func TestCallChecking(t *testing.T) {
	checkErr(t, `int f(int a) { return f(); }`, "argument count")
	checkErr(t, `int f(int a) { return f(1, 2); }`, "argument count")
	checkErr(t, `int f(void) { return missing(3); }`, "undefined")
	checkErr(t, `int x; int f(void) { return x(); }`, "non-function")
	check(t, `
int add(int a, int b) { return a + b; }
int f(void) { return add('a', 2.5); }
`) // arithmetic arguments convert implicitly
}

func TestPrototypeAgreement(t *testing.T) {
	check(t, `
int twice(int v);
int f(void) { return twice(4); }
int twice(int v) { return v * 2; }
`)
	checkErr(t, `
int twice(int v);
double twice(int v) { return 1.0; }
`, "conflicting")
}

func TestReturnChecking(t *testing.T) {
	checkErr(t, `int f(void) { return; }`, "missing return value")
	checkErr(t, `void f(void) { return 3; }`, "return with value")
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	checkErr(t, `void f(void) { break; }`, "break outside loop")
	checkErr(t, `void f(void) { continue; }`, "continue outside loop")
}

func TestStructRestrictions(t *testing.T) {
	checkErr(t, `struct s { int x; }; struct s f(void) { }`, "struct return")
	checkErr(t, `struct s { int x; }; void f(struct s v) { }`, "struct parameter")
	checkErr(t, `
struct s { int x; };
struct s a;
struct s b;
void f(void) { a = b; }
`, "struct assignment")
}

func TestMemberAccess(t *testing.T) {
	check(t, `
struct point { int x; int y; };
struct point p;
struct point *q;
int f(void) { q = &p; return p.x + q->y; }
`)
	checkErr(t, `
struct point { int x; };
struct point p;
int f(void) { return p.z; }
`, "no field")
	checkErr(t, `int v; int f(void) { return v.x; }`, "non-struct")
}

func TestStringPoolDeduplicates(t *testing.T) {
	p := check(t, `
char *a = "same";
char *b = "same";
char *c = "different";
`)
	if len(p.Strings) != 2 {
		t.Fatalf("string pool = %v", p.Strings)
	}
}

func TestEnumConstantsUsable(t *testing.T) {
	p := check(t, `
enum { A, B = 10, C };
int f(void) { return A + B + C; }
`)
	_ = p
}

func TestFunctionNameAsValueMarksAddressed(t *testing.T) {
	p := check(t, `
int inc(int v) { return v + 1; }
int apply(int (*f)(int), int v) { return f(v); }
int main(void) { return apply(inc, 3); }
`)
	found := false
	for _, n := range p.AddressedFuncs {
		if n == "inc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inc should be addressed: %v", p.AddressedFuncs)
	}
	// apply is only ever called directly.
	for _, n := range p.AddressedFuncs {
		if n == "apply" {
			t.Fatal("apply should not be addressed")
		}
	}
}

func TestGlobalInitializerMustBeConstant(t *testing.T) {
	checkErr(t, `
int f(void) { return 1; }
int x = f();
`, "constant")
}

func TestConditionTypes(t *testing.T) {
	checkErr(t, `
struct s { int x; };
struct s v;
void f(void) { if (v) { } }
`, "non-scalar")
}

func TestSizeofFolds(t *testing.T) {
	p := check(t, `
struct s { char c; double d; };
long a = sizeof(struct s);
long b = sizeof(int);
`)
	_ = p
	if types.IntType.Size() != 4 || types.DoubleType.Size() != 8 {
		t.Fatal("basic sizes wrong")
	}
}

func TestVoidPointerFlows(t *testing.T) {
	check(t, `
int main(void) {
	int *p;
	p = (int *) malloc(40);
	*p = 3;
	free((void *) p);
	return *p;
}
`)
}

func TestWholeProgramCompleteness(t *testing.T) {
	checkErr(t, `
int helper(int v);
int main(void) { return helper(3); }
`, "undefined function helper")
	// A prototype that is declared but never called is fine.
	check(t, `
int unused_proto(int v);
int main(void) { return 0; }
`)
	// Builtins need no definition.
	check(t, `int main(void) { print_int(1); return 0; }`)
}
