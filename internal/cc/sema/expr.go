package sema

import (
	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
)

// rval applies the value conversions: arrays decay to pointers to
// their element type, functions to function pointers.
func rval(t *types.Type) *types.Type {
	switch t.Kind {
	case types.Array:
		return types.PointerTo(t.Elem)
	case types.Func:
		return types.PointerTo(t)
	}
	return t
}

// assignable reports whether a value of type src may be assigned to a
// location of type dst. The rules are deliberately lenient, matching
// pre-ANSI C practice in the benchmark sources: arithmetic types
// interconvert, any pointer converts to any pointer, and integers and
// pointers interconvert.
func assignable(dst, src *types.Type) bool {
	if dst.IsArith() && src.IsArith() {
		return true
	}
	if dst.Kind == types.Pointer && src.Kind == types.Pointer {
		return true
	}
	if dst.Kind == types.Pointer && src.IsInteger() {
		return true
	}
	if dst.IsInteger() && src.Kind == types.Pointer {
		return true
	}
	return false
}

// commonType computes the usual arithmetic conversion of two types.
func commonType(a, b *types.Type) *types.Type {
	if a.Kind == types.Double || b.Kind == types.Double {
		return types.DoubleType
	}
	if a.Kind == types.Pointer {
		return a
	}
	if b.Kind == types.Pointer {
		return b
	}
	if a.Kind == types.Long || b.Kind == types.Long {
		return types.LongType
	}
	return types.IntType
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.Ident:
		return n.Sym != nil && n.Sym.Kind != ast.SymFunc && n.Sym.Kind != ast.SymEnumConst
	case *ast.Unary:
		return n.Op == token.Star
	case *ast.Index:
		return true
	case *ast.Member:
		return true
	}
	return false
}

// markAddrTaken records that e's storage has its address exposed.
func markAddrTaken(e ast.Expr) {
	switch n := e.(type) {
	case *ast.Ident:
		if n.Sym != nil {
			n.Sym.AddrTaken = true
		}
	case *ast.Member:
		if !n.Arrow {
			markAddrTaken(n.X)
		}
	case *ast.Index:
		// x[i] on an array variable exposes the array itself; on a
		// pointer it exposes already-exposed storage.
		if n.X.Type() != nil && n.X.Type().Kind == types.Array {
			markAddrTaken(n.X)
		}
	}
}

func (c *checker) checkExpr(e ast.Expr) error {
	switch n := e.(type) {
	case *ast.IntLit:
		// Literals that fit in int are int; larger are long.
		if n.Value >= -(1<<31) && n.Value < 1<<31 {
			ast.SetType(n, types.IntType)
		} else {
			ast.SetType(n, types.LongType)
		}
		return nil

	case *ast.FloatLit:
		ast.SetType(n, types.DoubleType)
		return nil

	case *ast.StringLit:
		idx, ok := c.strIndex[n.Value]
		if !ok {
			idx = len(c.prog.Strings)
			c.prog.Strings = append(c.prog.Strings, n.Value)
			c.strIndex[n.Value] = idx
		}
		n.Index = idx
		ast.SetType(n, types.ArrayOf(types.CharType, len(n.Value)+1))
		return nil

	case *ast.Ident:
		sym := c.lookup(n.Name)
		if sym == nil {
			return c.errorf(n.Pos(), "undefined: %s", n.Name)
		}
		n.Sym = sym
		ast.SetType(n, sym.Type)
		if sym.Kind == ast.SymFunc {
			// A function name reaching generic expression checking
			// is being used as a value (direct calls resolve their
			// callee in checkCall without coming through here), so
			// its address escapes.
			c.markFuncAddressed(sym.Name)
		}
		return nil

	case *ast.Unary:
		return c.checkUnary(n)

	case *ast.Postfix:
		if err := c.checkExpr(n.X); err != nil {
			return err
		}
		if !isLvalue(n.X) || !rval(n.X.Type()).IsScalar() || n.X.Type().Kind == types.Array {
			return c.errorf(n.Pos(), "%s requires a scalar lvalue", n.Op)
		}
		ast.SetType(n, rval(n.X.Type()))
		return nil

	case *ast.Binary:
		return c.checkBinary(n)

	case *ast.Assign:
		return c.checkAssign(n)

	case *ast.Cond:
		if err := c.checkCond(n.C); err != nil {
			return err
		}
		if err := c.checkExpr(n.X); err != nil {
			return err
		}
		if err := c.checkExpr(n.Y); err != nil {
			return err
		}
		xt, yt := rval(n.X.Type()), rval(n.Y.Type())
		switch {
		case xt.IsArith() && yt.IsArith():
			ast.SetType(n, commonType(xt, yt))
		case xt.Kind == types.Pointer:
			ast.SetType(n, xt)
		case yt.Kind == types.Pointer:
			ast.SetType(n, yt)
		default:
			return c.errorf(n.Pos(), "incompatible ?: arms: %s and %s", xt, yt)
		}
		return nil

	case *ast.Index:
		if err := c.checkExpr(n.X); err != nil {
			return err
		}
		if err := c.checkExpr(n.I); err != nil {
			return err
		}
		xt := n.X.Type()
		base := rval(xt)
		if base.Kind != types.Pointer {
			return c.errorf(n.Pos(), "cannot index %s", xt)
		}
		if !rval(n.I.Type()).IsInteger() {
			return c.errorf(n.I.Pos(), "array index has non-integer type %s", n.I.Type())
		}
		markAddrTaken(n.X)
		ast.SetType(n, base.Elem)
		return nil

	case *ast.Call:
		return c.checkCall(n)

	case *ast.Member:
		if err := c.checkExpr(n.X); err != nil {
			return err
		}
		var st *types.Type
		if n.Arrow {
			pt := rval(n.X.Type())
			if pt.Kind != types.Pointer || pt.Elem.Kind != types.Struct {
				return c.errorf(n.Pos(), "-> on non-struct-pointer %s", n.X.Type())
			}
			st = pt.Elem
		} else {
			st = n.X.Type()
			if st.Kind != types.Struct {
				return c.errorf(n.Pos(), ". on non-struct %s", st)
			}
		}
		f, ok := st.FieldByName(n.Name)
		if !ok {
			return c.errorf(n.Pos(), "%s has no field %s", st, n.Name)
		}
		n.Field = f
		if !n.Arrow {
			// Accessing a member of a struct variable exposes the
			// variable's storage to address arithmetic.
			markAddrTaken(n.X)
		}
		ast.SetType(n, f.Type)
		return nil

	case *ast.SizeofExpr:
		if n.OfType != nil {
			n.Size = n.OfType.Size()
		} else {
			if err := c.checkExpr(n.Arg); err != nil {
				return err
			}
			n.Size = n.Arg.Type().Size()
		}
		ast.SetType(n, types.LongType)
		return nil

	case *ast.Cast:
		if err := c.checkExpr(n.X); err != nil {
			return err
		}
		src := rval(n.X.Type())
		dst := n.To
		if dst.Kind == types.Void {
			ast.SetType(n, dst)
			return nil
		}
		if !dst.IsScalar() || !src.IsScalar() {
			return c.errorf(n.Pos(), "invalid cast from %s to %s", src, dst)
		}
		ast.SetType(n, dst)
		return nil

	case *ast.ListExpr:
		for _, el := range n.Elems {
			if err := c.checkExpr(el); err != nil {
				return err
			}
		}
		ast.SetType(n, types.VoidType)
		return nil
	}
	return c.errorf(e.Pos(), "unhandled expression %T", e)
}

func (c *checker) checkUnary(n *ast.Unary) error {
	if err := c.checkExpr(n.X); err != nil {
		return err
	}
	xt := n.X.Type()
	switch n.Op {
	case token.Minus:
		if !rval(xt).IsArith() {
			return c.errorf(n.Pos(), "unary - on %s", xt)
		}
		t := rval(xt)
		if t.IsInteger() && t.Kind == types.Char {
			t = types.IntType
		}
		ast.SetType(n, t)
	case token.Not:
		if !rval(xt).IsScalar() {
			return c.errorf(n.Pos(), "! on %s", xt)
		}
		ast.SetType(n, types.IntType)
	case token.Tilde:
		if !rval(xt).IsInteger() {
			return c.errorf(n.Pos(), "~ on %s", xt)
		}
		ast.SetType(n, rval(xt))
	case token.Star:
		pt := rval(xt)
		if pt.Kind != types.Pointer {
			return c.errorf(n.Pos(), "dereference of non-pointer %s", xt)
		}
		if pt.Elem.Kind == types.Void {
			return c.errorf(n.Pos(), "dereference of void pointer")
		}
		if pt.Elem.Kind == types.Func {
			// *f on a function pointer yields the function again.
			ast.SetType(n, pt.Elem)
			return nil
		}
		ast.SetType(n, pt.Elem)
	case token.And:
		if id, ok := n.X.(*ast.Ident); ok && id.Sym != nil && id.Sym.Kind == ast.SymFunc {
			c.markFuncAddressed(id.Sym.Name)
			ast.SetType(n, types.PointerTo(id.Sym.Type))
			return nil
		}
		if !isLvalue(n.X) {
			return c.errorf(n.Pos(), "& requires an lvalue")
		}
		markAddrTaken(n.X)
		ast.SetType(n, types.PointerTo(xt))
	case token.Inc, token.Dec:
		if !isLvalue(n.X) || !rval(xt).IsScalar() || xt.Kind == types.Array {
			return c.errorf(n.Pos(), "%s requires a scalar lvalue", n.Op)
		}
		ast.SetType(n, rval(xt))
	default:
		return c.errorf(n.Pos(), "unhandled unary %s", n.Op)
	}
	return nil
}

func (c *checker) markFuncAddressed(name string) {
	for _, n := range c.prog.AddressedFuncs {
		if n == name {
			return
		}
	}
	c.prog.AddressedFuncs = append(c.prog.AddressedFuncs, name)
}

func (c *checker) checkBinary(n *ast.Binary) error {
	if err := c.checkExpr(n.X); err != nil {
		return err
	}
	if err := c.checkExpr(n.Y); err != nil {
		return err
	}
	xt, yt := rval(n.X.Type()), rval(n.Y.Type())
	switch n.Op {
	case token.OrOr, token.AndAnd:
		if !xt.IsScalar() || !yt.IsScalar() {
			return c.errorf(n.Pos(), "%s on %s and %s", n.Op, xt, yt)
		}
		ast.SetType(n, types.IntType)
	case token.Eq, token.NotEq, token.Lt, token.Le, token.Gt, token.Ge:
		if !(xt.IsArith() && yt.IsArith()) &&
			!(xt.Kind == types.Pointer && yt.Kind == types.Pointer) &&
			!(xt.Kind == types.Pointer && yt.IsInteger()) &&
			!(xt.IsInteger() && yt.Kind == types.Pointer) {
			return c.errorf(n.Pos(), "comparison of %s and %s", xt, yt)
		}
		ast.SetType(n, types.IntType)
	case token.Plus:
		switch {
		case xt.IsArith() && yt.IsArith():
			ast.SetType(n, commonType(xt, yt))
		case xt.Kind == types.Pointer && yt.IsInteger():
			ast.SetType(n, xt)
		case xt.IsInteger() && yt.Kind == types.Pointer:
			ast.SetType(n, yt)
		default:
			return c.errorf(n.Pos(), "+ on %s and %s", xt, yt)
		}
	case token.Minus:
		switch {
		case xt.IsArith() && yt.IsArith():
			ast.SetType(n, commonType(xt, yt))
		case xt.Kind == types.Pointer && yt.IsInteger():
			ast.SetType(n, xt)
		case xt.Kind == types.Pointer && yt.Kind == types.Pointer:
			ast.SetType(n, types.LongType)
		default:
			return c.errorf(n.Pos(), "- on %s and %s", xt, yt)
		}
	case token.Star, token.Slash:
		if !xt.IsArith() || !yt.IsArith() {
			return c.errorf(n.Pos(), "%s on %s and %s", n.Op, xt, yt)
		}
		ast.SetType(n, commonType(xt, yt))
	case token.Percent, token.And, token.Or, token.Xor, token.Shl, token.Shr:
		if !xt.IsInteger() || !yt.IsInteger() {
			return c.errorf(n.Pos(), "%s on %s and %s", n.Op, xt, yt)
		}
		ast.SetType(n, commonType(xt, yt))
	default:
		return c.errorf(n.Pos(), "unhandled binary %s", n.Op)
	}
	return nil
}

func (c *checker) checkAssign(n *ast.Assign) error {
	if err := c.checkExpr(n.X); err != nil {
		return err
	}
	if err := c.checkExpr(n.Y); err != nil {
		return err
	}
	if !isLvalue(n.X) {
		return c.errorf(n.Pos(), "assignment to non-lvalue")
	}
	dst := n.X.Type()
	if dst.Kind == types.Array {
		return c.errorf(n.Pos(), "assignment to array")
	}
	if dst.Kind == types.Struct {
		return c.errorf(n.Pos(), "struct assignment is not supported (copy fields)")
	}
	src := rval(n.Y.Type())
	if n.Op == token.Assign {
		if !assignable(dst, src) {
			return c.errorf(n.Pos(), "cannot assign %s to %s", src, dst)
		}
	} else {
		// Compound assignment: the operation must be valid on
		// (dst, src) as a binary op.
		switch n.Op {
		case token.PlusAssign, token.MinusAssign:
			if !(dst.IsArith() && src.IsArith()) &&
				!(dst.Kind == types.Pointer && src.IsInteger()) {
				return c.errorf(n.Pos(), "%s on %s and %s", n.Op, dst, src)
			}
		case token.StarAssign, token.SlashAssign:
			if !dst.IsArith() || !src.IsArith() {
				return c.errorf(n.Pos(), "%s on %s and %s", n.Op, dst, src)
			}
		default:
			if !dst.IsInteger() || !src.IsInteger() {
				return c.errorf(n.Pos(), "%s on %s and %s", n.Op, dst, src)
			}
		}
	}
	ast.SetType(n, dst)
	return nil
}

func (c *checker) checkCall(n *ast.Call) error {
	// Resolve the callee; a bare identifier naming a function is a
	// direct call, anything else must be a function pointer.
	var sig *types.Type
	if id, ok := n.Fun.(*ast.Ident); ok {
		sym := c.lookup(id.Name)
		if sym == nil {
			return c.errorf(id.Pos(), "undefined function: %s", id.Name)
		}
		id.Sym = sym
		ast.SetType(id, sym.Type)
		if sym.Kind == ast.SymFunc {
			sig = sym.Type
			if _, seen := c.called[sym.Name]; !seen {
				c.called[sym.Name] = n.Pos()
			}
		}
	}
	if sig == nil {
		if err := c.checkExpr(n.Fun); err != nil {
			// Already checked identifiers pass again harmlessly;
			// real errors propagate.
			if _, isIdent := n.Fun.(*ast.Ident); !isIdent {
				return err
			}
		}
		ft := rval(n.Fun.Type())
		if ft.Kind == types.Pointer && ft.Elem.Kind == types.Func {
			sig = ft.Elem
		} else if ft.Kind == types.Func {
			sig = ft
		} else {
			return c.errorf(n.Pos(), "call of non-function type %s", n.Fun.Type())
		}
	}
	if len(n.Args) < len(sig.Params) || (len(n.Args) > len(sig.Params) && !sig.Variadic) {
		return c.errorf(n.Pos(), "wrong argument count: have %d, want %d", len(n.Args), len(sig.Params))
	}
	for i, a := range n.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
		if i < len(sig.Params) {
			if !assignable(sig.Params[i], rval(a.Type())) {
				return c.errorf(a.Pos(), "argument %d: cannot use %s as %s", i+1, a.Type(), sig.Params[i])
			}
		}
	}
	ast.SetType(n, sig.Elem)
	return nil
}
